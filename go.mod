module boundschema

go 1.22

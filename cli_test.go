package boundschema_test

import (
	"bufio"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The CLI integration suite builds the real binaries once and drives them
// over the testdata corpus, covering the flag parsing and I/O glue the
// unit tests cannot reach.

var cliDir string

func buildCLIs(t *testing.T) string {
	t.Helper()
	if cliDir != "" {
		return cliDir
	}
	dir, err := os.MkdirTemp("", "boundschema-cli")
	if err != nil {
		t.Fatal(err)
	}
	for _, tool := range []string{"bschema", "bsgen", "bsbench", "bsd"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	cliDir = dir
	return dir
}

func runCLI(t *testing.T, name string, args ...string) (string, error) {
	t.Helper()
	dir := buildCLIs(t)
	cmd := exec.Command(filepath.Join(dir, name), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLICheckLegalAndIllegal(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	out, err := runCLI(t, "bschema", "check",
		"-schema", "testdata/whitepages.bs", "-instance", "testdata/figure1.ldif")
	if err != nil || !strings.Contains(out, "legal") {
		t.Fatalf("check legal: %v\n%s", err, out)
	}
	out, err = runCLI(t, "bschema", "check",
		"-schema", "testdata/whitepages.bs", "-instance", "testdata/figure1-broken.ldif")
	if err == nil {
		t.Fatalf("broken instance exited zero:\n%s", out)
	}
	if !strings.Contains(out, "violation") {
		t.Fatalf("missing violation report:\n%s", out)
	}
}

func TestCLIConsistentAndWitness(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	witness := filepath.Join(t.TempDir(), "w.ldif")
	out, err := runCLI(t, "bschema", "consistent",
		"-schema", "testdata/whitepages.bs", "-witness", witness)
	if err != nil || !strings.Contains(out, "consistent=true") {
		t.Fatalf("consistent: %v\n%s", err, out)
	}
	// The witness must itself pass check.
	out, err = runCLI(t, "bschema", "check",
		"-schema", "testdata/whitepages.bs", "-instance", witness)
	if err != nil {
		t.Fatalf("witness check: %v\n%s", err, out)
	}
	// The cycle schema must fail with an explanation.
	out, err = runCLI(t, "bschema", "consistent",
		"-schema", "testdata/cycle.bs", "-explain")
	if err == nil {
		t.Fatalf("inconsistent schema exited zero:\n%s", out)
	}
	if !strings.Contains(out, "∅⇓") {
		t.Fatalf("missing derivation:\n%s", out)
	}
}

func TestCLIApplyAndPipe(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	tmp := t.TempDir()
	corpus := filepath.Join(tmp, "corpus.ldif")
	out, err := runCLI(t, "bsgen", "corpus", "-n", "300")
	if err != nil {
		t.Fatalf("bsgen corpus: %v", err)
	}
	if err := os.WriteFile(corpus, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	changes := filepath.Join(tmp, "changes.ldif")
	out, err = runCLI(t, "bsgen", "updates", "-n", "8", "-corpus", corpus)
	if err != nil {
		t.Fatalf("bsgen updates: %v", err)
	}
	if err := os.WriteFile(changes, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	updated := filepath.Join(tmp, "updated.ldif")
	out, err = runCLI(t, "bschema", "apply",
		"-schema", "testdata/whitepages.bs", "-instance", corpus,
		"-changes", changes, "-counts", "-o", updated)
	if err != nil {
		t.Fatalf("apply: %v\n%s", err, out)
	}
	out, err = runCLI(t, "bschema", "check",
		"-schema", "testdata/whitepages.bs", "-instance", updated)
	if err != nil {
		t.Fatalf("updated corpus illegal: %v\n%s", err, out)
	}
	// Bad changes are rejected with nonzero exit.
	out, err = runCLI(t, "bschema", "apply",
		"-schema", "testdata/whitepages.bs", "-instance", "testdata/figure1.ldif",
		"-changes", "testdata/changes-bad.ldif")
	if err == nil {
		t.Fatalf("bad changes exited zero:\n%s", out)
	}
	if !strings.Contains(out, "rejected") {
		t.Fatalf("missing rejection message:\n%s", out)
	}
}

func TestCLIQueryAndSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	out, err := runCLI(t, "bschema", "query",
		"-instance", "testdata/figure1.ldif", "-explain",
		"-q", "(desc (select (objectClass=orgGroup)) (select (objectClass=person)))")
	if err != nil {
		t.Fatalf("query: %v\n%s", err, out)
	}
	if !strings.Contains(out, "o=att") || !strings.Contains(out, "total operand work") {
		t.Fatalf("query output:\n%s", out)
	}
	out, err = runCLI(t, "bschema", "search",
		"-instance", "testdata/figure1.ldif",
		"-filter", "(&(objectClass=person)(mail=*))")
	if err != nil {
		t.Fatalf("search: %v\n%s", err, out)
	}
	if !strings.Contains(out, "uid=laks") {
		t.Fatalf("search output:\n%s", out)
	}
}

func TestCLIFormatRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	out, err := runCLI(t, "bschema", "format", "-schema", "testdata/whitepages.bs")
	if err != nil {
		t.Fatalf("format: %v\n%s", err, out)
	}
	if !strings.Contains(out, "schema whitepages {") {
		t.Fatalf("format output:\n%s", out)
	}
}

func TestCLIServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := buildCLIs(t)
	cmd := exec.Command(filepath.Join(dir, "bsd"),
		"-schema", "testdata/whitepages.bs",
		"-instance", "testdata/figure1.ldif",
		"-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	// The daemon prints "bsd: serving ... on ADDR".
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.LastIndex(line, " on "); i >= 0 {
			addr = strings.TrimSpace(line[i+4:])
			break
		}
	}
	if addr == "" {
		t.Fatalf("no listen address announced")
	}
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("SEARCH (objectClass=orgUnit)\nQUIT\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	var lines []string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		lines = append(lines, strings.TrimSpace(line))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "ou=attLabs,o=att") || !strings.Contains(joined, "OK") {
		t.Fatalf("server dialogue:\n%s", joined)
	}
}

// Package txn implements directory update transactions (Section 4):
// sequences of entry-level insertions and deletions, their normalization
// into subtree insertions and deletions (Theorem 4.1), and an applier
// that preserves legality using the incremental tests of Figure 5
// (Theorem 4.2), with atomic rollback on violation.
//
// Beyond the paper, the package implements the two extensions Section 4
// sketches or implies:
//
//   - CountIndex: per-class entry counts making required-class elements
//     (c⇓) incrementally testable under deletion ("if we had the ability
//     to associate each ci with the number of entries that belong to
//     ci");
//   - ancestor narrowing: deletion can only break downward required
//     relationships for ancestors of the deleted subtree, so the
//     Figure 5 "not incrementally testable" rows can be rechecked along
//     the root path instead of over the whole surviving instance.
package txn

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"boundschema/internal/dirtree"
	"boundschema/internal/ldif"
)

// OpKind distinguishes the two LDAP update operations (Section 4.1).
type OpKind int

// Operation kinds.
const (
	OpAdd OpKind = iota
	OpDelete
	// OpMove relocates a whole subtree under a new parent (LDAP's
	// MODDN generalized to subtrees). Normalization expands it into a
	// subtree insertion at the destination plus a subtree deletion at
	// the origin, so the Figure 5 checks apply unchanged.
	OpMove
)

func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpDelete:
		return "delete"
	case OpMove:
		return "move"
	}
	return "?"
}

// Op is one entry-level update operation.
type Op struct {
	Kind    OpKind
	DN      string
	Classes []string                   // classes for OpAdd
	Attrs   map[string][]dirtree.Value // attribute values for OpAdd
	// NewParentDN is the destination parent for OpMove ("" moves the
	// subtree to the forest root).
	NewParentDN string
}

// Transaction is a sequence of distinct entry insertions and deletions,
// the update granularity of Section 4.1.
type Transaction struct {
	Ops []Op
}

// Add appends an insertion of a new entry with the given DN.
func (t *Transaction) Add(dn string, classes []string, attrs map[string][]dirtree.Value) {
	t.Ops = append(t.Ops, Op{Kind: OpAdd, DN: dn, Classes: classes, Attrs: attrs})
}

// Delete appends a deletion of the entry with the given DN.
func (t *Transaction) Delete(dn string) {
	t.Ops = append(t.Ops, Op{Kind: OpDelete, DN: dn})
}

// Move appends a relocation of the subtree rooted at dn to a new parent
// ("" makes it a forest root). The subtree keeps its RDNs and contents.
func (t *Transaction) Move(dn, newParentDN string) {
	t.Ops = append(t.Ops, Op{Kind: OpMove, DN: dn, NewParentDN: newParentDN})
}

// Len returns the number of operations.
func (t *Transaction) Len() int { return len(t.Ops) }

// WriteChanges serializes the transaction as LDIF change records, the
// inverse of FromRecords; used by the server's commit journal.
func (t *Transaction) WriteChanges(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, op := range t.Ops {
		fmt.Fprintf(bw, "dn: %s\n", op.DN)
		switch op.Kind {
		case OpAdd:
			fmt.Fprintln(bw, "changetype: add")
			for _, c := range op.Classes {
				fmt.Fprintf(bw, "objectClass: %s\n", c)
			}
			names := make([]string, 0, len(op.Attrs))
			for name := range op.Attrs {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				for _, v := range op.Attrs[name] {
					fmt.Fprintf(bw, "%s: %s\n", name, v.String())
				}
			}
		case OpDelete:
			fmt.Fprintln(bw, "changetype: delete")
		case OpMove:
			fmt.Fprintln(bw, "changetype: moddn")
			if op.NewParentDN != "" {
				fmt.Fprintf(bw, "newsuperior: %s\n", op.NewParentDN)
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// FromRecords converts LDIF change records (changetype add, delete or
// moddn) into a transaction, using reg to type attribute values.
func FromRecords(recs []*ldif.Record, reg *dirtree.Registry) (*Transaction, error) {
	t := &Transaction{}
	for _, rec := range recs {
		switch rec.Change {
		case ldif.ChangeAdd:
			var classes []string
			attrs := make(map[string][]dirtree.Value)
			for _, a := range rec.Attrs {
				if a.Name == dirtree.AttrObjectClass {
					classes = append(classes, a.Value)
					continue
				}
				v, err := dirtree.ParseValue(reg.Type(a.Name), a.Value)
				if err != nil {
					return nil, fmt.Errorf("txn: line %d: %v", rec.Line, err)
				}
				attrs[a.Name] = append(attrs[a.Name], v)
			}
			t.Add(rec.DN, classes, attrs)
		case ldif.ChangeDelete:
			t.Delete(rec.DN)
		case ldif.ChangeModDN:
			t.Move(rec.DN, rec.NewSuperior)
		default:
			return nil, fmt.Errorf("txn: line %d: record is not a change record", rec.Line)
		}
	}
	return t, nil
}

package txn

import (
	"fmt"
	"strings"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/hquery"
)

// CheckMode selects how the applier verifies legality preservation.
type CheckMode int

// Check modes.
const (
	// CheckIncremental uses the Figure 5 Δ-queries: content checks over
	// Δ only, incremental structure checks where Theorem 4.2 allows, and
	// the prescribed rechecks where it does not.
	CheckIncremental CheckMode = iota
	// CheckFull rechecks the whole instance after applying everything —
	// the baseline the incremental path is benchmarked against.
	CheckFull
	// CheckNone applies without checking (for bulk loads followed by one
	// explicit Check).
	CheckNone
)

// Applier applies update transactions to a directory while preserving
// legality, per Section 4. The zero value is not usable; construct with
// NewApplier.
type Applier struct {
	checker *core.Checker
	// Mode selects the verification strategy; default CheckIncremental.
	Mode CheckMode
	// Counts, when non-nil, makes required-class elements incrementally
	// testable under deletion (the Section 4 counts remark). The index
	// must have been built over the same directory.
	Counts *CountIndex
	// Keys, when non-nil, makes the Section 6.1 key-uniqueness checks
	// incremental: insertions probe the index instead of rescanning the
	// instance. Without it, key uniqueness is verified only by CheckFull
	// (or by an explicit Checker.CheckKeys).
	Keys *core.KeyIndex
	// NarrowDeletes enables the ancestor-narrowing extension: the
	// Figure 5 "N" deletion rows (downward required relationships) are
	// rechecked only along the deleted subtree's root path, since only
	// ancestors of Δ can lose witnesses. This is beyond the paper but
	// preserves verdicts exactly; see the package comment.
	NarrowDeletes bool
}

// NewApplier returns an applier checking against the given schema.
func NewApplier(s *core.Schema) *Applier {
	return &Applier{checker: core.NewChecker(s)}
}

// NewTrustedApplier returns an applier that applies without re-proving
// legality: CheckNone, no count or key indexes, so each transaction costs
// O(|Δ|) instead of re-running the Figure 5 Δ-checks and key probes. It
// is for records whose legality was already proven before they became
// durable — checksum-verified journal records during recovery, and
// replicated segments the primary acknowledged — where the caller keeps a
// terminal full Checker.Check (or the replica's divergence → read-only
// degradation) as the safety net. Structural impossibilities (a missing
// graft parent, a duplicate DN) still fail the Apply call itself.
func NewTrustedApplier(s *core.Schema) *Applier {
	a := NewApplier(s)
	a.Mode = CheckNone
	return a
}

// Checker exposes the underlying legality checker.
func (a *Applier) Checker() *core.Checker { return a.checker }

// Apply normalizes and applies the transaction to d. If the update would
// make the instance illegal, Apply rolls every operation back and returns
// the violation report; d is then unchanged. On success the returned
// report is empty.
//
// Per Theorem 4.1, the subtree insertions are applied and checked first,
// then the subtree deletions, and the verdict is independent of the
// original operation order.
func (a *Applier) Apply(d *dirtree.Directory, t *Transaction) (*core.Report, error) {
	norm, err := Normalize(d, t)
	if err != nil {
		return nil, err
	}
	return a.ApplyNormalized(d, norm)
}

// ApplyWithUndo is Apply plus a revert handle: on a successful, legal
// application it additionally returns a non-nil undo function that
// reverses the transaction and rebuilds the applier's count and key
// indexes. Undo must be called before any further mutation of d (the
// server's durable-commit path calls it under the same write lock when a
// journal write fails, so a non-durable commit is never visible).
func (a *Applier) ApplyWithUndo(d *dirtree.Directory, t *Transaction) (*core.Report, func() error, error) {
	norm, err := Normalize(d, t)
	if err != nil {
		return nil, nil, err
	}
	return a.applyNormalized(d, norm)
}

// ComposeUndo combines the undo closures of transactions applied in
// sequence into one closure reverting them all. Undos run newest-first,
// so each closure sees exactly the directory state its transaction left
// behind — the property the server's group-commit pipeline relies on
// when a failed batch sync must unwind every member (and anything
// applied on top) in reverse apply order. nil entries are skipped; the
// first failing undo aborts the unwind, since later (older) closures
// can no longer trust the state.
func ComposeUndo(undos ...func() error) func() error {
	return func() error {
		for i := len(undos) - 1; i >= 0; i-- {
			if undos[i] == nil {
				continue
			}
			if err := undos[i](); err != nil {
				return fmt.Errorf("txn: batch rollback at member %d: %v", i, err)
			}
		}
		return nil
	}
}

// ApplyNormalized applies a pre-normalized update.
func (a *Applier) ApplyNormalized(d *dirtree.Directory, norm *Normalized) (*core.Report, error) {
	r, _, err := a.applyNormalized(d, norm)
	return r, err
}

func (a *Applier) applyNormalized(d *dirtree.Directory, norm *Normalized) (*core.Report, func() error, error) {
	// Key collisions with entries this same update deletes (a moved
	// subtree's origin) are excused; the deletion removes them.
	pendingDelete := func(dn string) bool {
		for _, root := range norm.Deletes {
			if dn == root || strings.HasSuffix(dn, ","+root) {
				return true
			}
		}
		return false
	}
	var undo []func() error
	rollback := func() error {
		for i := len(undo) - 1; i >= 0; i-- {
			if err := undo[i](); err != nil {
				return fmt.Errorf("txn: rollback failed: %v", err)
			}
		}
		if a.Counts != nil {
			a.Counts.Rebuild(d)
		}
		if a.Keys != nil {
			a.Keys.Rebuild(d)
		}
		return nil
	}

	// Insertions first (Theorem 4.1).
	for _, ins := range norm.Inserts {
		var parent *dirtree.Entry
		if ins.ParentDN != "" {
			parent = d.ByDN(ins.ParentDN)
			if parent == nil {
				if rerr := rollback(); rerr != nil {
					return nil, nil, rerr
				}
				return nil, nil, fmt.Errorf("txn: graft parent %q vanished", ins.ParentDN)
			}
		}
		root, err := d.GraftSubtree(parent, ins.Fragment.Roots()[0])
		if err != nil {
			if rerr := rollback(); rerr != nil {
				return nil, nil, rerr
			}
			return nil, nil, err
		}
		rootDN := root.DN()
		undo = append(undo, func() error {
			e := d.ByDN(rootDN)
			if e == nil {
				return fmt.Errorf("inserted root %q vanished", rootDN)
			}
			_, err := d.DeleteSubtree(e)
			return err
		})
		if a.Counts != nil {
			a.Counts.NoteInsert(d, root)
		}
		if a.Keys != nil {
			if r := a.Keys.CheckInsertExcluding(d, root, pendingDelete); !r.Legal() {
				if rerr := rollback(); rerr != nil {
					return nil, nil, rerr
				}
				return r, nil, nil
			}
			a.Keys.NoteInsert(d, root)
		}
		if r := a.checkInsert(d, root); !r.Legal() {
			if rerr := rollback(); rerr != nil {
				return nil, nil, rerr
			}
			return r, nil, nil
		}
	}

	// Then deletions.
	for _, dn := range norm.Deletes {
		root := d.ByDN(dn)
		if root == nil {
			if rerr := rollback(); rerr != nil {
				return nil, nil, rerr
			}
			return nil, nil, fmt.Errorf("txn: delete root %q vanished", dn)
		}
		if r := a.checkDelete(d, root); !r.Legal() {
			if rerr := rollback(); rerr != nil {
				return nil, nil, rerr
			}
			return r, nil, nil
		}
		// Keep a copy for rollback, then delete.
		saved := dirtree.New(d.Registry())
		if _, err := saved.GraftSubtree(nil, root); err != nil {
			return nil, nil, err
		}
		parentDN := ""
		if p := root.Parent(); p != nil {
			parentDN = p.DN()
		}
		if a.Counts != nil {
			a.Counts.NoteDelete(d, root)
		}
		if a.Keys != nil {
			a.Keys.NoteDelete(d, root)
		}
		if _, err := d.DeleteSubtree(root); err != nil {
			return nil, nil, err
		}
		undo = append(undo, func() error {
			var parent *dirtree.Entry
			if parentDN != "" {
				parent = d.ByDN(parentDN)
				if parent == nil {
					return fmt.Errorf("delete parent %q vanished", parentDN)
				}
			}
			_, err := d.GraftSubtree(parent, saved.Roots()[0])
			return err
		})
	}

	if a.Mode == CheckFull {
		if r := a.checker.Check(d); !r.Legal() {
			if rerr := rollback(); rerr != nil {
				return nil, nil, rerr
			}
			return r, nil, nil
		}
	}
	return &core.Report{}, rollback, nil
}

// checkInsert verifies that the grafted subtree preserves legality.
func (a *Applier) checkInsert(d *dirtree.Directory, root *dirtree.Entry) *core.Report {
	r := &core.Report{}
	if a.Mode != CheckIncremental {
		return r // CheckFull verifies at the end; CheckNone never.
	}
	// Content schema: insertion preserves content legality iff Δ itself
	// is content-legal (Section 4.2).
	for _, e := range d.SubtreeView(root).Entries() {
		r.Merge(a.checker.CheckEntry(e))
	}
	// Structure schema: the Figure 5 insertion rows.
	b := hquery.DeltaBinding(d, root)
	for _, chk := range core.InsertChecks(a.checker.Schema().Structure) {
		if !chk.Holds(b) {
			r.Add(core.Violation{
				Kind:    violationKindFor(chk.Element),
				Element: chk.Element,
				Detail:  "insertion breaks this element (Figure 5 check)",
			})
		}
	}
	return r
}

// checkDelete verifies, before removal, that deleting the subtree
// preserves legality.
func (a *Applier) checkDelete(d *dirtree.Directory, root *dirtree.Entry) *core.Report {
	r := &core.Report{}
	if a.Mode != CheckIncremental {
		return r
	}
	b := hquery.DeltaBinding(d, root)
	for _, chk := range core.DeleteChecks(a.checker.Schema().Structure) {
		if rc, ok := chk.Element.(core.RequiredClass); ok && a.Counts != nil {
			// Counts make c⇓ incrementally testable under deletion.
			if a.Counts.Count(rc.Class)-countInSubtree(d, root, rc.Class) <= 0 {
				r.Add(core.Violation{
					Kind:    core.ViolationMissingClass,
					Element: chk.Element,
					Detail:  "deletion removes the last entry of a required class (count index)",
				})
			}
			continue
		}
		if rel, ok := chk.Element.(core.RequiredRel); ok && !chk.Incremental && a.NarrowDeletes {
			if w := NarrowedDeleteCheck(d, root, rel); w != nil {
				r.Add(core.Violation{
					Kind:    core.ViolationRequiredRel,
					Entry:   w,
					Element: rel,
					Detail:  "deletion removes the last witness (ancestor-narrowed check)",
				})
			}
			continue
		}
		if !chk.Holds(b) {
			r.Add(core.Violation{
				Kind:    violationKindFor(chk.Element),
				Element: chk.Element,
				Detail:  "deletion breaks this element (Figure 5 check)",
			})
		}
	}
	return r
}

// NarrowedDeleteCheck rechecks a downward required relationship only for
// the ancestors of the subtree about to be deleted — the only entries
// whose child or descendant sets shrink. It returns a violating entry or
// nil, with the same verdict as the full Figure 5 recheck. This is the
// ancestor-narrowing extension (see the package comment).
func NarrowedDeleteCheck(d *dirtree.Directory, root *dirtree.Entry, rel core.RequiredRel) *dirtree.Entry {
	base := d.ExceptSubtreeView(root)
	for anc := root.Parent(); anc != nil; anc = anc.Parent() {
		if !anc.HasClass(rel.Source) {
			continue
		}
		if !hasSurvivingWitness(anc, rel, base) {
			return anc
		}
	}
	return nil
}

func hasSurvivingWitness(e *dirtree.Entry, rel core.RequiredRel, base dirtree.View) bool {
	if rel.Axis == core.AxisChild {
		for _, c := range e.Children() {
			if c.HasClass(rel.Target) && base.Contains(c) {
				return true
			}
		}
		return false
	}
	var walk func(n *dirtree.Entry) bool
	walk = func(n *dirtree.Entry) bool {
		for _, c := range n.Children() {
			if !base.Contains(c) {
				continue
			}
			if c.HasClass(rel.Target) || walk(c) {
				return true
			}
		}
		return false
	}
	return walk(e)
}

func countInSubtree(d *dirtree.Directory, root *dirtree.Entry, class string) int {
	return len(d.SubtreeView(root).ClassEntries(class))
}

func violationKindFor(el core.Element) core.ViolationKind {
	switch el.(type) {
	case core.RequiredClass:
		return core.ViolationMissingClass
	case core.RequiredRel:
		return core.ViolationRequiredRel
	default:
		return core.ViolationForbiddenRel
	}
}

package txn

import (
	"boundschema/internal/dirtree"
)

// CountIndex maintains per-class entry counts alongside a directory,
// implementing the Section 4 remark: "if we had the ability to associate
// each ci with the number of entries that belong to ci, then Cr would
// also be incrementally testable for deletion". With the index, a
// deletion's required-class check is an O(|Δ|) count comparison instead
// of a scan of the survivors.
type CountIndex struct {
	counts map[string]int
}

// NewCountIndex builds the index over the current instance.
func NewCountIndex(d *dirtree.Directory) *CountIndex {
	ci := &CountIndex{}
	ci.Rebuild(d)
	return ci
}

// Rebuild recomputes all counts from scratch.
func (ci *CountIndex) Rebuild(d *dirtree.Directory) {
	ci.counts = make(map[string]int)
	for _, e := range d.Entries() {
		for _, c := range e.Classes() {
			ci.counts[c]++
		}
	}
}

// Count returns the number of entries that belong to class c.
func (ci *CountIndex) Count(c string) int { return ci.counts[c] }

// NoteInsert updates the counts for a grafted subtree.
func (ci *CountIndex) NoteInsert(d *dirtree.Directory, root *dirtree.Entry) {
	for _, e := range d.SubtreeView(root).Entries() {
		for _, c := range e.Classes() {
			ci.counts[c]++
		}
	}
}

// NoteDelete updates the counts for a subtree about to be deleted (or
// rolls back a NoteInsert).
func (ci *CountIndex) NoteDelete(d *dirtree.Directory, root *dirtree.Entry) {
	for _, e := range d.SubtreeView(root).Entries() {
		for _, c := range e.Classes() {
			ci.counts[c]--
			if ci.counts[c] == 0 {
				delete(ci.counts, c)
			}
		}
	}
}

package txn

import (
	"fmt"
	"sort"

	"boundschema/internal/dirtree"
	"boundschema/internal/ldif"
)

// InsertTree is one normalized subtree insertion: a standalone fragment
// directory to graft under ParentDN ("" grafts a new forest root).
type InsertTree struct {
	ParentDN string
	Fragment *dirtree.Directory // exactly one root
}

// Normalized is a transaction reduced to the Theorem 4.1 form: a set of
// subtree insertions followed by a set of subtree deletions, where no two
// subtree roots form an ancestor/descendant pair.
type Normalized struct {
	Inserts []InsertTree
	Deletes []string // DNs of subtree roots to delete, outermost only
}

// Normalize validates the transaction against the current instance and
// groups its entry-level operations into subtree insertions and
// deletions (Theorem 4.1). It rejects transactions that:
//
//   - operate on the same DN twice (Section 4.1 requires distinct ops);
//   - add an entry whose parent neither exists in d nor is added earlier
//     in the transaction;
//   - add an entry below a deleted subtree;
//   - delete a missing entry, or delete an entry while keeping one of
//     its descendants (LDAP deletes leaves only, so the net deleted set
//     must be closed under descendants).
func Normalize(d *dirtree.Directory, t *Transaction) (*Normalized, error) {
	t, moves, err := expandMoves(d, t)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]OpKind, len(t.Ops))
	for _, op := range t.Ops {
		if _, dup := seen[op.DN]; dup {
			return nil, fmt.Errorf("txn: duplicate operation on %q", op.DN)
		}
		seen[op.DN] = op.Kind
	}

	out := &Normalized{}

	// Deletions: collect the deleted set, find its roots, and check
	// descendant closure.
	deleted := make(map[string]bool)
	for _, op := range t.Ops {
		if op.Kind == OpDelete {
			if d.ByDN(op.DN) == nil {
				return nil, fmt.Errorf("txn: cannot delete missing entry %q", op.DN)
			}
			deleted[op.DN] = true
		}
	}
	for dn := range deleted {
		e := d.ByDN(dn)
		for _, c := range e.Children() {
			if !deleted[c.DN()] {
				return nil, fmt.Errorf("txn: deleting %q would orphan its child %q", dn, c.DN())
			}
		}
		if p := e.Parent(); p == nil || !deleted[p.DN()] {
			out.Deletes = append(out.Deletes, dn)
		}
	}
	sort.Strings(out.Deletes)

	// Insertions: roots are the added entries whose parent is not added;
	// their parent must exist in d and must not be scheduled for
	// deletion.
	frags := make(map[string]*InsertTree) // inserted root DN -> fragment
	reg := d.Registry()
	for _, op := range t.Ops {
		if op.Kind != OpAdd {
			continue
		}
		rdn, parentDN, err := ldif.SplitDN(op.DN)
		if err != nil {
			return nil, err
		}
		var fragParent *dirtree.Entry
		var frag *InsertTree
		if k, added := seen[parentDN]; parentDN != "" && added && k == OpAdd {
			// Parent added in this transaction: find its fragment. The
			// parent op must precede this one, which the fragment lookup
			// enforces.
			frag = fragmentFor(frags, parentDN)
			if frag == nil {
				return nil, fmt.Errorf("txn: %q added before its parent %q", op.DN, parentDN)
			}
			fragParent = frag.Fragment.ByDN(fragmentDN(parentDN, frag))
			if fragParent == nil {
				return nil, fmt.Errorf("txn: %q added before its parent %q", op.DN, parentDN)
			}
		} else {
			// New subtree root.
			if parentDN != "" {
				if deleted[parentDN] || underAny(parentDN, deleted) {
					return nil, fmt.Errorf("txn: %q would be inserted below deleted entry %q", op.DN, parentDN)
				}
				if d.ByDN(parentDN) == nil {
					return nil, fmt.Errorf("txn: parent %q of added entry %q does not exist", parentDN, op.DN)
				}
			}
			if d.ByDN(op.DN) != nil {
				return nil, fmt.Errorf("txn: added entry %q already exists", op.DN)
			}
			frag = &InsertTree{ParentDN: parentDN, Fragment: dirtree.New(reg)}
			frags[op.DN] = frag
			out.Inserts = append(out.Inserts, InsertTree{})
		}

		var e *dirtree.Entry
		if fragParent == nil {
			e, err = frag.Fragment.AddRoot(rdn, op.Classes...)
		} else {
			e, err = frag.Fragment.AddChild(fragParent, rdn, op.Classes...)
		}
		if err != nil {
			return nil, fmt.Errorf("txn: %v", err)
		}
		for name, vs := range op.Attrs {
			for _, v := range vs {
				e.AddValue(name, v)
			}
		}
	}
	// Rebuild the insert list in deterministic order.
	out.Inserts = out.Inserts[:0]
	rootDNs := make([]string, 0, len(frags))
	for dn := range frags {
		rootDNs = append(rootDNs, dn)
	}
	sort.Strings(rootDNs)
	for _, dn := range rootDNs {
		out.Inserts = append(out.Inserts, *frags[dn])
	}
	out.Inserts = append(out.Inserts, moves...)
	return out, nil
}

// expandMoves turns each OpMove into a subtree insertion at the
// destination (copied from the live subtree) plus the per-entry deletions
// of the origin, leaving a transaction with only adds and deletes.
func expandMoves(d *dirtree.Directory, t *Transaction) (*Transaction, []InsertTree, error) {
	var moves []InsertTree
	hasMove := false
	for _, op := range t.Ops {
		if op.Kind == OpMove {
			hasMove = true
			break
		}
	}
	if !hasMove {
		return t, nil, nil
	}
	out := &Transaction{}
	for _, op := range t.Ops {
		if op.Kind != OpMove {
			out.Ops = append(out.Ops, op)
			continue
		}
		src := d.ByDN(op.DN)
		if src == nil {
			return nil, nil, fmt.Errorf("txn: cannot move missing entry %q", op.DN)
		}
		if op.NewParentDN != "" {
			dst := d.ByDN(op.NewParentDN)
			if dst == nil {
				return nil, nil, fmt.Errorf("txn: move destination %q does not exist", op.NewParentDN)
			}
			for a := dst; a != nil; a = a.Parent() {
				if a == src {
					return nil, nil, fmt.Errorf("txn: cannot move %q below itself", op.DN)
				}
			}
			newDN := src.RDN() + "," + op.NewParentDN
			if d.ByDN(newDN) != nil {
				return nil, nil, fmt.Errorf("txn: move target %q already exists", newDN)
			}
		} else if d.ByDN(src.RDN()) != nil && d.ByDN(src.RDN()) != src {
			return nil, nil, fmt.Errorf("txn: move target %q already exists", src.RDN())
		}
		// Copy the subtree into a standalone fragment for insertion at
		// the destination.
		frag := dirtree.New(d.Registry())
		if _, err := frag.GraftSubtree(nil, src); err != nil {
			return nil, nil, err
		}
		moves = append(moves, InsertTree{ParentDN: op.NewParentDN, Fragment: frag})
		// Delete the origin, listing every entry so the descendant-
		// closure validation holds.
		var listAll func(e *dirtree.Entry)
		listAll = func(e *dirtree.Entry) {
			out.Delete(e.DN())
			for _, c := range e.Children() {
				listAll(c)
			}
		}
		listAll(src)
	}
	return out, moves, nil
}

// fragmentFor finds the insert fragment containing the given DN (the DN
// of an added entry that is not itself a fragment root).
func fragmentFor(frags map[string]*InsertTree, dn string) *InsertTree {
	for cur := dn; cur != ""; {
		if f, ok := frags[cur]; ok {
			return f
		}
		_, parent, err := ldif.SplitDN(cur)
		if err != nil {
			return nil
		}
		cur = parent
	}
	return nil
}

// fragmentDN rewrites an absolute DN into the fragment's local DN space:
// the fragment root's DN inside the fragment is just its RDN, with the
// graft parent's suffix stripped.
func fragmentDN(dn string, f *InsertTree) string {
	if f.ParentDN == "" {
		return dn
	}
	suffix := "," + f.ParentDN
	if len(dn) > len(suffix) && dn[len(dn)-len(suffix):] == suffix {
		return dn[:len(dn)-len(suffix)]
	}
	return dn
}

// underAny reports whether dn lies at or below any DN in the set.
func underAny(dn string, set map[string]bool) bool {
	for cur := dn; cur != ""; {
		if set[cur] {
			return true
		}
		_, parent, err := ldif.SplitDN(cur)
		if err != nil {
			return false
		}
		cur = parent
	}
	return false
}

package txn

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/ldif"
	"boundschema/internal/workload"
)

func person(name string) map[string][]dirtree.Value {
	return map[string][]dirtree.Value{"name": {dirtree.String(name)}}
}

func TestNormalizeGroupsSubtrees(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	tx := &Transaction{}
	// One inserted subtree of three entries plus an independent person.
	tx.Add("ou=networking,ou=attLabs,o=att", []string{"orgUnit", "orgGroup", "top"}, nil)
	tx.Add("uid=pat,ou=networking,ou=attLabs,o=att", []string{"person", "top"}, person("pat"))
	tx.Add("uid=kim,ou=networking,ou=attLabs,o=att", []string{"person", "top"}, person("kim"))
	tx.Add("uid=lee,ou=databases,ou=attLabs,o=att", []string{"person", "top"}, person("lee"))
	// One deleted subtree: armstrong.
	tx.Delete("uid=armstrong,ou=attLabs,o=att")

	norm, err := Normalize(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(norm.Inserts) != 2 {
		t.Fatalf("inserts = %d, want 2", len(norm.Inserts))
	}
	sizes := []int{norm.Inserts[0].Fragment.Len(), norm.Inserts[1].Fragment.Len()}
	if !(sizes[0] == 3 && sizes[1] == 1 || sizes[0] == 1 && sizes[1] == 3) {
		t.Errorf("fragment sizes = %v, want {3,1}", sizes)
	}
	if len(norm.Deletes) != 1 || norm.Deletes[0] != "uid=armstrong,ou=attLabs,o=att" {
		t.Errorf("deletes = %v", norm.Deletes)
	}
}

func TestNormalizeDeleteSubtreeRoots(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	tx := &Transaction{}
	// Delete the whole databases subtree, listed in arbitrary order.
	tx.Delete("uid=laks,ou=databases,ou=attLabs,o=att")
	tx.Delete("ou=databases,ou=attLabs,o=att")
	tx.Delete("uid=suciu,ou=databases,ou=attLabs,o=att")
	norm, err := Normalize(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(norm.Deletes) != 1 || norm.Deletes[0] != "ou=databases,ou=attLabs,o=att" {
		t.Errorf("deletes = %v, want just the subtree root", norm.Deletes)
	}
}

func TestNormalizeErrors(t *testing.T) {
	s := workload.WhitePagesSchema()
	base := "ou=attLabs,o=att"
	cases := []struct {
		name string
		tx   func() *Transaction
		want string
	}{
		{"duplicate op", func() *Transaction {
			tx := &Transaction{}
			tx.Delete("uid=armstrong," + base)
			tx.Delete("uid=armstrong," + base)
			return tx
		}, "duplicate"},
		{"delete missing", func() *Transaction {
			tx := &Transaction{}
			tx.Delete("uid=ghost," + base)
			return tx
		}, "missing"},
		{"orphaning delete", func() *Transaction {
			tx := &Transaction{}
			tx.Delete("ou=databases," + base)
			return tx
		}, "orphan"},
		{"add under missing parent", func() *Transaction {
			tx := &Transaction{}
			tx.Add("uid=x,ou=ghost,"+base, []string{"person", "top"}, nil)
			return tx
		}, "does not exist"},
		{"child before parent", func() *Transaction {
			tx := &Transaction{}
			tx.Add("uid=x,ou=new,"+base, []string{"person", "top"}, nil)
			tx.Add("ou=new,"+base, []string{"orgUnit", "orgGroup", "top"}, nil)
			return tx
		}, "before its parent"},
		{"add below deleted", func() *Transaction {
			tx := &Transaction{}
			tx.Delete("uid=laks,ou=databases," + base)
			tx.Delete("uid=suciu,ou=databases," + base)
			tx.Delete("ou=databases," + base)
			tx.Add("uid=x,ou=databases,"+base, []string{"person", "top"}, nil)
			return tx
		}, "deleted"},
		{"add existing", func() *Transaction {
			tx := &Transaction{}
			tx.Add("uid=armstrong,"+base, []string{"person", "top"}, nil)
			return tx
		}, "already exists"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := workload.WhitePagesInstance(s)
			_, err := Normalize(d, c.tx())
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestApplyLegalTransaction(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	a := NewApplier(s)
	tx := &Transaction{}
	tx.Add("ou=networking,ou=attLabs,o=att", []string{"orgUnit", "orgGroup", "top"}, nil)
	tx.Add("uid=pat,ou=networking,ou=attLabs,o=att", []string{"person", "top"}, person("pat"))
	tx.Delete("uid=armstrong,ou=attLabs,o=att")

	r, err := a.Apply(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Legal() {
		t.Fatalf("legal transaction rejected:\n%s", r)
	}
	if d.ByDN("uid=pat,ou=networking,ou=attLabs,o=att") == nil {
		t.Errorf("insert not applied")
	}
	if d.ByDN("uid=armstrong,ou=attLabs,o=att") != nil {
		t.Errorf("delete not applied")
	}
	if rep := core.NewChecker(s).Check(d); !rep.Legal() {
		t.Fatalf("instance illegal after apply:\n%s", rep)
	}
}

func TestApplyRollsBackOnViolation(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	before := d.String()
	a := NewApplier(s)

	// The Section 4.2 example: an empty orgUnit violates
	// orgGroup →de person.
	tx := &Transaction{}
	tx.Add("uid=extra,ou=databases,ou=attLabs,o=att", []string{"person", "top"}, person("extra"))
	tx.Add("ou=empty,ou=attLabs,o=att", []string{"orgUnit", "orgGroup", "top"}, nil)
	r, err := a.Apply(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Legal() {
		t.Fatalf("violating transaction accepted")
	}
	if d.String() != before {
		t.Errorf("rollback incomplete:\n%s\nvs\n%s", d.String(), before)
	}
	if d.Len() != 6 {
		t.Errorf("len = %d after rollback, want 6", d.Len())
	}
}

func TestApplyPaperSuciuExample(t *testing.T) {
	// Section 4.2: adding an orgUnit under suciu violates both
	// orgUnit →pa orgGroup (the unit's parent is a person) and
	// person ⇥ch top.
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	a := NewApplier(s)
	tx := &Transaction{}
	tx.Add("ou=bad,uid=suciu,ou=databases,ou=attLabs,o=att", []string{"orgUnit", "orgGroup", "top"}, nil)
	tx.Add("uid=kid,ou=bad,uid=suciu,ou=databases,ou=attLabs,o=att", []string{"person", "top"}, person("kid"))
	r, err := a.Apply(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Legal() {
		t.Fatalf("paper's violating insertion accepted")
	}
	kinds := map[core.ViolationKind]bool{}
	for _, v := range r.Violations {
		kinds[v.Kind] = true
	}
	if !kinds[core.ViolationRequiredRel] || !kinds[core.ViolationForbiddenRel] {
		t.Errorf("expected both violation kinds, got:\n%s", r)
	}
}

func TestDeleteLastPersonRejected(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	for _, mode := range []struct {
		name   string
		counts bool
	}{{"scan", false}, {"count-index", true}} {
		t.Run(mode.name, func(t *testing.T) {
			dd := d.Clone()
			a := NewApplier(s)
			if mode.counts {
				a.Counts = NewCountIndex(dd)
			}
			// Deleting all three persons breaks person⇓ and
			// orgGroup →de person.
			tx := &Transaction{}
			tx.Delete("uid=armstrong,ou=attLabs,o=att")
			tx.Delete("uid=laks,ou=databases,ou=attLabs,o=att")
			tx.Delete("uid=suciu,ou=databases,ou=attLabs,o=att")
			r, err := a.Apply(dd, tx)
			if err != nil {
				t.Fatal(err)
			}
			if r.Legal() {
				t.Fatalf("deleting every person accepted")
			}
			if dd.Len() != 6 {
				t.Errorf("rollback incomplete: len = %d", dd.Len())
			}
			if mode.counts {
				// The index must reflect the rolled-back state.
				if a.Counts.Count("person") != 3 {
					t.Errorf("count index desynced: person = %d", a.Counts.Count("person"))
				}
			}
		})
	}
}

func TestFromRecords(t *testing.T) {
	src := `dn: uid=new,ou=attLabs,o=att
changetype: add
objectClass: person
objectClass: top
name: new person

dn: uid=armstrong,ou=attLabs,o=att
changetype: delete
`
	recs, err := ldif.NewReader(strings.NewReader(src)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	s := workload.WhitePagesSchema()
	tx, err := FromRecords(recs, s.Registry)
	if err != nil {
		t.Fatal(err)
	}
	if tx.Len() != 2 || tx.Ops[0].Kind != OpAdd || tx.Ops[1].Kind != OpDelete {
		t.Fatalf("tx = %+v", tx)
	}
	d := workload.WhitePagesInstance(s)
	a := NewApplier(s)
	r, err := a.Apply(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Legal() {
		t.Fatalf("LDIF transaction rejected:\n%s", r)
	}
}

func TestFromRecordsRejectsContentRecord(t *testing.T) {
	recs := []*ldif.Record{{DN: "o=x", Change: ldif.ChangeNone}}
	if _, err := FromRecords(recs, dirtree.NewRegistry()); err == nil {
		t.Error("content record accepted as change")
	}
}

// TestQuickIncrementalAgreesWithFull: on random legal corpora and random
// transactions, the incremental applier must accept/reject exactly as a
// full recheck does, for all applier configurations (Theorems 4.1/4.2).
func TestQuickIncrementalAgreesWithFull(t *testing.T) {
	s := workload.WhitePagesSchema()
	f := func(seed int64, nops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := workload.Corpus(s, rng, 40)

		tx := randomTransaction(s, d, rng, int(nops%6)+1)

		full := d.Clone()
		fullApplier := NewApplier(s)
		fullApplier.Mode = CheckFull
		rFull, errFull := fullApplier.Apply(full, tx)

		for _, cfg := range []struct {
			counts, narrow bool
		}{{false, false}, {true, false}, {false, true}, {true, true}} {
			inc := d.Clone()
			a := NewApplier(s)
			if cfg.counts {
				a.Counts = NewCountIndex(inc)
			}
			a.NarrowDeletes = cfg.narrow
			rInc, errInc := a.Apply(inc, tx)
			if (errFull != nil) != (errInc != nil) {
				t.Logf("error mismatch: full=%v inc=%v", errFull, errInc)
				return false
			}
			if errFull != nil {
				continue
			}
			if rFull.Legal() != rInc.Legal() {
				t.Logf("verdict mismatch (counts=%v narrow=%v): full=%v inc=%v\nfull:\n%s\ninc:\n%s",
					cfg.counts, cfg.narrow, rFull.Legal(), rInc.Legal(), rFull, rInc)
				return false
			}
			if rFull.Legal() && canonical(inc) != canonical(full) {
				t.Logf("applied instances differ")
				return false
			}
			if !rFull.Legal() && canonical(inc) != canonical(d) {
				t.Logf("rollback differs from original")
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// randomTransaction builds a mix of legality-preserving and violating
// operations.
func randomTransaction(s *core.Schema, d *dirtree.Directory, rng *rand.Rand, n int) *Transaction {
	tx := &Transaction{}
	ents := d.Entries()
	used := map[string]bool{}
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0: // insert a well-formed orgUnit+person under a random entry
			parent := ents[rng.Intn(len(ents))]
			dn := "ou=t" + itoa(i) + "," + parent.DN()
			if used[dn] {
				continue
			}
			used[dn] = true
			tx.Add(dn, []string{"orgUnit", "orgGroup", "top"}, nil)
			tx.Add("uid=tp"+itoa(i)+","+dn, []string{"person", "top"}, person("t"))
		case 1: // insert a bare person under a random entry
			parent := ents[rng.Intn(len(ents))]
			dn := "uid=s" + itoa(i) + "," + parent.DN()
			if used[dn] {
				continue
			}
			used[dn] = true
			attrs := person("s")
			if rng.Intn(5) == 0 {
				attrs = nil // missing required name: content violation
			}
			tx.Add(dn, []string{"person", "top"}, attrs)
		case 2: // insert an empty orgUnit (often violating)
			parent := ents[rng.Intn(len(ents))]
			dn := "ou=e" + itoa(i) + "," + parent.DN()
			if used[dn] {
				continue
			}
			used[dn] = true
			tx.Add(dn, []string{"orgUnit", "orgGroup", "top"}, nil)
		default: // delete a random leaf (and sometimes a subtree)
			e := ents[rng.Intn(len(ents))]
			if e.Parent() == nil {
				continue
			}
			ok := true
			var dns []string
			var collect func(x *dirtree.Entry)
			collect = func(x *dirtree.Entry) {
				if used[x.DN()] {
					ok = false
					return
				}
				dns = append(dns, x.DN())
				for _, c := range x.Children() {
					collect(c)
				}
			}
			collect(e)
			if !ok || len(dns) > 8 {
				continue
			}
			for _, dn := range dns {
				used[dn] = true
				tx.Delete(dn)
			}
		}
	}
	return tx
}

// canonical renders a directory outline with children sorted by RDN, so
// instances that differ only in sibling order compare equal (rollback
// re-grafts at the end of the child list).
func canonical(d *dirtree.Directory) string {
	var b strings.Builder
	var walk func(e *dirtree.Entry, depth int)
	walk = func(e *dirtree.Entry, depth int) {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		b.WriteString(e.RDN())
		b.WriteString(" (")
		b.WriteString(strings.Join(e.Classes(), ","))
		b.WriteString(")\n")
		kids := append([]*dirtree.Entry(nil), e.Children()...)
		sort.Slice(kids, func(i, j int) bool { return kids[i].RDN() < kids[j].RDN() })
		for _, c := range kids {
			walk(c, depth+1)
		}
	}
	roots := append([]*dirtree.Entry(nil), d.Roots()...)
	sort.Slice(roots, func(i, j int) bool { return roots[i].RDN() < roots[j].RDN() })
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	s := ""
	for i > 0 {
		s = string(rune('0'+i%10)) + s
		i /= 10
	}
	return s
}

func TestRootInsertion(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	a := NewApplier(s)
	tx := &Transaction{}
	// A second legal organization tree at the root.
	tx.Add("o=bell", []string{"organization", "orgGroup", "top"}, nil)
	tx.Add("ou=unit,o=bell", []string{"orgUnit", "orgGroup", "top"}, nil)
	tx.Add("uid=who,ou=unit,o=bell", []string{"person", "top"}, person("who"))
	r, err := a.Apply(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Legal() {
		t.Fatalf("legal root insertion rejected:\n%s", r)
	}
	if len(d.Roots()) != 2 {
		t.Errorf("roots = %d, want 2", len(d.Roots()))
	}
	if rep := core.NewChecker(s).Check(d); !rep.Legal() {
		t.Fatalf("instance illegal after root insert:\n%s", rep)
	}
}

func TestApplierModes(t *testing.T) {
	s := workload.WhitePagesSchema()

	t.Run("CheckNone applies without validation", func(t *testing.T) {
		d := workload.WhitePagesInstance(s)
		a := NewApplier(s)
		a.Mode = CheckNone
		tx := &Transaction{}
		tx.Add("ou=empty,ou=attLabs,o=att", []string{"orgUnit", "orgGroup", "top"}, nil)
		r, err := a.Apply(d, tx)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Legal() {
			t.Fatalf("CheckNone must not report violations")
		}
		// The instance is now actually illegal.
		if core.NewChecker(s).Check(d).Legal() {
			t.Fatalf("expected the bulk-loaded instance to be illegal")
		}
	})

	t.Run("CheckFull rejects and rolls back", func(t *testing.T) {
		d := workload.WhitePagesInstance(s)
		a := NewApplier(s)
		a.Mode = CheckFull
		tx := &Transaction{}
		tx.Add("ou=empty,ou=attLabs,o=att", []string{"orgUnit", "orgGroup", "top"}, nil)
		r, err := a.Apply(d, tx)
		if err != nil {
			t.Fatal(err)
		}
		if r.Legal() {
			t.Fatalf("CheckFull accepted a violating insert")
		}
		if d.Len() != 6 {
			t.Errorf("rollback incomplete")
		}
	})
}

func TestCountIndexLifecycle(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	ci := NewCountIndex(d)
	if ci.Count("person") != 3 || ci.Count("organization") != 1 || ci.Count("ghost") != 0 {
		t.Fatalf("initial counts wrong")
	}
	labs := d.ByDN("ou=attLabs,o=att")
	frag := dirtree.New(s.Registry)
	fr, _ := frag.AddRoot("ou=new", "orgUnit", "orgGroup", "top")
	p, _ := frag.AddChild(fr, "uid=np", "person", "top")
	p.AddValue("name", dirtree.String("np"))
	root, err := d.GraftSubtree(labs, frag.Roots()[0])
	if err != nil {
		t.Fatal(err)
	}
	ci.NoteInsert(d, root)
	if ci.Count("person") != 4 || ci.Count("orgUnit") != 3 {
		t.Errorf("counts after insert wrong: person=%d orgUnit=%d", ci.Count("person"), ci.Count("orgUnit"))
	}
	ci.NoteDelete(d, root)
	if ci.Count("person") != 3 {
		t.Errorf("counts after delete wrong")
	}
	ci.Rebuild(d)
	if ci.Count("person") != 4 { // the grafted person is still in d
		t.Errorf("rebuild wrong: person=%d", ci.Count("person"))
	}
}

func TestApplierKeyIndex(t *testing.T) {
	s := workload.WhitePagesSchema()
	s.Attrs.Allow("person", "employeeID")
	s.DeclareKey("employeeID")
	d := workload.WhitePagesInstance(s)
	laks := d.ByDN("uid=laks,ou=databases,ou=attLabs,o=att")
	laks.AddValue("employeeID", dirtree.String("E-1"))

	a := NewApplier(s)
	a.Keys = core.NewKeyIndex(s, d)

	attrs := func(id string) map[string][]dirtree.Value {
		return map[string][]dirtree.Value{
			"name":       {dirtree.String("x")},
			"employeeID": {dirtree.String(id)},
		}
	}
	// Colliding key: rejected and rolled back.
	tx := &Transaction{}
	tx.Add("uid=dup,ou=attLabs,o=att", []string{"person", "top"}, attrs("E-1"))
	r, err := a.Apply(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Legal() {
		t.Fatalf("key collision accepted")
	}
	if len(r.ByKind(core.ViolationDuplicateKey)) == 0 {
		t.Fatalf("wrong violation kind:\n%s", r)
	}
	if d.Len() != 6 {
		t.Errorf("rollback incomplete")
	}
	// Fresh key: accepted; then its value becomes occupied.
	tx = &Transaction{}
	tx.Add("uid=ok,ou=attLabs,o=att", []string{"person", "top"}, attrs("E-2"))
	if r, err := a.Apply(d, tx); err != nil || !r.Legal() {
		t.Fatalf("fresh key rejected: %v %s", err, r)
	}
	tx = &Transaction{}
	tx.Add("uid=dup2,ou=attLabs,o=att", []string{"person", "top"}, attrs("E-2"))
	if r, err := a.Apply(d, tx); err != nil || r.Legal() {
		t.Fatalf("occupied key accepted: %v", err)
	}
	// Deleting the holder frees the key.
	tx = &Transaction{}
	tx.Delete("uid=ok,ou=attLabs,o=att")
	if r, err := a.Apply(d, tx); err != nil || !r.Legal() {
		t.Fatalf("delete rejected: %v %s", err, r)
	}
	tx = &Transaction{}
	tx.Add("uid=dup3,ou=attLabs,o=att", []string{"person", "top"}, attrs("E-2"))
	if r, err := a.Apply(d, tx); err != nil || !r.Legal() {
		t.Fatalf("freed key rejected: %v %s", err, r)
	}
}

func TestMoveSubtree(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	a := NewApplier(s)

	// Move the databases unit (and its two researchers) directly under
	// the organization. Everything stays legal.
	tx := &Transaction{}
	tx.Move("ou=databases,ou=attLabs,o=att", "o=att")
	r, err := a.Apply(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Legal() {
		t.Fatalf("legal move rejected:\n%s", r)
	}
	if d.ByDN("ou=databases,ou=attLabs,o=att") != nil {
		t.Errorf("origin still present")
	}
	moved := d.ByDN("uid=laks,ou=databases,o=att")
	if moved == nil {
		t.Fatalf("moved descendant missing")
	}
	if n := len(moved.Attr("mail")); n != 2 {
		t.Errorf("moved entry lost attributes: mail=%d", n)
	}
	if rep := core.NewChecker(s).Check(d); !rep.Legal() {
		t.Fatalf("instance illegal after move:\n%s", rep)
	}
}

func TestMoveRejectedWhenIllegal(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	before := canonical(d)
	a := NewApplier(s)

	// Moving the unit under a person breaks person ⇥ch top and
	// orgUnit →pa orgGroup.
	tx := &Transaction{}
	tx.Move("ou=databases,ou=attLabs,o=att", "uid=armstrong,ou=attLabs,o=att")
	r, err := a.Apply(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Legal() {
		t.Fatalf("illegal move accepted")
	}
	if canonical(d) != before {
		t.Errorf("rollback incomplete after rejected move")
	}
}

func TestMoveErrors(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	cases := []struct {
		name, dn, dest, want string
	}{
		{"missing source", "ou=ghost,o=att", "o=att", "missing"},
		{"missing destination", "ou=databases,ou=attLabs,o=att", "ou=ghost,o=att", "does not exist"},
		{"below itself", "ou=attLabs,o=att", "ou=databases,ou=attLabs,o=att", "below itself"},
		{"target exists", "ou=databases,ou=attLabs,o=att", "ou=databases,ou=attLabs,o=att", "below itself"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tx := &Transaction{}
			tx.Move(c.dn, c.dest)
			if _, err := Normalize(d, tx); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestMoveToRoot(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	a := NewApplier(s)
	// An orgUnit at the root violates orgUnit →pa orgGroup: rejected.
	tx := &Transaction{}
	tx.Move("ou=databases,ou=attLabs,o=att", "")
	r, err := a.Apply(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Legal() {
		t.Fatalf("root move should violate orgUnit →pa orgGroup")
	}
	if d.Len() != 6 {
		t.Errorf("rollback incomplete")
	}
}

func TestMoveWithKeyIndex(t *testing.T) {
	s := workload.WhitePagesSchema()
	s.Attrs.Allow("person", "employeeID")
	s.DeclareKey("employeeID")
	d := workload.WhitePagesInstance(s)
	laks := d.ByDN("uid=laks,ou=databases,ou=attLabs,o=att")
	laks.AddValue("employeeID", dirtree.String("E-1"))

	a := NewApplier(s)
	a.Keys = core.NewKeyIndex(s, d)
	// Moving the subtree that HOLDS the key must not self-collide.
	tx := &Transaction{}
	tx.Move("ou=databases,ou=attLabs,o=att", "o=att")
	r, err := a.Apply(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Legal() {
		t.Fatalf("self-move flagged as key collision:\n%s", r)
	}
	// The key is still indexed at its new location: a fresh duplicate is
	// rejected.
	tx = &Transaction{}
	tx.Add("uid=dup,ou=attLabs,o=att", []string{"person", "top"},
		map[string][]dirtree.Value{
			"name":       {dirtree.String("dup")},
			"employeeID": {dirtree.String("E-1")},
		})
	r, err = a.Apply(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	if r.Legal() {
		t.Fatalf("duplicate of moved key accepted")
	}
}

// TestWriteChangesRoundTrip: a transaction serialized as LDIF change
// records parses back to an equivalent transaction, and both apply to the
// same result.
func TestWriteChangesRoundTrip(t *testing.T) {
	s := workload.WhitePagesSchema()
	tx := &Transaction{}
	tx.Add("ou=networking,ou=attLabs,o=att", []string{"orgUnit", "orgGroup", "top"}, nil)
	tx.Add("uid=pat,ou=networking,ou=attLabs,o=att", []string{"person", "top"},
		map[string][]dirtree.Value{"name": {dirtree.String("pat doe")}})
	tx.Delete("uid=armstrong,ou=attLabs,o=att")
	tx.Move("ou=databases,ou=attLabs,o=att", "o=att")

	var buf strings.Builder
	if err := tx.WriteChanges(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ldif.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("serialized changes do not parse: %v\n%s", err, buf.String())
	}
	back, err := FromRecords(recs, s.Registry)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tx.Len() {
		t.Fatalf("op count changed: %d -> %d", tx.Len(), back.Len())
	}
	for i, op := range tx.Ops {
		if back.Ops[i].Kind != op.Kind || back.Ops[i].DN != op.DN || back.Ops[i].NewParentDN != op.NewParentDN {
			t.Errorf("op %d changed: %+v -> %+v", i, op, back.Ops[i])
		}
	}

	d1 := workload.WhitePagesInstance(s)
	d2 := workload.WhitePagesInstance(s)
	a := NewApplier(s)
	r1, err1 := a.Apply(d1, tx)
	r2, err2 := a.Apply(d2, back)
	if err1 != nil || err2 != nil {
		t.Fatalf("apply: %v / %v", err1, err2)
	}
	if r1.Legal() != r2.Legal() || canonical(d1) != canonical(d2) {
		t.Fatalf("round-tripped transaction applies differently")
	}
}

func TestOpKindString(t *testing.T) {
	if OpAdd.String() != "add" || OpDelete.String() != "delete" || OpMove.String() != "move" {
		t.Errorf("OpKind strings wrong")
	}
	if OpKind(99).String() != "?" {
		t.Errorf("unknown kind should render ?")
	}
	s := workload.WhitePagesSchema()
	a := NewApplier(s)
	if a.Checker() == nil || a.Checker().Schema() != s {
		t.Errorf("Checker accessor wrong")
	}
}

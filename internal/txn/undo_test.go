package txn

import (
	"testing"

	"boundschema/internal/core"
	"boundschema/internal/workload"
)

// TestApplyWithUndo exercises the revert handle behind the server's
// durable-commit path: a successfully applied transaction must be fully
// reversible, including the applier's count index, and the applier must
// keep working after an undo.
func TestApplyWithUndo(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	a := NewApplier(s)
	a.Counts = NewCountIndex(d)
	a.NarrowDeletes = true
	before := d.String()

	tx := &Transaction{}
	tx.Add("ou=networking,ou=attLabs,o=att", []string{"orgUnit", "orgGroup", "top"}, nil)
	tx.Add("uid=pat,ou=networking,ou=attLabs,o=att", []string{"person", "top"}, person("pat"))
	tx.Delete("uid=armstrong,ou=attLabs,o=att")
	tx.Move("ou=databases,ou=attLabs,o=att", "o=att")

	r, undo, err := a.ApplyWithUndo(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Legal() {
		t.Fatalf("legal transaction rejected:\n%s", r)
	}
	if undo == nil {
		t.Fatal("no undo handle on a successful apply")
	}
	if d.ByDN("uid=pat,ou=networking,ou=attLabs,o=att") == nil {
		t.Fatalf("insert not applied")
	}

	if err := undo(); err != nil {
		t.Fatalf("undo: %v", err)
	}
	if got := d.String(); got != before {
		t.Errorf("undo did not restore the instance:\n--- before\n%s\n--- after undo\n%s", before, got)
	}
	if rep := core.NewChecker(s).Check(d); !rep.Legal() {
		t.Fatalf("instance illegal after undo:\n%s", rep)
	}

	// The count index was rebuilt by undo: a deletion that would remove
	// the last person must still be caught incrementally.
	del := &Transaction{}
	del.Delete("uid=armstrong,ou=attLabs,o=att")
	del.Delete("uid=laks,ou=databases,ou=attLabs,o=att")
	del.Delete("uid=suciu,ou=databases,ou=attLabs,o=att")
	if r, err := a.Apply(d, del); err != nil {
		t.Fatal(err)
	} else if r.Legal() {
		t.Fatalf("deleting every person accepted after undo")
	}

	// And a fresh legal transaction still applies cleanly after the undo.
	again := &Transaction{}
	again.Add("uid=redo,ou=attLabs,o=att", []string{"person", "top"}, person("redo"))
	if r, err := a.Apply(d, again); err != nil || !r.Legal() {
		t.Fatalf("apply after undo: err=%v report=%s", err, r)
	}

	// A rejected transaction returns no undo handle.
	bad := &Transaction{}
	bad.Add("ou=empty,ou=attLabs,o=att", []string{"orgUnit", "orgGroup", "top"}, nil)
	r, undo, err = a.ApplyWithUndo(d, bad)
	if err != nil {
		t.Fatal(err)
	}
	if r.Legal() {
		t.Fatalf("empty org unit accepted")
	}
	if undo != nil {
		t.Errorf("undo handle returned for a rejected transaction")
	}
}

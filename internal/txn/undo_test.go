package txn

import (
	"errors"
	"strings"
	"testing"

	"boundschema/internal/core"
	"boundschema/internal/workload"
)

// TestApplyWithUndo exercises the revert handle behind the server's
// durable-commit path: a successfully applied transaction must be fully
// reversible, including the applier's count index, and the applier must
// keep working after an undo.
func TestApplyWithUndo(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	a := NewApplier(s)
	a.Counts = NewCountIndex(d)
	a.NarrowDeletes = true
	before := d.String()

	tx := &Transaction{}
	tx.Add("ou=networking,ou=attLabs,o=att", []string{"orgUnit", "orgGroup", "top"}, nil)
	tx.Add("uid=pat,ou=networking,ou=attLabs,o=att", []string{"person", "top"}, person("pat"))
	tx.Delete("uid=armstrong,ou=attLabs,o=att")
	tx.Move("ou=databases,ou=attLabs,o=att", "o=att")

	r, undo, err := a.ApplyWithUndo(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Legal() {
		t.Fatalf("legal transaction rejected:\n%s", r)
	}
	if undo == nil {
		t.Fatal("no undo handle on a successful apply")
	}
	if d.ByDN("uid=pat,ou=networking,ou=attLabs,o=att") == nil {
		t.Fatalf("insert not applied")
	}

	if err := undo(); err != nil {
		t.Fatalf("undo: %v", err)
	}
	if got := d.String(); got != before {
		t.Errorf("undo did not restore the instance:\n--- before\n%s\n--- after undo\n%s", before, got)
	}
	if rep := core.NewChecker(s).Check(d); !rep.Legal() {
		t.Fatalf("instance illegal after undo:\n%s", rep)
	}

	// The count index was rebuilt by undo: a deletion that would remove
	// the last person must still be caught incrementally.
	del := &Transaction{}
	del.Delete("uid=armstrong,ou=attLabs,o=att")
	del.Delete("uid=laks,ou=databases,ou=attLabs,o=att")
	del.Delete("uid=suciu,ou=databases,ou=attLabs,o=att")
	if r, err := a.Apply(d, del); err != nil {
		t.Fatal(err)
	} else if r.Legal() {
		t.Fatalf("deleting every person accepted after undo")
	}

	// And a fresh legal transaction still applies cleanly after the undo.
	again := &Transaction{}
	again.Add("uid=redo,ou=attLabs,o=att", []string{"person", "top"}, person("redo"))
	if r, err := a.Apply(d, again); err != nil || !r.Legal() {
		t.Fatalf("apply after undo: err=%v report=%s", err, r)
	}

	// A rejected transaction returns no undo handle.
	bad := &Transaction{}
	bad.Add("ou=empty,ou=attLabs,o=att", []string{"orgUnit", "orgGroup", "top"}, nil)
	r, undo, err = a.ApplyWithUndo(d, bad)
	if err != nil {
		t.Fatal(err)
	}
	if r.Legal() {
		t.Fatalf("empty org unit accepted")
	}
	if undo != nil {
		t.Errorf("undo handle returned for a rejected transaction")
	}
}

// TestComposeUndo exercises the batch-rollback primitive behind group
// commit: several applied transactions must unwind newest-first back to
// the exact pre-batch state, and a member's failure must surface with
// its position.
func TestComposeUndo(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	a := NewApplier(s)
	a.Counts = NewCountIndex(d)
	before := d.String()

	// Three dependent transactions: later ones build on earlier ones, so
	// any unwind order other than newest-first would fail.
	var undos []func() error
	tx1 := &Transaction{}
	tx1.Add("ou=batch,ou=attLabs,o=att", []string{"orgUnit", "orgGroup", "top"}, nil)
	tx1.Add("uid=b1,ou=batch,ou=attLabs,o=att", []string{"person", "top"}, person("b1"))
	tx2 := &Transaction{}
	tx2.Add("uid=b2,ou=batch,ou=attLabs,o=att", []string{"person", "top"}, person("b2"))
	tx3 := &Transaction{}
	tx3.Move("ou=batch,ou=attLabs,o=att", "o=att")
	for i, tx := range []*Transaction{tx1, tx2, tx3} {
		r, undo, err := a.ApplyWithUndo(d, tx)
		if err != nil || !r.Legal() {
			t.Fatalf("member %d: err=%v report=%s", i, err, r)
		}
		undos = append(undos, undo)
	}

	if err := ComposeUndo(undos...)(); err != nil {
		t.Fatalf("composed undo: %v", err)
	}
	if got := d.String(); got != before {
		t.Errorf("composed undo did not restore the instance:\n--- before\n%s\n--- after\n%s", before, got)
	}
	if rep := core.NewChecker(s).Check(d); !rep.Legal() {
		t.Fatalf("instance illegal after composed undo:\n%s", rep)
	}

	// nil members (transactions with nothing to undo) are skipped.
	if err := ComposeUndo(nil, nil)(); err != nil {
		t.Errorf("composed undo over nils: %v", err)
	}

	// A failing member stops the unwind and reports its index.
	calls := []int{}
	boom := ComposeUndo(
		func() error { calls = append(calls, 0); return nil },
		func() error { calls = append(calls, 1); return errBoom },
		func() error { calls = append(calls, 2); return nil },
	)
	err := boom()
	if err == nil || !strings.Contains(err.Error(), "member 1") {
		t.Errorf("composed undo failure = %v, want member 1 reported", err)
	}
	// Newest-first: member 2 ran, member 1 failed, member 0 never ran.
	if len(calls) != 2 || calls[0] != 2 || calls[1] != 1 {
		t.Errorf("unwind order = %v, want [2 1]", calls)
	}
}

var errBoom = errors.New("boom")

package core

import (
	"fmt"
	"strings"

	"boundschema/internal/dirtree"
)

// ViolationKind classifies legality violations by the Definition 2.7
// condition they break.
type ViolationKind int

// Violation kinds. The first group is content-schema (per entry), the
// second structure-schema (instance-wide).
const (
	ViolationTyping         ViolationKind = iota // value outside dom(τ(a)) or single-value overflow
	ViolationMissingAttr                         // required attribute absent
	ViolationDisallowedAttr                      // attribute allowed by no class of the entry
	ViolationUnknownClass                        // class not declared in the schema
	ViolationNoCoreClass                         // entry has no core class
	ViolationInheritance                         // superclass missing (ci ⇒ cj broken)
	ViolationIncomparable                        // two incomparable core classes (ci ⊗ cj broken)
	ViolationDisallowedAux                       // auxiliary class not allowed by any core class
	ViolationDuplicateKey                        // key attribute value used by two entries (Section 6.1)
	ViolationMissingClass                        // required class c⇓ has no entry
	ViolationRequiredRel                         // required structural relationship broken
	ViolationForbiddenRel                        // forbidden structural relationship present
)

var violationNames = [...]string{
	"typing", "missing-attribute", "disallowed-attribute", "unknown-class",
	"no-core-class", "inheritance", "incomparable-classes", "disallowed-aux",
	"duplicate-key",
	"missing-required-class", "required-relationship", "forbidden-relationship",
}

func (k ViolationKind) String() string {
	if k < 0 || int(k) >= len(violationNames) {
		return fmt.Sprintf("violation(%d)", int(k))
	}
	return violationNames[k]
}

// Content reports whether the kind is a per-entry content-schema
// violation (testable entry by entry, Section 3.1).
func (k ViolationKind) Content() bool { return k <= ViolationDisallowedAux }

// Violation is one legality defect, with the witness entry when one
// exists (missing required classes have none).
type Violation struct {
	Kind    ViolationKind
	Entry   *dirtree.Entry // witness; nil for ViolationMissingClass
	Element Element        // the broken schema element, when applicable
	Detail  string
}

func (v Violation) String() string {
	var b strings.Builder
	b.WriteString(v.Kind.String())
	if v.Entry != nil {
		fmt.Fprintf(&b, " at %s", v.Entry.DN())
	}
	if v.Element != nil {
		fmt.Fprintf(&b, " [%s]", v.Element.ElementString())
	}
	if v.Detail != "" {
		b.WriteString(": ")
		b.WriteString(v.Detail)
	}
	return b.String()
}

// Report collects the violations found by a legality check. A nil or
// empty report means the instance is legal.
type Report struct {
	Violations []Violation
	// Truncated reports that the per-element witness cap was reached and
	// further witnesses were dropped.
	Truncated bool
}

// Legal reports whether no violations were found.
func (r *Report) Legal() bool { return r == nil || len(r.Violations) == 0 }

// Add appends a violation.
func (r *Report) Add(v Violation) { r.Violations = append(r.Violations, v) }

// Merge appends all of other's violations.
func (r *Report) Merge(other *Report) {
	if other == nil {
		return
	}
	r.Violations = append(r.Violations, other.Violations...)
	r.Truncated = r.Truncated || other.Truncated
}

// ByKind returns the violations of the given kind.
func (r *Report) ByKind(k ViolationKind) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Kind == k {
			out = append(out, v)
		}
	}
	return out
}

func (r *Report) String() string {
	if r.Legal() {
		return "legal"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d violation(s)", len(r.Violations))
	if r.Truncated {
		b.WriteString(" (truncated)")
	}
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

package core

import (
	"fmt"
	"sort"
)

// AttributeSchema is the attribute schema A = (C, A, ρr, ρa) of Definition
// 2.2: per-object-class required and allowed attribute sets, with the
// invariant ρr(c) ⊆ ρa(c) maintained by construction (Require adds to both
// sets). This component matches the standard LDAP schema specification.
//
// The zero value is an empty attribute schema ready to use.
type AttributeSchema struct {
	attrs    map[string]struct{}            // A: the attribute universe
	required map[string]map[string]struct{} // ρr
	allowed  map[string]map[string]struct{} // ρa
}

// NewAttributeSchema returns an empty attribute schema.
func NewAttributeSchema() *AttributeSchema { return &AttributeSchema{} }

func (s *AttributeSchema) init() {
	if s.attrs == nil {
		s.attrs = make(map[string]struct{})
		s.required = make(map[string]map[string]struct{})
		s.allowed = make(map[string]map[string]struct{})
	}
}

// Require declares attrs as required attributes of class c. Required
// attributes are automatically allowed.
func (s *AttributeSchema) Require(c string, attrs ...string) {
	s.init()
	for _, a := range attrs {
		s.attrs[a] = struct{}{}
		addTo(s.required, c, a)
		addTo(s.allowed, c, a)
	}
}

// Allow declares attrs as allowed attributes of class c.
func (s *AttributeSchema) Allow(c string, attrs ...string) {
	s.init()
	for _, a := range attrs {
		s.attrs[a] = struct{}{}
		addTo(s.allowed, c, a)
	}
}

func addTo(m map[string]map[string]struct{}, c, a string) {
	set := m[c]
	if set == nil {
		set = make(map[string]struct{})
		m[c] = set
	}
	set[a] = struct{}{}
}

// Required returns ρr(c), sorted.
func (s *AttributeSchema) Required(c string) []string { return sortedKeys(s.required[c]) }

// Allowed returns ρa(c), sorted.
func (s *AttributeSchema) Allowed(c string) []string { return sortedKeys(s.allowed[c]) }

// IsRequired reports whether a ∈ ρr(c).
func (s *AttributeSchema) IsRequired(c, a string) bool {
	_, ok := s.required[c][a]
	return ok
}

// IsAllowed reports whether a ∈ ρa(c).
func (s *AttributeSchema) IsAllowed(c, a string) bool {
	_, ok := s.allowed[c][a]
	return ok
}

// NumAllowed returns |ρa(c)|, used in the complexity accounting of
// Theorem 3.1.
func (s *AttributeSchema) NumAllowed(c string) int { return len(s.allowed[c]) }

// Attrs returns the attribute universe A, sorted.
func (s *AttributeSchema) Attrs() []string { return sortedKeys(s.attrs) }

// Classes returns every class that has a required or allowed attribute,
// sorted.
func (s *AttributeSchema) Classes() []string {
	set := make(map[string]struct{}, len(s.allowed))
	for c := range s.allowed {
		set[c] = struct{}{}
	}
	for c := range s.required {
		set[c] = struct{}{}
	}
	return sortedKeys(set)
}

// Clone returns an independent deep copy.
func (s *AttributeSchema) Clone() *AttributeSchema {
	out := NewAttributeSchema()
	for c, set := range s.required {
		for a := range set {
			out.Require(c, a)
		}
	}
	for c, set := range s.allowed {
		for a := range set {
			out.Allow(c, a)
		}
	}
	return out
}

// Validate checks internal well-formedness: ρr(c) ⊆ ρa(c) for all classes.
// The invariant holds by construction; Validate guards schemas assembled
// by other means (e.g. reflection or future deserializers).
func (s *AttributeSchema) Validate() error {
	for c, req := range s.required {
		for a := range req {
			if _, ok := s.allowed[c][a]; !ok {
				return fmt.Errorf("core: class %s requires attribute %s but does not allow it", c, a)
			}
		}
	}
	return nil
}

func sortedKeys(m map[string]struct{}) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package core

import (
	"fmt"
	"sort"

	"boundschema/internal/dirtree"
)

// Materialize constructs a legal witness instance for a consistent
// schema, making the Theorem 5.2 consistency proof constructive: it
// chases the structure schema's obligations, growing the forest downward
// for child/descendant requirements and upward for parent/ancestor
// requirements, then validates the result with the legality checker.
//
// Materialize also serves as the mechanical completeness oracle for the
// reconstructed inference rules (DESIGN.md): if CheckConsistency says
// consistent, Materialize must succeed.
//
// The chase is bounded: a node budget guards against divergence, which
// cannot occur for schemas the closure accepts (a diverging chase implies
// a derivable cycle).
func Materialize(s *Schema) (*dirtree.Directory, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	in := Infer(s)
	if in.Inconsistent() {
		return nil, fmt.Errorf("core: schema is inconsistent:\n%s", in.ExplainInconsistency())
	}
	// Two strategies for placing required ancestors: merging them into
	// existing ancestors where possible, or stacking fresh entries in a
	// forced-order-respecting sequence. Try both before giving up.
	var firstErr error
	for _, mergeAncestors := range []bool{true, false} {
		ch := &chaser{schema: s, inf: in, mergeAncestors: mergeAncestors, budget: chaseBudget(s)}
		d, err := ch.run()
		if err == nil {
			return d, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

func chaseBudget(s *Schema) int {
	n := len(s.Classes.CoreClasses()) + s.Structure.Size() + 4
	return n * n * 4
}

// cnode is a chase node: an entry under construction, with a mutable
// class set (core class ids of the Inference, kept superclass-closed).
type cnode struct {
	classes  map[int]struct{}
	parent   *cnode
	children []*cnode
	seq      int
	// flexibleUp marks nodes whose distance to their creator is not
	// fixed (descendant witnesses and inserted intermediates): when
	// their required parent class cannot merge into the current parent,
	// a fresh intermediate entry may be inserted above them.
	flexibleUp bool
	// paBound marks nodes whose link to their parent realizes a
	// required parent relationship; nothing may be spliced between them.
	paBound bool
}

type chaser struct {
	schema         *Schema
	inf            *Inference
	mergeAncestors bool
	budget         int

	nodes []*cnode
	queue []*cnode
}

func (ch *chaser) run() (*dirtree.Directory, error) {
	// Seed one node per required class.
	for _, c := range ch.schema.Structure.RequiredClasses() {
		n := ch.newNode()
		if err := ch.addClass(n, ch.inf.ids[c]); err != nil {
			return nil, err
		}
	}
	for len(ch.queue) > 0 {
		n := ch.queue[0]
		ch.queue = ch.queue[1:]
		if err := ch.discharge(n); err != nil {
			return nil, err
		}
		if len(ch.nodes) > ch.budget {
			return nil, fmt.Errorf("core: chase exceeded its node budget (%d); the schema exposes an inference-rule gap", ch.budget)
		}
	}
	d := ch.emit()
	if report := NewChecker(ch.schema).Check(d); !report.Legal() {
		return nil, fmt.Errorf("core: chase produced an illegal witness:\n%s", report)
	}
	return d, nil
}

func (ch *chaser) newNode() *cnode {
	n := &cnode{classes: make(map[int]struct{}), seq: len(ch.nodes)}
	ch.nodes = append(ch.nodes, n)
	ch.queue = append(ch.queue, n)
	return n
}

func (ch *chaser) enqueue(n *cnode) { ch.queue = append(ch.queue, n) }

// addClass adds a core class and its superclass chain to the node,
// enforcing single inheritance.
func (ch *chaser) addClass(n *cnode, id int) error {
	if _, ok := n.classes[id]; ok {
		return nil
	}
	for c := id; c != -1; c = ch.inf.treeParent[c] {
		n.classes[c] = struct{}{}
	}
	// Single inheritance: all classes must lie on the chain of the
	// deepest one.
	deepest := ch.deepest(n)
	for c := range n.classes {
		if !ch.inf.subsumes(deepest, c) {
			return fmt.Errorf("core: chase needs an entry in both %s and %s, which single inheritance forbids",
				ch.inf.names[deepest], ch.inf.names[c])
		}
	}
	return nil
}

func (ch *chaser) deepest(n *cnode) int {
	best, bestDepth := -1, -1
	for c := range n.classes {
		if d := ch.inf.depth[c]; d > bestDepth {
			best, bestDepth = c, d
		}
	}
	return best
}

func (n *cnode) has(id int) bool {
	_, ok := n.classes[id]
	return ok
}

func (n *cnode) descendantHas(id int) bool {
	for _, c := range n.children {
		if c.has(id) || c.descendantHas(id) {
			return true
		}
	}
	return false
}

func (n *cnode) ancestorHas(id int) bool {
	for p := n.parent; p != nil; p = p.parent {
		if p.has(id) {
			return true
		}
	}
	return false
}

// obligations returns the original (Er) requirements whose source classes
// the node belongs to, grouped by axis. Only the original elements
// matter for legality; the closure is consulted for ordering decisions.
func (ch *chaser) obligations(n *cnode) map[Axis][]int {
	out := make(map[Axis][]int)
	for _, r := range ch.schema.Structure.RequiredRels() {
		src, ok := ch.inf.ids[r.Source]
		if !ok || !n.has(src) {
			continue
		}
		tgt := ch.inf.ids[r.Target]
		out[r.Axis] = append(out[r.Axis], tgt)
	}
	for ax := range out {
		sort.Slice(out[ax], func(i, j int) bool {
			// Deepest targets first, so one child can satisfy both a
			// class and its superclasses.
			return ch.inf.depth[out[ax][i]] > ch.inf.depth[out[ax][j]]
		})
	}
	return out
}

func (ch *chaser) discharge(n *cnode) error {
	obl := ch.obligations(n)

	// Downward: children and descendants grow below n; a child witness
	// also serves as a descendant witness. Descendant witnesses get a
	// plain spacer entry when a direct child of that class is forbidden,
	// and stay flexible so their own parent requirements can insert
	// intermediates rather than merge into n.
	for _, ax := range []Axis{AxisChild, AxisDesc} {
		for _, tgt := range obl[ax] {
			satisfied := false
			if ax == AxisChild {
				for _, c := range n.children {
					if c.has(tgt) {
						satisfied = true
						break
					}
				}
			} else {
				satisfied = n.descendantHas(tgt)
			}
			if satisfied {
				continue
			}
			under := n
			if ax == AxisDesc && ch.childForbidden(n, tgt) {
				spacer := ch.newSpacer()
				ch.attach(under, spacer)
				under = spacer
			}
			child := ch.newNode()
			child.flexibleUp = ax == AxisDesc
			ch.attach(under, child)
			if err := ch.addClass(child, tgt); err != nil {
				return err
			}
			ch.enqueue(n) // re-examine: later obligations may now be met
		}
	}

	// Upward: the required parent classes merge into one entry; when the
	// existing parent cannot take them and the node is flexible, insert
	// a fresh intermediate entry instead.
	if pas := obl[AxisParent]; len(pas) > 0 {
		if n.parent == nil {
			// A fresh parent takes all the required classes directly;
			// incompatibility here means rule MP should have fired.
			p := ch.newNode()
			p.flexibleUp = true
			ch.attach(p, n)
			for _, tgt := range pas {
				if err := ch.addClass(p, tgt); err != nil {
					return err
				}
			}
		}
		var unmet []int
		for _, tgt := range pas {
			if !n.parent.has(tgt) {
				unmet = append(unmet, tgt)
			}
		}
		n.paBound = true
		if len(unmet) > 0 {
			p := n.parent
			takable := true
			for _, tgt := range unmet {
				if !ch.mergeCompatible(p, tgt) || ch.mergeWouldForbid(p, tgt) {
					takable = false
					break
				}
			}
			switch {
			case takable:
				for _, tgt := range unmet {
					if err := ch.addClass(p, tgt); err != nil {
						return err
					}
				}
				ch.enqueue(p)
			case n.flexibleUp:
				m, err := ch.insertAbove(n, unmet)
				if err != nil {
					return err
				}
				ch.enqueue(m)
			default:
				// A child witness has no slack: merge and let the final
				// validation judge the result.
				for _, tgt := range unmet {
					if err := ch.addClass(p, tgt); err != nil {
						return err
					}
				}
				ch.enqueue(p)
			}
		}
	}

	// Upward: required ancestors merge into existing ancestors when
	// allowed, or stack above the chain's top in a forced-order-
	// respecting sequence.
	var missing []int
	for _, tgt := range obl[AxisAnc] {
		if !n.ancestorHas(tgt) {
			missing = append(missing, tgt)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	var still []int
	for _, tgt := range missing {
		if ch.mergeAncestors && ch.tryMergeAncestor(n, tgt) {
			continue
		}
		if ch.tryInsertAncestor(n, tgt) {
			continue
		}
		still = append(still, tgt)
	}
	if len(still) > 0 {
		if err := ch.stackAncestors(n, still); err != nil {
			return err
		}
	}
	return nil
}

// tryInsertAncestor places the required ancestor class as a fresh entry
// spliced between two existing entries on n's root path, at the lowest
// flexible point where the closed forbidden facts allow it.
func (ch *chaser) tryInsertAncestor(n *cnode, tgt int) bool {
	for m := n; m != nil && m.parent != nil; m = m.parent {
		if !m.flexibleUp || m.paBound {
			continue
		}
		// tgt would sit above m's whole subtree...
		if ch.forbidsAboveSubtree(tgt, m) {
			continue
		}
		// ... and below everything above m.
		ok := true
		for a := m.parent; a != nil && ok; a = a.parent {
			for y := range a.classes {
				if ch.inf.hasForb(y, AxisDesc, tgt) {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		if _, err := ch.insertAbove(m, []int{tgt}); err == nil {
			return true
		}
	}
	return false
}

// forbidsAboveSubtree reports whether placing an entry of class tgt above
// m would violate a closed forbidden-descendant fact against any entry in
// m's subtree (m included).
func (ch *chaser) forbidsAboveSubtree(tgt int, m *cnode) bool {
	for y := range m.classes {
		if ch.inf.hasForb(tgt, AxisDesc, y) {
			return true
		}
	}
	for _, c := range m.children {
		if ch.forbidsAboveSubtree(tgt, c) {
			return true
		}
	}
	return false
}

// newSpacer creates a plain entry of class top, used to put distance
// between entries whose direct parent-child pairing is forbidden.
func (ch *chaser) newSpacer() *cnode {
	s := ch.newNode()
	s.flexibleUp = true
	if err := ch.addClass(s, ch.inf.ids[ClassTop]); err != nil {
		panic(err) // top alone cannot violate single inheritance
	}
	return s
}

// attach makes child a child of parent.
func (ch *chaser) attach(parent, child *cnode) {
	child.parent = parent
	parent.children = append(parent.children, child)
}

// childForbidden reports whether a direct child of class tgt under n
// would violate a (closed) forbidden child relationship.
func (ch *chaser) childForbidden(n *cnode, tgt int) bool {
	deep := ch.deepest(n)
	return deep != -1 && ch.inf.hasForb(deep, AxisChild, tgt)
}

// insertAbove splices a fresh entry carrying the given classes between n
// and its current parent, inserting a plain spacer above it if the
// grandparent may not have a child of the new entry's classes.
func (ch *chaser) insertAbove(n *cnode, classes []int) (*cnode, error) {
	p := n.parent
	// Detach n from p.
	for i, c := range p.children {
		if c == n {
			p.children = append(p.children[:i:i], p.children[i+1:]...)
			break
		}
	}
	m := ch.newNode()
	m.flexibleUp = true
	for _, cls := range classes {
		if err := ch.addClass(m, cls); err != nil {
			return nil, err
		}
	}
	under := p
	if deep := ch.deepest(m); deep != -1 && ch.childForbidden(p, deep) {
		spacer := ch.newSpacer()
		ch.attach(p, spacer)
		under = spacer
	}
	ch.attach(under, m)
	if deep := ch.deepest(n); deep != -1 && ch.childForbidden(m, deep) {
		spacer := ch.newSpacer()
		ch.attach(m, spacer)
		ch.attach(spacer, n)
		return m, nil
	}
	ch.attach(m, n)
	return m, nil
}

// tryMergeAncestor adds the target class to an existing ancestor if the
// merge respects single inheritance and introduces no forbidden
// relationship with the entries already below it.
func (ch *chaser) tryMergeAncestor(n *cnode, tgt int) bool {
	for p := n.parent; p != nil; p = p.parent {
		if !ch.mergeCompatible(p, tgt) {
			continue
		}
		if ch.mergeWouldForbid(p, tgt) {
			continue
		}
		if err := ch.addClass(p, tgt); err != nil {
			continue
		}
		ch.enqueue(p)
		return true
	}
	return false
}

func (ch *chaser) mergeCompatible(p *cnode, tgt int) bool {
	deep := ch.deepest(p)
	if deep == -1 {
		return true // a classless node accepts any chain
	}
	return ch.inf.subsumes(deep, tgt) || ch.inf.subsumes(tgt, deep)
}

// mergeWouldForbid reports whether giving p the target class would
// violate a forbidden relationship against p's current ancestors or
// descendants, using the closed forbidden facts.
func (ch *chaser) mergeWouldForbid(p *cnode, tgt int) bool {
	// tgt above p's descendants.
	var below func(m *cnode) bool
	below = func(m *cnode) bool {
		for _, c := range m.children {
			for cc := range c.classes {
				if ch.inf.hasForb(tgt, AxisDesc, cc) {
					return true
				}
				if c.parent == p && ch.inf.hasForb(tgt, AxisChild, cc) {
					return true
				}
			}
			if below(c) {
				return true
			}
		}
		return false
	}
	if below(p) {
		return true
	}
	// tgt below p's ancestors.
	for a := p.parent; a != nil; a = a.parent {
		for ac := range a.classes {
			if ch.inf.hasForb(ac, AxisDesc, tgt) {
				return true
			}
			if a == p.parent && ch.inf.hasForb(ac, AxisChild, tgt) {
				return true
			}
		}
	}
	return false
}

// stackAncestors creates fresh entries for the missing ancestor classes
// above the top of n's current chain, ordered so that no forbidden
// descendant relationship is introduced: x is placed above y whenever
// forb(y, de, x) holds (y may not sit above x).
func (ch *chaser) stackAncestors(n *cnode, targets []int) error {
	// Deduplicate.
	set := make(map[int]struct{}, len(targets))
	for _, t := range targets {
		set[t] = struct{}{}
	}
	uniq := make([]int, 0, len(set))
	for t := range set {
		uniq = append(uniq, t)
	}
	// Order bottom-up: y before x when x must be above y. A simple
	// repeated selection of a placeable minimum implements the
	// topological order; the closure's chain-feasibility pass guarantees
	// one exists for consistent schemas.
	var order []int
	remaining := append([]int(nil), uniq...)
	sort.Ints(remaining)
	for len(remaining) > 0 {
		placed := false
		for i, y := range remaining {
			// y is placeable lowest if no other remaining x must sit
			// below y (forb(y, de, x) means x may not be below y... it
			// means no x below y is allowed when y is above x; we need y
			// lowest, i.e. every other x will be above y: require
			// ¬forb(y, de, …) nothing: x above y requires ¬forb(x,de,y).
			ok := true
			for _, x := range remaining {
				if x != y && ch.inf.hasForb(x, AxisDesc, y) {
					ok = false
					break
				}
			}
			if ok {
				order = append(order, y)
				remaining = append(remaining[:i], remaining[i+1:]...)
				placed = true
				break
			}
		}
		if !placed {
			return fmt.Errorf("core: no feasible ancestor order for classes %v", ch.classNames(remaining))
		}
	}
	// Attach above the chain's current top, with a plain spacer whenever
	// the new ancestor may not have a direct child of the current top's
	// classes.
	top := n
	for top.parent != nil {
		top = top.parent
	}
	for _, t := range order {
		// The new ancestor sits above everything currently in the chain;
		// verify the forbidden facts allow that.
		for m := n; m != nil; m = m.parent {
			for mc := range m.classes {
				if ch.inf.hasForb(t, AxisDesc, mc) {
					return fmt.Errorf("core: required ancestor %s may not sit above %s",
						ch.inf.names[t], ch.inf.names[mc])
				}
			}
		}
		if deep := ch.deepest(top); deep != -1 && ch.inf.hasForb(t, AxisChild, deep) {
			spacer := ch.newSpacer()
			ch.attach(spacer, top)
			top = spacer
		}
		p := ch.newNode()
		p.flexibleUp = true
		ch.attach(p, top)
		if err := ch.addClass(p, t); err != nil {
			return err
		}
		top = p
	}
	return nil
}

func (ch *chaser) classNames(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = ch.inf.names[id]
	}
	return out
}

// emit converts the chase forest into a directory instance, filling in
// required attributes with typed placeholder values.
func (ch *chaser) emit() *dirtree.Directory {
	d := dirtree.New(ch.schema.Registry)
	var emitNode func(parent *dirtree.Entry, n *cnode)
	emitNode = func(parent *dirtree.Entry, n *cnode) {
		classes := make([]string, 0, len(n.classes))
		for c := range n.classes {
			classes = append(classes, ch.inf.names[c])
		}
		sort.Strings(classes)
		rdn := fmt.Sprintf("cn=w%d", n.seq)
		var e *dirtree.Entry
		var err error
		if parent == nil {
			e, err = d.AddRoot(rdn, classes...)
		} else {
			e, err = d.AddChild(parent, rdn, classes...)
		}
		if err != nil {
			panic(err) // sequence numbers are unique; cannot happen
		}
		ch.fillRequiredAttrs(e, classes, n.seq)
		for _, c := range n.children {
			emitNode(e, c)
		}
	}
	for _, n := range ch.nodes {
		if n.parent == nil {
			emitNode(nil, n)
		}
	}
	return d
}

func (ch *chaser) fillRequiredAttrs(e *dirtree.Entry, classes []string, seq int) {
	reg := ch.schema.Registry
	for _, c := range classes {
		for _, a := range ch.schema.Attrs.Required(c) {
			if e.HasAttr(a) {
				continue
			}
			// Key attributes must be unique across the witness, so the
			// placeholder carries the entry's sequence number.
			var v dirtree.Value
			switch reg.Type(a) {
			case dirtree.TypeInt:
				v = dirtree.Int(int64(seq))
			case dirtree.TypeBool:
				v = dirtree.Bool(false)
			case dirtree.TypeDN:
				v = dirtree.DN(e.DN())
			case dirtree.TypeTel:
				v = dirtree.Tel(fmt.Sprintf("+1 000 000 %04d", seq))
			default:
				if ch.schema.IsKey(a) {
					v = dirtree.String(fmt.Sprintf("placeholder-%s-%d", a, seq))
				} else {
					v = dirtree.String("placeholder-" + a)
				}
			}
			e.AddValue(a, v)
		}
	}
}

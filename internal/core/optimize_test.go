package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"boundschema/internal/dirtree"
	"boundschema/internal/hquery"
)

func TestOptimizeGuaranteedElement(t *testing.T) {
	s := whitePagesSchema(t)
	// Q1 from Section 3.2: the violation query for orgGroup →de person.
	// The schema guarantees the relationship, so the query is statically
	// empty after optimization.
	q1 := RequiredRelQuery(RequiredRel{Source: "orgGroup", Axis: AxisDesc, Target: "person"})
	opt := OptimizeQuery(q1, s)
	if !hquery.IsStaticallyEmpty(opt) {
		t.Fatalf("Q1 should optimize to ∅, got %s", hquery.String(opt))
	}
	// Q2: the forbidden-relationship query for person ⇥ch top.
	q2 := ForbiddenRelQuery(ForbiddenRel{Upper: "person", Axis: AxisChild, Lower: ClassTop})
	if !hquery.IsStaticallyEmpty(OptimizeQuery(q2, s)) {
		t.Fatalf("Q2 should optimize to ∅")
	}
	// A query the schema says nothing about stays put.
	q3 := hquery.Desc(hquery.ClassAtom("orgUnit"), hquery.ClassAtom("researcher"))
	if hquery.IsStaticallyEmpty(OptimizeQuery(q3, s)) {
		t.Fatalf("unguaranteed query wrongly optimized to ∅")
	}
}

func TestGuaranteedElements(t *testing.T) {
	s := whitePagesSchema(t)
	got := GuaranteedElements(s)
	// Every structure relationship of the schema is guaranteed by
	// construction (its own closure contains it).
	want := len(s.Structure.RequiredRels()) + len(s.Structure.ForbiddenRels())
	if len(got) != want {
		t.Fatalf("guaranteed = %d, want %d: %v", len(got), want, got)
	}
}

func TestOptimizeUnsatAtom(t *testing.T) {
	s := flatSchema(t, "a", "b")
	s.Structure.RequireRel("a", AxisDesc, "a") // a is unsatisfiable
	q := hquery.Child(hquery.ClassAtom("a"), hquery.ClassAtom("b"))
	if !hquery.IsStaticallyEmpty(OptimizeQuery(q, s)) {
		t.Fatalf("join over an unsatisfiable class should be ∅")
	}
	// Undeclared core classes cannot occur either; auxiliaries can.
	s2 := whitePagesSchema(t)
	if !hquery.IsStaticallyEmpty(OptimizeQuery(hquery.ClassAtom("packetRouter"), s2)) {
		t.Fatalf("undeclared class atom should be ∅")
	}
	if hquery.IsStaticallyEmpty(OptimizeQuery(hquery.ClassAtom("online"), s2)) {
		t.Fatalf("auxiliary class atom must survive")
	}
}

func TestOptimizeForbiddenUpwardAxes(t *testing.T) {
	s := whitePagesSchema(t)
	// δp(σtop, σperson): entries whose parent is a person — the schema
	// forbids person children entirely.
	q := hquery.Parent(hquery.ClassAtom(ClassTop), hquery.ClassAtom("person"))
	if !hquery.IsStaticallyEmpty(OptimizeQuery(q, s)) {
		t.Fatalf("parent-join into a childless class should be ∅")
	}
	q2 := hquery.Anc(hquery.ClassAtom("orgUnit"), hquery.ClassAtom("person"))
	if !hquery.IsStaticallyEmpty(OptimizeQuery(q2, s)) {
		t.Fatalf("anc-join under a childless class should be ∅")
	}
}

func TestOptimizeLeavesDeltaQueriesAlone(t *testing.T) {
	s := whitePagesSchema(t)
	q := hquery.Desc(hquery.ClassAtomOn("orgGroup", hquery.InstDelta),
		hquery.ClassAtomOn("person", hquery.InstDelta))
	opt := OptimizeQuery(q, s)
	if hquery.String(opt) != hquery.String(q) {
		t.Fatalf("Δ-query was rewritten: %s", hquery.String(opt))
	}
}

// TestQuickOptimizePreservesResultsOnLegalInstances: on random legal
// instances, an optimized random query returns exactly the original's
// results.
func TestQuickOptimizePreservesResultsOnLegalInstances(t *testing.T) {
	s := whitePagesSchema(t)
	facts := NewQueryFacts(s)
	classes := []string{"orgGroup", "organization", "orgUnit", "person",
		"researcher", "staffMember", "online", ClassTop}
	checker := NewChecker(s)

	var build func(rng *rand.Rand, depth int) hquery.Query
	build = func(rng *rand.Rand, depth int) hquery.Query {
		if depth <= 0 || rng.Intn(3) == 0 {
			return hquery.ClassAtom(classes[rng.Intn(len(classes))])
		}
		l, r := build(rng, depth-1), build(rng, depth-1)
		switch rng.Intn(5) {
		case 0:
			return hquery.Child(l, r)
		case 1:
			return hquery.Parent(l, r)
		case 2:
			return hquery.Desc(l, r)
		case 3:
			return hquery.Anc(l, r)
		default:
			return hquery.Minus(l, r)
		}
	}

	f := func(seed int64, qdepth uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := legalGrownInstance(t, s, rng)
		if !checker.Legal(d) {
			t.Fatalf("precondition: instance must be legal")
		}
		b := hquery.NewBinding(d)
		q := build(rng, int(qdepth%4))
		opt := hquery.Optimize(q, facts)
		orig := hquery.Eval(q, b)
		after := hquery.Eval(opt, b)
		if len(orig) != len(after) {
			t.Logf("size mismatch for %s -> %s: %d vs %d",
				hquery.String(q), hquery.String(opt), len(orig), len(after))
			return false
		}
		for i := range orig {
			if orig[i] != after[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func legalGrownInstance(t testing.TB, s *Schema, rng *rand.Rand) *dirtree.Directory {
	d := whitePagesInstance(t, s)
	growLegal(t, s, d, rng, rng.Intn(30))
	return d
}

// TestOptimizeStillCatchesViolations: optimization assumes legality, so
// on a VIOLATING instance the optimized query may differ — this test
// documents that boundary by exhibiting one such divergence.
func TestOptimizeStillCatchesViolations(t *testing.T) {
	s := whitePagesSchema(t)
	d := whitePagesInstance(t, s)
	// Break orgGroup →de person.
	labs := entryByRDN(t, d, "ou=attLabs")
	if _, err := d.AddChild(labs, "ou=empty", "orgUnit", "orgGroup", "top"); err != nil {
		t.Fatal(err)
	}
	q := RequiredRelQuery(RequiredRel{Source: "orgGroup", Axis: AxisDesc, Target: "person"})
	b := hquery.NewBinding(d)
	if hquery.Empty(q, b) {
		t.Fatalf("original query must find the violation")
	}
	opt := OptimizeQuery(q, s)
	if !hquery.Empty(opt, b) {
		t.Fatalf("optimized form is statically empty by construction")
	}
	// The checker therefore never optimizes its own violation queries;
	// optimization serves user queries over instances maintained legal
	// by the applier.

}

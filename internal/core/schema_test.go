package core

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"

	"boundschema/internal/dirtree"
)

func TestAttributeSchema(t *testing.T) {
	a := NewAttributeSchema()
	a.Require("person", "name", "uid")
	a.Allow("person", "mail")
	if got := a.Required("person"); !reflect.DeepEqual(got, []string{"name", "uid"}) {
		t.Errorf("Required = %v", got)
	}
	if got := a.Allowed("person"); !reflect.DeepEqual(got, []string{"mail", "name", "uid"}) {
		t.Errorf("Allowed = %v (required must be allowed)", got)
	}
	if !a.IsRequired("person", "name") || a.IsRequired("person", "mail") {
		t.Errorf("IsRequired wrong")
	}
	if !a.IsAllowed("person", "mail") || a.IsAllowed("orgUnit", "mail") {
		t.Errorf("IsAllowed wrong")
	}
	if got := a.Attrs(); !reflect.DeepEqual(got, []string{"mail", "name", "uid"}) {
		t.Errorf("Attrs = %v", got)
	}
	if a.NumAllowed("person") != 3 {
		t.Errorf("NumAllowed = %d", a.NumAllowed("person"))
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	c := a.Clone()
	c.Require("person", "extra")
	if a.IsRequired("person", "extra") {
		t.Errorf("Clone not independent")
	}
}

func TestClassSchemaHierarchy(t *testing.T) {
	s := whitePagesSchema(t)
	cs := s.Classes

	if !cs.IsCore("person") || !cs.IsCore(ClassTop) || cs.IsCore("online") {
		t.Errorf("IsCore wrong")
	}
	if !cs.IsAux("online") || cs.IsAux("person") {
		t.Errorf("IsAux wrong")
	}
	if got := cs.Superclasses("researcher"); !reflect.DeepEqual(got, []string{"researcher", "person", "top"}) {
		t.Errorf("Superclasses = %v", got)
	}
	if !cs.Subsumes("researcher", "person") || !cs.Subsumes("researcher", "researcher") {
		t.Errorf("Subsumes wrong")
	}
	if cs.Subsumes("person", "researcher") {
		t.Errorf("Subsumes must be directional")
	}
	// The paper's example: organization ⇒ orgGroup holds, and we may
	// conclude organization ⊗ person.
	if !cs.Subsumes("organization", "orgGroup") {
		t.Errorf("organization should subsume to orgGroup")
	}
	if !cs.Disjoint("organization", "person") {
		t.Errorf("organization and person should be disjoint")
	}
	if cs.Disjoint("researcher", "person") || cs.Disjoint("person", "online") {
		t.Errorf("Disjoint over-reports")
	}
	if cs.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", cs.Depth())
	}
	if cs.DepthOf("researcher") != 2 || cs.DepthOf(ClassTop) != 0 || cs.DepthOf("nope") != -1 {
		t.Errorf("DepthOf wrong")
	}
	if !cs.AuxAllowed("researcher", "facultyMember") || cs.AuxAllowed("staffMember", "facultyMember") {
		t.Errorf("AuxAllowed wrong")
	}
	if got := cs.AuxesOf("staffMember"); !reflect.DeepEqual(got, []string{"consultant", "manager", "secretary"}) {
		t.Errorf("AuxesOf = %v", got)
	}
	if cs.MaxAux() != 3 {
		t.Errorf("MaxAux = %d", cs.MaxAux())
	}
	if got := cs.Subclasses("person"); !reflect.DeepEqual(got, []string{"researcher", "staffMember"}) {
		t.Errorf("Subclasses = %v", got)
	}
}

func TestClassSchemaErrors(t *testing.T) {
	cs := NewClassSchema()
	if err := cs.AddCore("a", ClassTop); err != nil {
		t.Fatal(err)
	}
	if err := cs.AddCore("a", ClassTop); err == nil {
		t.Error("duplicate core accepted")
	}
	if err := cs.AddCore(ClassTop, ClassTop); err == nil {
		t.Error("redeclaring top accepted")
	}
	if err := cs.AddCore("b", "missing"); err == nil {
		t.Error("unknown superclass accepted")
	}
	if err := cs.AddCore(ClassNone, ClassTop); err == nil {
		t.Error("reserved class name accepted")
	}
	if err := cs.AddAux("a"); err == nil {
		t.Error("aux colliding with core accepted")
	}
	if err := cs.AddAux("x"); err != nil {
		t.Fatal(err)
	}
	if err := cs.AddAux("x"); err == nil {
		t.Error("duplicate aux accepted")
	}
	if err := cs.AddCore("x", ClassTop); err == nil {
		t.Error("core colliding with aux accepted")
	}
	if err := cs.AllowAux("missing", "x"); err == nil {
		t.Error("AllowAux with unknown core accepted")
	}
	if err := cs.AllowAux("a", "missing"); err == nil {
		t.Error("AllowAux with unknown aux accepted")
	}
}

func TestClassSchemaClone(t *testing.T) {
	s := whitePagesSchema(t)
	c := s.Classes.Clone()
	if !reflect.DeepEqual(c.CoreClasses(), s.Classes.CoreClasses()) {
		t.Errorf("clone core classes differ")
	}
	if !reflect.DeepEqual(c.AuxClasses(), s.Classes.AuxClasses()) {
		t.Errorf("clone aux classes differ")
	}
	if !c.Subsumes("researcher", "person") {
		t.Errorf("clone lost hierarchy")
	}
	if err := c.AddCore("newClass", "person"); err != nil {
		t.Fatal(err)
	}
	if s.Classes.IsCore("newClass") {
		t.Errorf("clone not independent")
	}
}

func TestStructureSchema(t *testing.T) {
	ss := NewStructureSchema()
	ss.RequireClass("orgUnit")
	ss.RequireRel("orgGroup", AxisDesc, "person")
	ss.RequireRel("orgGroup", AxisDesc, "person") // duplicate collapses
	if err := ss.ForbidRel("person", AxisChild, ClassTop); err != nil {
		t.Fatal(err)
	}
	if err := ss.ForbidRel("person", AxisParent, ClassTop); err == nil {
		t.Error("forbidden relationship with upward axis accepted")
	}
	if ss.Size() != 3 {
		t.Errorf("Size = %d, want 3", ss.Size())
	}
	if !ss.IsRequiredClass("orgUnit") || ss.IsRequiredClass("person") {
		t.Errorf("IsRequiredClass wrong")
	}
	if got := ss.Classes(); !reflect.DeepEqual(got, []string{"orgGroup", "orgUnit", "person", "top"}) {
		t.Errorf("Classes = %v", got)
	}
	c := ss.Clone()
	c.RequireClass("extra")
	if ss.IsRequiredClass("extra") {
		t.Errorf("clone not independent")
	}
}

func TestAxis(t *testing.T) {
	for _, a := range []Axis{AxisChild, AxisDesc, AxisParent, AxisAnc} {
		back, err := ParseAxis(a.String())
		if err != nil || back != a {
			t.Errorf("ParseAxis(%q) = %v, %v", a.String(), back, err)
		}
	}
	if _, err := ParseAxis("sibling"); err == nil {
		t.Error("unknown axis accepted")
	}
	if !AxisChild.Downward() || !AxisDesc.Downward() || AxisParent.Downward() || AxisAnc.Downward() {
		t.Errorf("Downward wrong")
	}
	if AxisChild.Transitive() || !AxisDesc.Transitive() || AxisParent.Transitive() || !AxisAnc.Transitive() {
		t.Errorf("Transitive wrong")
	}
}

func TestElementStrings(t *testing.T) {
	cases := []struct {
		el   Element
		want string
	}{
		{RequiredClass{Class: "orgUnit"}, "orgUnit⇓"},
		{RequiredRel{Source: "orgGroup", Axis: AxisDesc, Target: "person"}, "orgGroup →de person"},
		{RequiredRel{Source: "orgUnit", Axis: AxisParent, Target: "orgGroup"}, "orgUnit →pa orgGroup"},
		{ForbiddenRel{Upper: "person", Axis: AxisChild, Lower: "top"}, "person ⇥ch top"},
		{Subclass{Sub: "researcher", Super: "person"}, "researcher ⇒ person"},
		{Disjoint{A: "person", B: "orgUnit"}, "person ⊗ orgUnit"},
	}
	for _, c := range cases {
		if got := c.el.ElementString(); got != c.want {
			t.Errorf("ElementString = %q, want %q", got, c.want)
		}
	}
}

func TestSchemaValidate(t *testing.T) {
	s := whitePagesSchema(t)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}

	bad := s.Clone()
	bad.Attrs.Allow("ghostClass", "attr")
	if err := bad.Validate(); err == nil {
		t.Error("attribute schema with undeclared class accepted")
	}

	bad2 := s.Clone()
	bad2.Structure.RequireClass("online") // aux class in structure schema
	if err := bad2.Validate(); err == nil {
		t.Error("structure schema over auxiliary class accepted")
	}

	bad3 := s.Clone()
	bad3.Structure.RequireRel("nowhere", AxisChild, "person")
	if err := bad3.Validate(); err == nil {
		t.Error("structure schema over undeclared class accepted")
	}
}

func TestSchemaElements(t *testing.T) {
	s := whitePagesSchema(t)
	els := s.Elements()
	want := map[string]bool{
		"organization⇓":           true,
		"orgUnit⇓":                true,
		"person⇓":                 true,
		"orgGroup →de person":     true,
		"orgUnit →pa orgGroup":    true,
		"person →an organization": true,
		"person ⇥ch top":          true,
		"researcher ⇒ person":     true,
		"organization ⇒ orgGroup": true,
		"orgUnit ⊗ organization":  true,
		"orgGroup ⊗ person":       true,
	}
	got := make(map[string]bool)
	for _, el := range els {
		got[el.ElementString()] = true
	}
	for w := range want {
		if !got[w] {
			t.Errorf("Elements missing %q", w)
		}
	}
	// No self-disjointness, no disjointness among comparables.
	for _, el := range els {
		if d, ok := el.(Disjoint); ok {
			if d.A == d.B || s.Classes.Comparable(d.A, d.B) {
				t.Errorf("bad disjoint element %v", d)
			}
		}
	}
}

func TestSatisfiesOnWhitePages(t *testing.T) {
	s := whitePagesSchema(t)
	d := whitePagesInstance(t, s)
	for _, el := range s.Elements() {
		if !Satisfies(d, el) {
			t.Errorf("legal instance should satisfy %s", el.ElementString())
		}
	}
	// Elements that must NOT hold.
	if Satisfies(d, RequiredClass{Class: "consultant"}) {
		t.Errorf("no consultant exists")
	}
	if Satisfies(d, RequiredRel{Source: "person", Axis: AxisChild, Target: "person"}) {
		t.Errorf("persons have no person children")
	}
	if Satisfies(d, ForbiddenRel{Upper: "organization", Axis: AxisDesc, Lower: "person"}) {
		t.Errorf("organization does have person descendants")
	}
	if Satisfies(d, Disjoint{A: "person", B: "online"}) {
		t.Errorf("laks is both person and online")
	}
	if Satisfies(d, Subclass{Sub: "person", Super: "researcher"}) {
		t.Errorf("armstrong is person but not researcher")
	}
	if Satisfies(d, RequiredClass{Class: ClassNone}) {
		t.Errorf("∅⇓ must never be satisfied")
	}
	if Satisfies(d, RequiredRel{Source: "person", Axis: AxisAnc, Target: ClassNone}) {
		t.Errorf("a required relationship into ∅ is unsatisfiable while persons exist")
	}
}

// randomHierarchy grows a random core class tree for the order-axiom
// property tests.
func randomHierarchy(rng *rand.Rand, n int) (*ClassSchema, []string) {
	cs := NewClassSchema()
	names := []string{ClassTop}
	for i := 0; i < n; i++ {
		name := "h" + strconv.Itoa(i)
		super := names[rng.Intn(len(names))]
		if err := cs.AddCore(name, super); err != nil {
			panic(err)
		}
		names = append(names, name)
	}
	return cs, names
}

// Property: Subsumes is a partial order (reflexive, antisymmetric,
// transitive) with top as the greatest element, and Disjoint is exactly
// the complement of Comparable on distinct core classes.
func TestQuickSubsumesPartialOrder(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cs, names := randomHierarchy(rng, int(size%12)+2)
		for i := 0; i < 60; i++ {
			a := names[rng.Intn(len(names))]
			b := names[rng.Intn(len(names))]
			c := names[rng.Intn(len(names))]
			if !cs.Subsumes(a, a) {
				return false // reflexive
			}
			if cs.Subsumes(a, b) && cs.Subsumes(b, a) && a != b {
				return false // antisymmetric
			}
			if cs.Subsumes(a, b) && cs.Subsumes(b, c) && !cs.Subsumes(a, c) {
				return false // transitive
			}
			if !cs.Subsumes(a, ClassTop) {
				return false // top is greatest
			}
			if cs.Disjoint(a, b) == cs.Comparable(a, b) && a != b {
				return false // disjoint ⟺ incomparable
			}
			if cs.Disjoint(a, b) != cs.Disjoint(b, a) {
				return false // symmetric
			}
			if cs.Disjoint(a, a) {
				return false // irreflexive
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: DepthOf is consistent with the superclass chain length, and
// Superclasses always ends at top.
func TestQuickDepthMatchesChain(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cs, names := randomHierarchy(rng, int(size%12)+2)
		for _, c := range names {
			chain := cs.Superclasses(c)
			if len(chain) == 0 || chain[0] != c || chain[len(chain)-1] != ClassTop {
				return false
			}
			if cs.DepthOf(c) != len(chain)-1 {
				return false
			}
			// Every chain member subsumes from c.
			for _, sup := range chain {
				if !cs.Subsumes(c, sup) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: an entry whose classes are exactly a superclass chain always
// passes the class-schema part of the content check, and any strict
// subset that omits a chain member fails it.
func TestQuickChainEntriesAreContentLegal(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cs, names := randomHierarchy(rng, int(size%10)+2)
		s := NewSchema()
		s.Classes = cs
		checker := NewChecker(s)
		d := dirtree.New(nil)
		c := names[rng.Intn(len(names))]
		chain := cs.Superclasses(c)
		e, err := d.AddRoot("x=full", chain...)
		if err != nil {
			return false
		}
		if !checker.EntryLegal(e) {
			return false
		}
		if len(chain) > 1 {
			// Drop one non-leaf chain member: inheritance violation.
			drop := chain[1+rng.Intn(len(chain)-1)]
			var partial []string
			for _, cc := range chain {
				if cc != drop {
					partial = append(partial, cc)
				}
			}
			e2, err := d.AddRoot("x=partial", partial...)
			if err != nil {
				return false
			}
			if checker.EntryLegal(e2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

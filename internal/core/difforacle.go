package core

import (
	"fmt"
	"sort"

	"boundschema/internal/dirtree"
)

// Differential-testing oracle: three independent legality engines must
// agree on every instance.
//
//   - the sequential Checker (Concurrency = 1), the reference
//     implementation of Theorem 3.1;
//   - the parallel Checker (Concurrency > 1), which must produce a
//     byte-identical report (see parallel.go);
//   - the quadratic NaiveStructureCheck (naive.go), which must produce
//     the same structure verdict and, witness caps aside, the same
//     violation set.
//
// DiffEngines is driven over randomized workload directories by the
// harness in difforacle_test.go.

// DiffEngines cross-checks the engines on one (schema, instance) pair.
// concurrency is the parallel checker's worker count (values > 1
// exercise the parallel merge even on tiny instances); maxWitnesses is
// applied to both checkers. It returns a descriptive error on the first
// divergence found, nil when all engines agree.
func DiffEngines(s *Schema, d *dirtree.Directory, concurrency, maxWitnesses int) error {
	if concurrency < 2 {
		return fmt.Errorf("difforacle: concurrency %d does not exercise the parallel engine", concurrency)
	}
	seq := NewChecker(s)
	seq.Concurrency = 1
	seq.MaxWitnesses = maxWitnesses
	par := NewChecker(s)
	par.Concurrency = concurrency
	par.MaxWitnesses = maxWitnesses

	// Byte-identical full reports.
	seqReport := seq.Check(d)
	parReport := par.Check(d)
	if sr, pr := seqReport.String(), parReport.String(); sr != pr {
		return fmt.Errorf("difforacle: sequential and parallel reports diverge\n--- sequential ---\n%s\n--- parallel(%d) ---\n%s", sr, concurrency, pr)
	}
	if seqReport.Truncated != parReport.Truncated {
		return fmt.Errorf("difforacle: truncation flags diverge: sequential=%v parallel=%v", seqReport.Truncated, parReport.Truncated)
	}

	// Legality verdicts: both engines' Legal must match the report.
	want := seqReport.Legal()
	if got := seq.Legal(d); got != want {
		return fmt.Errorf("difforacle: sequential Legal=%v but report says %v", got, want)
	}
	if got := par.Legal(d); got != want {
		return fmt.Errorf("difforacle: parallel Legal=%v but report says %v", got, want)
	}

	// Naive quadratic structure oracle: identical verdict always, and an
	// identical sorted violation set when no witness cap interferes.
	naive := NaiveStructureCheck(s, d)
	structSeq := seq.CheckStructure(d)
	if naive.Legal() != structSeq.Legal() {
		return fmt.Errorf("difforacle: naive structure verdict %v != query-based %v", naive.Legal(), structSeq.Legal())
	}
	if maxWitnesses == 0 {
		ns, qs := sortedViolationStrings(naive), sortedViolationStrings(structSeq)
		if len(ns) != len(qs) {
			return fmt.Errorf("difforacle: naive found %d structure violations, query-based %d", len(ns), len(qs))
		}
		for i := range ns {
			if ns[i] != qs[i] {
				return fmt.Errorf("difforacle: structure violation sets diverge at #%d:\nnaive:       %s\nquery-based: %s", i, ns[i], qs[i])
			}
		}
	}
	return nil
}

// sortedViolationStrings renders a report's violations sorted by their
// string form — the stable key the engines are compared under.
func sortedViolationStrings(r *Report) []string {
	out := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		out[i] = v.String()
	}
	sort.Strings(out)
	return out
}

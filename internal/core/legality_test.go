package core

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"boundschema/internal/dirtree"
	"boundschema/internal/hquery"
)

func TestWhitePagesIsLegal(t *testing.T) {
	s := whitePagesSchema(t)
	d := whitePagesInstance(t, s)
	report := NewChecker(s).Check(d)
	if !report.Legal() {
		t.Fatalf("Figure 1 instance should be legal:\n%s", report)
	}
	if !NewChecker(s).Legal(d) {
		t.Fatalf("Legal() disagrees with Check()")
	}
}

func expectKinds(t *testing.T, r *Report, want ...ViolationKind) {
	t.Helper()
	got := make(map[ViolationKind]int)
	for _, v := range r.Violations {
		got[v.Kind]++
	}
	for _, k := range want {
		if got[k] == 0 {
			t.Errorf("expected a %v violation, got:\n%s", k, r)
		}
		delete(got, k)
	}
	for k, n := range got {
		t.Errorf("unexpected %d violation(s) of kind %v:\n%s", n, k, r)
	}
}

func TestContentViolations(t *testing.T) {
	type mutate func(t *testing.T, d *dirtree.Directory)
	cases := []struct {
		name string
		mut  mutate
		want []ViolationKind
	}{
		{
			name: "missing required attribute",
			mut: func(t *testing.T, d *dirtree.Directory) {
				entryByRDN(t, d, "uid=laks").SetValues("name")
			},
			want: []ViolationKind{ViolationMissingAttr},
		},
		{
			name: "disallowed attribute",
			mut: func(t *testing.T, d *dirtree.Directory) {
				entryByRDN(t, d, "uid=suciu").AddValue("salary", dirtree.String("lots"))
			},
			want: []ViolationKind{ViolationDisallowedAttr},
		},
		{
			name: "mail needs the online class",
			mut: func(t *testing.T, d *dirtree.Directory) {
				entryByRDN(t, d, "uid=suciu").AddValue("mail", dirtree.String("suciu@research.att.com"))
			},
			want: []ViolationKind{ViolationDisallowedAttr},
		},
		{
			name: "unknown object class",
			mut: func(t *testing.T, d *dirtree.Directory) {
				entryByRDN(t, d, "uid=suciu").AddClass("packetRouter")
			},
			want: []ViolationKind{ViolationUnknownClass},
		},
		{
			name: "no core class",
			mut: func(t *testing.T, d *dirtree.Directory) {
				e := entryByRDN(t, d, "uid=suciu")
				e.SetValues(dirtree.AttrObjectClass, dirtree.String("online"))
				e.AddValue("mail", dirtree.String("x@y"))
				// mail stays allowed through the online class, but name
				// loses its allowing class (person) alongside the class
				// violations.
			},
			want: []ViolationKind{ViolationNoCoreClass, ViolationDisallowedAux, ViolationDisallowedAttr},
		},
		{
			name: "missing superclass breaks inheritance",
			mut: func(t *testing.T, d *dirtree.Directory) {
				entryByRDN(t, d, "uid=suciu").RemoveClass("person")
				// name was allowed through person, so it becomes
				// disallowed as well.
			},
			want: []ViolationKind{ViolationInheritance, ViolationDisallowedAttr},
		},
		{
			name: "incomparable core classes",
			mut: func(t *testing.T, d *dirtree.Directory) {
				// Section 1.2: forbid an orgUnit from also being a
				// facultyMember is aux; the core analogue: orgUnit+person.
				entryByRDN(t, d, "ou=databases").AddClass("person")
			},
			want: []ViolationKind{ViolationIncomparable, ViolationMissingAttr},
		},
		{
			name: "disallowed auxiliary class",
			mut: func(t *testing.T, d *dirtree.Directory) {
				// facultyMember is allowed for researcher, not orgUnit.
				entryByRDN(t, d, "ou=databases").AddClass("facultyMember")
			},
			want: []ViolationKind{ViolationDisallowedAux},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := whitePagesSchema(t)
			d := whitePagesInstance(t, s)
			c.mut(t, d)
			r := NewChecker(s).CheckContent(d)
			expectKinds(t, r, c.want...)
			if NewChecker(s).Legal(d) {
				t.Errorf("Legal() = true on mutated instance")
			}
		})
	}
}

func TestTypingViolations(t *testing.T) {
	s := whitePagesSchema(t)
	s.Registry.Declare("age", dirtree.TypeInt)
	s.Registry.DeclareSingle("ssn", dirtree.TypeString)
	s.Attrs.Allow("person", "age", "ssn")
	d := whitePagesInstance(t, s)
	laks := entryByRDN(t, d, "uid=laks")
	laks.AddValue("age", dirtree.String("forty"))
	laks.AddValue("ssn", dirtree.String("1"))
	laks.AddValue("ssn", dirtree.String("2"))
	r := NewChecker(s).CheckContent(d)
	if got := len(r.ByKind(ViolationTyping)); got != 2 {
		t.Errorf("typing violations = %d, want 2:\n%s", got, r)
	}
}

func TestStructureViolations(t *testing.T) {
	s := whitePagesSchema(t)
	checker := NewChecker(s)

	t.Run("missing required class", func(t *testing.T) {
		d := whitePagesInstance(t, s)
		// Remove every person: orgGroup →de person breaks too.
		for _, rdn := range []string{"uid=laks", "uid=suciu", "uid=armstrong"} {
			if err := d.DeleteLeaf(entryByRDN(t, d, rdn)); err != nil {
				t.Fatal(err)
			}
		}
		r := checker.CheckStructure(d)
		if len(r.ByKind(ViolationMissingClass)) != 1 { // person⇓
			t.Errorf("missing-class violations:\n%s", r)
		}
		if len(r.ByKind(ViolationRequiredRel)) == 0 {
			t.Errorf("expected required-rel violations:\n%s", r)
		}
	})

	t.Run("forbidden child under person", func(t *testing.T) {
		d := whitePagesInstance(t, s)
		laks := entryByRDN(t, d, "uid=laks")
		if _, err := d.AddChild(laks, "cn=widget", "orgUnit", "orgGroup", "top"); err != nil {
			t.Fatal(err)
		}
		r := checker.CheckStructure(d)
		// person ⇥ch top fires; the new orgUnit has no orgGroup parent
		// (laks is a person) and no person descendant.
		if len(r.ByKind(ViolationForbiddenRel)) != 1 {
			t.Errorf("forbidden-rel violations:\n%s", r)
		}
		if len(r.ByKind(ViolationRequiredRel)) != 2 {
			t.Errorf("required-rel violations:\n%s", r)
		}
	})

	t.Run("orgUnit at root misses its orgGroup parent", func(t *testing.T) {
		d := whitePagesInstance(t, s)
		if _, err := d.AddRoot("ou=stray", "orgUnit", "orgGroup", "top"); err != nil {
			t.Fatal(err)
		}
		r := checker.CheckStructure(d)
		// stray violates orgUnit →pa orgGroup and orgGroup →de person.
		if len(r.ByKind(ViolationRequiredRel)) != 2 {
			t.Errorf("required-rel violations:\n%s", r)
		}
	})
}

func TestMaxWitnesses(t *testing.T) {
	s := whitePagesSchema(t)
	d := whitePagesInstance(t, s)
	labs := entryByRDN(t, d, "ou=attLabs")
	for i := 0; i < 10; i++ {
		if _, err := d.AddChild(labs, "ou=empty"+strconv.Itoa(i), "orgUnit", "orgGroup", "top"); err != nil {
			t.Fatal(err)
		}
	}
	c := NewChecker(s)
	c.MaxWitnesses = 3
	r := c.CheckStructure(d)
	if got := len(r.ByKind(ViolationRequiredRel)); got != 3 {
		t.Errorf("witnesses = %d, want 3", got)
	}
	if !r.Truncated {
		t.Errorf("report should be marked truncated")
	}
	full := NewChecker(s).CheckStructure(d)
	if got := len(full.ByKind(ViolationRequiredRel)); got != 10 {
		t.Errorf("full witnesses = %d, want 10", got)
	}
}

// TestFig4Equivalence checks the Figure 4 reduction: for every structure
// element kind and random instances, D ⊨ φ (naive Definition 2.6
// semantics) iff the translated query is empty (non-empty for c⇓).
func TestFig4Equivalence(t *testing.T) {
	classes := []string{"a", "b", "c", ClassTop}
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomInstance(rng, int(size%50)+2, classes)
		b := hquery.NewBinding(d)
		for _, src := range classes {
			for _, tgt := range classes {
				for ax := Axis(0); ax < 4; ax++ {
					rel := RequiredRel{Source: src, Axis: ax, Target: tgt}
					if Satisfies(d, rel) != hquery.Empty(RequiredRelQuery(rel), b) {
						t.Logf("mismatch for %s", rel.ElementString())
						return false
					}
				}
				for _, ax := range []Axis{AxisChild, AxisDesc} {
					forb := ForbiddenRel{Upper: src, Axis: ax, Lower: tgt}
					if Satisfies(d, forb) != hquery.Empty(ForbiddenRelQuery(forb), b) {
						t.Logf("mismatch for %s", forb.ElementString())
						return false
					}
				}
			}
			rc := RequiredClass{Class: src}
			if Satisfies(d, rc) != !hquery.Empty(RequiredClassQuery(src), b) {
				t.Logf("mismatch for %s", rc.ElementString())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomInstance grows a random forest over the given classes, with each
// entry belonging to top plus a random subset.
func randomInstance(rng *rand.Rand, n int, classes []string) *dirtree.Directory {
	d := dirtree.New(nil)
	var all []*dirtree.Entry
	for i := 0; i < n; i++ {
		cs := []string{ClassTop}
		for _, c := range classes {
			if c != ClassTop && rng.Intn(3) == 0 {
				cs = append(cs, c)
			}
		}
		var e *dirtree.Entry
		if len(all) == 0 || rng.Intn(7) == 0 {
			e, _ = d.AddRoot("r="+strconv.Itoa(i), cs...)
		} else {
			e, _ = d.AddChild(all[rng.Intn(len(all))], "n="+strconv.Itoa(i), cs...)
		}
		all = append(all, e)
	}
	return d
}

// TestNaiveMatchesQueryChecker differentially tests the quadratic
// baseline against the query-based structure checker on random schemas
// and instances: identical violation multisets per (kind, element).
func TestNaiveMatchesQueryChecker(t *testing.T) {
	classes := []string{"a", "b", "c", ClassTop}
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSchema()
		for _, c := range classes {
			if c != ClassTop {
				if err := s.Classes.AddCore(c, ClassTop); err != nil {
					return false
				}
			}
		}
		for i := 0; i < 4; i++ {
			src := classes[rng.Intn(len(classes))]
			tgt := classes[rng.Intn(len(classes))]
			switch rng.Intn(3) {
			case 0:
				s.Structure.RequireRel(src, Axis(rng.Intn(4)), tgt)
			case 1:
				_ = s.Structure.ForbidRel(src, Axis(rng.Intn(2)), tgt)
			default:
				s.Structure.RequireClass(src)
			}
		}
		d := randomInstance(rng, int(size%40)+2, classes)
		fast := NewChecker(s).CheckStructure(d)
		slow := NaiveStructureCheck(s, d)
		return violationKey(fast) == violationKey(slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func violationKey(r *Report) string {
	keys := make([]string, 0, len(r.Violations))
	for _, v := range r.Violations {
		k := v.Kind.String()
		if v.Entry != nil {
			k += "@" + v.Entry.DN()
		}
		if v.Element != nil {
			k += "[" + v.Element.ElementString() + "]"
		}
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := ""
	for _, k := range keys {
		out += k + ";"
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestCheckerSchemaAccessors exercises small plumbing.
func TestCheckerSchemaAccessors(t *testing.T) {
	s := whitePagesSchema(t)
	c := NewChecker(s)
	if c.Schema() != s {
		t.Errorf("Schema accessor broken")
	}
	d := whitePagesInstance(t, s)
	if r := c.CheckEntry(entryByRDN(t, d, "uid=laks")); !r.Legal() {
		t.Errorf("laks should be content-legal: %s", r)
	}
	if !c.EntryLegal(entryByRDN(t, d, "uid=suciu")) {
		t.Errorf("suciu should be content-legal")
	}
}

func TestReportPlumbing(t *testing.T) {
	var r Report
	if !r.Legal() {
		t.Errorf("empty report should be legal")
	}
	if (&Report{}).String() != "legal" {
		t.Errorf("legal report rendering")
	}
	r.Add(Violation{Kind: ViolationMissingClass, Element: RequiredClass{Class: "x"}, Detail: "d"})
	other := &Report{Truncated: true}
	other.Add(Violation{Kind: ViolationForbiddenRel})
	r.Merge(other)
	if len(r.Violations) != 2 || !r.Truncated {
		t.Errorf("merge wrong: %+v", r)
	}
	if r.Legal() {
		t.Errorf("non-empty report should be illegal")
	}
	if s := r.String(); s == "" || s == "legal" {
		t.Errorf("report rendering = %q", s)
	}
	if ViolationMissingClass.Content() || !ViolationDisallowedAux.Content() {
		t.Errorf("Content() classification wrong")
	}
}

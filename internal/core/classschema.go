package core

import (
	"fmt"
	"sort"
)

// ClassSchema is the class schema H = (Cc, E, Aux) of Definition 2.3: a
// single-inheritance tree of core ("structural") object classes rooted at
// top, a set of auxiliary object classes, and a function Aux associating
// with each core class the auxiliary classes its entries may additionally
// belong to.
//
// The hierarchy induces the co-occurrence schema elements of Definition
// 2.6: ci ⇒ cj (Subclass) when cj is an ancestor of ci in the tree, and
// ci ⊗ cj (Disjoint) when ci and cj are incomparable core classes.
type ClassSchema struct {
	parent map[string]string              // core class -> its superclass; top -> ""
	kids   map[string][]string            // inverse of parent, sorted lazily
	aux    map[string]struct{}            // declared auxiliary classes
	auxOf  map[string]map[string]struct{} // Aux: core -> allowed auxiliaries
	depth  map[string]int                 // memoized tree depth
}

// NewClassSchema returns a class schema containing only the root class
// top.
func NewClassSchema() *ClassSchema {
	return &ClassSchema{
		parent: map[string]string{ClassTop: ""},
		kids:   make(map[string][]string),
		aux:    make(map[string]struct{}),
		auxOf:  make(map[string]map[string]struct{}),
		depth:  map[string]int{ClassTop: 0},
	}
}

// AddCore declares a new core class c with the given superclass, which
// must already be a core class. Declaring top or re-declaring an existing
// class is an error.
func (s *ClassSchema) AddCore(c, superclass string) error {
	if c == ClassTop {
		return fmt.Errorf("core: class %s is predeclared as the hierarchy root", ClassTop)
	}
	if c == ClassNone || superclass == ClassNone {
		return fmt.Errorf("core: class name %s is reserved", ClassNone)
	}
	if _, dup := s.parent[c]; dup {
		return fmt.Errorf("core: core class %s already declared", c)
	}
	if _, dup := s.aux[c]; dup {
		return fmt.Errorf("core: %s already declared as an auxiliary class", c)
	}
	if _, ok := s.parent[superclass]; !ok {
		return fmt.Errorf("core: superclass %s of %s is not a declared core class", superclass, c)
	}
	s.parent[c] = superclass
	s.kids[superclass] = append(s.kids[superclass], c)
	s.depth[c] = s.depth[superclass] + 1
	return nil
}

// AddAux declares a new auxiliary class.
func (s *ClassSchema) AddAux(c string) error {
	if c == ClassNone {
		return fmt.Errorf("core: class name %s is reserved", ClassNone)
	}
	if _, dup := s.parent[c]; dup {
		return fmt.Errorf("core: %s already declared as a core class", c)
	}
	if _, dup := s.aux[c]; dup {
		return fmt.Errorf("core: auxiliary class %s already declared", c)
	}
	s.aux[c] = struct{}{}
	return nil
}

// AllowAux records auxes ∈ Aux(core): entries of the core class may
// additionally belong to these auxiliary classes.
func (s *ClassSchema) AllowAux(core string, auxes ...string) error {
	if !s.IsCore(core) {
		return fmt.Errorf("core: %s is not a declared core class", core)
	}
	for _, x := range auxes {
		if !s.IsAux(x) {
			return fmt.Errorf("core: %s is not a declared auxiliary class", x)
		}
		set := s.auxOf[core]
		if set == nil {
			set = make(map[string]struct{})
			s.auxOf[core] = set
		}
		set[x] = struct{}{}
	}
	return nil
}

// IsCore reports whether c is a declared core class.
func (s *ClassSchema) IsCore(c string) bool {
	_, ok := s.parent[c]
	return ok
}

// IsAux reports whether c is a declared auxiliary class.
func (s *ClassSchema) IsAux(c string) bool {
	_, ok := s.aux[c]
	return ok
}

// Declared reports whether c is declared at all (the "only object classes
// mentioned in the schema" condition of Definition 2.7).
func (s *ClassSchema) Declared(c string) bool { return s.IsCore(c) || s.IsAux(c) }

// Superclass returns the parent of core class c in the hierarchy, and
// false for top or undeclared classes.
func (s *ClassSchema) Superclass(c string) (string, bool) {
	p, ok := s.parent[c]
	if !ok || p == "" {
		return "", false
	}
	return p, true
}

// Superclasses returns the chain from c (inclusive) up to top, for a core
// class c; nil otherwise.
func (s *ClassSchema) Superclasses(c string) []string {
	if !s.IsCore(c) {
		return nil
	}
	var out []string
	for cur := c; ; {
		out = append(out, cur)
		p, ok := s.Superclass(cur)
		if !ok {
			return out
		}
		cur = p
	}
}

// Subclasses returns the immediate subclasses of core class c, sorted.
func (s *ClassSchema) Subclasses(c string) []string {
	out := append([]string(nil), s.kids[c]...)
	sort.Strings(out)
	return out
}

// Subsumes reports the co-occurrence element sub ⇒ super: whether super
// lies on sub's superclass chain (reflexively). It is false unless both
// are core classes.
func (s *ClassSchema) Subsumes(sub, super string) bool {
	if !s.IsCore(sub) || !s.IsCore(super) {
		return false
	}
	for cur := sub; ; {
		if cur == super {
			return true
		}
		p, ok := s.Superclass(cur)
		if !ok {
			return false
		}
		cur = p
	}
}

// Comparable reports whether one of the two core classes subsumes the
// other. Incomparable core classes are disjoint (ci ⊗ cj) under single
// inheritance.
func (s *ClassSchema) Comparable(c1, c2 string) bool {
	return s.Subsumes(c1, c2) || s.Subsumes(c2, c1)
}

// Disjoint reports the forbidden co-occurrence element c1 ⊗ c2: both are
// core classes and neither subsumes the other.
func (s *ClassSchema) Disjoint(c1, c2 string) bool {
	return s.IsCore(c1) && s.IsCore(c2) && !s.Comparable(c1, c2)
}

// AuxAllowed reports whether aux ∈ Aux(core).
func (s *ClassSchema) AuxAllowed(core, aux string) bool {
	_, ok := s.auxOf[core][aux]
	return ok
}

// AuxesOf returns Aux(core), sorted.
func (s *ClassSchema) AuxesOf(core string) []string { return sortedKeys(s.auxOf[core]) }

// MaxAux returns max over core classes of |Aux(c)|, used in the
// complexity accounting of Theorem 3.1.
func (s *ClassSchema) MaxAux() int {
	m := 0
	for _, set := range s.auxOf {
		if len(set) > m {
			m = len(set)
		}
	}
	return m
}

// Depth returns the depth of the core class hierarchy (top has depth 0).
func (s *ClassSchema) Depth() int {
	m := 0
	for _, d := range s.depth {
		if d > m {
			m = d
		}
	}
	return m
}

// DepthOf returns the depth of core class c in the hierarchy, or -1 if
// undeclared.
func (s *ClassSchema) DepthOf(c string) int {
	d, ok := s.depth[c]
	if !ok {
		return -1
	}
	return d
}

// CoreClasses returns Cc, sorted.
func (s *ClassSchema) CoreClasses() []string {
	out := make([]string, 0, len(s.parent))
	for c := range s.parent {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// AuxClasses returns Cx, sorted.
func (s *ClassSchema) AuxClasses() []string { return sortedKeys(s.aux) }

// Clone returns an independent deep copy.
func (s *ClassSchema) Clone() *ClassSchema {
	out := NewClassSchema()
	// Re-add cores in depth order so superclasses exist first.
	cores := s.CoreClasses()
	sort.Slice(cores, func(i, j int) bool { return s.depth[cores[i]] < s.depth[cores[j]] })
	for _, c := range cores {
		if c == ClassTop {
			continue
		}
		if err := out.AddCore(c, s.parent[c]); err != nil {
			panic(err) // cannot happen: source schema is well-formed
		}
	}
	for x := range s.aux {
		if err := out.AddAux(x); err != nil {
			panic(err)
		}
	}
	for c, set := range s.auxOf {
		for x := range set {
			if err := out.AllowAux(c, x); err != nil {
				panic(err)
			}
		}
	}
	return out
}

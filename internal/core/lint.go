package core

import (
	"fmt"
)

// Lint inspects a schema for quality problems short of inconsistency —
// the diagnostics a schema author wants before deployment. Findings do
// not affect legality; they flag dead weight and latent traps:
//
//   - unsatisfiable classes (no legal instance can populate them);
//   - auxiliary classes no core class allows (undeclarable in practice);
//   - classes carrying attribute requirements but unreachable from the
//     structure schema or attribute allowances (likely typos);
//   - redundant structure elements: elements derivable from the rest of
//     the schema by the Figure 6/7 inference system, so removing them
//     changes nothing about which instances are legal... almost — see
//     RedundantElements for the exact guarantee.
type LintFinding struct {
	// Kind is a stable identifier: unsatisfiable-class, orphan-aux,
	// unused-class, redundant-element.
	Kind string
	// Subject names the class or renders the element concerned.
	Subject string
	Detail  string
}

func (f LintFinding) String() string {
	return fmt.Sprintf("%-20s %-28s %s", f.Kind, f.Subject, f.Detail)
}

// Lint returns the findings for the schema, deterministic in order.
func Lint(s *Schema) []LintFinding {
	var out []LintFinding
	in := Infer(s)

	// Unsatisfiable classes that the schema still talks about.
	for _, c := range s.Classes.CoreClasses() {
		if in.Unsatisfiable(c) {
			out = append(out, LintFinding{
				Kind:    "unsatisfiable-class",
				Subject: c,
				Detail:  "no legal instance can contain an entry of this class",
			})
		}
	}

	// Auxiliary classes no core class allows.
	allowed := make(map[string]bool)
	for _, c := range s.Classes.CoreClasses() {
		for _, x := range s.Classes.AuxesOf(c) {
			allowed[x] = true
		}
	}
	for _, x := range s.Classes.AuxClasses() {
		if !allowed[x] {
			out = append(out, LintFinding{
				Kind:    "orphan-aux",
				Subject: x,
				Detail:  "declared auxiliary class is allowed by no core class",
			})
		}
	}

	// Leaf core classes that nothing references: no attributes, no
	// structure elements, no subclasses, no aux allowances.
	structClasses := toSet(s.Structure.Classes())
	attrClasses := toSet(s.Attrs.Classes())
	for _, c := range s.Classes.CoreClasses() {
		if c == ClassTop {
			continue
		}
		if len(s.Classes.Subclasses(c)) > 0 {
			continue
		}
		_, inStruct := structClasses[c]
		_, inAttrs := attrClasses[c]
		if !inStruct && !inAttrs && len(s.Classes.AuxesOf(c)) == 0 {
			out = append(out, LintFinding{
				Kind:    "unused-class",
				Subject: c,
				Detail:  "leaf core class with no attributes, structure elements or auxiliaries",
			})
		}
	}

	for _, el := range RedundantElements(s) {
		out = append(out, LintFinding{
			Kind:    "redundant-element",
			Subject: el.ElementString(),
			Detail:  "derivable from the remaining schema elements (Figures 6-7)",
		})
	}
	return out
}

// RedundantElements returns the structure-schema elements that the rest
// of the schema derives via the inference system: dropping such an
// element keeps every remaining-legal instance identical in the "schema
// implies element" sense of Theorem 5.1. (Because the inference system is
// sound but deliberately incomplete as a logic, the converse — flagging
// every semantically redundant element — is not promised.)
func RedundantElements(s *Schema) []Element {
	var out []Element
	check := func(without *Schema, el Element) bool {
		in := Infer(without)
		f, ok := in.factOf(el)
		if !ok {
			return false
		}
		_ = f
		return true
	}

	for _, rc := range s.Structure.RequiredClasses() {
		without := s.Clone()
		removeRequiredClass(without.Structure, rc)
		if check(without, RequiredClass{Class: rc}) {
			out = append(out, RequiredClass{Class: rc})
		}
	}
	for _, rel := range s.Structure.RequiredRels() {
		without := s.Clone()
		removeRequiredRel(without.Structure, rel)
		if check(without, rel) {
			out = append(out, rel)
		}
	}
	for _, rel := range s.Structure.ForbiddenRels() {
		without := s.Clone()
		removeForbiddenRel(without.Structure, rel)
		if check(without, rel) {
			out = append(out, rel)
		}
	}
	return out
}

func removeRequiredClass(ss *StructureSchema, c string) {
	delete(ss.required, c)
}

func removeRequiredRel(ss *StructureSchema, r RequiredRel) {
	delete(ss.reqRels, r)
}

func removeForbiddenRel(ss *StructureSchema, r ForbiddenRel) {
	delete(ss.forbRels, r)
}

package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"boundschema/internal/dirtree"
)

func TestEvolutionLightweightChanges(t *testing.T) {
	old := whitePagesSchema(t)
	new := old.Clone()
	// The two Section 6.2 examples plus friends.
	new.Attrs.Allow("person", "homePage")
	if err := new.Classes.AddAux("pilot"); err != nil {
		t.Fatal(err)
	}
	if err := new.Classes.AllowAux("staffMember", "pilot"); err != nil {
		t.Fatal(err)
	}
	if err := new.Classes.AddCore("contractor", "person"); err != nil {
		t.Fatal(err)
	}

	plan := PlanEvolution(old, new)
	if !plan.Lightweight() {
		t.Fatalf("all changes should be lightweight:\n%s", plan)
	}
	d := whitePagesInstance(t, old)
	if r := CheckEvolution(new, d, plan); !r.Legal() {
		t.Fatalf("lightweight evolution flagged violations:\n%s", r)
	}
	// And indeed the instance is fully legal under the new schema.
	if r := NewChecker(new).Check(d); !r.Legal() {
		t.Fatalf("full check disagrees:\n%s", r)
	}
}

func TestEvolutionContentRecheck(t *testing.T) {
	old := whitePagesSchema(t)
	new := old.Clone()
	new.Attrs.Require("person", "uid") // Figure 1 entries lack a uid attribute
	plan := PlanEvolution(old, new)
	if plan.Lightweight() {
		t.Fatalf("new required attribute must not be lightweight")
	}
	if got := plan.ContentClasses(); len(got) != 1 || got[0] != "person" {
		t.Fatalf("content classes = %v", got)
	}
	d := whitePagesInstance(t, old)
	r := CheckEvolution(new, d, plan)
	if got := len(r.ByKind(ViolationMissingAttr)); got != 3 { // three persons
		t.Fatalf("missing-attr violations = %d, want 3:\n%s", got, r)
	}
}

func TestEvolutionStructureCheck(t *testing.T) {
	old := whitePagesSchema(t)
	new := old.Clone()
	new.Structure.RequireRel("orgUnit", AxisDesc, "researcher")
	new.Structure.RequireClass("staffMember")
	plan := PlanEvolution(old, new)
	if got := len(plan.StructureElements()); got != 2 {
		t.Fatalf("structure elements = %d, want 2\n%s", got, plan)
	}
	d := whitePagesInstance(t, old)
	r := CheckEvolution(new, d, plan)
	// attLabs's direct researcher requirement fails for no unit? Every
	// orgUnit needs a researcher descendant: attLabs has laks/suciu;
	// databases has them too — satisfied. staffMember exists (armstrong).
	if !r.Legal() {
		t.Fatalf("evolution should pass:\n%s", r)
	}
	// Now a violating addition.
	new2 := old.Clone()
	new2.Structure.RequireClass("consultant")
	plan2 := PlanEvolution(old, new2)
	r2 := CheckEvolution(new2, d, plan2)
	if len(r2.ByKind(ViolationMissingClass)) != 1 {
		t.Fatalf("missing consultant not caught:\n%s", r2)
	}
}

func TestEvolutionRegistryChanges(t *testing.T) {
	old := whitePagesSchema(t)
	d := whitePagesInstance(t, old)

	new := old.Clone()
	reg := dirtree.NewRegistry()
	for _, a := range old.Registry.Attrs() {
		reg.Declare(a, old.Registry.Type(a))
	}
	reg.DeclareSingle("mail", dirtree.TypeString) // laks has two mails
	new.Registry = reg
	plan := PlanEvolution(old, new)
	if !plan.FullContent() {
		t.Fatalf("single-valued change must force a full content recheck:\n%s", plan)
	}
	r := CheckEvolution(new, d, plan)
	if len(r.ByKind(ViolationTyping)) == 0 {
		t.Fatalf("double mail not caught:\n%s", r)
	}
}

func TestEvolutionRemovedClass(t *testing.T) {
	old := whitePagesSchema(t)
	d := whitePagesInstance(t, old)
	new := NewSchema()
	// Rebuild the schema without the researcher class.
	for _, c := range old.Classes.CoreClasses() {
		if c == ClassTop || c == "researcher" {
			continue
		}
		p, _ := old.Classes.Superclass(c)
		if err := new.Classes.AddCore(c, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, x := range old.Classes.AuxClasses() {
		if err := new.Classes.AddAux(x); err != nil {
			t.Fatal(err)
		}
	}
	new.Attrs = old.Attrs.Clone()
	new.Registry = old.Registry
	plan := PlanEvolution(old, new)
	if plan.Lightweight() {
		t.Fatalf("class removal must not be lightweight")
	}
	r := CheckEvolution(new, d, plan)
	if len(r.ByKind(ViolationUnknownClass)) == 0 {
		t.Fatalf("entries of removed class not caught:\n%s", r)
	}
}

func TestEvolutionPlanString(t *testing.T) {
	old := whitePagesSchema(t)
	if got := PlanEvolution(old, old).String(); got != "no schema changes" {
		t.Errorf("identity plan = %q", got)
	}
	new := old.Clone()
	new.Attrs.Allow("person", "homePage")
	s := PlanEvolution(old, new).String()
	if !strings.Contains(s, "lightweight") || !strings.Contains(s, "homePage") {
		t.Errorf("plan rendering:\n%s", s)
	}
}

// TestQuickEvolutionAgreesWithFullCheck: for instances legal under the
// old schema and random schema edits, the planned checks must reach the
// same verdict as a full check under the new schema.
func TestQuickEvolutionAgreesWithFullCheck(t *testing.T) {
	f := func(seed int64, grow uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		old := whitePagesSchema(t)
		d := whitePagesInstance(t, old)
		growLegal(t, old, d, rng, int(grow%20))

		new := old.Clone()
		// Apply 1-3 random edits.
		cores := new.Classes.CoreClasses()
		attrs := []string{"name", "mail", "uid", "room", "uri"}
		for k := 0; k < rng.Intn(3)+1; k++ {
			c := cores[rng.Intn(len(cores))]
			switch rng.Intn(6) {
			case 0:
				new.Attrs.Allow(c, attrs[rng.Intn(len(attrs))])
			case 1:
				new.Attrs.Require(c, attrs[rng.Intn(len(attrs))])
			case 2:
				new.Structure.RequireClass(c)
			case 3:
				new.Structure.RequireRel(c, Axis(rng.Intn(4)), cores[rng.Intn(len(cores))])
			case 4:
				_ = new.Structure.ForbidRel(c, Axis(rng.Intn(2)), cores[rng.Intn(len(cores))])
			default:
				// no-op edit
			}
		}
		plan := PlanEvolution(old, new)
		planVerdict := CheckEvolution(new, d, plan).Legal()
		fullVerdict := NewChecker(new).Check(d).Legal()
		if planVerdict != fullVerdict {
			t.Logf("verdicts differ (plan=%v full=%v):\n%s", planVerdict, fullVerdict, plan)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"boundschema/internal/dirtree"
	"boundschema/internal/hquery"
)

// This file implements the parallel execution mode of the Checker.
// Theorem 3.1 makes full legality checking linear in |D|, and the work is
// embarrassingly parallel along two independent axes:
//
//   - the content and key checks of Section 3.1 are per-entry, so the
//     pre-order entry list shards into contiguous DN-ordered chunks that
//     workers check independently;
//   - the structure checks of Section 3.2 are per-element, one Figure 4
//     query each, so the queries evaluate concurrently against one shared
//     read-only Binding.
//
// Determinism contract: a parallel run produces a report byte-identical
// to the sequential reference implementation. Content chunks are merged
// in chunk (= pre-order) order; key extraction is sharded but the
// uniqueness pass replays the extracted streams in pre-order; structure
// violations are emitted in the schema's canonical element order with
// MaxWitnesses applied after the merge, exactly where the sequential path
// applies it. The differential oracle (difforacle.go) enforces this
// contract over randomized workloads.
//
// Concurrency contract: workers only read the directory. The directory's
// interval encoding is brought current once, before the fan-out, so no
// worker ever triggers the lazy re-encoding (see hquery.AuditReadOnly).

// autoParallelMin is the instance size below which Concurrency = 0 (auto)
// stays sequential: the fan-out overhead dominates for small instances,
// and the incremental Figure 5 checks keep hot small-Δ paths cheap.
const autoParallelMin = 4096

// chunksPerWorker oversplits the entry list so a chunk of expensive
// entries cannot serialize the pool behind one worker.
const chunksPerWorker = 4

// cancelStride is how many entries a Legal worker checks between polls of
// the cancellation signal.
const cancelStride = 256

// workersFor resolves the Concurrency knob for an instance of n entries:
// 1 is the sequential reference path, > 1 is taken literally, and 0 (or
// negative) picks GOMAXPROCS for instances big enough to amortize it.
func (c *Checker) workersFor(n int) int {
	switch {
	case c.Concurrency == 1:
		return 1
	case c.Concurrency > 1:
		return c.Concurrency
	default:
		if n < autoParallelMin {
			return 1
		}
		return runtime.GOMAXPROCS(0)
	}
}

// runPool runs the jobs on a bounded pool of workers and waits for all of
// them. Jobs are claimed in index order.
func runPool(workers int, jobs []func()) {
	if len(jobs) == 0 {
		return
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, job := range jobs {
			job()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				jobs[i]()
			}
		}()
	}
	wg.Wait()
}

// chunkBounds splits [0, n) into at most chunks contiguous half-open
// ranges of near-equal size.
func chunkBounds(n, chunks int) [][2]int {
	if n == 0 {
		return nil
	}
	if chunks > n {
		chunks = n
	}
	if chunks < 1 {
		chunks = 1
	}
	out := make([][2]int, 0, chunks)
	for i := 0; i < chunks; i++ {
		lo, hi := i*n/chunks, (i+1)*n/chunks
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Content schema: contiguous entry chunks, merged in pre-order.

func (c *Checker) checkContentParallel(d *dirtree.Directory, workers int) *Report {
	entries := d.Entries() // brings the encoding current before the fan-out
	bounds := chunkBounds(len(entries), workers*chunksPerWorker)
	reports := make([]*Report, len(bounds))
	jobs := make([]func(), len(bounds))
	for i := range bounds {
		i := i
		jobs[i] = func() {
			r := &Report{}
			for _, e := range entries[bounds[i][0]:bounds[i][1]] {
				c.checkEntry(e, r)
			}
			reports[i] = r
		}
	}
	runPool(workers, jobs)
	out := &Report{}
	for _, r := range reports {
		out.Merge(r)
	}
	return out
}

// ---------------------------------------------------------------------
// Keys: sharded extraction, sequential uniqueness replay.

// keyRef is one (key value, holding entry) occurrence, in pre-order.
type keyRef struct {
	kv keyVal
	e  *dirtree.Entry
}

func (c *Checker) checkKeysParallel(d *dirtree.Directory, workers int) *Report {
	r := &Report{}
	keys := c.schema.Keys()
	entries := d.Entries()
	bounds := chunkBounds(len(entries), workers*chunksPerWorker)
	streams := make([][]keyRef, len(bounds))
	jobs := make([]func(), len(bounds))
	for i := range bounds {
		i := i
		jobs[i] = func() {
			var refs []keyRef
			for _, e := range entries[bounds[i][0]:bounds[i][1]] {
				for _, attr := range keys {
					for _, v := range e.Attr(attr) {
						refs = append(refs, keyRef{keyVal{attr, v.String()}, e})
					}
				}
			}
			streams[i] = refs
		}
	}
	runPool(workers, jobs)
	// Replaying the per-chunk streams in chunk order visits the values in
	// exactly the sequential pass's order, so the first holder of every
	// value — and the violation list — is identical.
	seen := make(map[keyVal]*dirtree.Entry, len(entries))
	for _, refs := range streams {
		for _, ref := range refs {
			if prev, dup := seen[ref.kv]; dup && prev != ref.e {
				r.Add(Violation{Kind: ViolationDuplicateKey, Entry: ref.e,
					Detail: fmt.Sprintf("key %s=%q already used by %s", ref.kv.attr, ref.kv.value, prev.DN())})
				continue
			}
			seen[ref.kv] = ref.e
		}
	}
	return r
}

// ---------------------------------------------------------------------
// Structure schema: one job per element, canonical emission order.

func (c *Checker) checkStructureParallel(d *dirtree.Directory, workers int) *Report {
	d.EnsureEncoded()
	b := hquery.NewBinding(d)
	if err := hquery.AuditReadOnly(b); err != nil {
		// Unreachable after EnsureEncoded; keep the sequential path as the
		// safe fallback rather than racing on a stale encoding.
		return c.checkStructureOn(b)
	}
	rc := c.schema.Structure.RequiredClasses()
	rr := c.schema.Structure.RequiredRels()
	fr := c.schema.Structure.ForbiddenRels()
	missing := make([]bool, len(rc))
	rrWitnesses := make([][]*dirtree.Entry, len(rr))
	frWitnesses := make([][]*dirtree.Entry, len(fr))
	jobs := make([]func(), 0, len(rc)+len(rr)+len(fr))
	for i, cls := range rc {
		i, cls := i, cls
		jobs = append(jobs, func() { missing[i] = hquery.Empty(RequiredClassQuery(cls), b) })
	}
	for i, rel := range rr {
		i, rel := i, rel
		jobs = append(jobs, func() { rrWitnesses[i] = hquery.Eval(RequiredRelQuery(rel), b) })
	}
	for i, rel := range fr {
		i, rel := i, rel
		jobs = append(jobs, func() { frWitnesses[i] = hquery.Eval(ForbiddenRelQuery(rel), b) })
	}
	runPool(workers, jobs)
	// Emit in the canonical element order with the witness cap applied
	// after the merge — the same place the sequential path applies it.
	r := &Report{}
	for i, cls := range rc {
		if missing[i] {
			r.Add(Violation{Kind: ViolationMissingClass,
				Element: RequiredClass{Class: cls},
				Detail:  fmt.Sprintf("no entry belongs to required class %s", cls)})
		}
	}
	for i, rel := range rr {
		c.addWitnesses(r, ViolationRequiredRel, rel, rrWitnesses[i])
	}
	for i, rel := range fr {
		c.addWitnesses(r, ViolationForbiddenRel, rel, frWitnesses[i])
	}
	return r
}

// ---------------------------------------------------------------------
// Legal: cooperative short-circuit.

// legalParallel runs every per-entry chunk, the key pass and every
// structure query as pool jobs sharing a cancellation signal: the first
// violation found cancels all other workers cooperatively.
func (c *Checker) legalParallel(d *dirtree.Directory, workers int) bool {
	d.EnsureEncoded()
	entries := d.Entries()
	var failed atomic.Bool
	stop := make(chan struct{})
	var once sync.Once
	fail := func() {
		failed.Store(true)
		once.Do(func() { close(stop) })
	}
	cancelled := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	var jobs []func()
	for _, bd := range chunkBounds(len(entries), workers*chunksPerWorker) {
		lo, hi := bd[0], bd[1]
		jobs = append(jobs, func() {
			for i, e := range entries[lo:hi] {
				if i%cancelStride == 0 && cancelled() {
					return
				}
				if !c.EntryLegal(e) {
					fail()
					return
				}
			}
		})
	}
	if keys := c.schema.Keys(); len(keys) > 0 {
		// Uniqueness needs one global map, so the key pass is a single job
		// that aborts on the first duplicate or on cancellation.
		jobs = append(jobs, func() {
			seen := make(map[keyVal]*dirtree.Entry, len(entries))
			for i, e := range entries {
				if i%cancelStride == 0 && cancelled() {
					return
				}
				for _, attr := range keys {
					for _, v := range e.Attr(attr) {
						kv := keyVal{attr, v.String()}
						if prev, dup := seen[kv]; dup && prev != e {
							fail()
							return
						}
						seen[kv] = e
					}
				}
			}
		})
	}
	b := hquery.NewBinding(d)
	for _, cls := range c.schema.Structure.RequiredClasses() {
		cls := cls
		jobs = append(jobs, func() {
			if !cancelled() && hquery.Empty(RequiredClassQuery(cls), b) {
				fail()
			}
		})
	}
	for _, rel := range c.schema.Structure.RequiredRels() {
		rel := rel
		jobs = append(jobs, func() {
			if !cancelled() && !hquery.Empty(RequiredRelQuery(rel), b) {
				fail()
			}
		})
	}
	for _, rel := range c.schema.Structure.ForbiddenRels() {
		rel := rel
		jobs = append(jobs, func() {
			if !cancelled() && !hquery.Empty(ForbiddenRelQuery(rel), b) {
				fail()
			}
		})
	}
	runPool(workers, jobs)
	return !failed.Load()
}

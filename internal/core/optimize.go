package core

import (
	"boundschema/internal/hquery"
)

// QueryFacts adapts an inference closure to hquery.SchemaFacts, enabling
// the schema-aware query optimization the paper's conclusion sketches
// ("query optimization is facilitated using schema"): on instances legal
// under the schema, guaranteed relationships collapse joins and
// forbidden relationships empty them.
type QueryFacts struct {
	in *Inference
}

// NewQueryFacts derives optimization facts from the schema's closure.
func NewQueryFacts(s *Schema) QueryFacts { return QueryFacts{in: Infer(s)} }

// UnsatClass implements hquery.SchemaFacts.
func (f QueryFacts) UnsatClass(c string) bool {
	id, ok := f.in.ids[c]
	if !ok {
		// A class absent from the schema cannot occur in a legal
		// instance (Definition 2.7's "only object classes mentioned in
		// the schema").
		return !f.in.schema.Classes.IsAux(c)
	}
	return f.in.unsat[id]
}

// Required implements hquery.SchemaFacts.
func (f QueryFacts) Required(ci, axis, cj string) bool {
	ax, ok := parseFactAxis(axis)
	if !ok {
		return false
	}
	si, ok1 := f.in.ids[ci]
	ti, ok2 := f.in.ids[cj]
	if !ok1 || !ok2 {
		return false
	}
	return f.in.hasReq(si, ax, ti)
}

// Forbidden implements hquery.SchemaFacts.
func (f QueryFacts) Forbidden(ci, axis, cj string) bool {
	ax, ok := parseFactAxis(axis)
	if !ok || !ax.Downward() {
		return false
	}
	ui, ok1 := f.in.ids[ci]
	li, ok2 := f.in.ids[cj]
	if !ok1 || !ok2 {
		return false
	}
	return f.in.hasForb(ui, ax, li)
}

func parseFactAxis(axis string) (Axis, bool) {
	a, err := ParseAxis(axis)
	if err != nil {
		return 0, false
	}
	return a, true
}

// OptimizeQuery rewrites a hierarchical selection query using the
// schema's guarantees; the result is equivalent on every instance legal
// under the schema.
func OptimizeQuery(q hquery.Query, s *Schema) hquery.Query {
	return hquery.Optimize(q, NewQueryFacts(s))
}

// GuaranteedElements returns the structure-schema elements whose Figure 4
// violation queries optimize to statically-empty form — elements the
// schema itself guarantees, needing no evaluation at all during legality
// checks of instances already known to satisfy the rest of the schema.
func GuaranteedElements(s *Schema) []Element {
	facts := NewQueryFacts(s)
	var out []Element
	for _, rel := range s.Structure.RequiredRels() {
		if hquery.IsStaticallyEmpty(hquery.Optimize(RequiredRelQuery(rel), facts)) {
			out = append(out, rel)
		}
	}
	for _, rel := range s.Structure.ForbiddenRels() {
		if hquery.IsStaticallyEmpty(hquery.Optimize(ForbiddenRelQuery(rel), facts)) {
			out = append(out, rel)
		}
	}
	return out
}

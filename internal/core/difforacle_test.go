package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/workload"
)

// The differential-testing harness drives core.DiffEngines — sequential
// checker vs parallel checker vs the quadratic naive oracle — over a few
// hundred randomized directories from every workload generator family:
// random schemas + random instances, the extension-rule hard cases, and
// white-pages corpora (clean and corrupted, with and without keys).

// oracleParams cycles worker counts and witness caps so chunk merges of
// different widths and capped/uncapped reports are all covered. Uncapped
// cases dominate because only they compare full violation sets against
// the naive oracle.
func oracleParams(i int) (concurrency, maxWitnesses int) {
	concs := []int{2, 3, 4, 8}
	caps := []int{0, 0, 1, 3}
	return concs[i%len(concs)], caps[i%len(caps)]
}

func TestDiffOracleRandom(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := workload.RandomSchema(rng, workload.SchemaConfig{
			Classes:         rng.Intn(6) + 2,
			Required:        rng.Intn(5),
			Forbidden:       rng.Intn(4),
			RequiredClasses: rng.Intn(3),
			Deep:            seed%2 == 0,
		})
		d := workload.RandomInstance(s, rng, rng.Intn(120))
		concurrency, maxWitnesses := oracleParams(int(seed))
		if err := core.DiffEngines(s, d, concurrency, maxWitnesses); err != nil {
			t.Fatalf("seed %d (n=%d, workers=%d, cap=%d): %v",
				seed, d.Len(), concurrency, maxWitnesses, err)
		}
	}
}

func TestDiffOracleHardCases(t *testing.T) {
	for i, hc := range workload.HardCases() {
		for _, n := range []int{0, 7, 40} {
			rng := rand.New(rand.NewSource(int64(i*100 + n)))
			d := workload.RandomInstance(hc.Schema, rng, n)
			if err := core.DiffEngines(hc.Schema, d, 4, 0); err != nil {
				t.Fatalf("%s n=%d: %v", hc.Name, n, err)
			}
		}
	}
}

func TestDiffOracleWhitePages(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		s := workload.WhitePagesSchema()
		if seed%2 == 0 {
			s.DeclareKey("mail")
		}
		d := workload.Corpus(s, rng, 60+rng.Intn(200))
		if seed%3 != 0 {
			corruptDirectory(d, rng)
		}
		concurrency, maxWitnesses := oracleParams(int(seed))
		if err := core.DiffEngines(s, d, concurrency, maxWitnesses); err != nil {
			t.Fatalf("seed %d (n=%d, workers=%d, cap=%d): %v",
				seed, d.Len(), concurrency, maxWitnesses, err)
		}
	}
}

// corruptDirectory seeds a mix of content, key and structure violations
// into a legal white-pages instance.
func corruptDirectory(d *dirtree.Directory, rng *rand.Rand) {
	entries := append([]*dirtree.Entry(nil), d.Entries()...)
	for i, e := range entries {
		switch rng.Intn(14) {
		case 0:
			e.AddClass("bogusClass") // unknown class
		case 1:
			e.SetValues("name") // drop person's required attribute
		case 2:
			e.AddValue("mail", dirtree.String("dup@example.org")) // key duplicate / disallowed attr
		case 3:
			e.RemoveClass("top") // break the inheritance chain
		case 4:
			e.AddValue("salary", dirtree.String("42")) // attribute no class allows
		case 5:
			e.AddClass("secretary") // aux not allowed by researcher cores
		case 6:
			if e.HasClass("person") {
				// person ⇥ch top is forbidden: any child under a person.
				_, _ = d.AddChild(e, fmt.Sprintf("cn=bad%d", i), "person", "top")
			}
		}
	}
}

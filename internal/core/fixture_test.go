package core

import (
	"testing"

	"boundschema/internal/dirtree"
)

// whitePagesSchema builds the paper's running example: the class schema of
// Figure 2, a structure schema matching Figure 3 and the Section 3/4
// narrative, and the attribute schema sketched in Sections 1.2 and 2.2.
func whitePagesSchema(t testing.TB) *Schema {
	s := NewSchema()

	// Figure 2: core hierarchy.
	mustCore := func(c, super string) {
		if err := s.Classes.AddCore(c, super); err != nil {
			t.Fatalf("AddCore(%s, %s): %v", c, super, err)
		}
	}
	mustCore("orgGroup", ClassTop)
	mustCore("person", ClassTop)
	mustCore("organization", "orgGroup")
	mustCore("orgUnit", "orgGroup")
	mustCore("staffMember", "person")
	mustCore("researcher", "person")

	// Figure 2: auxiliary classes.
	for _, x := range []string{"online", "manager", "secretary", "consultant", "facultyMember"} {
		if err := s.Classes.AddAux(x); err != nil {
			t.Fatalf("AddAux(%s): %v", x, err)
		}
	}
	mustAllow := func(core string, auxes ...string) {
		if err := s.Classes.AllowAux(core, auxes...); err != nil {
			t.Fatalf("AllowAux(%s): %v", core, err)
		}
	}
	mustAllow("orgGroup", "online")
	mustAllow("person", "online")
	mustAllow("staffMember", "manager", "secretary", "consultant")
	mustAllow("researcher", "manager", "consultant", "facultyMember")

	// Attribute schema (Section 1.2: every person must have a name).
	s.Attrs.Require("person", "name")
	s.Attrs.Allow("organization", "uri")
	s.Attrs.Allow("orgUnit", "location")
	s.Attrs.Allow("online", "mail")

	// Figure 3 / Sections 3-4: structure schema.
	s.Structure.RequireClass("organization")
	s.Structure.RequireClass("orgUnit")
	s.Structure.RequireClass("person")
	s.Structure.RequireRel("orgGroup", AxisDesc, "person") // every org group employs a person
	s.Structure.RequireRel("orgUnit", AxisParent, "orgGroup")
	s.Structure.RequireRel("person", AxisAnc, "organization")
	if err := s.Structure.ForbidRel("person", AxisChild, ClassTop); err != nil {
		t.Fatal(err)
	}

	if err := s.Validate(); err != nil {
		t.Fatalf("white pages schema invalid: %v", err)
	}
	return s
}

// whitePagesInstance builds the Figure 1 instance, which is legal w.r.t.
// whitePagesSchema.
func whitePagesInstance(t testing.TB, s *Schema) *dirtree.Directory {
	d := dirtree.New(s.Registry)
	add := func(parent *dirtree.Entry, rdn string, classes ...string) *dirtree.Entry {
		var e *dirtree.Entry
		var err error
		if parent == nil {
			e, err = d.AddRoot(rdn, classes...)
		} else {
			e, err = d.AddChild(parent, rdn, classes...)
		}
		if err != nil {
			t.Fatalf("add %s: %v", rdn, err)
		}
		return e
	}
	att := add(nil, "o=att", "organization", "orgGroup", "online", "top")
	att.AddValue("uri", dirtree.String("http://www.att.com/"))
	labs := add(att, "ou=attLabs", "orgUnit", "orgGroup", "top")
	labs.AddValue("location", dirtree.String("FP"))
	armstrong := add(labs, "uid=armstrong", "staffMember", "person", "top")
	armstrong.AddValue("name", dirtree.String("m armstrong"))
	db := add(labs, "ou=databases", "orgUnit", "orgGroup", "top")
	laks := add(db, "uid=laks", "researcher", "facultyMember", "person", "online", "top")
	laks.AddValue("name", dirtree.String("laks lakshmanan"))
	laks.AddValue("mail", dirtree.String("laks@cs.concordia.ca"))
	laks.AddValue("mail", dirtree.String("laks@cse.iitb.ernet.in"))
	suciu := add(db, "uid=suciu", "researcher", "person", "top")
	suciu.AddValue("name", dirtree.String("dan suciu"))
	return d
}

func entryByRDN(t testing.TB, d *dirtree.Directory, rdn string) *dirtree.Entry {
	for _, e := range d.Entries() {
		if e.RDN() == rdn {
			return e
		}
	}
	t.Fatalf("no entry with RDN %s", rdn)
	return nil
}

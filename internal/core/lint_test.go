package core

import (
	"testing"
)

func findingKinds(fs []LintFinding) map[string][]string {
	out := make(map[string][]string)
	for _, f := range fs {
		out[f.Kind] = append(out[f.Kind], f.Subject)
	}
	return out
}

// TestLintWhitePagesRedundancy documents a real property of the paper's
// own running schema: two of its required classes are derivable from the
// rest — orgUnit⇓ plus orgUnit →pa orgGroup and orgGroup →de person
// already force person entries to exist, and person →an organization
// then forces an organization. The linter finds exactly those, and
// nothing else.
func TestLintWhitePagesRedundancy(t *testing.T) {
	s := whitePagesSchema(t)
	kinds := findingKinds(Lint(s))
	if got := kinds["redundant-element"]; len(got) != 2 ||
		got[0] != "organization⇓" || got[1] != "person⇓" {
		t.Fatalf("redundant elements = %v, want [organization⇓ person⇓]", got)
	}
	for _, k := range []string{"unsatisfiable-class", "orphan-aux", "unused-class"} {
		if len(kinds[k]) != 0 {
			t.Errorf("unexpected %s findings: %v", k, kinds[k])
		}
	}
}

func TestLintUnsatisfiableClass(t *testing.T) {
	s := whitePagesSchema(t)
	if err := s.Classes.AddCore("ghost", ClassTop); err != nil {
		t.Fatal(err)
	}
	s.Structure.RequireRel("ghost", AxisDesc, "ghost")
	kinds := findingKinds(Lint(s))
	if len(kinds["unsatisfiable-class"]) != 1 || kinds["unsatisfiable-class"][0] != "ghost" {
		t.Errorf("unsatisfiable finding missing: %v", kinds)
	}
}

func TestLintOrphanAux(t *testing.T) {
	s := whitePagesSchema(t)
	if err := s.Classes.AddAux("lonely"); err != nil {
		t.Fatal(err)
	}
	kinds := findingKinds(Lint(s))
	if len(kinds["orphan-aux"]) != 1 || kinds["orphan-aux"][0] != "lonely" {
		t.Errorf("orphan-aux finding missing: %v", kinds)
	}
}

func TestLintUnusedClass(t *testing.T) {
	s := whitePagesSchema(t)
	if err := s.Classes.AddCore("decor", ClassTop); err != nil {
		t.Fatal(err)
	}
	kinds := findingKinds(Lint(s))
	if len(kinds["unused-class"]) != 1 || kinds["unused-class"][0] != "decor" {
		t.Errorf("unused-class finding missing: %v", kinds)
	}
}

func TestLintRedundantElements(t *testing.T) {
	s := whitePagesSchema(t)
	// researcher →de person is implied: researcher ⇒ person and... no —
	// build real redundancies instead:
	// 1. A child requirement makes the descendant requirement redundant.
	s.Structure.RequireRel("organization", AxisChild, "orgUnit")
	s.Structure.RequireRel("organization", AxisDesc, "orgUnit") // implied by P
	// 2. Requiring a subclass makes requiring the superclass redundant
	//    (rule S: researcher inherits orgGroup →de person... use c⇓):
	s.Structure.RequireClass("researcher") // not in Cr yet
	// person⇓ already in Cr and researcher⇓ implies it (rule E).

	reds := RedundantElements(s)
	have := make(map[string]bool)
	for _, el := range reds {
		have[el.ElementString()] = true
	}
	if !have["organization →de orgUnit"] {
		t.Errorf("implied descendant requirement not flagged: %v", reds)
	}
	if !have["person⇓"] {
		t.Errorf("implied required class not flagged: %v", reds)
	}
	// The child requirement itself is NOT redundant.
	if have["organization →ch orgUnit"] {
		t.Errorf("non-redundant element flagged")
	}
}

func TestLintRedundantForbidden(t *testing.T) {
	s := whitePagesSchema(t)
	// forb(person, de, X) is implied for every X by FL from
	// person ⇥ch top.
	if err := s.Structure.ForbidRel("person", AxisDesc, "orgUnit"); err != nil {
		t.Fatal(err)
	}
	reds := RedundantElements(s)
	found := false
	for _, el := range reds {
		if el.ElementString() == "person ⇥de orgUnit" {
			found = true
		}
	}
	if !found {
		t.Errorf("implied forbidden relationship not flagged: %v", reds)
	}
}

func TestLintFindingString(t *testing.T) {
	f := LintFinding{Kind: "k", Subject: "s", Detail: "d"}
	if got := f.String(); got == "" {
		t.Errorf("empty rendering")
	}
}

package core

import (
	"fmt"

	"boundschema/internal/dirtree"
)

// This file implements the Section 6.1 "Keys" discussion: beyond the
// distinguished name (which is a key by construction), other keys "can
// easily be incorporated in our framework as values of attributes", and
// "given the relatively loose notion of an object class, any notion of a
// key in an LDAP directory must be unique across all entries in the
// directory instance, not just within a single object class".
//
// A key attribute therefore demands: no value of the attribute occurs on
// two distinct entries, anywhere in the instance. Checking is a single
// hash pass (CheckKeys); insertions are incrementally testable by probing
// only the inserted subtree's values against an index (KeyIndex);
// deletions cannot violate uniqueness.

// DeclareKey marks an attribute as a key: its values must be unique
// across all entries of any legal instance.
func (s *Schema) DeclareKey(attr string) {
	if s.keys == nil {
		s.keys = make(map[string]struct{})
	}
	s.keys[attr] = struct{}{}
}

// Keys returns the declared key attributes, sorted.
func (s *Schema) Keys() []string { return sortedKeys(s.keys) }

// IsKey reports whether attr was declared a key.
func (s *Schema) IsKey(attr string) bool {
	_, ok := s.keys[attr]
	return ok
}

// CheckKeys verifies instance-wide uniqueness of every key attribute's
// values, one hash pass over the instance. In parallel mode the value
// extraction is sharded across workers; the uniqueness pass over the
// extracted streams stays sequential so the first holder of every value —
// and therefore the report — is identical to the sequential pass.
func (c *Checker) CheckKeys(d *dirtree.Directory) *Report {
	r := &Report{}
	keys := c.schema.Keys()
	if len(keys) == 0 {
		return r
	}
	if w := c.workersFor(d.Len()); w > 1 {
		return c.checkKeysParallel(d, w)
	}
	seen := make(map[keyVal]*dirtree.Entry)
	for _, e := range d.Entries() {
		c.checkEntryKeys(e, seen, r)
	}
	return r
}

type keyVal struct {
	attr  string
	value string
}

func (c *Checker) checkEntryKeys(e *dirtree.Entry, seen map[keyVal]*dirtree.Entry, r *Report) {
	for _, attr := range c.schema.Keys() {
		for _, v := range e.Attr(attr) {
			kv := keyVal{attr: attr, value: v.String()}
			if prev, dup := seen[kv]; dup && prev != e {
				r.Add(Violation{Kind: ViolationDuplicateKey, Entry: e,
					Detail: fmt.Sprintf("key %s=%q already used by %s", attr, v.String(), prev.DN())})
				continue
			}
			seen[kv] = e
		}
	}
}

// KeyIndex maintains the key-value → entry map alongside a directory, so
// insertions are checked against existing values in O(|Δ| values) — the
// key analogue of the Figure 5 incremental tests. Deletions only remove
// index entries; they cannot violate uniqueness.
type KeyIndex struct {
	schema *Schema
	seen   map[keyVal]string // value -> DN of the holding entry
}

// NewKeyIndex builds the index over the current instance. It does not
// verify uniqueness of the existing values; run CheckKeys first if the
// instance is untrusted.
func NewKeyIndex(s *Schema, d *dirtree.Directory) *KeyIndex {
	ki := &KeyIndex{schema: s, seen: make(map[keyVal]string)}
	for _, e := range d.Entries() {
		ki.note(e)
	}
	return ki
}

func (ki *KeyIndex) note(e *dirtree.Entry) {
	for _, attr := range ki.schema.Keys() {
		for _, v := range e.Attr(attr) {
			ki.seen[keyVal{attr, v.String()}] = e.DN()
		}
	}
}

// CheckInsert reports the key violations the subtree's entries would
// introduce (against the pre-insertion index and against each other).
func (ki *KeyIndex) CheckInsert(d *dirtree.Directory, root *dirtree.Entry) *Report {
	return ki.CheckInsertExcluding(d, root, nil)
}

// CheckInsertExcluding is CheckInsert with an exclusion predicate: a
// collision with an existing holder is excused when excluded(holderDN)
// reports true. The transaction applier uses it so a moved subtree does
// not collide with its own origin, which the same update deletes.
func (ki *KeyIndex) CheckInsertExcluding(d *dirtree.Directory, root *dirtree.Entry, excluded func(dn string) bool) *Report {
	r := &Report{}
	local := make(map[keyVal]string)
	for _, e := range d.SubtreeView(root).Entries() {
		for _, attr := range ki.schema.Keys() {
			for _, v := range e.Attr(attr) {
				kv := keyVal{attr, v.String()}
				if dn, dup := ki.seen[kv]; dup && (excluded == nil || !excluded(dn)) {
					r.Add(Violation{Kind: ViolationDuplicateKey, Entry: e,
						Detail: fmt.Sprintf("key %s=%q already used by %s", attr, v.String(), dn)})
					continue
				}
				if dn, dup := local[kv]; dup {
					r.Add(Violation{Kind: ViolationDuplicateKey, Entry: e,
						Detail: fmt.Sprintf("key %s=%q duplicated within the insertion (also on %s)", attr, v.String(), dn)})
					continue
				}
				local[kv] = e.DN()
			}
		}
	}
	return r
}

// NoteInsert records the subtree's key values after a successful insert.
func (ki *KeyIndex) NoteInsert(d *dirtree.Directory, root *dirtree.Entry) {
	for _, e := range d.SubtreeView(root).Entries() {
		ki.note(e)
	}
}

// NoteDelete forgets the subtree's key values before deletion. A value
// is removed only while the index still attributes it to the deleted
// entry, so a move (which re-attributes the value to the destination
// before the origin is deleted) keeps its key indexed.
func (ki *KeyIndex) NoteDelete(d *dirtree.Directory, root *dirtree.Entry) {
	for _, e := range d.SubtreeView(root).Entries() {
		dn := e.DN()
		for _, attr := range ki.schema.Keys() {
			for _, v := range e.Attr(attr) {
				kv := keyVal{attr, v.String()}
				if ki.seen[kv] == dn {
					delete(ki.seen, kv)
				}
			}
		}
	}
}

// Rebuild recomputes the index from scratch (after a rollback).
func (ki *KeyIndex) Rebuild(d *dirtree.Directory) {
	ki.seen = make(map[keyVal]string)
	for _, e := range d.Entries() {
		ki.note(e)
	}
}

package core

import (
	"fmt"
	"testing"

	"boundschema/internal/dirtree"
)

// witnessFixture builds a schema with two structure elements that each
// produce exactly ten witnesses, over a content-legal directory:
//   - a →ch b: ten childless a-roots violate it;
//   - a ⇥de c: ten a-roots with a c descendant violate it.
func witnessFixture(t *testing.T) (*Schema, *dirtree.Directory) {
	t.Helper()
	s := NewSchema()
	for _, cls := range []string{"a", "b", "c"} {
		if err := s.Classes.AddCore(cls, ClassTop); err != nil {
			t.Fatal(err)
		}
	}
	s.Structure.RequireRel("a", AxisChild, "b")
	if err := s.Structure.ForbidRel("a", AxisDesc, "c"); err != nil {
		t.Fatal(err)
	}
	d := dirtree.New(nil)
	for i := 0; i < 10; i++ {
		// Violates a →ch b (no b child).
		if _, err := d.AddRoot(fmt.Sprintf("r=bare%d", i), "a", ClassTop); err != nil {
			t.Fatal(err)
		}
		// Violates a ⇥de c (has a c descendant) but satisfies a →ch b.
		root, err := d.AddRoot(fmt.Sprintf("r=forb%d", i), "a", ClassTop)
		if err != nil {
			t.Fatal(err)
		}
		mid, err := d.AddChild(root, "x=b", "b", ClassTop)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.AddChild(mid, "x=c", "c", ClassTop); err != nil {
			t.Fatal(err)
		}
	}
	return s, d
}

// TestMaxWitnessesParallelMerge verifies the truncation semantics under
// the parallel merge: the cap is applied per element after the merge, the
// verdict is unaffected, and the report is byte-identical to the
// sequential reference at every worker count.
func TestMaxWitnessesParallelMerge(t *testing.T) {
	s, d := witnessFixture(t)

	for _, tc := range []struct {
		cap           int
		wantPerElem   int
		wantTruncated bool
	}{
		{cap: 0, wantPerElem: 10, wantTruncated: false},
		{cap: 1, wantPerElem: 1, wantTruncated: true},
		{cap: 3, wantPerElem: 3, wantTruncated: true},
		{cap: 9, wantPerElem: 9, wantTruncated: true},
		{cap: 10, wantPerElem: 10, wantTruncated: false},
		{cap: 11, wantPerElem: 10, wantTruncated: false},
		{cap: 100, wantPerElem: 10, wantTruncated: false},
	} {
		seq := NewChecker(s)
		seq.Concurrency = 1
		seq.MaxWitnesses = tc.cap
		ref := seq.Check(d)

		if ref.Legal() {
			t.Fatalf("cap=%d: fixture must be illegal", tc.cap)
		}
		if want := 2 * tc.wantPerElem; len(ref.Violations) != want {
			t.Fatalf("cap=%d: sequential reported %d violations, want %d", tc.cap, len(ref.Violations), want)
		}
		if ref.Truncated != tc.wantTruncated {
			t.Fatalf("cap=%d: sequential Truncated=%v, want %v", tc.cap, ref.Truncated, tc.wantTruncated)
		}

		for _, workers := range []int{2, 3, 4, 16, 64} {
			par := NewChecker(s)
			par.Concurrency = workers
			par.MaxWitnesses = tc.cap
			got := par.Check(d)
			if got.Legal() {
				t.Fatalf("cap=%d workers=%d: verdict flipped to legal", tc.cap, workers)
			}
			if got.Truncated != ref.Truncated {
				t.Fatalf("cap=%d workers=%d: Truncated=%v, want %v", tc.cap, workers, got.Truncated, ref.Truncated)
			}
			if got.String() != ref.String() {
				t.Fatalf("cap=%d workers=%d: report diverges from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
					tc.cap, workers, ref, got)
			}
		}
	}
}

// TestMaxWitnessesDoesNotCapContent pins the sequential semantics the
// parallel merge must reproduce: the witness cap applies to structure
// elements only, never to per-entry content violations.
func TestMaxWitnessesDoesNotCapContent(t *testing.T) {
	s := NewSchema()
	if err := s.Classes.AddCore("a", ClassTop); err != nil {
		t.Fatal(err)
	}
	d := dirtree.New(nil)
	for i := 0; i < 12; i++ {
		if _, err := d.AddRoot(fmt.Sprintf("r=%d", i), "a", "undeclared", ClassTop); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4} {
		c := NewChecker(s)
		c.Concurrency = workers
		c.MaxWitnesses = 2
		r := c.Check(d)
		if got := len(r.ByKind(ViolationUnknownClass)); got != 12 {
			t.Fatalf("workers=%d: %d unknown-class violations reported, want all 12", workers, got)
		}
		if r.Truncated {
			t.Fatalf("workers=%d: content violations must not set Truncated", workers)
		}
	}
}

// TestWorkersFor pins the Concurrency knob semantics: 1 is sequential,
// explicit values are taken literally even for tiny instances, and auto
// mode engages only past the amortization threshold.
func TestWorkersFor(t *testing.T) {
	c := NewChecker(NewSchema())
	if got := c.workersFor(10); got != 1 {
		t.Fatalf("auto on a tiny instance: %d workers, want 1", got)
	}
	if got := c.workersFor(autoParallelMin); got < 1 {
		t.Fatalf("auto past the threshold: %d workers", got)
	}
	c.Concurrency = 1
	if got := c.workersFor(1 << 20); got != 1 {
		t.Fatalf("Concurrency=1 must stay sequential, got %d", got)
	}
	c.Concurrency = 7
	if got := c.workersFor(3); got != 7 {
		t.Fatalf("explicit concurrency must be literal, got %d", got)
	}
}

func TestChunkBounds(t *testing.T) {
	for _, tc := range []struct{ n, chunks int }{
		{0, 4}, {1, 4}, {5, 8}, {100, 7}, {4096, 16},
	} {
		bounds := chunkBounds(tc.n, tc.chunks)
		next := 0
		for _, b := range bounds {
			if b[0] != next || b[1] <= b[0] {
				t.Fatalf("n=%d chunks=%d: bad bounds %v", tc.n, tc.chunks, bounds)
			}
			next = b[1]
		}
		if next != tc.n {
			t.Fatalf("n=%d chunks=%d: bounds cover %d entries: %v", tc.n, tc.chunks, next, bounds)
		}
	}
}

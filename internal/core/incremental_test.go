package core

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"boundschema/internal/dirtree"
	"boundschema/internal/hquery"
)

// growLegal grows the Figure 1 instance with n additional entries while
// preserving legality w.r.t. the white-pages schema: new orgUnits are
// created under orgGroups together with a person child; new persons are
// created under orgGroups.
func growLegal(t testing.TB, s *Schema, d *dirtree.Directory, rng *rand.Rand, n int) {
	i := 0
	for added := 0; added < n; i++ {
		groups := d.ClassEntries("orgGroup")
		parent := groups[rng.Intn(len(groups))]
		if rng.Intn(2) == 0 {
			u, err := d.AddChild(parent, "ou=g"+strconv.Itoa(i), "orgUnit", "orgGroup", "top")
			if err != nil {
				continue
			}
			p, err := d.AddChild(u, "uid=gp"+strconv.Itoa(i), "person", "top")
			if err != nil {
				t.Fatal(err)
			}
			p.AddValue("name", dirtree.String("grown person"))
			added += 2
		} else {
			p, err := d.AddChild(parent, "uid=p"+strconv.Itoa(i), "person", "top")
			if err != nil {
				continue
			}
			p.AddValue("name", dirtree.String("grown person"))
			added++
		}
	}
}

// randomSubtree builds a random subtree in its own directory; the class
// mix makes it sometimes legality-preserving and sometimes violating.
func randomSubtree(t testing.TB, s *Schema, rng *rand.Rand, n int) *dirtree.Directory {
	sub := dirtree.New(s.Registry)
	kinds := [][]string{
		{"orgUnit", "orgGroup", "top"},
		{"person", "top"},
		{"researcher", "person", "top"},
		{"organization", "orgGroup", "top"},
	}
	var all []*dirtree.Entry
	for i := 0; i < n; i++ {
		cs := kinds[rng.Intn(len(kinds))]
		var e *dirtree.Entry
		var err error
		if len(all) == 0 {
			e, err = sub.AddRoot("cn=d"+strconv.Itoa(i), cs...)
		} else {
			e, err = sub.AddChild(all[rng.Intn(len(all))], "cn=d"+strconv.Itoa(i), cs...)
		}
		if err != nil {
			t.Fatal(err)
		}
		if e.HasClass("person") && rng.Intn(4) != 0 {
			e.AddValue("name", dirtree.String("delta person"))
		}
		all = append(all, e)
	}
	return sub
}

// insertVerdict runs the Figure 5 insertion procedure: content check of
// the grafted Δ plus the per-element Δ-queries.
func insertVerdict(c *Checker, d *dirtree.Directory, root *dirtree.Entry) bool {
	for _, e := range d.SubtreeView(root).Entries() {
		if !c.EntryLegal(e) {
			return false
		}
	}
	b := hquery.DeltaBinding(d, root)
	for _, chk := range InsertChecks(c.Schema().Structure) {
		if !chk.Holds(b) {
			return false
		}
	}
	return true
}

// deleteVerdict runs the Figure 5 deletion procedure before removing the
// subtree.
func deleteVerdict(c *Checker, d *dirtree.Directory, root *dirtree.Entry) bool {
	b := hquery.DeltaBinding(d, root)
	for _, chk := range DeleteChecks(c.Schema().Structure) {
		if !chk.Holds(b) {
			return false
		}
	}
	return true
}

// TestFig5InsertionMatchesFullCheck: for a legal D and an arbitrary
// grafted subtree Δ, the incremental insertion verdict must equal full
// legality of D+Δ (Theorem 4.2, insertion rows).
func TestFig5InsertionMatchesFullCheck(t *testing.T) {
	f := func(seed int64, grow, dsize uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := whitePagesSchema(t)
		c := NewChecker(s)
		d := whitePagesInstance(t, s)
		growLegal(t, s, d, rng, int(grow%20))
		if !c.Legal(d) {
			t.Fatalf("precondition: grown instance must be legal")
		}
		sub := randomSubtree(t, s, rng, int(dsize%6)+1)
		parents := d.Entries()
		parent := parents[rng.Intn(len(parents))]
		root, err := d.GraftSubtree(parent, sub.Roots()[0])
		if err != nil {
			t.Fatal(err)
		}
		inc := insertVerdict(c, d, root)
		full := c.Legal(d)
		if inc != full {
			t.Logf("insert under %s: incremental=%v full=%v\nreport:\n%s",
				parent.DN(), inc, full, c.Check(d))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestFig5DeletionMatchesFullCheck: for a legal D and any subtree Δ, the
// incremental deletion verdict must equal full legality of D−Δ.
func TestFig5DeletionMatchesFullCheck(t *testing.T) {
	f := func(seed int64, grow uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := whitePagesSchema(t)
		c := NewChecker(s)
		d := whitePagesInstance(t, s)
		growLegal(t, s, d, rng, int(grow%20))
		if !c.Legal(d) {
			t.Fatalf("precondition: grown instance must be legal")
		}
		ents := d.Entries()
		root := ents[rng.Intn(len(ents))]
		inc := deleteVerdict(c, d, root)

		after := d.Clone()
		afterRoot := after.ByDN(root.DN())
		if _, err := after.DeleteSubtree(afterRoot); err != nil {
			t.Fatal(err)
		}
		full := c.Legal(after)
		if inc != full {
			t.Logf("delete %s: incremental=%v full=%v\nreport:\n%s",
				root.DN(), inc, full, c.Check(after))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestFig5Table checks the Y/N incremental-testability column against the
// paper's Figure 5.
func TestFig5Table(t *testing.T) {
	rels := map[Axis]bool{ // axis -> incrementally testable on delete
		AxisChild:  false,
		AxisDesc:   false,
		AxisParent: true,
		AxisAnc:    true,
	}
	for ax, wantDel := range rels {
		r := RequiredRel{Source: "a", Axis: ax, Target: "b"}
		if ins := InsertCheckRel(r); !ins.Incremental || ins.Query == nil || !ins.WantEmpty {
			t.Errorf("%s insert row wrong: %+v", r.ElementString(), ins)
		}
		del := DeleteCheckRel(r)
		if del.Incremental != wantDel {
			t.Errorf("%s delete incremental = %v, want %v", r.ElementString(), del.Incremental, wantDel)
		}
		if wantDel && del.Query != nil {
			t.Errorf("%s delete should need no query", r.ElementString())
		}
		if !wantDel && del.Query == nil {
			t.Errorf("%s delete needs a full recheck query", r.ElementString())
		}
	}
	for _, ax := range []Axis{AxisChild, AxisDesc} {
		fr := ForbiddenRel{Upper: "a", Axis: ax, Lower: "b"}
		if ins := InsertCheckForb(fr); !ins.Incremental || ins.Query == nil {
			t.Errorf("%s insert row wrong", fr.ElementString())
		}
		if del := DeleteCheckForb(fr); !del.Incremental || del.Query != nil {
			t.Errorf("%s delete row wrong", fr.ElementString())
		}
	}
	if ins := InsertCheckClass("a"); !ins.Incremental || ins.Query != nil {
		t.Errorf("required-class insert row wrong")
	}
	del := DeleteCheckClass("a")
	if del.Incremental || del.Query == nil || del.WantEmpty {
		t.Errorf("required-class delete row wrong: %+v", del)
	}
}

// TestDeltaCheckHolds exercises the Holds plumbing on a concrete update.
func TestDeltaCheckHolds(t *testing.T) {
	s := whitePagesSchema(t)
	d := whitePagesInstance(t, s)
	// Graft an empty orgUnit under attLabs: breaks orgGroup →de person.
	labs := entryByRDN(t, d, "ou=attLabs")
	sub := dirtree.New(s.Registry)
	if _, err := sub.AddRoot("ou=fresh", "orgUnit", "orgGroup", "top"); err != nil {
		t.Fatal(err)
	}
	root, err := d.GraftSubtree(labs, sub.Roots()[0])
	if err != nil {
		t.Fatal(err)
	}
	b := hquery.DeltaBinding(d, root)

	broken := InsertCheckRel(RequiredRel{Source: "orgGroup", Axis: AxisDesc, Target: "person"})
	if broken.Holds(b) {
		t.Errorf("empty orgUnit should break orgGroup →de person")
	}
	fine := InsertCheckRel(RequiredRel{Source: "orgUnit", Axis: AxisParent, Target: "orgGroup"})
	if !fine.Holds(b) {
		t.Errorf("fresh orgUnit does have an orgGroup parent")
	}
	forb := InsertCheckForb(ForbiddenRel{Upper: "person", Axis: AxisChild, Lower: ClassTop})
	if !forb.Holds(b) {
		t.Errorf("no person gained a child")
	}
}

// TestInsertChecksCoverSchema ensures one check per structure element.
func TestInsertChecksCoverSchema(t *testing.T) {
	s := whitePagesSchema(t)
	ins := InsertChecks(s.Structure)
	del := DeleteChecks(s.Structure)
	want := s.Structure.Size()
	if len(ins) != want || len(del) != want {
		t.Errorf("checks = %d/%d, want %d", len(ins), len(del), want)
	}
}

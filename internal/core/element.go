// Package core implements bounding-schemas for LDAP directories — the
// primary contribution of "On Bounding-Schemas for LDAP Directories"
// (EDBT 2000):
//
//   - the schema model of Section 2: attribute schema (Definition 2.2),
//     class schema (Definition 2.3), structure schema (Definition 2.4);
//   - legality testing of Section 3, with the structure schema reduced to
//     hierarchical selection queries per Figure 4 (Theorem 3.1), plus the
//     naive quadratic baseline it improves on;
//   - incremental legality testing under subtree updates of Section 4
//     (Figure 5, Theorems 4.1 and 4.2);
//   - schema-consistency testing of Section 5: the inference system of
//     Figures 6 and 7 (Theorem 5.1 soundness, Theorem 5.2 decision), and a
//     chase-based witness materializer that makes consistency constructive.
package core

import "fmt"

// ClassTop is the root of the core class hierarchy; every entry belongs to
// it (Definition 2.3).
const ClassTop = "top"

// ClassNone is the pseudo-class ∅ used by the inference system of Section
// 5: no entry may belong to it, so the schema element "∅ must exist"
// (Exists(ClassNone)) signals inconsistency, and "every c entry needs an
// axis-related ∅ entry" (RequiredRel with Target ClassNone) states that c
// is unsatisfiable.
const ClassNone = "∅"

// Axis is a hierarchical relationship direction between entries.
type Axis int

// The four axes of Definition 2.4. Forbidden relationships use only
// AxisChild and AxisDesc.
const (
	AxisChild  Axis = iota // one step down
	AxisDesc               // any number of steps down (proper)
	AxisParent             // one step up
	AxisAnc                // any number of steps up (proper)
)

var axisNames = [...]string{"child", "descendant", "parent", "ancestor"}

func (a Axis) String() string {
	if a < 0 || int(a) >= len(axisNames) {
		return fmt.Sprintf("axis(%d)", int(a))
	}
	return axisNames[a]
}

// ParseAxis maps an axis name from the schema DSL back to an Axis.
func ParseAxis(s string) (Axis, error) {
	for i, n := range axisNames {
		if n == s {
			return Axis(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown axis %q", s)
}

// Downward reports whether the axis points from an entry toward its
// subtree (child/descendant) rather than toward its ancestors.
func (a Axis) Downward() bool { return a == AxisChild || a == AxisDesc }

// Transitive reports whether the axis spans arbitrarily many steps.
func (a Axis) Transitive() bool { return a == AxisDesc || a == AxisAnc }

// Element is a schema element in the sense of Definition 2.6: an atomic
// assertion a directory instance may satisfy or violate. The concrete
// elements are RequiredClass, RequiredRel, ForbiddenRel, Subclass and
// Disjoint.
type Element interface {
	// ElementString renders the element in the paper's notation.
	ElementString() string
}

// RequiredClass is the element c⇓: at least one entry belonging to class C
// must exist.
type RequiredClass struct {
	Class string
}

// ElementString implements Element.
func (e RequiredClass) ElementString() string { return e.Class + "⇓" }

// RequiredRel is a required structural relationship: every entry belonging
// to Source must have an Axis-related entry belonging to Target
// (ci →ch cj, ci →de cj, ci →pa cj, ci →an cj).
type RequiredRel struct {
	Source string
	Axis   Axis
	Target string
}

// ElementString implements Element.
func (e RequiredRel) ElementString() string {
	return fmt.Sprintf("%s →%s %s", e.Source, axisShort(e.Axis), e.Target)
}

// ForbiddenRel is a forbidden structural relationship: no entry belonging
// to Lower may be an Axis-related (child or proper descendant) entry of an
// entry belonging to Upper (ci ⇥ch cj, ci ⇥de cj).
type ForbiddenRel struct {
	Upper string
	Axis  Axis // AxisChild or AxisDesc
	Lower string
}

// ElementString implements Element.
func (e ForbiddenRel) ElementString() string {
	return fmt.Sprintf("%s ⇥%s %s", e.Upper, axisShort(e.Axis), e.Lower)
}

// Subclass is the co-occurrence element ci ⇒ cj induced by the core class
// hierarchy: every entry belonging to Sub must also belong to Super.
type Subclass struct {
	Sub, Super string
}

// ElementString implements Element.
func (e Subclass) ElementString() string { return e.Sub + " ⇒ " + e.Super }

// Disjoint is the forbidden co-occurrence element ci ⊗ cj induced by
// single inheritance between incomparable core classes: no entry may
// belong to both.
type Disjoint struct {
	A, B string
}

// ElementString implements Element.
func (e Disjoint) ElementString() string { return e.A + " ⊗ " + e.B }

func axisShort(a Axis) string {
	switch a {
	case AxisChild:
		return "ch"
	case AxisDesc:
		return "de"
	case AxisParent:
		return "pa"
	case AxisAnc:
		return "an"
	}
	return "?"
}

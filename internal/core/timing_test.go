package core

import (
	"sync"
	"testing"
)

// TestCheckerOnTiming verifies the observability hook: every top-level
// Check and Legal reports which execution path the Concurrency knob
// resolved to, the instance size, and the verdict.
func TestCheckerOnTiming(t *testing.T) {
	s := whitePagesSchema(t)
	d := whitePagesInstance(t, s)

	var mu sync.Mutex
	var timings []CheckTiming
	c := NewChecker(s)
	c.OnTiming = func(tm CheckTiming) {
		mu.Lock()
		timings = append(timings, tm)
		mu.Unlock()
	}

	c.Concurrency = 1
	if r := c.Check(d); !r.Legal() {
		t.Fatalf("instance illegal:\n%s", r)
	}
	c.Concurrency = 4
	if !c.Legal(d) {
		t.Fatalf("Legal = false on a legal instance")
	}

	if len(timings) != 2 {
		t.Fatalf("timings = %d, want 2", len(timings))
	}
	seq, par := timings[0], timings[1]
	if seq.Parallel || seq.Workers != 1 {
		t.Errorf("sequential Check reported parallel=%v workers=%d", seq.Parallel, seq.Workers)
	}
	if !par.Parallel || par.Workers != 4 {
		t.Errorf("parallel Legal reported parallel=%v workers=%d", par.Parallel, par.Workers)
	}
	for i, tm := range timings {
		if !tm.Legal {
			t.Errorf("timing %d: verdict legal=false", i)
		}
		if tm.Entries != d.Len() {
			t.Errorf("timing %d: entries = %d, want %d", i, tm.Entries, d.Len())
		}
		if tm.Duration < 0 {
			t.Errorf("timing %d: negative duration", i)
		}
	}

	// An illegal instance reports Legal=false through the hook.
	timings = nil
	if _, err := d.AddRoot("ou=dangling", "orgUnit", "orgGroup", "top"); err != nil {
		t.Fatal(err)
	}
	if c.Legal(d) {
		t.Fatalf("Legal = true on an illegal instance")
	}
	if len(timings) != 1 || timings[0].Legal {
		t.Errorf("illegal verdict not reported: %+v", timings)
	}
}

package core

import (
	"strings"
	"testing"
)

// documentedRules is the rule-tag universe promised by the inference.go
// documentation. Derivations must never cite anything outside it.
var documentedRules = map[string]bool{
	"given": true,
	// Figure 6 (cycles).
	"N": true, "P": true, "T": true, "L": true, "S": true, "G": true, "E": true,
	// Figure 7 (contradictions).
	"PT": true, "FW": true, "FS": true, "FL": true, "DC": true, "PH": true,
	"AH": true, "U": true, "MP": true, "PA": true, "AA": true, "RT": true,
	"LT": true, "CP": true, "DPD": true,
	// Case-analysis extensions.
	"SI": true, "SD": true, "ST": true, "SR": true, "SF": true, "SE": true,
	"AB1": true, "AB2": true, "AB3": true, "AO1": true, "AO2": true,
	"AO3": true, "AO4": true, "SW": true, "BI": true, "BB2": true,
	"BO1": true, "BO2": true, "BO3": true, "BO4": true, "WS": true,
	// Feasibility passes.
	"CHAIN": true, "PCH": true,
}

// TestDerivationRulesAreDocumented extracts every [rule] tag appearing in
// the inconsistency derivations of the taxonomy and hard-case schemas
// and checks each against the documented universe.
func TestDerivationRulesAreDocumented(t *testing.T) {
	schemas := []*Schema{}
	// The taxonomy cases.
	s1 := flatSchema(t, "c1", "c2")
	s1.Structure.RequireClass("c1")
	s1.Structure.RequireRel("c1", AxisChild, "c2")
	s1.Structure.RequireRel("c2", AxisDesc, "c1")
	schemas = append(schemas, s1)
	for _, hc := range hardCaseSchemas(t) {
		schemas = append(schemas, hc)
	}
	for i, s := range schemas {
		in := Infer(s)
		if !in.Inconsistent() {
			t.Fatalf("schema %d should be inconsistent", i)
		}
		exp := in.ExplainInconsistency()
		for _, tag := range ruleTags(exp) {
			if !documentedRules[tag] {
				t.Errorf("schema %d derivation cites undocumented rule %q:\n%s", i, tag, exp)
			}
		}
	}
}

// hardCaseSchemas rebuilds the extension-isolating schemas without
// importing workload (which would cycle with core).
func hardCaseSchemas(t testing.TB) []*Schema {
	var out []*Schema
	for _, s := range extensionSchemas(t) {
		out = append(out, s)
	}
	return out
}

func ruleTags(explanation string) []string {
	var out []string
	for i := 0; i < len(explanation); i++ {
		if explanation[i] != '[' {
			continue
		}
		j := strings.IndexByte(explanation[i:], ']')
		if j < 0 {
			break
		}
		out = append(out, explanation[i+1:i+j])
		i += j
	}
	return out
}

// TestDerivedElementsAreSatisfiableElements: the closure never emits a
// malformed element (axes in range, class names known or ∅).
func TestDerivedElementsWellFormed(t *testing.T) {
	s := whitePagesSchema(t)
	in := Infer(s)
	known := map[string]bool{ClassNone: true}
	for _, c := range s.Classes.CoreClasses() {
		known[c] = true
	}
	for _, el := range in.Derived() {
		switch e := el.(type) {
		case RequiredClass:
			if !known[e.Class] {
				t.Errorf("derived element over unknown class: %v", e)
			}
		case RequiredRel:
			if !known[e.Source] || !known[e.Target] || e.Axis < AxisChild || e.Axis > AxisAnc {
				t.Errorf("malformed derived rel: %v", e)
			}
		case ForbiddenRel:
			if !known[e.Upper] || !known[e.Lower] || !e.Axis.Downward() {
				t.Errorf("malformed derived forb: %v", e)
			}
		}
	}
}

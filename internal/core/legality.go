package core

import (
	"fmt"
	"time"

	"boundschema/internal/dirtree"
	"boundschema/internal/hquery"
)

// Checker tests legality of directory instances against one schema
// (Section 3). It is stateless apart from the schema and safe for
// concurrent use.
type Checker struct {
	schema *Schema
	// MaxWitnesses caps the number of violations reported per schema
	// element / per entry condition; 0 means unlimited. Legality verdicts
	// are unaffected — only report size.
	MaxWitnesses int
	// Concurrency selects the execution mode: 1 runs the sequential
	// reference implementation, values > 1 shard the per-entry content and
	// key checks across that many workers and evaluate the per-element
	// structure queries concurrently, and 0 (the default) picks
	// GOMAXPROCS workers automatically for instances large enough to
	// amortize the fan-out (see autoParallelMin). Parallel and sequential
	// runs produce byte-identical reports; see parallel.go for the merge
	// contract.
	Concurrency int
	// OnTiming, when non-nil, is called after every top-level Check and
	// Legal with the execution profile — which path the Concurrency knob
	// resolved to and the wall time. It must be safe for concurrent use;
	// the server's metrics layer hooks in here.
	OnTiming func(CheckTiming)
}

// CheckTiming describes one top-level Check or Legal invocation.
type CheckTiming struct {
	Parallel bool          // whether the sharded path was taken
	Workers  int           // resolved worker count (1 = sequential)
	Entries  int           // instance size at check time
	Legal    bool          // the verdict
	Duration time.Duration // wall time of the whole check
}

// timed wraps a legality verdict computation with the OnTiming hook.
func (c *Checker) timed(n int, f func() bool) bool {
	if c.OnTiming == nil {
		return f()
	}
	start := time.Now()
	legal := f()
	w := c.workersFor(n)
	c.OnTiming(CheckTiming{
		Parallel: w > 1,
		Workers:  w,
		Entries:  n,
		Legal:    legal,
		Duration: time.Since(start),
	})
	return legal
}

// NewChecker returns a checker for the schema.
func NewChecker(s *Schema) *Checker { return &Checker{schema: s} }

// Schema returns the schema being checked against.
func (c *Checker) Schema() *Schema { return c.schema }

// Check tests full legality (Definition 2.7): content schema entry by
// entry, then structure schema via the Figure 4 query reduction. The
// returned report is never nil.
func (c *Checker) Check(d *dirtree.Directory) *Report {
	var r *Report
	c.timed(d.Len(), func() bool {
		r = c.CheckContent(d)
		r.Merge(c.CheckKeys(d))
		r.Merge(c.CheckStructure(d))
		return r.Legal()
	})
	return r
}

// Legal reports whether d is legal w.r.t. the schema, short-circuiting on
// the first violation. In parallel mode the short-circuit is cooperative:
// the first worker to find a violation cancels the others.
func (c *Checker) Legal(d *dirtree.Directory) bool {
	return c.timed(d.Len(), func() bool { return c.legal(d) })
}

func (c *Checker) legal(d *dirtree.Directory) bool {
	if w := c.workersFor(d.Len()); w > 1 {
		return c.legalParallel(d, w)
	}
	for _, e := range d.Entries() {
		if !c.EntryLegal(e) {
			return false
		}
	}
	if len(c.schema.Keys()) > 0 && !c.CheckKeys(d).Legal() {
		return false
	}
	b := hquery.NewBinding(d)
	for _, cls := range c.schema.Structure.RequiredClasses() {
		if hquery.Empty(RequiredClassQuery(cls), b) {
			return false
		}
	}
	for _, rel := range c.schema.Structure.RequiredRels() {
		if !hquery.Empty(RequiredRelQuery(rel), b) {
			return false
		}
	}
	for _, rel := range c.schema.Structure.ForbiddenRels() {
		if !hquery.Empty(ForbiddenRelQuery(rel), b) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Content schema (Section 3.1): per-entry checks.

// CheckContent tests every entry against the attribute and class schemas.
func (c *Checker) CheckContent(d *dirtree.Directory) *Report {
	if w := c.workersFor(d.Len()); w > 1 {
		return c.checkContentParallel(d, w)
	}
	r := &Report{}
	for _, e := range d.Entries() {
		c.checkEntry(e, r)
	}
	return r
}

// CheckEntry tests a single entry against the content schema, the unit of
// the O(|class(e)| + maxAux·depth(H) + |val(e)| + Σ|ρa(c)|) bound of
// Section 3.1.
func (c *Checker) CheckEntry(e *dirtree.Entry) *Report {
	r := &Report{}
	c.checkEntry(e, r)
	return r
}

// EntryLegal reports whether the entry satisfies the content schema,
// short-circuiting on the first violation.
func (c *Checker) EntryLegal(e *dirtree.Entry) bool {
	r := &Report{}
	c.checkEntry(e, r)
	return r.Legal()
}

func (c *Checker) checkEntry(e *dirtree.Entry, r *Report) {
	cs := c.schema.Classes
	classes := e.Classes()

	// Class schema, condition 1: only declared object classes.
	for _, cls := range classes {
		if !cs.Declared(cls) {
			r.Add(Violation{Kind: ViolationUnknownClass, Entry: e,
				Detail: fmt.Sprintf("object class %s is not declared in the schema", cls)})
		}
	}

	// Class schema, condition 2: at least one core class; and find the
	// deepest core class for the single-inheritance check.
	deepest, nCore := "", 0
	for _, cls := range classes {
		if cs.IsCore(cls) {
			nCore++
			if deepest == "" || cs.DepthOf(cls) > cs.DepthOf(deepest) {
				deepest = cls
			}
		}
	}
	if nCore == 0 {
		r.Add(Violation{Kind: ViolationNoCoreClass, Entry: e,
			Detail: "entry belongs to no core object class"})
	} else {
		// Condition 3 (single inheritance): the entry's core classes must
		// be exactly the superclass chain of its deepest core class — the
		// chain members must all be present (ci ⇒ cj) and nothing off the
		// chain may be present (ci ⊗ cj). Walking one chain of length
		// ≤ depth(H) checks both directions.
		chain := make(map[string]struct{}, cs.DepthOf(deepest)+1)
		for _, sup := range cs.Superclasses(deepest) {
			chain[sup] = struct{}{}
			if !e.HasClass(sup) {
				r.Add(Violation{Kind: ViolationInheritance, Entry: e,
					Element: Subclass{Sub: deepest, Super: sup},
					Detail:  fmt.Sprintf("belongs to %s but not to its superclass %s", deepest, sup)})
			}
		}
		for _, cls := range classes {
			if !cs.IsCore(cls) {
				continue
			}
			if _, onChain := chain[cls]; !onChain {
				r.Add(Violation{Kind: ViolationIncomparable, Entry: e,
					Element: Disjoint{A: deepest, B: cls},
					Detail:  fmt.Sprintf("core classes %s and %s are incomparable", deepest, cls)})
			}
		}
	}

	// Class schema, condition 4: every auxiliary class must be allowed by
	// some core class of the entry.
	for _, cls := range classes {
		if !cs.IsAux(cls) {
			continue
		}
		ok := false
		for _, cc := range classes {
			if cs.IsCore(cc) && cs.AuxAllowed(cc, cls) {
				ok = true
				break
			}
		}
		if !ok {
			r.Add(Violation{Kind: ViolationDisallowedAux, Entry: e,
				Detail: fmt.Sprintf("auxiliary class %s is not allowed by any of the entry's core classes", cls)})
		}
	}

	// Attribute schema, condition 1: required attributes present.
	as := c.schema.Attrs
	for _, cls := range classes {
		for _, a := range as.Required(cls) {
			if !e.HasAttr(a) {
				r.Add(Violation{Kind: ViolationMissingAttr, Entry: e,
					Detail: fmt.Sprintf("class %s requires attribute %s", cls, a)})
			}
		}
	}

	// Attribute schema, condition 2: only allowed attributes present.
	// objectClass is implicitly allowed everywhere (Definition 2.1 ties
	// it to the class set).
	for _, a := range e.AttrNames() {
		if a == dirtree.AttrObjectClass {
			continue
		}
		ok := false
		for _, cls := range classes {
			if as.IsAllowed(cls, a) {
				ok = true
				break
			}
		}
		if !ok {
			r.Add(Violation{Kind: ViolationDisallowedAttr, Entry: e,
				Detail: fmt.Sprintf("attribute %s is allowed by none of the entry's classes", a)})
		}
	}

	// Typing (Definition 2.1 condition 3(a)) and single-valued
	// declarations (Section 6.1), when a registry is present.
	if reg := c.schema.Registry; reg != nil {
		for _, a := range e.AttrNames() {
			if a == dirtree.AttrObjectClass {
				continue
			}
			vs := e.Attr(a)
			for _, v := range vs {
				if err := reg.CheckValue(a, v); err != nil {
					r.Add(Violation{Kind: ViolationTyping, Entry: e, Detail: err.Error()})
					break
				}
			}
			if reg.SingleValued(a) && len(vs) > 1 {
				r.Add(Violation{Kind: ViolationTyping, Entry: e,
					Detail: fmt.Sprintf("attribute %s is single-valued but has %d values", a, len(vs))})
			}
		}
	}
}

// ---------------------------------------------------------------------
// Structure schema (Section 3.2): query-based checks.

// CheckStructure tests the structure schema using the Figure 4 reduction:
// one hierarchical selection query per element, each evaluated in
// O(|Q|·|D|). In parallel mode the per-element queries run concurrently.
func (c *Checker) CheckStructure(d *dirtree.Directory) *Report {
	if w := c.workersFor(d.Len()); w > 1 {
		return c.checkStructureParallel(d, w)
	}
	return c.checkStructureOn(hquery.NewBinding(d))
}

func (c *Checker) checkStructureOn(b hquery.Binding) *Report {
	r := &Report{}
	for _, cls := range c.schema.Structure.RequiredClasses() {
		if hquery.Empty(RequiredClassQuery(cls), b) {
			r.Add(Violation{Kind: ViolationMissingClass,
				Element: RequiredClass{Class: cls},
				Detail:  fmt.Sprintf("no entry belongs to required class %s", cls)})
		}
	}
	for _, rel := range c.schema.Structure.RequiredRels() {
		c.addWitnesses(r, ViolationRequiredRel, rel, hquery.Eval(RequiredRelQuery(rel), b))
	}
	for _, rel := range c.schema.Structure.ForbiddenRels() {
		c.addWitnesses(r, ViolationForbiddenRel, rel, hquery.Eval(ForbiddenRelQuery(rel), b))
	}
	return r
}

func (c *Checker) addWitnesses(r *Report, kind ViolationKind, el Element, witnesses []*dirtree.Entry) {
	for i, w := range witnesses {
		if c.MaxWitnesses > 0 && i >= c.MaxWitnesses {
			r.Truncated = true
			return
		}
		r.Add(Violation{Kind: kind, Entry: w, Element: el})
	}
}

package core

import (
	"testing"

	"boundschema/internal/dirtree"
)

func keySchema(t *testing.T) *Schema {
	s := whitePagesSchema(t)
	s.Attrs.Allow("person", "ssn")
	s.DeclareKey("ssn")
	return s
}

func TestKeysDeclaration(t *testing.T) {
	s := keySchema(t)
	if !s.IsKey("ssn") || s.IsKey("name") {
		t.Errorf("IsKey wrong")
	}
	if got := s.Keys(); len(got) != 1 || got[0] != "ssn" {
		t.Errorf("Keys = %v", got)
	}
	c := s.Clone()
	if !c.IsKey("ssn") {
		t.Errorf("Clone lost keys")
	}
	c.DeclareKey("mail")
	if s.IsKey("mail") {
		t.Errorf("Clone not independent")
	}
}

func TestCheckKeys(t *testing.T) {
	s := keySchema(t)
	d := whitePagesInstance(t, s)
	laks := entryByRDN(t, d, "uid=laks")
	suciu := entryByRDN(t, d, "uid=suciu")
	laks.AddValue("ssn", dirtree.String("123-45-6789"))
	suciu.AddValue("ssn", dirtree.String("987-65-4321"))

	checker := NewChecker(s)
	if r := checker.Check(d); !r.Legal() {
		t.Fatalf("distinct keys flagged:\n%s", r)
	}
	suciu.SetValues("ssn", dirtree.String("123-45-6789"))
	r := checker.Check(d)
	if got := len(r.ByKind(ViolationDuplicateKey)); got != 1 {
		t.Fatalf("duplicate-key violations = %d:\n%s", got, r)
	}
	if checker.Legal(d) {
		t.Errorf("Legal() misses duplicate keys")
	}
	// Two values on the SAME entry are not a pair violation.
	suciu.SetValues("ssn", dirtree.String("1"), dirtree.String("1"))
	// (value sets dedupe; simulate same value across attrs is fine)
	if r := checker.CheckKeys(d); !r.Legal() {
		t.Errorf("single-entry values flagged:\n%s", r)
	}
}

func TestKeyIndexIncremental(t *testing.T) {
	s := keySchema(t)
	d := whitePagesInstance(t, s)
	laks := entryByRDN(t, d, "uid=laks")
	laks.AddValue("ssn", dirtree.String("123"))
	ki := NewKeyIndex(s, d)

	// A fresh subtree with a colliding key.
	frag := dirtree.New(s.Registry)
	fr, _ := frag.AddRoot("ou=new", "orgUnit", "orgGroup", "top")
	p, _ := frag.AddChild(fr, "uid=clone", "person", "top")
	p.AddValue("name", dirtree.String("clone"))
	p.AddValue("ssn", dirtree.String("123"))
	root, err := d.GraftSubtree(entryByRDN(t, d, "ou=attLabs"), frag.Roots()[0])
	if err != nil {
		t.Fatal(err)
	}
	if r := ki.CheckInsert(d, root); r.Legal() {
		t.Fatalf("colliding key accepted")
	}
	// Fix the collision: now acceptable, and the index learns the value.
	clone := d.ByDN("uid=clone,ou=new,ou=attLabs,o=att")
	clone.SetValues("ssn", dirtree.String("456"))
	if r := ki.CheckInsert(d, root); !r.Legal() {
		t.Fatalf("distinct key rejected:\n%s", r)
	}
	ki.NoteInsert(d, root)

	// A second subtree duplicating the newly inserted value.
	frag2 := dirtree.New(s.Registry)
	f2, _ := frag2.AddRoot("ou=more", "orgUnit", "orgGroup", "top")
	q, _ := frag2.AddChild(f2, "uid=dup", "person", "top")
	q.AddValue("name", dirtree.String("dup"))
	q.AddValue("ssn", dirtree.String("456"))
	root2, err := d.GraftSubtree(entryByRDN(t, d, "ou=attLabs"), frag2.Roots()[0])
	if err != nil {
		t.Fatal(err)
	}
	if r := ki.CheckInsert(d, root2); r.Legal() {
		t.Fatalf("duplicate of inserted key accepted")
	}
	// Deleting the first subtree frees the value.
	ki.NoteDelete(d, root)
	if r := ki.CheckInsert(d, root2); !r.Legal() {
		t.Fatalf("freed key still rejected:\n%s", r)
	}
}

func TestKeyIndexInternalDuplicate(t *testing.T) {
	s := keySchema(t)
	d := whitePagesInstance(t, s)
	ki := NewKeyIndex(s, d)
	frag := dirtree.New(s.Registry)
	fr, _ := frag.AddRoot("ou=new", "orgUnit", "orgGroup", "top")
	for _, uid := range []string{"a", "b"} {
		p, _ := frag.AddChild(fr, "uid="+uid, "person", "top")
		p.AddValue("name", dirtree.String(uid))
		p.AddValue("ssn", dirtree.String("same"))
	}
	root, err := d.GraftSubtree(entryByRDN(t, d, "ou=attLabs"), frag.Roots()[0])
	if err != nil {
		t.Fatal(err)
	}
	if r := ki.CheckInsert(d, root); r.Legal() {
		t.Fatalf("within-insertion duplicate accepted")
	}
}

func TestEvolutionKeyAddition(t *testing.T) {
	old := whitePagesSchema(t)
	old.Attrs.Allow("person", "ssn")
	d := whitePagesInstance(t, old)
	for _, rdn := range []string{"uid=laks", "uid=suciu"} {
		entryByRDN(t, d, rdn).AddValue("ssn", dirtree.String("same"))
	}
	if !NewChecker(old).Check(d).Legal() {
		t.Fatal("fixture must be legal under the old schema")
	}
	new := old.Clone()
	new.DeclareKey("ssn")
	plan := PlanEvolution(old, new)
	if plan.Lightweight() {
		t.Fatalf("declaring a key must not be lightweight:\n%s", plan)
	}
	r := CheckEvolution(new, d, plan)
	if len(r.ByKind(ViolationDuplicateKey)) == 0 {
		t.Fatalf("existing duplicates not caught:\n%s", r)
	}
	// Dropping a key is lightweight.
	plan2 := PlanEvolution(new, old)
	if !plan2.Lightweight() {
		t.Fatalf("dropping a key must be lightweight:\n%s", plan2)
	}
}

func TestMaterializeWithKeyedRequiredAttr(t *testing.T) {
	s := whitePagesSchema(t)
	s.Attrs.Require("person", "employeeID")
	s.DeclareKey("employeeID")
	// Force several persons in the witness so colliding placeholders
	// would be caught.
	s.Structure.RequireClass("researcher")
	s.Structure.RequireClass("staffMember")
	d, err := Materialize(s)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if r := NewChecker(s).Check(d); !r.Legal() {
		t.Fatalf("keyed witness illegal:\n%s", r)
	}
	if d.ClassCount("person") < 2 {
		t.Fatalf("witness should contain several persons")
	}
}

// TestMaterializeWithKeyedIntAttr covers the non-string placeholder
// paths.
func TestMaterializeWithKeyedIntAttr(t *testing.T) {
	s := whitePagesSchema(t)
	s.Registry.Declare("badge", dirtree.TypeInt)
	s.Attrs.Require("person", "badge")
	s.DeclareKey("badge")
	s.Structure.RequireClass("researcher")
	s.Structure.RequireClass("staffMember")
	d, err := Materialize(s)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if r := NewChecker(s).Check(d); !r.Legal() {
		t.Fatalf("keyed int witness illegal:\n%s", r)
	}
}

package core

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the inference system of Section 5 (Figures 6 and
// 7): a fixpoint closure over schema elements that detects the two causes
// of schema inconsistency — cycles and contradictions — including their
// interactions with the core class hierarchy. The schema is consistent
// iff the marker Exists(∅) is not derivable (Theorem 5.2).
//
// The published figures are reconstructed here from the paper's prose and
// the formal semantics of Definition 2.6 (the source scan is partially
// garbled); DESIGN.md records the reconstruction and the mechanical
// validation strategy. The rules, with ⇒ the subclass relation and ⊗
// disjointness of incomparable core classes:
//
// Figure 6 (cycles):
//
//	N   exists(ci), req(ci,ax,cj)            ⊢ exists(cj)        any axis
//	P   req(ci,ch,cj)                        ⊢ req(ci,de,cj)
//	P   req(ci,pa,cj)                        ⊢ req(ci,an,cj)
//	T   req(ci,de,cj), req(cj,de,ck)         ⊢ req(ci,de,ck)     same for an
//	L   req(ci,de,ci)                        ⊢ req(ci,de,∅)      same for an
//	S   ci' ⇒ ci, req(ci,ax,cj)              ⊢ req(ci',ax,cj)
//	G   req(ci,ax,cj), cj ⇒ cj'              ⊢ req(ci,ax,cj')
//	E   exists(ci), ci ⇒ cj                  ⊢ exists(cj)
//
// Figure 7 (contradictions):
//
//	PT  req(ci,de,cj)                        ⊢ req(ci,ch,top)
//	PT  req(ci,an,cj)                        ⊢ req(ci,pa,top)
//	FW  forb(ci,de,cj)                       ⊢ forb(ci,ch,cj)
//	FL  forb(ci,ch,top)                      ⊢ forb(ci,de,top)
//	    (a childless class has no descendants either)
//	FS  forb(ci,ax,cj), ci' ⇒ ci             ⊢ forb(ci',ax,cj)
//	FS  forb(ci,ax,cj), cj' ⇒ cj             ⊢ forb(ci,ax,cj')
//	DC  req(ci,ax,cj), forb(ci,ax,cj)        ⊢ req(ci,ax,∅)      ax ∈ {ch,de}
//	PH  req(ci,pa,cj), forb(cj,ch,ci)        ⊢ req(ci,pa,∅)
//	AH  req(ci,an,cj), forb(cj,de,ci)        ⊢ req(ci,an,∅)
//	U   req(ci,ax,cj), unsat(cj)             ⊢ req(ci,ax,∅)
//	MP  req(ci,pa,cj), req(ci,pa,ck), cj⊗ck  ⊢ req(ci,pa,∅)
//	PA  req(ci,pa,cj), req(ci,an,ck), cj⊗ck, forb(ck,de,cj)
//	                                         ⊢ req(ci,pa,∅)
//	AA  req(ci,an,cj), req(ci,an,ck), cj⊗ck, forb(cj,de,ck), forb(ck,de,cj)
//	                                         ⊢ req(ci,an,∅)
//	RT  req(ci,de,cj), forb(top,ch,cj)       ⊢ req(ci,de,∅)
//	LT  req(ci,an,cj), forb(cj,ch,top)       ⊢ req(ci,an,∅)
//	CP  req(ci,ch,cj), req(cj,pa,ck), ci⊗ck  ⊢ req(ci,ch,∅)
//	DPD req(ci,de,cj), req(cj,pa,ck), ci⊗ck  ⊢ req(ci,de,ck)
//	DPD req(ci,de,cj), req(cj,pa,ck), forb(ci,ch,cj)
//	                                         ⊢ req(ci,de,ck)
//
// (The ch/pa forms of RT and LT are already derivable: FS propagates a
// top-rooted prohibition to every core class, after which DC and PH
// fire.)
//
// DPD captures that the required parent of a strict descendant is itself
// strictly below the source whenever it cannot be the source entry
// (disjoint classes, or the descendant may not be a direct child); the
// derived descendant requirement then feeds the cycle rules T/L and the
// conflict rule DC.
//
// Two auxiliary fact kinds compile the case analysis the Parenthood/
// Ancestorhood schemata need ("the witness is the source entry itself or
// sits strictly above it"):
//
//	self(a,c):  every a entry also belongs to c
//	            (from req(a,ch,b), req(b,pa,c): the b child's parent IS
//	            the a entry)
//	above(a,c): every a entry belongs to c or has a strict c ancestor
//	            (from req(a,an,c); from self(a,c); and from req(a,ch,b),
//	            req(b,an,c): the child's ancestors are a and a's
//	            ancestors)
//
// with the rules
//
//	SD  self(a,c), a⊗c                       ⊢ unsat(a)
//	ST  self(a,b), self(b,c)                 ⊢ self(a,c)
//	SR  self(a,c), req(c,ax,d)               ⊢ req(a,ax,d)
//	SF  self(a,c), forb(x,ax,c)              ⊢ forb(x,ax,a)   and
//	    self(a,c), forb(c,ax,d)              ⊢ forb(a,ax,d)
//	SE  exists(a), self(a,c)                 ⊢ exists(c)
//	AO1 above(a,c), a⊗c                      ⊢ req(a,an,c)
//	AO2 above(a,c), req(c,an,d)              ⊢ req(a,an,d)    (also pa)
//	AO3 above(a,b), above(b,c)               ⊢ above(a,c)
//	AO4 above(a,c), forb(c,de,a)             ⊢ self(a,c)
//	SW  req(a,de,k), above(a,c), forb(c,de,k) ⊢ req(a,de,∅)
//
// SW is the "sandwich" contradiction: something must sit below a, but
// everything at or above a may not have it below.
//
// The downward dual below(a,c) — every a entry belongs to c or has a
// strict c descendant — arises from req(a,de,b), req(b,pa,c) (the strict
// descendant's parent is the a entry or sits strictly below it) and obeys
// the mirrored rules BO1-BO4 plus the dual sandwich
//
//	WS  req(a,an,x), below(a,c), forb(x,de,c) ⊢ req(a,an,∅)
//
// where unsat(c) abbreviates "req(c,ax,∅) for some axis": no entry of
// class c can occur in a legal instance. Finally, a chain-feasibility
// pass (the general form of the MP/PA/AA "Ancestorhood" analysis)
// detects forced-order cycles among three or more required ancestors.
//
// The closure is polynomial: O(|C|²) facts per kind, each processed once
// with O(|C|)-bounded joins.

type factKind int

const (
	factExists factKind = iota
	factReq
	factForb
	factSelf  // self(a,c): every a entry also belongs to c
	factAbove // above(a,c): every a entry is in c or has a strict c ancestor
	factBelow // below(a,c): every a entry is in c or has a strict c descendant
)

// fact is one closed schema element over class ids.
type fact struct {
	kind factKind
	a    int // class (exists) or source/upper
	ax   Axis
	b    int // target/lower; unused for exists
}

// InferOptions tunes the inference system, for ablation experiments.
type InferOptions struct {
	// PairwiseOnly restricts the system to the rules directly
	// reconstructable from the paper's Figures 6-7 (pairwise premises
	// over req/forb/sub/disjoint facts), disabling this implementation's
	// extensions: the CP/DPD compositions, the self/above/below case-
	// analysis facts, and the chain-feasibility passes. Used to
	// demonstrate which inconsistencies each group catches (experiment
	// E11); production callers should use Infer.
	PairwiseOnly bool
}

// Inference is the closed schema-element database. Build it with Infer.
type Inference struct {
	schema *Schema
	opts   InferOptions
	names  []string       // id -> class name; ids[0] is the pseudo-class ∅
	ids    map[string]int // class name -> id

	treeParent []int   // immediate superclass id, -1 for top and ∅
	treeKids   [][]int // immediate subclasses
	depth      []int

	exists  []bool
	req     [4][]map[int]struct{} // req[ax][src] -> targets
	revReq  [4][]map[int]struct{} // revReq[ax][tgt] -> sources
	forb    [2][]map[int]struct{} // forb[ax][upper] -> lowers (ch, de)
	revForb [2][]map[int]struct{} // revForb[ax][lower] -> uppers
	self    []map[int]struct{}    // self[a] -> {c}
	selfRev []map[int]struct{}
	abv     []map[int]struct{} // abv[a] -> {c}
	abvRev  []map[int]struct{}
	blw     []map[int]struct{} // blw[a] -> {c}
	blwRev  []map[int]struct{}
	unsat   []bool

	inconsistent bool
	prov         map[fact]provenance
	work         []fact
}

type provenance struct {
	rule     string
	premises []fact
}

const (
	idNone = 0 // the pseudo-class ∅
)

// Infer computes the closure of the schema's class and structure
// elements under the inference rules.
func Infer(s *Schema) *Inference { return InferWith(s, InferOptions{}) }

// InferWith is Infer with explicit options (see InferOptions).
func InferWith(s *Schema, opts InferOptions) *Inference {
	in := &Inference{
		schema: s,
		opts:   opts,
		ids:    make(map[string]int),
		prov:   make(map[fact]provenance),
	}
	in.addClass(ClassNone)
	// Register every core class; ∅ has id 0, and tree pointers follow the
	// class schema. (Structure schemas range over core classes only.)
	cores := s.Classes.CoreClasses()
	sort.Slice(cores, func(i, j int) bool {
		return s.Classes.DepthOf(cores[i]) < s.Classes.DepthOf(cores[j])
	})
	for _, c := range cores {
		id := in.addClass(c)
		if p, ok := s.Classes.Superclass(c); ok {
			pid := in.ids[p]
			in.treeParent[id] = pid
			in.treeKids[pid] = append(in.treeKids[pid], id)
			in.depth[id] = in.depth[pid] + 1
		}
	}

	// Seed the base facts.
	for _, c := range s.Structure.RequiredClasses() {
		in.assertExists(in.ids[c], "given", nil)
	}
	for _, r := range s.Structure.RequiredRels() {
		in.assertReq(in.ids[r.Source], r.Axis, in.ids[r.Target], "given", nil)
	}
	for _, f := range s.Structure.ForbiddenRels() {
		in.assertForb(in.ids[f.Upper], f.Axis, in.ids[f.Lower], "given", nil)
	}
	in.drain()

	// Alternate the chain-feasibility pass with the rule closure until
	// neither derives anything new.
	if !opts.PairwiseOnly {
		for in.chainFeasibility() {
			in.drain()
		}
	}
	return in
}

func (in *Inference) addClass(name string) int {
	id := len(in.names)
	in.names = append(in.names, name)
	in.ids[name] = id
	in.treeParent = append(in.treeParent, -1)
	in.treeKids = append(in.treeKids, nil)
	in.depth = append(in.depth, 0)
	in.exists = append(in.exists, false)
	in.unsat = append(in.unsat, name == ClassNone)
	for ax := 0; ax < 4; ax++ {
		in.req[ax] = append(in.req[ax], nil)
		in.revReq[ax] = append(in.revReq[ax], nil)
	}
	for ax := 0; ax < 2; ax++ {
		in.forb[ax] = append(in.forb[ax], nil)
		in.revForb[ax] = append(in.revForb[ax], nil)
	}
	in.self = append(in.self, nil)
	in.selfRev = append(in.selfRev, nil)
	in.abv = append(in.abv, nil)
	in.abvRev = append(in.abvRev, nil)
	in.blw = append(in.blw, nil)
	in.blwRev = append(in.blwRev, nil)
	return id
}

// subsumes reports sub ⇒ super over ids (reflexive, via the tree).
func (in *Inference) subsumes(sub, super int) bool {
	for c := sub; c != -1; c = in.treeParent[c] {
		if c == super {
			return true
		}
	}
	return false
}

// disjoint reports the ⊗ relation over ids: distinct incomparable core
// classes. ∅ is treated as disjoint from everything.
func (in *Inference) disjoint(a, b int) bool {
	if a == idNone || b == idNone {
		return true
	}
	return !in.subsumes(a, b) && !in.subsumes(b, a)
}

func (in *Inference) hasReq(src int, ax Axis, tgt int) bool {
	_, ok := in.req[ax][src][tgt]
	return ok
}

func (in *Inference) hasForb(upper int, ax Axis, lower int) bool {
	_, ok := in.forb[ax][upper][lower]
	return ok
}

// assertExists records exists(c) and queues it for consequence
// processing.
func (in *Inference) assertExists(c int, rule string, premises []fact) {
	if in.exists[c] {
		return
	}
	in.exists[c] = true
	f := fact{kind: factExists, a: c}
	in.prov[f] = provenance{rule: rule, premises: premises}
	in.work = append(in.work, f)
	if c == idNone {
		in.inconsistent = true
	}
}

func (in *Inference) assertReq(src int, ax Axis, tgt int, rule string, premises []fact) {
	set := in.req[ax][src]
	if set == nil {
		set = make(map[int]struct{})
		in.req[ax][src] = set
	}
	if _, dup := set[tgt]; dup {
		return
	}
	set[tgt] = struct{}{}
	rev := in.revReq[ax][tgt]
	if rev == nil {
		rev = make(map[int]struct{})
		in.revReq[ax][tgt] = rev
	}
	rev[src] = struct{}{}
	f := fact{kind: factReq, a: src, ax: ax, b: tgt}
	in.prov[f] = provenance{rule: rule, premises: premises}
	in.work = append(in.work, f)
}

func (in *Inference) assertForb(upper int, ax Axis, lower int, rule string, premises []fact) {
	set := in.forb[ax][upper]
	if set == nil {
		set = make(map[int]struct{})
		in.forb[ax][upper] = set
	}
	if _, dup := set[lower]; dup {
		return
	}
	set[lower] = struct{}{}
	rev := in.revForb[ax][lower]
	if rev == nil {
		rev = make(map[int]struct{})
		in.revForb[ax][lower] = rev
	}
	rev[upper] = struct{}{}
	f := fact{kind: factForb, a: upper, ax: ax, b: lower}
	in.prov[f] = provenance{rule: rule, premises: premises}
	in.work = append(in.work, f)
}

func (in *Inference) assertSelf(a, c int, rule string, premises []fact) {
	if in.opts.PairwiseOnly {
		return
	}
	set := in.self[a]
	if set == nil {
		set = make(map[int]struct{})
		in.self[a] = set
	}
	if _, dup := set[c]; dup {
		return
	}
	set[c] = struct{}{}
	rev := in.selfRev[c]
	if rev == nil {
		rev = make(map[int]struct{})
		in.selfRev[c] = rev
	}
	rev[a] = struct{}{}
	f := fact{kind: factSelf, a: a, b: c}
	in.prov[f] = provenance{rule: rule, premises: premises}
	in.work = append(in.work, f)
}

func (in *Inference) assertAbove(a, c int, rule string, premises []fact) {
	if in.opts.PairwiseOnly {
		return
	}
	set := in.abv[a]
	if set == nil {
		set = make(map[int]struct{})
		in.abv[a] = set
	}
	if _, dup := set[c]; dup {
		return
	}
	set[c] = struct{}{}
	rev := in.abvRev[c]
	if rev == nil {
		rev = make(map[int]struct{})
		in.abvRev[c] = rev
	}
	rev[a] = struct{}{}
	f := fact{kind: factAbove, a: a, b: c}
	in.prov[f] = provenance{rule: rule, premises: premises}
	in.work = append(in.work, f)
}

func (in *Inference) assertBelow(a, c int, rule string, premises []fact) {
	if in.opts.PairwiseOnly {
		return
	}
	set := in.blw[a]
	if set == nil {
		set = make(map[int]struct{})
		in.blw[a] = set
	}
	if _, dup := set[c]; dup {
		return
	}
	set[c] = struct{}{}
	rev := in.blwRev[c]
	if rev == nil {
		rev = make(map[int]struct{})
		in.blwRev[c] = rev
	}
	rev[a] = struct{}{}
	f := fact{kind: factBelow, a: a, b: c}
	in.prov[f] = provenance{rule: rule, premises: premises}
	in.work = append(in.work, f)
}

// markUnsat records that no entry of class c can exist, as req(c,ax,∅).
func (in *Inference) markUnsat(c int, ax Axis, rule string, premises []fact) {
	in.assertReq(c, ax, idNone, rule, premises)
}

// drain processes queued facts until the closure is stable.
func (in *Inference) drain() {
	for len(in.work) > 0 {
		f := in.work[len(in.work)-1]
		in.work = in.work[:len(in.work)-1]
		switch f.kind {
		case factExists:
			in.onExists(f)
		case factReq:
			in.onReq(f)
		case factForb:
			in.onForb(f)
		case factSelf:
			in.onSelf(f)
		case factAbove:
			in.onAbove(f)
		case factBelow:
			in.onBelow(f)
		}
	}
}

func (in *Inference) onExists(f fact) {
	c := f.a
	// Rule N: required relationships out of an existing class force the
	// target class to exist.
	for ax := Axis(0); ax < 4; ax++ {
		for tgt := range in.req[ax][c] {
			in.assertExists(tgt, "N", []fact{f, {kind: factReq, a: c, ax: ax, b: tgt}})
		}
	}
	// Rule E: an entry of c also belongs to c's superclasses.
	if p := in.treeParent[c]; p != -1 {
		in.assertExists(p, "E", []fact{f})
	}
	// Rule SE: an entry of c also belongs to its self-classes.
	for d := range in.self[c] {
		in.assertExists(d, "SE", []fact{f, {kind: factSelf, a: c, b: d}})
	}
}

func (in *Inference) onReq(f fact) {
	ci, ax, cj := f.a, f.ax, f.b

	// Rule N.
	if in.exists[ci] {
		in.assertExists(cj, "N", []fact{{kind: factExists, a: ci}, f})
	}
	// Rule P: one step implies the transitive axis.
	switch ax {
	case AxisChild:
		in.assertReq(ci, AxisDesc, cj, "P", []fact{f})
	case AxisParent:
		in.assertReq(ci, AxisAnc, cj, "P", []fact{f})
	}
	// Rule T: transitivity of de and an.
	if ax.Transitive() {
		for ck := range in.req[ax][cj] {
			in.assertReq(ci, ax, ck, "T", []fact{f, {kind: factReq, a: cj, ax: ax, b: ck}})
		}
		for ch := range in.revReq[ax][ci] {
			in.assertReq(ch, ax, cj, "T", []fact{{kind: factReq, a: ch, ax: ax, b: ci}, f})
		}
		// Rule L: a transitive self-loop needs an infinite chain.
		if ci == cj && ci != idNone {
			in.markUnsat(ci, ax, "L", []fact{f})
		}
	}
	// Rule S: subclasses inherit the requirement.
	for _, sub := range in.treeKids[ci] {
		in.assertReq(sub, ax, cj, "S", []fact{f})
	}
	// Rule G: the target's superclass is also guaranteed.
	if cj != idNone {
		if p := in.treeParent[cj]; p != -1 {
			in.assertReq(ci, ax, p, "G", []fact{f})
		}
	}
	// Rule PT: any descendant (ancestor) requirement implies a child
	// (parent) of top.
	if top, ok := in.ids[ClassTop]; ok {
		switch ax {
		case AxisDesc:
			in.assertReq(ci, AxisChild, top, "PT", []fact{f})
		case AxisAnc:
			in.assertReq(ci, AxisParent, top, "PT", []fact{f})
		}
	}
	// Rule DC: direct conflict with a forbidden relationship.
	if ax.Downward() && in.hasForb(ci, ax, cj) {
		in.markUnsat(ci, ax, "DC", []fact{f, {kind: factForb, a: ci, ax: ax, b: cj}})
	}
	// Rules PH/AH: the required parent (ancestor) is forbidden from
	// having ci below it.
	switch ax {
	case AxisParent:
		if in.hasForb(cj, AxisChild, ci) {
			in.markUnsat(ci, ax, "PH", []fact{f, {kind: factForb, a: cj, ax: AxisChild, b: ci}})
		}
	case AxisAnc:
		if in.hasForb(cj, AxisDesc, ci) {
			in.markUnsat(ci, ax, "AH", []fact{f, {kind: factForb, a: cj, ax: AxisDesc, b: ci}})
		}
	}
	// Rule U: requirement into an unsatisfiable class.
	if in.unsat[cj] {
		in.markUnsat(ci, ax, "U", []fact{f})
	}
	// A new unsat(cj)=req(cj,_,∅) fact retroactively fires U for
	// requirements into cj.
	if cj == idNone && !in.unsat[ci] {
		in.unsat[ci] = true
		for ax2 := Axis(0); ax2 < 4; ax2++ {
			for src := range in.revReq[ax2][ci] {
				in.markUnsat(src, ax2, "U", []fact{{kind: factReq, a: src, ax: ax2, b: ci}, f})
			}
		}
	}
	// Rule MP: two disjoint required parents cannot be one entry.
	if ax == AxisParent && cj != idNone {
		for ck := range in.req[AxisParent][ci] {
			if ck != cj && ck != idNone && in.disjoint(cj, ck) {
				in.markUnsat(ci, ax, "MP", []fact{f, {kind: factReq, a: ci, ax: AxisParent, b: ck}})
			}
		}
	}
	// Rule PA: a required ancestor that can neither be the required
	// parent nor sit above it.
	if cj != idNone {
		switch ax {
		case AxisParent:
			for ck := range in.req[AxisAnc][ci] {
				if ck != idNone && in.disjoint(cj, ck) && in.hasForb(ck, AxisDesc, cj) {
					in.markUnsat(ci, AxisParent, "PA", []fact{f, {kind: factReq, a: ci, ax: AxisAnc, b: ck}})
				}
			}
		case AxisAnc:
			for ck := range in.req[AxisParent][ci] {
				if ck != idNone && in.disjoint(ck, cj) && in.hasForb(cj, AxisDesc, ck) {
					in.markUnsat(ci, AxisAnc, "PA", []fact{f, {kind: factReq, a: ci, ax: AxisParent, b: ck}})
				}
			}
		}
	}
	// Rule AA: two required ancestors that can neither merge nor be
	// ordered.
	if ax == AxisAnc && cj != idNone {
		for ck := range in.req[AxisAnc][ci] {
			if ck == cj || ck == idNone {
				continue
			}
			if in.disjoint(cj, ck) && in.hasForb(cj, AxisDesc, ck) && in.hasForb(ck, AxisDesc, cj) {
				in.markUnsat(ci, AxisAnc, "AA", []fact{f, {kind: factReq, a: ci, ax: AxisAnc, b: ck}})
			}
		}
	}
	if cj != idNone {
		top, hasTop := in.ids[ClassTop]
		// Rule RT: a required descendant that may be nobody's child.
		if ax == AxisDesc && hasTop && in.hasForb(top, AxisChild, cj) {
			in.markUnsat(ci, AxisDesc, "RT", []fact{f, {kind: factForb, a: top, ax: AxisChild, b: cj}})
		}
		// Rule LT: a required ancestor that may have no children.
		if ax == AxisAnc && hasTop && in.hasForb(cj, AxisChild, top) {
			in.markUnsat(ci, AxisAnc, "LT", []fact{f, {kind: factForb, a: cj, ax: AxisChild, b: top}})
		}
		// Rules CP/DPD: the required child (descendant) cj needs a parent
		// of class ck, which the ci entry (or an entry between them)
		// would have to provide. (Extension rules; see InferOptions.)
		if !in.opts.PairwiseOnly {
			in.onReqCompositions(f, ci, ax, cj)
		}
	}
	in.onReqCaseAnalysis(f, ci, ax, cj)
}

// onReqCompositions applies the CP and DPD composition rules (extensions
// beyond the pairwise Figure 7 reconstruction).
func (in *Inference) onReqCompositions(f fact, ci int, ax Axis, cj int) {
	switch ax {
	case AxisChild:
		for ck := range in.req[AxisParent][cj] {
			if ck != idNone && in.disjoint(ci, ck) {
				in.markUnsat(ci, AxisChild, "CP", []fact{f, {kind: factReq, a: cj, ax: AxisParent, b: ck}})
			}
		}
	case AxisDesc:
		for ck := range in.req[AxisParent][cj] {
			if ck != idNone && (in.disjoint(ci, ck) || in.hasForb(ci, AxisChild, cj)) {
				in.assertReq(ci, AxisDesc, ck, "DPD", []fact{f, {kind: factReq, a: cj, ax: AxisParent, b: ck}})
			}
		}
	case AxisParent:
		// Joining CP and DPD from the pa side: new req(cj,pa,ck).
		for s := range in.revReq[AxisChild][ci] {
			if in.disjoint(s, cj) {
				in.markUnsat(s, AxisChild, "CP", []fact{{kind: factReq, a: s, ax: AxisChild, b: ci}, f})
			}
		}
		for s := range in.revReq[AxisDesc][ci] {
			if in.disjoint(s, cj) || in.hasForb(s, AxisChild, ci) {
				in.assertReq(s, AxisDesc, cj, "DPD", []fact{{kind: factReq, a: s, ax: AxisDesc, b: ci}, f})
			}
		}
	}
}

// onReqCaseAnalysis applies the self/above/below introductions and joins
// (extension rules; no-ops under InferOptions.PairwiseOnly since the
// assert helpers drop these facts).
func (in *Inference) onReqCaseAnalysis(f fact, ci int, ax Axis, cj int) {
	switch ax {
	case AxisChild:
		if cj != idNone {
			// SI: the required child's required parent IS this entry.
			for ck := range in.req[AxisParent][cj] {
				in.assertSelf(ci, ck, "SI", []fact{f, {kind: factReq, a: cj, ax: AxisParent, b: ck}})
			}
			// AB3: the required child's required ancestors are this
			// entry or its ancestors.
			for ck := range in.req[AxisAnc][cj] {
				in.assertAbove(ci, ck, "AB3", []fact{f, {kind: factReq, a: cj, ax: AxisAnc, b: ck}})
			}
		}
		// BO2 join: entries at-or-above ci inherit the child requirement
		// as a strict descendant.
		if cj != idNone {
			for s := range in.blwRev[ci] {
				in.assertReq(s, AxisDesc, cj, "BO2", []fact{{kind: factBelow, a: s, b: ci}, f})
			}
		}
	case AxisParent:
		// SI join from the pa side: new req(ci,pa,cj) with ci a
		// required child of s.
		for s := range in.revReq[AxisChild][ci] {
			in.assertSelf(s, cj, "SI", []fact{{kind: factReq, a: s, ax: AxisChild, b: ci}, f})
		}
		// below intro join: new req(ci,pa,cj) with ci a required strict
		// descendant of s.
		if cj != idNone {
			for s := range in.revReq[AxisDesc][ci] {
				in.assertBelow(s, cj, "BI", []fact{{kind: factReq, a: s, ax: AxisDesc, b: ci}, f})
			}
		}
		// AO2 join: entries at-or-above ci inherit its parent
		// requirement as a strict ancestor.
		for s := range in.abvRev[ci] {
			in.assertReq(s, AxisAnc, cj, "AO2", []fact{{kind: factAbove, a: s, b: ci}, f})
		}
	case AxisAnc:
		// AB1: a strict ancestor requirement is an at-or-above fact.
		in.assertAbove(ci, cj, "AB1", []fact{f})
		// AB3 join from the an side.
		for s := range in.revReq[AxisChild][ci] {
			in.assertAbove(s, cj, "AB3", []fact{{kind: factReq, a: s, ax: AxisChild, b: ci}, f})
		}
		// AO2 join.
		for s := range in.abvRev[ci] {
			in.assertReq(s, AxisAnc, cj, "AO2", []fact{{kind: factAbove, a: s, b: ci}, f})
		}
		// WS join: new req(ci,an,cj) with something at-or-below ci that
		// cj may not sit above.
		if cj != idNone {
			for c := range in.blw[ci] {
				if in.hasForb(cj, AxisDesc, c) {
					in.markUnsat(ci, AxisAnc, "WS",
						[]fact{f, {kind: factBelow, a: ci, b: c}, {kind: factForb, a: cj, ax: AxisDesc, b: c}})
				}
			}
		}
	case AxisDesc:
		// SW join: something at-or-above ci may not have cj below it.
		if cj != idNone {
			for c := range in.abv[ci] {
				if in.hasForb(c, AxisDesc, cj) {
					in.markUnsat(ci, AxisDesc, "SW",
						[]fact{f, {kind: factAbove, a: ci, b: c}, {kind: factForb, a: c, ax: AxisDesc, b: cj}})
				}
			}
			// below intro: the strict descendant's required parent is
			// at-or-below ci.
			for ck := range in.req[AxisParent][cj] {
				if ck != idNone {
					in.assertBelow(ci, ck, "BI", []fact{f, {kind: factReq, a: cj, ax: AxisParent, b: ck}})
				}
			}
			// BO2 join.
			for s := range in.blwRev[ci] {
				in.assertReq(s, AxisDesc, cj, "BO2", []fact{{kind: factBelow, a: s, b: ci}, f})
			}
		}
	}
	// SR join: self-classes pass every requirement down.
	for s := range in.selfRev[ci] {
		in.assertReq(s, ax, cj, "SR", []fact{{kind: factSelf, a: s, b: ci}, f})
	}
}

func (in *Inference) onSelf(f fact) {
	a, c := f.a, f.b
	// SD: a self-class the entry may not co-occur with.
	if in.disjoint(a, c) {
		in.markUnsat(a, AxisChild, "SD", []fact{f})
	}
	// ST: self is transitive.
	for d := range in.self[c] {
		in.assertSelf(a, d, "ST", []fact{f, {kind: factSelf, a: c, b: d}})
	}
	for s := range in.selfRev[a] {
		in.assertSelf(s, c, "ST", []fact{{kind: factSelf, a: s, b: a}, f})
	}
	// SR: requirements of the self-class apply.
	for ax := Axis(0); ax < 4; ax++ {
		for d := range in.req[ax][c] {
			in.assertReq(a, ax, d, "SR", []fact{f, {kind: factReq, a: c, ax: ax, b: d}})
		}
	}
	// SF: prohibitions involving the self-class apply.
	for ax := Axis(0); ax < 2; ax++ {
		for d := range in.forb[ax][c] {
			in.assertForb(a, ax, d, "SF", []fact{f, {kind: factForb, a: c, ax: ax, b: d}})
		}
		for x := range in.revForb[ax][c] {
			in.assertForb(x, ax, a, "SF", []fact{f, {kind: factForb, a: x, ax: ax, b: c}})
		}
	}
	// SE.
	if in.exists[a] {
		in.assertExists(c, "SE", []fact{{kind: factExists, a: a}, f})
	}
	// AB2/BB2: being c is the reflexive case of both at-or-above and
	// at-or-below.
	in.assertAbove(a, c, "AB2", []fact{f})
	in.assertBelow(a, c, "BB2", []fact{f})
	// Tree closure: subclasses of a inherit; c's superclasses are implied.
	for _, sub := range in.treeKids[a] {
		in.assertSelf(sub, c, "ST", []fact{f})
	}
	if c != idNone {
		if p := in.treeParent[c]; p != -1 {
			in.assertSelf(a, p, "ST", []fact{f})
		}
	}
}

func (in *Inference) onAbove(f fact) {
	a, c := f.a, f.b
	// AO1: if the entry cannot itself be c, the ancestor is strict.
	if in.disjoint(a, c) {
		in.assertReq(a, AxisAnc, c, "AO1", []fact{f})
	}
	// AO2: upward requirements of c land strictly above a.
	for _, ax := range []Axis{AxisParent, AxisAnc} {
		for d := range in.req[ax][c] {
			in.assertReq(a, AxisAnc, d, "AO2", []fact{f, {kind: factReq, a: c, ax: ax, b: d}})
		}
	}
	// AO3: at-or-above is transitive.
	for d := range in.abv[c] {
		in.assertAbove(a, d, "AO3", []fact{f, {kind: factAbove, a: c, b: d}})
	}
	for s := range in.abvRev[a] {
		in.assertAbove(s, c, "AO3", []fact{{kind: factAbove, a: s, b: a}, f})
	}
	// AO4: a strict c ancestor would be forbidden, so the entry is c.
	if in.hasForb(c, AxisDesc, a) {
		in.assertSelf(a, c, "AO4", []fact{f, {kind: factForb, a: c, ax: AxisDesc, b: a}})
	}
	// SW.
	for k := range in.req[AxisDesc][a] {
		if k != idNone && in.hasForb(c, AxisDesc, k) {
			in.markUnsat(a, AxisDesc, "SW",
				[]fact{{kind: factReq, a: a, ax: AxisDesc, b: k}, f, {kind: factForb, a: c, ax: AxisDesc, b: k}})
		}
	}
	// Tree closure.
	for _, sub := range in.treeKids[a] {
		in.assertAbove(sub, c, "AO3", []fact{f})
	}
	if c != idNone {
		if p := in.treeParent[c]; p != -1 {
			in.assertAbove(a, p, "AO3", []fact{f})
		}
	}
}

func (in *Inference) onBelow(f fact) {
	a, c := f.a, f.b
	// BO1: if the entry cannot itself be c, the descendant is strict.
	if in.disjoint(a, c) {
		in.assertReq(a, AxisDesc, c, "BO1", []fact{f})
	}
	// BO2: downward requirements of c land strictly below a.
	for _, ax := range []Axis{AxisChild, AxisDesc} {
		for d := range in.req[ax][c] {
			in.assertReq(a, AxisDesc, d, "BO2", []fact{f, {kind: factReq, a: c, ax: ax, b: d}})
		}
	}
	// BO3: at-or-below is transitive.
	for d := range in.blw[c] {
		in.assertBelow(a, d, "BO3", []fact{f, {kind: factBelow, a: c, b: d}})
	}
	for s := range in.blwRev[a] {
		in.assertBelow(s, c, "BO3", []fact{{kind: factBelow, a: s, b: a}, f})
	}
	// BO4: a strict c descendant would be forbidden, so the entry is c.
	if in.hasForb(a, AxisDesc, c) {
		in.assertSelf(a, c, "BO4", []fact{f, {kind: factForb, a: a, ax: AxisDesc, b: c}})
	}
	// WS: a required strict ancestor may not have c below it.
	for x := range in.req[AxisAnc][a] {
		if x != idNone && in.hasForb(x, AxisDesc, c) {
			in.markUnsat(a, AxisAnc, "WS",
				[]fact{{kind: factReq, a: a, ax: AxisAnc, b: x}, f, {kind: factForb, a: x, ax: AxisDesc, b: c}})
		}
	}
	// Tree closure.
	for _, sub := range in.treeKids[a] {
		in.assertBelow(sub, c, "BO3", []fact{f})
	}
	if c != idNone {
		if p := in.treeParent[c]; p != -1 {
			in.assertBelow(a, p, "BO3", []fact{f})
		}
	}
}

func (in *Inference) onForb(f fact) {
	ci, ax, cj := f.a, f.ax, f.b

	// Rule FW: forbidding descendants forbids children.
	if ax == AxisDesc {
		in.assertForb(ci, AxisChild, cj, "FW", []fact{f})
	}
	// Rule FL: a class that may have no children has no descendants.
	if top, hasTop := in.ids[ClassTop]; hasTop && ax == AxisChild && cj == top {
		in.assertForb(ci, AxisDesc, top, "FL", []fact{f})
	}
	// Rule FS: forbidden relationships propagate to subclasses on both
	// sides.
	for _, sub := range in.treeKids[ci] {
		in.assertForb(sub, ax, cj, "FS", []fact{f})
	}
	for _, sub := range in.treeKids[cj] {
		in.assertForb(ci, ax, sub, "FS", []fact{f})
	}
	// Rule DC.
	if in.hasReq(ci, ax, cj) {
		in.markUnsat(ci, ax, "DC", []fact{{kind: factReq, a: ci, ax: ax, b: cj}, f})
	}
	// Rules PH/AH, joining from the forbidden side.
	switch ax {
	case AxisChild:
		if in.hasReq(cj, AxisParent, ci) {
			in.markUnsat(cj, AxisParent, "PH", []fact{{kind: factReq, a: cj, ax: AxisParent, b: ci}, f})
		}
	case AxisDesc:
		if in.hasReq(cj, AxisAnc, ci) {
			in.markUnsat(cj, AxisAnc, "AH", []fact{{kind: factReq, a: cj, ax: AxisAnc, b: ci}, f})
		}
	}
	if top, hasTop := in.ids[ClassTop]; hasTop && ax == AxisChild {
		// Rule RT, joining from the forbidden side: forb(top, ch, cj).
		if ci == top {
			for s := range in.revReq[AxisDesc][cj] {
				in.markUnsat(s, AxisDesc, "RT", []fact{{kind: factReq, a: s, ax: AxisDesc, b: cj}, f})
			}
		}
		// Rule LT, joining from the forbidden side: forb(ci, ch, top).
		if cj == top {
			for s := range in.revReq[AxisAnc][ci] {
				in.markUnsat(s, AxisAnc, "LT", []fact{{kind: factReq, a: s, ax: AxisAnc, b: ci}, f})
			}
		}
	}
	if ax == AxisChild && cj != idNone && !in.opts.PairwiseOnly {
		// Rule DPD, joining from the forbidden side: forb(ci, ch, cj).
		if in.hasReq(ci, AxisDesc, cj) {
			for ck := range in.req[AxisParent][cj] {
				if ck != idNone {
					in.assertReq(ci, AxisDesc, ck, "DPD",
						[]fact{{kind: factReq, a: ci, ax: AxisDesc, b: cj}, {kind: factReq, a: cj, ax: AxisParent, b: ck}, f})
				}
			}
		}
	}
	if ax == AxisDesc {
		// Rule PA, joining from the forbidden side: forb(ck=ci, de, cj).
		for s := range in.revReq[AxisAnc][ci] {
			if _, ok := in.req[AxisParent][s][cj]; ok && in.disjoint(cj, ci) {
				in.markUnsat(s, AxisParent, "PA",
					[]fact{{kind: factReq, a: s, ax: AxisParent, b: cj}, {kind: factReq, a: s, ax: AxisAnc, b: ci}, f})
			}
		}
		// Rule AA, joining from the forbidden side.
		if in.hasForb(cj, AxisDesc, ci) && in.disjoint(ci, cj) {
			for s := range in.revReq[AxisAnc][ci] {
				if _, ok := in.req[AxisAnc][s][cj]; ok {
					in.markUnsat(s, AxisAnc, "AA",
						[]fact{{kind: factReq, a: s, ax: AxisAnc, b: ci}, {kind: factReq, a: s, ax: AxisAnc, b: cj}, f})
				}
			}
		}
		// AO4 join: new forb(ci, de, cj) with above(cj, ci).
		if _, ok := in.abv[cj][ci]; ok {
			in.assertSelf(cj, ci, "AO4", []fact{{kind: factAbove, a: cj, b: ci}, f})
		}
		// BO4 join: new forb(ci, de, cj) with below(ci, cj).
		if _, ok := in.blw[ci][cj]; ok {
			in.assertSelf(ci, cj, "BO4", []fact{{kind: factBelow, a: ci, b: cj}, f})
		}
		// WS join: new forb(ci, de, cj): sources requiring ci strictly
		// above them while cj is at-or-below them.
		for s := range in.revReq[AxisAnc][ci] {
			if _, ok := in.blw[s][cj]; ok {
				in.markUnsat(s, AxisAnc, "WS",
					[]fact{{kind: factReq, a: s, ax: AxisAnc, b: ci}, {kind: factBelow, a: s, b: cj}, f})
			}
		}
		// SW join: new forb(ci, de, cj); sources at-or-below ci that
		// require cj strictly below them.
		for s := range in.abvRev[ci] {
			if in.hasReq(s, AxisDesc, cj) {
				in.markUnsat(s, AxisDesc, "SW",
					[]fact{{kind: factReq, a: s, ax: AxisDesc, b: cj}, {kind: factAbove, a: s, b: ci}, f})
			}
		}
	}
	// SF joins: self-classes absorb prohibitions on either side.
	for s := range in.selfRev[ci] {
		in.assertForb(s, ax, cj, "SF", []fact{{kind: factSelf, a: s, b: ci}, f})
	}
	for s := range in.selfRev[cj] {
		in.assertForb(ci, ax, s, "SF", []fact{{kind: factSelf, a: s, b: cj}, f})
	}
}

// chainFeasibility runs the general Ancestorhood analysis: for every
// class, the required ancestors (plus the merged required parent) must
// admit an arrangement on a single ancestor chain. Pairs are handled by
// rules MP/PA/AA; this pass detects forced-order *cycles* of length ≥ 3:
// ancestors x → y ("x must sit above y") whenever y may not sit above x
// (forb(y,de,x)) and the two cannot merge (disjoint). It reports whether
// any new fact was derived.
func (in *Inference) chainFeasibility() bool {
	derived := false
	n := len(in.names)
	for ci := 1; ci < n; ci++ {
		if in.unsat[ci] {
			continue
		}
		if in.paChainInfeasible(ci) {
			derived = true
			continue
		}
		anc := in.req[AxisAnc][ci]
		if len(anc) < 3 {
			continue // pairs are covered by MP/PA/AA
		}
		nodes := make([]int, 0, len(anc))
		for a := range anc {
			if a != idNone {
				nodes = append(nodes, a)
			}
		}
		sort.Ints(nodes)
		// Forced-above edges x -> y.
		adj := make(map[int][]int, len(nodes))
		for _, x := range nodes {
			for _, y := range nodes {
				if x == y || !in.disjoint(x, y) {
					continue
				}
				if in.hasForb(y, AxisDesc, x) {
					adj[x] = append(adj[x], y)
				}
			}
		}
		if cycleStart, ok := digraphCycle(nodes, adj); ok {
			in.markUnsat(ci, AxisAnc, "CHAIN",
				[]fact{{kind: factReq, a: ci, ax: AxisAnc, b: cycleStart}})
			derived = true
		}
	}
	return derived
}

// paChainInfeasible implements the general Parenthood/Ancestorhood
// placement analysis: the parent requirements of ci force the classes of
// its first k ancestors exactly (level i holds the required parent
// classes of level i-1), so every required strict ancestor must either
// merge into one of those k forced levels or sit above the chain's end.
// If some required ancestor has no feasible position, ci is
// unsatisfiable. Pairwise cases are also caught by PA/AH/MP; this pass
// covers chains of length ≥ 2.
func (in *Inference) paChainInfeasible(ci int) bool {
	levels := in.paChainLevels(ci)
	if levels == nil || len(levels) <= 1 {
		return false // no forced chain; pairwise rules cover
	}
	derived := false
	for x := range in.req[AxisAnc][ci] {
		if x == idNone {
			continue
		}
		// The placed ancestor brings its own forced parent chain; its
		// members must coexist with (or sit above) everything below
		// their eventual position.
		xChain := in.paChainLevels(x)
		if xChain == nil {
			continue // x's own chain cycles; rules L/U handle it
		}
		placeable := false
		// Merge x into a forced level i ≥ 1; x's chain then overlays the
		// levels above i (and extends past the end).
		for i := 1; i < len(levels) && !placeable; i++ {
			placeable = in.chainFitsAt(levels, xChain, i)
		}
		// Or x (with its chain) sits wholly above the chain's end.
		if !placeable {
			placeable = in.chainFitsAt(levels, xChain, len(levels))
		}
		if !placeable {
			in.markUnsat(ci, AxisAnc, "PCH",
				[]fact{{kind: factReq, a: ci, ax: AxisAnc, b: x}})
			derived = true
		}
	}
	return derived
}

// paChainLevels returns the forced ancestor levels of class c: level 0 is
// {c}, level k+1 the union of required parent classes of level k. It
// returns nil when the chain exceeds the class count (a cycle, which the
// loop rules flag separately).
func (in *Inference) paChainLevels(c int) [][]int {
	levels := [][]int{{c}}
	for {
		cur := levels[len(levels)-1]
		next := make(map[int]struct{})
		for _, x := range cur {
			for t := range in.req[AxisParent][x] {
				if t != idNone {
					next[t] = struct{}{}
				}
			}
		}
		if len(next) == 0 {
			return levels
		}
		if len(levels) > len(in.names) {
			return nil
		}
		lv := make([]int, 0, len(next))
		for t := range next {
			lv = append(lv, t)
		}
		sort.Ints(lv)
		levels = append(levels, lv)
	}
}

// chainFitsAt reports whether xChain's members, placed at levels
// pos, pos+1, ... of the base chain (merging where a base level exists,
// extending above its end otherwise), respect single inheritance and the
// closed forbidden-descendant facts against every base member below them.
func (in *Inference) chainFitsAt(base, xChain [][]int, pos int) bool {
	for j, lv := range xChain {
		at := pos + j
		for _, m := range lv {
			// Merge compatibility with an existing base level.
			if at < len(base) {
				for _, y := range base[at] {
					if in.disjoint(m, y) {
						return false
					}
				}
			}
			// m sits above every base member strictly below position at.
			limit := at
			if limit > len(base) {
				limit = len(base)
			}
			for k := 0; k < limit; k++ {
				for _, y := range base[k] {
					if in.hasForb(m, AxisDesc, y) {
						return false
					}
				}
			}
			// ... and below the base members strictly above it.
			for k := at + 1; k < len(base); k++ {
				for _, y := range base[k] {
					if in.hasForb(y, AxisDesc, m) {
						return false
					}
				}
			}
		}
	}
	return true
}

// digraphCycle reports whether the directed graph has a cycle, returning
// a node on it.
func digraphCycle(nodes []int, adj map[int][]int) (int, bool) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int, len(nodes))
	var dfs func(u int) (int, bool)
	dfs = func(u int) (int, bool) {
		color[u] = gray
		for _, v := range adj[u] {
			switch color[v] {
			case gray:
				return v, true
			case white:
				if c, ok := dfs(v); ok {
					return c, true
				}
			}
		}
		color[u] = black
		return 0, false
	}
	for _, u := range nodes {
		if color[u] == white {
			if c, ok := dfs(u); ok {
				return c, true
			}
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------
// Results.

// Inconsistent reports whether Exists(∅) was derived: the schema admits
// no legal instance.
func (in *Inference) Inconsistent() bool { return in.inconsistent }

// Unsatisfiable reports whether the closure proves that no entry of
// class c can occur in any legal instance.
func (in *Inference) Unsatisfiable(c string) bool {
	id, ok := in.ids[c]
	return ok && in.unsat[id]
}

// MustExist reports whether the closure proves that every legal instance
// contains an entry of class c.
func (in *Inference) MustExist(c string) bool {
	id, ok := in.ids[c]
	return ok && in.exists[id]
}

// Derived returns every closed schema element as Element values:
// RequiredClass for exists facts, RequiredRel and ForbiddenRel for the
// relationship facts (with ∅ rendered as ClassNone).
func (in *Inference) Derived() []Element {
	var out []Element
	for c, ok := range in.exists {
		if ok {
			out = append(out, RequiredClass{Class: in.names[c]})
		}
	}
	for ax := Axis(0); ax < 4; ax++ {
		for src, tgts := range in.req[ax] {
			for tgt := range tgts {
				out = append(out, RequiredRel{Source: in.names[src], Axis: ax, Target: in.names[tgt]})
			}
		}
	}
	for ax := Axis(0); ax < 2; ax++ {
		for upper, lowers := range in.forb[ax] {
			for lower := range lowers {
				out = append(out, ForbiddenRel{Upper: in.names[upper], Axis: ax, Lower: in.names[lower]})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ElementString() < out[j].ElementString() })
	return out
}

// NumFacts returns the number of closed facts, the size measure for the
// polynomial bound of Theorem 5.2.
func (in *Inference) NumFacts() int { return len(in.prov) }

// Explain returns a human-readable derivation of the given element, or
// "" if it was not derived. For an inconsistent schema,
// Explain(RequiredClass{Class: ClassNone}) explains the inconsistency.
func (in *Inference) Explain(el Element) string {
	f, ok := in.factOf(el)
	if !ok {
		return ""
	}
	var b strings.Builder
	seen := make(map[fact]bool)
	in.explainFact(&b, f, 0, seen)
	return b.String()
}

// ExplainInconsistency returns the derivation of Exists(∅), or "" if the
// schema is consistent.
func (in *Inference) ExplainInconsistency() string {
	if !in.inconsistent {
		return ""
	}
	return in.Explain(RequiredClass{Class: ClassNone})
}

func (in *Inference) factOf(el Element) (fact, bool) {
	switch e := el.(type) {
	case RequiredClass:
		id, ok := in.ids[e.Class]
		if !ok || !in.exists[id] {
			return fact{}, false
		}
		return fact{kind: factExists, a: id}, true
	case RequiredRel:
		si, ok1 := in.ids[e.Source]
		ti, ok2 := in.ids[e.Target]
		if !ok1 || !ok2 || !in.hasReq(si, e.Axis, ti) {
			return fact{}, false
		}
		return fact{kind: factReq, a: si, ax: e.Axis, b: ti}, true
	case ForbiddenRel:
		ui, ok1 := in.ids[e.Upper]
		li, ok2 := in.ids[e.Lower]
		if !ok1 || !ok2 || !in.hasForb(ui, e.Axis, li) {
			return fact{}, false
		}
		return fact{kind: factForb, a: ui, ax: e.Axis, b: li}, true
	}
	return fact{}, false
}

func (in *Inference) explainFact(b *strings.Builder, f fact, depth int, seen map[fact]bool) {
	fmt.Fprintf(b, "%s%s", strings.Repeat("  ", depth), in.factString(f))
	p, ok := in.prov[f]
	if !ok {
		b.WriteString(" (assumed)\n")
		return
	}
	fmt.Fprintf(b, " [%s]\n", p.rule)
	if seen[f] {
		return
	}
	seen[f] = true
	for _, prem := range p.premises {
		in.explainFact(b, prem, depth+1, seen)
	}
}

func (in *Inference) factString(f fact) string {
	switch f.kind {
	case factExists:
		return RequiredClass{Class: in.names[f.a]}.ElementString()
	case factReq:
		return RequiredRel{Source: in.names[f.a], Axis: f.ax, Target: in.names[f.b]}.ElementString()
	case factForb:
		return ForbiddenRel{Upper: in.names[f.a], Axis: f.ax, Lower: in.names[f.b]}.ElementString()
	case factSelf:
		return in.names[f.a] + " self " + in.names[f.b]
	case factAbove:
		return in.names[f.a] + " at-or-below " + in.names[f.b]
	case factBelow:
		return in.names[f.a] + " at-or-above " + in.names[f.b]
	}
	return "?"
}

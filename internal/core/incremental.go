package core

import (
	"boundschema/internal/hquery"
)

// This file implements Figure 5 and Theorem 4.2: for a directory D known
// to be legal and an update consisting of a single subtree Δ (the
// granularity justified by Theorem 4.1), it derives for every structure-
// schema element the Δ-query Q± — syntactically the Figure 4 query with
// each sub-expression evaluated against ∅, Δ, D or D±Δ — that decides
// whether the update preserves legality.
//
// Insertion (checked after grafting Δ; full = D+Δ, base = D, delta = Δ):
//
//	ci →ch cj   Y   σ−( σci[Δ], δc(σci[Δ], σcj[Δ]) )
//	ci →pa cj   Y   σ−( σci[Δ], δp(σci[Δ], σcj[D+Δ]) )
//	ci →de cj   Y   σ−( σci[Δ], δd(σci[Δ], σcj[Δ]) )
//	ci →an cj   Y   σ−( σci[Δ], δa(σci[Δ], σcj[D+Δ]) )
//	ci ⇥ch cj   Y   δc(σci[D+Δ], σcj[Δ])
//	ci ⇥de cj   Y   δd(σci[D+Δ], σcj[Δ])
//	c⇓          Y   no check (insertion cannot remove entries)
//
// Rationale: children and descendants of Δ entries lie inside Δ, so the
// downward required axes close over Δ; the parent/ancestor of the Δ root
// lies in D, so the upward target atoms range over D+Δ; a new forbidden
// pair must have its lower entry in Δ.
//
// Deletion (checked before removing Δ; base = D−Δ, delta = Δ):
//
//	ci →ch cj   N   full recheck on D−Δ
//	ci →pa cj   Y   no check (a survivor's parent survives)
//	ci →de cj   N   full recheck on D−Δ
//	ci →an cj   Y   no check (a survivor's ancestors survive)
//	ci ⇥ch cj   Y   no check (deletion cannot create pairs)
//	ci ⇥de cj   Y   no check
//	c⇓          N   recheck σc[D−Δ] non-empty (Y with a count index —
//	                see txn.CountIndex for the Section 4 remark)
//
// Theorem 4.2 states this characterization is tight: the N rows are not
// incrementally testable in general.

// DeltaCheck is the per-element outcome of the Figure 5 analysis.
type DeltaCheck struct {
	// Element is the structure-schema element being protected.
	Element Element
	// Query is the Δ-query to evaluate, or nil when no check is needed.
	Query hquery.Query
	// WantEmpty is true when legality requires the query to be empty
	// (relationships) and false when it must be non-empty (required
	// classes).
	WantEmpty bool
	// Incremental is the Y/N column of Figure 5: true when the check's
	// cost is bounded by the update rather than the instance.
	Incremental bool
}

// Holds reports whether the check passes under the binding.
func (c DeltaCheck) Holds(b hquery.Binding) bool {
	if c.Query == nil {
		return true
	}
	empty := hquery.Empty(c.Query, b)
	if c.WantEmpty {
		return empty
	}
	return !empty
}

// InsertCheckRel returns the Figure 5 insertion row for a required
// relationship.
func InsertCheckRel(r RequiredRel) DeltaCheck {
	tgt := hquery.InstDelta
	if !r.Axis.Downward() {
		// The Δ root's parent and ancestors lie outside Δ.
		tgt = hquery.InstFull
	}
	return DeltaCheck{
		Element:     r,
		Query:       requiredRelQueryOn(r, hquery.InstDelta, tgt),
		WantEmpty:   true,
		Incremental: true,
	}
}

// InsertCheckForb returns the Figure 5 insertion row for a forbidden
// relationship.
func InsertCheckForb(f ForbiddenRel) DeltaCheck {
	return DeltaCheck{
		Element:     f,
		Query:       forbiddenRelQueryOn(f, hquery.InstFull, hquery.InstDelta),
		WantEmpty:   true,
		Incremental: true,
	}
}

// InsertCheckClass returns the insertion row for a required class:
// insertions cannot violate c⇓, so there is nothing to evaluate.
func InsertCheckClass(c string) DeltaCheck {
	return DeltaCheck{Element: RequiredClass{Class: c}, Incremental: true}
}

// DeleteCheckRel returns the Figure 5 deletion row for a required
// relationship: downward axes need a full recheck over the survivors,
// upward axes need nothing.
func DeleteCheckRel(r RequiredRel) DeltaCheck {
	if !r.Axis.Downward() {
		return DeltaCheck{Element: r, Incremental: true}
	}
	return DeltaCheck{
		Element:     r,
		Query:       requiredRelQueryOn(r, hquery.InstBase, hquery.InstBase),
		WantEmpty:   true,
		Incremental: false,
	}
}

// DeleteCheckForb returns the deletion row for a forbidden relationship:
// deleting entries cannot create forbidden pairs.
func DeleteCheckForb(f ForbiddenRel) DeltaCheck {
	return DeltaCheck{Element: f, Incremental: true}
}

// DeleteCheckClass returns the deletion row for a required class: without
// auxiliary state the survivors must be rescanned (the Section 4 remark;
// txn.CountIndex implements the "with counts" variant).
func DeleteCheckClass(c string) DeltaCheck {
	return DeltaCheck{
		Element:     RequiredClass{Class: c},
		Query:       hquery.ClassAtomOn(c, hquery.InstBase),
		WantEmpty:   false,
		Incremental: false,
	}
}

// InsertChecks returns the Figure 5 insertion checks for every structure-
// schema element.
func InsertChecks(s *StructureSchema) []DeltaCheck {
	out := make([]DeltaCheck, 0, s.Size())
	for _, c := range s.RequiredClasses() {
		out = append(out, InsertCheckClass(c))
	}
	for _, r := range s.RequiredRels() {
		out = append(out, InsertCheckRel(r))
	}
	for _, f := range s.ForbiddenRels() {
		out = append(out, InsertCheckForb(f))
	}
	return out
}

// DeleteChecks returns the Figure 5 deletion checks for every structure-
// schema element.
func DeleteChecks(s *StructureSchema) []DeltaCheck {
	out := make([]DeltaCheck, 0, s.Size())
	for _, c := range s.RequiredClasses() {
		out = append(out, DeleteCheckClass(c))
	}
	for _, r := range s.RequiredRels() {
		out = append(out, DeleteCheckRel(r))
	}
	for _, f := range s.ForbiddenRels() {
		out = append(out, DeleteCheckForb(f))
	}
	return out
}

package core

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"boundschema/internal/dirtree"
)

// flatSchema builds a schema whose core classes all hang directly off
// top, for structure-only consistency cases.
func flatSchema(t testing.TB, classes ...string) *Schema {
	s := NewSchema()
	for _, c := range classes {
		if err := s.Classes.AddCore(c, ClassTop); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func requireConsistent(t *testing.T, s *Schema, want bool) ConsistencyResult {
	t.Helper()
	res := CheckConsistency(s)
	if res.Consistent != want {
		t.Errorf("Consistent = %v, want %v\nexplanation:\n%s", res.Consistent, want, res.Explanation)
	}
	if s.Consistent() != res.Consistent {
		t.Errorf("Schema.Consistent disagrees with CheckConsistency")
	}
	return res
}

func TestWhitePagesSchemaConsistent(t *testing.T) {
	s := whitePagesSchema(t)
	res := requireConsistent(t, s, true)
	if len(res.Unsatisfiable) != 0 {
		t.Errorf("unexpected unsatisfiable classes: %v", res.Unsatisfiable)
	}
	d, err := Materialize(s)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if r := NewChecker(s).Check(d); !r.Legal() {
		t.Fatalf("witness illegal:\n%s\n%s", r, d)
	}
	if d.Len() == 0 {
		t.Fatalf("witness should be non-empty (required classes exist)")
	}
}

// TestPaperCycleExample is the Section 5.1 pure-structure cycle: c1⇓,
// c1 →ch c2, c2 →de c1 admits no finite instance.
func TestPaperCycleExample(t *testing.T) {
	s := flatSchema(t, "c1", "c2")
	s.Structure.RequireClass("c1")
	s.Structure.RequireRel("c1", AxisChild, "c2")
	s.Structure.RequireRel("c2", AxisDesc, "c1")
	res := requireConsistent(t, s, false)
	if !strings.Contains(res.Explanation, "∅⇓") {
		t.Errorf("explanation should derive ∅⇓:\n%s", res.Explanation)
	}
	if _, err := Materialize(s); err == nil {
		t.Errorf("Materialize must fail on an inconsistent schema")
	}
}

// TestPaperCycleFootnote: the same two relationships without c1⇓ are
// satisfiable (footnote 3: an instance without c1 or c2 entries).
func TestPaperCycleFootnote(t *testing.T) {
	s := flatSchema(t, "c1", "c2")
	s.Structure.RequireRel("c1", AxisChild, "c2")
	s.Structure.RequireRel("c2", AxisDesc, "c1")
	requireConsistent(t, s, true)
	d, err := Materialize(s)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if d.Len() != 0 {
		t.Errorf("witness should be the empty instance, got %d entries", d.Len())
	}
}

// TestHierarchyInducedCycle is the Section 5.1 interaction: no cycle
// among the explicit edges, but the class hierarchy closes one.
func TestHierarchyInducedCycle(t *testing.T) {
	s := NewSchema()
	for _, pair := range [][2]string{
		{"c2", ClassTop}, {"c1", "c2"}, // c1 ⇒ c2
		{"c4", ClassTop}, {"c3", "c4"}, // c3 ⇒ c4
		{"c5", "c1"}, // c5 ⇒ c1
	} {
		if err := s.Classes.AddCore(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	s.Structure.RequireClass("c1")
	s.Structure.RequireRel("c2", AxisChild, "c3") // inherited by c1
	s.Structure.RequireRel("c4", AxisDesc, "c5")  // inherited by c3, target lifts to c1
	requireConsistent(t, s, false)

	// Dropping the subclass link c5 ⇒ c1 breaks the cycle.
	s2 := NewSchema()
	for _, pair := range [][2]string{
		{"c2", ClassTop}, {"c1", "c2"},
		{"c4", ClassTop}, {"c3", "c4"},
		{"c5", ClassTop},
	} {
		if err := s2.Classes.AddCore(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	s2.Structure.RequireClass("c1")
	s2.Structure.RequireRel("c2", AxisChild, "c3")
	s2.Structure.RequireRel("c4", AxisDesc, "c5")
	requireConsistent(t, s2, true)
	if _, err := Materialize(s2); err != nil {
		t.Errorf("Materialize: %v", err)
	}
}

// TestPaperContradictionExample is the Section 5.2 direct contradiction:
// c1⇓, c1 →de c2, c1 ⇥de c2.
func TestPaperContradictionExample(t *testing.T) {
	s := flatSchema(t, "c1", "c2")
	s.Structure.RequireClass("c1")
	s.Structure.RequireRel("c1", AxisDesc, "c2")
	if err := s.Structure.ForbidRel("c1", AxisDesc, "c2"); err != nil {
		t.Fatal(err)
	}
	requireConsistent(t, s, false)
}

// TestHierarchyInducedContradiction: the requirement and the prohibition
// meet only through the class hierarchy.
func TestHierarchyInducedContradiction(t *testing.T) {
	s := NewSchema()
	if err := s.Classes.AddCore("c3", ClassTop); err != nil {
		t.Fatal(err)
	}
	if err := s.Classes.AddCore("c2", "c3"); err != nil { // c2 ⇒ c3
		t.Fatal(err)
	}
	if err := s.Classes.AddCore("c1", ClassTop); err != nil {
		t.Fatal(err)
	}
	s.Structure.RequireClass("c1")
	s.Structure.RequireRel("c1", AxisChild, "c2")
	if err := s.Structure.ForbidRel("c1", AxisChild, "c3"); err != nil {
		t.Fatal(err)
	}
	requireConsistent(t, s, false)
}

// TestRuleCoverage drives each contradiction rule individually.
func TestRuleCoverage(t *testing.T) {
	t.Run("PT: descendant requirement vs childless class", func(t *testing.T) {
		s := flatSchema(t, "a", "b")
		s.Structure.RequireClass("a")
		s.Structure.RequireRel("a", AxisDesc, "b")
		if err := s.Structure.ForbidRel("a", AxisChild, ClassTop); err != nil {
			t.Fatal(err)
		}
		requireConsistent(t, s, false)
	})
	t.Run("PT-up: ancestor requirement vs rootedness", func(t *testing.T) {
		s := flatSchema(t, "a", "b")
		s.Structure.RequireClass("a")
		s.Structure.RequireRel("a", AxisAnc, "b")
		if err := s.Structure.ForbidRel(ClassTop, AxisChild, "a"); err != nil {
			t.Fatal(err)
		}
		requireConsistent(t, s, false)
	})
	t.Run("PH: required parent forbidden", func(t *testing.T) {
		s := flatSchema(t, "a", "p")
		s.Structure.RequireClass("a")
		s.Structure.RequireRel("a", AxisParent, "p")
		if err := s.Structure.ForbidRel("p", AxisChild, "a"); err != nil {
			t.Fatal(err)
		}
		requireConsistent(t, s, false)
	})
	t.Run("AH: required ancestor forbidden", func(t *testing.T) {
		s := flatSchema(t, "a", "b")
		s.Structure.RequireClass("a")
		s.Structure.RequireRel("a", AxisAnc, "b")
		if err := s.Structure.ForbidRel("b", AxisDesc, "a"); err != nil {
			t.Fatal(err)
		}
		requireConsistent(t, s, false)
	})
	t.Run("MP: disjoint required parents", func(t *testing.T) {
		s := flatSchema(t, "a", "p", "q")
		s.Structure.RequireClass("a")
		s.Structure.RequireRel("a", AxisParent, "p")
		s.Structure.RequireRel("a", AxisParent, "q")
		requireConsistent(t, s, false)
	})
	t.Run("MP: comparable required parents are fine", func(t *testing.T) {
		s := NewSchema()
		if err := s.Classes.AddCore("p", ClassTop); err != nil {
			t.Fatal(err)
		}
		if err := s.Classes.AddCore("q", "p"); err != nil {
			t.Fatal(err)
		}
		if err := s.Classes.AddCore("a", ClassTop); err != nil {
			t.Fatal(err)
		}
		s.Structure.RequireClass("a")
		s.Structure.RequireRel("a", AxisParent, "p")
		s.Structure.RequireRel("a", AxisParent, "q")
		requireConsistent(t, s, true)
		if _, err := Materialize(s); err != nil {
			t.Errorf("Materialize: %v", err)
		}
	})
	t.Run("PA: ancestor can neither merge with nor sit above the parent", func(t *testing.T) {
		s := flatSchema(t, "a", "p", "x")
		s.Structure.RequireClass("a")
		s.Structure.RequireRel("a", AxisParent, "p")
		s.Structure.RequireRel("a", AxisAnc, "x")
		if err := s.Structure.ForbidRel("x", AxisDesc, "p"); err != nil {
			t.Fatal(err)
		}
		requireConsistent(t, s, false)
	})
	t.Run("AA: two unmergeable unorderable ancestors", func(t *testing.T) {
		s := flatSchema(t, "a", "x", "y")
		s.Structure.RequireClass("a")
		s.Structure.RequireRel("a", AxisAnc, "x")
		s.Structure.RequireRel("a", AxisAnc, "y")
		if err := s.Structure.ForbidRel("x", AxisDesc, "y"); err != nil {
			t.Fatal(err)
		}
		if err := s.Structure.ForbidRel("y", AxisDesc, "x"); err != nil {
			t.Fatal(err)
		}
		requireConsistent(t, s, false)
	})
	t.Run("AA: orderable ancestors are fine", func(t *testing.T) {
		s := flatSchema(t, "a", "x", "y")
		s.Structure.RequireClass("a")
		s.Structure.RequireRel("a", AxisAnc, "x")
		s.Structure.RequireRel("a", AxisAnc, "y")
		if err := s.Structure.ForbidRel("x", AxisDesc, "y"); err != nil {
			t.Fatal(err) // y may not sit below x, but x below y is fine
		}
		requireConsistent(t, s, true)
		if _, err := Materialize(s); err != nil {
			t.Errorf("Materialize: %v", err)
		}
	})
	t.Run("U: requirement into an unsatisfiable class", func(t *testing.T) {
		s := flatSchema(t, "a", "b")
		s.Structure.RequireClass("a")
		s.Structure.RequireRel("a", AxisChild, "b")
		s.Structure.RequireRel("b", AxisDesc, "b") // b needs an infinite chain
		requireConsistent(t, s, false)
	})
	t.Run("L: self loop on ancestor axis", func(t *testing.T) {
		s := flatSchema(t, "a")
		s.Structure.RequireClass("a")
		s.Structure.RequireRel("a", AxisAnc, "a")
		requireConsistent(t, s, false)
	})
	t.Run("CHAIN: three-way forced-order cycle", func(t *testing.T) {
		s := flatSchema(t, "c", "x", "y", "z")
		s.Structure.RequireClass("c")
		s.Structure.RequireRel("c", AxisAnc, "x")
		s.Structure.RequireRel("c", AxisAnc, "y")
		s.Structure.RequireRel("c", AxisAnc, "z")
		// x may not sit above y, y not above z, z not above x: every
		// topmost choice is forbidden, though every pair is orderable.
		if err := s.Structure.ForbidRel("x", AxisDesc, "y"); err != nil {
			t.Fatal(err)
		}
		if err := s.Structure.ForbidRel("y", AxisDesc, "z"); err != nil {
			t.Fatal(err)
		}
		if err := s.Structure.ForbidRel("z", AxisDesc, "x"); err != nil {
			t.Fatal(err)
		}
		requireConsistent(t, s, false)
	})
	t.Run("CHAIN: acyclic forced order is fine", func(t *testing.T) {
		s := flatSchema(t, "c", "x", "y", "z")
		s.Structure.RequireClass("c")
		s.Structure.RequireRel("c", AxisAnc, "x")
		s.Structure.RequireRel("c", AxisAnc, "y")
		s.Structure.RequireRel("c", AxisAnc, "z")
		if err := s.Structure.ForbidRel("x", AxisDesc, "y"); err != nil {
			t.Fatal(err)
		}
		if err := s.Structure.ForbidRel("y", AxisDesc, "z"); err != nil {
			t.Fatal(err)
		}
		requireConsistent(t, s, true)
		if _, err := Materialize(s); err != nil {
			t.Errorf("Materialize: %v", err)
		}
	})
}

func TestUnsatisfiableButConsistent(t *testing.T) {
	s := flatSchema(t, "a", "b")
	s.Structure.RequireClass("b")
	s.Structure.RequireRel("a", AxisDesc, "a") // a is unsatisfiable
	res := requireConsistent(t, s, true)
	if len(res.Unsatisfiable) != 1 || res.Unsatisfiable[0] != "a" {
		t.Errorf("Unsatisfiable = %v, want [a]", res.Unsatisfiable)
	}
	d, err := Materialize(s)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if d.ClassCount("a") != 0 || d.ClassCount("b") == 0 {
		t.Errorf("witness class counts wrong:\n%s", d)
	}
}

func TestEmptySchemaConsistent(t *testing.T) {
	s := NewSchema()
	requireConsistent(t, s, true)
	d, err := Materialize(s)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if d.Len() != 0 {
		t.Errorf("empty schema witness should be empty")
	}
}

func TestExplainDerivation(t *testing.T) {
	s := flatSchema(t, "c1", "c2")
	s.Structure.RequireClass("c1")
	s.Structure.RequireRel("c1", AxisChild, "c2")
	s.Structure.RequireRel("c2", AxisDesc, "c1")
	in := Infer(s)
	if !in.Inconsistent() {
		t.Fatal("expected inconsistency")
	}
	exp := in.ExplainInconsistency()
	for _, want := range []string{"∅⇓", "[given]", "c1 →ch c2"} {
		if !strings.Contains(exp, want) {
			t.Errorf("explanation missing %q:\n%s", want, exp)
		}
	}
	if in.Explain(RequiredRel{Source: "zzz", Axis: AxisChild, Target: "c1"}) != "" {
		t.Errorf("Explain of underived element should be empty")
	}
	if !in.MustExist("c2") {
		t.Errorf("c2 must exist (c1⇓ and c1 →ch c2)")
	}
	if !in.Unsatisfiable("c1") {
		t.Errorf("c1 should be unsatisfiable (via the cycle)")
	}
}

// TestSoundnessOnWitness: every element derived from a consistent schema
// must hold in the materialized witness (Theorem 5.1).
func TestSoundnessOnWitness(t *testing.T) {
	schemas := []*Schema{whitePagesSchema(t)}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		s := randomConsistencySchema(t, rng)
		if s.Consistent() {
			schemas = append(schemas, s)
		}
	}
	for i, s := range schemas {
		d, err := Materialize(s)
		if err != nil {
			t.Errorf("schema %d: Materialize: %v", i, err)
			continue
		}
		in := Infer(s)
		for _, el := range in.Derived() {
			if !Satisfies(d, el) {
				t.Errorf("schema %d: derived element %s does not hold in the witness\n%s",
					i, el.ElementString(), d)
			}
		}
	}
}

// randomConsistencySchema builds a small random schema: a random core
// hierarchy plus random structure elements.
func randomConsistencySchema(t testing.TB, rng *rand.Rand) *Schema {
	s := NewSchema()
	n := rng.Intn(5) + 2
	names := make([]string, n)
	for i := range names {
		names[i] = "k" + strconv.Itoa(i)
		super := ClassTop
		if i > 0 && rng.Intn(2) == 0 {
			super = names[rng.Intn(i)]
		}
		if err := s.Classes.AddCore(names[i], super); err != nil {
			t.Fatal(err)
		}
	}
	pick := func() string { return names[rng.Intn(n)] }
	for i := 0; i < rng.Intn(6)+1; i++ {
		switch rng.Intn(4) {
		case 0:
			s.Structure.RequireClass(pick())
		case 1, 2:
			s.Structure.RequireRel(pick(), Axis(rng.Intn(4)), pick())
		default:
			_ = s.Structure.ForbidRel(pick(), Axis(rng.Intn(2)), pick())
		}
	}
	return s
}

// TestQuickConsistencyAgreesWithChase: the polynomial decision and the
// constructive chase must agree — whenever the closure finds no
// inconsistency, the chase must produce a legal witness. This is the
// mechanical completeness check for the reconstructed rule set.
func TestQuickConsistencyAgreesWithChase(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomConsistencySchema(t, rng)
		if !s.Consistent() {
			return true // soundness is covered by the brute-force test
		}
		d, err := Materialize(s)
		if err != nil {
			t.Logf("consistent schema failed to materialize: %v\nelements: %v", err, elementStrings(s))
			return false
		}
		return NewChecker(s).Check(d).Legal()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func elementStrings(s *Schema) []string {
	var out []string
	for _, el := range s.Elements() {
		out = append(out, el.ElementString())
	}
	return out
}

// TestQuickSoundnessByBruteForce: whenever a small legal instance exists
// (found by exhaustive search over tiny forests), the closure must not
// have derived ∅⇓ (Theorem 5.1 soundness).
func TestQuickSoundnessByBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomConsistencySchema(t, rng)
		if bruteForceHasModel(t, s, 3) && !s.Consistent() {
			res := CheckConsistency(s)
			t.Logf("closure wrongly inconsistent for %v:\n%s", elementStrings(s), res.Explanation)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// bruteForceHasModel exhaustively searches for a legal instance with at
// most maxN entries, where every entry's class set is the superclass
// chain of one core class.
func bruteForceHasModel(t testing.TB, s *Schema, maxN int) bool {
	cores := s.Classes.CoreClasses()
	checker := NewChecker(s)
	var try func(n int) bool
	try = func(n int) bool {
		// Enumerate parent vectors: parent[i] in {-1, 0..i-1}; and class
		// choices: one core class per node.
		parents := make([]int, n)
		classes := make([]int, n)
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == n {
				d := dirtree.New(s.Registry)
				nodes := make([]*dirtree.Entry, n)
				for j := 0; j < n; j++ {
					cs := s.Classes.Superclasses(cores[classes[j]])
					var e *dirtree.Entry
					var err error
					if parents[j] == -1 {
						e, err = d.AddRoot("n="+strconv.Itoa(j), cs...)
					} else {
						e, err = d.AddChild(nodes[parents[j]], "n="+strconv.Itoa(j), cs...)
					}
					if err != nil {
						return false
					}
					nodes[j] = e
				}
				return checker.Legal(d)
			}
			for p := -1; p < i; p++ {
				parents[i] = p
				for c := range cores {
					classes[i] = c
					if rec(i + 1) {
						return true
					}
				}
			}
			return false
		}
		return rec(0)
	}
	for n := 0; n <= maxN; n++ {
		if try(n) {
			return true
		}
	}
	return false
}

// TestMaterializeFillsRequiredAttributes: witnesses must be content-legal
// including required attributes with typed values.
func TestMaterializeFillsRequiredAttributes(t *testing.T) {
	s := whitePagesSchema(t)
	s.Registry.Declare("grade", dirtree.TypeInt)
	s.Attrs.Require("person", "grade")
	d, err := Materialize(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range d.ClassEntries("person") {
		if !e.HasAttr("name") || !e.HasAttr("grade") {
			t.Errorf("person witness missing required attributes: %s", e)
		}
		if e.Attr("grade")[0].Type() != dirtree.TypeInt {
			t.Errorf("grade should be integer-typed")
		}
	}
}

func TestConsistencyFactsReported(t *testing.T) {
	s := whitePagesSchema(t)
	res := CheckConsistency(s)
	if res.Facts == 0 {
		t.Errorf("closed fact count should be positive")
	}
}

package core

import (
	"math/rand"
	"strconv"
	"testing"
)

// bigRandomSchema is a denser generator than randomConsistencySchema:
// deeper hierarchies and more structure elements, to stress the
// inference/chase agreement.
func bigRandomSchema(t testing.TB, rng *rand.Rand) *Schema {
	s := NewSchema()
	n := rng.Intn(8) + 3
	names := make([]string, n)
	for i := range names {
		names[i] = "k" + strconv.Itoa(i)
		super := ClassTop
		if i > 0 && rng.Intn(3) != 0 {
			super = names[rng.Intn(i)]
		}
		if err := s.Classes.AddCore(names[i], super); err != nil {
			t.Fatal(err)
		}
	}
	pick := func() string { return names[rng.Intn(n)] }
	for i := 0; i < rng.Intn(12)+2; i++ {
		switch rng.Intn(5) {
		case 0:
			s.Structure.RequireClass(pick())
		case 1, 2:
			s.Structure.RequireRel(pick(), Axis(rng.Intn(4)), pick())
		default:
			_ = s.Structure.ForbidRel(pick(), Axis(rng.Intn(2)), pick())
		}
	}
	return s
}

// TestStressChaseAgreement cross-validates the polynomial consistency
// decision against the constructive chase and a brute-force model search
// over thousands of random schemas. It is the repository's completeness
// evidence for the reconstructed Figure 6/7 rule set (DESIGN.md).
func TestStressChaseAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	bad := 0
	for seed := int64(0); seed < 8000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var s *Schema
		if seed%2 == 0 {
			s = randomConsistencySchema(t, rng)
		} else {
			s = bigRandomSchema(t, rng)
		}
		if !s.Consistent() {
			if seed%2 == 0 && bruteForceHasModel(t, s, 3) {
				t.Errorf("seed %d: closure inconsistent but model exists: %v", seed, elementStrings(s))
				bad++
			}
			continue
		}
		d, err := Materialize(s)
		if err != nil {
			t.Errorf("seed %d: consistent but chase failed: %v\n%v", seed, err, elementStrings(s))
			bad++
			continue
		}
		if r := NewChecker(s).Check(d); !r.Legal() {
			t.Errorf("seed %d: witness illegal: %s", seed, r)
			bad++
		}
		if bad > 5 {
			t.Fatal("too many failures")
		}
	}
}

package core

// ConsistencyResult is the outcome of the Section 5 analysis.
type ConsistencyResult struct {
	// Consistent reports Theorem 5.2's verdict: the schema admits at
	// least one legal instance iff Exists(∅) is not derivable.
	Consistent bool
	// Explanation is the derivation of Exists(∅) when inconsistent.
	Explanation string
	// Facts is the number of facts in the closed element database, the
	// size measure of the polynomial bound.
	Facts int
	// Unsatisfiable lists classes the closure proves can have no entries
	// in any legal instance. A schema can be consistent while some of its
	// classes are unsatisfiable, as long as none of them is required.
	Unsatisfiable []string
}

// CheckConsistency decides whether the schema is consistent (admits a
// legal instance) by closing its class and structure elements under the
// inference system of Figures 6 and 7 and testing for the Exists(∅)
// marker (Theorem 5.2). The decision is polynomial in the schema size.
func CheckConsistency(s *Schema) ConsistencyResult {
	in := Infer(s)
	res := ConsistencyResult{
		Consistent: !in.Inconsistent(),
		Facts:      in.NumFacts(),
	}
	if in.Inconsistent() {
		res.Explanation = in.ExplainInconsistency()
	}
	for _, c := range s.Classes.CoreClasses() {
		if in.Unsatisfiable(c) {
			res.Unsatisfiable = append(res.Unsatisfiable, c)
		}
	}
	return res
}

// Consistent is shorthand for CheckConsistency(s).Consistent.
func (s *Schema) Consistent() bool { return !Infer(s).Inconsistent() }

package core

import (
	"fmt"
	"sort"
)

// StructureSchema is the structure schema S = (Cr, Er, Ef) of Definition
// 2.4: required object classes, required structural relationships over the
// four axes, and forbidden structural relationships over child and
// descendant.
type StructureSchema struct {
	required map[string]struct{}      // Cr
	reqRels  map[RequiredRel]struct{} // Er
	forbRels map[ForbiddenRel]struct{}
}

// NewStructureSchema returns an empty structure schema.
func NewStructureSchema() *StructureSchema {
	return &StructureSchema{
		required: make(map[string]struct{}),
		reqRels:  make(map[RequiredRel]struct{}),
		forbRels: make(map[ForbiddenRel]struct{}),
	}
}

// RequireClass adds c⇓ to Cr.
func (s *StructureSchema) RequireClass(c string) {
	s.required[c] = struct{}{}
}

// RequireRel adds the required structural relationship source →axis target
// to Er.
func (s *StructureSchema) RequireRel(source string, axis Axis, target string) {
	s.reqRels[RequiredRel{Source: source, Axis: axis, Target: target}] = struct{}{}
}

// ForbidRel adds the forbidden structural relationship upper ⇥axis lower
// to Ef. The axis must be AxisChild or AxisDesc (Definition 2.4).
func (s *StructureSchema) ForbidRel(upper string, axis Axis, lower string) error {
	if !axis.Downward() {
		return fmt.Errorf("core: forbidden relationships use the child or descendant axis, not %v", axis)
	}
	s.forbRels[ForbiddenRel{Upper: upper, Axis: axis, Lower: lower}] = struct{}{}
	return nil
}

// RequiredClasses returns Cr, sorted.
func (s *StructureSchema) RequiredClasses() []string { return sortedKeys(s.required) }

// IsRequiredClass reports whether c ∈ Cr.
func (s *StructureSchema) IsRequiredClass(c string) bool {
	_, ok := s.required[c]
	return ok
}

// RequiredRels returns Er in a deterministic order.
func (s *StructureSchema) RequiredRels() []RequiredRel {
	out := make([]RequiredRel, 0, len(s.reqRels))
	for r := range s.reqRels {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		if out[i].Axis != out[j].Axis {
			return out[i].Axis < out[j].Axis
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// ForbiddenRels returns Ef in a deterministic order.
func (s *StructureSchema) ForbiddenRels() []ForbiddenRel {
	out := make([]ForbiddenRel, 0, len(s.forbRels))
	for r := range s.forbRels {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Upper != out[j].Upper {
			return out[i].Upper < out[j].Upper
		}
		if out[i].Axis != out[j].Axis {
			return out[i].Axis < out[j].Axis
		}
		return out[i].Lower < out[j].Lower
	})
	return out
}

// Size returns |S| = |Cr| + |Er| + |Ef|, used in the complexity accounting
// of Theorem 3.1.
func (s *StructureSchema) Size() int {
	return len(s.required) + len(s.reqRels) + len(s.forbRels)
}

// Classes returns every class mentioned anywhere in the structure schema,
// sorted.
func (s *StructureSchema) Classes() []string {
	set := make(map[string]struct{})
	for c := range s.required {
		set[c] = struct{}{}
	}
	for r := range s.reqRels {
		set[r.Source] = struct{}{}
		set[r.Target] = struct{}{}
	}
	for r := range s.forbRels {
		set[r.Upper] = struct{}{}
		set[r.Lower] = struct{}{}
	}
	return sortedKeys(set)
}

// Clone returns an independent deep copy.
func (s *StructureSchema) Clone() *StructureSchema {
	out := NewStructureSchema()
	for c := range s.required {
		out.required[c] = struct{}{}
	}
	for r := range s.reqRels {
		out.reqRels[r] = struct{}{}
	}
	for r := range s.forbRels {
		out.forbRels[r] = struct{}{}
	}
	return out
}

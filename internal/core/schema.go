package core

import (
	"fmt"

	"boundschema/internal/dirtree"
)

// Schema is a directory bounding-schema S = (A, H, S) (Definition 2.5):
// the attribute schema, the class schema and the structure schema, plus
// the attribute typing function τ (a dirtree.Registry, optional).
type Schema struct {
	Attrs     *AttributeSchema
	Classes   *ClassSchema
	Structure *StructureSchema
	Registry  *dirtree.Registry

	// keys holds the Section 6.1 key attributes (instance-wide unique
	// values); see DeclareKey.
	keys map[string]struct{}
}

// NewSchema returns an empty, well-formed schema (class hierarchy
// containing only top; no attributes; no structural elements).
func NewSchema() *Schema {
	return &Schema{
		Attrs:     NewAttributeSchema(),
		Classes:   NewClassSchema(),
		Structure: NewStructureSchema(),
		Registry:  dirtree.NewRegistry(),
	}
}

// Validate checks cross-component well-formedness:
//
//   - ρr(c) ⊆ ρa(c) in the attribute schema;
//   - every class given attributes is declared in the class schema;
//   - every class mentioned in the structure schema is a declared *core*
//     class (Definition 2.4 draws Cr, Er and Ef from Cc).
//
// Validate checks shape, not satisfiability; use Consistent for the
// Section 5 analysis.
func (s *Schema) Validate() error {
	if err := s.Attrs.Validate(); err != nil {
		return err
	}
	for _, c := range s.Attrs.Classes() {
		if !s.Classes.Declared(c) {
			return fmt.Errorf("core: attribute schema mentions undeclared class %s", c)
		}
	}
	for _, c := range s.Structure.Classes() {
		if !s.Classes.IsCore(c) {
			return fmt.Errorf("core: structure schema mentions %s, which is not a declared core class", c)
		}
	}
	return nil
}

// Elements returns every schema element of the class and structure
// schemas — the set Φ of Theorem 5.1 — in a deterministic order:
// required classes, required relationships, forbidden relationships,
// subclass co-occurrences, and disjointness co-occurrences.
func (s *Schema) Elements() []Element {
	var out []Element
	for _, c := range s.Structure.RequiredClasses() {
		out = append(out, RequiredClass{Class: c})
	}
	for _, r := range s.Structure.RequiredRels() {
		out = append(out, r)
	}
	for _, r := range s.Structure.ForbiddenRels() {
		out = append(out, r)
	}
	cores := s.Classes.CoreClasses()
	for _, c := range cores {
		if p, ok := s.Classes.Superclass(c); ok {
			out = append(out, Subclass{Sub: c, Super: p})
		}
	}
	for i, c1 := range cores {
		for _, c2 := range cores[i+1:] {
			if s.Classes.Disjoint(c1, c2) {
				out = append(out, Disjoint{A: c1, B: c2})
			}
		}
	}
	return out
}

// Clone returns an independent deep copy (sharing the immutable registry).
func (s *Schema) Clone() *Schema {
	out := &Schema{
		Attrs:     s.Attrs.Clone(),
		Classes:   s.Classes.Clone(),
		Structure: s.Structure.Clone(),
		Registry:  s.Registry,
	}
	for k := range s.keys {
		out.DeclareKey(k)
	}
	return out
}

// Satisfies implements the satisfaction relation D ⊨ φ of Definition 2.6
// by direct evaluation of the element's semantics. It is the reference
// implementation the query-based checker is differentially tested
// against; use Checker for the efficient path.
func Satisfies(d *dirtree.Directory, el Element) bool {
	switch e := el.(type) {
	case RequiredClass:
		if e.Class == ClassNone {
			return false // no entry may belong to ∅
		}
		return d.ClassCount(e.Class) > 0

	case RequiredRel:
		for _, src := range d.ClassEntries(e.Source) {
			if !hasAxisWitness(src, e.Axis, e.Target) {
				return false
			}
		}
		return true

	case ForbiddenRel:
		for _, upper := range d.ClassEntries(e.Upper) {
			switch e.Axis {
			case AxisChild:
				for _, c := range upper.Children() {
					if c.HasClass(e.Lower) {
						return false
					}
				}
			case AxisDesc:
				if descendantHasClass(upper, e.Lower) {
					return false
				}
			}
		}
		return true

	case Subclass:
		for _, src := range d.ClassEntries(e.Sub) {
			if !src.HasClass(e.Super) {
				return false
			}
		}
		return true

	case Disjoint:
		for _, src := range d.ClassEntries(e.A) {
			if src.HasClass(e.B) {
				return false
			}
		}
		return true
	}
	return false
}

func hasAxisWitness(e *dirtree.Entry, axis Axis, class string) bool {
	if class == ClassNone {
		return false
	}
	switch axis {
	case AxisChild:
		for _, c := range e.Children() {
			if c.HasClass(class) {
				return true
			}
		}
	case AxisDesc:
		return descendantHasClass(e, class)
	case AxisParent:
		p := e.Parent()
		return p != nil && p.HasClass(class)
	case AxisAnc:
		for p := e.Parent(); p != nil; p = p.Parent() {
			if p.HasClass(class) {
				return true
			}
		}
	}
	return false
}

func descendantHasClass(e *dirtree.Entry, class string) bool {
	for _, c := range e.Children() {
		if c.HasClass(class) || descendantHasClass(c, class) {
			return true
		}
	}
	return false
}

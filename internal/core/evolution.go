package core

import (
	"fmt"
	"sort"

	"boundschema/internal/dirtree"
)

// This file operationalizes the Section 6.2 observation that "many kinds
// of schema evolution ... are extremely lightweight, involving no
// modifications to existing directory entries": given an old and a new
// bounding-schema, PlanEvolution classifies every difference by the
// revalidation it demands on instances known to be legal under the old
// schema, and CheckEvolution runs exactly those checks — per-class
// content rechecks and per-element structure queries — instead of a full
// recheck.

// EvolutionCost classifies one schema change.
type EvolutionCost int

// Costs, from free to instance-wide.
const (
	// CostNone marks lightweight changes: every old-legal instance
	// remains legal (e.g. a new allowed attribute, a new class, a
	// removed requirement).
	CostNone EvolutionCost = iota
	// CostContent requires re-running the per-entry content check for
	// the entries of the affected classes.
	CostContent
	// CostStructure requires evaluating one structure-schema element's
	// query over the instance.
	CostStructure
)

func (c EvolutionCost) String() string {
	switch c {
	case CostNone:
		return "lightweight"
	case CostContent:
		return "content-recheck"
	case CostStructure:
		return "structure-check"
	}
	return "?"
}

// EvolutionStep is one classified difference between the schemas.
type EvolutionStep struct {
	Description string
	Cost        EvolutionCost
	// Classes lists the classes whose entries need a content recheck
	// (CostContent).
	Classes []string
	// Element is the structure element to evaluate (CostStructure).
	Element Element
}

// EvolutionPlan is the full classified diff.
type EvolutionPlan struct {
	Steps []EvolutionStep
}

// Lightweight reports whether the whole evolution needs no revalidation.
func (p *EvolutionPlan) Lightweight() bool {
	for _, s := range p.Steps {
		if s.Cost != CostNone {
			return false
		}
	}
	return true
}

// ContentClasses returns the union of classes needing content rechecks.
func (p *EvolutionPlan) ContentClasses() []string {
	set := make(map[string]struct{})
	for _, s := range p.Steps {
		if s.Cost == CostContent {
			for _, c := range s.Classes {
				set[c] = struct{}{}
			}
		}
	}
	return sortedKeys(set)
}

// FullContent reports whether some change (e.g. an attribute retyping)
// affects entries regardless of class, forcing a whole-instance content
// recheck.
func (p *EvolutionPlan) FullContent() bool {
	for _, s := range p.Steps {
		if s.Cost == CostContent && len(s.Classes) == 0 {
			return true
		}
	}
	return false
}

// StructureElements returns the structure elements needing evaluation.
func (p *EvolutionPlan) StructureElements() []Element {
	var out []Element
	for _, s := range p.Steps {
		if s.Cost == CostStructure && s.Element != nil {
			out = append(out, s.Element)
		}
	}
	return out
}

func (p *EvolutionPlan) String() string {
	if len(p.Steps) == 0 {
		return "no schema changes"
	}
	out := ""
	for _, s := range p.Steps {
		out += fmt.Sprintf("%-16s %s\n", s.Cost, s.Description)
	}
	return out
}

// PlanEvolution diffs two schemas and classifies every change.
func PlanEvolution(old, new *Schema) *EvolutionPlan {
	p := &EvolutionPlan{}
	add := func(cost EvolutionCost, desc string, classes []string, el Element) {
		p.Steps = append(p.Steps, EvolutionStep{Description: desc, Cost: cost, Classes: classes, Element: el})
	}

	// --- Class schema -------------------------------------------------
	oldCores := toSet(old.Classes.CoreClasses())
	newCores := toSet(new.Classes.CoreClasses())
	for _, c := range new.Classes.CoreClasses() {
		if _, ok := oldCores[c]; !ok {
			add(CostNone, fmt.Sprintf("new core class %s (no existing entries belong to it)", c), nil, nil)
		}
	}
	for _, c := range old.Classes.CoreClasses() {
		if _, ok := newCores[c]; !ok {
			// Entries of a removed class become unknown-class violators.
			add(CostContent, fmt.Sprintf("core class %s removed", c), []string{c}, nil)
		}
	}
	for _, c := range new.Classes.CoreClasses() {
		if _, ok := oldCores[c]; !ok {
			continue
		}
		os, _ := old.Classes.Superclass(c)
		ns, _ := new.Classes.Superclass(c)
		if os != ns {
			// The superclass chain of c (and of all its subclasses)
			// changed; their entries must satisfy the new chain.
			affected := append([]string{c}, coreDescendants(new.Classes, c)...)
			add(CostContent, fmt.Sprintf("class %s moved from %s to %s", c, os, ns), affected, nil)
		}
	}
	for _, x := range new.Classes.AuxClasses() {
		if !old.Classes.IsAux(x) {
			add(CostNone, fmt.Sprintf("new auxiliary class %s", x), nil, nil)
		}
	}
	for _, x := range old.Classes.AuxClasses() {
		if !new.Classes.IsAux(x) {
			// Entries carrying the removed aux become unknown-class.
			add(CostContent, fmt.Sprintf("auxiliary class %s removed", x), []string{x}, nil)
		}
	}
	for _, c := range new.Classes.CoreClasses() {
		oldAux := toSet(old.Classes.AuxesOf(c))
		for _, x := range new.Classes.AuxesOf(c) {
			if _, ok := oldAux[x]; !ok {
				// The Section 6.2 example: "adding a new auxiliary object
				// class to the auxiliary object classes associated with a
				// core object class is extremely lightweight".
				add(CostNone, fmt.Sprintf("class %s now allows auxiliary %s", c, x), nil, nil)
			}
		}
		newAux := toSet(new.Classes.AuxesOf(c))
		for _, x := range old.Classes.AuxesOf(c) {
			if _, ok := newAux[x]; !ok {
				add(CostContent, fmt.Sprintf("class %s no longer allows auxiliary %s", c, x), []string{c}, nil)
			}
		}
	}

	// --- Attribute typing (τ) -------------------------------------------
	if old.Registry != nil && new.Registry != nil {
		oldAttrs := toSet(old.Registry.Attrs())
		for _, a := range sortedKeys(toSet(new.Registry.Attrs())) {
			_, existed := oldAttrs[a]
			switch {
			case !existed && a != dirtree.AttrObjectClass:
				// A fresh declaration may retype values that previously
				// defaulted to string; any entry could carry them.
				add(CostContent, fmt.Sprintf("attribute %s newly declared as %s", a, new.Registry.Type(a)), nil, nil)
			case existed && old.Registry.Type(a) != new.Registry.Type(a):
				add(CostContent, fmt.Sprintf("attribute %s retyped %s -> %s", a, old.Registry.Type(a), new.Registry.Type(a)), nil, nil)
			case existed && !old.Registry.SingleValued(a) && new.Registry.SingleValued(a):
				add(CostContent, fmt.Sprintf("attribute %s became single-valued", a), nil, nil)
			case existed && old.Registry.SingleValued(a) && !new.Registry.SingleValued(a):
				add(CostNone, fmt.Sprintf("attribute %s no longer single-valued", a), nil, nil)
			}
		}
	}

	// --- Keys (Section 6.1) ----------------------------------------------
	oldKeys := toSet(old.Keys())
	for _, k := range new.Keys() {
		if _, ok := oldKeys[k]; !ok {
			// Existing values may already collide; scan everything.
			add(CostContent, fmt.Sprintf("attribute %s became a key", k), nil, nil)
		}
	}
	newKeys := toSet(new.Keys())
	for _, k := range old.Keys() {
		if _, ok := newKeys[k]; !ok {
			add(CostNone, fmt.Sprintf("attribute %s is no longer a key", k), nil, nil)
		}
	}

	// --- Attribute schema ---------------------------------------------
	classes := sortedKeys(toSet(append(old.Attrs.Classes(), new.Attrs.Classes()...)))
	for _, c := range classes {
		oldReq, newReq := toSet(old.Attrs.Required(c)), toSet(new.Attrs.Required(c))
		oldAll, newAll := toSet(old.Attrs.Allowed(c)), toSet(new.Attrs.Allowed(c))
		for _, a := range new.Attrs.Required(c) {
			if _, ok := oldReq[a]; !ok {
				add(CostContent, fmt.Sprintf("class %s now requires attribute %s", c, a), []string{c}, nil)
			}
		}
		for _, a := range old.Attrs.Required(c) {
			if _, ok := newReq[a]; !ok {
				if _, stillAllowed := newAll[a]; stillAllowed {
					add(CostNone, fmt.Sprintf("class %s no longer requires attribute %s", c, a), nil, nil)
				}
			}
		}
		for _, a := range new.Attrs.Allowed(c) {
			if _, ok := oldAll[a]; !ok {
				// The Section 6.2 example: "adding a new allowed attribute
				// to an object class ... involving no modifications to
				// existing directory entries".
				add(CostNone, fmt.Sprintf("class %s now allows attribute %s", c, a), nil, nil)
			}
		}
		for _, a := range old.Attrs.Allowed(c) {
			if _, ok := newAll[a]; !ok {
				add(CostContent, fmt.Sprintf("class %s no longer allows attribute %s", c, a), []string{c}, nil)
			}
		}
	}

	// --- Structure schema ----------------------------------------------
	oldReqC := toSet(old.Structure.RequiredClasses())
	for _, c := range new.Structure.RequiredClasses() {
		if _, ok := oldReqC[c]; !ok {
			add(CostStructure, fmt.Sprintf("new required class %s⇓", c), nil, RequiredClass{Class: c})
		}
	}
	newReqC := toSet(new.Structure.RequiredClasses())
	for _, c := range old.Structure.RequiredClasses() {
		if _, ok := newReqC[c]; !ok {
			add(CostNone, fmt.Sprintf("required class %s⇓ dropped", c), nil, nil)
		}
	}
	oldRels := make(map[RequiredRel]struct{})
	for _, r := range old.Structure.RequiredRels() {
		oldRels[r] = struct{}{}
	}
	newRels := make(map[RequiredRel]struct{})
	for _, r := range new.Structure.RequiredRels() {
		newRels[r] = struct{}{}
		if _, ok := oldRels[r]; !ok {
			add(CostStructure, fmt.Sprintf("new required relationship %s", r.ElementString()), nil, r)
		}
	}
	for r := range oldRels {
		if _, ok := newRels[r]; !ok {
			add(CostNone, fmt.Sprintf("required relationship %s dropped", r.ElementString()), nil, nil)
		}
	}
	oldForb := make(map[ForbiddenRel]struct{})
	for _, r := range old.Structure.ForbiddenRels() {
		oldForb[r] = struct{}{}
	}
	newForb := make(map[ForbiddenRel]struct{})
	for _, r := range new.Structure.ForbiddenRels() {
		newForb[r] = struct{}{}
		if _, ok := oldForb[r]; !ok {
			add(CostStructure, fmt.Sprintf("new forbidden relationship %s", r.ElementString()), nil, r)
		}
	}
	for r := range oldForb {
		if _, ok := newForb[r]; !ok {
			add(CostNone, fmt.Sprintf("forbidden relationship %s dropped", r.ElementString()), nil, nil)
		}
	}

	sort.SliceStable(p.Steps, func(i, j int) bool { return p.Steps[i].Cost < p.Steps[j].Cost })
	return p
}

// CheckEvolution verifies that an instance known to be legal under the
// plan's old schema is legal under the new one, running only the checks
// the plan demands. The verdict equals a full Check against the new
// schema for such instances.
func CheckEvolution(new *Schema, d *dirtree.Directory, plan *EvolutionPlan) *Report {
	r := &Report{}
	checker := NewChecker(new)

	if plan.FullContent() {
		r.Merge(checker.CheckContent(d))
		r.Merge(checker.CheckKeys(d))
	} else if classes := plan.ContentClasses(); len(classes) > 0 {
		seen := make(map[int]struct{})
		for _, c := range classes {
			for _, e := range d.ClassEntries(c) {
				if _, dup := seen[e.ID()]; dup {
					continue
				}
				seen[e.ID()] = struct{}{}
				checker.checkEntry(e, r)
			}
		}
	}

	if els := plan.StructureElements(); len(els) > 0 {
		for _, el := range els {
			if !Satisfies(d, el) {
				kind := ViolationRequiredRel
				switch el.(type) {
				case RequiredClass:
					kind = ViolationMissingClass
				case ForbiddenRel:
					kind = ViolationForbiddenRel
				}
				r.Add(Violation{Kind: kind, Element: el,
					Detail: "instance violates the newly added schema element"})
			}
		}
	}
	return r
}

func toSet(xs []string) map[string]struct{} {
	out := make(map[string]struct{}, len(xs))
	for _, x := range xs {
		out[x] = struct{}{}
	}
	return out
}

// coreDescendants returns every core class below c in the hierarchy.
func coreDescendants(cs *ClassSchema, c string) []string {
	var out []string
	var walk func(x string)
	walk = func(x string) {
		for _, sub := range cs.Subclasses(x) {
			out = append(out, sub)
			walk(sub)
		}
	}
	walk(c)
	return out
}

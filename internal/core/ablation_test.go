package core

import (
	"testing"
)

// extensionSchemas are inconsistent schemas whose detection needs the
// implementation's extension rules (CP/DPD compositions, self/above/below
// case analysis, chain passes); the pairwise Figure 6/7 reconstruction
// alone misses them. Each was found by the randomized stress harness and
// verified inconsistent by hand (see the stress test and DESIGN.md).
func extensionSchemas(t testing.TB) map[string]*Schema {
	out := make(map[string]*Schema)
	build := func(name string, f func(s *Schema)) {
		s := NewSchema()
		f(s)
		out[name] = s
	}
	mustCore := func(s *Schema, c, super string) {
		if err := s.Classes.AddCore(c, super); err != nil {
			t.Fatal(err)
		}
	}
	mustForbid := func(s *Schema, u string, ax Axis, l string) {
		if err := s.Structure.ForbidRel(u, ax, l); err != nil {
			t.Fatal(err)
		}
	}

	build("CP: child's parent class conflicts with source", func(s *Schema) {
		for _, c := range []string{"k1", "k3", "k4"} {
			mustCore(s, c, ClassTop)
		}
		s.Structure.RequireClass("k4")
		s.Structure.RequireRel("k4", AxisChild, "k3")
		s.Structure.RequireRel("k3", AxisParent, "k1")
	})

	build("DPD: descendant-parent-child composition cycle", func(s *Schema) {
		mustCore(s, "k0", ClassTop)
		mustCore(s, "k1", "k0")
		mustCore(s, "k2", ClassTop)
		s.Structure.RequireClass("k1")
		s.Structure.RequireRel("k0", AxisParent, "k2")
		s.Structure.RequireRel("k1", AxisDesc, "k0")
		s.Structure.RequireRel("k2", AxisChild, "k1")
		mustForbid(s, "k1", AxisChild, "k0")
	})

	build("SW: sandwich between ancestor and descendant", func(s *Schema) {
		for _, c := range []string{"k0", "k1", "k2"} {
			mustCore(s, c, ClassTop)
		}
		s.Structure.RequireClass("k2")
		s.Structure.RequireRel("k2", AxisDesc, "k0")
		s.Structure.RequireRel("k2", AxisAnc, "k1")
		mustForbid(s, "k1", AxisDesc, "k0")
	})

	build("above: an-regress through child requirement", func(s *Schema) {
		for _, c := range []string{"k0", "k1", "k2"} {
			mustCore(s, c, ClassTop)
		}
		s.Structure.RequireClass("k2")
		s.Structure.RequireRel("k0", AxisAnc, "k2")
		s.Structure.RequireRel("k1", AxisAnc, "k0")
		s.Structure.RequireRel("k2", AxisChild, "k1")
		mustForbid(s, "k1", AxisChild, "k0")
	})

	build("below: de-pa regress with subclassing", func(s *Schema) {
		mustCore(s, "k0", ClassTop)
		mustCore(s, "k1", ClassTop)
		mustCore(s, "k2", "k1")
		s.Structure.RequireClass("k2")
		s.Structure.RequireRel("k0", AxisParent, "k2")
		s.Structure.RequireRel("k1", AxisDesc, "k0")
		s.Structure.RequireRel("k2", AxisDesc, "k1")
	})

	build("PCH: ancestor cannot fit the forced parent chain", func(s *Schema) {
		mustCore(s, "k0", ClassTop)
		mustCore(s, "k1", "k0")
		mustCore(s, "k2", "k0")
		mustCore(s, "k3", "k1")
		mustCore(s, "k6", "k0")
		mustCore(s, "k8", "k6")
		s.Structure.RequireClass("k8")
		s.Structure.RequireRel("k6", AxisParent, "k3")
		s.Structure.RequireRel("k3", AxisParent, "k2")
		s.Structure.RequireRel("k8", AxisAnc, "k6")
		mustForbid(s, "k0", AxisDesc, "k2")
	})

	build("CHAIN: three-way forced-order cycle", func(s *Schema) {
		for _, c := range []string{"c", "x", "y", "z"} {
			mustCore(s, c, ClassTop)
		}
		s.Structure.RequireClass("c")
		for _, t := range []string{"x", "y", "z"} {
			s.Structure.RequireRel("c", AxisAnc, t)
		}
		mustForbid(s, "x", AxisDesc, "y")
		mustForbid(s, "y", AxisDesc, "z")
		mustForbid(s, "z", AxisDesc, "x")
	})

	return out
}

// TestExtensionRulesCatchWhatPairwiseMisses: every extension schema is
// inconsistent under the full system but slips past the pairwise-only
// reconstruction — the ablation evidence for DESIGN.md.
func TestExtensionRulesCatchWhatPairwiseMisses(t *testing.T) {
	for name, s := range extensionSchemas(t) {
		t.Run(name, func(t *testing.T) {
			full := InferWith(s, InferOptions{})
			if !full.Inconsistent() {
				t.Fatalf("full system should detect the inconsistency")
			}
			pairwise := InferWith(s, InferOptions{PairwiseOnly: true})
			if pairwise.Inconsistent() {
				t.Fatalf("pairwise system unexpectedly detects it — the case no longer isolates the extension")
			}
			// The chase must agree with the full verdict: no witness.
			if _, err := Materialize(s); err == nil {
				t.Fatalf("Materialize built a witness for an inconsistent schema")
			}
		})
	}
}

// TestPairwiseCatchesPaperTaxonomy: the paper's own narrative cases fall
// to the pairwise rules alone, confirming the reconstruction covers the
// published system.
func TestPairwiseCatchesPaperTaxonomy(t *testing.T) {
	cases := map[string]*Schema{}

	s1 := flatSchema(t, "c1", "c2")
	s1.Structure.RequireClass("c1")
	s1.Structure.RequireRel("c1", AxisChild, "c2")
	s1.Structure.RequireRel("c2", AxisDesc, "c1")
	cases["5.1 cycle"] = s1

	s2 := flatSchema(t, "c1", "c2")
	s2.Structure.RequireClass("c1")
	s2.Structure.RequireRel("c1", AxisDesc, "c2")
	if err := s2.Structure.ForbidRel("c1", AxisDesc, "c2"); err != nil {
		t.Fatal(err)
	}
	cases["5.2 contradiction"] = s2

	s3 := NewSchema()
	if err := s3.Classes.AddCore("c3", ClassTop); err != nil {
		t.Fatal(err)
	}
	if err := s3.Classes.AddCore("c2", "c3"); err != nil {
		t.Fatal(err)
	}
	if err := s3.Classes.AddCore("c1", ClassTop); err != nil {
		t.Fatal(err)
	}
	s3.Structure.RequireClass("c1")
	s3.Structure.RequireRel("c1", AxisChild, "c2")
	if err := s3.Structure.ForbidRel("c1", AxisChild, "c3"); err != nil {
		t.Fatal(err)
	}
	cases["5.2 hierarchy contradiction"] = s3

	for name, s := range cases {
		if !InferWith(s, InferOptions{PairwiseOnly: true}).Inconsistent() {
			t.Errorf("%s: pairwise rules should suffice", name)
		}
	}
}

// TestPairwiseIsSound: the restricted system never flags a consistent
// schema (it derives strictly fewer facts).
func TestPairwiseIsSound(t *testing.T) {
	schemas := []*Schema{whitePagesSchema(t)}
	for _, s := range schemas {
		if InferWith(s, InferOptions{PairwiseOnly: true}).Inconsistent() {
			t.Errorf("pairwise system flagged a consistent schema")
		}
	}
}

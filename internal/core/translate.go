package core

import (
	"boundschema/internal/hquery"
)

// This file implements the Figure 4 translation from structure-schema
// elements to hierarchical selection queries, such that a directory
// instance D is legal w.r.t. (Er, Ef) iff every translated query is empty,
// and legal w.r.t. Cr iff every required-class query is non-empty
// (Section 3.2).
//
//	ci →ch cj   ↦  σ−( σ(ci), δc(σ(ci), σ(cj)) )
//	ci →pa cj   ↦  σ−( σ(ci), δp(σ(ci), σ(cj)) )
//	ci →de cj   ↦  σ−( σ(ci), δd(σ(ci), σ(cj)) )
//	ci →an cj   ↦  σ−( σ(ci), δa(σ(ci), σ(cj)) )
//	ci ⇥ch cj   ↦  δc(σ(ci), σ(cj))
//	ci ⇥de cj   ↦  δd(σ(ci), σ(cj))
//	c⇓          ↦  σ(c)          (must be NON-empty)

// RequiredRelQuery returns the violation query for a required structural
// relationship: it retrieves exactly the Source entries lacking the
// required Axis-related Target entry, so the instance satisfies the
// element iff the query is empty.
func RequiredRelQuery(r RequiredRel) hquery.Query {
	return requiredRelQueryOn(r, hquery.InstDefault, hquery.InstDefault)
}

// requiredRelQueryOn builds the Figure 4 query with the source atoms
// evaluated on srcInst and the target atom on tgtInst — the generalization
// Figure 5 needs for incremental checking.
func requiredRelQueryOn(r RequiredRel, srcInst, tgtInst hquery.Inst) hquery.Query {
	src := hquery.ClassAtomOn(r.Source, srcInst)
	src2 := hquery.ClassAtomOn(r.Source, srcInst)
	tgt := hquery.ClassAtomOn(r.Target, tgtInst)
	var have hquery.Query
	switch r.Axis {
	case AxisChild:
		have = hquery.Child(src2, tgt)
	case AxisParent:
		have = hquery.Parent(src2, tgt)
	case AxisDesc:
		have = hquery.Desc(src2, tgt)
	case AxisAnc:
		have = hquery.Anc(src2, tgt)
	}
	return hquery.Minus(src, have)
}

// ForbiddenRelQuery returns the violation query for a forbidden
// structural relationship: it retrieves the Upper entries that do have a
// forbidden Lower child/descendant, so the instance satisfies the element
// iff the query is empty.
func ForbiddenRelQuery(f ForbiddenRel) hquery.Query {
	return forbiddenRelQueryOn(f, hquery.InstDefault, hquery.InstDefault)
}

func forbiddenRelQueryOn(f ForbiddenRel, upperInst, lowerInst hquery.Inst) hquery.Query {
	upper := hquery.ClassAtomOn(f.Upper, upperInst)
	lower := hquery.ClassAtomOn(f.Lower, lowerInst)
	if f.Axis == AxisChild {
		return hquery.Child(upper, lower)
	}
	return hquery.Desc(upper, lower)
}

// RequiredClassQuery returns the query for c⇓; the instance satisfies the
// element iff the query is NON-empty.
func RequiredClassQuery(c string) hquery.Query { return hquery.ClassAtom(c) }

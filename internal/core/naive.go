package core

import (
	"boundschema/internal/dirtree"
)

// NaiveStructureCheck is the straightforward structure-schema test that
// Section 3.2 improves upon: it compares every (parent, child) pair and
// every (ancestor, descendant) pair against the structure schema, taking
// O((|Er| + |Ef|) · |D|²) time. It exists as the experimental baseline
// (experiment E4 of DESIGN.md) and as a differential-testing oracle; the
// verdict is identical to Checker.CheckStructure.
func NaiveStructureCheck(s *Schema, d *dirtree.Directory) *Report {
	r := &Report{}
	entries := d.Entries()

	for _, cls := range s.Structure.RequiredClasses() {
		found := false
		for _, e := range entries {
			if e.HasClass(cls) {
				found = true
				break
			}
		}
		if !found {
			r.Add(Violation{Kind: ViolationMissingClass,
				Element: RequiredClass{Class: cls},
				Detail:  "no entry belongs to required class " + cls})
		}
	}

	for _, rel := range s.Structure.RequiredRels() {
		for _, ei := range entries {
			if !ei.HasClass(rel.Source) {
				continue
			}
			// Scan every other entry for a witness, testing the pair
			// relationship positionally — the quadratic strategy.
			found := false
			for _, ej := range entries {
				if ej == ei || !ej.HasClass(rel.Target) {
					continue
				}
				if pairRelated(ei, rel.Axis, ej) {
					found = true
					break
				}
			}
			if !found {
				r.Add(Violation{Kind: ViolationRequiredRel, Entry: ei, Element: rel})
			}
		}
	}

	for _, rel := range s.Structure.ForbiddenRels() {
		for _, ei := range entries {
			if !ei.HasClass(rel.Upper) {
				continue
			}
			for _, ej := range entries {
				if ej == ei || !ej.HasClass(rel.Lower) {
					continue
				}
				if pairRelated(ei, rel.Axis, ej) {
					r.Add(Violation{Kind: ViolationForbiddenRel, Entry: ei, Element: rel})
					break
				}
			}
		}
	}
	return r
}

// pairRelated tests one (ei, ej) pair against one axis using only parent
// pointers, as the naive algorithm would.
func pairRelated(ei *dirtree.Entry, axis Axis, ej *dirtree.Entry) bool {
	switch axis {
	case AxisChild:
		return ej.Parent() == ei
	case AxisDesc:
		for p := ej.Parent(); p != nil; p = p.Parent() {
			if p == ei {
				return true
			}
		}
	case AxisParent:
		return ei.Parent() == ej
	case AxisAnc:
		for p := ei.Parent(); p != nil; p = p.Parent() {
			if p == ej {
				return true
			}
		}
	}
	return false
}

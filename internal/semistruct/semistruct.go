// Package semistruct applies bounding-schemas beyond LDAP directories, to
// semi-structured databases, as Section 6.3 proposes: over edge-labeled
// trees (OEM-style), required and forbidden structural relationships
// between labels express constraints that fixed-length path constraints
// and regular-expression destination constraints cannot — e.g. "every
// person node must have a name descendant at any depth" or "no country
// node may be a descendant of another country node".
//
// The adapter maps labels to core object classes in a flat hierarchy and
// reuses the core legality and consistency machinery unchanged, which is
// precisely the paper's point.
package semistruct

import (
	"fmt"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
)

// Node is a node of a semi-structured data tree: an edge label, an
// optional atomic value, and children.
type Node struct {
	Label    string
	Value    string
	Children []*Node
}

// New returns a node with the given label and no value.
func New(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// Leaf returns a node with a label and an atomic value.
func Leaf(label, value string) *Node {
	return &Node{Label: label, Value: value}
}

// Add appends children and returns the node, for fluent tree building.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Constraints is a bounding-schema over labels: required labels, and
// required/forbidden structural relationships between labels, with path
// lengths unconstrained (the Section 6.3 generalization).
type Constraints struct {
	schema *core.Schema
}

// NewConstraints returns an empty constraint set.
func NewConstraints() *Constraints {
	return &Constraints{schema: core.NewSchema()}
}

func (c *Constraints) declare(label string) error {
	if label == core.ClassTop {
		return fmt.Errorf("semistruct: label %q is reserved", label)
	}
	if c.schema.Classes.IsCore(label) {
		return nil
	}
	return c.schema.Classes.AddCore(label, core.ClassTop)
}

// RequireLabel demands at least one node with the given label.
func (c *Constraints) RequireLabel(label string) error {
	if err := c.declare(label); err != nil {
		return err
	}
	c.schema.Structure.RequireClass(label)
	return nil
}

// Require demands that every src-labeled node have an axis-related node
// with the target label (e.g. Require("person", core.AxisDesc, "name")).
func (c *Constraints) Require(src string, axis core.Axis, tgt string) error {
	if err := c.declare(src); err != nil {
		return err
	}
	if err := c.declare(tgt); err != nil {
		return err
	}
	c.schema.Structure.RequireRel(src, axis, tgt)
	return nil
}

// Forbid prohibits any lower-labeled node from being a child (AxisChild)
// or descendant (AxisDesc) of an upper-labeled node.
func (c *Constraints) Forbid(upper string, axis core.Axis, lower string) error {
	if err := c.declare(upper); err != nil {
		return err
	}
	if err := c.declare(lower); err != nil {
		return err
	}
	return c.schema.Structure.ForbidRel(upper, axis, lower)
}

// Consistent reports whether some data tree satisfies the constraints
// (Theorem 5.2 applied to the label schema).
func (c *Constraints) Consistent() core.ConsistencyResult {
	return core.CheckConsistency(c.schema)
}

// Check tests a forest of data trees against the constraints, returning
// the structural violations.
func (c *Constraints) Check(roots ...*Node) (*core.Report, error) {
	d, err := c.directoryOf(roots)
	if err != nil {
		return nil, err
	}
	checker := core.NewChecker(c.schema)
	return checker.CheckStructure(d), nil
}

// directoryOf converts the forest into a directory instance, declaring
// any labels the constraints have not mentioned.
func (c *Constraints) directoryOf(roots []*Node) (*dirtree.Directory, error) {
	// Declare every label in the data so the conversion never produces
	// undeclared classes.
	var declareAll func(n *Node) error
	declareAll = func(n *Node) error {
		if err := c.declare(n.Label); err != nil {
			return err
		}
		for _, k := range n.Children {
			if err := declareAll(k); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := declareAll(r); err != nil {
			return nil, err
		}
	}

	d := dirtree.New(nil)
	seq := 0
	var build func(parent *dirtree.Entry, n *Node) error
	build = func(parent *dirtree.Entry, n *Node) error {
		rdn := fmt.Sprintf("%s=%d", n.Label, seq)
		seq++
		var e *dirtree.Entry
		var err error
		if parent == nil {
			e, err = d.AddRoot(rdn, n.Label, core.ClassTop)
		} else {
			e, err = d.AddChild(parent, rdn, n.Label, core.ClassTop)
		}
		if err != nil {
			return err
		}
		if n.Value != "" {
			e.AddValue("value", dirtree.String(n.Value))
		}
		for _, k := range n.Children {
			if err := build(e, k); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := build(nil, r); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Schema exposes the underlying bounding-schema for advanced use
// (explanations, materialization).
func (c *Constraints) Schema() *core.Schema { return c.schema }

func parseAxis(s string) (core.Axis, error) {
	return core.ParseAxis(s)
}

package semistruct

import (
	"strings"
	"testing"

	"boundschema/internal/core"
)

// TestPaperSection63Example encodes both Section 6.3 examples: persons
// need a name descendant at any depth, and countries may not nest, while
// country/corporation nesting in every other combination stays legal.
func TestPaperSection63Example(t *testing.T) {
	c := NewConstraints()
	if err := c.Require("person", core.AxisDesc, "name"); err != nil {
		t.Fatal(err)
	}
	if err := c.Forbid("country", core.AxisDesc, "country"); err != nil {
		t.Fatal(err)
	}

	// A legal mixed hierarchy: a country holding a national corporation,
	// an international corporation holding countries, and a conglomerate.
	legal := New("country",
		New("corporation",
			New("corporation", // conglomerate member
				New("person", New("contact", Leaf("name", "ada"))),
			),
		),
	)
	intl := New("corporation",
		New("country2placeholder"), // unconstrained label is fine
	)
	r, err := c.Check(legal, intl)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Legal() {
		t.Fatalf("legal forest rejected:\n%s", r)
	}

	// Nested countries violate the forbidden relationship.
	nested := New("country", New("region", New("country")))
	r, err = c.Check(nested)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ByKind(core.ViolationForbiddenRel)) == 0 {
		t.Errorf("nested countries accepted:\n%s", r)
	}

	// A person without a name descendant violates the requirement, no
	// matter how deep the tree is.
	anon := New("person", New("address", Leaf("street", "main")))
	r, err = c.Check(anon)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ByKind(core.ViolationRequiredRel)) == 0 {
		t.Errorf("nameless person accepted:\n%s", r)
	}

	// The name may sit at any depth (deeper than any fixed-length path
	// constraint could express).
	deep := New("person", New("a", New("b", New("c", Leaf("name", "x")))))
	r, err = c.Check(deep)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Legal() {
		t.Fatalf("deep name rejected:\n%s", r)
	}
}

func TestRequiredLabel(t *testing.T) {
	c := NewConstraints()
	if err := c.RequireLabel("catalog"); err != nil {
		t.Fatal(err)
	}
	r, err := c.Check(New("other"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ByKind(core.ViolationMissingClass)) != 1 {
		t.Errorf("missing catalog not reported:\n%s", r)
	}
	r, err = c.Check(New("catalog"))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Legal() {
		t.Errorf("catalog present but rejected:\n%s", r)
	}
}

func TestConsistencyOverLabels(t *testing.T) {
	c := NewConstraints()
	if err := c.RequireLabel("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Require("a", core.AxisChild, "b"); err != nil {
		t.Fatal(err)
	}
	if err := c.Require("b", core.AxisDesc, "a"); err != nil {
		t.Fatal(err)
	}
	res := c.Consistent()
	if res.Consistent {
		t.Errorf("cyclic label constraints should be inconsistent")
	}
	if !strings.Contains(res.Explanation, "∅⇓") {
		t.Errorf("missing explanation:\n%s", res.Explanation)
	}
}

func TestReservedLabel(t *testing.T) {
	c := NewConstraints()
	if err := c.RequireLabel(core.ClassTop); err == nil {
		t.Errorf("reserved label accepted")
	}
	if _, err := c.Check(New(core.ClassTop)); err == nil {
		t.Errorf("reserved label in data accepted")
	}
}

func TestFluentBuilders(t *testing.T) {
	n := New("root").Add(Leaf("k", "v"), New("m"))
	if len(n.Children) != 2 || n.Children[0].Value != "v" {
		t.Errorf("builder broken: %+v", n)
	}
}

func TestTextForestRoundTrip(t *testing.T) {
	src := `# corporate data
country
  corporation
    person
      contact
        name: ada grace
  office: hq
corporation
  country
`
	roots, err := ParseForest(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 || roots[0].Label != "country" || roots[1].Label != "corporation" {
		t.Fatalf("roots = %+v", roots)
	}
	if roots[0].Children[1].Value != "hq" {
		t.Errorf("value lost: %+v", roots[0].Children[1])
	}
	var buf strings.Builder
	if err := WriteForest(&buf, roots); err != nil {
		t.Fatal(err)
	}
	again, err := ParseForest(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, buf.String())
	}
	var buf2 strings.Builder
	if err := WriteForest(&buf2, again); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Errorf("unstable round trip:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

func TestTextForestErrors(t *testing.T) {
	bad := []string{
		" one-space\n",
		"a\n    grandchild-jump\n",
		":\n",
	}
	for _, src := range bad {
		if _, err := ParseForest(strings.NewReader(src)); err == nil {
			t.Errorf("ParseForest(%q) succeeded, want error", src)
		}
	}
}

func TestParseConstraint(t *testing.T) {
	c := NewConstraints()
	for _, src := range []string{
		"require catalog",
		"require person descendant name",
		"forbid country descendant country",
	} {
		if err := c.ParseConstraint(src); err != nil {
			t.Fatalf("ParseConstraint(%q): %v", src, err)
		}
	}
	roots, err := ParseForest(strings.NewReader("catalog\nperson\n  name: x\n"))
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Check(roots...)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Legal() {
		t.Fatalf("legal data rejected:\n%s", r)
	}
	for _, bad := range []string{"", "require", "forbid a parent b", "frob a b c"} {
		if err := c.ParseConstraint(bad); err == nil {
			t.Errorf("ParseConstraint(%q) succeeded, want error", bad)
		}
	}
}

package semistruct

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file gives semi-structured forests a textual form, so the §6.3
// constraints can be applied to data files: an indentation-based outline
// (two spaces per level), one node per line, either "label" or
// "label: value".
//
//	country
//	  corporation
//	    person
//	      contact
//	        name: ada
//
// Lines starting with '#' are comments; blank lines are ignored.

// ParseForest reads an outline into a forest of nodes.
func ParseForest(r io.Reader) ([]*Node, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var roots []*Node
	// stack[d] is the most recent node at depth d.
	var stack []*Node
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := strings.TrimRight(sc.Text(), " \t\r")
		if raw == "" || strings.HasPrefix(strings.TrimSpace(raw), "#") {
			continue
		}
		indent := 0
		for indent < len(raw) && raw[indent] == ' ' {
			indent++
		}
		if indent%2 != 0 {
			return nil, fmt.Errorf("semistruct: line %d: odd indentation %d", lineNo, indent)
		}
		depth := indent / 2
		if depth > len(stack) {
			return nil, fmt.Errorf("semistruct: line %d: indentation jumps by more than one level", lineNo)
		}
		text := raw[indent:]
		label, value, _ := strings.Cut(text, ":")
		label = strings.TrimSpace(label)
		value = strings.TrimSpace(value)
		if label == "" {
			return nil, fmt.Errorf("semistruct: line %d: empty label", lineNo)
		}
		n := &Node{Label: label, Value: value}
		if depth == 0 {
			roots = append(roots, n)
		} else {
			parent := stack[depth-1]
			parent.Children = append(parent.Children, n)
		}
		stack = append(stack[:depth], n)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return roots, nil
}

// WriteForest serializes a forest in the outline format read by
// ParseForest.
func WriteForest(w io.Writer, roots []*Node) error {
	bw := bufio.NewWriter(w)
	var emit func(n *Node, depth int)
	emit = func(n *Node, depth int) {
		bw.WriteString(strings.Repeat("  ", depth))
		bw.WriteString(n.Label)
		if n.Value != "" {
			bw.WriteString(": ")
			bw.WriteString(n.Value)
		}
		bw.WriteByte('\n')
		for _, c := range n.Children {
			emit(c, depth+1)
		}
	}
	for _, r := range roots {
		emit(r, 0)
	}
	return bw.Flush()
}

// ParseConstraint adds one textual constraint to the set. Forms:
//
//	require label
//	require A child|descendant|parent|ancestor B
//	forbid  A child|descendant B
func (c *Constraints) ParseConstraint(src string) error {
	fields := strings.Fields(src)
	switch {
	case len(fields) == 2 && fields[0] == "require":
		return c.RequireLabel(fields[1])
	case len(fields) == 4 && fields[0] == "require":
		ax, err := parseAxis(fields[2])
		if err != nil {
			return err
		}
		return c.Require(fields[1], ax, fields[3])
	case len(fields) == 4 && fields[0] == "forbid":
		ax, err := parseAxis(fields[2])
		if err != nil {
			return err
		}
		return c.Forbid(fields[1], ax, fields[3])
	}
	return fmt.Errorf("semistruct: cannot parse constraint %q", src)
}

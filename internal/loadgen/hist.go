package loadgen

import (
	"sort"
	"time"
)

// hist collects raw latency samples for one op kind in one worker.
// Workers never share a hist, so there is no locking; the runner merges
// them after the workers join. Raw samples (not pre-bucketed) keep the
// client-side quantiles exact, which matters when comparing against the
// server's power-of-two METRICS histograms.
type hist struct {
	samples []time.Duration
}

func (h *hist) note(d time.Duration) { h.samples = append(h.samples, d) }

func (h *hist) merge(o *hist) { h.samples = append(h.samples, o.samples...) }

// LatencyStats is the JSON-facing quantile summary in microseconds.
type LatencyStats struct {
	Count int   `json:"count"`
	P50us int64 `json:"p50_us"`
	P95us int64 `json:"p95_us"`
	P99us int64 `json:"p99_us"`
	MaxUs int64 `json:"max_us"`
}

// stats sorts and summarizes; the zero LatencyStats means no samples.
func (h *hist) stats() LatencyStats {
	if len(h.samples) == 0 {
		return LatencyStats{}
	}
	sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
	q := func(p float64) int64 {
		i := int(p * float64(len(h.samples)-1))
		return h.samples[i].Microseconds()
	}
	return LatencyStats{
		Count: len(h.samples),
		P50us: q(0.50),
		P95us: q(0.95),
		P99us: q(0.99),
		MaxUs: h.samples[len(h.samples)-1].Microseconds(),
	}
}

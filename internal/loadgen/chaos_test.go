package loadgen

import (
	"testing"
	"time"

	"boundschema/internal/vfs"
)

// chaosConfig sizes a chaos scenario for CI: short enough for the
// -race smoke job, long enough that the injury lands mid-traffic.
// LOADGEN_FULL=1 stretches the runs for the nightly matrix.
func chaosConfig(t *testing.T, scenario string) ChaosConfig {
	sc, ok := ScenarioByName(scenario)
	if !ok {
		t.Fatalf("unknown scenario %q", scenario)
	}
	cfg := ChaosConfig{
		Scenario: sc,
		CorpusN:  300,
		Workers:  4,
		Duration: 1500 * time.Millisecond,
		Seed:     11,
	}
	if full() {
		cfg.CorpusN = 5000
		cfg.Workers = 8
		cfg.Duration = 8 * time.Second
	}
	return cfg
}

// TestChaosFailover kills the primary mid-load, promotes a replica
// while workers race it, and requires the promoted lineage to end
// byte-identical with a fresh replica and the orphan still legal.
func TestChaosFailover(t *testing.T) {
	rep, err := Failover(chaosConfig(t, "whitepages"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Load.Committed == 0 {
		t.Fatal("no commits across the failover")
	}
	t.Logf("failover: committed=%d errors=%v", rep.Load.Committed, rep.Load.Errors)
}

// TestChaosFaultsUnderLoad scripts each fault kind into the journal
// mid-load and requires every OK'd commit to survive recovery.
func TestChaosFaultsUnderLoad(t *testing.T) {
	kinds := []vfs.FaultKind{vfs.FaultCrash, vfs.FaultTornWrite, vfs.FaultSyncErr}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rep, err := FaultUnderLoad(chaosConfig(t, "netpolicy"), kind)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: committed=%d errors=%v", rep.Name, rep.Load.Committed, rep.Load.Errors)
		})
	}
}

// TestChaosConnStorm churns every client connection and repeatedly
// severs the replication links; the cluster must still converge to
// byte identity.
func TestChaosConnStorm(t *testing.T) {
	rep, err := ConnStorm(chaosConfig(t, "semistructured"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Load.Committed == 0 {
		t.Fatal("no commits during the storm")
	}
	t.Logf("connstorm: %v", rep.Notes)
}

package loadgen

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Target is the mutable address book the workers dial. Chaos scenarios
// repoint it mid-run (failover moves the write address to the promoted
// replica), and workers re-resolve it on every reconnect, so traffic
// follows the cluster through role flips without restarting the run.
type Target struct {
	mu    sync.RWMutex
	write string
	reads []string
}

// NewTarget builds a target: writes to write, reads round-robined over
// reads (defaulting to the write address when none are given).
func NewTarget(write string, reads ...string) *Target {
	if len(reads) == 0 {
		reads = []string{write}
	}
	return &Target{write: write, reads: reads}
}

// SetWrite repoints the write address.
func (t *Target) SetWrite(addr string) {
	t.mu.Lock()
	t.write = addr
	t.mu.Unlock()
}

// SetReads replaces the read addresses.
func (t *Target) SetReads(addrs ...string) {
	t.mu.Lock()
	t.reads = addrs
	t.mu.Unlock()
}

// WriteAddr returns the current write address.
func (t *Target) WriteAddr() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.write
}

// ReadAddr returns worker w's current read address.
func (t *Target) ReadAddr(w int) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.reads[w%len(t.reads)]
}

// Options configures one load run.
type Options struct {
	Scenario     *Scenario
	Pools        *Pools
	Mix          Mix
	Workers      int
	OpsPerWorker int           // stop after this many ops per worker (0 = unbounded)
	Duration     time.Duration // wall-clock bound (0 = none); at least one bound is required
	Seed         int64
	// FirstWorker offsets worker ids, namespacing the DNs and key values
	// each worker generates. Consecutive runs against one live cluster
	// must use disjoint id ranges, or run 2's worker 0 re-creates run 1's
	// entries (DN collisions) and re-issues its key values (rejected by
	// the Section 6.1 uniqueness checks).
	FirstWorker int
	// FollowRedirects makes a worker whose write was bounced with a
	// replica redirect repoint the shared target at the advertised
	// primary — how traffic finds the promoted node during failover.
	FollowRedirects bool
	// DropConnEvery makes each worker close and re-dial both its
	// connections every N ops — client-side connection churn for the
	// chaos scenarios (0 = never).
	DropConnEvery int
	CorpusEntries int    // recorded in the result
	Cluster       string // recorded in the result ("single", "1p+2r", ...)
}

// ServerCmdStats is one scraped METRICS command line: the server-side
// view of the same latencies the client measured.
type ServerCmdStats struct {
	Count  int64 `json:"count"`
	Errors int64 `json:"errors"`
	P50us  int64 `json:"p50_us"`
	P99us  int64 `json:"p99_us"`
}

// Result is the JSON-facing outcome of one load run.
type Result struct {
	Scenario      string                    `json:"scenario"`
	Schema        string                    `json:"schema"`
	Mix           string                    `json:"mix"`
	MixSpec       string                    `json:"mix_spec"`
	Workers       int                       `json:"workers"`
	CorpusEntries int                       `json:"corpus_entries"`
	Cluster       string                    `json:"cluster"`
	CPUs          int                       `json:"cpus"`
	Gomaxprocs    int                       `json:"gomaxprocs"`
	ElapsedMS     int64                     `json:"elapsed_ms"`
	TotalOps      int                       `json:"total_ops"`
	Committed     int                       `json:"committed"`
	Throughput    float64                   `json:"throughput_ops_per_sec"`
	Errors        map[string]int            `json:"errors"`
	PerOp         map[string]LatencyStats   `json:"per_op"`
	Server        map[string]ServerCmdStats `json:"server_metrics,omitempty"`
}

type workerStats struct {
	lat       [numOpKinds]hist
	errs      map[string]int
	total     int
	committed int
}

// Run drives the configured mix from Workers concurrent workers against
// the target and aggregates latencies, throughput and the error
// taxonomy. It returns once every worker finished its op budget or the
// duration elapsed.
func Run(opts Options, target *Target) (*Result, error) {
	if err := opts.Mix.Validate(); err != nil {
		return nil, err
	}
	if opts.Workers <= 0 {
		return nil, fmt.Errorf("loadgen: %d workers", opts.Workers)
	}
	if opts.OpsPerWorker <= 0 && opts.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: no op budget and no duration; the run would never stop")
	}
	if opts.Pools == nil {
		return nil, fmt.Errorf("loadgen: nil pools")
	}

	stats := make([]*workerStats, opts.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	var deadline time.Time
	if opts.Duration > 0 {
		deadline = start.Add(opts.Duration)
	}
	for w := 0; w < opts.Workers; w++ {
		stats[w] = &workerStats{errs: make(map[string]int)}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runWorker(opts, target, w, stats[w], deadline)
		}(w)
	}
	wg.Wait()

	res := &Result{
		Scenario:      opts.Scenario.Name,
		Schema:        opts.Scenario.Name,
		Mix:           opts.Mix.Name,
		MixSpec:       opts.Mix.Spec(),
		Workers:       opts.Workers,
		CorpusEntries: opts.CorpusEntries,
		Cluster:       opts.Cluster,
		CPUs:          runtime.NumCPU(),
		Gomaxprocs:    runtime.GOMAXPROCS(0),
		ElapsedMS:     time.Since(start).Milliseconds(),
		Errors:        make(map[string]int),
		PerOp:         make(map[string]LatencyStats),
	}
	merged := [numOpKinds]hist{}
	for _, ws := range stats {
		res.TotalOps += ws.total
		res.Committed += ws.committed
		for k, n := range ws.errs {
			res.Errors[k] += n
		}
		for k := range ws.lat {
			merged[k].merge(&ws.lat[k])
		}
	}
	succeeded := 0
	for k := range merged {
		st := merged[k].stats()
		if st.Count > 0 {
			res.PerOp[OpKind(k).String()] = st
			succeeded += st.Count
		}
	}
	if el := time.Since(start).Seconds(); el > 0 {
		res.Throughput = float64(succeeded) / el
	}
	res.Server = scrapeMetrics(target.WriteAddr())
	return res, nil
}

// redirectTracker watches the chain of write redirects a worker has
// followed since its last successful commit. Following is progress only
// while every hop lands somewhere new; revisiting an address means the
// nodes are redirecting writes at each other — the window mid-failover
// before the promoted node's role settles, or a misconfigured primary
// address — and the worker should back off instead of ping-ponging
// connections at full speed.
type redirectTracker struct {
	seen map[string]bool
}

// follow records addr as the next hop. A false return means the chain
// revisited addr — a loop. Detection clears the chain, so after backing
// off the worker probes the (possibly healed) topology afresh.
func (rt *redirectTracker) follow(addr string) bool {
	if rt.seen[addr] {
		rt.seen = nil
		return false
	}
	if rt.seen == nil {
		rt.seen = make(map[string]bool)
	}
	rt.seen[addr] = true
	return true
}

// reset forgets the chain once a write lands.
func (rt *redirectTracker) reset() { rt.seen = nil }

// runWorker is one worker's life: dial, cycle the deck, reconnect on
// transport errors, follow redirects, record everything.
func runWorker(opts Options, target *Target, w int, ws *workerStats, deadline time.Time) {
	id := opts.FirstWorker + w
	rng := rand.New(rand.NewSource(opts.Seed + int64(id)*7919))
	src := opts.Scenario.newSource(opts.Pools, id, rng)
	deck := opts.Mix.Deck(rng)
	var redirects redirectTracker
	var wc, rc *Client // write / read connections, re-dialed on demand
	defer func() {
		if wc != nil {
			wc.Close()
		}
		if rc != nil {
			rc.Close()
		}
	}()

	for i := 0; opts.OpsPerWorker <= 0 || i < opts.OpsPerWorker; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return
		}
		if opts.DropConnEvery > 0 && i > 0 && i%opts.DropConnEvery == 0 {
			if wc != nil {
				wc.Close()
				wc = nil
			}
			if rc != nil {
				rc.Close()
				rc = nil
			}
		}
		op, ok := src.Op(deck[i%len(deck)])
		if !ok {
			// update/delete with nothing owned yet: seed with a create
			op, _ = src.Op(OpCreate)
		}
		ws.total++

		if op.Cmd != "" { // read/query on the read connection
			if rc == nil {
				var err error
				if rc, err = Dial(target.ReadAddr(w)); err != nil {
					ws.errs[ErrConn]++
					time.Sleep(5 * time.Millisecond)
					continue
				}
			}
			begun := time.Now()
			resp, err := rc.Do(op.Cmd)
			if cls := classify(resp, err); cls != "" {
				ws.errs[cls]++
				if err != nil {
					rc.Close()
					rc = nil
				}
				continue
			}
			ws.lat[kindOf(op)].note(time.Since(begun))
			continue
		}

		// Transaction on the write connection.
		if wc == nil {
			var err error
			if wc, err = Dial(target.WriteAddr()); err != nil {
				ws.errs[ErrConn]++
				time.Sleep(5 * time.Millisecond)
				continue
			}
		}
		begun := time.Now()
		resp, err := wc.Txn(op.Tx)
		cls := classify(resp, err)
		if cls == "" {
			if op.Applied != nil {
				op.Applied(true)
			}
			redirects.reset()
			ws.committed++
			ws.lat[kindOfTx(op)].note(time.Since(begun))
			continue
		}
		ws.errs[cls]++
		if op.Applied != nil {
			op.Applied(false)
		}
		switch cls {
		case ErrConn:
			wc.Close()
			wc = nil
			time.Sleep(5 * time.Millisecond)
		case ErrRedirect:
			if opts.FollowRedirects {
				if addr := RedirectAddr(resp.Err); addr != "" {
					if redirects.follow(addr) {
						target.SetWrite(addr)
					} else {
						ws.errs[ErrRedirectLoop]++
						time.Sleep(20 * time.Millisecond)
					}
				}
			}
			wc.Close()
			wc = nil
		default:
			// Any other ERR aborted the transaction server-side; drop the
			// connection so a desynced reply stream cannot leak into the
			// next op.
			wc.Close()
			wc = nil
		}
	}
}

// kindOf recovers the op kind for single-command ops.
func kindOf(op Op) OpKind {
	if strings.HasPrefix(op.Cmd, "GET") {
		return OpRead
	}
	return OpQuery
}

// kindOfTx recovers the op kind for transaction ops.
func kindOfTx(op Op) OpKind {
	first := op.Tx[0]
	switch {
	case strings.HasPrefix(first, "ADD"):
		return OpCreate
	case strings.HasPrefix(first, "MOVE"):
		return OpUpdate
	default:
		return OpDelete
	}
}

// scrapeMetrics pulls the per-command server-side histogram lines from
// METRICS ("command NAME: count=.. errors=.. ... p50_us=.. p99_us=..").
// A dead or unreachable node yields nil — chaos runs end with the
// original primary gone, and the scrape must not fail the run.
func scrapeMetrics(addr string) map[string]ServerCmdStats {
	c, err := Dial(addr)
	if err != nil {
		return nil
	}
	defer c.Close()
	resp, err := c.Do("METRICS")
	if err != nil || !resp.OK() {
		return nil
	}
	out := make(map[string]ServerCmdStats)
	for _, line := range resp.Lines {
		name, ok := strings.CutPrefix(line, "command ")
		if !ok {
			continue
		}
		name, fields, ok := strings.Cut(name, ": ")
		if !ok {
			continue
		}
		var st ServerCmdStats
		for _, f := range strings.Fields(fields) {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				continue
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				continue
			}
			switch k {
			case "count":
				st.Count = n
			case "errors":
				st.Errors = n
			case "p50_us":
				st.P50us = n
			case "p99_us":
				st.P99us = n
			}
		}
		out[name] = st
	}
	return out
}

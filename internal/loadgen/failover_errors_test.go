package loadgen

import (
	"testing"

	"boundschema/internal/repl"
)

// TestClassifyFailoverTaxonomy pins the error labels failover drivers
// steer by. The ordering matters: a fenced ex-primary's reason flows to
// clients as "server is read-only: fenced: ...", so the fenced check
// must win over the generic read-only one — conflating them would make
// a driver treat a deposed primary (healthy, just superseded) like a
// node with a broken journal.
func TestClassifyFailoverTaxonomy(t *testing.T) {
	cases := []struct {
		msg  string
		want string
	}{
		{"server is read-only: fenced: observed epoch 3 > local epoch 2 via HELLO from replica 127.0.0.1:9; a newer primary exists", ErrFenced},
		{"stale epoch: this primary is at epoch 1, replica announced epoch 2", ErrStaleEpoch},
		{"server is read-only: journal sync failed: disk gone", ErrReadOnly},
		{"read-only replica: writes go to the primary (redirect primary=127.0.0.1:1234)", ErrRedirect},
		{"commit not durable: sync failed", ErrNotDurable},
	}
	for _, tc := range cases {
		resp := Resp{Term: "ERR", Err: tc.msg}
		if got := classify(resp, nil); got != tc.want {
			t.Errorf("classify(%q) = %q, want %q", tc.msg, got, tc.want)
		}
	}
}

// TestRedirectTracker pins the loop detector's contract: fresh hops are
// progress, a revisit is a loop, and both loop detection and a
// successful write clear the chain.
func TestRedirectTracker(t *testing.T) {
	var rt redirectTracker
	if !rt.follow("a") || !rt.follow("b") {
		t.Fatal("fresh hops reported as loops")
	}
	if rt.follow("a") {
		t.Fatal("revisiting a followed address not reported as a loop")
	}
	// Detection reset the chain: the same address is a fresh hop again.
	if !rt.follow("a") {
		t.Fatal("chain not cleared after loop detection")
	}
	rt.reset()
	if !rt.follow("b") {
		t.Fatal("chain not cleared by reset")
	}
}

// TestRedirectLoopDetection cross-wires two real replicas so each
// advertises the other as the primary — the shape a failover driver
// sees mid-promotion, before the new primary's role settles. A
// redirect-following run against them must detect the ping-pong, count
// it under redirect_loop, back off instead of spinning connections, and
// still terminate on its op budget.
func TestRedirectLoopDetection(t *testing.T) {
	sc, _ := ScenarioByName("whitepages")
	cl, err := StartCluster(sc, 100, 2, 11, repl.Async)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.Replicas[0].Srv.SetPrimaryClientAddr(cl.Replicas[1].Addr)
	cl.Replicas[1].Srv.SetPrimaryClientAddr(cl.Replicas[0].Addr)

	target := NewTarget(cl.Replicas[0].Addr)
	res, err := Run(Options{
		Scenario: sc, Pools: cl.Pools, Mix: Mix{Name: "writes", Create: 100},
		Workers: 2, OpsPerWorker: 30, Seed: 13,
		FollowRedirects: true,
		CorpusEntries:   cl.CorpusEntries, Cluster: "loop",
	}, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps != 2*30 {
		t.Errorf("run did not honor its op budget: %d ops, want %d", res.TotalOps, 60)
	}
	if res.Committed != 0 {
		t.Errorf("%d commits landed with no writable node in the loop", res.Committed)
	}
	if res.Errors[ErrRedirect] == 0 {
		t.Error("no redirects recorded against mutually-redirecting replicas")
	}
	if res.Errors[ErrRedirectLoop] == 0 {
		t.Fatalf("redirect ping-pong never detected as a loop; errors: %v", res.Errors)
	}
	// Every op either bounced or was counted as a detected loop — the
	// worker must not silently eat ops on any other path.
	if got := res.Errors[ErrRedirect] + res.Errors[ErrConn]; got+res.Errors[ErrRedirectLoop] < res.TotalOps {
		t.Errorf("ops unaccounted for: %v over %d ops", res.Errors, res.TotalOps)
	}
}

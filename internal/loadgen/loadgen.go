// Package loadgen is the YCSB-style load harness (ROADMAP item 5): it
// drives configurable create/read/update/delete/query operation mixes
// from N concurrent workers over the wire against a live server —
// single node or a primary+replicas cluster — using schema-respecting
// operations for each example scenario (whitepages, netpolicy,
// semistructured). It records per-op latency quantiles, throughput and
// an error taxonomy, scrapes the server's METRICS surface, and layers
// chaos scenarios (failover, fault injection, connection storms) on
// top, each ending in a convergence oracle: surviving nodes must be
// byte-identical where expected, pass VERIFY, and serve an instance the
// full (non-incremental) legality engines agree is legal.
package loadgen

import (
	"fmt"
	"math/rand"
)

// OpKind is one of the five YCSB-style operation classes.
type OpKind int

const (
	OpCreate OpKind = iota // insert new entries (BEGIN..ADD..COMMIT)
	OpRead                 // point read (GET <dn>)
	OpUpdate               // restructure owned entries (BEGIN..MOVE..COMMIT)
	OpDelete               // remove owned entries (BEGIN..DELETE..COMMIT)
	OpQuery                // range/subtree scan (SEARCH <filter> [base=<dn>])
	numOpKinds
)

func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpQuery:
		return "query"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Mix is a c/r/u/d/q operation mix in percent; the five shares must sum
// to 100. The zero value is invalid — use a preset or fill every share.
type Mix struct {
	Name   string `json:"name"`
	Create int    `json:"create"`
	Read   int    `json:"read"`
	Update int    `json:"update"`
	Delete int    `json:"delete"`
	Query  int    `json:"query"`
}

// Validate checks the shares sum to 100 and none is negative.
func (m Mix) Validate() error {
	sum := 0
	for _, v := range []int{m.Create, m.Read, m.Update, m.Delete, m.Query} {
		if v < 0 {
			return fmt.Errorf("mix %q: negative share", m.Name)
		}
		sum += v
	}
	if sum != 100 {
		return fmt.Errorf("mix %q: shares sum to %d, want 100", m.Name, sum)
	}
	return nil
}

// Spec renders the mix as a compact c/r/u/d/q string for JSON output.
func (m Mix) Spec() string {
	return fmt.Sprintf("c%d/r%d/u%d/d%d/q%d", m.Create, m.Read, m.Update, m.Delete, m.Query)
}

// Deck expands the mix into a shuffled 100-slot operation deck; workers
// cycle through it so long runs converge to the exact percentages while
// short runs still interleave kinds.
func (m Mix) Deck(rng *rand.Rand) []OpKind {
	deck := make([]OpKind, 0, 100)
	shares := [numOpKinds]int{OpCreate: m.Create, OpRead: m.Read, OpUpdate: m.Update, OpDelete: m.Delete, OpQuery: m.Query}
	for kind, share := range shares {
		for i := 0; i < share; i++ {
			deck = append(deck, OpKind(kind))
		}
	}
	rng.Shuffle(len(deck), func(i, j int) { deck[i], deck[j] = deck[j], deck[i] })
	return deck
}

// OLTP is the transaction-processing preset: 90% point reads, 10%
// inserts (SNIPPETS Snippet 2 shape).
func OLTP() Mix { return Mix{Name: "oltp", Create: 10, Read: 90} }

// OLAP is the ingest-heavy preset: 10% point reads, 90% inserts.
func OLAP() Mix { return Mix{Name: "olap", Create: 90, Read: 10} }

// Reporting is the range-scan preset: dominated by subtree SEARCHes
// (many over spaced base DNs), with a trickle of writes to keep the
// instance moving under the scans.
func Reporting() Mix {
	return Mix{Name: "reporting", Create: 5, Read: 10, Query: 80, Update: 3, Delete: 2}
}

// Churn exercises every operation class, including the restructuring
// MOVEs and subtree DELETEs that stress Theorem 4.1 normalization.
func Churn() Mix { return Mix{Name: "churn", Create: 30, Read: 30, Update: 15, Delete: 10, Query: 15} }

// Presets returns the named mixes bsload exposes.
func Presets() []Mix { return []Mix{OLTP(), OLAP(), Reporting(), Churn()} }

// PresetByName resolves a preset name; ok is false for unknown names.
func PresetByName(name string) (Mix, bool) {
	for _, m := range Presets() {
		if m.Name == name {
			return m, true
		}
	}
	return Mix{}, false
}

package loadgen

import (
	"testing"
	"time"
)

// TestShardClusterLoad runs plain churn through the router over a
// carved cluster and ends with the sharded oracle — the router is a
// drop-in load target: same protocol, same client, same taxonomy.
func TestShardClusterLoad(t *testing.T) {
	sc, _ := ScenarioByName("whitepages")
	cl, err := StartShardCluster(sc, 300, 2, 7)
	if err != nil {
		t.Fatalf("StartShardCluster: %v", err)
	}
	defer cl.Close()
	if len(cl.Shards) < 3 {
		t.Fatalf("want at least 2 carved shards + default, got %d nodes", len(cl.Shards))
	}
	res, err := Run(Options{
		Scenario: sc, Pools: cl.Pools, Mix: Churn(),
		Workers: 4, Duration: 1200 * time.Millisecond, Seed: 7,
		CorpusEntries: cl.CorpusEntries, Cluster: "router+shards",
	}, NewTarget(cl.Addr))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Committed == 0 {
		t.Fatal("no transaction committed through the router")
	}
	// Churn moves entries between corpus parents; some straddle the cut
	// and must come back as cross_shard refusals, never as half-applied
	// state (the oracle below would catch that).
	for label, n := range res.Errors {
		switch label {
		case ErrCrossShard, ErrIllegal, ErrNotFound:
			// expected under churn against a carved map
		default:
			t.Errorf("unexpected error class %s=%d", label, n)
		}
	}
	if err := cl.Oracle(); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

// TestChaosShardCrash kills a carved shard mid-load and requires
// recovery plus the full sharded oracle.
func TestChaosShardCrash(t *testing.T) {
	cfg := chaosConfig(t, "netpolicy")
	rep, err := ShardCrash(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rep.Notes {
		t.Log(n)
	}
	if rep.Load.Errors[ErrWrongShard] > 0 {
		t.Errorf("wrong_shard errors on a map with a default shard: %d", rep.Load.Errors[ErrWrongShard])
	}
}

package loadgen

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/ldif"
	"boundschema/internal/txn"
)

// Differential testing of the generated workloads: the exact wire
// batches the load workers emit are replayed through the incremental
// applier (configured like the server), and the instance is run through
// all three legality engines — sequential, parallel, naive — at regular
// intervals. Hand-built illegal mutants then pin the rejection side:
// the applier must refuse them leaving the instance byte-identical, and
// a directly-mutated copy must be judged illegal with all engines in
// agreement.

// parseTx converts wire transaction lines (the Op.Tx format the sources
// emit) into a txn.Transaction, mirroring the server's handleTx parser.
func parseTx(schema *core.Schema, lines []string) (*txn.Transaction, error) {
	t := &txn.Transaction{}
	var pendingDN string
	var pendingClasses []string
	var pendingAttrs map[string][]dirtree.Value
	flush := func() {
		if pendingDN != "" {
			t.Add(pendingDN, pendingClasses, pendingAttrs)
			pendingDN, pendingClasses, pendingAttrs = "", nil, nil
		}
	}
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "ADD "):
			flush()
			pendingDN = strings.TrimSpace(line[len("ADD "):])
			pendingClasses = nil
			pendingAttrs = make(map[string][]dirtree.Value)
		case strings.HasPrefix(line, "DELETE "):
			flush()
			t.Delete(strings.TrimSpace(line[len("DELETE "):]))
		case strings.HasPrefix(line, "MOVE "):
			flush()
			dn, dest, ok := strings.Cut(strings.TrimSpace(line[len("MOVE "):]), " -> ")
			if !ok {
				return nil, fmt.Errorf("malformed MOVE %q", line)
			}
			t.Move(strings.TrimSpace(dn), strings.TrimSpace(dest))
		default:
			name, value, ok := strings.Cut(line, ":")
			if !ok || pendingDN == "" {
				return nil, fmt.Errorf("unexpected tx line %q", line)
			}
			name, value = strings.TrimSpace(name), strings.TrimSpace(value)
			if name == dirtree.AttrObjectClass {
				pendingClasses = append(pendingClasses, value)
				continue
			}
			v, err := dirtree.ParseValue(schema.Registry.Type(name), value)
			if err != nil {
				return nil, err
			}
			pendingAttrs[name] = append(pendingAttrs[name], v)
		}
	}
	flush()
	return t, nil
}

// serverApplier mirrors the server's applier configuration (incremental
// Figure 5 checks, count index, narrowed deletes).
func serverApplier(schema *core.Schema, d *dirtree.Directory) *txn.Applier {
	a := txn.NewApplier(schema)
	a.Counts = txn.NewCountIndex(d)
	a.NarrowDeletes = true
	return a
}

func ldifBytes(t *testing.T, d *dirtree.Directory) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ldif.WriteDirectory(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWorkloadBatchesDifferentialEngines replays generated worker
// batches through the incremental applier and cross-checks the evolving
// instance with DiffEngines every few batches: any divergence between
// the sequential, parallel, and naive engines on workload-shaped
// instances is a bug in one of them.
func TestWorkloadBatchesDifferentialEngines(t *testing.T) {
	batchesPerWorker := 60
	if full() {
		batchesPerWorker = 400
	}
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			schema := sc.NewSchema()
			rng := rand.New(rand.NewSource(5))
			d := sc.NewCorpus(schema, rng, 300)
			pools := sc.ExtractPools(d)
			applier := serverApplier(schema, d)
			mix := Churn()
			applied := 0
			for w := 0; w < 2; w++ {
				wrng := rand.New(rand.NewSource(int64(100 + w)))
				src := sc.newSource(pools, w, wrng)
				deck := mix.Deck(wrng)
				for i := 0; i < batchesPerWorker; i++ {
					op, ok := src.Op(deck[i%len(deck)])
					if !ok {
						op, _ = src.Op(OpCreate)
					}
					if op.Cmd != "" {
						continue // reads don't mutate
					}
					tx, err := parseTx(schema, op.Tx)
					if err != nil {
						t.Fatalf("batch %v: %v", op.Tx, err)
					}
					report, err := applier.Apply(d, tx)
					if err != nil {
						t.Fatalf("apply %v: %v", op.Tx, err)
					}
					if !report.Legal() {
						t.Fatalf("generated batch rejected:\n%v\n%s", op.Tx, report)
					}
					if op.Applied != nil {
						op.Applied(true)
					}
					applied++
					if applied%25 == 0 {
						if err := core.DiffEngines(schema, d, 2, 4); err != nil {
							t.Fatalf("engine divergence after %d batches: %v", applied, err)
						}
					}
				}
			}
			if applied == 0 {
				t.Fatal("no batches applied")
			}
			if err := core.DiffEngines(schema, d, 2, 4); err != nil {
				t.Fatalf("final engine divergence: %v", err)
			}
			if r := core.NewChecker(schema).Check(d); !r.Legal() {
				t.Fatalf("final instance illegal after %d committed batches:\n%s", applied, r)
			}
		})
	}
}

// TestIllegalMutantsRejectedIdentically pins the reject side: for each
// scenario a set of hand-built schema-violating batches must (a) be
// refused by the server-configured applier with the instance rolled
// back byte-identically, and (b) when forced into a copy unchecked,
// yield an instance that all three engines agree is illegal.
func TestIllegalMutantsRejectedIdentically(t *testing.T) {
	nameAttr := func(v string) map[string][]dirtree.Value {
		return map[string][]dirtree.Value{"name": {dirtree.String(v)}}
	}
	type mutant struct {
		name  string
		build func(t *testing.T, d *dirtree.Directory, p *Pools) *txn.Transaction
	}
	mutants := map[string][]mutant{
		"whitepages": {
			{"child under person", func(t *testing.T, d *dirtree.Directory, p *Pools) *txn.Transaction {
				// person →ch ⊤ is forbidden: no person may have children.
				tx := &txn.Transaction{}
				tx.Add("ou=bad,"+p.Reads[0], []string{"orgUnit", "orgGroup", "top"}, nil)
				return tx
			}},
			{"person without organization ancestor", func(t *testing.T, d *dirtree.Directory, p *Pools) *txn.Transaction {
				tx := &txn.Transaction{}
				tx.Add("uid=stray", []string{"person", "top"}, nameAttr("stray"))
				return tx
			}},
		},
		"netpolicy": {
			{"person under subnet", func(t *testing.T, d *dirtree.Directory, p *Pools) *txn.Transaction {
				// netElement →de person is forbidden; subnets are netElements.
				tx := &txn.Transaction{}
				tx.Add("cn=intruder,"+p.Parents[0], []string{"person", "top"}, nameAttr("intruder"))
				return tx
			}},
			{"adminDomain under adminDomain", func(t *testing.T, d *dirtree.Directory, p *Pools) *txn.Transaction {
				// Every subnet lives under the o=backbone adminDomain, so a
				// nested adminDomain violates adminDomain →de adminDomain.
				tx := &txn.Transaction{}
				tx.Add("ou=inner,"+p.Parents[0], []string{"adminDomain", "top"}, nameAttr("inner"))
				return tx
			}},
		},
		"semistructured": {
			{"person without name descendant", func(t *testing.T, d *dirtree.Directory, p *Pools) *txn.Transaction {
				tx := &txn.Transaction{}
				tx.Add("uid=bare,"+p.Parents[0], []string{"person", "top"}, nil)
				return tx
			}},
			{"country under country", func(t *testing.T, d *dirtree.Directory, p *Pools) *txn.Transaction {
				var under string
				for _, dn := range p.Parents {
					if strings.HasSuffix(dn, ",c=world") {
						under = dn
						break
					}
				}
				if under == "" {
					t.Fatal("no corporation under c=world in the pools")
				}
				tx := &txn.Transaction{}
				tx.Add("c=bad,"+under, []string{"country", "top"}, nil)
				return tx
			}},
		},
	}
	for _, sc := range Scenarios() {
		for _, m := range mutants[sc.Name] {
			t.Run(sc.Name+"/"+m.name, func(t *testing.T) {
				schema := sc.NewSchema()
				rng := rand.New(rand.NewSource(5))
				d := sc.NewCorpus(schema, rng, 300)
				pools := sc.ExtractPools(d)
				tx := m.build(t, d, pools)

				// (a) The guarded applier refuses and rolls back exactly.
				before := ldifBytes(t, d)
				applier := serverApplier(schema, d)
				report, err := applier.Apply(d, tx)
				if err != nil {
					t.Fatalf("mutant errored instead of reporting violations: %v", err)
				}
				if report.Legal() {
					t.Fatal("schema-violating mutant was accepted")
				}
				if after := ldifBytes(t, d); !bytes.Equal(before, after) {
					t.Fatal("rejected mutant left the instance changed")
				}

				// (b) Forced in unchecked, all three engines agree: illegal,
				// with identical witnesses (DiffEngines errors on divergence).
				forced := d.Clone()
				unchecked := txn.NewApplier(schema)
				unchecked.Mode = txn.CheckNone
				if _, err := unchecked.Apply(forced, tx); err != nil {
					t.Fatalf("unchecked apply: %v", err)
				}
				if r := core.NewChecker(schema).Check(forced); r.Legal() {
					t.Fatal("forced mutant instance judged legal")
				}
				if err := core.DiffEngines(schema, forced, 2, 4); err != nil {
					t.Fatalf("engines diverge on the mutant instance: %v", err)
				}
			})
		}
	}
}

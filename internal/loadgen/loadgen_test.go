package loadgen

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"boundschema/internal/repl"
)

// full reports whether the nightly/manual matrix is enabled
// (LOADGEN_FULL=1); the default sizes keep the suite CI-fast.
func full() bool { return os.Getenv("LOADGEN_FULL") != "" }

func corpusSize(t *testing.T) int {
	if full() {
		return 10000
	}
	return 400
}

func TestMixPresetsValidAndDeckExact(t *testing.T) {
	for _, m := range Presets() {
		if err := m.Validate(); err != nil {
			t.Errorf("%v", err)
		}
		deck := m.Deck(rand.New(rand.NewSource(1)))
		if len(deck) != 100 {
			t.Fatalf("mix %s: deck has %d slots", m.Name, len(deck))
		}
		counts := map[OpKind]int{}
		for _, k := range deck {
			counts[k]++
		}
		want := map[OpKind]int{OpCreate: m.Create, OpRead: m.Read, OpUpdate: m.Update, OpDelete: m.Delete, OpQuery: m.Query}
		for k, n := range want {
			if counts[k] != n {
				t.Errorf("mix %s: %s share = %d, want %d", m.Name, k, counts[k], n)
			}
		}
	}
	if err := (Mix{Name: "bad", Create: 50}).Validate(); err == nil {
		t.Error("mix summing to 50 validated")
	}
}

// TestSingleNodeAllScenariosAllPresets is the tentpole smoke: every
// scenario × every preset against a journaled single node, with the
// infer-nothing property (nothing the generators produce may come back
// ILLEGAL) and the full convergence oracle at the end.
func TestSingleNodeAllScenariosAllPresets(t *testing.T) {
	ops := 40
	if full() {
		ops = 400
	}
	for _, sc := range Scenarios() {
		for _, mix := range Presets() {
			t.Run(sc.Name+"/"+mix.Name, func(t *testing.T) {
				cl, err := StartSingle(sc, corpusSize(t), 1)
				if err != nil {
					t.Fatal(err)
				}
				defer cl.Close()
				res, err := Run(Options{
					Scenario: sc, Pools: cl.Pools, Mix: mix,
					Workers: 4, OpsPerWorker: ops, Seed: 42,
					CorpusEntries: cl.CorpusEntries, Cluster: "single",
				}, cl.Target())
				if err != nil {
					t.Fatal(err)
				}
				if res.Errors[ErrIllegal] > 0 {
					t.Fatalf("generator produced %d ILLEGAL batches — schema-respecting ops must never be rejected", res.Errors[ErrIllegal])
				}
				if n := res.Errors[ErrOther]; n > 0 {
					t.Fatalf("%d unclassified ERR replies under load", n)
				}
				if mix.Create > 0 && res.Committed == 0 {
					t.Fatal("write mix committed nothing")
				}
				if mix.Read > 0 && res.PerOp["read"].Count == 0 {
					t.Fatal("read mix recorded no read latencies")
				}
				if res.TotalOps != 4*ops {
					t.Errorf("total ops = %d, want %d", res.TotalOps, 4*ops)
				}
				if err := Oracle(cl.Schema, cl.Nodes()); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestConsecutiveRunsDisjointNamespaces pins the bench-suite bug the
// key index exposed: back-to-back runs against one live node must use
// disjoint worker-id ranges (Options.FirstWorker), or run 2's worker 0
// re-creates run 1's DNs and — on the keyed netpolicy schema —
// re-issues its ipAddress values, which the server now rejects.
func TestConsecutiveRunsDisjointNamespaces(t *testing.T) {
	sc, _ := ScenarioByName("netpolicy")
	cl, err := StartSingle(sc, corpusSize(t), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for run := 0; run < 3; run++ {
		res, err := Run(Options{
			Scenario: sc, Pools: cl.Pools, Mix: OLAP(),
			Workers: 3, OpsPerWorker: 40, Seed: 5,
			FirstWorker:   run * 100,
			CorpusEntries: cl.CorpusEntries, Cluster: "single",
		}, cl.Target())
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Errors[ErrIllegal] + res.Errors[ErrOther]; n > 0 {
			t.Fatalf("run %d: %d collision errors %v — worker namespaces overlap", run, n, res.Errors)
		}
		if res.Committed == 0 {
			t.Fatalf("run %d committed nothing", run)
		}
	}
	if err := Oracle(cl.Schema, cl.Nodes()); err != nil {
		t.Fatal(err)
	}
}

// TestClusterOLTPReplicaReads drives OLTP against a 1-primary/2-replica
// cluster: writes to the primary, reads served by the replicas, then
// convergence and the byte-identity oracle across all three nodes.
func TestClusterOLTPReplicaReads(t *testing.T) {
	sc, _ := ScenarioByName("whitepages")
	cl, err := StartCluster(sc, corpusSize(t), 2, 7, repl.SemiSync)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := Run(Options{
		Scenario: sc, Pools: cl.Pools, Mix: OLTP(),
		Workers: 4, OpsPerWorker: 50, Seed: 9,
		CorpusEntries: cl.CorpusEntries, Cluster: "1p+2r",
	}, cl.Target())
	if err != nil {
		t.Fatal(err)
	}
	// Reads go to replicas, writes to the primary: a healthy cluster
	// never redirects.
	if res.Errors[ErrRedirect] > 0 {
		t.Errorf("%d redirects in a stable cluster", res.Errors[ErrRedirect])
	}
	if res.Errors[ErrIllegal] > 0 {
		t.Errorf("%d illegal batches", res.Errors[ErrIllegal])
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if err := Converge(cl.Nodes(), 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := Oracle(cl.Schema, cl.Nodes()); err != nil {
		t.Fatal(err)
	}
	if res.Server["COMMIT"].Count == 0 {
		t.Error("METRICS scrape saw no COMMIT commands on the primary")
	}
}

// TestRedirectAdvertisesClientAddr pins the bug the harness found: a
// replica's write redirect must advertise the primary's CLIENT address
// (dialable, speaks the protocol), not its replication listener.
func TestRedirectAdvertisesClientAddr(t *testing.T) {
	sc, _ := ScenarioByName("whitepages")
	cl, err := StartCluster(sc, 100, 1, 3, repl.Async)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c, err := Dial(cl.Replicas[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Do("BEGIN")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Term != "ERR" {
		t.Fatalf("BEGIN on a replica: %q, want ERR", resp.Term)
	}
	addr := RedirectAddr(resp.Err)
	if addr != cl.Primary.Addr {
		t.Fatalf("redirect advertises %q, want the primary client addr %q (repl addr is %q)",
			addr, cl.Primary.Addr, cl.Primary.ReplAddr)
	}
	// Following the redirect must land on a server that accepts the write.
	p, err := Dial(addr)
	if err != nil {
		t.Fatalf("advertised primary not dialable: %v", err)
	}
	defer p.Close()
	if resp, err := p.Do("BEGIN"); err != nil || !resp.OK() {
		t.Fatalf("BEGIN on advertised primary: %v %v", resp, err)
	}
	if resp, err := p.Do("ABORT"); err != nil || !resp.OK() {
		t.Fatalf("ABORT on advertised primary: %v %v", resp, err)
	}
}

package loadgen

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"boundschema/internal/repl"
)

// TestPromotionRaceSpacedSearchAndRedirects is the regression test for
// the two protocol bugs the load harness hunted: it hammers a replica
// with BEGIN..COMMIT transactions and SEARCHes over spaced base DNs
// while the node is being PROMOTEd, and requires that (a) every reply
// frames correctly (the clients never desync, which is what the
// single-line ERR grammar guarantees), (b) every pre-promotion redirect
// advertises the primary's dialable CLIENT address, and (c) spaced base
// DNs parse identically before, during, and after the role flip.
func TestPromotionRaceSpacedSearchAndRedirects(t *testing.T) {
	sc, _ := ScenarioByName("netpolicy") // every 4th subnet has a spaced RDN
	cl, err := StartCluster(sc, 400, 1, 13, repl.Async)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	r := cl.Replicas[0]

	var spaced []string
	for _, dn := range cl.Pools.Bases {
		if strings.Contains(dn, " ") {
			spaced = append(spaced, dn)
		}
	}
	if len(spaced) == 0 {
		t.Fatal("netpolicy corpus produced no spaced base DNs")
	}

	const hammerers = 6
	const maxOps = 5000 // safety cap; workers normally stop a few commits after the flip
	var wg sync.WaitGroup
	errc := make(chan error, hammerers)
	var mu sync.Mutex
	var redirects, commits, readOnly int
	var promoted atomic.Bool

	for w := 0; w < hammerers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var c *Client
			myCommits := 0
			defer func() {
				if c != nil {
					c.Close()
				}
			}()
			for i := 0; i < maxOps; i++ {
				// Keep hammering through the flip, then land a few writes on
				// the promoted node before stopping.
				if promoted.Load() && myCommits >= 3 {
					return
				}
				if c == nil {
					var err error
					if c, err = Dial(r.Addr); err != nil {
						return // replica listener may drop conns mid-flip
					}
				}
				if i%2 == 0 {
					// Spaced base: the whole tail after base= is the DN.
					base := spaced[(w+i)%len(spaced)]
					resp, err := c.Do("SEARCH (objectClass=host) base=" + base)
					if err != nil {
						c.Close()
						c = nil
						continue
					}
					if !resp.OK() {
						errc <- &searchErr{base: base, term: resp.Term, msg: resp.Err}
						return
					}
					if len(resp.Lines) == 0 {
						errc <- &searchErr{base: base, term: "OK", msg: "no hosts under a subnet base"}
						return
					}
					continue
				}
				host := "cn=race" + strconv.Itoa(w) + "h" + strconv.Itoa(i) + ","
				resp, err := c.Txn([]string{
					"ADD " + host + spaced[w%len(spaced)],
					"objectClass: host", "objectClass: netElement", "objectClass: top",
					"ipAddress: 10.250." + strconv.Itoa(w) + "." + strconv.Itoa(i),
				})
				if err != nil {
					c.Close()
					c = nil
					continue
				}
				switch cls := classify(resp, nil); cls {
				case "":
					myCommits++
					mu.Lock()
					commits++
					mu.Unlock()
				case ErrRedirect:
					addr := RedirectAddr(resp.Err)
					if addr != cl.Primary.Addr {
						errc <- &searchErr{base: "redirect", term: resp.Term,
							msg: "advertised " + addr + ", want client addr " + cl.Primary.Addr}
						return
					}
					mu.Lock()
					redirects++
					mu.Unlock()
				case ErrIllegal:
					errc <- &searchErr{base: "txn", term: "ILLEGAL", msg: strings.Join(resp.Lines, " / ")}
					return
				case ErrReadOnly:
					mu.Lock()
					readOnly++
					mu.Unlock()
				case ErrShutdown, ErrNotFound, ErrOther:
					errc <- &searchErr{base: "txn", term: resp.Term, msg: resp.Err}
					return
				}
			}
		}(w)
	}

	// Flip the role mid-hammer: a short head start guarantees some
	// pre-flip writes observe the redirect path.
	time.Sleep(30 * time.Millisecond)
	if err := promote(r.Addr, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	promoted.Store(true)
	wg.Wait()
	close(errc)
	for e := range errc {
		t.Error(e)
	}
	if redirects == 0 {
		t.Error("no pre-promotion write was redirected (promotion won before any write; rerun with more load)")
	}
	if commits == 0 {
		t.Error("no post-promotion write committed")
	}
	t.Logf("race: %d redirects, %d commits, %d read-only refusals", redirects, commits, readOnly)

	// The promoted node must still serve a legal, verifiable instance.
	if err := Oracle(cl.Schema, []*Node{r}); err != nil {
		t.Fatal(err)
	}
}

type searchErr struct{ base, term, msg string }

func (e *searchErr) Error() string {
	return "during promotion: " + e.base + ": " + e.term + " " + e.msg
}

package loadgen

import (
	"bufio"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/ldif"
	"boundschema/internal/repl"
	"boundschema/internal/server"
	"boundschema/internal/vfs"
)

// journalPath is each node's journal file on its own in-memory FS.
const journalPath = "journal.ldif"

// Node is one in-process server: its own schema and corpus copy, its
// own fault-injectable FS, real TCP listeners. Chaos scenarios reach
// into FS to script faults and into Srv to kill or promote.
type Node struct {
	Name     string
	Srv      *server.Server
	FS       *vfs.Fault
	Addr     string // client protocol address
	ReplAddr string // replication listener (primary only)
}

// Cluster is a single node or a primary with N streaming replicas, all
// in-process, seeded with byte-identical corpora (same generator, same
// seed). It exists so load tests and chaos scenarios can pull the plug
// on real servers without leaving the test process.
type Cluster struct {
	Scenario      *Scenario
	Schema        *core.Schema // the primary's schema, for oracle-side checking
	Pools         *Pools
	Primary       *Node
	Replicas      []*Node
	CorpusEntries int

	corpusN int
	seed    int64
	mode    repl.Mode
	tune    []func(*server.Server) // pre-OpenJournal hooks, re-applied on restart
}

// StartSingle boots a journaled single node. The optional tune hooks
// run on every server after construction but before OpenJournal, the
// window where pre-journal knobs (group commit, sync delay) latch —
// bsbench e22 uses them for its slow-disk emulation.
func StartSingle(sc *Scenario, corpusN int, seed int64, tune ...func(*server.Server)) (*Cluster, error) {
	return StartCluster(sc, corpusN, 0, seed, repl.Async, tune...)
}

// StartCluster boots a primary and nReplicas streaming replicas.
func StartCluster(sc *Scenario, corpusN, nReplicas int, seed int64, mode repl.Mode, tune ...func(*server.Server)) (*Cluster, error) {
	c := &Cluster{Scenario: sc, corpusN: corpusN, seed: seed, mode: mode, tune: tune}
	p, schema, dir, err := c.newNode("primary")
	if err != nil {
		return nil, err
	}
	c.Schema = schema
	c.Pools = sc.ExtractPools(dir)
	c.CorpusEntries = dir.Len()
	c.Primary = p
	p.Srv.SetReplicationMode(mode)
	p.Srv.SetSemiSyncTimeout(2 * time.Second)
	if nReplicas > 0 {
		if p.ReplAddr, err = p.Srv.ListenRepl("127.0.0.1:0"); err != nil {
			c.Close()
			return nil, err
		}
	}
	if p.Addr, err = p.Srv.Listen("127.0.0.1:0"); err != nil {
		c.Close()
		return nil, err
	}
	for i := 0; i < nReplicas; i++ {
		if _, err := c.AddReplica(fmt.Sprintf("replica%d", i), p.ReplAddr, p.Addr); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// AddReplica boots a fresh replica streaming from replAddr and
// advertising primaryClientAddr in its write redirects. Chaos scenarios
// use it post-failover to hang a new replica off the promoted primary.
func (c *Cluster) AddReplica(name, replAddr, primaryClientAddr string) (*Node, error) {
	n, _, _, err := c.newNode(name)
	if err != nil {
		return nil, err
	}
	if err := n.Srv.StartReplica(replAddr); err != nil {
		n.Srv.Close()
		return nil, err
	}
	n.Srv.SetPrimaryClientAddr(primaryClientAddr)
	if n.Addr, err = n.Srv.Listen("127.0.0.1:0"); err != nil {
		n.Srv.Close()
		return nil, err
	}
	c.Replicas = append(c.Replicas, n)
	return n, nil
}

// newNode builds a journaled, not-yet-listening server with this
// cluster's deterministic corpus. Every node re-generates the corpus
// from the same seed, so all nodes start byte-identical — the premise
// of the convergence oracle.
func (c *Cluster) newNode(name string) (*Node, *core.Schema, *dirtree.Directory, error) {
	schema := c.Scenario.NewSchema()
	dir := c.Scenario.NewCorpus(schema, rand.New(rand.NewSource(c.seed)), c.corpusN)
	srv, err := server.New(schema, c.Scenario.Name, dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, f := range c.tune {
		f(srv)
	}
	fs := vfs.NewFault()
	srv.SetFS(fs)
	if err := srv.OpenJournal(journalPath); err != nil {
		srv.Close()
		return nil, nil, nil, err
	}
	return &Node{Name: name, Srv: srv, FS: fs}, schema, dir, nil
}

// RestartNode builds a fresh server over a node's surviving FS — the
// crash-recovery path: the caller pulls the plug (fs.Recover() drops
// volatile state), and this re-runs the full recovery pipeline
// (OpenJournal) over the durable journal on top of the deterministic
// seed corpus, exactly as a restarted bsd would.
func (c *Cluster) RestartNode(name string, fs *vfs.Fault) (*Node, *core.Schema, error) {
	schema := c.Scenario.NewSchema()
	dir := c.Scenario.NewCorpus(schema, rand.New(rand.NewSource(c.seed)), c.corpusN)
	srv, err := server.New(schema, c.Scenario.Name, dir)
	if err != nil {
		return nil, nil, err
	}
	for _, f := range c.tune {
		f(srv)
	}
	srv.SetFS(fs)
	if err := srv.OpenJournal(journalPath); err != nil {
		srv.Close()
		return nil, nil, fmt.Errorf("recovery: %v", err)
	}
	n := &Node{Name: name, Srv: srv, FS: fs}
	if n.Addr, err = srv.Listen("127.0.0.1:0"); err != nil {
		srv.Close()
		return nil, nil, err
	}
	return n, schema, nil
}

// Target builds the address book for a load run: writes to the primary,
// reads spread over the replicas (or the primary when there are none).
func (c *Cluster) Target() *Target {
	var reads []string
	for _, r := range c.Replicas {
		reads = append(reads, r.Addr)
	}
	return NewTarget(c.Primary.Addr, reads...)
}

// Nodes returns every node, primary first.
func (c *Cluster) Nodes() []*Node {
	return append([]*Node{c.Primary}, c.Replicas...)
}

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, n := range c.Nodes() {
		if n != nil {
			n.Srv.Close()
		}
	}
}

// seqOf is a node's highest locally committed sequence.
func seqOf(n *Node) uint64 {
	local, _ := n.Srv.ReplicaSeqs()
	return local
}

// AwaitSeq polls until the node holds sequence want (replicas converge
// asynchronously even after semi-sync OKs — the ACK is durability, the
// apply is what the reads see).
func AwaitSeq(n *Node, want uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if seqOf(n) >= want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("node %s stuck at seq %d, want %d", n.Name, seqOf(n), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// Converge waits until every listed node reaches the first node's
// sequence. Call it only after write traffic has stopped.
func Converge(nodes []*Node, timeout time.Duration) error {
	want := seqOf(nodes[0])
	for _, n := range nodes[1:] {
		if err := AwaitSeq(n, want, timeout); err != nil {
			return err
		}
	}
	return nil
}

// Oracle is the end-of-scenario convergence check over the surviving
// nodes:
//
//  1. every node's served instance is byte-identical LDIF to the
//     first's (replication converged to the same state, not just the
//     same sequence number);
//  2. every node passes VERIFY over the wire (on-disk journal checksums
//     and sequence continuity, plus the incremental engine's view of
//     legality);
//  3. the instance re-parsed from LDIF is legal under the full
//     non-incremental engines, which must also agree among themselves
//     (core.DiffEngines: sequential, parallel, naive) — so a bug in the
//     incremental Fig 5 path cannot vouch for itself.
func Oracle(schema *core.Schema, nodes []*Node) error {
	if len(nodes) == 0 {
		return fmt.Errorf("oracle: no surviving nodes")
	}
	var ref string
	for i, n := range nodes {
		ld, err := nodeLDIF(n)
		if err != nil {
			return fmt.Errorf("oracle: snapshot %s: %v", n.Name, err)
		}
		if i == 0 {
			ref = ld
		} else if ld != ref {
			return fmt.Errorf("oracle: %s and %s serve different instances (%d vs %d bytes)",
				nodes[0].Name, n.Name, len(ref), len(ld))
		}
	}
	for _, n := range nodes {
		c, err := Dial(n.Addr)
		if err != nil {
			return fmt.Errorf("oracle: dial %s: %v", n.Name, err)
		}
		resp, err := c.Do("VERIFY")
		c.Close()
		if err != nil {
			return fmt.Errorf("oracle: VERIFY %s: %v", n.Name, err)
		}
		if !resp.OK() {
			return fmt.Errorf("oracle: VERIFY %s failed: %s %s\n%s", n.Name, resp.Term, resp.Err, strings.Join(resp.Lines, "\n"))
		}
	}
	d, err := ldif.ReadDirectory(strings.NewReader(ref), schema.Registry)
	if err != nil {
		return fmt.Errorf("oracle: re-parse snapshot: %v", err)
	}
	if r := core.NewChecker(schema).Check(d); !r.Legal() {
		return fmt.Errorf("oracle: converged instance illegal under the full engine:\n%s", r)
	}
	if err := core.DiffEngines(schema, d, 2, 4); err != nil {
		return fmt.Errorf("oracle: %v", err)
	}
	return nil
}

// nodeLDIF renders a node's served instance.
func nodeLDIF(n *Node) (string, error) {
	var sb strings.Builder
	w := bufio.NewWriter(&sb)
	if err := n.Srv.Snapshot(w); err != nil {
		return "", err
	}
	w.Flush()
	return sb.String(), nil
}

package loadgen

import (
	"fmt"
	"math/rand"
	"strings"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/workload"
)

// Scenario binds a bounding-schema, its corpus generator, and a
// per-worker source of schema-respecting wire operations. The three
// scenarios span structurally distinct schemas (the "Simple Schemas for
// Unordered XML" motivation: legality cost depends on schema shape, not
// just instance size): whitepages is requirement-heavy, netpolicy adds
// an instance-wide key and leaf constraints, semistructured has deep
// unbounded-depth requirements and a forbidden nesting.
type Scenario struct {
	Name      string
	NewSchema func() *core.Schema
	NewCorpus func(s *core.Schema, rng *rand.Rand, n int) *dirtree.Directory
	newSource func(p *Pools, worker int, rng *rand.Rand) OpSource
}

// Scenarios returns the three example scenarios.
func Scenarios() []*Scenario {
	return []*Scenario{
		{Name: "whitepages", NewSchema: workload.WhitePagesSchema, NewCorpus: workload.Corpus,
			newSource: func(p *Pools, w int, rng *rand.Rand) OpSource { return &wpSource{p: p, w: w, rng: rng} }},
		{Name: "netpolicy", NewSchema: workload.NetPolicySchema, NewCorpus: workload.NetPolicyCorpus,
			newSource: func(p *Pools, w int, rng *rand.Rand) OpSource { return &npSource{p: p, w: w, rng: rng} }},
		{Name: "semistructured", NewSchema: workload.SemiStructSchema, NewCorpus: workload.SemiStructCorpus,
			newSource: func(p *Pools, w int, rng *rand.Rand) OpSource { return &ssSource{p: p, w: w, rng: rng} }},
	}
}

// ScenarioByName resolves a scenario; ok is false for unknown names.
func ScenarioByName(name string) (*Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return nil, false
}

// Pools are DN samples extracted from the seed corpus before the server
// starts mutating it. Workers only delete and move entries they created
// themselves, so every pooled DN stays valid for the whole run — the
// corpus-seeded entries are what keeps existential bounds (orgGroup →de
// person, subnet →de host) satisfied while workers churn around them.
type Pools struct {
	Parents []string // create/move targets (orgGroups, subnets, corporations)
	Reads   []string // stable DNs for point reads
	Bases   []string // SEARCH base DNs, spaced ones included
}

const poolCap = 4096 // corpus samples per pool; workers add their own entries on top

// ExtractPools samples the scenario's pools from a seed corpus.
func (sc *Scenario) ExtractPools(d *dirtree.Directory) *Pools {
	var parentClass, readClass string
	switch sc.Name {
	case "whitepages":
		parentClass, readClass = "orgGroup", "person"
	case "netpolicy":
		parentClass, readClass = "subnet", "host"
	case "semistructured":
		parentClass, readClass = "corporation", "person"
	default:
		panic("loadgen: unknown scenario " + sc.Name)
	}
	p := &Pools{}
	for _, e := range d.ClassEntries(parentClass) {
		if len(p.Parents) >= poolCap {
			break
		}
		p.Parents = append(p.Parents, e.DN())
	}
	for _, e := range d.ClassEntries(readClass) {
		if len(p.Reads) >= poolCap {
			break
		}
		p.Reads = append(p.Reads, e.DN())
	}
	// Bases prefer spaced DNs so subtree searches over them are always
	// part of the mix (the spaced-DN protocol path under load).
	for _, dn := range p.Parents {
		if strings.Contains(dn, " ") {
			p.Bases = append(p.Bases, dn)
		}
	}
	if spaced := len(p.Bases); spaced == 0 {
		p.Bases = p.Parents
	} else {
		// Half spaced, half arbitrary.
		for i := 0; i < len(p.Parents) && len(p.Bases) < 2*spaced; i++ {
			p.Bases = append(p.Bases, p.Parents[i])
		}
	}
	if len(p.Parents) == 0 || len(p.Reads) == 0 {
		panic(fmt.Sprintf("loadgen: scenario %s corpus too small for pools", sc.Name))
	}
	return p
}

// Op is one executable operation: either a single command line (reads,
// queries) or a transaction body (creates, updates, deletes). Applied,
// when non-nil, is called with the commit outcome so the source can
// track which of its entries actually exist.
type Op struct {
	Cmd     string
	Tx      []string
	Applied func(ok bool)
}

// OpSource generates operations for one worker. Op returns false when
// the kind is not currently possible (update/delete with nothing owned
// yet); the runner substitutes a create.
type OpSource interface {
	Op(kind OpKind) (Op, bool)
}

// pick returns a uniformly random element.
func pick(rng *rand.Rand, ss []string) string { return ss[rng.Intn(len(ss))] }

// moveOp builds the shared restructure op: move owned[i] under a fresh
// parent from the pool, updating the owned DN on commit. Returns false
// when nothing is owned or the chosen entry already sits there.
func moveOp(owned []string, i int, dest string) (Op, bool) {
	dn := owned[i]
	if strings.HasSuffix(dn, ","+dest) {
		return Op{}, false
	}
	rdn, _, _ := strings.Cut(dn, ",")
	newDN := rdn + "," + dest
	return Op{
		Tx: []string{fmt.Sprintf("MOVE %s -> %s", dn, dest)},
		Applied: func(ok bool) {
			if ok {
				owned[i] = newDN
			}
		},
	}, true
}

// wpSource generates whitepages ops: person inserts under corpus
// orgGroups, moves between groups, deletes of own persons, and scoped
// name/mail searches. Persons are leaves (person ⊀ch ⊤), and every
// corpus group keeps its seeded person, so all generated batches are
// legal by construction — ILLEGAL from the server is a harness finding.
type wpSource struct {
	p     *Pools
	w     int
	rng   *rand.Rand
	seq   int
	owned []string
}

func (s *wpSource) Op(kind OpKind) (Op, bool) {
	switch kind {
	case OpCreate:
		parent := pick(s.rng, s.p.Parents)
		dn := fmt.Sprintf("uid=w%dp%d,%s", s.w, s.seq, parent)
		s.seq++
		lines := []string{"ADD " + dn, "objectClass: person", "objectClass: top"}
		if s.rng.Intn(2) == 0 {
			lines = append(lines, "objectClass: researcher")
		} else {
			lines = append(lines, "objectClass: staffMember")
		}
		lines = append(lines, fmt.Sprintf("name: load person %d", s.seq))
		if s.rng.Intn(3) == 0 {
			lines = append(lines, "objectClass: online", fmt.Sprintf("mail: w%dp%d@example.org", s.w, s.seq))
		}
		return Op{Tx: lines, Applied: func(ok bool) {
			if ok {
				s.owned = append(s.owned, dn)
			}
		}}, true
	case OpRead:
		return Op{Cmd: "GET " + s.readDN()}, true
	case OpUpdate:
		if len(s.owned) == 0 {
			return Op{}, false
		}
		return moveOp(s.owned, s.rng.Intn(len(s.owned)), pick(s.rng, s.p.Parents))
	case OpDelete:
		if len(s.owned) == 0 {
			return Op{}, false
		}
		i := s.rng.Intn(len(s.owned))
		dn := s.owned[i]
		return Op{Tx: []string{"DELETE " + dn}, Applied: func(ok bool) {
			if ok {
				s.owned[i] = s.owned[len(s.owned)-1]
				s.owned = s.owned[:len(s.owned)-1]
			}
		}}, true
	case OpQuery:
		switch s.rng.Intn(4) {
		case 0:
			return Op{Cmd: "SEARCH (name=person*) base=" + pick(s.rng, s.p.Bases)}, true
		case 1:
			return Op{Cmd: "SEARCH (mail=*) base=" + pick(s.rng, s.p.Bases)}, true
		case 2:
			// Truncated scan: base DNs may contain spaces, so this also
			// exercises the trailing-token limit parse.
			return Op{Cmd: fmt.Sprintf("SEARCH (name=person*) base=%s limit=%d",
				pick(s.rng, s.p.Bases), 1+s.rng.Intn(20))}, true
		default:
			return Op{Cmd: fmt.Sprintf("SEARCH (objectClass=orgUnit) base=%s", pick(s.rng, s.p.Bases))}, true
		}
	}
	return Op{}, false
}

func (s *wpSource) readDN() string {
	if len(s.owned) > 0 && s.rng.Intn(2) == 0 {
		return pick(s.rng, s.owned)
	}
	return pick(s.rng, s.p.Reads)
}

// npSource generates netpolicy ops: host inserts with per-worker IP
// namespaces (10.<w+1>.x.y — the corpus uses 10.0.x.y), so the
// instance-wide ipAddress key never collides across workers; moves
// between subnets (each keeps its corpus gateway, so subnet →de host
// holds); and range scans over spaced subnet bases.
type npSource struct {
	p     *Pools
	w     int
	rng   *rand.Rand
	seq   int
	owned []string
}

func (s *npSource) Op(kind OpKind) (Op, bool) {
	switch kind {
	case OpCreate:
		parent := pick(s.rng, s.p.Parents)
		dn := fmt.Sprintf("cn=w%dh%d,%s", s.w, s.seq, parent)
		// First octet 1..249 per worker id: 10.0.x.y belongs to the corpus
		// and 10.250.x.y to hand-written tests, so namespaced worker ids
		// below 249 can never re-issue a live ipAddress key value.
		ip := fmt.Sprintf("10.%d.%d.%d", 1+s.w%249, (s.seq/250)%250, s.seq%250)
		s.seq++
		lines := []string{"ADD " + dn, "objectClass: host", "objectClass: netElement", "objectClass: top",
			"ipAddress: " + ip}
		if s.rng.Intn(3) == 0 {
			lines = append(lines, "objectClass: packetRouter", fmt.Sprintf("bandwidth: %d", 1000*(1+s.rng.Intn(10))))
		}
		return Op{Tx: lines, Applied: func(ok bool) {
			if ok {
				s.owned = append(s.owned, dn)
			}
		}}, true
	case OpRead:
		if len(s.owned) > 0 && s.rng.Intn(2) == 0 {
			return Op{Cmd: "GET " + pick(s.rng, s.owned)}, true
		}
		return Op{Cmd: "GET " + pick(s.rng, s.p.Reads)}, true
	case OpUpdate:
		if len(s.owned) == 0 {
			return Op{}, false
		}
		return moveOp(s.owned, s.rng.Intn(len(s.owned)), pick(s.rng, s.p.Parents))
	case OpDelete:
		if len(s.owned) == 0 {
			return Op{}, false
		}
		i := s.rng.Intn(len(s.owned))
		dn := s.owned[i]
		return Op{Tx: []string{"DELETE " + dn}, Applied: func(ok bool) {
			if ok {
				s.owned[i] = s.owned[len(s.owned)-1]
				s.owned = s.owned[:len(s.owned)-1]
			}
		}}, true
	case OpQuery:
		switch s.rng.Intn(4) {
		case 0:
			return Op{Cmd: "SEARCH (ipAddress=10.*) base=" + pick(s.rng, s.p.Bases)}, true
		case 1:
			return Op{Cmd: "SEARCH (bandwidth>=5000) base=" + pick(s.rng, s.p.Bases)}, true
		case 2:
			// Typed range probe with a cap — the index-range + limit path.
			return Op{Cmd: fmt.Sprintf("SEARCH (bandwidth>=5000) limit=%d", 1+s.rng.Intn(10))}, true
		default:
			return Op{Cmd: "SEARCH (objectClass=policy)"}, true
		}
	}
	return Op{}, false
}

// ssOwned is one worker-created person subtree: its root DN and whether
// the name leaf hangs off an intermediate contact node. The shape is
// what DELETE needs — LDAP deletes must list the whole subtree (the net
// deleted set is closed under descendants, Section 4.1), so the source
// has to remember which descendants it created.
type ssOwned struct {
	dn   string
	deep bool
}

// ssSource generates semistructured ops: whole person subtrees (person
// → name, or person → contact → name) inserted under corporations,
// moved between corporations (the required name descendant travels with
// the subtree), and deleted as closed subtrees — the Theorem 4.1
// normalization shapes. Label searches run over spaced corporation
// bases.
type ssSource struct {
	p     *Pools
	w     int
	rng   *rand.Rand
	seq   int
	owned []ssOwned
}

func (s *ssSource) Op(kind OpKind) (Op, bool) {
	switch kind {
	case OpCreate:
		parent := pick(s.rng, s.p.Parents)
		dn := fmt.Sprintf("uid=w%dp%d,%s", s.w, s.seq, parent)
		label := fmt.Sprintf("label: load person %d.%d", s.w, s.seq)
		deep := s.rng.Intn(2) == 0
		lines := []string{"ADD " + dn, "objectClass: person", "objectClass: top"}
		if deep {
			lines = append(lines,
				fmt.Sprintf("ADD cn=contact,%s", dn), "objectClass: contact", "objectClass: top",
				fmt.Sprintf("ADD cn=name,cn=contact,%s", dn), "objectClass: name", "objectClass: top", label)
		} else {
			lines = append(lines,
				fmt.Sprintf("ADD cn=name,%s", dn), "objectClass: name", "objectClass: top", label)
		}
		s.seq++
		return Op{Tx: lines, Applied: func(ok bool) {
			if ok {
				s.owned = append(s.owned, ssOwned{dn: dn, deep: deep})
			}
		}}, true
	case OpRead:
		if len(s.owned) > 0 && s.rng.Intn(2) == 0 {
			return Op{Cmd: "GET " + s.owned[s.rng.Intn(len(s.owned))].dn}, true
		}
		return Op{Cmd: "GET " + pick(s.rng, s.p.Reads)}, true
	case OpUpdate:
		if len(s.owned) == 0 {
			return Op{}, false
		}
		i := s.rng.Intn(len(s.owned))
		dn, dest := s.owned[i].dn, pick(s.rng, s.p.Parents)
		if strings.HasSuffix(dn, ","+dest) {
			return Op{}, false
		}
		rdn, _, _ := strings.Cut(dn, ",")
		return Op{
			Tx: []string{fmt.Sprintf("MOVE %s -> %s", dn, dest)},
			Applied: func(ok bool) {
				if ok {
					s.owned[i].dn = rdn + "," + dest
				}
			},
		}, true
	case OpDelete:
		if len(s.owned) == 0 {
			return Op{}, false
		}
		i := s.rng.Intn(len(s.owned))
		o := s.owned[i]
		// Leaves first, closed under descendants.
		var lines []string
		if o.deep {
			lines = []string{
				fmt.Sprintf("DELETE cn=name,cn=contact,%s", o.dn),
				fmt.Sprintf("DELETE cn=contact,%s", o.dn),
				"DELETE " + o.dn,
			}
		} else {
			lines = []string{fmt.Sprintf("DELETE cn=name,%s", o.dn), "DELETE " + o.dn}
		}
		return Op{Tx: lines, Applied: func(ok bool) {
			if ok {
				s.owned[i] = s.owned[len(s.owned)-1]
				s.owned = s.owned[:len(s.owned)-1]
			}
		}}, true
	case OpQuery:
		switch s.rng.Intn(3) {
		case 0:
			return Op{Cmd: "SEARCH (label=*) base=" + pick(s.rng, s.p.Bases)}, true
		case 1:
			// Presence probe with a cap — index-present + limit.
			return Op{Cmd: fmt.Sprintf("SEARCH (label=*) limit=%d", 1+s.rng.Intn(5))}, true
		default:
			return Op{Cmd: "SEARCH (objectClass=contact) base=" + pick(s.rng, s.p.Bases)}, true
		}
	}
	return Op{}, false
}

package loadgen

import (
	"fmt"
	"strings"
	"time"

	"boundschema/internal/core"
	"boundschema/internal/ldif"
	"boundschema/internal/repl"
	"boundschema/internal/vfs"
)

// Chaos scenarios: each runs real load against a real cluster, injures
// it mid-run (role flip, disk fault, dropped connections), and ends
// with the convergence oracle. They are plain functions returning a
// report + error so both the -race tests and cmd/bsload can drive them.

// ChaosConfig sizes a chaos run.
type ChaosConfig struct {
	Scenario *Scenario
	CorpusN  int
	Workers  int
	Duration time.Duration
	Seed     int64
}

// ChaosReport is a chaos scenario's outcome: the load result observed
// while the cluster was being injured, plus scenario notes.
type ChaosReport struct {
	Name  string   `json:"name"`
	Load  *Result  `json:"load"`
	Notes []string `json:"notes,omitempty"`
}

// Failover kills the primary of a 1-primary/2-replica cluster mid-load,
// PROMOTEs the first replica over the wire while workers are still
// hammering it (racing the role flip: pre-promotion writes bounce with
// redirects, post-promotion writes succeed), repoints the traffic, and
// finishes the run on the promoted node. The oracle then runs over the
// promoted node plus a fresh replica hung off it — byte identity across
// a full failover — and the orphaned second replica must still serve a
// legal instance.
func Failover(cfg ChaosConfig) (*ChaosReport, error) {
	cl, err := StartCluster(cfg.Scenario, cfg.CorpusN, 2, cfg.Seed, repl.Async)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	r0, r1 := cl.Replicas[0], cl.Replicas[1]
	target := cl.Target()
	opts := Options{
		Scenario: cfg.Scenario, Pools: cl.Pools, Mix: Churn(),
		Workers: cfg.Workers, Duration: cfg.Duration, Seed: cfg.Seed,
		FollowRedirects: true, CorpusEntries: cl.CorpusEntries, Cluster: "1p+2r failover",
	}
	type runOut struct {
		res *Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := Run(opts, target)
		done <- runOut{res, err}
	}()

	time.Sleep(cfg.Duration * 2 / 5)
	cl.Primary.Srv.Close() // pull the plug on the primary mid-load

	// Promote r0 over the wire while workers still race it with writes.
	if err := promote(r0.Addr, 10*time.Second); err != nil {
		<-done
		return nil, fmt.Errorf("failover: %v", err)
	}
	target.SetWrite(r0.Addr)
	target.SetReads(r0.Addr, r1.Addr)
	// Enforce the new topology until the run ends: a worker applying a
	// stale pre-promotion redirect may briefly point the shared target
	// back at the dead primary.
	enforce := time.NewTicker(20 * time.Millisecond)
	defer enforce.Stop()
	var out runOut
	for out.res == nil && out.err == nil {
		select {
		case out = <-done:
		case <-enforce.C:
			target.SetWrite(r0.Addr)
		}
	}
	if out.err != nil {
		return nil, out.err
	}
	if out.res.Committed == 0 {
		return nil, fmt.Errorf("failover: no transaction ever committed")
	}

	// The promoted node opens its own replication listener and a fresh
	// replica catches up from it; both must converge byte-identically.
	replAddr, err := r0.Srv.ListenRepl("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("failover: repl listener on promoted node: %v", err)
	}
	fresh, err := cl.AddReplica("post-failover", replAddr, r0.Addr)
	if err != nil {
		return nil, fmt.Errorf("failover: fresh replica: %v", err)
	}
	if err := Converge([]*Node{r0, fresh}, 30*time.Second); err != nil {
		return nil, fmt.Errorf("failover: %v", err)
	}
	if err := Oracle(cl.Schema, []*Node{r0, fresh}); err != nil {
		return nil, fmt.Errorf("failover: %v", err)
	}
	// The orphan kept streaming from a dead primary; whatever prefix it
	// holds must still be a legal instance.
	if err := legalInstance(cl.Schema, r1); err != nil {
		return nil, fmt.Errorf("failover: orphaned replica: %v", err)
	}
	return &ChaosReport{
		Name: "failover",
		Load: out.res,
		Notes: []string{
			fmt.Sprintf("promoted %s mid-load; %d redirects, %d conn errors observed",
				r0.Name, out.res.Errors[ErrRedirect], out.res.Errors[ErrConn]),
			fmt.Sprintf("post-failover replica converged at seq %d", seqOf(fresh)),
		},
	}, nil
}

// promote sends PROMOTE, retrying while the replica sorts itself out.
// "not a replica" counts as success: someone else's PROMOTE won the
// race, which is exactly the scenario's point.
func promote(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c, err := Dial(addr)
		if err == nil {
			resp, derr := c.Do("PROMOTE")
			c.Close()
			if derr == nil && resp.OK() {
				return nil
			}
			if derr == nil && strings.Contains(resp.Err, "not a replica") {
				return nil
			}
			err = fmt.Errorf("PROMOTE: %s %s", resp.Term, resp.Err)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("promote %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// FaultUnderLoad injects one scripted disk fault (crash, torn write, or
// fsync error) into a single node's journal mid-load, lets the run play
// out against the injured server, then pulls the plug, recovers the
// durable state, and restarts. The invariant under test is the
// durability contract under concurrency: every COMMIT a worker saw OK'd
// survives recovery (recovered sequence ≥ OK count), and the recovered
// instance passes VERIFY and the full-engine oracle.
func FaultUnderLoad(cfg ChaosConfig, kind vfs.FaultKind) (*ChaosReport, error) {
	cl, err := StartSingle(cfg.Scenario, cfg.CorpusN, cfg.Seed)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	target := cl.Target()
	opts := Options{
		Scenario: cfg.Scenario, Pools: cl.Pools, Mix: OLAP(),
		Workers: cfg.Workers, Duration: cfg.Duration, Seed: cfg.Seed,
		CorpusEntries: cl.CorpusEntries, Cluster: "single+" + kind.String(),
	}
	type runOut struct {
		res *Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := Run(opts, target)
		done <- runOut{res, err}
	}()

	time.Sleep(cfg.Duration * 2 / 5)
	fs := cl.Primary.FS
	fs.SetScript(vfs.FaultPoint{Op: fs.OpCount() + 3, Kind: kind})
	out := <-done
	if out.err != nil {
		return nil, out.err
	}

	// Power loss: volatile state gone, durable state survives.
	cl.Primary.Srv.Close()
	fs.Recover()
	node, schema, err := cl.RestartNode("recovered", fs)
	if err != nil {
		return nil, fmt.Errorf("fault %s: %v", kind, err)
	}
	defer node.Srv.Close()
	if got, want := seqOf(node), uint64(out.res.Committed); got < want {
		return nil, fmt.Errorf("fault %s: durability violated: %d commits were OK'd but recovery reached seq %d",
			kind, want, got)
	}
	if err := Oracle(schema, []*Node{node}); err != nil {
		return nil, fmt.Errorf("fault %s: %v", kind, err)
	}
	return &ChaosReport{
		Name: "fault-" + kind.String(),
		Load: out.res,
		Notes: []string{
			fmt.Sprintf("%d commits OK'd; recovery reached seq %d", out.res.Committed, seqOf(node)),
			fmt.Sprintf("errors under fault: not_durable=%d read_only=%d conn=%d",
				out.res.Errors[ErrNotDurable], out.res.Errors[ErrReadOnly], out.res.Errors[ErrConn]),
		},
	}, nil
}

// ConnStorm runs a 1-primary/2-replica cluster where every worker
// drops and re-dials its connections every few ops while the
// replication links are repeatedly severed mid-stream. The streaming
// loop's reconnect-and-handshake path must heal every gap: the cluster
// ends converged and byte-identical.
func ConnStorm(cfg ChaosConfig) (*ChaosReport, error) {
	cl, err := StartCluster(cfg.Scenario, cfg.CorpusN, 2, cfg.Seed, repl.Async)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	target := cl.Target()
	opts := Options{
		Scenario: cfg.Scenario, Pools: cl.Pools, Mix: Churn(),
		Workers: cfg.Workers, Duration: cfg.Duration, Seed: cfg.Seed,
		DropConnEvery: 7, CorpusEntries: cl.CorpusEntries, Cluster: "1p+2r connstorm",
	}
	type runOut struct {
		res *Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := Run(opts, target)
		done <- runOut{res, err}
	}()

	// Sever replication links for the whole run.
	drops := 0
	sever := time.NewTicker(cfg.Duration / 10)
	defer sever.Stop()
	var out runOut
	for out.res == nil && out.err == nil {
		select {
		case out = <-done:
		case <-sever.C:
			cl.Replicas[drops%2].Srv.DisconnectReplication()
			drops++
		}
	}
	if out.err != nil {
		return nil, out.err
	}
	if out.res.Committed == 0 {
		return nil, fmt.Errorf("connstorm: no transaction ever committed")
	}
	if err := Converge(cl.Nodes(), 30*time.Second); err != nil {
		return nil, fmt.Errorf("connstorm: %v", err)
	}
	if err := Oracle(cl.Schema, cl.Nodes()); err != nil {
		return nil, fmt.Errorf("connstorm: %v", err)
	}
	return &ChaosReport{
		Name:  "connstorm",
		Load:  out.res,
		Notes: []string{fmt.Sprintf("replication links severed %d times; %d commits; cluster byte-identical", drops, out.res.Committed)},
	}, nil
}

// ShardCrash runs churn through a router over nShards carved shards
// plus a default shard, kills one carved shard mid-run, restarts it
// (journal recovery on the original address), and finishes the run.
// While the shard is down, transactions it owns come back as
// shard_down errors and everything else keeps flowing; cross-shard
// moves are refused with cross_shard labels throughout. The run ends
// with the sharded oracle: per-shard VERIFY, the router's cross-shard
// CHECK, and the reconstructed global instance legal under the full
// engine.
func ShardCrash(cfg ChaosConfig, nShards int) (*ChaosReport, error) {
	cl, err := StartShardCluster(cfg.Scenario, cfg.CorpusN, nShards, cfg.Seed)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	target := NewTarget(cl.Addr)
	opts := Options{
		Scenario: cfg.Scenario, Pools: cl.Pools, Mix: Churn(),
		Workers: cfg.Workers, Duration: cfg.Duration, Seed: cfg.Seed,
		CorpusEntries: cl.CorpusEntries,
		Cluster:       fmt.Sprintf("router+%dshards shardcrash", len(cl.Shards)),
	}
	type runOut struct {
		res *Result
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := Run(opts, target)
		done <- runOut{res, err}
	}()

	victim := cl.Shards[0].Name
	time.Sleep(cfg.Duration * 2 / 5)
	cl.CrashShard(victim)
	time.Sleep(cfg.Duration / 5)
	if err := cl.RestartShard(victim); err != nil {
		<-done
		return nil, fmt.Errorf("shardcrash: restart %s: %v", victim, err)
	}

	out := <-done
	if out.err != nil {
		return nil, out.err
	}
	if out.res.Committed == 0 {
		return nil, fmt.Errorf("shardcrash: no transaction ever committed")
	}
	if err := cl.Oracle(); err != nil {
		return nil, fmt.Errorf("shardcrash: %v", err)
	}
	return &ChaosReport{
		Name: "shardcrash",
		Load: out.res,
		Notes: []string{
			fmt.Sprintf("shard %s killed and recovered mid-run; %d commits through the router", victim, out.res.Committed),
			fmt.Sprintf("errors: shard_down=%d cross_shard=%d wrong_shard=%d conn=%d",
				out.res.Errors[ErrShardDown], out.res.Errors[ErrCrossShard],
				out.res.Errors[ErrWrongShard], out.res.Errors[ErrConn]),
		},
	}, nil
}

// legalInstance re-parses one node's served instance and checks it with
// the full engine — the weaker oracle for nodes that legitimately lag
// (an orphaned replica whose primary died).
func legalInstance(schema *core.Schema, n *Node) error {
	ld, err := nodeLDIF(n)
	if err != nil {
		return err
	}
	d, err := ldif.ReadDirectory(strings.NewReader(ld), schema.Registry)
	if err != nil {
		return err
	}
	if r := core.NewChecker(schema).Check(d); !r.Legal() {
		return fmt.Errorf("instance illegal:\n%s", r)
	}
	return nil
}

package loadgen

import (
	"bufio"
	"net"
	"strings"
	"time"
)

// Client is a minimal wire-protocol client for the load workers: one
// TCP connection, line-oriented requests, replies read until the
// OK/ILLEGAL/ERR terminator. It is intentionally not safe for
// concurrent use — each worker owns its connections, as a real LDAP
// client library would.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server's client protocol address.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// Resp is one protocol reply: the payload lines and the terminator
// ("OK", "ILLEGAL", or "ERR"; Err holds the message after "ERR ").
type Resp struct {
	Lines []string
	Term  string
	Err   string
}

// OK reports a clean terminator.
func (r Resp) OK() bool { return r.Term == "OK" }

// readResp consumes one reply. Every server response — including the
// mid-transaction error paths — ends in exactly one terminator line, so
// this is the protocol's only framing rule (pinned by the ERR grammar
// test in internal/server).
func (c *Client) readResp() (Resp, error) {
	var resp Resp
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return resp, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "OK", line == "ILLEGAL":
			resp.Term = line
			return resp, nil
		case strings.HasPrefix(line, "ERR "):
			resp.Term = "ERR"
			resp.Err = line[len("ERR "):]
			return resp, nil
		default:
			resp.Lines = append(resp.Lines, line)
		}
	}
}

// Do sends one command line and reads its reply.
func (c *Client) Do(cmd string) (Resp, error) {
	if _, err := c.w.WriteString(cmd + "\n"); err != nil {
		return Resp{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Resp{}, err
	}
	return c.readResp()
}

// Txn runs BEGIN, the body lines (which produce no replies), and
// COMMIT, returning the COMMIT reply. A BEGIN rejected with ERR (write
// redirect on a replica, shutdown) is returned as-is without sending
// the body. A mid-body protocol error makes the server reply early and
// abort the transaction; that reply then surfaces as the COMMIT's,
// which is why the body must be drained from the socket either way.
func (c *Client) Txn(body []string) (Resp, error) {
	begin, err := c.Do("BEGIN")
	if err != nil || !begin.OK() {
		return begin, err
	}
	for _, l := range body {
		if _, err := c.w.WriteString(l + "\n"); err != nil {
			return Resp{}, err
		}
	}
	return c.Do("COMMIT")
}

// Error taxonomy labels — the JSON keys of Result.Errors.
const (
	ErrRedirect     = "redirect"      // write on a replica
	ErrRedirectLoop = "redirect_loop" // nodes redirecting writes at each other; the worker backed off
	ErrFenced       = "fenced"        // deposed primary fenced after observing a newer epoch
	ErrStaleEpoch   = "stale_epoch"   // stream refused: the dialed primary's epoch is older
	ErrNotDurable   = "not_durable"   // journal write/fsync failed; state rolled back
	ErrReadOnly     = "read_only"     // server degraded to read-only
	ErrTooLong      = "line_too_long" // protocol line over the limit
	ErrShutdown     = "shutdown"      // server closing or idle-timing the session
	ErrConn         = "conn"          // transport error (dial, reset, EOF)
	ErrIllegal      = "illegal"       // transaction rejected by the legality engine
	ErrNotFound     = "not_found"     // target entry absent — expected after an async failover loses the unreplicated tail
	ErrWrongShard   = "wrong_shard"   // router: no shard owns the DN (map without a default shard)
	ErrCrossShard   = "cross_shard"   // router refused a transaction/move/delete spanning shards
	ErrShardDown    = "shard_down"    // router could not reach the owning shard
	ErrOther        = "err_other"     // any ERR not classified above
)

// classify maps a reply (or transport error) onto the taxonomy; ok
// replies return "".
func classify(resp Resp, err error) string {
	if err != nil {
		return ErrConn
	}
	switch resp.Term {
	case "OK":
		return ""
	case "ILLEGAL":
		return ErrIllegal
	}
	msg := resp.Err
	switch {
	case strings.Contains(msg, "redirect primary="):
		return ErrRedirect
	case strings.Contains(msg, "commit not durable"):
		return ErrNotDurable
	case strings.Contains(msg, "fenced:"):
		// Must precede the read-only case: a fenced ex-primary's reason
		// reads "server is read-only: fenced: ...", and failover drivers
		// need the two told apart (fenced clears on restart; a degraded
		// journal does not).
		return ErrFenced
	case strings.Contains(msg, "stale epoch"):
		return ErrStaleEpoch
	case strings.Contains(msg, "read-only"):
		return ErrReadOnly
	case strings.Contains(msg, "line too long"):
		return ErrTooLong
	case strings.Contains(msg, "shutting down"), strings.Contains(msg, "idle timeout"):
		return ErrShutdown
	case strings.Contains(msg, "no entry"), strings.Contains(msg, "missing entry"):
		return ErrNotFound
	case strings.Contains(msg, "unroutable dn"):
		return ErrWrongShard
	case strings.Contains(msg, "cross-shard"):
		return ErrCrossShard
	case strings.Contains(msg, "unavailable"):
		return ErrShardDown
	default:
		return ErrOther
	}
}

// RedirectAddr extracts the primary address a replica's write-redirect
// ERR advertises ("" if the message is not a redirect).
func RedirectAddr(errMsg string) string {
	_, after, ok := strings.Cut(errMsg, "redirect primary=")
	if !ok {
		return ""
	}
	if i := strings.IndexByte(after, ')'); i >= 0 {
		after = after[:i]
	}
	return after
}

package loadgen

import (
	"bufio"
	"fmt"
	"math/rand"
	"strings"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/ldif"
	"boundschema/internal/server"
	"boundschema/internal/shard"
	"boundschema/internal/vfs"
)

// ShardNode is one in-process shard server. pristine keeps the carved
// boot instance aside so a crash scenario can rebuild it and let
// journal replay bring the shard forward — the same recovery pipeline a
// restarted bsd runs.
type ShardNode struct {
	Name  string
	Srv   *server.Server
	FS    *vfs.Fault
	Addr  string
	Roots []string

	pristine *dirtree.Directory
}

// ShardCluster is a sharded deployment in one process: the corpus
// carved over N shard servers plus a default shard, fronted by a
// router speaking the client protocol. Load runs target Addr exactly
// as they would a single node.
type ShardCluster struct {
	Scenario      *Scenario
	Schema        *core.Schema
	Pools         *Pools
	CorpusEntries int
	Map           *shard.Map
	Router        *shard.Router
	Addr          string // the router's client-protocol address

	Shards []*ShardNode // map order: carved shards first, default last

	tune []func(*server.Server) // pre-OpenJournal hooks, re-applied on restart
}

// StartShardCluster carves the scenario corpus with shard.AutoCut into
// nShards subtree shards plus the default remainder, boots a journaled
// server per shard, and a router over the lot. The optional tune hooks
// run on every shard server before OpenJournal, the window where
// pre-journal knobs (group commit, sync delay) latch.
func StartShardCluster(sc *Scenario, corpusN, nShards int, seed int64, tune ...func(*server.Server)) (*ShardCluster, error) {
	schema := sc.NewSchema()
	src := sc.NewCorpus(schema, rand.New(rand.NewSource(seed)), corpusN)
	c := &ShardCluster{
		Scenario:      sc,
		Schema:        schema,
		Pools:         sc.ExtractPools(src),
		CorpusEntries: src.Len(),
		tune:          tune,
	}
	roots, err := shard.AutoCut(schema, src, nShards)
	if err != nil {
		return nil, err
	}
	var carved []*shard.Shard
	for i, rs := range roots {
		if len(rs) > 0 {
			carved = append(carved, &shard.Shard{Name: fmt.Sprintf("s%d", i), Addr: "pending", Roots: rs})
		}
	}
	if len(carved) == 0 {
		return nil, fmt.Errorf("shardcluster: corpus has no cuttable depth-1 subtree (corpusN=%d too small?)", corpusN)
	}
	cutMap, err := shard.NewMap(carved, &shard.Shard{Name: "rest", Addr: "pending"})
	if err != nil {
		return nil, err
	}
	dirs, err := shard.Carve(src, cutMap)
	if err != nil {
		return nil, err
	}
	var withAddrs []*shard.Shard
	var def *shard.Shard
	for _, sh := range cutMap.All() {
		n := &ShardNode{Name: sh.Name, Roots: sh.Roots, pristine: dirs[sh.Name].Clone()}
		if err := c.bootShard(n, dirs[sh.Name], ""); err != nil {
			c.Close()
			return nil, err
		}
		c.Shards = append(c.Shards, n)
		bound := &shard.Shard{Name: sh.Name, Addr: n.Addr, Roots: sh.Roots}
		if len(sh.Roots) == 0 {
			def = bound
		} else {
			withAddrs = append(withAddrs, bound)
		}
	}
	if c.Map, err = shard.NewMap(withAddrs, def); err != nil {
		c.Close()
		return nil, err
	}
	c.Router = shard.NewRouter(c.Map)
	if c.Addr, err = c.Router.Listen("127.0.0.1:0"); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// bootShard starts (or, with a fixed addr, restarts) one shard server.
// The fault FS survives restarts and carries the journal.
func (c *ShardCluster) bootShard(n *ShardNode, dir *dirtree.Directory, addr string) error {
	srv, err := server.New(c.Scenario.NewSchema(), c.Scenario.Name, dir)
	if err != nil {
		return fmt.Errorf("shard %s: %v", n.Name, err)
	}
	for _, f := range c.tune {
		f(srv)
	}
	if n.FS == nil {
		n.FS = vfs.NewFault()
	}
	srv.SetFS(n.FS)
	if err := srv.OpenJournal(journalPath); err != nil {
		srv.Close()
		return fmt.Errorf("shard %s: %v", n.Name, err)
	}
	srv.SetShardInfo(n.Name, n.Roots)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	bound, err := srv.Listen(addr)
	if err != nil {
		srv.Close()
		return fmt.Errorf("shard %s: listen %s: %v", n.Name, addr, err)
	}
	n.Srv, n.Addr = srv, bound
	return nil
}

// ShardByName returns the named shard node, or nil.
func (c *ShardCluster) ShardByName(name string) *ShardNode {
	for _, n := range c.Shards {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// CrashShard kills one shard server. The router keeps serving; traffic
// owned by the dead shard comes back as shard_down errors.
func (c *ShardCluster) CrashShard(name string) {
	if n := c.ShardByName(name); n != nil && n.Srv != nil {
		n.Srv.Close()
	}
}

// RestartShard reboots a crashed shard from its pristine carved
// instance plus journal replay, on its original address (the shard map
// is static).
func (c *ShardCluster) RestartShard(name string) error {
	n := c.ShardByName(name)
	if n == nil {
		return fmt.Errorf("shardcluster: no shard %q", name)
	}
	n.FS.Recover()
	return c.bootShard(n, n.pristine.Clone(), n.Addr)
}

// Close shuts the router and every shard down.
func (c *ShardCluster) Close() {
	if c.Router != nil {
		c.Router.Close()
	}
	for _, n := range c.Shards {
		if n.Srv != nil {
			n.Srv.Close()
		}
	}
}

// Oracle is the sharded deployment's end-of-run check:
//
//  1. every shard passes VERIFY over the wire (journal checksums,
//     sequence continuity, incremental-engine legality) and serves a
//     per-shard legal instance under the full engine;
//  2. the router's CHECK — per-shard checks plus the coordinator's
//     cross-shard boundary audit over the spine — returns OK;
//  3. the global instance reconstructed from the shard snapshots
//     (default shard plus every carved subtree grafted back under its
//     spine parent) is legal under the full engine, so the shard-local
//     arguments cannot vouch for themselves.
func (c *ShardCluster) Oracle() error {
	merged, expected, err := c.mergedInstance()
	if err != nil {
		return err
	}
	for _, n := range c.Shards {
		cl, err := Dial(n.Addr)
		if err != nil {
			return fmt.Errorf("shard oracle: dial %s: %v", n.Name, err)
		}
		resp, err := cl.Do("VERIFY")
		cl.Close()
		if err != nil {
			return fmt.Errorf("shard oracle: VERIFY %s: %v", n.Name, err)
		}
		if !resp.OK() {
			return fmt.Errorf("shard oracle: VERIFY %s failed: %s %s", n.Name, resp.Term, resp.Err)
		}
	}
	cl, err := Dial(c.Addr)
	if err != nil {
		return fmt.Errorf("shard oracle: dial router: %v", err)
	}
	resp, err := cl.Do("CHECK")
	cl.Close()
	if err != nil {
		return fmt.Errorf("shard oracle: router CHECK: %v", err)
	}
	if !resp.OK() {
		return fmt.Errorf("shard oracle: router CHECK failed: %s %s\n%s",
			resp.Term, resp.Err, strings.Join(resp.Lines, "\n"))
	}
	if r := core.NewChecker(c.Schema).Check(merged); !r.Legal() {
		return fmt.Errorf("shard oracle: reconstructed global instance illegal:\n%s", r)
	}
	if merged.Len() != expected {
		return fmt.Errorf("shard oracle: reconstructed instance has %d entries, shard totals minus ghosts say %d",
			merged.Len(), expected)
	}
	return nil
}

// mergedInstance reconstructs the global directory — the default
// shard's snapshot with every carved subtree grafted back under its
// (spine) parent — and returns it along with the expected entry total:
// the per-shard snapshot sizes summed, minus the statically known ghost
// multiplicity. The two counts agreeing is an accounting check
// independent of the router's own STAT arithmetic.
func (c *ShardCluster) mergedInstance() (*dirtree.Directory, int, error) {
	snap := func(n *ShardNode) (*dirtree.Directory, error) {
		var sb strings.Builder
		w := bufio.NewWriter(&sb)
		if err := n.Srv.Snapshot(w); err != nil {
			return nil, fmt.Errorf("shard oracle: snapshot %s: %v", n.Name, err)
		}
		w.Flush()
		d, err := ldif.ReadDirectory(strings.NewReader(sb.String()), c.Schema.Registry)
		if err != nil {
			return nil, fmt.Errorf("shard oracle: re-parse %s: %v", n.Name, err)
		}
		return d, nil
	}
	var merged *dirtree.Directory
	expected := 0
	for _, n := range c.Shards {
		if len(n.Roots) == 0 {
			var err error
			if merged, err = snap(n); err != nil {
				return nil, 0, err
			}
			expected += merged.Len()
		}
	}
	if merged == nil {
		return nil, 0, fmt.Errorf("shard oracle: no default shard to merge into")
	}
	for _, n := range c.Shards {
		if len(n.Roots) == 0 {
			continue
		}
		d, err := snap(n)
		if err != nil {
			return nil, 0, err
		}
		expected += d.Len()
		for _, root := range n.Roots {
			e := d.ByDN(root)
			if e == nil {
				return nil, 0, fmt.Errorf("shard oracle: shard %s lost its root %q", n.Name, root)
			}
			var parent *dirtree.Entry
			if p := e.Parent(); p != nil {
				if parent = merged.ByDN(p.DN()); parent == nil {
					return nil, 0, fmt.Errorf("shard oracle: spine parent %q missing from the default shard", p.DN())
				}
			}
			if _, err := merged.GraftSubtree(parent, e); err != nil {
				return nil, 0, fmt.Errorf("shard oracle: graft %q: %v", root, err)
			}
		}
	}
	for _, s := range c.Map.Spine() {
		expected -= len(c.Map.Holders(s)) - 1
	}
	merged.EnsureEncoded()
	return merged, expected, nil
}

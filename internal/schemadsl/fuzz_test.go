package schemadsl

import "testing"

// FuzzParse checks that the schema DSL parser never panics and that
// accepted schemas survive a Format/Parse round trip with identical
// canonical text.
func FuzzParse(f *testing.F) {
	seeds := []string{
		whitePagesSrc,
		"schema x { }",
		"schema x { class a extends top { } }",
		"schema x { auxclass a { } class b extends top { aux a } }",
		"schema x { attribute a: single integer }",
		"schema x { class a extends top { } require class a }",
		"schema x { class a extends top { } require a descendant a }",
		"schema x { class a extends top { } forbid a child a }",
		"schema x { attribute k: string class a extends top { allows k } key k }",
		"schema { }",
		"schema x {",
		"schema x } {",
		"schema x { class a extends }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, name, err := Parse(src)
		if err != nil {
			return
		}
		text := Format(s, name)
		s2, name2, err := Parse(text)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%s", err, text)
		}
		if name2 != name {
			t.Fatalf("name changed: %q -> %q", name, name2)
		}
		if Format(s2, name2) != text {
			t.Fatalf("canonical form unstable")
		}
	})
}

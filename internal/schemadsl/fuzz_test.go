package schemadsl

import (
	"testing"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
)

// FuzzParse checks that the schema DSL parser never panics and that
// accepted schemas survive a Format/Parse round trip with identical
// canonical text.
func FuzzParse(f *testing.F) {
	seeds := []string{
		whitePagesSrc,
		"schema x { }",
		"schema x { class a extends top { } }",
		"schema x { auxclass a { } class b extends top { aux a } }",
		"schema x { attribute a: single integer }",
		"schema x { class a extends top { } require class a }",
		"schema x { class a extends top { } require a descendant a }",
		"schema x { class a extends top { } forbid a child a }",
		"schema x { attribute k: string class a extends top { allows k } key k }",
		"schema { }",
		"schema x {",
		"schema x } {",
		"schema x { class a extends }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, name, err := Parse(src)
		if err != nil {
			return
		}
		text := Format(s, name)
		s2, name2, err := Parse(text)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%s", err, text)
		}
		if name2 != name {
			t.Fatalf("name changed: %q -> %q", name, name2)
		}
		if Format(s2, name2) != text {
			t.Fatalf("canonical form unstable")
		}
	})
}

// FuzzParseSchema stresses the parser → legality-engine pipeline: any
// schema the parser accepts must enumerate its elements and drive both
// the sequential and the parallel checker to byte-identical reports on
// an empty directory (where required-class and required-relationship
// elements already fire) without panicking.
func FuzzParseSchema(f *testing.F) {
	seeds := []string{
		whitePagesSrc,
		"schema x { class a extends top { } require class a }",
		"schema x { class a extends top { } class b extends a { } require a descendant b forbid b child a }",
		"schema x { attribute k: string class a extends top { requires k } key k require class a }",
		"schema x { auxclass m { } class a extends top { aux m } require a parent a }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 2048 {
			return
		}
		s, _, err := Parse(src)
		if err != nil {
			return
		}
		for _, el := range s.Elements() {
			if el.ElementString() == "" {
				t.Fatal("element renders empty")
			}
		}
		d := dirtree.New(s.Registry)
		seq := core.NewChecker(s)
		seq.Concurrency = 1
		par := core.NewChecker(s)
		par.Concurrency = 4
		if sr, pr := seq.Check(d).String(), par.Check(d).String(); sr != pr {
			t.Fatalf("sequential and parallel reports diverge on the empty instance\n--- sequential ---\n%s\n--- parallel ---\n%s", sr, pr)
		}
	})
}

package schemadsl

import (
	"strings"
	"testing"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/workload"
)

const whitePagesSrc = `
// The paper's running example (Figures 2 and 3).
schema whitepages {
  attribute name: string
  attribute mail: string
  attribute uri: string
  attribute location: string
  attribute cellularPhone: telephone

  class orgGroup extends top {
    aux online
  }
  class person extends top {
    aux online
    requires name
    allows cellularPhone
  }
  class organization extends orgGroup {
    allows uri
  }
  class orgUnit extends orgGroup {
    allows location
  }
  class staffMember extends person {
    aux manager, secretary, consultant
  }
  class researcher extends person {
    aux manager, consultant, facultyMember
  }
  auxclass online {
    allows mail, uri
  }
  auxclass manager { }
  auxclass secretary { }
  auxclass consultant { }
  auxclass facultyMember { }

  require class organization
  require class orgUnit
  require class person
  require orgGroup descendant person
  require orgUnit parent orgGroup
  require person ancestor organization
  forbid person child top
}
`

func TestParseWhitePages(t *testing.T) {
	s, name, err := Parse(whitePagesSrc)
	if err != nil {
		t.Fatal(err)
	}
	if name != "whitepages" {
		t.Errorf("name = %q", name)
	}
	if !s.Classes.Subsumes("researcher", "person") {
		t.Errorf("hierarchy lost")
	}
	if !s.Classes.AuxAllowed("researcher", "facultyMember") {
		t.Errorf("aux allowance lost")
	}
	if !s.Attrs.IsRequired("person", "name") || !s.Attrs.IsAllowed("online", "mail") {
		t.Errorf("attribute schema lost")
	}
	if s.Registry.Type("cellularPhone") != dirtree.TypeTel {
		t.Errorf("attribute typing lost")
	}
	if got := len(s.Structure.RequiredRels()); got != 3 {
		t.Errorf("required rels = %d, want 3", got)
	}
	if got := len(s.Structure.ForbiddenRels()); got != 1 {
		t.Errorf("forbidden rels = %d, want 1", got)
	}
	// The parsed schema must accept the Figure 1 instance.
	d := workload.WhitePagesInstance(s)
	if r := core.NewChecker(s).Check(d); !r.Legal() {
		t.Fatalf("parsed schema rejects Figure 1:\n%s", r)
	}
	if !s.Consistent() {
		t.Errorf("parsed schema inconsistent")
	}
}

func TestForwardReferences(t *testing.T) {
	src := `schema fwd {
      class c extends b { }
      class b extends a { }
      class a extends top { }
    }`
	s, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Classes.Subsumes("c", "a") {
		t.Errorf("forward-referenced hierarchy wrong")
	}
}

func TestSingleValuedAttribute(t *testing.T) {
	src := `schema x {
      attribute ssn: single string
      class person extends top { allows ssn }
    }`
	s, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Registry.SingleValued("ssn") {
		t.Errorf("single-valued flag lost")
	}
}

func TestRoundTrip(t *testing.T) {
	for _, build := range []func() (*core.Schema, string){
		func() (*core.Schema, string) { return workload.WhitePagesSchema(), "whitepages" },
		func() (*core.Schema, string) {
			s, _, err := Parse(whitePagesSrc)
			if err != nil {
				t.Fatal(err)
			}
			return s, "whitepages"
		},
	} {
		s, name := build()
		text := Format(s, name)
		back, name2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse failed: %v\n%s", err, text)
		}
		if name2 != name {
			t.Errorf("name changed: %q -> %q", name, name2)
		}
		text2 := Format(back, name2)
		if text != text2 {
			t.Errorf("format not stable:\n%s\nvs\n%s", text, text2)
		}
		// Semantic round trip: same elements.
		if got, want := elementSet(back), elementSet(s); got != want {
			t.Errorf("elements changed:\n%s\nvs\n%s", got, want)
		}
	}
}

func elementSet(s *core.Schema) string {
	var parts []string
	for _, el := range s.Elements() {
		parts = append(parts, el.ElementString())
	}
	return strings.Join(parts, ";")
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"", "expected \"schema\""},
		{"schema x {", "unexpected end"},
		{"schema x { class a { } }", "expected \"extends\""},
		{"schema x { class a extends nowhere { } }", "unknown class"},
		{"schema x { attribute a: float }", "unknown type"},
		{"schema x { require a sibling b }", "unknown axis"},
		{"schema x { class a extends top { } forbid a parent top }", "child or descendant"},
		{"schema x { frobnicate }", "unexpected"},
		{"schema x { class a extends top { junk } }", "unexpected"},
		{"schema x { auxclass a { } require class a }", "not a declared core class"},
		{"schema x { } trailing", "trailing"},
		{"schema x { class a extends top { } class a extends top { } }", "already declared"},
	}
	for _, c := range cases {
		_, _, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) err = %v, want substring %q", c.src, err, c.want)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "schema x {\n  # hash comment\n  // slash comment\n  class a extends top { } // trailing\n}\n"
	s, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Classes.IsCore("a") {
		t.Errorf("class lost")
	}
}

func TestKeyStatement(t *testing.T) {
	src := `schema x {
      attribute ssn: string
      class person extends top { allows ssn }
      key ssn
    }`
	s, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsKey("ssn") {
		t.Errorf("key declaration lost")
	}
	text := Format(s, "x")
	if !strings.Contains(text, "key ssn") {
		t.Errorf("key not formatted:\n%s", text)
	}
	back, _, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsKey("ssn") {
		t.Errorf("key lost in round trip")
	}
}

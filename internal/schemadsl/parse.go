package schemadsl

import (
	"fmt"
	"strings"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
)

// ---------------------------------------------------------------------
// Lexer.

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokLBrace // {
	tokRBrace // }
	tokColon  // :
	tokComma  // ,
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) next() token {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		case c == '{':
			l.pos++
			return token{tokLBrace, "{", l.line}
		case c == '}':
			l.pos++
			return token{tokRBrace, "}", l.line}
		case c == ':':
			l.pos++
			return token{tokColon, ":", l.line}
		case c == ',':
			l.pos++
			return token{tokComma, ",", l.line}
		default:
			start := l.pos
			for l.pos < len(l.src) && !strings.ContainsRune(" \t\r\n{}:,#", rune(l.src[l.pos])) {
				if l.src[l.pos] == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					break
				}
				l.pos++
			}
			if l.pos == start {
				l.pos++ // skip stray byte
				continue
			}
			return token{tokIdent, l.src[start:l.pos], l.line}
		}
	}
	return token{tokEOF, "", l.line}
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

// ---------------------------------------------------------------------
// Parser.

type parser struct {
	lex    *lexer
	peeked *token
}

func (p *parser) next() token {
	if p.peeked != nil {
		t := *p.peeked
		p.peeked = nil
		return t
	}
	return p.lex.next()
}

func (p *parser) peek() token {
	if p.peeked == nil {
		t := p.lex.next()
		p.peeked = &t
	}
	return *p.peeked
}

func (p *parser) errorf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("schemadsl: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) expectIdent(what string) (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, p.errorf(t.line, "expected %s, got %q", what, t.text)
	}
	return t, nil
}

func (p *parser) expectKind(k tokenKind, what string) error {
	t := p.next()
	if t.kind != k {
		return p.errorf(t.line, "expected %s, got %q", what, t.text)
	}
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != kw {
		return p.errorf(t.line, "expected %q, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) parseSchema() (string, *schemaAST, error) {
	if err := p.expectKeyword("schema"); err != nil {
		return "", nil, err
	}
	nameTok, err := p.expectIdent("schema name")
	if err != nil {
		return "", nil, err
	}
	if err := p.expectKind(tokLBrace, "'{'"); err != nil {
		return "", nil, err
	}
	ast := &schemaAST{}
	for {
		t := p.next()
		switch {
		case t.kind == tokRBrace:
			if tail := p.next(); tail.kind != tokEOF {
				return "", nil, p.errorf(tail.line, "trailing input %q", tail.text)
			}
			return nameTok.text, ast, nil
		case t.kind == tokEOF:
			return "", nil, p.errorf(t.line, "unexpected end of schema")
		case t.kind == tokIdent && t.text == "attribute":
			if err := p.parseAttribute(ast); err != nil {
				return "", nil, err
			}
		case t.kind == tokIdent && t.text == "class":
			if err := p.parseClass(ast, false); err != nil {
				return "", nil, err
			}
		case t.kind == tokIdent && t.text == "auxclass":
			if err := p.parseClass(ast, true); err != nil {
				return "", nil, err
			}
		case t.kind == tokIdent && t.text == "key":
			name, err := p.expectIdent("attribute name")
			if err != nil {
				return "", nil, err
			}
			ast.keyAttrs = append(ast.keyAttrs, name.text)
		case t.kind == tokIdent && t.text == "require":
			if err := p.parseRel(ast, false); err != nil {
				return "", nil, err
			}
		case t.kind == tokIdent && t.text == "forbid":
			if err := p.parseRel(ast, true); err != nil {
				return "", nil, err
			}
		default:
			return "", nil, p.errorf(t.line, "unexpected %q", t.text)
		}
	}
}

func (p *parser) parseAttribute(ast *schemaAST) error {
	name, err := p.expectIdent("attribute name")
	if err != nil {
		return err
	}
	if err := p.expectKind(tokColon, "':'"); err != nil {
		return err
	}
	typTok, err := p.expectIdent("type")
	if err != nil {
		return err
	}
	single := false
	if typTok.text == "single" {
		single = true
		typTok, err = p.expectIdent("type")
		if err != nil {
			return err
		}
	}
	typ, err := dirtree.ParseType(typTok.text)
	if err != nil {
		return p.errorf(typTok.line, "%v", err)
	}
	ast.attrs = append(ast.attrs, attrDecl{name: name.text, typ: typ, single: single})
	return nil
}

func (p *parser) parseClass(ast *schemaAST, aux bool) error {
	name, err := p.expectIdent("class name")
	if err != nil {
		return err
	}
	decl := classDecl{name: name.text, aux: aux, line: name.line}
	if !aux {
		if err := p.expectKeyword("extends"); err != nil {
			return err
		}
		super, err := p.expectIdent("superclass name")
		if err != nil {
			return err
		}
		decl.super = super.text
	}
	if err := p.expectKind(tokLBrace, "'{'"); err != nil {
		return err
	}
	for {
		t := p.next()
		switch {
		case t.kind == tokRBrace:
			ast.classes = append(ast.classes, decl)
			return nil
		case t.kind == tokEOF:
			return p.errorf(t.line, "unexpected end of class body")
		case t.kind == tokIdent && t.text == "aux" && !aux:
			list, err := p.parseIdentList()
			if err != nil {
				return err
			}
			decl.auxes = append(decl.auxes, list...)
		case t.kind == tokIdent && t.text == "requires":
			list, err := p.parseIdentList()
			if err != nil {
				return err
			}
			decl.requires = append(decl.requires, list...)
		case t.kind == tokIdent && t.text == "allows":
			list, err := p.parseIdentList()
			if err != nil {
				return err
			}
			decl.allows = append(decl.allows, list...)
		default:
			return p.errorf(t.line, "unexpected %q in class body", t.text)
		}
	}
}

// parseIdentList reads "a, b, c" up to (not consuming) the next
// non-list token.
func (p *parser) parseIdentList() ([]string, error) {
	first, err := p.expectIdent("name")
	if err != nil {
		return nil, err
	}
	out := []string{first.text}
	for p.peek().kind == tokComma {
		p.next()
		nxt, err := p.expectIdent("name")
		if err != nil {
			return nil, err
		}
		out = append(out, nxt.text)
	}
	return out, nil
}

func (p *parser) parseRel(ast *schemaAST, forbid bool) error {
	first, err := p.expectIdent("class name or 'class'")
	if err != nil {
		return err
	}
	if !forbid && first.text == "class" {
		cls, err := p.expectIdent("class name")
		if err != nil {
			return err
		}
		ast.reqClasses = append(ast.reqClasses, reqClassDecl{class: cls.text})
		return nil
	}
	axTok, err := p.expectIdent("axis")
	if err != nil {
		return err
	}
	axis, err := core.ParseAxis(axTok.text)
	if err != nil {
		return p.errorf(axTok.line, "%v", err)
	}
	tgt, err := p.expectIdent("class name")
	if err != nil {
		return err
	}
	ast.rels = append(ast.rels, relDecl{
		src: first.text, axis: axis, tgt: tgt.text, forbid: forbid, line: first.line,
	})
	return nil
}

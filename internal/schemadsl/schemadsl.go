// Package schemadsl provides a textual definition language for
// bounding-schemas, so schemas can be versioned, reviewed and loaded like
// the LDIF instances they govern. The language covers every component of
// Definition 2.5:
//
//	schema whitepages {
//	  // τ: attribute typing (Definition 2.1); "single" marks
//	  // single-valued attributes (Section 6.1).
//	  attribute name: string
//	  attribute mail: string
//	  attribute ssn: single string
//
//	  // Class schema (Definition 2.3): a single-inheritance core
//	  // hierarchy rooted at top, plus auxiliary classes.
//	  class orgGroup extends top {
//	    aux online
//	  }
//	  class person extends top {
//	    aux online
//	    requires name
//	    allows cellularPhone
//	  }
//	  auxclass online {
//	    allows mail
//	  }
//
//	  // Structure schema (Definition 2.4).
//	  require class orgUnit
//	  require orgGroup descendant person
//	  require orgUnit parent orgGroup
//	  forbid person child top
//	}
//
// Comments run from "//" or "#" to end of line. Parse and Format are
// inverses up to ordering and whitespace.
package schemadsl

import (
	"fmt"
	"sort"
	"strings"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
)

// Parse compiles a schema definition into a core.Schema. The returned
// schema is validated for well-formedness (core.Schema.Validate), but not
// for consistency.
func Parse(src string) (*core.Schema, string, error) {
	p := &parser{lex: newLexer(src)}
	name, ast, err := p.parseSchema()
	if err != nil {
		return nil, "", err
	}
	s, err := compile(ast)
	if err != nil {
		return nil, "", err
	}
	return s, name, nil
}

// ---------------------------------------------------------------------
// AST.

type classDecl struct {
	name     string
	super    string
	aux      bool
	auxes    []string
	requires []string
	allows   []string
	line     int
}

type attrDecl struct {
	name   string
	typ    dirtree.Type
	single bool
}

type reqClassDecl struct{ class string }

type relDecl struct {
	src    string
	axis   core.Axis
	tgt    string
	forbid bool
	line   int
}

type schemaAST struct {
	attrs      []attrDecl
	classes    []classDecl
	reqClasses []reqClassDecl
	rels       []relDecl
	keyAttrs   []string
}

// ---------------------------------------------------------------------
// Compilation.

func compile(ast *schemaAST) (*core.Schema, error) {
	s := core.NewSchema()
	for _, a := range ast.attrs {
		if a.single {
			s.Registry.DeclareSingle(a.name, a.typ)
		} else {
			s.Registry.Declare(a.name, a.typ)
		}
	}

	// Auxiliary classes first (they have no dependencies), then core
	// classes in superclass dependency order (forward references are
	// allowed in the source).
	for _, c := range ast.classes {
		if c.aux {
			if err := s.Classes.AddAux(c.name); err != nil {
				return nil, fmt.Errorf("schemadsl: line %d: %v", c.line, err)
			}
		}
	}
	pending := make([]classDecl, 0, len(ast.classes))
	for _, c := range ast.classes {
		if !c.aux {
			pending = append(pending, c)
		}
	}
	for len(pending) > 0 {
		progress := false
		var next []classDecl
		for _, c := range pending {
			if s.Classes.IsCore(c.super) {
				if err := s.Classes.AddCore(c.name, c.super); err != nil {
					return nil, fmt.Errorf("schemadsl: line %d: %v", c.line, err)
				}
				progress = true
			} else {
				next = append(next, c)
			}
		}
		if !progress {
			return nil, fmt.Errorf("schemadsl: line %d: class %s extends unknown class %s",
				next[0].line, next[0].name, next[0].super)
		}
		pending = next
	}

	// Second pass: aux allowances and attribute schema, now that every
	// class exists.
	for _, c := range ast.classes {
		if len(c.auxes) > 0 {
			if err := s.Classes.AllowAux(c.name, c.auxes...); err != nil {
				return nil, fmt.Errorf("schemadsl: line %d: %v", c.line, err)
			}
		}
		if len(c.requires) > 0 {
			s.Attrs.Require(c.name, c.requires...)
		}
		if len(c.allows) > 0 {
			s.Attrs.Allow(c.name, c.allows...)
		}
	}

	for _, k := range ast.keyAttrs {
		s.DeclareKey(k)
	}
	for _, rc := range ast.reqClasses {
		s.Structure.RequireClass(rc.class)
	}
	for _, r := range ast.rels {
		if r.forbid {
			if err := s.Structure.ForbidRel(r.src, r.axis, r.tgt); err != nil {
				return nil, fmt.Errorf("schemadsl: line %d: %v", r.line, err)
			}
		} else {
			s.Structure.RequireRel(r.src, r.axis, r.tgt)
		}
	}

	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("schemadsl: %v", err)
	}
	return s, nil
}

// ---------------------------------------------------------------------
// Formatting.

// Format renders a schema in the definition language. Parse(Format(s))
// reproduces s up to ordering.
func Format(s *core.Schema, name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s {\n", name)

	reg := s.Registry
	attrSet := make(map[string]struct{})
	for _, a := range reg.Attrs() {
		attrSet[a] = struct{}{}
	}
	for _, a := range s.Attrs.Attrs() {
		attrSet[a] = struct{}{}
	}
	attrs := make([]string, 0, len(attrSet))
	for a := range attrSet {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	wrote := false
	for _, a := range attrs {
		if a == dirtree.AttrObjectClass {
			continue
		}
		if reg.SingleValued(a) {
			fmt.Fprintf(&b, "  attribute %s: single %s\n", a, reg.Type(a))
		} else {
			fmt.Fprintf(&b, "  attribute %s: %s\n", a, reg.Type(a))
		}
		wrote = true
	}
	if wrote {
		b.WriteString("\n")
	}

	// Core classes in depth order so superclasses precede subclasses.
	cores := s.Classes.CoreClasses()
	sort.SliceStable(cores, func(i, j int) bool {
		di, dj := s.Classes.DepthOf(cores[i]), s.Classes.DepthOf(cores[j])
		if di != dj {
			return di < dj
		}
		return cores[i] < cores[j]
	})
	for _, c := range cores {
		if c == core.ClassTop {
			continue
		}
		super, _ := s.Classes.Superclass(c)
		writeClassBody(&b, s, c, fmt.Sprintf("  class %s extends %s", c, super), s.Classes.AuxesOf(c))
	}
	for _, x := range s.Classes.AuxClasses() {
		writeClassBody(&b, s, x, fmt.Sprintf("  auxclass %s", x), nil)
	}

	for _, k := range s.Keys() {
		fmt.Fprintf(&b, "  key %s\n", k)
	}
	wrote = false
	for _, c := range s.Structure.RequiredClasses() {
		fmt.Fprintf(&b, "  require class %s\n", c)
		wrote = true
	}
	for _, r := range s.Structure.RequiredRels() {
		fmt.Fprintf(&b, "  require %s %s %s\n", r.Source, r.Axis, r.Target)
		wrote = true
	}
	for _, r := range s.Structure.ForbiddenRels() {
		fmt.Fprintf(&b, "  forbid %s %s %s\n", r.Upper, r.Axis, r.Lower)
		wrote = true
	}
	_ = wrote
	b.WriteString("}\n")
	return b.String()
}

func writeClassBody(b *strings.Builder, s *core.Schema, c, header string, auxes []string) {
	requires := s.Attrs.Required(c)
	var allowsOnly []string
	for _, a := range s.Attrs.Allowed(c) {
		if !s.Attrs.IsRequired(c, a) {
			allowsOnly = append(allowsOnly, a)
		}
	}
	if len(auxes) == 0 && len(requires) == 0 && len(allowsOnly) == 0 {
		fmt.Fprintf(b, "%s { }\n", header)
		return
	}
	fmt.Fprintf(b, "%s {\n", header)
	if len(auxes) > 0 {
		fmt.Fprintf(b, "    aux %s\n", strings.Join(auxes, ", "))
	}
	if len(requires) > 0 {
		fmt.Fprintf(b, "    requires %s\n", strings.Join(requires, ", "))
	}
	if len(allowsOnly) > 0 {
		fmt.Fprintf(b, "    allows %s\n", strings.Join(allowsOnly, ", "))
	}
	fmt.Fprintf(b, "  }\n")
}

package workload

import (
	"fmt"
	"math/rand"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
)

// This file builds the directory-enabled-networks scenario from the
// paper's introduction (and examples/netpolicy) as a scalable corpus for
// the load harness: network elements and policies beside people, with a
// structure schema LDAP alone cannot express and a Section 6.1 key.

// NetPolicySchema builds the DEN-style bounding-schema of
// examples/netpolicy in core form: admin domains holding subnets (each
// containing at least one host), policies only inside domains, hosts as
// leaves, people never under network elements, and ipAddress as an
// instance-wide key.
func NetPolicySchema() *core.Schema {
	s := core.NewSchema()
	must := func(err error) {
		if err != nil {
			panic(err) // static schema; cannot fail
		}
	}
	must(s.Classes.AddCore("adminDomain", core.ClassTop))
	must(s.Classes.AddCore("netElement", core.ClassTop))
	must(s.Classes.AddCore("host", "netElement"))
	must(s.Classes.AddCore("subnet", "netElement"))
	must(s.Classes.AddCore("policy", core.ClassTop))
	must(s.Classes.AddCore("person", core.ClassTop))
	must(s.Classes.AddAux("packetRouter"))
	must(s.Classes.AllowAux("host", "packetRouter"))

	s.Attrs.Require("adminDomain", "name")
	s.Attrs.Require("host", "ipAddress")
	s.Attrs.Require("subnet", "name")
	s.Attrs.Require("policy", "action")
	s.Attrs.Require("person", "name")
	s.Attrs.Allow("policy", "priority")
	s.Attrs.Allow("packetRouter", "bandwidth")
	s.Registry.Declare("bandwidth", dirtree.TypeInt)
	s.Registry.Declare("priority", dirtree.TypeInt)
	s.DeclareKey("ipAddress")

	s.Structure.RequireClass("adminDomain")
	s.Structure.RequireRel("policy", core.AxisAnc, "adminDomain")
	s.Structure.RequireRel("subnet", core.AxisDesc, "host")
	must(s.Structure.ForbidRel("host", core.AxisChild, core.ClassTop))
	must(s.Structure.ForbidRel("adminDomain", core.AxisDesc, "adminDomain"))
	must(s.Structure.ForbidRel("netElement", core.AxisDesc, "person"))

	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// NetPolicyCorpus generates a legal netpolicy instance with roughly n
// entries: one admin domain, subnets each seeded with a host (so the
// subnet →de host bound holds even after the load harness moves or
// deletes its own hosts), extra hosts, policies, and operator person
// entries directly under the domain. IP addresses are drawn from
// 10.0.x.y, leaving 10.(w+1).x.y free for per-worker load generators.
// Some subnet RDNs contain spaces, so subtree searches over spaced base
// DNs are always exercised.
func NetPolicyCorpus(s *core.Schema, rng *rand.Rand, n int) *dirtree.Directory {
	d := dirtree.New(s.Registry)
	dom := mustAdd(d, nil, "o=backbone", "adminDomain", "top")
	dom.AddValue("name", dirtree.String("backbone"))

	var subnets []*dirtree.Entry
	newSubnet := func(i int) *dirtree.Entry {
		rdn := fmt.Sprintf("ou=net%d", i)
		if i%4 == 0 {
			rdn = fmt.Sprintf("ou=lab net %d", i) // spaced DN on purpose
		}
		sub := mustAdd(d, dom, rdn, "subnet", "netElement", "top")
		sub.AddValue("name", dirtree.String(fmt.Sprintf("network %d", i)))
		h := mustAdd(d, sub, fmt.Sprintf("cn=gw%d", i), "host", "netElement", "packetRouter", "top")
		h.AddValue("ipAddress", dirtree.String(fmt.Sprintf("10.0.%d.%d", (i/250)%250, i%250)))
		h.AddValue("bandwidth", dirtree.Int(int64(1000*(1+rng.Intn(10)))))
		subnets = append(subnets, sub)
		return sub
	}
	newSubnet(0)
	made := 3 // domain + first subnet + its gateway
	hosts := 1
	for i := made; made < n; i++ {
		switch rng.Intn(6) {
		case 0:
			if made+2 <= n {
				newSubnet(i)
				made += 2
				hosts++
				continue
			}
			fallthrough
		case 1, 2:
			sub := subnets[rng.Intn(len(subnets))]
			h := mustAdd(d, sub, fmt.Sprintf("cn=h%d", i), "host", "netElement", "top")
			h.AddValue("ipAddress", dirtree.String(fmt.Sprintf("10.0.%d.%d", 100+(hosts/250)%100, hosts%250)))
			hosts++
			made++
		case 3:
			p := mustAdd(d, dom, fmt.Sprintf("cn=policy%d", i), "policy", "top")
			p.AddValue("action", dirtree.String([]string{"permit", "deny", "rate-limit"}[rng.Intn(3)]))
			p.AddValue("priority", dirtree.Int(int64(rng.Intn(10))))
			made++
		default:
			u := mustAdd(d, dom, fmt.Sprintf("uid=oper%d", i), "person", "top")
			u.AddValue("name", dirtree.String(fmt.Sprintf("operator %d", i)))
			made++
		}
	}
	return d
}

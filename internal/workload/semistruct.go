package workload

import (
	"fmt"
	"math/rand"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
)

// This file scales the Section 6.3 semi-structured scenario (the
// corporate world of examples/semistructured) into a directory corpus
// for the load harness: node labels become classes, and the structural
// bounds are exactly the two the paper highlights — a required
// descendant at unbounded depth and a forbidden nesting.

// SemiStructSchema models the Section 6.3 corporate world as a
// bounding-schema: countries, corporations, persons, contacts and name
// leaves, with "every person has a (descendant) name" and "a country
// never nests under a country". No class is required, so deep heterogen-
// eous forests — including the empty one — are legal.
func SemiStructSchema() *core.Schema {
	s := core.NewSchema()
	must := func(err error) {
		if err != nil {
			panic(err) // static schema; cannot fail
		}
	}
	for _, c := range []string{"country", "corporation", "person", "contact", "name"} {
		must(s.Classes.AddCore(c, core.ClassTop))
	}
	s.Attrs.Allow("name", "label")
	s.Structure.RequireRel("person", core.AxisDesc, "name")
	must(s.Structure.ForbidRel("country", core.AxisDesc, "country"))
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// SemiStructCorpus generates a legal semi-structured instance with
// roughly n entries: a national root (country → corporations), an
// international conglomerate root (corporation → {country, corporation}),
// and persons whose name lives at varying depth (directly, or through a
// contact node). Countries only ever appear on paths that hold no other
// country, keeping the forbidden nesting satisfied by construction. Some
// corporation RDNs contain spaces so subtree searches over spaced base
// DNs are exercised.
func SemiStructCorpus(s *core.Schema, rng *rand.Rand, n int) *dirtree.Directory {
	d := dirtree.New(s.Registry)

	// underCountry tracks whether a corporation already has a country
	// ancestor; only corporations without one may grow a country child.
	type corpNode struct {
		e            *dirtree.Entry
		underCountry bool
	}
	var corps []corpNode
	nextCorp := 0
	newCorp := func(parent *dirtree.Entry, underCountry bool) *dirtree.Entry {
		rdn := fmt.Sprintf("o=corp%d", nextCorp)
		if nextCorp%5 == 0 {
			rdn = fmt.Sprintf("o=corp %d inc", nextCorp) // spaced DN on purpose
		}
		nextCorp++
		c := mustAdd(d, parent, rdn, "corporation", "top")
		corps = append(corps, corpNode{c, underCountry})
		return c
	}

	national := mustAdd(d, nil, "c=world", "country", "top")
	newCorp(national, true)
	newCorp(nil, false) // the international conglomerate root
	made := 3
	for i := made; made < n; i++ {
		parent := corps[rng.Intn(len(corps))]
		switch rng.Intn(6) {
		case 0:
			newCorp(parent.e, parent.underCountry) // conglomerate member
			made++
		case 1:
			if parent.underCountry {
				made += addSemiPerson(d, parent.e, rng, i)
				continue
			}
			// A country inside a country-free corporation: its own members
			// are corporations, all marked underCountry.
			ctry := mustAdd(d, parent.e, fmt.Sprintf("c=ctry%d", i), "country", "top")
			made++
			if made+1 <= n {
				newCorp(ctry, true) // national branch
				made++
			}
		default:
			made += addSemiPerson(d, parent.e, rng, i)
		}
	}
	return d
}

// addSemiPerson adds a person whose required name descendant sits at a
// random depth (person→name or person→contact→name), returning how many
// entries were created.
func addSemiPerson(d *dirtree.Directory, parent *dirtree.Entry, rng *rand.Rand, id int) int {
	p := mustAdd(d, parent, fmt.Sprintf("uid=p%d", id), "person", "top")
	if rng.Intn(2) == 0 {
		leaf := mustAdd(d, p, fmt.Sprintf("cn=name%d", id), "name", "top")
		leaf.AddValue("label", dirtree.String(fmt.Sprintf("person %d", id)))
		return 2
	}
	contact := mustAdd(d, p, fmt.Sprintf("cn=contact%d", id), "contact", "top")
	leaf := mustAdd(d, contact, fmt.Sprintf("cn=name%d", id), "name", "top")
	leaf.AddValue("label", dirtree.String(fmt.Sprintf("person %d", id)))
	return 3
}

package workload

import (
	"fmt"
	"math/rand"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
)

// SchemaConfig parameterizes RandomSchema.
type SchemaConfig struct {
	// Classes is the number of core classes besides top.
	Classes int
	// Required is the number of required structural relationships.
	Required int
	// Forbidden is the number of forbidden structural relationships.
	Forbidden int
	// RequiredClasses is the number of c⇓ elements.
	RequiredClasses int
	// Deep biases the class hierarchy toward chains instead of a flat
	// fan-out under top.
	Deep bool
}

// RandomSchema generates a random bounding-schema. It may or may not be
// consistent; use core.CheckConsistency to decide.
func RandomSchema(rng *rand.Rand, cfg SchemaConfig) *core.Schema {
	s := core.NewSchema()
	names := make([]string, cfg.Classes)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
		super := core.ClassTop
		if i > 0 {
			if cfg.Deep && rng.Intn(3) != 0 {
				super = names[rng.Intn(i)]
			} else if !cfg.Deep && rng.Intn(4) == 0 {
				super = names[rng.Intn(i)]
			}
		}
		if err := s.Classes.AddCore(names[i], super); err != nil {
			panic(err)
		}
	}
	pick := func() string { return names[rng.Intn(len(names))] }
	for i := 0; i < cfg.RequiredClasses; i++ {
		s.Structure.RequireClass(pick())
	}
	for i := 0; i < cfg.Required; i++ {
		s.Structure.RequireRel(pick(), core.Axis(rng.Intn(4)), pick())
	}
	for i := 0; i < cfg.Forbidden; i++ {
		if err := s.Structure.ForbidRel(pick(), core.Axis(rng.Intn(2)), pick()); err != nil {
			panic(err)
		}
	}
	return s
}

// RandomInstance grows an arbitrary (not necessarily legal) forest over
// the schema's core classes, for legality-testing experiments that need
// both legal and violating inputs.
func RandomInstance(s *core.Schema, rng *rand.Rand, n int) *dirtree.Directory {
	d := dirtree.New(s.Registry)
	cores := s.Classes.CoreClasses()
	var all []*dirtree.Entry
	for i := 0; i < n; i++ {
		c := cores[rng.Intn(len(cores))]
		classes := s.Classes.Superclasses(c)
		var e *dirtree.Entry
		var err error
		if len(all) == 0 || rng.Intn(9) == 0 {
			e, err = d.AddRoot(fmt.Sprintf("r=%d", i), classes...)
		} else {
			e, err = d.AddChild(all[rng.Intn(len(all))], fmt.Sprintf("n=%d", i), classes...)
		}
		if err != nil {
			panic(err)
		}
		all = append(all, e)
	}
	return d
}

// CyclicSchema builds the Section 5.1 inconsistent family scaled to k
// classes: c0⇓ with a required-edge ring c0 →ch c1 →ch … →de c0.
func CyclicSchema(k int) *core.Schema {
	s := core.NewSchema()
	names := make([]string, k)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
		if err := s.Classes.AddCore(names[i], core.ClassTop); err != nil {
			panic(err)
		}
	}
	s.Structure.RequireClass(names[0])
	for i := 0; i < k-1; i++ {
		s.Structure.RequireRel(names[i], core.AxisChild, names[i+1])
	}
	s.Structure.RequireRel(names[k-1], core.AxisDesc, names[0])
	return s
}

// ContradictorySchema builds the Section 5.2 inconsistent family scaled
// to k classes: a subclass chain whose leaf both requires and forbids a
// descendant through the hierarchy.
func ContradictorySchema(k int) *core.Schema {
	s := core.NewSchema()
	prev := core.ClassTop
	names := make([]string, k)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i)
		if err := s.Classes.AddCore(names[i], prev); err != nil {
			panic(err)
		}
		prev = names[i]
	}
	if err := s.Classes.AddCore("x", core.ClassTop); err != nil {
		panic(err)
	}
	s.Structure.RequireClass("x")
	s.Structure.RequireRel("x", core.AxisDesc, names[k-1])                      // deepest subclass
	if err := s.Structure.ForbidRel("x", core.AxisDesc, names[0]); err != nil { // its root superclass
		panic(err)
	}
	return s
}

// UpdateStream produces n alternating legality-preserving subtree
// fragments (to insert under the given parent class) for the Figure 5
// experiments: each fragment is an orgUnit with a person child, so
// inserting it under any orgGroup of a legal white-pages instance
// preserves legality.
func UpdateStream(s *core.Schema, rng *rand.Rand, size int) *dirtree.Directory {
	frag := dirtree.New(s.Registry)
	root := mustAdd(frag, nil, fmt.Sprintf("ou=frag%d", rng.Int63()), "orgUnit", "orgGroup", "top")
	addPerson(frag, root, rng, 0)
	for i := 2; i < size; i++ {
		addPerson(frag, root, rng, i)
	}
	return frag
}

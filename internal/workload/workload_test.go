package workload

import (
	"math/rand"
	"strings"
	"testing"

	"boundschema/internal/core"
)

func TestWhitePagesFixtureLegal(t *testing.T) {
	s := WhitePagesSchema()
	d := WhitePagesInstance(s)
	if d.Len() != 6 {
		t.Fatalf("Figure 1 has 6 entries, got %d", d.Len())
	}
	if r := core.NewChecker(s).Check(d); !r.Legal() {
		t.Fatalf("Figure 1 instance illegal:\n%s", r)
	}
	if !s.Consistent() {
		t.Fatalf("white pages schema inconsistent")
	}
}

func TestCorpusLegalAndScales(t *testing.T) {
	s := WhitePagesSchema()
	checker := core.NewChecker(s)
	for _, n := range []int{10, 100, 1000} {
		rng := rand.New(rand.NewSource(int64(n)))
		d := Corpus(s, rng, n)
		if d.Len() < n || d.Len() > n+2 {
			t.Errorf("Corpus(%d) produced %d entries", n, d.Len())
		}
		if r := checker.Check(d); !r.Legal() {
			t.Fatalf("Corpus(%d) illegal:\n%s", n, r)
		}
	}
}

func TestCorpusHeterogeneity(t *testing.T) {
	s := WhitePagesSchema()
	d := Corpus(s, rand.New(rand.NewSource(7)), 500)
	mails := make(map[int]int)
	for _, p := range d.ClassEntries("person") {
		mails[len(p.Attr("mail"))]++
	}
	// The paper's motivation: some persons have no mail, some one, some
	// several.
	if mails[0] == 0 || mails[1] == 0 || mails[2]+mails[3] == 0 {
		t.Errorf("mail heterogeneity missing: %v", mails)
	}
}

func TestGrowLegalPreservesLegality(t *testing.T) {
	s := WhitePagesSchema()
	checker := core.NewChecker(s)
	rng := rand.New(rand.NewSource(3))
	d := Corpus(s, rng, 50)
	for i := 0; i < 5; i++ {
		GrowLegal(d, rng, 30)
		if r := checker.Check(d); !r.Legal() {
			t.Fatalf("grow round %d broke legality:\n%s", i, r)
		}
	}
}

func TestRandomSchemaShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := RandomSchema(rng, SchemaConfig{Classes: 10, Required: 5, Forbidden: 3, RequiredClasses: 2, Deep: true})
	if err := s.Validate(); err != nil {
		t.Fatalf("random schema invalid: %v", err)
	}
	if got := len(s.Classes.CoreClasses()); got != 11 { // + top
		t.Errorf("core classes = %d, want 11", got)
	}
	if got := len(s.Structure.RequiredRels()); got == 0 || got > 5 {
		t.Errorf("required rels = %d", got)
	}
}

func TestRandomInstanceUsesDeclaredClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := RandomSchema(rng, SchemaConfig{Classes: 6})
	d := RandomInstance(s, rng, 200)
	if d.Len() != 200 {
		t.Fatalf("len = %d", d.Len())
	}
	checker := core.NewChecker(s)
	for _, e := range d.Entries() {
		// Entries are built from superclass chains, so the content
		// (class) schema holds by construction.
		if !checker.EntryLegal(e) {
			t.Fatalf("entry %s violates content schema", e)
		}
	}
}

func TestSeededFamilies(t *testing.T) {
	for _, k := range []int{2, 5, 10} {
		if core.CheckConsistency(CyclicSchema(k)).Consistent {
			t.Errorf("CyclicSchema(%d) should be inconsistent", k)
		}
		if core.CheckConsistency(ContradictorySchema(k)).Consistent {
			t.Errorf("ContradictorySchema(%d) should be inconsistent", k)
		}
	}
}

func TestUpdateStreamFragmentPreservesLegality(t *testing.T) {
	s := WhitePagesSchema()
	checker := core.NewChecker(s)
	rng := rand.New(rand.NewSource(9))
	d := Corpus(s, rng, 100)
	frag := UpdateStream(s, rng, 5)
	if frag.Len() != 5 {
		t.Fatalf("fragment len = %d, want 5", frag.Len())
	}
	groups := d.ClassEntries("orgGroup")
	if _, err := d.GraftSubtree(groups[len(groups)-1], frag.Roots()[0]); err != nil {
		t.Fatal(err)
	}
	if r := checker.Check(d); !r.Legal() {
		t.Fatalf("grafted fragment broke legality:\n%s", r)
	}
}

func TestNetPolicyCorpusLegalAndScales(t *testing.T) {
	s := NetPolicySchema()
	if !s.Consistent() {
		t.Fatal("netpolicy schema inconsistent")
	}
	checker := core.NewChecker(s)
	for _, n := range []int{20, 200, 2000} {
		rng := rand.New(rand.NewSource(int64(n)))
		d := NetPolicyCorpus(s, rng, n)
		if d.Len() < n || d.Len() > n+2 {
			t.Errorf("NetPolicyCorpus(%d) produced %d entries", n, d.Len())
		}
		if r := checker.Check(d); !r.Legal() {
			t.Fatalf("NetPolicyCorpus(%d) illegal:\n%s", n, r)
		}
		if len(d.ClassEntries("subnet")) == 0 || len(d.ClassEntries("policy")) == 0 {
			t.Errorf("NetPolicyCorpus(%d) missing subnets or policies", n)
		}
	}
	// Spaced base DNs must exist — the load harness's range searches and
	// the spaced-DN protocol regression depend on them.
	d := NetPolicyCorpus(s, rand.New(rand.NewSource(1)), 500)
	spaced := false
	for _, e := range d.ClassEntries("subnet") {
		if strings.Contains(e.DN(), " ") {
			spaced = true
		}
	}
	if !spaced {
		t.Error("no subnet with a spaced DN in a 500-entry corpus")
	}
}

func TestSemiStructCorpusLegalAndScales(t *testing.T) {
	s := SemiStructSchema()
	if !s.Consistent() {
		t.Fatal("semistruct schema inconsistent")
	}
	checker := core.NewChecker(s)
	for _, n := range []int{20, 200, 2000} {
		rng := rand.New(rand.NewSource(int64(n)))
		d := SemiStructCorpus(s, rng, n)
		if d.Len() < n || d.Len() > n+2 {
			t.Errorf("SemiStructCorpus(%d) produced %d entries", n, d.Len())
		}
		if r := checker.Check(d); !r.Legal() {
			t.Fatalf("SemiStructCorpus(%d) illegal:\n%s", n, r)
		}
	}
	// The scenario's point: names at varying depth and countries beside
	// corporations, with no country ever nested under another.
	d := SemiStructCorpus(s, rand.New(rand.NewSource(4)), 1000)
	if len(d.ClassEntries("contact")) == 0 {
		t.Error("no deep (person→contact→name) chains generated")
	}
	if len(d.ClassEntries("country")) < 2 {
		t.Error("only the root country generated")
	}
}

func TestHardCasesAreExtensionIsolating(t *testing.T) {
	for _, hc := range HardCases() {
		if core.InferWith(hc.Schema, core.InferOptions{}).Inconsistent() == false {
			t.Errorf("%s: full system misses the inconsistency", hc.Name)
		}
		if core.InferWith(hc.Schema, core.InferOptions{PairwiseOnly: true}).Inconsistent() {
			t.Errorf("%s: pairwise system detects it; the case no longer isolates the extension", hc.Name)
		}
	}
}

// Package workload builds the synthetic schemas, instances and update
// streams used by the examples, the test suites and the experiment
// harness (DESIGN.md experiment index). The centerpiece is the paper's
// running example: the corporate white-pages directory of Figures 1-3,
// plus scalable legality-preserving corpora shaped like it.
package workload

import (
	"fmt"
	"math/rand"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
)

// WhitePagesSchema builds the paper's running bounding-schema: the class
// schema of Figure 2, a structure schema matching Figure 3 and the
// Section 3/4 narrative, and the attribute schema sketched in Sections
// 1.2 and 2.2.
func WhitePagesSchema() *core.Schema {
	s := core.NewSchema()
	must := func(err error) {
		if err != nil {
			panic(err) // static schema; cannot fail
		}
	}

	// Figure 2: core hierarchy.
	must(s.Classes.AddCore("orgGroup", core.ClassTop))
	must(s.Classes.AddCore("person", core.ClassTop))
	must(s.Classes.AddCore("organization", "orgGroup"))
	must(s.Classes.AddCore("orgUnit", "orgGroup"))
	must(s.Classes.AddCore("staffMember", "person"))
	must(s.Classes.AddCore("researcher", "person"))

	// Figure 2: auxiliary classes.
	for _, x := range []string{"online", "manager", "secretary", "consultant", "facultyMember"} {
		must(s.Classes.AddAux(x))
	}
	must(s.Classes.AllowAux("orgGroup", "online"))
	must(s.Classes.AllowAux("person", "online"))
	must(s.Classes.AllowAux("staffMember", "manager", "secretary", "consultant"))
	must(s.Classes.AllowAux("researcher", "manager", "consultant", "facultyMember"))

	// Attribute schema.
	s.Attrs.Require("person", "name")
	s.Attrs.Allow("person", "cellularPhone", "telephoneNumber")
	s.Attrs.Allow("organization", "uri")
	s.Attrs.Allow("orgUnit", "location")
	s.Attrs.Allow("online", "mail", "uri")
	s.Registry.Declare("cellularPhone", dirtree.TypeTel)
	s.Registry.Declare("telephoneNumber", dirtree.TypeTel)

	// Figure 3 / Sections 3-4: structure schema.
	s.Structure.RequireClass("organization")
	s.Structure.RequireClass("orgUnit")
	s.Structure.RequireClass("person")
	s.Structure.RequireRel("orgGroup", core.AxisDesc, "person")
	s.Structure.RequireRel("orgUnit", core.AxisParent, "orgGroup")
	s.Structure.RequireRel("person", core.AxisAnc, "organization")
	must(s.Structure.ForbidRel("person", core.AxisChild, core.ClassTop))

	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// WhitePagesInstance builds the Figure 1 instance, legal w.r.t.
// WhitePagesSchema.
func WhitePagesInstance(s *core.Schema) *dirtree.Directory {
	d := dirtree.New(s.Registry)
	att := mustAdd(d, nil, "o=att", "organization", "orgGroup", "online", "top")
	att.AddValue("uri", dirtree.String("http://www.att.com/"))
	labs := mustAdd(d, att, "ou=attLabs", "orgUnit", "orgGroup", "top")
	labs.AddValue("location", dirtree.String("FP"))
	armstrong := mustAdd(d, labs, "uid=armstrong", "staffMember", "person", "top")
	armstrong.AddValue("name", dirtree.String("m armstrong"))
	db := mustAdd(d, labs, "ou=databases", "orgUnit", "orgGroup", "top")
	laks := mustAdd(d, db, "uid=laks", "researcher", "facultyMember", "person", "online", "top")
	laks.AddValue("name", dirtree.String("laks lakshmanan"))
	laks.AddValue("mail", dirtree.String("laks@cs.concordia.ca"))
	laks.AddValue("mail", dirtree.String("laks@cse.iitb.ernet.in"))
	suciu := mustAdd(d, db, "uid=suciu", "researcher", "person", "top")
	suciu.AddValue("name", dirtree.String("dan suciu"))
	return d
}

func mustAdd(d *dirtree.Directory, parent *dirtree.Entry, rdn string, classes ...string) *dirtree.Entry {
	var e *dirtree.Entry
	var err error
	if parent == nil {
		e, err = d.AddRoot(rdn, classes...)
	} else {
		e, err = d.AddChild(parent, rdn, classes...)
	}
	if err != nil {
		panic(err)
	}
	return e
}

// Corpus generates a white-pages-shaped legal instance with roughly n
// entries: one organization root, a tree of orgUnits, and heterogeneous
// person entries (researchers and staff with 0-3 mail values, optional
// phones, optional auxiliary classes), mirroring the heterogeneity the
// paper's introduction motivates. The result is legal w.r.t.
// WhitePagesSchema.
func Corpus(s *core.Schema, rng *rand.Rand, n int) *dirtree.Directory {
	d := dirtree.New(s.Registry)
	org := mustAdd(d, nil, "o=org0", "organization", "orgGroup", "online", "top")
	org.AddValue("uri", dirtree.String("http://example.org/"))

	units := []*dirtree.Entry{org}
	made := 1
	for made < n {
		parent := units[rng.Intn(len(units))]
		if rng.Intn(3) == 0 && made+2 <= n {
			u := mustAdd(d, parent, fmt.Sprintf("ou=u%d", made), "orgUnit", "orgGroup", "top")
			u.AddValue("location", dirtree.String(fmt.Sprintf("bldg-%d", rng.Intn(40))))
			made++
			// An orgUnit must employ a person (orgGroup →de person).
			addPerson(d, u, rng, made)
			made++
			units = append(units, u)
		} else {
			addPerson(d, parent, rng, made)
			made++
		}
	}
	return d
}

func addPerson(d *dirtree.Directory, parent *dirtree.Entry, rng *rand.Rand, id int) *dirtree.Entry {
	classes := []string{"person", "top"}
	switch rng.Intn(3) {
	case 0:
		classes = append(classes, "researcher")
		if rng.Intn(3) == 0 {
			classes = append(classes, "facultyMember")
		}
	case 1:
		classes = append(classes, "staffMember")
		if rng.Intn(4) == 0 {
			classes = append(classes, "manager")
		}
	}
	nmail := rng.Intn(4)
	if nmail > 0 {
		classes = append(classes, "online")
	}
	p := mustAdd(d, parent, fmt.Sprintf("uid=p%d", id), classes...)
	p.AddValue("name", dirtree.String(fmt.Sprintf("person %d", id)))
	for m := 0; m < nmail; m++ {
		p.AddValue("mail", dirtree.String(fmt.Sprintf("p%d-%d@example.org", id, m)))
	}
	if rng.Intn(2) == 0 {
		p.AddValue("cellularPhone", dirtree.Tel(fmt.Sprintf("+1 555 %04d", rng.Intn(10000))))
	}
	return p
}

// GrowLegal appends roughly n entries to a white-pages instance while
// preserving legality, for incremental-update experiments.
func GrowLegal(d *dirtree.Directory, rng *rand.Rand, n int) {
	start := d.Len()
	groups := append([]*dirtree.Entry(nil), d.ClassEntries("orgGroup")...)
	for added := 0; added < n; {
		parent := groups[rng.Intn(len(groups))]
		id := start + added
		if rng.Intn(3) == 0 && added+2 <= n {
			u, err := d.AddChild(parent, fmt.Sprintf("ou=g%d", id), "orgUnit", "orgGroup", "top")
			if err != nil {
				added++ // name collision; skip
				continue
			}
			addPerson(d, u, rng, id+1)
			groups = append(groups, u)
			added += 2
		} else {
			addPerson(d, parent, rng, id)
			added++
		}
	}
}

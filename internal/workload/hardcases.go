package workload

import (
	"boundschema/internal/core"
)

// HardCase is an inconsistent schema whose detection requires one of the
// implementation's extension rule groups (see core.InferOptions): the
// pairwise Figure 6/7 reconstruction alone misses it. These were found by
// the randomized stress harness and verified inconsistent by hand; they
// drive the ablation experiment (E11) and regression tests.
type HardCase struct {
	Name   string
	Schema *core.Schema
	// Rule names expected on the inconsistency derivation.
	Rule string
}

// HardCases returns the extension-requiring inconsistent schemas.
func HardCases() []HardCase {
	var out []HardCase
	add := func(name, rule string, build func(s *core.Schema) error) {
		s := core.NewSchema()
		if err := build(s); err != nil {
			panic(err)
		}
		out = append(out, HardCase{Name: name, Schema: s, Rule: rule})
	}
	cores := func(s *core.Schema, pairs ...[2]string) error {
		for _, p := range pairs {
			if err := s.Classes.AddCore(p[0], p[1]); err != nil {
				return err
			}
		}
		return nil
	}

	add("CP: required child's parent class conflicts", "CP", func(s *core.Schema) error {
		if err := cores(s, [2]string{"k1", core.ClassTop}, [2]string{"k3", core.ClassTop}, [2]string{"k4", core.ClassTop}); err != nil {
			return err
		}
		s.Structure.RequireClass("k4")
		s.Structure.RequireRel("k4", core.AxisChild, "k3")
		s.Structure.RequireRel("k3", core.AxisParent, "k1")
		return nil
	})

	add("DPD: de-pa-ch composition closes a cycle", "DPD", func(s *core.Schema) error {
		if err := cores(s, [2]string{"k0", core.ClassTop}, [2]string{"k1", "k0"}, [2]string{"k2", core.ClassTop}); err != nil {
			return err
		}
		s.Structure.RequireClass("k1")
		s.Structure.RequireRel("k0", core.AxisParent, "k2")
		s.Structure.RequireRel("k1", core.AxisDesc, "k0")
		s.Structure.RequireRel("k2", core.AxisChild, "k1")
		return s.Structure.ForbidRel("k1", core.AxisChild, "k0")
	})

	add("SW: sandwich between ancestor and descendant", "SW", func(s *core.Schema) error {
		if err := cores(s, [2]string{"k0", core.ClassTop}, [2]string{"k1", core.ClassTop}, [2]string{"k2", core.ClassTop}); err != nil {
			return err
		}
		s.Structure.RequireClass("k2")
		s.Structure.RequireRel("k2", core.AxisDesc, "k0")
		s.Structure.RequireRel("k2", core.AxisAnc, "k1")
		return s.Structure.ForbidRel("k1", core.AxisDesc, "k0")
	})

	add("above: ancestor regress through a child requirement", "AO1", func(s *core.Schema) error {
		if err := cores(s, [2]string{"k0", core.ClassTop}, [2]string{"k1", core.ClassTop}, [2]string{"k2", core.ClassTop}); err != nil {
			return err
		}
		s.Structure.RequireClass("k2")
		s.Structure.RequireRel("k0", core.AxisAnc, "k2")
		s.Structure.RequireRel("k1", core.AxisAnc, "k0")
		s.Structure.RequireRel("k2", core.AxisChild, "k1")
		return s.Structure.ForbidRel("k1", core.AxisChild, "k0")
	})

	add("below: de-pa regress under subclassing", "BO2", func(s *core.Schema) error {
		if err := cores(s, [2]string{"k0", core.ClassTop}, [2]string{"k1", core.ClassTop}, [2]string{"k2", "k1"}); err != nil {
			return err
		}
		s.Structure.RequireClass("k2")
		s.Structure.RequireRel("k0", core.AxisParent, "k2")
		s.Structure.RequireRel("k1", core.AxisDesc, "k0")
		s.Structure.RequireRel("k2", core.AxisDesc, "k1")
		return nil
	})

	add("PCH: ancestor cannot fit the forced parent chain", "PCH", func(s *core.Schema) error {
		if err := cores(s,
			[2]string{"k0", core.ClassTop}, [2]string{"k1", "k0"}, [2]string{"k2", "k0"},
			[2]string{"k3", "k1"}, [2]string{"k6", "k0"}, [2]string{"k8", "k6"}); err != nil {
			return err
		}
		s.Structure.RequireClass("k8")
		s.Structure.RequireRel("k6", core.AxisParent, "k3")
		s.Structure.RequireRel("k3", core.AxisParent, "k2")
		s.Structure.RequireRel("k8", core.AxisAnc, "k6")
		return s.Structure.ForbidRel("k0", core.AxisDesc, "k2")
	})

	add("PCH2: placed ancestor drags its own parent chain", "PCH", func(s *core.Schema) error {
		if err := cores(s, [2]string{"k0", core.ClassTop}, [2]string{"k1", "k0"}, [2]string{"k2", core.ClassTop}); err != nil {
			return err
		}
		s.Structure.RequireClass("k1")
		s.Structure.RequireRel("k0", core.AxisParent, "k2")
		s.Structure.RequireRel("k1", core.AxisAnc, "k0")
		if err := s.Structure.ForbidRel("k1", core.AxisDesc, "k2"); err != nil {
			return err
		}
		return s.Structure.ForbidRel("k2", core.AxisDesc, "k2")
	})

	add("CHAIN: three-way forced-order cycle", "CHAIN", func(s *core.Schema) error {
		if err := cores(s, [2]string{"c", core.ClassTop}, [2]string{"x", core.ClassTop},
			[2]string{"y", core.ClassTop}, [2]string{"z", core.ClassTop}); err != nil {
			return err
		}
		s.Structure.RequireClass("c")
		for _, t := range []string{"x", "y", "z"} {
			s.Structure.RequireRel("c", core.AxisAnc, t)
		}
		if err := s.Structure.ForbidRel("x", core.AxisDesc, "y"); err != nil {
			return err
		}
		if err := s.Structure.ForbidRel("y", core.AxisDesc, "z"); err != nil {
			return err
		}
		return s.Structure.ForbidRel("z", core.AxisDesc, "x")
	})

	return out
}

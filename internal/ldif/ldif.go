// Package ldif reads and writes directory instances in the LDAP Data
// Interchange Format (an RFC 2849 subset). It supports content records,
// change records of type add, delete and moddn (subtree relocation), with
// base64-encoded values, line folding and comments.
//
// Limitations (documented, deliberate): no changetype modify, no
// URL-valued attributes (attr:< ...), moddn keeps the RDN unchanged, and
// DNs use unescaped commas as component separators, matching the dirtree
// DN convention.
package ldif

import (
	"bufio"
	"encoding/base64"
	"fmt"
	"io"
	"sort"
	"strings"

	"boundschema/internal/dirtree"
)

// ChangeType identifies the kind of a record.
type ChangeType int

// Record kinds. Content records (plain entries) have ChangeNone.
const (
	ChangeNone ChangeType = iota
	ChangeAdd
	ChangeDelete
	// ChangeModDN relocates a subtree under NewSuperior (the RFC 2849
	// changetype moddn/modrdn, restricted to deleteoldrdn: 1 semantics
	// with an unchanged RDN).
	ChangeModDN
)

func (c ChangeType) String() string {
	switch c {
	case ChangeNone:
		return "content"
	case ChangeAdd:
		return "add"
	case ChangeDelete:
		return "delete"
	case ChangeModDN:
		return "moddn"
	}
	return "?"
}

// Attr is one textual (attribute, value) line of a record.
type Attr struct {
	Name  string
	Value string
}

// Record is one LDIF record.
type Record struct {
	DN     string
	Change ChangeType
	Attrs  []Attr // empty for delete records
	// NewSuperior is the destination parent DN for moddn records; ""
	// moves the subtree to the forest root.
	NewSuperior string
	Line        int // 1-based line number of the dn: line, for error reports
}

// Reader parses LDIF records from an input stream.
type Reader struct {
	s    *bufio.Scanner
	line int
	// peeked holds one pushed-back logical line.
	peeked  string
	hasPeek bool
	eof     bool
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{s: s}
}

// nextPhysical returns the next physical line, honoring one line of
// push-back.
func (r *Reader) nextPhysical() (string, bool) {
	if r.hasPeek {
		r.hasPeek = false
		return r.peeked, true
	}
	if !r.s.Scan() {
		r.eof = true
		return "", false
	}
	r.line++
	return r.s.Text(), true
}

func (r *Reader) unread(line string) {
	r.peeked, r.hasPeek = line, true
}

// nextLogical returns the next logical line: folded continuations joined,
// comments (and their continuations) skipped. Blank lines are returned
// as "".
func (r *Reader) nextLogical() (string, bool) {
	for {
		line, ok := r.nextPhysical()
		if !ok {
			return "", false
		}
		if strings.HasPrefix(line, "#") {
			// Skip the comment including its folded continuations.
			for {
				next, ok := r.nextPhysical()
				if !ok {
					return "", false
				}
				if !strings.HasPrefix(next, " ") {
					r.unread(next)
					break
				}
			}
			continue
		}
		if line == "" {
			return "", true
		}
		// Join folded continuation lines (leading single space).
		for {
			next, ok := r.nextPhysical()
			if !ok {
				return line, true
			}
			if strings.HasPrefix(next, " ") {
				line += next[1:]
				continue
			}
			r.unread(next)
			break
		}
		return line, true
	}
}

// Next returns the next record, or io.EOF.
func (r *Reader) Next() (*Record, error) {
	// Skip blank separators and an optional version line.
	var first string
	for {
		line, ok := r.nextLogical()
		if !ok {
			return nil, io.EOF
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "version:") {
			continue
		}
		first = line
		break
	}
	name, value, err := splitLine(first)
	if err != nil {
		return nil, fmt.Errorf("ldif: line %d: %v", r.line, err)
	}
	if !strings.EqualFold(name, "dn") {
		return nil, fmt.Errorf("ldif: line %d: record must start with dn:, got %q", r.line, name)
	}
	rec := &Record{DN: value, Line: r.line}
	for {
		line, ok := r.nextLogical()
		if !ok || line == "" {
			break
		}
		name, value, err := splitLine(line)
		if err != nil {
			return nil, fmt.Errorf("ldif: line %d: %v", r.line, err)
		}
		if strings.EqualFold(name, "changetype") {
			switch strings.ToLower(strings.TrimSpace(value)) {
			case "add":
				rec.Change = ChangeAdd
			case "delete":
				rec.Change = ChangeDelete
			case "moddn", "modrdn":
				rec.Change = ChangeModDN
			default:
				return nil, fmt.Errorf("ldif: line %d: unsupported changetype %q", r.line, value)
			}
			continue
		}
		if strings.EqualFold(name, "newsuperior") {
			rec.NewSuperior = value
			continue
		}
		rec.Attrs = append(rec.Attrs, Attr{Name: name, Value: value})
	}
	if rec.Change == ChangeDelete && len(rec.Attrs) > 0 {
		return nil, fmt.Errorf("ldif: line %d: delete record must not carry attributes", rec.Line)
	}
	if rec.Change == ChangeModDN && len(rec.Attrs) > 0 {
		return nil, fmt.Errorf("ldif: line %d: moddn record must not carry attributes", rec.Line)
	}
	return rec, nil
}

// ReadAll returns all records in the stream.
func (r *Reader) ReadAll() ([]*Record, error) {
	var out []*Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// splitLine splits "name: value" or "name:: base64" into name and decoded
// value.
func splitLine(line string) (string, string, error) {
	i := strings.IndexByte(line, ':')
	if i <= 0 {
		return "", "", fmt.Errorf("malformed line %q", line)
	}
	name := line[:i]
	rest := line[i+1:]
	if strings.HasPrefix(rest, ":") {
		raw, err := base64.StdEncoding.DecodeString(strings.TrimSpace(rest[1:]))
		if err != nil {
			return "", "", fmt.Errorf("bad base64 value for %s: %v", name, err)
		}
		return name, string(raw), nil
	}
	return name, strings.TrimPrefix(rest, " "), nil
}

// SplitDN splits a distinguished name into its leading RDN and the parent
// DN ("" for a root).
func SplitDN(dn string) (rdn, parent string, err error) {
	dn = strings.TrimSpace(dn)
	if dn == "" {
		return "", "", fmt.Errorf("ldif: empty DN")
	}
	i := strings.IndexByte(dn, ',')
	if i < 0 {
		return dn, "", nil
	}
	if i == 0 || i == len(dn)-1 {
		return "", "", fmt.Errorf("ldif: malformed DN %q", dn)
	}
	return strings.TrimSpace(dn[:i]), strings.TrimSpace(dn[i+1:]), nil
}

// ReadDirectory parses content records into a fresh directory using reg
// for attribute typing. Records must list parents before children, the
// usual LDIF convention.
func ReadDirectory(r io.Reader, reg *dirtree.Registry) (*dirtree.Directory, error) {
	d := dirtree.New(reg)
	rd := NewReader(r)
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			return nil, err
		}
		if rec.Change != ChangeNone {
			return nil, fmt.Errorf("ldif: line %d: change record in content stream (use ReadChanges)", rec.Line)
		}
		if err := AddRecord(d, rec); err != nil {
			return nil, err
		}
	}
}

// AddRecord materializes one content or add record into the directory.
func AddRecord(d *dirtree.Directory, rec *Record) error {
	rdn, parentDN, err := SplitDN(rec.DN)
	if err != nil {
		return err
	}
	var parent *dirtree.Entry
	if parentDN != "" {
		parent = d.ByDN(parentDN)
		if parent == nil {
			return fmt.Errorf("ldif: line %d: parent %q of %q not found (parents must precede children)", rec.Line, parentDN, rec.DN)
		}
	}
	var e *dirtree.Entry
	if parent == nil {
		e, err = d.AddRoot(rdn)
	} else {
		e, err = d.AddChild(parent, rdn)
	}
	if err != nil {
		return fmt.Errorf("ldif: line %d: %v", rec.Line, err)
	}
	reg := d.Registry()
	for _, a := range rec.Attrs {
		if strings.EqualFold(a.Name, dirtree.AttrObjectClass) {
			e.AddClass(a.Value)
			continue
		}
		v, err := dirtree.ParseValue(reg.Type(a.Name), a.Value)
		if err != nil {
			return fmt.Errorf("ldif: line %d: attribute %s: %v", rec.Line, a.Name, err)
		}
		e.AddValue(a.Name, v)
	}
	return nil
}

// ---------------------------------------------------------------------
// Writing.

// WriteDirectory serializes the directory's entries as content records in
// pre-order, so the output is loadable by ReadDirectory.
func WriteDirectory(w io.Writer, d *dirtree.Directory) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "version: 1")
	for _, e := range d.Entries() {
		bw.WriteByte('\n')
		if err := writeEntry(bw, e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeEntry(w *bufio.Writer, e *dirtree.Entry) error {
	writeLine(w, "dn", e.DN())
	for _, c := range e.Classes() {
		writeLine(w, dirtree.AttrObjectClass, c)
	}
	names := e.AttrNames()
	sort.Strings(names)
	for _, name := range names {
		if name == dirtree.AttrObjectClass {
			continue
		}
		for _, v := range e.Attr(name) {
			writeLine(w, name, v.String())
		}
	}
	return nil
}

// writeLine emits one attribute line, base64-encoding unsafe values and
// folding lines longer than 76 columns per RFC 2849.
func writeLine(w *bufio.Writer, name, value string) {
	var line string
	if safeValue(value) {
		line = name + ": " + value
	} else {
		line = name + ":: " + base64.StdEncoding.EncodeToString([]byte(value))
	}
	const width = 76
	if len(line) <= width {
		w.WriteString(line)
		w.WriteByte('\n')
		return
	}
	w.WriteString(line[:width])
	w.WriteByte('\n')
	for rest := line[width:]; len(rest) > 0; {
		n := width - 1
		if n > len(rest) {
			n = len(rest)
		}
		w.WriteByte(' ')
		w.WriteString(rest[:n])
		w.WriteByte('\n')
		rest = rest[n:]
	}
}

// safeValue reports whether the value may appear verbatim after "name: ".
func safeValue(v string) bool {
	if v == "" {
		return true
	}
	switch v[0] {
	case ' ', ':', '<':
		return false
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c == '\r' || c == '\n' || c == 0 || c >= 0x80 {
			return false
		}
	}
	return v[len(v)-1] != ' '
}

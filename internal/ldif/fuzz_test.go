package ldif

import (
	"strings"
	"testing"
)

// FuzzReader checks that the LDIF reader never panics and that whatever
// it accepts as a content stream can be re-serialized and re-read to the
// same outline.
func FuzzReader(f *testing.F) {
	seeds := []string{
		whitePagesLDIF,
		"dn: o=x\nobjectClass: top\n",
		"dn: o=x\nattr:: aGVsbG8=\n",
		"dn: o=x\nattr: spans\n multiple\n lines\n",
		"version: 1\n\n# comment\ndn: o=x\nobjectClass: top\n",
		"dn: o=x\nchangetype: delete\n",
		"dn: o=x\nchangetype: moddn\nnewsuperior: o=y\n",
		"dn: o=x\n:::\n",
		"dn: o=x\nattr:: !!!\n",
		"",
		"\n\n\n",
		"junk\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ReadDirectory(strings.NewReader(src), nil)
		if err != nil {
			return
		}
		var buf strings.Builder
		if werr := WriteDirectory(&buf, d); werr != nil {
			t.Fatalf("accepted stream fails to serialize: %v", werr)
		}
		d2, rerr := ReadDirectory(strings.NewReader(buf.String()), nil)
		if rerr != nil {
			t.Fatalf("serialized form does not reload: %v\n%s", rerr, buf.String())
		}
		if d2.String() != d.String() {
			t.Fatalf("outline changed across round trip")
		}
	})
}

package ldif

import (
	"bytes"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"boundschema/internal/dirtree"
)

const whitePagesLDIF = `version: 1

# The Figure 1 corporate white pages instance.
dn: o=att
objectClass: organization
objectClass: orgGroup
objectClass: online
objectClass: top
uri: http://www.att.com/

dn: ou=attLabs,o=att
objectClass: orgUnit
objectClass: orgGroup
objectClass: top
location: FP

dn: uid=armstrong,ou=attLabs,o=att
objectClass: staffMember
objectClass: person
objectClass: top
name: m armstrong

dn: ou=databases,ou=attLabs,o=att
objectClass: orgUnit
objectClass: orgGroup
objectClass: top

dn: uid=laks,ou=databases,ou=attLabs,o=att
objectClass: researcher
objectClass: facultyMember
objectClass: person
objectClass: online
objectClass: top
name: laks lakshmanan
mail: laks@cs.concordia.ca
mail: laks@cse.iitb.ernet.in

dn: uid=suciu,ou=databases,ou=attLabs,o=att
objectClass: researcher
objectClass: person
objectClass: top
name: dan suciu
`

func TestReadWhitePages(t *testing.T) {
	d, err := ReadDirectory(strings.NewReader(whitePagesLDIF), dirtree.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 6 {
		t.Fatalf("Len = %d, want 6", d.Len())
	}
	laks := d.ByDN("uid=laks,ou=databases,ou=attLabs,o=att")
	if laks == nil {
		t.Fatal("laks not found")
	}
	if !laks.HasClass("facultyMember") || !laks.HasClass("online") {
		t.Errorf("laks classes = %v", laks.Classes())
	}
	if n := len(laks.Attr("mail")); n != 2 {
		t.Errorf("laks has %d mail values, want 2", n)
	}
	if got := len(d.ClassEntries("person")); got != 3 {
		t.Errorf("persons = %d, want 3", got)
	}
}

func TestRoundTrip(t *testing.T) {
	d, err := ReadDirectory(strings.NewReader(whitePagesLDIF), dirtree.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDirectory(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadDirectory(bytes.NewReader(buf.Bytes()), dirtree.NewRegistry())
	if err != nil {
		t.Fatalf("reload: %v\n%s", err, buf.String())
	}
	if d2.Len() != d.Len() {
		t.Fatalf("reload len = %d, want %d", d2.Len(), d.Len())
	}
	if d2.String() != d.String() {
		t.Errorf("outline changed:\n%s\nvs\n%s", d2.String(), d.String())
	}
	for _, e := range d.Entries() {
		e2 := d2.ByDN(e.DN())
		if e2 == nil {
			t.Fatalf("lost %s", e.DN())
		}
		if len(e2.AttrNames()) != len(e.AttrNames()) {
			t.Errorf("%s attribute names changed", e.DN())
		}
	}
}

func TestBase64AndFolding(t *testing.T) {
	d := dirtree.New(nil)
	e, _ := d.AddRoot("o=x", "top")
	long := strings.Repeat("abcdefghij", 30)
	e.AddValue("description", dirtree.String(long))
	e.AddValue("note", dirtree.String(" leading space"))
	e.AddValue("other", dirtree.String("été")) // non-ASCII forces base64
	e.AddValue("colon", dirtree.String(":starts with colon"))

	var buf bytes.Buffer
	if err := WriteDirectory(&buf, d); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if len(line) > 76 {
			t.Errorf("line exceeds 76 columns: %q", line)
		}
	}
	d2, err := ReadDirectory(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	e2 := d2.ByDN("o=x")
	for _, attr := range []string{"description", "note", "other", "colon"} {
		want := e.Attr(attr)[0].String()
		got := e2.Attr(attr)
		if len(got) != 1 || got[0].String() != want {
			t.Errorf("attr %s: got %v, want %q", attr, got, want)
		}
	}
}

func TestChangeRecords(t *testing.T) {
	src := `dn: uid=new,o=att
changetype: add
objectClass: person
objectClass: top
name: new person

dn: uid=old,o=att
changetype: delete
`
	recs, err := NewReader(strings.NewReader(src)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Change != ChangeAdd || len(recs[0].Attrs) != 3 {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if recs[1].Change != ChangeDelete || len(recs[1].Attrs) != 0 {
		t.Errorf("record 1 = %+v", recs[1])
	}
}

func TestReaderErrors(t *testing.T) {
	bad := []string{
		"objectClass: top\n",                                       // missing dn
		"dn: o=x\nbadline\n",                                       // malformed attr line
		"dn: o=x\nobjectClass:: !!!\n",                             // bad base64
		"dn: o=x\nchangetype: modify\n",                            // unsupported changetype
		"dn: o=x\nchangetype: delete\nobjectClass: top\n",          // delete with attrs
		"dn: uid=a,o=missing\nobjectClass: top\n",                  // orphan in content stream
		"dn: o=x\nchangetype: add\nobjectClass: top\n",             // change record in content stream
		"dn: o=x\nobjectClass: top\n\ndn: o=x\nobjectClass: top\n", // duplicate DN
	}
	for _, src := range bad {
		if _, err := ReadDirectory(strings.NewReader(src), nil); err == nil {
			t.Errorf("ReadDirectory(%q) succeeded, want error", src)
		}
	}
}

func TestTypedAttributeParsing(t *testing.T) {
	reg := dirtree.NewRegistry()
	reg.Declare("age", dirtree.TypeInt)
	src := "dn: uid=x\nobjectClass: top\nage: 42\n"
	d, err := ReadDirectory(strings.NewReader(src), reg)
	if err != nil {
		t.Fatal(err)
	}
	v := d.ByDN("uid=x").Attr("age")[0]
	if v.Type() != dirtree.TypeInt || v.Int() != 42 {
		t.Errorf("age = %v", v)
	}
	badSrc := "dn: uid=x\nobjectClass: top\nage: forty\n"
	if _, err := ReadDirectory(strings.NewReader(badSrc), reg); err == nil {
		t.Errorf("mistyped attribute accepted")
	}
}

func TestSplitDN(t *testing.T) {
	cases := []struct {
		dn, rdn, parent string
		wantErr         bool
	}{
		{"o=att", "o=att", "", false},
		{"ou=a,o=att", "ou=a", "o=att", false},
		{"uid=x,ou=a,o=att", "uid=x", "ou=a,o=att", false},
		{"", "", "", true},
		{",o=att", "", "", true},
		{"o=att,", "", "", true},
	}
	for _, c := range cases {
		rdn, parent, err := SplitDN(c.dn)
		if (err != nil) != c.wantErr {
			t.Errorf("SplitDN(%q) err = %v", c.dn, err)
			continue
		}
		if err == nil && (rdn != c.rdn || parent != c.parent) {
			t.Errorf("SplitDN(%q) = %q,%q want %q,%q", c.dn, rdn, parent, c.rdn, c.parent)
		}
	}
}

func TestEOFOnEmptyInput(t *testing.T) {
	r := NewReader(strings.NewReader("\n# only comments\n\n"))
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("Next on empty input = %v, want io.EOF", err)
	}
}

// Property: write-read round trips preserve random directories exactly,
// including adversarial attribute values.
func TestQuickRoundTrip(t *testing.T) {
	values := []string{
		"plain", " leading", "trailing ", "with\nnewline", "unicode ü",
		":" + "colon", "<url>", strings.Repeat("long", 100), "",
	}
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dirtree.New(nil)
		var all []*dirtree.Entry
		n := int(size%40) + 1
		for i := 0; i < n; i++ {
			var e *dirtree.Entry
			if len(all) == 0 || rng.Intn(5) == 0 {
				e, _ = d.AddRoot("r="+strconv.Itoa(i), "top")
			} else {
				e, _ = d.AddChild(all[rng.Intn(len(all))], "n="+strconv.Itoa(i), "top", "thing")
			}
			for k := 0; k < rng.Intn(3); k++ {
				e.AddValue("v"+strconv.Itoa(k), dirtree.String(values[rng.Intn(len(values))]))
			}
			all = append(all, e)
		}
		var buf bytes.Buffer
		if err := WriteDirectory(&buf, d); err != nil {
			return false
		}
		d2, err := ReadDirectory(bytes.NewReader(buf.Bytes()), nil)
		if err != nil || d2.Len() != d.Len() {
			return false
		}
		for _, e := range d.Entries() {
			e2 := d2.ByDN(e.DN())
			if e2 == nil {
				return false
			}
			for _, name := range e.AttrNames() {
				vs, vs2 := e.Attr(name), e2.Attr(name)
				if len(vs) != len(vs2) {
					return false
				}
				for i := range vs {
					if vs[i].String() != vs2[i].String() {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

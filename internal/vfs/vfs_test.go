package vfs

import (
	"bytes"
	"errors"
	iofs "io/fs"
	"path/filepath"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	fs := OS{}
	dir := t.TempDir()
	name := filepath.Join(dir, "f")
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(name)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if n, err := fs.Stat(name); err != nil || n != 5 {
		t.Fatalf("Stat = %d, %v", n, err)
	}
	if _, err := fs.Open(filepath.Join(dir, "missing")); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("missing file error = %v, want fs.ErrNotExist", err)
	}
}

func TestFaultCrashDiscardsUnsynced(t *testing.T) {
	fs := NewFault()
	f, _ := fs.Create("j")
	f.Write([]byte("durable"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte(" volatile"))
	fs.SetScript(FaultPoint{Op: fs.OpCount() + 1, Kind: FaultCrash})
	f.Write([]byte("!")) // op fires here: completes, then power loss
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrash) {
		t.Fatalf("write after crash = %v, want ErrCrash", err)
	}
	if !fs.Crashed() {
		t.Fatal("not crashed")
	}
	fs.Recover()
	data, err := fs.ReadFile("j")
	if err != nil || string(data) != "durable" {
		t.Fatalf("after recovery = %q, %v; want only synced bytes", data, err)
	}
}

func TestFaultUnsyncedCreateVanishes(t *testing.T) {
	fs := NewFault()
	f, _ := fs.Create("new")
	f.Write([]byte("bytes"))
	f.Close() // no Sync
	fs.SetScript(FaultPoint{Op: fs.OpCount() + 1, Kind: FaultCrash})
	fs.Remove("nonexistent") // fires the crash
	fs.Recover()
	if _, err := fs.ReadFile("new"); !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("unsynced created file survived crash: %v", err)
	}
}

func TestFaultRenameDurabilityNeedsSyncDir(t *testing.T) {
	for _, syncDir := range []bool{false, true} {
		fs := NewFault()
		f, _ := fs.Create("snap.tmp")
		f.Write([]byte("snapshot"))
		f.Sync()
		f.Close()
		if err := fs.Rename("snap.tmp", "snap"); err != nil {
			t.Fatal(err)
		}
		if syncDir {
			if err := fs.SyncDir("."); err != nil {
				t.Fatal(err)
			}
		}
		fs.SetScript(FaultPoint{Op: fs.OpCount() + 1, Kind: FaultCrash})
		fs.Remove("nonexistent")
		fs.Recover()
		_, errSnap := fs.ReadFile("snap")
		_, errTmp := fs.ReadFile("snap.tmp")
		if syncDir {
			if errSnap != nil || errTmp == nil {
				t.Fatalf("with SyncDir: snap=%v tmp=%v; want rename durable", errSnap, errTmp)
			}
		} else {
			if errSnap == nil || errTmp != nil {
				t.Fatalf("without SyncDir: snap=%v tmp=%v; want rename undone by crash", errSnap, errTmp)
			}
		}
	}
}

func TestFaultTornWrite(t *testing.T) {
	fs := NewFault()
	f, _ := fs.Create("j")
	f.Write([]byte("prefix|"))
	f.Sync()
	fs.SetScript(FaultPoint{Op: fs.OpCount() + 1, Kind: FaultTornWrite, Keep: 3})
	if _, err := f.Write([]byte("record")); !errors.Is(err, ErrCrash) {
		t.Fatalf("torn write error = %v", err)
	}
	fs.Recover()
	data, _ := fs.ReadFile("j")
	if string(data) != "prefix|rec" {
		t.Fatalf("after torn write: %q, want the synced prefix plus 3 torn bytes", data)
	}
}

func TestFaultShortWrite(t *testing.T) {
	fs := NewFault()
	f, _ := fs.Create("j")
	fs.SetScript(FaultPoint{Op: fs.OpCount() + 1, Kind: FaultShortWrite, Keep: 2})
	n, err := f.Write([]byte("abcdef"))
	if n != 2 || err == nil {
		t.Fatalf("short write = (%d, %v), want (2, error)", n, err)
	}
	if err := f.Truncate(0); err != nil {
		t.Fatal(err) // the writer's cleanup still works
	}
	data, _ := fs.ReadFile("j")
	if len(data) != 0 {
		t.Fatalf("truncate after short write left %q", data)
	}
}

func TestFaultBitFlip(t *testing.T) {
	fs := NewFault()
	f, _ := fs.Create("j")
	payload := []byte("abcdefgh")
	fs.SetScript(FaultPoint{Op: fs.OpCount() + 1, Kind: FaultBitFlip})
	if n, err := f.Write(payload); n != len(payload) || err != nil {
		t.Fatalf("bit-flip write must silently succeed, got (%d, %v)", n, err)
	}
	data, _ := fs.ReadFile("j")
	if bytes.Equal(data, payload) {
		t.Fatal("bit flip did not corrupt the stored bytes")
	}
	diff := 0
	for i := range data {
		if data[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit flip changed %d bytes, want exactly 1", diff)
	}
}

func TestFaultEverySyncFails(t *testing.T) {
	fs := NewFault()
	f, _ := fs.Create("j")
	f.Write([]byte("x"))
	fs.SetScript(FaultPoint{Kind: FaultSyncErr}) // Op 0: every sync
	if err := f.Sync(); err == nil {
		t.Fatal("injected sync error did not fire")
	}
	if err := f.Sync(); err == nil {
		t.Fatal("Op-0 fault must fire on every applicable op")
	}
	// Writes still work; only syncs fail.
	if _, err := f.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
}

func TestFaultOpCountDeterministic(t *testing.T) {
	run := func() int {
		fs := NewFault()
		f, _ := fs.Create("j")
		f.Write([]byte("a"))
		f.Sync()
		fs.Rename("j", "k")
		fs.SyncDir(".")
		return fs.OpCount()
	}
	if a, b := run(), run(); a != b || a != 5 {
		t.Fatalf("op counts %d, %d; want deterministic 5", a, b)
	}
}

package vfs

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"sort"
	"sync"
)

// ErrCrash is returned by every operation on a Fault file system after a
// scripted crash point fires: the simulated machine has lost power and
// nothing more can happen until Recover.
var ErrCrash = errors.New("vfs: simulated power failure")

// FaultKind enumerates the injectable failure modes.
type FaultKind int

const (
	// FaultCrash completes the op it fires on, then fails every later
	// operation with ErrCrash. Recover() then discards all volatile
	// (unsynced) state, simulating power loss after op N.
	FaultCrash FaultKind = iota + 1
	// FaultSyncErr makes a Sync return an error; nothing becomes durable.
	FaultSyncErr
	// FaultTruncErr makes a Truncate return an error, leaving the file
	// unchanged.
	FaultTruncErr
	// FaultWriteErr makes a Write fail having written nothing.
	FaultWriteErr
	// FaultShortWrite makes a Write persist only Keep bytes (default:
	// half) of the buffer before returning an error — a torn append the
	// writer observes and can clean up.
	FaultShortWrite
	// FaultTornWrite persists Keep bytes (default: half) of the buffer,
	// forces everything written so far durable (the tear reached the
	// platter), and crashes — a torn append only recovery ever sees.
	FaultTornWrite
	// FaultBitFlip silently flips one bit in the middle of the written
	// buffer; the Write succeeds, so the corruption is only detectable
	// by checksum at recovery.
	FaultBitFlip
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultSyncErr:
		return "sync-error"
	case FaultTruncErr:
		return "truncate-error"
	case FaultWriteErr:
		return "write-error"
	case FaultShortWrite:
		return "short-write"
	case FaultTornWrite:
		return "torn-write"
	case FaultBitFlip:
		return "bit-flip"
	}
	return "?"
}

// FaultPoint schedules one fault. Mutating operations (Create,
// OpenAppend, Write, Sync, Truncate, Rename, Remove, SyncDir) increment
// the op counter; a point fires when the counter reaches Op and the
// current operation is one its Kind applies to. Op == 0 means "every
// applicable operation" (used to make a disk that always fails syncs,
// say); points with Op > 0 fire at most once.
type FaultPoint struct {
	Op    int
	Kind  FaultKind
	Keep  int // bytes kept by short/torn writes; 0 = half the buffer
	fired bool
}

// memFile is one file's state: the volatile content every reader and
// writer sees, and the durable content a crash reverts to.
type memFile struct {
	data    []byte
	durable []byte
}

// Fault is the deterministic fault-injecting file system: memory-backed,
// with an explicit durable/volatile split per file and per directory
// entry. Sync makes a file's content (and its current name) durable;
// SyncDir makes a directory's name set durable — so an unsynced rename
// is undone by a crash, exactly the rename-durability trap on a real
// disk. The zero script injects nothing, which makes Fault double as a
// plain in-memory FS for counting runs.
type Fault struct {
	mu      sync.Mutex
	files   map[string]*memFile // volatile namespace
	durable map[string]*memFile // durable namespace
	script  []FaultPoint
	ops     int
	crashed bool
}

// NewFault returns an empty fault file system with no scripted faults.
func NewFault() *Fault {
	return &Fault{files: make(map[string]*memFile), durable: make(map[string]*memFile)}
}

// SetScript replaces the fault script. Call between runs, not while
// operations are in flight.
func (fs *Fault) SetScript(points ...FaultPoint) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.script = make([]FaultPoint, len(points))
	copy(fs.script, points)
}

// OpCount reports how many mutating operations have run — a fault-free
// counting pass over a workload yields the sweep bound for "crash at
// every op N".
func (fs *Fault) OpCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crashed reports whether a crash point has fired.
func (fs *Fault) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Recover applies the power loss: every file reverts to its durable
// content, unsynced directory entries (creates, renames, removes)
// revert, and the file system accepts operations again — the state a
// restarted process finds on disk.
func (fs *Fault) Recover() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files = make(map[string]*memFile, len(fs.durable))
	for name, f := range fs.durable {
		f.data = append([]byte(nil), f.durable...)
		fs.files[name] = f
	}
	fs.crashed = false
}

// WriteFile installs a file whose content is immediately durable — for
// seeding pre-existing journals in tests.
func (fs *Fault) WriteFile(name string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &memFile{data: append([]byte(nil), data...), durable: append([]byte(nil), data...)}
	fs.files[name] = f
	fs.durable[name] = f
}

// step advances the op counter and returns the fault point (if any)
// firing on this operation. Callers hold fs.mu.
func (fs *Fault) step(applicable ...FaultKind) *FaultPoint {
	fs.ops++
	for i := range fs.script {
		p := &fs.script[i]
		if p.fired || (p.Op != 0 && p.Op != fs.ops) {
			continue
		}
		for _, k := range applicable {
			if p.Kind == k {
				if p.Op != 0 {
					p.fired = true
				}
				return p
			}
		}
		// A crash point fires on whatever operation op N happens to be.
		if p.Kind == FaultCrash && p.Op == fs.ops {
			p.fired = true
			return p
		}
	}
	return nil
}

func keepBytes(p *FaultPoint, n int) int {
	k := p.Keep
	if k <= 0 {
		k = n / 2
	}
	if k > n {
		k = n
	}
	return k
}

func (fs *Fault) checkCrashed() error {
	if fs.crashed {
		return ErrCrash
	}
	return nil
}

// faultFile is a handle into a Fault file system.
type faultFile struct {
	fs       *Fault
	f        *memFile
	name     string
	off      int
	writable bool
	closed   bool
}

func (fs *Fault) lookup(name string) (*memFile, bool) {
	f, ok := fs.files[name]
	return f, ok
}

func (fs *Fault) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkCrashed(); err != nil {
		return nil, err
	}
	f, ok := fs.lookup(name)
	if !ok {
		return nil, &notExistError{name}
	}
	return &faultFile{fs: fs, f: f, name: name}, nil
}

func (fs *Fault) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkCrashed(); err != nil {
		return nil, err
	}
	if p := fs.step(); p != nil && p.Kind == FaultCrash {
		fs.crashed = true
	}
	f, ok := fs.lookup(name)
	if !ok {
		f = &memFile{}
		fs.files[name] = f
	} else {
		f.data = nil // O_TRUNC: the durable content survives until sync
	}
	return &faultFile{fs: fs, f: f, name: name, writable: true}, nil
}

func (fs *Fault) OpenAppend(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkCrashed(); err != nil {
		return nil, err
	}
	if p := fs.step(); p != nil && p.Kind == FaultCrash {
		fs.crashed = true
	}
	f, ok := fs.lookup(name)
	if !ok {
		f = &memFile{}
		fs.files[name] = f
	}
	return &faultFile{fs: fs, f: f, name: name, writable: true}, nil
}

func (fs *Fault) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkCrashed(); err != nil {
		return nil, err
	}
	f, ok := fs.lookup(name)
	if !ok {
		return nil, &notExistError{name}
	}
	return append([]byte(nil), f.data...), nil
}

func (fs *Fault) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkCrashed(); err != nil {
		return err
	}
	if p := fs.step(); p != nil && p.Kind == FaultCrash {
		defer func() { fs.crashed = true }()
	}
	f, ok := fs.lookup(oldname)
	if !ok {
		return &notExistError{oldname}
	}
	fs.files[newname] = f
	delete(fs.files, oldname)
	return nil
}

func (fs *Fault) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkCrashed(); err != nil {
		return err
	}
	if p := fs.step(); p != nil && p.Kind == FaultCrash {
		defer func() { fs.crashed = true }()
	}
	if _, ok := fs.lookup(name); !ok {
		return &notExistError{name}
	}
	delete(fs.files, name)
	return nil
}

func (fs *Fault) Stat(name string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkCrashed(); err != nil {
		return 0, err
	}
	f, ok := fs.lookup(name)
	if !ok {
		return 0, &notExistError{name}
	}
	return int64(len(f.data)), nil
}

func (fs *Fault) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkCrashed(); err != nil {
		return nil, err
	}
	var names []string
	for name := range fs.files {
		if DirOf(name) == normDir(dir) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// SyncDir makes the directory's current name set durable: entries
// created, renamed or removed in dir since the last SyncDir survive a
// crash afterwards. File contents stay only as durable as their own
// Sync calls made them.
func (fs *Fault) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkCrashed(); err != nil {
		return err
	}
	if p := fs.step(FaultSyncErr); p != nil {
		switch p.Kind {
		case FaultSyncErr:
			return fmt.Errorf("vfs: injected syncdir error on %q", dir)
		case FaultCrash:
			defer func() { fs.crashed = true }()
		}
	}
	d := normDir(dir)
	for name := range fs.durable {
		if DirOf(name) == d {
			if _, ok := fs.files[name]; !ok {
				delete(fs.durable, name)
			}
		}
	}
	for name, f := range fs.files {
		if DirOf(name) == d {
			fs.durable[name] = f
		}
	}
	return nil
}

func normDir(dir string) string {
	if dir == "" {
		return "."
	}
	return dir
}

func (h *faultFile) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.checkCrashed(); err != nil {
		return 0, err
	}
	if h.closed {
		return 0, errors.New("vfs: read on closed file")
	}
	if h.off >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += n
	return n, nil
}

func (h *faultFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.checkCrashed(); err != nil {
		return 0, err
	}
	if h.closed || !h.writable {
		return 0, errors.New("vfs: write on closed or read-only file")
	}
	if fp := h.fs.step(FaultWriteErr, FaultShortWrite, FaultTornWrite, FaultBitFlip); fp != nil {
		switch fp.Kind {
		case FaultWriteErr:
			return 0, errors.New("vfs: injected write error")
		case FaultShortWrite:
			k := keepBytes(fp, len(p))
			h.f.data = append(h.f.data, p[:k]...)
			return k, errors.New("vfs: injected short write")
		case FaultTornWrite:
			// The tear reaches the platter: prefix appended AND the whole
			// file content to that point forced durable, then power loss.
			k := keepBytes(fp, len(p))
			h.f.data = append(h.f.data, p[:k]...)
			h.f.durable = append([]byte(nil), h.f.data...)
			h.fs.durable[h.name] = h.f
			h.fs.crashed = true
			return k, ErrCrash
		case FaultBitFlip:
			q := append([]byte(nil), p...)
			q[len(q)/2] ^= 0x01
			h.f.data = append(h.f.data, q...)
			return len(p), nil
		case FaultCrash:
			h.f.data = append(h.f.data, p...)
			h.fs.crashed = true
			return len(p), nil
		}
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

// Sync makes the file's content durable, and durably links the file's
// current name(s) — the practical fsync contract on mainstream Linux
// file systems, where fsync of a new file also persists its directory
// entry. What fsync does NOT make durable is a later rename; that takes
// SyncDir.
func (h *faultFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.checkCrashed(); err != nil {
		return err
	}
	if fp := h.fs.step(FaultSyncErr); fp != nil {
		switch fp.Kind {
		case FaultSyncErr:
			return errors.New("vfs: injected fsync error")
		case FaultCrash:
			defer func() { h.fs.crashed = true }()
		}
	}
	h.f.durable = append([]byte(nil), h.f.data...)
	for name, f := range h.fs.files {
		if f == h.f {
			h.fs.durable[name] = f
		}
	}
	return nil
}

func (h *faultFile) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.checkCrashed(); err != nil {
		return err
	}
	if fp := h.fs.step(FaultTruncErr); fp != nil {
		switch fp.Kind {
		case FaultTruncErr:
			return errors.New("vfs: injected truncate error")
		case FaultCrash:
			defer func() { h.fs.crashed = true }()
		}
	}
	if int(size) < len(h.f.data) {
		h.f.data = h.f.data[:size]
	}
	for int(size) > len(h.f.data) {
		h.f.data = append(h.f.data, 0)
	}
	return nil
}

func (h *faultFile) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

// notExistError unwraps to fs.ErrNotExist so the server's missing-file
// probes (errors.Is(err, fs.ErrNotExist)) treat the in-memory FS and the
// real one identically.
type notExistError struct{ name string }

func (e *notExistError) Error() string { return "vfs: file does not exist: " + e.name }
func (e *notExistError) Unwrap() error { return iofs.ErrNotExist }

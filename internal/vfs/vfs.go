// Package vfs abstracts the file-system operations behind the server's
// durability paths (journal append, group-commit fsync, snapshot
// rotation, quarantine) so every one of them can be driven by a
// deterministic fault injector in tests.
//
// Two implementations:
//
//   - OS — the real file system, used in production. SyncDir fsyncs a
//     directory, which is what makes an atomic rename durable (the
//     classic crash-consistency requirement rename alone does not meet).
//   - Fault (fault.go) — a memory-backed file system with an explicit
//     durable/volatile split and scripted fault points: fsync errors,
//     short writes, torn final writes, silent bit flips, and "crash
//     after op N" power-loss simulation that discards everything not
//     yet fsynced.
//
// The interface is the small set the server actually needs, not a
// general VFS: opening for read and append, whole-file reads, atomic
// create+rename, and the two sync primitives.
package vfs

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the handle type returned by an FS. It is the subset of
// *os.File the journal and snapshot paths use.
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FS is the file-system surface of the durability paths. Paths are
// interpreted by the implementation; the OS implementation passes them
// to the real file system verbatim.
type FS interface {
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Create creates (or truncates) a file for writing.
	Create(name string) (File, error)
	// OpenAppend opens a file for appending, creating it if absent —
	// the journal's open mode.
	OpenAppend(name string) (File, error)
	// ReadFile returns the whole content of a file.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname. Durability of
	// the name change itself requires a SyncDir of the parent.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// Stat reports a file's size (the only attribute the server needs).
	Stat(name string) (int64, error)
	// ReadDir lists the file names in a directory, sorted.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs a directory, making renames and creates in it
	// durable. dir may be "" or "." for the current directory.
	SyncDir(dir string) error
}

// OS is the real file system.
type OS struct{}

func (OS) Open(name string) (File, error)   { return os.Open(name) }
func (OS) Create(name string) (File, error) { return os.Create(name) }

func (OS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (OS) Remove(name string) error             { return os.Remove(name) }

func (OS) Stat(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (OS) ReadDir(dir string) ([]string, error) {
	if dir == "" {
		dir = "."
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OS) SyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// DirOf returns the directory containing name, for SyncDir calls after
// an atomic rename into that directory.
func DirOf(name string) string { return filepath.Dir(name) }

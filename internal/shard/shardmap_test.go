package shard

import (
	"strings"
	"testing"
)

func mustMap(t *testing.T, shards []*Shard, def *Shard) *Map {
	t.Helper()
	m, err := NewMap(shards, def)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	return m
}

func TestParseMapRoundTrip(t *testing.T) {
	conf := `
# carved shards
shard s0 127.0.0.1:4001 ou=u1,o=org0;ou=u2,o=org0
shard s1 127.0.0.1:4002 ou=lab net 4,o=org0

default rest 127.0.0.1:4000
`
	m, err := ParseMap(strings.NewReader(conf))
	if err != nil {
		t.Fatalf("ParseMap: %v", err)
	}
	if len(m.Shards) != 2 || m.Default == nil {
		t.Fatalf("parsed %d shards, default=%v", len(m.Shards), m.Default)
	}
	if got := m.Shards[1].Roots; len(got) != 1 || got[0] != "ou=lab net 4,o=org0" {
		t.Fatalf("spaced root mangled: %q", got)
	}
	// Render must parse back to the same map (the SHARDMAP contract).
	again, err := ParseMap(strings.NewReader(strings.Join(m.Render(), "\n") + "\n"))
	if err != nil {
		t.Fatalf("re-parse rendered map: %v", err)
	}
	if strings.Join(again.Render(), "\n") != strings.Join(m.Render(), "\n") {
		t.Fatalf("render not stable:\n%v\nvs\n%v", m.Render(), again.Render())
	}
}

func TestParseMapRejects(t *testing.T) {
	cases := []struct {
		name, conf, want string
	}{
		{"unknown directive", "frob s0 127.0.0.1:1 o=x\n", "unknown directive"},
		{"missing roots", "shard s0 127.0.0.1:1\n", "needs"},
		{"duplicate default", "default a 127.0.0.1:1\ndefault b 127.0.0.1:2\n", "duplicate default"},
		{"duplicate name", "shard a 127.0.0.1:1 o=x\ndefault a 127.0.0.1:2\n", "duplicate shard name"},
		{"duplicate root", "shard a 127.0.0.1:1 o=x\nshard b 127.0.0.1:2 o=x\n", "owned by both"},
		{"nested roots", "shard a 127.0.0.1:1 o=x\nshard b 127.0.0.1:2 ou=y,o=x\n", "inside root"},
		{"empty", "\n", "no shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseMap(strings.NewReader(tc.conf))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error mentioning %q, got %v", tc.want, err)
			}
		})
	}
}

func TestOwnerSpineHolders(t *testing.T) {
	s0 := &Shard{Name: "s0", Addr: "a0", Roots: []string{"ou=u1,o=org0"}}
	s1 := &Shard{Name: "s1", Addr: "a1", Roots: []string{"ou=u2,ou=hq,o=org0"}}
	def := &Shard{Name: "rest", Addr: "a2"}
	m := mustMap(t, []*Shard{s0, s1}, def)

	if got := m.Spine(); len(got) != 2 || got[0] != "o=org0" || got[1] != "ou=hq,o=org0" {
		t.Fatalf("spine = %v", got)
	}
	for dn, want := range map[string]*Shard{
		"ou=u1,o=org0":        s0,
		"uid=p9,ou=u1,o=org0": s0,
		"ou=u2,ou=hq,o=org0":  s1,
		"ou=hq,o=org0":        def, // spine entry: owned (real copy) by the default shard
		"o=org0":              def,
		"uid=p1,o=org0":       def,
		"ou=u10,o=org0":       def, // prefix of a root's RDN is not containment
		"o=elsewhere":         def,
	} {
		if got := m.Owner(dn); got != want {
			t.Errorf("Owner(%q) = %v, want %v", dn, got, want)
		}
	}
	if !m.IsSpine("o=org0") || !m.IsSpine("ou=hq,o=org0") || m.IsSpine("ou=u1,o=org0") {
		t.Fatalf("IsSpine misclassifies")
	}
	if sh := m.RootShard("ou=u1,o=org0"); sh != s0 {
		t.Fatalf("RootShard = %v", sh)
	}
	// o=org0 is above both carved roots: held by s0, s1 and the default.
	hs := m.Holders("o=org0")
	if len(hs) != 3 || hs[0] != s0 || hs[1] != s1 || hs[2] != def {
		t.Fatalf("Holders(o=org0) = %v", names(hs))
	}
	// ou=hq,o=org0 is only above s1's root.
	hs = m.Holders("ou=hq,o=org0")
	if len(hs) != 2 || hs[0] != s1 || hs[1] != def {
		t.Fatalf("Holders(ou=hq) = %v", names(hs))
	}
	// Non-spine DN: just the owner.
	hs = m.Holders("uid=p9,ou=u1,o=org0")
	if len(hs) != 1 || hs[0] != s0 {
		t.Fatalf("Holders(non-spine) = %v", names(hs))
	}

	// Without a default shard, spine and outside DNs are unroutable.
	m2 := mustMap(t, []*Shard{{Name: "s0", Addr: "a0", Roots: []string{"ou=u1,o=org0"}}}, nil)
	if m2.Owner("o=org0") != nil || m2.Owner("o=elsewhere") != nil {
		t.Fatalf("no-default map should leave spine/outside DNs unowned")
	}
	if hs := m2.Holders("o=org0"); len(hs) != 1 || hs[0].Name != "s0" {
		t.Fatalf("no-default Holders = %v", names(hs))
	}
}

func names(hs []*Shard) []string {
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = h.Name
	}
	return out
}

func TestCompareDNHierarchical(t *testing.T) {
	dns := []string{
		"uid=p2,ou=u1,o=org0",
		"o=org0",
		"ou=u10,o=org0",
		"ou=u1,o=org0",
		"uid=p1,ou=u1,o=org0",
		"ou=u2,o=org0",
		"uid=zz,ou=u10,o=org0",
	}
	SortDNs(dns)
	want := []string{
		"o=org0",
		"ou=u1,o=org0",
		"uid=p1,ou=u1,o=org0",
		"uid=p2,ou=u1,o=org0",
		"ou=u10,o=org0",
		"uid=zz,ou=u10,o=org0",
		"ou=u2,o=org0",
	}
	for i := range want {
		if dns[i] != want[i] {
			t.Fatalf("canonical order:\n got %v\nwant %v", dns, want)
		}
	}
	// Ancestors always sort before descendants: subtrees are contiguous.
	if CompareDN("o=org0", "uid=deep,ou=a,ou=b,o=org0") >= 0 {
		t.Fatal("ancestor must sort before descendant")
	}
	if UnderDN("ou=u10,o=org0", "ou=u1,o=org0") {
		t.Fatal("RDN prefix is not subtree containment")
	}
}

func TestProperAncestors(t *testing.T) {
	got := ProperAncestors("uid=p,ou=u,o=org0")
	if len(got) != 2 || got[0] != "ou=u,o=org0" || got[1] != "o=org0" {
		t.Fatalf("ProperAncestors = %v", got)
	}
	if got := ProperAncestors("o=org0"); len(got) != 0 {
		t.Fatalf("root has ancestors: %v", got)
	}
}

// Package shard partitions one bounding-schema directory across shard
// processes by subtree — the deployment Theorem 4.1 licenses: update
// transactions normalize into independent subtree insertions and
// deletions (Δ-queries), so a cut that keeps whole subtrees together
// keeps almost all legality checking shard-local.
//
// The pieces:
//
//   - Map (this file): the static shard map — named shards owning
//     disjoint subtree roots, plus an optional default shard owning
//     everything else. The map also derives the *spine*: the proper
//     ancestors of every carved root, the only entries whose
//     descendant sets span shards.
//   - Carve / AutoCut (carve.go): split one legal instance into
//     per-shard instances, replicating the spine as ghost entries so
//     every shard instance is legal on its own.
//   - Router (router.go): a process speaking the server's line
//     protocol, routing DN-prefixed commands to the owning shard and
//     fanning reads out with merged, deterministically ordered
//     results.
//   - coordinator (coordinator.go): the thin cross-shard legality
//     layer — boundary counts over the spine via the COUNT command.
package shard

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Shard is one member of the map: a name, the client-protocol address,
// and the subtree roots it owns. The default shard has no roots — it
// owns every DN no carved root covers, including the real spine
// entries.
type Shard struct {
	Name  string
	Addr  string
	Roots []string
}

// Map is the static shard map. Shards hold the carved shards in config
// order; Default (optional) owns the remainder of the forest.
type Map struct {
	Shards  []*Shard
	Default *Shard

	spine   []string        // proper ancestors of all roots, canonical order
	spineIn map[string]bool // membership index over spine
	rootIn  map[string]*Shard
}

// ParseMap reads the shard map config: one directive per line,
//
//	shard <name> <addr> <root>[;<root>...]
//	default <name> <addr>
//
// '#' starts a comment. Roots are subtree DNs; they may contain spaces
// (DNs do), so the roots field is everything after the address, split
// on ';'. Carved roots must be disjoint: no root equal to or inside
// another.
func ParseMap(r io.Reader) (*Map, error) {
	m := &Map{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		word, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch word {
		case "shard":
			name, rest2, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("shardmap line %d: shard needs <name> <addr> <roots>", lineNo)
			}
			addr, roots, ok := strings.Cut(strings.TrimSpace(rest2), " ")
			if !ok {
				return nil, fmt.Errorf("shardmap line %d: shard %s needs <addr> <roots>", lineNo, name)
			}
			sh := &Shard{Name: name, Addr: addr}
			for _, root := range strings.Split(roots, ";") {
				root = strings.TrimSpace(root)
				if root == "" {
					return nil, fmt.Errorf("shardmap line %d: shard %s has an empty root", lineNo, name)
				}
				sh.Roots = append(sh.Roots, root)
			}
			m.Shards = append(m.Shards, sh)
		case "default":
			name, addr, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("shardmap line %d: default needs <name> <addr>", lineNo)
			}
			if m.Default != nil {
				return nil, fmt.Errorf("shardmap line %d: duplicate default shard", lineNo)
			}
			m.Default = &Shard{Name: name, Addr: strings.TrimSpace(addr)}
		default:
			return nil, fmt.Errorf("shardmap line %d: unknown directive %q", lineNo, word)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := m.init(); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadMap reads a shard map config file.
func LoadMap(path string) (*Map, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseMap(f)
}

// NewMap builds a validated map programmatically (tests, embedded
// clusters). defaultShard may be nil.
func NewMap(shards []*Shard, defaultShard *Shard) (*Map, error) {
	m := &Map{Shards: shards, Default: defaultShard}
	if err := m.init(); err != nil {
		return nil, err
	}
	return m, nil
}

// init validates the map and derives the spine and ownership indexes.
func (m *Map) init() error {
	if len(m.Shards) == 0 && m.Default == nil {
		return fmt.Errorf("shardmap: no shards")
	}
	names := map[string]bool{}
	m.rootIn = map[string]*Shard{}
	for _, sh := range m.allShards() {
		if sh.Name == "" || strings.ContainsAny(sh.Name, " \t") {
			return fmt.Errorf("shardmap: bad shard name %q", sh.Name)
		}
		if names[sh.Name] {
			return fmt.Errorf("shardmap: duplicate shard name %q", sh.Name)
		}
		names[sh.Name] = true
		if sh.Addr == "" {
			return fmt.Errorf("shardmap: shard %s has no address", sh.Name)
		}
	}
	for _, sh := range m.Shards {
		if len(sh.Roots) == 0 {
			return fmt.Errorf("shardmap: shard %s has no roots (use a default shard for the remainder)", sh.Name)
		}
		for _, root := range sh.Roots {
			if other, dup := m.rootIn[root]; dup {
				return fmt.Errorf("shardmap: root %q owned by both %s and %s", root, other.Name, sh.Name)
			}
			m.rootIn[root] = sh
		}
	}
	// Disjointness: no carved root strictly inside another carved root —
	// nested cuts would make the inner subtree owned twice.
	for r1 := range m.rootIn {
		for r2 := range m.rootIn {
			if r1 != r2 && UnderDN(r1, r2) {
				return fmt.Errorf("shardmap: root %q is inside root %q", r1, r2)
			}
		}
	}
	// The spine: every proper ancestor of every carved root. These are
	// the only entries whose descendant sets span shards; Carve
	// replicates them as ghosts and the coordinator audits across them.
	m.spineIn = map[string]bool{}
	for root := range m.rootIn {
		for _, anc := range ProperAncestors(root) {
			if !m.spineIn[anc] {
				m.spineIn[anc] = true
				m.spine = append(m.spine, anc)
			}
		}
	}
	SortDNs(m.spine)
	return nil
}

// allShards returns every shard, carved first, default (if any) last.
func (m *Map) allShards() []*Shard {
	out := append([]*Shard(nil), m.Shards...)
	if m.Default != nil {
		out = append(out, m.Default)
	}
	return out
}

// All returns every shard, carved first, default last.
func (m *Map) All() []*Shard { return m.allShards() }

// ByName returns the named shard, or nil.
func (m *Map) ByName(name string) *Shard {
	for _, sh := range m.allShards() {
		if sh.Name == name {
			return sh
		}
	}
	return nil
}

// Owner returns the shard owning dn: the carved shard whose root
// contains it, else the default shard, else nil (unroutable). Roots
// are disjoint, so at most one carved root matches.
func (m *Map) Owner(dn string) *Shard {
	for root, sh := range m.rootIn {
		if UnderDN(dn, root) {
			return sh
		}
	}
	return m.Default
}

// Spine returns the spine DNs in canonical order. Callers must not
// modify the returned slice.
func (m *Map) Spine() []string { return m.spine }

// IsSpine reports whether dn is a spine entry — a proper ancestor of
// some carved root, replicated as a ghost on the shards below it.
func (m *Map) IsSpine(dn string) bool { return m.spineIn[dn] }

// RootShard returns the carved shard for which dn is a root, or nil.
func (m *Map) RootShard(dn string) *Shard { return m.rootIn[dn] }

// Holders returns every shard holding a copy of the spine entry dn:
// the default shard (the real entry) plus each carved shard with a
// root below it (ghosts). For non-spine DNs it returns just the owner.
func (m *Map) Holders(dn string) []*Shard {
	if !m.spineIn[dn] {
		if sh := m.Owner(dn); sh != nil {
			return []*Shard{sh}
		}
		return nil
	}
	var out []*Shard
	for _, sh := range m.Shards {
		for _, root := range sh.Roots {
			if UnderDN(root, dn) && root != dn {
				out = append(out, sh)
				break
			}
		}
	}
	if m.Default != nil {
		out = append(out, m.Default)
	}
	return out
}

// Render prints the map in the config format SHARDMAP serves (and
// ParseMap reads back), spine DNs appended as comments.
func (m *Map) Render() []string {
	var out []string
	for _, sh := range m.Shards {
		out = append(out, fmt.Sprintf("shard %s %s %s", sh.Name, sh.Addr, strings.Join(sh.Roots, ";")))
	}
	if m.Default != nil {
		out = append(out, fmt.Sprintf("default %s %s", m.Default.Name, m.Default.Addr))
	}
	for _, s := range m.spine {
		out = append(out, "# spine "+s)
	}
	return out
}

// UnderDN reports whether dn lies in the subtree rooted at anc
// (inclusive): dn equals anc or ends in ","+anc. DNs are compared as
// the repo renders them — comma-joined RDNs, leaf first.
func UnderDN(dn, anc string) bool {
	return dn == anc || strings.HasSuffix(dn, ","+anc)
}

// ProperAncestors returns dn's proper ancestor DNs, nearest first.
func ProperAncestors(dn string) []string {
	var out []string
	for {
		_, rest, ok := strings.Cut(dn, ",")
		if !ok {
			return out
		}
		out = append(out, rest)
		dn = rest
	}
}

// CompareDN orders DNs hierarchically: by RDN path from the root down,
// ancestors before their descendants, so every subtree is one
// contiguous run — the deterministic merge order the router gives
// fanned-out SEARCH results regardless of per-shard insertion order.
func CompareDN(a, b string) int {
	ap, bp := strings.Split(a, ","), strings.Split(b, ",")
	for i, j := len(ap)-1, len(bp)-1; i >= 0 && j >= 0; i, j = i-1, j-1 {
		if c := strings.Compare(ap[i], bp[j]); c != 0 {
			return c
		}
	}
	return len(ap) - len(bp)
}

// SortDNs sorts DNs in the canonical hierarchical order.
func SortDNs(dns []string) {
	sort.Slice(dns, func(i, j int) bool { return CompareDN(dns[i], dns[j]) < 0 })
}

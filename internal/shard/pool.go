package shard

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"time"

	"boundschema/internal/repl"
)

// poolMaxIdle caps idle connections kept per shard; beyond it, returned
// connections are closed.
const poolMaxIdle = 4

// dialTimeout bounds one dial attempt; ioTimeout bounds one routed
// command round-trip so a wedged shard cannot wedge the router session
// holding the connection.
const (
	dialTimeout = 2 * time.Second
	ioTimeout   = 30 * time.Second
)

// reply is one framed protocol reply: payload lines and the
// OK/ILLEGAL/ERR terminator — the framing rule shared with
// internal/loadgen's client and pinned by the ERR-grammar tests.
type reply struct {
	lines []string
	term  string // "OK", "ILLEGAL" or "ERR"
	err   string // message after "ERR "
}

func (r reply) ok() bool { return r.term == "OK" }

// pool hands out pooled connections to one shard, redialing with the
// replication transport's equal-jitter backoff: shards restart, and a
// router that redials in lockstep across sessions hammers the
// recovering shard exactly when it is weakest.
type pool struct {
	shard  *Shard
	dialer func(addr string, timeout time.Duration) (net.Conn, error)

	mu     sync.Mutex
	idle   []*shardConn
	closed bool
}

type shardConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

func newShardConn(c net.Conn) *shardConn {
	return &shardConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
}

func newPool(sh *Shard, dialer func(string, time.Duration) (net.Conn, error)) *pool {
	if dialer == nil {
		dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return &pool{shard: sh, dialer: dialer}
}

// get pops an idle connection or dials a fresh one, retrying with
// jittered backoff within one bounded budget (~1 s) before giving up —
// the router reports the shard unavailable rather than hanging the
// client session.
func (p *pool) get() (*shardConn, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	backoff := 50 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		if attempt > 0 {
			time.Sleep(repl.JitterBackoff(backoff))
			backoff = repl.NextBackoff(backoff, 400*time.Millisecond)
		}
		conn, err := p.dialer(p.shard.Addr, dialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		return newShardConn(conn), nil
	}
	return nil, lastErr
}

// put returns a connection whose last reply was read cleanly. Anything
// suspect (transport error, a transaction replay that erred early and
// may have queued extra replies) must be discarded with c.close()
// instead — a pooled connection with stale replies would desync the
// next borrower.
func (p *pool) put(c *shardConn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || len(p.idle) >= poolMaxIdle {
		c.close()
		return
	}
	p.idle = append(p.idle, c)
}

func (p *pool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, c := range p.idle {
		c.close()
	}
	p.idle = nil
}

func (c *shardConn) close() { c.c.Close() }

// send writes lines without reading a reply (transaction bodies
// produce none).
func (c *shardConn) send(lines ...string) error {
	c.c.SetDeadline(time.Now().Add(ioTimeout))
	for _, l := range lines {
		if _, err := c.w.WriteString(l + "\n"); err != nil {
			return err
		}
	}
	return c.w.Flush()
}

// read consumes one framed reply.
func (c *shardConn) read() (reply, error) {
	c.c.SetDeadline(time.Now().Add(ioTimeout))
	var r reply
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return r, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "OK", line == "ILLEGAL":
			r.term = line
			return r, nil
		case strings.HasPrefix(line, "ERR "):
			r.term = "ERR"
			r.err = line[len("ERR "):]
			return r, nil
		default:
			r.lines = append(r.lines, line)
		}
	}
}

// do runs one command and reads its reply.
func (c *shardConn) do(line string) (reply, error) {
	if err := c.send(line); err != nil {
		return reply{}, err
	}
	return c.read()
}

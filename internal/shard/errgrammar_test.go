package shard

import (
	"strings"
	"testing"
)

// The router obeys the same ERR grammar the shard server pins in its
// own errgrammar tests: every refusal is exactly one "ERR <message>"
// line — no payload lines, no embedded newlines, non-empty message —
// and the session stays usable afterwards. The load harness's framing
// and its error taxonomy (wrong_shard, cross_shard, shard_down) parse
// these messages, so the wording is contract, not decoration.

// expectRouterErr reads one reply and asserts the grammar.
func expectRouterErr(t *testing.T, c *shardConn, wantSub string) string {
	t.Helper()
	r, err := c.read()
	if err != nil {
		t.Fatalf("read ERR reply: %v", err)
	}
	if r.term != "ERR" {
		t.Fatalf("want ERR, got %s %v", r.term, r.lines)
	}
	if len(r.lines) != 0 {
		t.Errorf("ERR reply carried %d payload lines: %v", len(r.lines), r.lines)
	}
	if r.err == "" {
		t.Error("ERR with an empty message")
	}
	if strings.ContainsAny(r.err, "\n\r") {
		t.Errorf("ERR message holds a raw newline: %q", r.err)
	}
	if wantSub != "" && !strings.Contains(r.err, wantSub) {
		t.Errorf("ERR message %q does not mention %q", r.err, wantSub)
	}
	return r.err
}

// assertUsable proves the session survived the error: SHARDMAP always
// answers from the router's own state.
func assertUsable(t *testing.T, c *shardConn) {
	t.Helper()
	r, err := c.do("SHARDMAP")
	if err != nil || !r.ok() {
		t.Fatalf("session unusable after error: %v / %s %s", err, r.term, r.err)
	}
}

func TestRouterErrGrammar(t *testing.T) {
	c := startSharded(t, diffScenarios[0], 220, 2, 17)
	carved0 := c.m.Shards[0]
	carved1 := c.m.Shards[1]
	spine := c.m.Spine()[0]

	inCarved := func(sh *Shard) string { return "uid=g," + sh.Roots[0] }

	cases := []struct {
		name string
		send []string // each line sent; exactly one ERR reply expected in total
		want string
	}{
		{"unknown command", []string{"FROB o=org0"}, "unknown command"},
		{"query not routable", []string{"QUERY person"}, "not routable"},
		{"promote not routable", []string{"PROMOTE 3"}, "not routable"},
		{"bad search filter", []string{"SEARCH (bad"}, ""},
		{"bad count grammar", []string{"COUNT person bogus"}, "unexpected"},
		{"count missing class", []string{"COUNT"}, "needs a class"},
		{"add missing dn", []string{"BEGIN", "ADD"}, "ADD needs a DN"},
		{"attr line outside add", []string{"BEGIN", "name: stray"}, "unexpected"},
		{"malformed attr line", []string{"BEGIN", "ADD " + inCarved(carved0), "no colon here"}, "malformed attribute line"},
		{"malformed move", []string{"BEGIN", "MOVE uid=x,o=org0 to o=org0"}, "MOVE needs"},
		{"spine delete", []string{"BEGIN", "DELETE " + spine}, "cross-shard delete"},
		{"spine move", []string{"BEGIN", "MOVE " + spine + " -> o=org0"}, "cross-shard move"},
		{"shard root move", []string{"BEGIN", "MOVE " + carved0.Roots[0] + " -> " + carved1.Roots[0]}, "re-carve"},
		{"cross-shard move", []string{"BEGIN", "MOVE " + inCarved(carved0) + " -> " + carved1.Roots[0]}, "cross-shard move"},
		{"cross-shard transaction", []string{"BEGIN", "ADD " + inCarved(carved0), "ADD " + inCarved(carved1)}, "cross-shard transaction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn := dialTest(t, c.rtAddr)
			for i, line := range tc.send {
				if err := conn.send(line); err != nil {
					t.Fatalf("send %q: %v", line, err)
				}
				if line == "BEGIN" && i == 0 {
					if r, err := conn.read(); err != nil || !r.ok() {
						t.Fatalf("BEGIN: %v / %s", err, r.term)
					}
				}
			}
			expectRouterErr(t, conn, tc.want)
			assertUsable(t, conn)
			// An erring transaction is dropped: COMMIT outside one is an
			// unknown command, exactly as on a shard.
			if tc.send[0] == "BEGIN" {
				if err := conn.send("COMMIT"); err != nil {
					t.Fatal(err)
				}
				expectRouterErr(t, conn, "unknown command")
				assertUsable(t, conn)
			}
		})
	}
}

// TestRouterErrGrammarUnroutable drives the no-default-shard map: DNs
// outside every carved root have no owner and each command path says so
// with one parseable line.
func TestRouterErrGrammarUnroutable(t *testing.T) {
	// One carved shard, no default: reuse a running shard server from a
	// full cluster but front it with a root-only map.
	c := startSharded(t, diffScenarios[0], 220, 2, 19)
	carved := c.m.Shards[0]
	m := mustMap(t, []*Shard{{Name: carved.Name, Addr: carved.Addr, Roots: carved.Roots}}, nil)
	rt := NewRouter(m)
	addr, err := rt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("router listen: %v", err)
	}
	t.Cleanup(func() { rt.Close() })
	conn := dialTest(t, addr)

	outside := "uid=nobody,ou=elsewhere,o=org0"
	for _, tc := range []struct {
		name string
		send []string
	}{
		{"get", []string{"GET " + outside}},
		{"search base", []string{"SEARCH (objectClass=person) base=" + outside}},
		{"count base", []string{"COUNT person base=" + outside}},
		{"tx add", []string{"BEGIN", "ADD " + outside}},
		{"tx move", []string{"BEGIN", "MOVE " + outside + " -> o=org0"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for i, line := range tc.send {
				if err := conn.send(line); err != nil {
					t.Fatalf("send %q: %v", line, err)
				}
				if line == "BEGIN" && i == 0 {
					if r, err := conn.read(); err != nil || !r.ok() {
						t.Fatalf("BEGIN: %v / %s", err, r.term)
					}
				}
			}
			msg := expectRouterErr(t, conn, "unroutable dn")
			if !strings.Contains(msg, "no default shard") {
				t.Errorf("unroutable message should explain the missing default: %q", msg)
			}
			assertUsable(t, conn)
		})
	}

	// Routable traffic still flows on the same session: the carved
	// shard's own subtree answers.
	r, err := conn.do("SEARCH (objectClass=person) base=" + carved.Roots[0])
	if err != nil || !r.ok() {
		t.Fatalf("carved-subtree search after unroutable errors: %v / %s %s", err, r.term, r.err)
	}
}

// TestRouterErrGrammarShardDown pins the shard_down taxonomy: a dead
// shard yields one ERR naming the shard and the word "unavailable", and
// commands owned by live shards keep working on the same session.
func TestRouterErrGrammarShardDown(t *testing.T) {
	c := startSharded(t, diffScenarios[0], 220, 2, 23)
	down := c.m.Shards[0]
	c.crashShard(down.Name)

	conn := dialTest(t, c.rtAddr)
	// Drain any pooled connection still relaying the graceful shutdown.
	for attempt := 0; attempt < 3; attempt++ {
		r, err := conn.do("GET uid=g," + down.Roots[0])
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		if r.term != "ERR" {
			t.Fatalf("dead shard GET: want ERR, got %s", r.term)
		}
		if strings.Contains(r.err, "unavailable") {
			break
		}
	}
	if err := conn.send("GET uid=g," + down.Roots[0]); err != nil {
		t.Fatal(err)
	}
	msg := expectRouterErr(t, conn, "unavailable")
	if !strings.Contains(msg, down.Name) {
		t.Errorf("shard-down message should name the shard: %q", msg)
	}
	assertUsable(t, conn)

	// A transaction bound to the dead shard fails at COMMIT with the
	// same taxonomy...
	if r, err := conn.do("BEGIN"); err != nil || !r.ok() {
		t.Fatalf("BEGIN: %v", err)
	}
	if err := conn.send("DELETE uid=g,"+down.Roots[0], "COMMIT"); err != nil {
		t.Fatal(err)
	}
	expectRouterErr(t, conn, "unavailable")
	assertUsable(t, conn)

	// ...while the surviving shard's subtree still serves reads and
	// writes through the router.
	alive := c.m.Shards[1]
	if r, err := conn.do("SEARCH (objectClass=person) base=" + alive.Roots[0]); err != nil || !r.ok() {
		t.Fatalf("surviving shard search: %v / %s %s", err, r.term, r.err)
	}
}

package shard

import (
	"math/rand"
	"testing"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/workload"
)

// buildCutMap runs AutoCut over a corpus and wraps the chosen roots in
// a validated map with a default shard, mirroring what the embedded
// test clusters and `bschema carve` do.
func buildCutMap(t *testing.T, schema *core.Schema, src *dirtree.Directory, n int) *Map {
	t.Helper()
	roots, err := AutoCut(schema, src, n)
	if err != nil {
		t.Fatalf("AutoCut: %v", err)
	}
	var shards []*Shard
	for i, rs := range roots {
		if len(rs) > 0 {
			shards = append(shards, &Shard{Name: "s" + string(rune('0'+i)), Addr: "test", Roots: rs})
		}
	}
	if len(shards) == 0 {
		t.Fatal("AutoCut carved nothing")
	}
	return mustMap(t, shards, &Shard{Name: "rest", Addr: "test"})
}

// TestCarveLegalAndAccounted carves both reference workloads and checks
// the two invariants everything else rests on: every shard instance is
// legal on its own (server.New would refuse it otherwise), and entry
// counts add up once ghost multiplicity is subtracted.
func TestCarveLegalAndAccounted(t *testing.T) {
	scenarios := []struct {
		name   string
		schema *core.Schema
		corpus func(*core.Schema) *dirtree.Directory
	}{
		{"whitepages", workload.WhitePagesSchema(), func(s *core.Schema) *dirtree.Directory {
			return workload.Corpus(s, rand.New(rand.NewSource(7)), 300)
		}},
		{"netpolicy", workload.NetPolicySchema(), func(s *core.Schema) *dirtree.Directory {
			return workload.NetPolicyCorpus(s, rand.New(rand.NewSource(7)), 300)
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			src := sc.corpus(sc.schema)
			if !core.NewChecker(sc.schema).Check(src).Legal() {
				t.Fatal("corpus is not legal before carving")
			}
			m := buildCutMap(t, sc.schema, src, 3)
			dirs, err := Carve(src, m)
			if err != nil {
				t.Fatalf("Carve: %v", err)
			}
			checker := core.NewChecker(sc.schema)
			total := 0
			for name, d := range dirs {
				if rep := checker.Check(d); !rep.Legal() {
					t.Errorf("shard %s instance illegal: %v", name, rep.Violations)
				}
				total += d.Len()
			}
			ghosts := 0
			for _, s := range m.Spine() {
				ghosts += len(m.Holders(s)) - 1
			}
			if total-ghosts != src.Len() {
				t.Fatalf("entry accounting: sum %d - ghosts %d != source %d", total, ghosts, src.Len())
			}
			// Every source entry is owned by exactly one shard, and that
			// shard's instance holds it.
			for _, dn := range allDNs(src) {
				sh := m.Owner(dn)
				if sh == nil {
					t.Fatalf("source entry %q unowned", dn)
				}
				if dirs[sh.Name].ByDN(dn) == nil {
					t.Fatalf("owner %s does not hold %q", sh.Name, dn)
				}
			}
		})
	}
}

func allDNs(d *dirtree.Directory) []string {
	var out []string
	var walk func(e *dirtree.Entry)
	walk = func(e *dirtree.Entry) {
		out = append(out, e.DN())
		for _, c := range e.Children() {
			walk(c)
		}
	}
	for _, r := range d.Roots() {
		walk(r)
	}
	return out
}

// TestCarveRejectsUnknownRoot pins the error for a map naming a root
// the instance does not have.
func TestCarveRejectsUnknownRoot(t *testing.T) {
	schema := workload.WhitePagesSchema()
	src := workload.Corpus(schema, rand.New(rand.NewSource(1)), 60)
	m := mustMap(t, []*Shard{{Name: "s0", Addr: "x", Roots: []string{"ou=nosuch,o=org0"}}}, nil)
	if _, err := Carve(src, m); err == nil {
		t.Fatal("carving an absent root must fail")
	}
}

// TestAutoCutBalances checks the cut's shape properties: disjoint
// roots, no spine DN carved, and no shard left pathologically empty
// while another holds everything (the deal-to-smallest rule).
func TestAutoCutBalances(t *testing.T) {
	schema := workload.WhitePagesSchema()
	src := workload.Corpus(schema, rand.New(rand.NewSource(11)), 400)
	roots, err := AutoCut(schema, src, 2)
	if err != nil {
		t.Fatalf("AutoCut: %v", err)
	}
	if len(roots) != 2 {
		t.Fatalf("want 2 root sets, got %d", len(roots))
	}
	seen := map[string]bool{}
	for _, rs := range roots {
		for _, r := range rs {
			if seen[r] {
				t.Fatalf("root %q dealt twice", r)
			}
			seen[r] = true
			if src.ByDN(r) == nil {
				t.Fatalf("root %q not in source", r)
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("no subtrees carved at all")
	}
	// Both sets should get something on a 400-entry corpus with many
	// depth-1 units.
	if len(roots[0]) == 0 || len(roots[1]) == 0 {
		t.Fatalf("unbalanced deal: %v", roots)
	}
}

package shard

import (
	"fmt"
	"strings"
	"sync"

	"boundschema/internal/core"
	"boundschema/internal/schemadsl"
)

// coordinator is the thin cross-shard legality layer. Shard-local
// checks already imply global legality for every element except
// cross-shard key uniqueness (see Carve): upward axes and forbidden
// rels are exact because every entry's ancestor chain is present on
// its shard, and downward required rels are checked *more* strictly
// per shard than the global instance demands. What remains worth
// verifying is that the deployment actually upholds the ghost
// invariant — a mis-carved shard, a map edit behind the router's back.
// The coordinator audits exactly the spanning Δ-queries the paper's
// Theorem 4.1 localizes to the cut: for each spine entry, the
// downward required and forbidden relationships, evaluated as
// boundary counts (COUNT) over every shard below the cut, with the
// statically known ghost multiplicity subtracted.
type coordinator struct {
	rt *Router

	mu           sync.Mutex
	schema       *core.Schema
	spineClasses map[string][]string // spine DN -> object classes (ghosts never change)
}

func newCoordinator(rt *Router) *coordinator {
	return &coordinator{rt: rt}
}

// ensureSchema fetches and parses the schema from the anchor shard
// once; every shard serves the same schema.
func (co *coordinator) ensureSchema() (*core.Schema, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.schema != nil {
		return co.schema, nil
	}
	sh := co.rt.anchorShard()
	r, err := co.rt.do(sh, "SCHEMA")
	if err != nil {
		return nil, fmt.Errorf("shard %s unavailable: %v", sh.Name, err)
	}
	if !r.ok() {
		return nil, fmt.Errorf("shard %s: SCHEMA: %s", sh.Name, r.err)
	}
	schema, _, err := schemadsl.Parse(strings.Join(r.lines, "\n") + "\n")
	if err != nil {
		return nil, fmt.Errorf("shard %s: parse schema: %v", sh.Name, err)
	}
	co.schema = schema
	return schema, nil
}

// ensureSpine fetches each spine entry's object classes once, from a
// holder. Ghosts are immutable by construction (no modify command;
// spine DELETE/MOVE refused), so the cache never goes stale.
func (co *coordinator) ensureSpine() (map[string][]string, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.spineClasses != nil {
		return co.spineClasses, nil
	}
	out := make(map[string][]string, len(co.rt.m.Spine()))
	for _, dn := range co.rt.m.Spine() {
		hs := co.rt.m.Holders(dn)
		if len(hs) == 0 {
			return nil, fmt.Errorf("spine entry %q has no holding shard", dn)
		}
		sh := hs[len(hs)-1] // the default shard holds the real entry, when present
		r, err := co.rt.do(sh, "GET "+dn)
		if err != nil {
			return nil, fmt.Errorf("shard %s unavailable: %v", sh.Name, err)
		}
		if !r.ok() {
			return nil, fmt.Errorf("shard %s: spine entry %q: %s", sh.Name, dn, r.err)
		}
		var classes []string
		for _, l := range r.lines {
			if v, ok := strings.CutPrefix(l, "objectClass: "); ok {
				classes = append(classes, v)
			}
		}
		out[dn] = classes
	}
	co.spineClasses = out
	return out, nil
}

// correction returns the ghost multiplicity to subtract from a summed
// boundary count: each spine entry in scope exists once in the global
// instance but len(Holders)-1 extra times across the fanned-out
// shards. Derived statically from the map plus the cached spine
// classes — no per-query shard round-trips.
func (co *coordinator) correction(class, base string, hasBase, childOnly bool) (int, error) {
	spineClasses, err := co.ensureSpine()
	if err != nil {
		return 0, err
	}
	corr := 0
	for _, s := range co.rt.m.Spine() {
		switch {
		case !hasBase:
			// whole instance: every spine entry is in scope
		case childOnly:
			if parent := parentDN(s); parent != base {
				continue
			}
		default:
			if s == base || !UnderDN(s, base) {
				continue
			}
		}
		if !hasClass(spineClasses[s], class) {
			continue
		}
		if extra := len(co.rt.m.Holders(s)) - 1; extra > 0 {
			corr += extra
		}
	}
	return corr, nil
}

// audit evaluates the spanning legality elements across the cut and
// returns violation descriptions (empty = clean): per spine entry the
// downward required rels (is there a witness below the boundary,
// summed over shards?) and downward forbidden rels (is there a
// violating entry below?), plus the instance-wide required classes.
func (co *coordinator) audit() ([]string, error) {
	schema, err := co.ensureSchema()
	if err != nil {
		return nil, err
	}
	spineClasses, err := co.ensureSpine()
	if err != nil {
		return nil, err
	}
	var viols []string
	for _, dn := range co.rt.m.Spine() {
		classes := spineClasses[dn]
		for _, rel := range schema.Structure.RequiredRels() {
			if !downward(rel.Axis) || !hasClass(classes, rel.Source) {
				continue
			}
			n, err := co.rt.countAcrossShards(rel.Target, dn, true, rel.Axis == core.AxisChild)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				viols = append(viols, fmt.Sprintf("entry %s: required %s has no witness across shards", dn, rel.ElementString()))
			}
		}
		for _, rel := range schema.Structure.ForbiddenRels() {
			if !hasClass(classes, rel.Upper) {
				continue
			}
			n, err := co.rt.countAcrossShards(rel.Lower, dn, true, rel.Axis == core.AxisChild)
			if err != nil {
				return nil, err
			}
			if n > 0 {
				viols = append(viols, fmt.Sprintf("entry %s: forbidden %s has %d violating entries across shards", dn, rel.ElementString(), n))
			}
		}
	}
	for _, c := range schema.Structure.RequiredClasses() {
		n, err := co.rt.countAcrossShards(c, "", false, false)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			viols = append(viols, fmt.Sprintf("required class %s⇓ has no entries across shards", c))
		}
	}
	return viols, nil
}

func downward(a core.Axis) bool { return a == core.AxisChild || a == core.AxisDesc }

func hasClass(classes []string, c string) bool {
	for _, have := range classes {
		if have == c {
			return true
		}
	}
	return false
}

func parentDN(dn string) string {
	_, rest, _ := strings.Cut(dn, ",")
	return rest
}

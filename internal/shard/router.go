package shard

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"boundschema/internal/server"
)

// Router speaks the server's line protocol in front of a shard map:
// DN-prefixed commands go to the owning shard over pooled connections,
// reads without a routable base fan out to every shard and come back
// merged in canonical hierarchical DN order. Transactions are buffered
// at the router and replayed to the single owning shard at COMMIT —
// Theorem 4.1's normalized Δs are subtree-confined, so a transaction
// that would span two shards is refused with a parseable ERR rather
// than half-applied.
//
// Scope: the router targets shard primaries. Replicas behind a shard
// still serve reads directly and failover behind a shard is the
// operator's shard-map edit — the router adds partitioning, not
// another consensus layer.
type Router struct {
	m     *Map
	pools map[string]*pool
	coord *coordinator

	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	connsMu   sync.Mutex
	conns     map[net.Conn]struct{}

	errorLog *log.Logger
	dialer   func(addr string, timeout time.Duration) (net.Conn, error)

	// metrics, served by METRICS.
	cmdsTotal   atomic.Int64
	fanouts     atomic.Int64
	unroutable  atomic.Int64
	crossShard  atomic.Int64
	shardErrors atomic.Int64
	routedMu    sync.Mutex
	routed      map[string]int64 // per shard name
}

// NewRouter builds a router over a validated map. Call Listen to serve.
func NewRouter(m *Map) *Router {
	rt := &Router{
		m:      m,
		pools:  make(map[string]*pool),
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
		routed: make(map[string]int64),
	}
	for _, sh := range m.All() {
		rt.pools[sh.Name] = newPool(sh, nil)
	}
	rt.coord = newCoordinator(rt)
	return rt
}

// SetErrorLog installs a logger for operational events. nil discards.
func (rt *Router) SetErrorLog(l *log.Logger) { rt.errorLog = l }

// SetDialer replaces the dialer behind every shard pool (tests thread
// fault injectors through it). Call before Listen.
func (rt *Router) SetDialer(d func(addr string, timeout time.Duration) (net.Conn, error)) {
	rt.dialer = d
	for _, sh := range rt.m.All() {
		rt.pools[sh.Name] = newPool(sh, d)
	}
}

// Map returns the router's shard map.
func (rt *Router) Map() *Map { return rt.m }

func (rt *Router) logf(format string, args ...any) {
	if rt.errorLog != nil {
		rt.errorLog.Printf(format, args...)
	}
}

// Listen starts accepting client sessions on addr and returns the
// bound address.
func (rt *Router) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	rt.ln = ln
	rt.wg.Add(1)
	go rt.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener, closes client sessions and shard pools.
func (rt *Router) Close() error {
	rt.closeOnce.Do(func() { close(rt.closed) })
	var err error
	if rt.ln != nil {
		err = rt.ln.Close()
	}
	rt.connsMu.Lock()
	for c := range rt.conns {
		c.Close()
	}
	rt.connsMu.Unlock()
	rt.wg.Wait()
	for _, p := range rt.pools {
		p.close()
	}
	return err
}

func (rt *Router) acceptLoop() {
	defer rt.wg.Done()
	for {
		conn, err := rt.ln.Accept()
		if err != nil {
			select {
			case <-rt.closed:
				return
			default:
			}
			rt.logf("router: accept: %v", err)
			select {
			case <-time.After(5 * time.Millisecond):
			case <-rt.closed:
				return
			}
			continue
		}
		rt.connsMu.Lock()
		rt.conns[conn] = struct{}{}
		rt.connsMu.Unlock()
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			defer func() {
				rt.connsMu.Lock()
				delete(rt.conns, conn)
				rt.connsMu.Unlock()
				conn.Close()
			}()
			rt.serve(conn)
		}()
	}
}

// rsession is one client session at the router. Transactions are
// buffered here — body lines produce no replies, exactly as on a
// shard — and replayed on COMMIT.
type rsession struct {
	rt *Router
	w  *bufio.Writer

	inTx       bool
	txShard    *Shard
	txBody     []string
	pendingAdd bool
}

func (rt *Router) serve(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	se := &rsession{rt: rt, w: bufio.NewWriter(conn)}
	for {
		select {
		case <-rt.closed:
			se.err("router shutting down")
			se.w.Flush()
			return
		default:
		}
		if !sc.Scan() {
			se.w.Flush()
			return
		}
		line := strings.TrimRight(sc.Text(), "\r")
		rt.cmdsTotal.Add(1)
		quit := se.handle(line)
		se.w.Flush()
		if quit {
			return
		}
	}
}

func (se *rsession) reply(lines ...string) {
	for _, l := range lines {
		se.w.WriteString(l)
		se.w.WriteByte('\n')
	}
}

func (se *rsession) ok() { se.reply("OK") }

func (se *rsession) err(msg string) {
	se.reply("ERR " + strings.ReplaceAll(msg, "\n", " | "))
}

func (se *rsession) errf(format string, args ...any) { se.err(fmt.Sprintf(format, args...)) }

// relay writes a shard's reply verbatim.
func (se *rsession) relay(r reply) {
	se.reply(r.lines...)
	switch r.term {
	case "ERR":
		se.err(r.err)
	default:
		se.reply(r.term)
	}
}

func splitCommand(line string) (string, string) {
	cmd, rest, _ := strings.Cut(line, " ")
	return strings.ToUpper(cmd), rest
}

func (se *rsession) handle(line string) bool {
	trimmed := strings.TrimSpace(line)
	if se.inTx {
		return se.handleTx(trimmed)
	}
	cmd, rest := splitCommand(trimmed)
	switch cmd {
	case "":
		// blank line between commands
	case "QUIT":
		se.ok()
		return true
	case "SEARCH":
		se.search(rest)
	case "GET":
		se.routeByDN(strings.TrimSpace(rest), trimmed)
	case "COUNT":
		se.count(rest)
	case "BEGIN":
		se.inTx = true
		se.txShard = nil
		se.txBody = nil
		se.pendingAdd = false
		se.ok()
	case "CHECK":
		se.check()
	case "VERIFY":
		se.fanVerify("VERIFY")
	case "SNAPSHOT":
		se.fanVerify("SNAPSHOT")
	case "STAT":
		se.stat()
	case "METRICS":
		se.metricsCmd()
	case "SHARDMAP":
		se.reply(se.rt.m.Render()...)
		se.ok()
	case "SCHEMA", "CONSISTENT":
		sh := se.rt.anchorShard()
		r, err := se.rt.do(sh, trimmed)
		if err != nil {
			se.shardDown(sh, err)
			return false
		}
		se.relay(r)
	case "QUERY":
		se.err("QUERY is not routable; connect to a shard directly")
	case "PROMOTE":
		se.err("PROMOTE is not routable; promote the shard node directly")
	default:
		se.errf("unknown command %q", cmd)
	}
	return false
}

// handleTx mirrors the shard server's in-transaction grammar: body
// lines are silent on success, any protocol error replies immediately
// and drops the transaction.
func (se *rsession) handleTx(line string) bool {
	cmd, rest := splitCommand(line)
	switch cmd {
	case "ADD":
		se.pendingAdd = false
		dn := strings.TrimSpace(rest)
		if dn == "" {
			se.err("ADD needs a DN")
			se.abortTx()
			return false
		}
		if !se.bindTx(dn) {
			return false
		}
		se.pendingAdd = true
		se.txBody = append(se.txBody, line)
	case "DELETE":
		se.pendingAdd = false
		dn := strings.TrimSpace(rest)
		if se.rt.m.IsSpine(dn) {
			se.rt.crossShard.Add(1)
			se.errf("cross-shard delete: %q is a spine entry whose subtree spans shards", dn)
			se.abortTx()
			return false
		}
		if !se.bindTx(dn) {
			return false
		}
		se.txBody = append(se.txBody, line)
	case "MOVE":
		se.pendingAdd = false
		if !se.moveTx(line, rest) {
			return false
		}
	case "COMMIT":
		se.pendingAdd = false
		se.commit()
	case "ABORT":
		se.abortTx()
		se.ok()
	case "":
		// blank line inside a transaction is a no-op
	default:
		if !se.pendingAdd {
			se.errf("unexpected %q inside transaction", line)
			se.abortTx()
			return false
		}
		if !strings.Contains(line, ":") {
			se.errf("malformed attribute line %q", line)
			se.abortTx()
			return false
		}
		se.txBody = append(se.txBody, line)
	}
	return false
}

// bindTx resolves dn's owner and binds the transaction to it. A DN no
// shard owns, or one owned by a different shard than the transaction
// is already bound to, replies ERR and drops the transaction.
func (se *rsession) bindTx(dn string) bool {
	owner := se.rt.m.Owner(dn)
	if owner == nil {
		se.rt.unroutable.Add(1)
		se.errf("unroutable dn %q: no shard owns it and the map has no default shard", dn)
		se.abortTx()
		return false
	}
	if se.txShard == nil {
		se.txShard = owner
		return true
	}
	if se.txShard != owner {
		se.rt.crossShard.Add(1)
		se.errf("cross-shard transaction: %q is owned by shard %s but the transaction is bound to shard %s",
			dn, owner.Name, se.txShard.Name)
		se.abortTx()
		return false
	}
	return true
}

// moveTx validates a MOVE line: the moved subtree and its destination
// must live on one shard, and neither may disturb the spine or the
// shard cut itself.
func (se *rsession) moveTx(line, rest string) bool {
	dn, dest, ok := strings.Cut(strings.TrimSpace(rest), " -> ")
	if !ok {
		if d, rootOK := strings.CutSuffix(strings.TrimSpace(rest), " ->"); rootOK {
			dn, dest, ok = d, "", true
		}
	}
	if !ok {
		se.err(`MOVE needs "<dn> -> <dest>" ("<dn> ->" moves to the forest root)`)
		se.abortTx()
		return false
	}
	dn, dest = strings.TrimSpace(dn), strings.TrimSpace(dest)
	m := se.rt.m
	if m.IsSpine(dn) {
		se.rt.crossShard.Add(1)
		se.errf("cross-shard move: %q is a spine entry whose subtree spans shards", dn)
		se.abortTx()
		return false
	}
	if sh := m.RootShard(dn); sh != nil {
		se.rt.crossShard.Add(1)
		se.errf("cross-shard move: %q is the root of shard %s; re-carve the map to move it", dn, sh.Name)
		se.abortTx()
		return false
	}
	rdn, _, _ := strings.Cut(dn, ",")
	newDN := rdn
	if dest != "" {
		newDN = rdn + "," + dest
	}
	srcOwner, dstOwner := m.Owner(dn), m.Owner(newDN)
	if srcOwner == nil || dstOwner == nil {
		se.rt.unroutable.Add(1)
		se.errf("unroutable dn %q: no shard owns it and the map has no default shard", dn)
		se.abortTx()
		return false
	}
	if srcOwner != dstOwner {
		se.rt.crossShard.Add(1)
		se.errf("cross-shard move: %q is owned by shard %s but destination %q is owned by shard %s; move within one shard or re-carve the map",
			dn, srcOwner.Name, newDN, dstOwner.Name)
		se.abortTx()
		return false
	}
	if !se.bindTx(dn) {
		return false
	}
	se.txBody = append(se.txBody, line)
	return true
}

func (se *rsession) abortTx() {
	se.inTx = false
	se.txShard = nil
	se.txBody = nil
	se.pendingAdd = false
}

// commit replays the buffered transaction to its owning shard and
// relays the COMMIT reply. An empty transaction commits against the
// anchor shard (it is a no-op everywhere).
func (se *rsession) commit() {
	sh := se.txShard
	if sh == nil {
		sh = se.rt.anchorShard()
	}
	body := se.txBody
	se.abortTx()
	se.rt.noteRouted(sh)
	p := se.rt.pools[sh.Name]
	conn, err := p.get()
	if err != nil {
		se.shardDown(sh, err)
		return
	}
	begin, err := conn.do("BEGIN")
	if err != nil {
		conn.close()
		se.shardDown(sh, err)
		return
	}
	if !begin.ok() {
		p.put(conn)
		se.relay(begin)
		return
	}
	if err := conn.send(append(body, "COMMIT")...); err != nil {
		conn.close()
		se.shardDown(sh, err)
		return
	}
	r, err := conn.read()
	if err != nil {
		conn.close()
		se.shardDown(sh, err)
		return
	}
	// An ERR reply can come from a mid-body line rather than COMMIT
	// itself; the shard session then queued further replies for the
	// remaining replayed lines. Discard the connection instead of
	// resynchronizing it.
	if r.term == "ERR" {
		conn.close()
	} else {
		p.put(conn)
	}
	se.relay(r)
}

func (se *rsession) shardDown(sh *Shard, err error) {
	se.rt.shardErrors.Add(1)
	se.errf("shard %s unavailable: %v", sh.Name, err)
}

// anchorShard is the shard schema-level queries go to: the default
// shard (it holds the real spine) or the first carved shard.
func (rt *Router) anchorShard() *Shard {
	if rt.m.Default != nil {
		return rt.m.Default
	}
	return rt.m.Shards[0]
}

func (rt *Router) noteRouted(sh *Shard) {
	rt.routedMu.Lock()
	rt.routed[sh.Name]++
	rt.routedMu.Unlock()
}

// do runs one single-reply command against a shard, retrying once on a
// transport error with a fresh connection. ERR replies leave the
// connection clean (one reply per command), so it is pooled again.
func (rt *Router) do(sh *Shard, line string) (reply, error) {
	rt.noteRouted(sh)
	p := rt.pools[sh.Name]
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		conn, err := p.get()
		if err != nil {
			return reply{}, err
		}
		r, err := conn.do(line)
		if err != nil {
			conn.close()
			lastErr = err
			continue
		}
		p.put(conn)
		return r, nil
	}
	return reply{}, lastErr
}

type fanRes struct {
	sh  *Shard
	r   reply
	err error
}

// fanOut runs one command against many shards concurrently, results in
// shard order.
func (rt *Router) fanOut(shards []*Shard, line string) []fanRes {
	rt.fanouts.Add(1)
	out := make([]fanRes, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			r, err := rt.do(sh, line)
			out[i] = fanRes{sh: sh, r: r, err: err}
		}(i, sh)
	}
	wg.Wait()
	return out
}

// routeByDN relays a whole command line to the shard owning dn (GET).
func (se *rsession) routeByDN(dn, line string) {
	sh := se.rt.m.Owner(dn)
	if sh == nil {
		if hs := se.rt.m.Holders(dn); len(hs) > 0 {
			sh = hs[0] // spine ghost on a map without a default shard
		}
	}
	if sh == nil {
		se.rt.unroutable.Add(1)
		se.errf("unroutable dn %q: no shard owns it and the map has no default shard", dn)
		return
	}
	r, err := se.rt.do(sh, line)
	if err != nil {
		se.shardDown(sh, err)
		return
	}
	se.relay(r)
}

// search parses with the server's own grammar, routes to the owning
// shard when the base pins one, else fans out to every shard (or the
// holders of a spine base) and merges: duplicates removed (spine
// ghosts exist on several shards), canonical hierarchical DN order,
// limit applied after the merge so it is deterministic regardless of
// which shard answers first.
func (se *rsession) search(rest string) {
	args, err := server.ParseSearchArgs(rest)
	if err != nil {
		se.err(err.Error())
		return
	}
	ds := "SEARCH " + args.Filter
	if args.HasBase {
		ds += " base=" + args.Base
	}
	var targets []*Shard
	switch {
	case !args.HasBase:
		targets = se.rt.m.All()
	case se.rt.m.IsSpine(args.Base):
		targets = se.rt.m.Holders(args.Base)
	default:
		sh := se.rt.m.Owner(args.Base)
		if sh == nil {
			se.rt.unroutable.Add(1)
			se.errf("unroutable dn %q: no shard owns it and the map has no default shard", args.Base)
			return
		}
		targets = []*Shard{sh}
	}
	results := se.rt.fanOut(targets, ds)
	seen := make(map[string]bool)
	var dns []string
	for _, fr := range results {
		if fr.err != nil {
			se.shardDown(fr.sh, fr.err)
			return
		}
		if fr.r.term != "OK" {
			if len(targets) == 1 {
				se.relay(fr.r) // e.g. base not found, byte-identical to a single node
			} else {
				se.errf("shard %s: %s", fr.sh.Name, fr.r.err)
			}
			return
		}
		for _, dn := range fr.r.lines {
			if !seen[dn] {
				seen[dn] = true
				dns = append(dns, dn)
			}
		}
	}
	SortDNs(dns)
	if args.Limit >= 0 && len(dns) > args.Limit {
		dns = dns[:args.Limit]
	}
	se.reply(dns...)
	se.ok()
}

// check fans CHECK out and, if every shard is locally legal, runs the
// coordinator's cross-shard audit over the spine. Shard-local
// violations come back prefixed with the shard name.
func (se *rsession) check() {
	var bad []string
	for _, fr := range se.rt.fanOut(se.rt.m.All(), "CHECK") {
		if fr.err != nil {
			se.shardDown(fr.sh, fr.err)
			return
		}
		switch fr.r.term {
		case "OK":
		case "ILLEGAL":
			for _, l := range fr.r.lines {
				bad = append(bad, fmt.Sprintf("# [%s] %s", fr.sh.Name, strings.TrimPrefix(l, "# ")))
			}
		default:
			se.errf("shard %s: %s", fr.sh.Name, fr.r.err)
			return
		}
	}
	if len(bad) > 0 {
		se.reply(bad...)
		se.reply("ILLEGAL")
		return
	}
	viols, err := se.rt.coord.audit()
	if err != nil {
		se.err(err.Error())
		return
	}
	if len(viols) > 0 {
		for _, v := range viols {
			se.reply("# cross-shard: " + v)
		}
		se.reply("ILLEGAL")
		return
	}
	se.ok()
}

// fanVerify fans VERIFY (or SNAPSHOT) to every shard, shard-labelling
// the comment lines. All OK ⇒ OK.
func (se *rsession) fanVerify(cmd string) {
	for _, fr := range se.rt.fanOut(se.rt.m.All(), cmd) {
		if fr.err != nil {
			se.shardDown(fr.sh, fr.err)
			return
		}
		if fr.r.term != "OK" {
			se.errf("shard %s: %s", fr.sh.Name, fr.r.err)
			return
		}
		for _, l := range fr.r.lines {
			se.reply(fmt.Sprintf("# [%s] %s", fr.sh.Name, strings.TrimPrefix(l, "# ")))
		}
	}
	se.ok()
}

// stat aggregates STAT across shards with ghost correction: spine
// entries exist once per holder but once in the directory, so each
// extra copy is subtracted from the entry and per-class totals.
func (se *rsession) stat() {
	spineClasses, err := se.rt.coord.ensureSpine()
	if err != nil {
		se.err(err.Error())
		return
	}
	type shardStat struct {
		sh      *Shard
		entries int
	}
	var per []shardStat
	total := 0
	classes := map[string]int{}
	for _, fr := range se.rt.fanOut(se.rt.m.All(), "STAT") {
		if fr.err != nil {
			se.shardDown(fr.sh, fr.err)
			return
		}
		if fr.r.term != "OK" {
			se.errf("shard %s: %s", fr.sh.Name, fr.r.err)
			return
		}
		st := shardStat{sh: fr.sh}
		for _, l := range fr.r.lines {
			if v, ok := strings.CutPrefix(l, "entries: "); ok {
				fmt.Sscanf(v, "%d", &st.entries)
			}
			if v, ok := strings.CutPrefix(l, "class "); ok {
				name, count, ok2 := strings.Cut(v, ": ")
				if ok2 {
					n := 0
					fmt.Sscanf(count, "%d", &n)
					classes[name] += n
				}
			}
		}
		total += st.entries
		per = append(per, st)
	}
	// Ghost correction: each spine entry is real once and ghosted on
	// len(Holders)-1 further shards.
	for _, s := range se.rt.m.Spine() {
		extra := len(se.rt.m.Holders(s)) - 1
		if extra <= 0 {
			continue
		}
		total -= extra
		for _, c := range spineClasses[s] {
			classes[c] -= extra
		}
	}
	se.reply("role: router")
	se.reply(fmt.Sprintf("shards: %d", len(se.rt.m.All())))
	for _, st := range per {
		se.reply(fmt.Sprintf("shard %s: addr=%s entries=%d", st.sh.Name, st.sh.Addr, st.entries))
	}
	se.reply(fmt.Sprintf("entries: %d", total))
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		se.reply(fmt.Sprintf("class %s: %d", c, classes[c]))
	}
	se.ok()
}

// count serves the COUNT grammar at the router: fanned out and
// ghost-corrected, so the answer matches what a single unsharded node
// would say.
func (se *rsession) count(rest string) {
	rest = strings.TrimSpace(rest)
	class, tail, _ := strings.Cut(rest, " ")
	if class == "" {
		se.err("COUNT needs a class (usage: COUNT <class> [child] [base=<dn>])")
		return
	}
	tail = strings.TrimSpace(tail)
	childOnly := false
	if t, ok := strings.CutPrefix(tail, "child"); ok && (t == "" || strings.HasPrefix(t, " ")) {
		childOnly = true
		tail = strings.TrimSpace(t)
	}
	baseDN, hasBase := strings.CutPrefix(tail, "base=")
	if tail != "" && !hasBase {
		se.errf("unexpected %q after class (usage: COUNT <class> [child] [base=<dn>])", tail)
		return
	}
	base := ""
	if hasBase {
		base = baseDN
	}
	n, err := se.rt.countAcrossShards(class, base, hasBase, childOnly)
	if err != nil {
		se.err(err.Error())
		return
	}
	se.reply(fmt.Sprintf("count: %d", n))
	se.ok()
}

// countAcrossShards evaluates one boundary count: fan the COUNT to the
// shards that can hold matches, sum, and subtract the ghost
// multiplicity the coordinator derives from the static map.
func (rt *Router) countAcrossShards(class, base string, hasBase, childOnly bool) (int, error) {
	line := "COUNT " + class
	if childOnly {
		line += " child"
	}
	var targets []*Shard
	switch {
	case !hasBase:
		targets = rt.m.All()
	case rt.m.IsSpine(base):
		targets = rt.m.Holders(base)
	default:
		sh := rt.m.Owner(base)
		if sh == nil {
			return 0, fmt.Errorf("unroutable dn %q: no shard owns it and the map has no default shard", base)
		}
		targets = []*Shard{sh}
	}
	if hasBase {
		line += " base=" + base
	}
	total := 0
	for _, fr := range rt.fanOut(targets, line) {
		if fr.err != nil {
			rt.shardErrors.Add(1)
			return 0, fmt.Errorf("shard %s unavailable: %v", fr.sh.Name, fr.err)
		}
		if fr.r.term != "OK" {
			return 0, fmt.Errorf("shard %s: %s", fr.sh.Name, fr.r.err)
		}
		for _, l := range fr.r.lines {
			if v, ok := strings.CutPrefix(l, "count: "); ok {
				n := 0
				fmt.Sscanf(v, "%d", &n)
				total += n
			}
		}
	}
	if len(targets) > 1 {
		corr, err := rt.coord.correction(class, base, hasBase, childOnly)
		if err != nil {
			return 0, err
		}
		total -= corr
	}
	return total, nil
}

func (se *rsession) metricsCmd() {
	rt := se.rt
	se.reply(fmt.Sprintf("router: commands=%d fanouts=%d", rt.cmdsTotal.Load(), rt.fanouts.Load()))
	se.reply(fmt.Sprintf("refusals: unroutable=%d cross_shard=%d", rt.unroutable.Load(), rt.crossShard.Load()))
	se.reply(fmt.Sprintf("shard_errors: %d", rt.shardErrors.Load()))
	rt.routedMu.Lock()
	names := make([]string, 0, len(rt.routed))
	for n := range rt.routed {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		se.reply(fmt.Sprintf("routed %s: %d", n, rt.routed[n]))
	}
	rt.routedMu.Unlock()
	se.ok()
}

package shard

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/server"
	"boundschema/internal/vfs"
	"boundschema/internal/workload"
)

// The differential oracle: a sharded deployment (N shard servers
// behind a router) must be observationally equivalent to one unsharded
// node seeded with the same corpus — byte-identical SEARCH results
// (after canonicalizing both sides with SortDNs; a single node answers
// in tree order, the router in canonical order), identical COUNT and
// STAT totals, and CHECK/VERIFY agreeing on legality — before, during
// and after a stream of live mutations, including a shard crash and
// journal recovery. Runs under -race in CI (shard-smoke).

// diffScenario parameterizes the oracle over the two reference
// workloads: where mutated entries may be attached, and what an added
// entry looks like.
type diffScenario struct {
	name           string
	newSchema      func() *core.Schema
	newCorpus      func(s *core.Schema, rng *rand.Rand, n int) *dirtree.Directory
	containerClass string // entries that accept mutation children
	addBody        func(i int, container string) []string
	allFilter      string // matches every entry
	mainClass      string // the class mutations add
}

var diffScenarios = []diffScenario{
	{
		name:           "whitepages",
		newSchema:      workload.WhitePagesSchema,
		newCorpus:      workload.Corpus,
		containerClass: "orgUnit",
		addBody: func(i int, container string) []string {
			return []string{
				"ADD uid=m" + fmt.Sprint(i) + "," + container,
				"objectClass: person",
				"objectClass: top",
				fmt.Sprintf("name: mutation %d", i),
			}
		},
		allFilter: "(objectClass=top)",
		mainClass: "person",
	},
	{
		name:           "netpolicy",
		newSchema:      workload.NetPolicySchema,
		newCorpus:      workload.NetPolicyCorpus,
		containerClass: "subnet",
		addBody: func(i int, container string) []string {
			// Unique ipAddress: keys are shard-local in a sharded
			// deployment, so the oracle never relies on cross-shard key
			// refusal (the documented carve caveat).
			return []string{
				"ADD cn=m" + fmt.Sprint(i) + "," + container,
				"objectClass: host",
				"objectClass: netElement",
				"objectClass: top",
				fmt.Sprintf("ipAddress: 10.250.%d.%d", i/250, i%250),
			}
		},
		allFilter: "(objectClass=top)",
		mainClass: "host",
	},
}

// diffShard is one in-process shard server with the pristine carved
// instance kept aside so a crash test can rebuild the boot state and
// let journal replay bring it forward.
type diffShard struct {
	name     string
	addr     string
	roots    []string
	srv      *server.Server
	fs       *vfs.Fault
	pristine *dirtree.Directory
}

type diffCluster struct {
	t      *testing.T
	sc     diffScenario
	m      *Map
	rt     *Router
	rtAddr string
	shards map[string]*diffShard
}

const diffJournal = "journal.ldif"

// startSharded carves the corpus into nShards+default, boots a
// journaled server per shard and a router in front.
func startSharded(t *testing.T, sc diffScenario, corpusN, nShards int, seed int64) *diffCluster {
	t.Helper()
	schema := sc.newSchema()
	src := sc.newCorpus(schema, rand.New(rand.NewSource(seed)), corpusN)
	roots, err := AutoCut(schema, src, nShards)
	if err != nil {
		t.Fatalf("AutoCut: %v", err)
	}
	var carved []*Shard
	for i, rs := range roots {
		if len(rs) > 0 {
			carved = append(carved, &Shard{Name: fmt.Sprintf("s%d", i), Addr: "pending", Roots: rs})
		}
	}
	if len(carved) == 0 {
		t.Fatal("AutoCut carved nothing; corpus too small for the oracle")
	}
	cutMap := mustMap(t, carved, &Shard{Name: "rest", Addr: "pending"})
	dirs, err := Carve(src, cutMap)
	if err != nil {
		t.Fatalf("Carve: %v", err)
	}
	c := &diffCluster{t: t, sc: sc, shards: map[string]*diffShard{}}
	var withAddrs []*Shard
	var defShard *Shard
	for _, sh := range cutMap.All() {
		ds := &diffShard{name: sh.Name, roots: sh.Roots, pristine: dirs[sh.Name].Clone()}
		c.bootShard(ds, dirs[sh.Name], "")
		c.shards[sh.Name] = ds
		bound := &Shard{Name: sh.Name, Addr: ds.addr, Roots: sh.Roots}
		if len(sh.Roots) == 0 {
			defShard = bound
		} else {
			withAddrs = append(withAddrs, bound)
		}
	}
	c.m = mustMap(t, withAddrs, defShard)
	c.rt = NewRouter(c.m)
	addr, err := c.rt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("router listen: %v", err)
	}
	c.rtAddr = addr
	t.Cleanup(func() {
		c.rt.Close()
		for _, ds := range c.shards {
			ds.srv.Close()
		}
	})
	return c
}

// bootShard starts (or, with a fixed addr, restarts) one shard server
// over dir. The fault FS carries the journal across restarts.
func (c *diffCluster) bootShard(ds *diffShard, dir *dirtree.Directory, addr string) {
	c.t.Helper()
	srv, err := server.New(c.sc.newSchema(), c.sc.name, dir)
	if err != nil {
		c.t.Fatalf("shard %s: server.New: %v", ds.name, err)
	}
	if ds.fs == nil {
		ds.fs = vfs.NewFault()
	}
	srv.SetFS(ds.fs)
	if err := srv.OpenJournal(diffJournal); err != nil {
		c.t.Fatalf("shard %s: open journal: %v", ds.name, err)
	}
	srv.SetShardInfo(ds.name, ds.roots)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	bound, err := srv.Listen(addr)
	if err != nil {
		c.t.Fatalf("shard %s: listen %s: %v", ds.name, addr, err)
	}
	ds.srv, ds.addr = srv, bound
}

// crashShard kills one shard server; restartShard rebuilds it from the
// pristine carved instance plus journal replay, on the same address
// (the map is static).
func (c *diffCluster) crashShard(name string) {
	c.shards[name].srv.Close()
}

func (c *diffCluster) restartShard(name string) {
	ds := c.shards[name]
	c.bootShard(ds, ds.pristine.Clone(), ds.addr)
}

// dialTest returns a raw protocol client (the same framing the pool
// uses) for a router or shard address.
func dialTest(t *testing.T, addr string) *shardConn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { conn.Close() })
	return newShardConn(conn)
}

func doCmd(t *testing.T, c *shardConn, line string) reply {
	t.Helper()
	r, err := c.do(line)
	if err != nil {
		t.Fatalf("%q: transport error: %v", line, err)
	}
	return r
}

// txn replays one transaction: BEGIN, body, COMMIT, returning the
// COMMIT reply.
func txn(t *testing.T, c *shardConn, body ...string) reply {
	t.Helper()
	begin := doCmd(t, c, "BEGIN")
	if !begin.ok() {
		t.Fatalf("BEGIN: %s %s", begin.term, begin.err)
	}
	if err := c.send(append(body, "COMMIT")...); err != nil {
		t.Fatalf("send txn: %v", err)
	}
	r, err := c.read()
	if err != nil {
		t.Fatalf("read COMMIT reply: %v", err)
	}
	return r
}

// mutTxn applies the same transaction to the router and the reference
// node and insists both land the same way.
func mutTxn(t *testing.T, ref, rtc *shardConn, body ...string) {
	t.Helper()
	r1 := txn(t, ref, body...)
	r2 := txn(t, rtc, body...)
	if r1.term != r2.term {
		t.Fatalf("divergence on %v: reference %s %s, router %s %s", body, r1.term, r1.err, r2.term, r2.err)
	}
	if r1.term != "OK" {
		t.Fatalf("mutation %v did not apply: %s %s", body, r1.term, r1.err)
	}
}

func canon(lines []string) string {
	out := append([]string(nil), lines...)
	SortDNs(out)
	return strings.Join(out, "\n")
}

// assertEquivalent runs the query battery against both endpoints.
func assertEquivalent(t *testing.T, ref, rtc *shardConn, c *diffCluster) {
	t.Helper()
	sc := c.sc
	spineRoot := c.m.Spine()[0]
	carvedRoot := c.m.Shards[0].Roots[0]

	searches := []string{
		"SEARCH " + sc.allFilter,
		"SEARCH (objectClass=" + sc.mainClass + ")",
		"SEARCH " + sc.allFilter + " base=" + spineRoot,
		"SEARCH (objectClass=" + sc.mainClass + ") base=" + carvedRoot,
	}
	for _, q := range searches {
		r1, r2 := doCmd(t, ref, q), doCmd(t, rtc, q)
		if r1.term != "OK" || r2.term != "OK" {
			t.Fatalf("%q: reference %s %s, router %s %s", q, r1.term, r1.err, r2.term, r2.err)
		}
		if canon(r1.lines) != canon(r2.lines) {
			t.Fatalf("%q diverged:\nreference (%d):\n%s\nrouter (%d):\n%s",
				q, len(r1.lines), canon(r1.lines), len(r2.lines), canon(r2.lines))
		}
		// The router's merge order is canonical already.
		if q == searches[0] && strings.Join(r2.lines, "\n") != canon(r2.lines) {
			t.Fatalf("router SEARCH output not in canonical DN order:\n%s", strings.Join(r2.lines, "\n"))
		}
	}

	// Post-merge limit: the first N of the canonical order,
	// deterministic regardless of which shard answered first.
	full := doCmd(t, rtc, "SEARCH "+sc.allFilter)
	lim := doCmd(t, rtc, "SEARCH "+sc.allFilter+" limit=5")
	if !lim.ok() || len(lim.lines) != 5 {
		t.Fatalf("limited search: %s %s (%d lines)", lim.term, lim.err, len(lim.lines))
	}
	if strings.Join(lim.lines, "\n") != strings.Join(full.lines[:5], "\n") {
		t.Fatalf("limit is not the canonical prefix:\n%v\nvs\n%v", lim.lines, full.lines[:5])
	}

	counts := []string{
		"COUNT " + sc.mainClass,
		"COUNT " + sc.containerClass,
		"COUNT " + sc.mainClass + " base=" + spineRoot,
		"COUNT " + sc.containerClass + " child base=" + spineRoot,
		"COUNT " + sc.mainClass + " base=" + carvedRoot,
	}
	for _, q := range counts {
		r1, r2 := doCmd(t, ref, q), doCmd(t, rtc, q)
		if r1.term != "OK" || r2.term != "OK" {
			t.Fatalf("%q: reference %s %s, router %s %s", q, r1.term, r1.err, r2.term, r2.err)
		}
		if strings.Join(r1.lines, "\n") != strings.Join(r2.lines, "\n") {
			t.Fatalf("%q diverged: reference %v, router %v", q, r1.lines, r2.lines)
		}
	}

	// Aggregated STAT must report the single node's entry total (ghost
	// correction) and the same per-class counts.
	s1, s2 := doCmd(t, ref, "STAT"), doCmd(t, rtc, "STAT")
	if !s1.ok() || !s2.ok() {
		t.Fatalf("STAT: reference %s, router %s", s1.term, s2.term)
	}
	for _, prefix := range []string{"entries: ", "class "} {
		var want, got []string
		for _, l := range s1.lines {
			if strings.HasPrefix(l, prefix) {
				want = append(want, l)
			}
		}
		for _, l := range s2.lines {
			if strings.HasPrefix(l, prefix) {
				got = append(got, l)
			}
		}
		if strings.Join(want, "\n") != strings.Join(got, "\n") {
			t.Fatalf("STAT %q lines diverged:\nreference %v\nrouter %v", prefix, want, got)
		}
	}

	// Both sides agree the instance is legal — the router's CHECK also
	// runs the coordinator's cross-shard audit over the spine.
	for _, q := range []string{"CHECK", "VERIFY"} {
		r1, r2 := doCmd(t, ref, q), doCmd(t, rtc, q)
		if r1.term != "OK" || r2.term != "OK" {
			t.Fatalf("%s: reference %s %v %s, router %s %v %s",
				q, r1.term, r1.lines, r1.err, r2.term, r2.lines, r2.err)
		}
	}
}

// containersByShard groups the corpus's mutation containers by owning
// shard so moves can stay shard-confined on purpose.
func containersByShard(t *testing.T, ref *shardConn, c *diffCluster) (all []string, byShard map[string][]string) {
	t.Helper()
	r := doCmd(t, ref, "SEARCH (objectClass="+c.sc.containerClass+")")
	if !r.ok() {
		t.Fatalf("container search: %s %s", r.term, r.err)
	}
	all = append([]string(nil), r.lines...)
	SortDNs(all)
	byShard = map[string][]string{}
	for _, dn := range all {
		if sh := c.m.Owner(dn); sh != nil {
			byShard[sh.Name] = append(byShard[sh.Name], dn)
		}
	}
	return all, byShard
}

func runDiffOracle(t *testing.T, sc diffScenario, withCrash bool) {
	const corpusN, nShards, seed = 260, 3, 42

	c := startSharded(t, sc, corpusN, nShards, seed)

	// The reference: one unsharded node over the identical corpus (same
	// generator, same seed).
	refSchema := sc.newSchema()
	refSrv, err := server.New(refSchema, sc.name, sc.newCorpus(refSchema, rand.New(rand.NewSource(seed)), corpusN))
	if err != nil {
		t.Fatalf("reference server: %v", err)
	}
	refAddr, err := refSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("reference listen: %v", err)
	}
	t.Cleanup(func() { refSrv.Close() })

	ref, rtc := dialTest(t, refAddr), dialTest(t, c.rtAddr)
	assertEquivalent(t, ref, rtc, c)

	all, byShard := containersByShard(t, ref, c)
	if len(all) == 0 {
		t.Fatal("corpus has no mutation containers")
	}

	// 60 live mutations: adds everywhere, deletes and shard-confined
	// moves of our own entries, equivalence re-checked periodically.
	type added struct{ dn, container string }
	var live []added
	rng := rand.New(rand.NewSource(seed + 1))
	const mutations = 60
	crashAt, recoverAt := -1, -1
	if withCrash {
		crashAt, recoverAt = 20, 30
	}
	for i := 0; i < mutations; i++ {
		if i == crashAt {
			c.crashShard(c.m.Shards[0].Name)
			assertCrashVisible(t, c)
			rtc = dialTest(t, c.rtAddr) // the battery may have poisoned framing; fresh session
		}
		if i == recoverAt {
			c.restartShard(c.m.Shards[0].Name)
		}
		down := ""
		if i >= crashAt && i < recoverAt && crashAt >= 0 {
			down = c.m.Shards[0].Name
		}
		switch {
		case i%6 == 4 && len(live) > 0:
			// Delete one of ours (never a seeded entry: containers keep
			// their corpus-seeded children, preserving →de bounds).
			j := rng.Intn(len(live))
			if c.m.Owner(live[j].dn).Name == down {
				continue
			}
			mutTxn(t, ref, rtc, "DELETE "+live[j].dn)
			live = append(live[:j], live[j+1:]...)
		case i%6 == 5 && len(live) > 0:
			// Move one of ours to a sibling container on the same shard.
			moved := false
			for j, a := range live {
				owner := c.m.Owner(a.dn)
				peers := byShard[owner.Name]
				if owner.Name == down || len(peers) < 2 {
					continue
				}
				dest := peers[rng.Intn(len(peers))]
				if dest == a.container {
					continue
				}
				mutTxn(t, ref, rtc, "MOVE "+a.dn+" -> "+dest)
				rdn, _, _ := strings.Cut(a.dn, ",")
				live[j] = added{dn: rdn + "," + dest, container: dest}
				moved = true
				break
			}
			if moved {
				break
			}
			fallthrough
		default:
			container := all[i%len(all)]
			if c.m.Owner(container).Name == down {
				container = all[(i+1)%len(all)]
				if c.m.Owner(container).Name == down {
					continue
				}
			}
			mutTxn(t, ref, rtc, sc.addBody(i, container)...)
			live = append(live, added{dn: firstDN(sc.addBody(i, container)[0]), container: container})
		}
		if i%15 == 14 && (crashAt < 0 || i < crashAt || i >= recoverAt) {
			assertEquivalent(t, ref, rtc, c)
		}
	}
	assertEquivalent(t, ref, rtc, c)
}

func firstDN(addLine string) string {
	return strings.TrimSpace(strings.TrimPrefix(addLine, "ADD "))
}

// assertCrashVisible pins the degraded-mode contract while one shard is
// down: fan-out reads fail with one parseable ERR naming the shard,
// and traffic confined to the surviving shards keeps working.
func assertCrashVisible(t *testing.T, c *diffCluster) {
	t.Helper()
	rtc := dialTest(t, c.rtAddr)
	// The first fan-out may still relay the dying shard's graceful
	// "server shutting down" off a pooled connection; once dials are
	// refused the router must say the shard is unavailable. Either way,
	// every reply is one payload-free ERR line.
	var r reply
	for attempt := 0; attempt < 3; attempt++ {
		r = doCmd(t, rtc, "SEARCH "+c.sc.allFilter)
		if r.term != "ERR" {
			t.Fatalf("fan-out with a dead shard: want ERR, got %s %v", r.term, r.lines)
		}
		if len(r.lines) != 0 {
			t.Fatalf("ERR reply carried payload lines: %v", r.lines)
		}
		if strings.Contains(r.err, "unavailable") {
			break
		}
		if !strings.Contains(r.err, "shutting down") {
			t.Fatalf("unexpected ERR while shard down: %q", r.err)
		}
	}
	if !strings.Contains(r.err, "unavailable") {
		t.Fatalf("dead shard never reported unavailable: %q", r.err)
	}
	if len(c.m.Shards) > 1 {
		alive := c.m.Shards[1].Roots[0]
		r = doCmd(t, rtc, "SEARCH "+c.sc.allFilter+" base="+alive)
		if !r.ok() {
			t.Fatalf("surviving shard unreachable through router: %s %s", r.term, r.err)
		}
	}
}

func TestShardDiffOracleWhitePages(t *testing.T) {
	runDiffOracle(t, diffScenarios[0], false)
}

func TestShardDiffOracleNetPolicy(t *testing.T) {
	runDiffOracle(t, diffScenarios[1], false)
}

// TestShardDiffOracleCrashRecovery kills one shard mid-stream, checks
// the degraded contract, restarts it from the pristine carve plus
// journal replay, and requires full equivalence afterwards.
func TestShardDiffOracleCrashRecovery(t *testing.T) {
	runDiffOracle(t, diffScenarios[0], true)
}

package shard

import (
	"fmt"
	"sort"
	"strings"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
)

// Carve splits one legal instance into per-shard instances following
// the map. Each carved shard's instance is the spine ghosts above its
// roots (content copies of the roots' proper ancestors, no other
// children) plus its owned subtrees, copied whole; the default shard's
// instance is the source minus every carved subtree — it keeps the
// *real* spine entries.
//
// The ghost construction is what keeps every shard instance legal on
// its own (server.New refuses illegal instances, so this is a boot
// requirement, not a nicety):
//
//   - upward axes (→pa, →an) are exact everywhere: every owned entry
//     has its full ancestor chain present locally;
//   - forbidden rels (⇥ch, ⇥de) are exact: any violating pair has the
//     lower entry owned by some shard, and that shard also holds the
//     upper entry (an ancestor — owned or ghost);
//   - downward required rels (→ch, →de) and required classes are
//     *conservative*: each shard must satisfy them from its own
//     entries, which is stricter than the global instance — all
//     shards locally legal ⇒ the global instance is legal. AutoCut
//     only picks cuts that stay legal under this stricter reading.
//
// The one check that does not decompose is cross-shard key
// uniqueness: keys stay shard-local, so two shards can each hold a
// key value the global instance would reject. See DESIGN.md — the
// router documents this as the sharded deployment's contract.
//
// Ghosts cannot drift afterwards: the protocol has no entry-modify
// command, and the router refuses DELETE/MOVE of spine DNs.
func Carve(src *dirtree.Directory, m *Map) (map[string]*dirtree.Directory, error) {
	src.EnsureEncoded()
	out := make(map[string]*dirtree.Directory, len(m.Shards)+1)
	for _, sh := range m.Shards {
		dst := dirtree.New(src.Registry())
		// Ghost chain first, shallowest ancestor first, so parents exist
		// before children.
		var ghosts []string
		seen := map[string]bool{}
		for _, root := range sh.Roots {
			for _, anc := range ProperAncestors(root) {
				if !seen[anc] {
					seen[anc] = true
					ghosts = append(ghosts, anc)
				}
			}
		}
		sort.Slice(ghosts, func(i, j int) bool {
			return strings.Count(ghosts[i], ",") < strings.Count(ghosts[j], ",")
		})
		for _, dn := range ghosts {
			se := src.ByDN(dn)
			if se == nil {
				return nil, fmt.Errorf("carve: shard %s: spine entry %q not in the source instance", sh.Name, dn)
			}
			if err := copyGhost(dst, se); err != nil {
				return nil, fmt.Errorf("carve: shard %s: %v", sh.Name, err)
			}
		}
		for _, root := range sh.Roots {
			se := src.ByDN(root)
			if se == nil {
				return nil, fmt.Errorf("carve: shard %s: root %q not in the source instance", sh.Name, root)
			}
			var parent *dirtree.Entry
			if p := se.Parent(); p != nil {
				parent = dst.ByDN(p.DN())
			}
			if _, err := dst.GraftSubtree(parent, se); err != nil {
				return nil, fmt.Errorf("carve: shard %s: graft %q: %v", sh.Name, root, err)
			}
		}
		dst.EnsureEncoded()
		out[sh.Name] = dst
	}
	if m.Default != nil {
		dst := src.Clone()
		for root := range m.rootIn {
			e := dst.ByDN(root)
			if e == nil {
				return nil, fmt.Errorf("carve: default: root %q not in the source instance", root)
			}
			if _, err := dst.DeleteSubtree(e); err != nil {
				return nil, fmt.Errorf("carve: default: delete %q: %v", root, err)
			}
		}
		dst.EnsureEncoded()
		out[m.Default.Name] = dst
	}
	return out, nil
}

// copyGhost copies one entry (classes and attribute values, no
// children) into dst under its source parent's DN.
func copyGhost(dst *dirtree.Directory, se *dirtree.Entry) error {
	var parent *dirtree.Entry
	if p := se.Parent(); p != nil {
		parent = dst.ByDN(p.DN())
		if parent == nil {
			return fmt.Errorf("ghost %q: parent missing in shard copy", se.DN())
		}
	}
	var e *dirtree.Entry
	var err error
	if parent == nil {
		e, err = dst.AddRoot(se.RDN(), se.Classes()...)
	} else {
		e, err = dst.AddChild(parent, se.RDN(), se.Classes()...)
	}
	if err != nil {
		return err
	}
	for _, name := range se.AttrNames() {
		if name == dirtree.AttrObjectClass {
			continue
		}
		for _, v := range se.Attr(name) {
			e.AddValue(name, v)
		}
	}
	return nil
}

// AutoCut picks subtree roots for n carved shards out of a legal
// source instance: the depth-1 subtrees (children of the forest
// roots), largest first, each validated to stay legal when carved out
// with its spine ghosts — a subtree that cannot satisfy the schema on
// its own (a single person without its orgUnit sibling structure, say)
// stays with the default shard instead of being carved. Roots are
// dealt to the currently-smallest shard so the cut balances by entry
// count. The returned slice has exactly n root-sets; sets may be empty
// when the instance has fewer cuttable subtrees than shards.
func AutoCut(schema *core.Schema, src *dirtree.Directory, n int) ([][]string, error) {
	if n < 1 {
		return nil, fmt.Errorf("autocut: need at least one shard, got %d", n)
	}
	src.EnsureEncoded()
	checker := core.NewChecker(schema)
	type cand struct {
		dn   string
		size int
	}
	var cands []cand
	for _, root := range src.Roots() {
		for _, ch := range root.Children() {
			cands = append(cands, cand{ch.DN(), subtreeSize(ch)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].size != cands[j].size {
			return cands[i].size > cands[j].size
		}
		return CompareDN(cands[i].dn, cands[j].dn) < 0
	})
	roots := make([][]string, n)
	sizes := make([]int, n)
	for _, c := range cands {
		// A cuttable subtree must be legal as a shard instance of its
		// own (with ghosts): carve it alone and run the full checker.
		probe, err := NewMap([]*Shard{{Name: "probe", Addr: "probe", Roots: []string{c.dn}}}, nil)
		if err != nil {
			return nil, fmt.Errorf("autocut: %v", err)
		}
		dirs, err := Carve(src, probe)
		if err != nil {
			return nil, fmt.Errorf("autocut: %v", err)
		}
		if !checker.Check(dirs["probe"]).Legal() {
			continue // not legal standalone; stays with the default shard
		}
		at := 0
		for i := range sizes {
			if sizes[i] < sizes[at] {
				at = i
			}
		}
		roots[at] = append(roots[at], c.dn)
		sizes[at] += c.size
	}
	// The default shard must stay legal too: carving a subtree out can
	// remove the last witness of a downward required rel. Give roots
	// back (smallest shard last root first) until it is.
	for {
		var shards []*Shard
		for i, rs := range roots {
			if len(rs) > 0 {
				shards = append(shards, &Shard{Name: fmt.Sprintf("s%d", i), Addr: "probe", Roots: rs})
			}
		}
		if len(shards) == 0 {
			return roots, nil
		}
		probe, err := NewMap(shards, &Shard{Name: "rest", Addr: "probe"})
		if err != nil {
			return nil, fmt.Errorf("autocut: %v", err)
		}
		dirs, err := Carve(src, probe)
		if err != nil {
			return nil, fmt.Errorf("autocut: %v", err)
		}
		if checker.Check(dirs["rest"]).Legal() {
			return roots, nil
		}
		at := 0
		for i := range sizes {
			if len(roots[i]) > 0 && (len(roots[at]) == 0 || sizes[i] < sizes[at]) {
				at = i
			}
		}
		last := roots[at][len(roots[at])-1]
		roots[at] = roots[at][:len(roots[at])-1]
		sizes[at] -= subtreeSize(src.ByDN(last))
	}
}

func subtreeSize(e *dirtree.Entry) int {
	n := 1
	for _, c := range e.Children() {
		n += subtreeSize(c)
	}
	return n
}

package netfault

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// pipePair builds a wrapped client conn talking to a plain server conn
// over a real TCP loopback socket (net.Pipe has no kernel buffer, which
// would deadlock the cut tests).
func pipePair(t *testing.T, f *Fault) (client net.Conn, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- nil
			return
		}
		done <- c
	}()
	cli, err := f.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	srv := <-done
	if srv == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return cli, srv
}

func readN(t *testing.T, c net.Conn, n int, timeout time.Duration) []byte {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(timeout))
	defer c.SetReadDeadline(time.Time{})
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read %d bytes: %v", n, err)
	}
	return buf
}

func TestTransparentAndOpCount(t *testing.T) {
	f := New()
	cli, srv := pipePair(t, f)
	if _, err := cli.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := readN(t, srv, 5, time.Second); string(got) != "hello" {
		t.Fatalf("server read %q", got)
	}
	go srv.Write([]byte("world"))
	if got := readN(t, cli, 5, time.Second); string(got) != "world" {
		t.Fatalf("client read %q", got)
	}
	if f.OpCount() < 2 {
		t.Fatalf("op count = %d, want >= 2 (one write, one read)", f.OpCount())
	}
}

func TestDropAtOp(t *testing.T) {
	f := New()
	f.SetScript(Point{Op: 2, Kind: Drop})
	cli, _ := pipePair(t, f)
	if _, err := cli.Write([]byte("a")); err != nil { // op 1: fine
		t.Fatalf("op 1: %v", err)
	}
	if _, err := cli.Write([]byte("b")); err == nil { // op 2: dropped
		t.Fatal("op 2 should have dropped the conn")
	}
	if f.Dropped() != 1 {
		t.Fatalf("dropped = %d", f.Dropped())
	}
	// One-shot: a new conn is untouched.
	cli2, srv2 := pipePair(t, f)
	if _, err := cli2.Write([]byte("cd")); err != nil {
		t.Fatalf("post-fire write: %v", err)
	}
	readN(t, srv2, 2, time.Second)
}

func TestDelayAtOp(t *testing.T) {
	f := New()
	f.SetScript(Point{Op: 1, Kind: Delay, Dur: 120 * time.Millisecond})
	cli, srv := pipePair(t, f)
	start := time.Now()
	cli.Write([]byte("x"))
	readN(t, srv, 1, time.Second)
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("write completed in %v, want >= 120ms delay", d)
	}
}

func TestDupWrite(t *testing.T) {
	f := New()
	f.SetScript(Point{Op: 1, Kind: Dup})
	cli, srv := pipePair(t, f)
	cli.Write([]byte("ACK\n"))
	if got := readN(t, srv, 8, time.Second); string(got) != "ACK\nACK\n" {
		t.Fatalf("server read %q, want the bytes twice", got)
	}
}

func TestCutOutboundHoldsWritesUntilHeal(t *testing.T) {
	f := New()
	f.SetScript(Point{Op: 1, Kind: CutOutbound})
	cli, srv := pipePair(t, f)
	wrote := make(chan error, 1)
	go func() {
		_, err := cli.Write([]byte("held"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("write completed during cut (err=%v)", err)
	case <-time.After(80 * time.Millisecond):
	}
	f.Heal()
	if err := <-wrote; err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	if got := readN(t, srv, 4, time.Second); string(got) != "held" {
		t.Fatalf("server read %q", got)
	}
}

func TestCutInboundHoldsArrivedBytesUntilHeal(t *testing.T) {
	f := New()
	cli, srv := pipePair(t, f)
	// Arm the cut on the first (read) op, then let the peer's bytes
	// arrive while the cut holds.
	f.SetScript(Point{Op: 0, Kind: CutInbound})
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 4)
		if n, err := cli.Read(buf); err == nil {
			got <- buf[:n]
		} else {
			got <- nil
		}
	}()
	time.Sleep(30 * time.Millisecond) // the read is parked on the cut
	srv.Write([]byte("late"))
	select {
	case b := <-got:
		t.Fatalf("bytes %q delivered during inbound cut", b)
	case <-time.After(80 * time.Millisecond):
	}
	f.Heal()
	select {
	case b := <-got:
		if string(b) != "late" {
			t.Fatalf("delivered %q", b)
		}
	case <-time.After(time.Second):
		t.Fatal("held bytes not delivered after heal")
	}
}

func TestPartitionBlocksDial(t *testing.T) {
	f := New()
	f.SetScript(Point{Op: 1, Kind: Partition})
	cli, _ := pipePair(t, f)
	go cli.Write([]byte("x")) // op 1 arms the partition and stalls
	deadline := time.Now().Add(time.Second)
	for !f.Partitioned() {
		if time.Now().After(deadline) {
			t.Fatal("partition never armed")
		}
		time.Sleep(time.Millisecond)
	}
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	start := time.Now()
	if _, err := f.Dial(ln.Addr().String(), 60*time.Millisecond); err == nil {
		t.Fatal("dial succeeded through a partition")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("dial error = %v, want a timeout", err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("dial failed fast; it should hang until the timeout like a lost SYN")
	}
	f.Heal()
	c, err := f.Dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c.Close()
}

func TestSlowReader(t *testing.T) {
	f := New()
	f.SetScript(Point{Op: 1, Kind: SlowReader, Dur: 50 * time.Millisecond})
	cli, srv := pipePair(t, f)
	srv.Write([]byte("abcd"))
	start := time.Now()
	readN(t, cli, 2, time.Second) // two reads, >= 50ms stall each
	readN(t, cli, 2, time.Second)
	if d := time.Since(start); d < 90*time.Millisecond {
		t.Fatalf("reads completed in %v, want two >=50ms stalls", d)
	}
	f.Heal()
	srv.Write([]byte("ef"))
	start = time.Now()
	readN(t, cli, 2, time.Second)
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("read after heal took %v, slow-reader not lifted", d)
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	f := New()
	f.SetScript(Point{Op: 0, Kind: Delay, Dur: time.Millisecond})
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ln := f.Listener(raw)
	defer ln.Close()
	var sb strings.Builder
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		b, _ := io.ReadAll(c)
		sb.Write(b)
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c.Write([]byte("via listener"))
	c.Close()
	<-done
	if sb.String() != "via listener" {
		t.Fatalf("accepted conn read %q", sb.String())
	}
	if f.OpCount() == 0 {
		t.Fatal("accepted conn ops not counted")
	}
}

func TestCloseUnblocksHeldWrite(t *testing.T) {
	f := New()
	f.SetScript(Point{Op: 1, Kind: Partition})
	cli, _ := pipePair(t, f)
	wrote := make(chan error, 1)
	go func() {
		_, err := cli.Write(bytes.Repeat([]byte("x"), 16))
		wrote <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cli.Close() // the hub's onDrop path: closing must free the writer
	select {
	case err := <-wrote:
		if err == nil {
			t.Fatal("held write reported success after close")
		}
	case <-time.After(time.Second):
		t.Fatal("close left the held write blocked")
	}
}

// Package netfault is the network twin of internal/vfs's fault
// injector: it wraps net.Conn (and net.Listener) and injects scripted
// faults at exact I/O operation counts, so network-failure tests are
// deterministic and sweepable the same way the crash matrix sweeps
// filesystem ops.
//
// A Fault owns one shared operation counter across every connection it
// wraps; each Read and Write increments it. A script point names the
// counter value it fires at (Op == 0 fires at every applicable op,
// Op > 0 fires exactly once, mirroring vfs.FaultPoint):
//
//	Drop        close the connection mid-operation
//	Delay       stall the operation for Dur, then proceed
//	Dup         write the operation's bytes twice (a duplicating network)
//	CutInbound  from this op: bytes from the peer are held, not delivered
//	CutOutbound from this op: writes stall (nothing reaches the peer)
//	Partition   both directions at once
//	SlowReader  from this op: every read stalls Dur first
//
// Cuts persist until Heal. Reads are served through a per-connection
// pump goroutine that keeps draining the underlying socket into a
// buffer, so bytes that arrive during an inbound cut are "in flight in
// the network" and delivered only on Heal — a faithful one-way
// partition, not just a lazy reader. Dial refuses (times out) while any
// cut is active, like SYNs lost in a real partition.
//
// The wrapper is for tests: it trades throughput for determinism and
// treats a read error after a deadline as terminal for that connection.
package netfault

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Kind enumerates the injectable network faults.
type Kind int

const (
	// Drop closes the connection at the scripted op.
	Drop Kind = iota + 1
	// Delay stalls the scripted op for Dur, then lets it proceed.
	Delay
	// Dup writes the scripted write's bytes twice.
	Dup
	// CutInbound holds peer→local bytes from the scripted op until Heal.
	CutInbound
	// CutOutbound stalls local→peer writes from the scripted op until Heal.
	CutOutbound
	// Partition cuts both directions from the scripted op until Heal.
	Partition
	// SlowReader stalls every read by Dur from the scripted op until Heal.
	SlowReader
)

func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Dup:
		return "dup"
	case CutInbound:
		return "cut-inbound"
	case CutOutbound:
		return "cut-outbound"
	case Partition:
		return "partition"
	case SlowReader:
		return "slow-reader"
	}
	return fmt.Sprintf("netfault.Kind(%d)", int(k))
}

// Point is one scripted fault: at operation Op (1-based, counted across
// all connections of the Fault), inject Kind. Op == 0 applies to every
// operation; Op > 0 fires exactly once.
type Point struct {
	Op    int
	Kind  Kind
	Dur   time.Duration // Delay and SlowReader stall length
	fired bool
}

// Fault wraps connections and injects its script. The zero value is not
// usable; call New.
type Fault struct {
	mu      sync.Mutex
	script  []Point
	ops     int
	cutIn   bool
	cutOut  bool
	slow    time.Duration
	dupNext bool
	conns   map[*faultConn]struct{}
	dropped int
}

// New creates a fault injector with no script: a transparent wrapper
// that still counts operations (the matrix's counting pass).
func New() *Fault {
	return &Fault{conns: make(map[*faultConn]struct{})}
}

// SetScript installs the fault script, replacing any previous one and
// re-arming one-shot points. The op counter keeps its value.
func (f *Fault) SetScript(points ...Point) {
	f.mu.Lock()
	f.script = make([]Point, len(points))
	copy(f.script, points)
	f.mu.Unlock()
}

// OpCount returns how many wrapped operations have run — the counting
// pass reads this to size a sweep.
func (f *Fault) OpCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Dropped returns how many connections the script has closed.
func (f *Fault) Dropped() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Partitioned reports whether any directional cut is active.
func (f *Fault) Partitioned() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cutIn || f.cutOut || f.slow > 0
}

// Heal lifts every persistent condition (cuts, slow-reader): held
// inbound bytes deliver, stalled writes proceed, dials succeed again.
// One-shot points that already fired stay fired; the op counter keeps
// counting.
func (f *Fault) Heal() {
	f.mu.Lock()
	f.cutIn, f.cutOut, f.slow = false, false, 0
	conns := make([]*faultConn, 0, len(f.conns))
	for c := range f.conns {
		conns = append(conns, c)
	}
	f.mu.Unlock()
	for _, c := range conns {
		c.broadcast()
	}
}

// op runs the script for one operation of the given kind class
// (isWrite selects which one-shot kinds apply) and returns the actions
// the caller must take. It never blocks; blocking conditions are
// returned as state for the caller to wait on.
func (f *Fault) op(c *faultConn, isWrite bool) (drop bool, delay time.Duration, dup bool) {
	f.mu.Lock()
	f.ops++
	for i := range f.script {
		p := &f.script[i]
		if p.fired || (p.Op != 0 && p.Op != f.ops) {
			continue
		}
		switch p.Kind {
		case Drop:
			if p.Op != 0 {
				p.fired = true
			}
			f.dropped++
			drop = true
		case Delay:
			if p.Op != 0 {
				p.fired = true
			}
			delay += p.Dur
		case Dup:
			if p.Op != 0 {
				p.fired = true
			}
			if isWrite {
				dup = true
			} else {
				// The scripted op landed on a read; duplicate the next
				// write instead so every sweep position exercises Dup.
				f.dupNext = true
			}
		case CutInbound:
			p.fired = true
			f.cutIn = true
		case CutOutbound:
			p.fired = true
			f.cutOut = true
		case Partition:
			p.fired = true
			f.cutIn, f.cutOut = true, true
		case SlowReader:
			p.fired = true
			f.slow = p.Dur
		}
	}
	if isWrite && f.dupNext {
		dup, f.dupNext = true, false
	}
	f.mu.Unlock()
	if drop || f.stateChanged() {
		f.broadcastAll()
	}
	return drop, delay, dup
}

// stateChanged is a cheap "did a persistent condition possibly begin"
// check; broadcasting spuriously is harmless.
func (f *Fault) stateChanged() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cutIn || f.cutOut || f.slow > 0
}

func (f *Fault) broadcastAll() {
	f.mu.Lock()
	conns := make([]*faultConn, 0, len(f.conns))
	for c := range f.conns {
		conns = append(conns, c)
	}
	f.mu.Unlock()
	for _, c := range conns {
		c.broadcast()
	}
}

func (f *Fault) inCut() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cutIn
}

func (f *Fault) outCut() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cutOut
}

func (f *Fault) slowFor() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.slow
}

// Wrap returns c with the fault script applied to its reads and writes.
func (f *Fault) Wrap(c net.Conn) net.Conn {
	fc := &faultConn{Conn: c, f: f}
	fc.cond = sync.NewCond(&fc.mu)
	f.mu.Lock()
	f.conns[fc] = struct{}{}
	f.mu.Unlock()
	go fc.pump()
	return fc
}

// Dial connects with a timeout and wraps the result. While a cut is
// active the dial blocks (polling for Heal) and then fails with a
// timeout, the way SYNs vanish inside a real partition. The signature
// matches server.SetDialer.
func (f *Fault) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for f.inCut() || f.outCut() {
		if time.Now().After(deadline) {
			return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errPartitionTimeout{}}
		}
		time.Sleep(5 * time.Millisecond)
	}
	c, err := net.DialTimeout("tcp", addr, time.Until(deadline))
	if err != nil {
		return nil, err
	}
	return f.Wrap(c), nil
}

// Dialer returns Dial as a function value for server.SetDialer.
func (f *Fault) Dialer() func(addr string, timeout time.Duration) (net.Conn, error) {
	return f.Dial
}

type errPartitionTimeout struct{}

func (errPartitionTimeout) Error() string   { return "i/o timeout (netfault partition)" }
func (errPartitionTimeout) Timeout() bool   { return true }
func (errPartitionTimeout) Temporary() bool { return true }

// Listener wraps ln so every accepted connection runs under the fault.
func (f *Fault) Listener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, f: f}
}

type faultListener struct {
	net.Listener
	f *Fault
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.f.Wrap(c), nil
}

// faultConn applies the script to one connection. Reads are decoupled
// from the socket by the pump goroutine so an inbound cut holds
// arrived-but-undelivered bytes.
type faultConn struct {
	net.Conn
	f *Fault

	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	rerr   error
	closed bool
}

func (c *faultConn) broadcast() {
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
}

// pump drains the underlying socket into the delivery buffer.
func (c *faultConn) pump() {
	chunk := make([]byte, 32*1024)
	for {
		n, err := c.Conn.Read(chunk)
		c.mu.Lock()
		if n > 0 {
			c.buf = append(c.buf, chunk[:n]...)
		}
		if err != nil {
			c.rerr = err
		}
		c.cond.Broadcast()
		c.mu.Unlock()
		if err != nil {
			return
		}
	}
}

func (c *faultConn) Read(p []byte) (int, error) {
	drop, delay, _ := c.f.op(c, false)
	if drop {
		c.Close()
		return 0, io.ErrClosedPipe
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if d := c.f.slowFor(); d > 0 {
		time.Sleep(d)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return 0, io.ErrClosedPipe
		}
		// Delivery is gated on the cut, not arrival: bytes may sit in
		// c.buf while cutIn holds.
		if !c.f.inCut() {
			if len(c.buf) > 0 {
				n := copy(p, c.buf)
				c.buf = c.buf[n:]
				return n, nil
			}
			if c.rerr != nil {
				return 0, c.rerr
			}
		}
		c.cond.Wait()
	}
}

func (c *faultConn) Write(p []byte) (int, error) {
	drop, delay, dup := c.f.op(c, true)
	if drop {
		c.Close()
		return 0, io.ErrClosedPipe
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	// An outbound cut stalls the write until Heal or local close — the
	// bytes never reach the wire early.
	c.mu.Lock()
	for c.f.outCut() && !c.closed {
		c.cond.Wait()
	}
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, io.ErrClosedPipe
	}
	if dup {
		if n, err := c.Conn.Write(p); err != nil {
			return n, err
		}
	}
	return c.Conn.Write(p)
}

func (c *faultConn) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.f.mu.Lock()
	delete(c.f.conns, c)
	c.f.mu.Unlock()
	if already {
		return nil
	}
	return c.Conn.Close()
}

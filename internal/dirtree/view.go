package dirtree

import "fmt"

type viewKind int

const (
	viewAll viewKind = iota
	viewEmpty
	viewSubtree
	viewExceptSubtree
)

// View is a read-only sub-instance of a directory. The incremental
// legality tests of Section 4.2 evaluate the sub-expressions of a
// Δ-query against ∅, Δ, D, or D±Δ (Figure 5); because update granularity
// is a single subtree Δ (Theorem 4.1), each of those sub-instances is
// expressible as the current forest filtered by an interval predicate:
//
//   - after applying an insertion: D+Δ = All, Δ = Subtree(root),
//     old D = ExceptSubtree(root);
//   - before applying a deletion: D = All, Δ = Subtree(root),
//     D−Δ = ExceptSubtree(root).
//
// A View is a small value and is copied freely.
type View struct {
	d    *Directory
	kind viewKind
	root *Entry
}

// All returns the view containing every entry of d.
func (d *Directory) All() View { return View{d: d, kind: viewAll} }

// EmptyView returns the empty view over d (the instance ∅ of Figure 5).
func (d *Directory) EmptyView() View { return View{d: d, kind: viewEmpty} }

// SubtreeView returns the view containing root and all of its descendants
// (the inserted or to-be-deleted subtree Δ).
func (d *Directory) SubtreeView(root *Entry) View {
	return View{d: d, kind: viewSubtree, root: root}
}

// ExceptSubtreeView returns the view containing every entry outside the
// subtree rooted at root.
func (d *Directory) ExceptSubtreeView(root *Entry) View {
	return View{d: d, kind: viewExceptSubtree, root: root}
}

// Directory returns the underlying directory.
func (v View) Directory() *Directory { return v.d }

// IsEmptyView reports whether this is the ∅ view (regardless of directory
// contents).
func (v View) IsEmptyView() bool { return v.kind == viewEmpty }

// Contains reports whether the view includes e. The directory encoding
// must be current; Entries and ClassEntries ensure it.
func (v View) Contains(e *Entry) bool {
	if e == nil || e.dir != v.d {
		return false
	}
	switch v.kind {
	case viewAll:
		return true
	case viewEmpty:
		return false
	case viewSubtree:
		return v.root.pre <= e.pre && e.pre <= v.root.post
	case viewExceptSubtree:
		return e.pre < v.root.pre || e.pre > v.root.post
	}
	return false
}

// Entries returns the view's entries in pre-order. For the subtree views
// this slices or filters the directory's pre-order without re-sorting.
func (v View) Entries() []*Entry {
	v.d.EnsureEncoded()
	switch v.kind {
	case viewAll:
		return v.d.order
	case viewEmpty:
		return nil
	case viewSubtree:
		return v.d.order[v.root.pre : v.root.post+1]
	case viewExceptSubtree:
		out := make([]*Entry, 0, len(v.d.order)-(v.root.post-v.root.pre+1))
		out = append(out, v.d.order[:v.root.pre]...)
		out = append(out, v.d.order[v.root.post+1:]...)
		return out
	}
	return nil
}

// ClassEntries returns the view's entries of object class c in pre-order.
func (v View) ClassEntries(c string) []*Entry {
	v.d.EnsureEncoded()
	all := v.d.classIndex[c]
	switch v.kind {
	case viewAll:
		return all
	case viewEmpty:
		return nil
	case viewSubtree:
		lo, hi := rangeWithin(all, v.root.pre, v.root.post)
		return all[lo:hi]
	case viewExceptSubtree:
		lo, hi := rangeWithin(all, v.root.pre, v.root.post)
		if lo == hi {
			return all
		}
		out := make([]*Entry, 0, len(all)-(hi-lo))
		out = append(out, all[:lo]...)
		out = append(out, all[hi:]...)
		return out
	}
	return nil
}

// Filter clips a pre-order-sorted entry list (a posting list or an index
// probe result) to the view, without re-sorting. For the contiguous views
// this is a binary-searched slice of the input; the result may share the
// input's backing array and must be treated as read-only.
func (v View) Filter(sorted []*Entry) []*Entry {
	v.d.EnsureEncoded()
	switch v.kind {
	case viewAll:
		return sorted
	case viewEmpty:
		return nil
	case viewSubtree:
		lo, hi := rangeWithin(sorted, v.root.pre, v.root.post)
		return sorted[lo:hi]
	case viewExceptSubtree:
		lo, hi := rangeWithin(sorted, v.root.pre, v.root.post)
		if lo == hi {
			return sorted
		}
		out := make([]*Entry, 0, len(sorted)-(hi-lo))
		out = append(out, sorted[:lo]...)
		out = append(out, sorted[hi:]...)
		return out
	}
	return nil
}

// rangeWithin returns the half-open index range of entries in the
// pre-order-sorted list whose pre rank lies in [lo, hi], by binary search.
func rangeWithin(sorted []*Entry, lo, hi int) (int, int) {
	a := searchPre(sorted, lo)
	b := searchPre(sorted, hi+1)
	return a, b
}

// searchPre returns the first index whose entry has pre >= target.
func searchPre(sorted []*Entry, target int) int {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid].pre < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Len returns the number of entries in the view.
func (v View) Len() int {
	v.d.EnsureEncoded()
	switch v.kind {
	case viewAll:
		return len(v.d.order)
	case viewEmpty:
		return 0
	case viewSubtree:
		return v.root.post - v.root.pre + 1
	case viewExceptSubtree:
		return len(v.d.order) - (v.root.post - v.root.pre + 1)
	}
	return 0
}

// String describes the view for diagnostics.
func (v View) String() string {
	switch v.kind {
	case viewAll:
		return "D"
	case viewEmpty:
		return "∅"
	case viewSubtree:
		return fmt.Sprintf("Δ(%s)", v.root.DN())
	case viewExceptSubtree:
		return fmt.Sprintf("D−Δ(%s)", v.root.DN())
	}
	return "?"
}

package dirtree

// Attribute-value secondary indexes.
//
// The paper closes (§7) by noting that "query optimization is facilitated
// using schema"; the concrete gap is that every non-class σ(filter) atom
// pays the full |D| scan that Theorem 3.1 budgets for the *whole* query.
// This file gives each attribute an ordered in-memory B+tree keyed by the
// typed Value (so integer and telephone attributes sort semantically, per
// the registry's τ), mapping each distinct value to its posting list of
// entries sorted by pre-order rank — the same document order the class
// posting lists use, so index results splice into hierarchical joins and
// views without re-sorting.
//
// Maintenance mirrors the interval-encoding patcher (patch.go):
//
//   - trees are built lazily, per attribute, on first probe
//     (Directory.valueTree), from one pre-order walk;
//   - structural splices (patchInsert/patchDelete) insert or remove the
//     moved subtree's postings; rank shifts of surviving entries never
//     reorder a posting list, because relative pre-order is preserved;
//   - value-only writes (AddValue/SetValues/RemoveValue) patch the tree
//     of the touched attribute in place when the encoding is current, and
//     otherwise mark the whole index stale (attrStale), to be dropped and
//     rebuilt on the next probe — the same fallback contract EnsureEncoded
//     provides for the encoding itself;
//   - a full encoding rebuild drops all trees: arbitrary unpatched
//     mutations may have happened.
//
// Because every transactional path (txn apply and undo, trusted journal
// replay, replica apply, PROMOTE) mutates the directory exclusively
// through these primitives, the value indexes stay consistent through
// commit, rollback, recovery and replication with no extra bookkeeping.
//
// Concurrency: probing an attribute for the first time builds its tree,
// which mutates the directory even on the "read" path. Builds are
// serialized by attrMu, so concurrent read-only evaluation (the
// AuditReadOnly contract) remains safe; mutation paths touch the trees
// only under the caller's exclusive access, as for every other directory
// mutation.

import "sort"

// bpOrder is the maximum number of keys per B+tree node.
const bpOrder = 32

// bptree is a counted B+tree mapping typed attribute values to posting
// lists of entries sorted by pre-order rank. Internal nodes cache the
// number of postings under each child, giving exact O(log n) cardinality
// for any key range — the planner's cost estimates are not estimates at
// all.
type bptree struct {
	root    *bpnode
	pairs   int // total (value, entry) postings
	nonText int // postings whose key is not string-ish (gates prefix probes)
	// exact is a hash sidecar over the leaf keys: each distinct key maps
	// to the very posting slice its leaf holds, so equality probes (the
	// dominant SEARCH shape) cost one hash lookup instead of a descent —
	// at 10^6 entries the descent is several cache-missing node hops and
	// shows up directly in point-SEARCH latency (bsbench e20). Map keys
	// are the stored leaf keys; a probe Value that is Compare-equal but
	// not structurally identical may miss and falls back to the descent.
	exact map[Value][]*Entry
}

type bpnode struct {
	leaf  bool
	keys  []Value
	posts [][]*Entry // leaf: posting per key, sorted by pre
	kids  []*bpnode  // internal: len(kids) == len(keys)+1
	count []int      // internal: postings under each kid
	next  *bpnode    // leaf chain, left to right
}

// textSafe reports whether the value's String() form equals the payload
// the total order compares, so byte-range bounds on the tree agree with
// textual prefix matching.
func textSafe(v Value) bool {
	switch v.typ {
	case TypeString, TypeDN, TypeTel:
		return true
	}
	return false
}

func (t *bptree) insert(v Value, e *Entry) {
	if t.root == nil {
		t.root = &bpnode{leaf: true}
	}
	if t.exact == nil {
		t.exact = make(map[Value][]*Entry)
	}
	added, sib, sep := t.insertRec(t.root, v, e)
	if sib != nil {
		t.root = &bpnode{
			kids:  []*bpnode{t.root, sib},
			keys:  []Value{sep},
			count: []int{subCount(t.root), subCount(sib)},
		}
	}
	if added {
		t.pairs++
		if !textSafe(v) {
			t.nonText++
		}
	}
}

func subCount(n *bpnode) int {
	if n.leaf {
		s := 0
		for _, p := range n.posts {
			s += len(p)
		}
		return s
	}
	s := 0
	for _, c := range n.count {
		s += c
	}
	return s
}

// insertRec inserts the posting into n's subtree. It reports whether a
// new posting was added (the insert is idempotent) and, when n split, the
// new right sibling with its separator key.
func (t *bptree) insertRec(n *bpnode, v Value, e *Entry) (added bool, sib *bpnode, sep Value) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(j int) bool { return n.keys[j].Compare(v) >= 0 })
		if i < len(n.keys) && n.keys[i].Compare(v) == 0 {
			p := n.posts[i]
			j := searchPre(p, e.pre)
			if j < len(p) && p[j] == e {
				return false, nil, Value{} // already present
			}
			p = append(p, nil)
			copy(p[j+1:], p[j:])
			p[j] = e
			n.posts[i] = p
			t.exact[n.keys[i]] = p
		} else {
			n.keys = append(n.keys, Value{})
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = v
			n.posts = append(n.posts, nil)
			copy(n.posts[i+1:], n.posts[i:])
			n.posts[i] = []*Entry{e}
			t.exact[v] = n.posts[i]
		}
		if len(n.keys) > bpOrder {
			mid := len(n.keys) / 2
			s := &bpnode{
				leaf:  true,
				keys:  append([]Value(nil), n.keys[mid:]...),
				posts: append([][]*Entry(nil), n.posts[mid:]...),
				next:  n.next,
			}
			n.keys = n.keys[:mid]
			n.posts = n.posts[:mid]
			n.next = s
			return true, s, s.keys[0]
		}
		return true, nil, Value{}
	}

	// Internal: keys in kids[i] are < keys[i] <= keys in kids[i+1].
	i := sort.Search(len(n.keys), func(j int) bool { return v.Compare(n.keys[j]) < 0 })
	added, csib, csep := t.insertRec(n.kids[i], v, e)
	if csib != nil {
		n.keys = append(n.keys, Value{})
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = csep
		n.kids = append(n.kids, nil)
		copy(n.kids[i+2:], n.kids[i+1:])
		n.kids[i+1] = csib
		n.count = append(n.count, 0)
		copy(n.count[i+2:], n.count[i+1:])
		n.count[i] = subCount(n.kids[i])
		n.count[i+1] = subCount(csib)
	} else if added {
		n.count[i]++
	}
	if len(n.keys) > bpOrder {
		mid := len(n.keys) / 2
		sep = n.keys[mid]
		s := &bpnode{
			keys:  append([]Value(nil), n.keys[mid+1:]...),
			kids:  append([]*bpnode(nil), n.kids[mid+1:]...),
			count: append([]int(nil), n.count[mid+1:]...),
		}
		n.keys = n.keys[:mid]
		n.kids = n.kids[:mid+1]
		n.count = n.count[:mid+1]
		return added, s, sep
	}
	return added, nil, Value{}
}

// remove deletes the (v, e) posting if present. Keys whose posting
// empties are dropped; nodes are never merged (stale separators still
// partition correctly, matching the no-rebalance class posting lists).
// e's pre rank must still be current.
func (t *bptree) remove(v Value, e *Entry) {
	if t.root == nil {
		return
	}
	if t.removeRec(t.root, v, e) {
		t.pairs--
		if !textSafe(v) {
			t.nonText--
		}
	}
}

func (t *bptree) removeRec(n *bpnode, v Value, e *Entry) bool {
	if n.leaf {
		i := sort.Search(len(n.keys), func(j int) bool { return n.keys[j].Compare(v) >= 0 })
		if i >= len(n.keys) || n.keys[i].Compare(v) != 0 {
			return false
		}
		p := n.posts[i]
		j := searchPre(p, e.pre)
		if j >= len(p) || p[j] != e {
			return false
		}
		p = append(p[:j:j], p[j+1:]...)
		if len(p) == 0 {
			delete(t.exact, n.keys[i])
			n.keys = append(n.keys[:i:i], n.keys[i+1:]...)
			n.posts = append(n.posts[:i:i], n.posts[i+1:]...)
		} else {
			n.posts[i] = p
			t.exact[n.keys[i]] = p
		}
		return true
	}
	i := sort.Search(len(n.keys), func(j int) bool { return v.Compare(n.keys[j]) < 0 })
	if t.removeRec(n.kids[i], v, e) {
		n.count[i]--
		return true
	}
	return false
}

// lookup returns the posting list for the exact key, or nil. The slice is
// owned by the tree and must not be modified. The hash sidecar answers in
// O(1); the descent remains as the fallback for Compare-equal probe
// values that are not structurally identical to the stored key.
func (t *bptree) lookup(v Value) []*Entry {
	if p, ok := t.exact[v]; ok {
		return p
	}
	n := t.root
	for n != nil && !n.leaf {
		i := sort.Search(len(n.keys), func(j int) bool { return v.Compare(n.keys[j]) < 0 })
		n = n.kids[i]
	}
	if n == nil {
		return nil
	}
	i := sort.Search(len(n.keys), func(j int) bool { return n.keys[j].Compare(v) >= 0 })
	if i < len(n.keys) && n.keys[i].Compare(v) == 0 {
		return n.posts[i]
	}
	return nil
}

// scanFrom calls fn for every (key, posting) pair with key >= lo (or from
// the smallest key when lo is nil), in key order, until fn returns false.
func (t *bptree) scanFrom(lo *Value, fn func(k Value, posting []*Entry) bool) {
	n := t.root
	for n != nil && !n.leaf {
		i := 0
		if lo != nil {
			i = sort.Search(len(n.keys), func(j int) bool { return lo.Compare(n.keys[j]) < 0 })
		}
		n = n.kids[i]
	}
	for ; n != nil; n = n.next {
		for i, k := range n.keys {
			if lo != nil && k.Compare(*lo) < 0 {
				continue
			}
			if !fn(k, n.posts[i]) {
				return
			}
		}
	}
}

// countLess returns the number of postings whose key is < v (<= v when
// orEq). O(log n) via the per-child counts.
func (t *bptree) countLess(v Value, orEq bool) int {
	s := 0
	for n := t.root; n != nil; {
		if n.leaf {
			i := sort.Search(len(n.keys), func(j int) bool {
				c := n.keys[j].Compare(v)
				if orEq {
					return c > 0
				}
				return c >= 0
			})
			for _, p := range n.posts[:i] {
				s += len(p)
			}
			return s
		}
		i := sort.Search(len(n.keys), func(j int) bool { return n.keys[j].Compare(v) > 0 })
		for _, c := range n.count[:i] {
			s += c
		}
		n = n.kids[i]
	}
	return s
}

// countRange returns the number of postings with lo <= key <= hi; a nil
// bound is unbounded on that side.
func (t *bptree) countRange(lo, hi *Value) int {
	upper := t.pairs
	if hi != nil {
		upper = t.countLess(*hi, true)
	}
	if lo != nil {
		return upper - t.countLess(*lo, false)
	}
	return upper
}

// prefixUpper returns the smallest value of type tt that no string with
// the given prefix can reach: the prefix with its last non-0xff byte
// incremented, or the smallest value of the next type tag when the prefix
// is all 0xff bytes. Sound because Compare on string-ish types is
// bytewise on the same payload String() renders.
func prefixUpper(tt Type, p string) Value {
	b := []byte(p)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return Value{typ: tt, s: string(b[:i+1])}
		}
	}
	return Value{typ: tt + 1}
}

// textTypes are the type tags whose Compare order is bytewise on the
// rendered text, in tag order.
var textTypes = [...]Type{TypeString, TypeDN, TypeTel}

// ---------------------------------------------------------------------
// Directory integration.

// valueTree returns the (built) value index for attr, building it from
// one pre-order walk on first probe. Builds are serialized by attrMu so
// concurrent read-only evaluation stays safe; see the package comment.
func (d *Directory) valueTree(attr string) *bptree {
	d.EnsureEncoded()
	d.attrMu.Lock()
	defer d.attrMu.Unlock()
	if d.attrStale {
		d.attrTrees = nil
		d.attrStale = false
	}
	if t, ok := d.attrTrees[attr]; ok {
		return t
	}
	t := d.buildValueTree(attr)
	if d.attrTrees == nil {
		d.attrTrees = make(map[string]*bptree)
	}
	d.attrTrees[attr] = t
	return t
}

// buildValueTree bulk-loads attr's tree from the current pre-order.
// Collection order is pre-order, so a stable sort by value leaves every
// posting list sorted by pre rank with no per-key sort.
func (d *Directory) buildValueTree(attr string) *bptree {
	type kv struct {
		v Value
		e *Entry
	}
	var pairs []kv
	for _, e := range d.order {
		for _, v := range e.attrs[attr] {
			pairs = append(pairs, kv{v, e})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].v.Compare(pairs[j].v) < 0 })

	t := &bptree{}
	// Group into unique keys with their postings, dropping duplicate
	// (value, entry) pairs (SetValues stores values verbatim, so an entry
	// may hold the same value twice; the index is a set).
	var keys []Value
	var posts [][]*Entry
	for i := 0; i < len(pairs); i++ {
		p := pairs[i]
		if len(keys) > 0 && keys[len(keys)-1].Compare(p.v) == 0 {
			last := posts[len(posts)-1]
			if last[len(last)-1] != p.e {
				posts[len(posts)-1] = append(last, p.e)
				t.pairs++
				if !textSafe(p.v) {
					t.nonText++
				}
			}
			continue
		}
		keys = append(keys, p.v)
		posts = append(posts, []*Entry{p.e})
		t.pairs++
		if !textSafe(p.v) {
			t.nonText++
		}
	}
	if len(keys) == 0 {
		return t
	}
	t.exact = make(map[Value][]*Entry, len(keys))
	for i := range keys {
		t.exact[keys[i]] = posts[i]
	}

	// Build leaves left to right at ~3/4 fill, then internal levels
	// bottom-up.
	const fill = bpOrder * 3 / 4
	var level []*bpnode
	var seps []Value // smallest key of each node after the first
	for i := 0; i < len(keys); i += fill {
		j := i + fill
		if j > len(keys) {
			j = len(keys)
		}
		n := &bpnode{leaf: true, keys: keys[i:j:j], posts: posts[i:j:j]}
		if len(level) > 0 {
			level[len(level)-1].next = n
			seps = append(seps, n.keys[0])
		}
		level = append(level, n)
	}
	for len(level) > 1 {
		var up []*bpnode
		var upSeps []Value
		for i := 0; i < len(level); i += fill + 1 {
			j := i + fill + 1
			if j > len(level) {
				j = len(level)
			}
			n := &bpnode{
				kids:  level[i:j:j],
				keys:  seps[i : j-1 : j-1],
				count: make([]int, j-i),
			}
			for k, kid := range n.kids {
				n.count[k] = subCount(kid)
			}
			if len(up) > 0 {
				upSeps = append(upSeps, smallestKey(n))
			}
			up = append(up, n)
		}
		level, seps = up, upSeps
	}
	t.root = level[0]
	return t
}

func smallestKey(n *bpnode) Value {
	for !n.leaf {
		n = n.kids[0]
	}
	return n.keys[0]
}

// ValueEntries returns the entries holding exactly v (same type and
// payload) for attr, sorted by pre-order. The slice is owned by the
// index and must not be modified.
func (d *Directory) ValueEntries(attr string, v Value) []*Entry {
	return d.valueTree(attr).lookup(v)
}

// ValueCount returns the number of entries holding exactly v for attr.
func (d *Directory) ValueCount(attr string, v Value) int {
	return len(d.valueTree(attr).lookup(v))
}

// ValueRangeEntries returns the entries holding at least one attr value
// in [lo, hi] under the total value order (nil bounds are unbounded),
// deduplicated and sorted by pre-order. The slice is freshly allocated.
func (d *Directory) ValueRangeEntries(attr string, lo, hi *Value) []*Entry {
	t := d.valueTree(attr)
	var out []*Entry
	t.scanFrom(lo, func(k Value, posting []*Entry) bool {
		if hi != nil && k.Compare(*hi) > 0 {
			return false
		}
		out = append(out, posting...)
		return true
	})
	return dedupByPre(out)
}

// ValueRangeCount returns the number of (value, entry) postings in
// [lo, hi] — an exact upper bound on ValueRangeEntries' length, in
// O(log n).
func (d *Directory) ValueRangeCount(attr string, lo, hi *Value) int {
	return d.valueTree(attr).countRange(lo, hi)
}

// ValuePrefixEntries returns the entries holding an attr value whose text
// begins with prefix, deduplicated and sorted by pre-order. The second
// result is false when the index cannot answer exactly — some postings
// have keys (integers, booleans) whose rendered text does not follow the
// tree's byte order — in which case callers must fall back to scanning.
func (d *Directory) ValuePrefixEntries(attr, prefix string) ([]*Entry, bool) {
	t := d.valueTree(attr)
	if t.nonText > 0 {
		return nil, false
	}
	var out []*Entry
	for _, tt := range textTypes {
		lo := Value{typ: tt, s: prefix}
		hi := prefixUpper(tt, prefix)
		t.scanFrom(&lo, func(k Value, posting []*Entry) bool {
			if k.Compare(hi) >= 0 {
				return false
			}
			out = append(out, posting...)
			return true
		})
	}
	return dedupByPre(out), true
}

// ValuePrefixCount returns the number of postings whose text begins with
// prefix, in O(log n); false when the index cannot answer exactly.
func (d *Directory) ValuePrefixCount(attr, prefix string) (int, bool) {
	t := d.valueTree(attr)
	if t.nonText > 0 {
		return 0, false
	}
	s := 0
	for _, tt := range textTypes {
		lo := Value{typ: tt, s: prefix}
		hi := prefixUpper(tt, prefix)
		s += t.countLess(hi, false) - t.countLess(lo, false)
	}
	return s, true
}

// ValuePairs returns the total number of (value, entry) postings indexed
// for attr — the size of its value index.
func (d *Directory) ValuePairs(attr string) int {
	return d.valueTree(attr).pairs
}

// dedupByPre sorts entries by pre-order rank and removes duplicates
// (entries reached through several values) in place.
func dedupByPre(out []*Entry) []*Entry {
	if len(out) < 2 {
		return out
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pre < out[j].pre })
	w := 1
	for _, e := range out[1:] {
		if out[w-1] != e {
			out[w] = e
			w++
		}
	}
	return out[:w]
}

// ---------------------------------------------------------------------
// Maintenance hooks, called from the mutation paths.

// valueHooksLive reports whether any value tree exists and is being kept
// current; when false there is nothing to patch (the next probe
// rebuilds).
func (d *Directory) valueHooksLive() bool {
	return len(d.attrTrees) > 0 && !d.attrStale
}

// noteValueAdded patches attr's tree after v was appended to e, or marks
// the index stale when the encoding is not current (e's pre rank would be
// unreliable).
func (d *Directory) noteValueAdded(e *Entry, name string, v Value) {
	if d == nil || !d.valueHooksLive() {
		return
	}
	if !d.patchable() {
		d.attrStale = true
		return
	}
	if t := d.attrTrees[name]; t != nil {
		t.insert(v, e)
	}
}

// noteValueRemoved patches attr's tree after v was removed from e. The
// posting survives while another occurrence of the same value remains
// (SetValues can store duplicates).
func (d *Directory) noteValueRemoved(e *Entry, name string, v Value) {
	if d == nil || !d.valueHooksLive() {
		return
	}
	if !d.patchable() {
		d.attrStale = true
		return
	}
	t := d.attrTrees[name]
	if t == nil {
		return
	}
	for _, have := range e.attrs[name] {
		if have.Equal(v) {
			return
		}
	}
	t.remove(v, e)
}

// noteValuesReplaced patches attr's tree after SetValues swapped e's
// whole value set; old is the previous slice.
func (d *Directory) noteValuesReplaced(e *Entry, name string, old []Value) {
	if d == nil || !d.valueHooksLive() {
		return
	}
	if !d.patchable() {
		d.attrStale = true
		return
	}
	t := d.attrTrees[name]
	if t == nil {
		return
	}
	now := e.attrs[name]
	for _, v := range old {
		kept := false
		for _, w := range now {
			if w.Equal(v) {
				kept = true
				break
			}
		}
		if !kept {
			t.remove(v, e)
		}
	}
	for _, v := range now {
		t.insert(v, e) // idempotent
	}
}

// patchValueInsert indexes every attribute value of a freshly spliced
// subtree (patchInsert has already assigned current pre ranks).
func (d *Directory) patchValueInsert(sub []*Entry) {
	if !d.valueHooksLive() {
		return
	}
	for _, e := range sub {
		for name, vs := range e.attrs {
			if t := d.attrTrees[name]; t != nil {
				for _, v := range vs {
					t.insert(v, e)
				}
			}
		}
	}
}

// patchValueDelete unindexes every attribute value of a subtree about to
// be spliced out (pre ranks still current).
func (d *Directory) patchValueDelete(doomed []*Entry) {
	if !d.valueHooksLive() {
		return
	}
	for _, e := range doomed {
		for name, vs := range e.attrs {
			if t := d.attrTrees[name]; t != nil {
				for _, v := range vs {
					t.remove(v, e)
				}
			}
		}
	}
}


package dirtree

// Incremental maintenance of the interval encoding.
//
// The paper's Δ-queries (Theorem 4.1, Figure 5) cost O(|Δ|) only if the
// auxiliary structures they run over — the pre/post interval encoding and
// the per-class posting lists — are maintained in O(|Δ|) too. Rebuilding
// them from the roots after every mutation (EnsureEncoded) silently
// re-introduces an O(|D|) term per transaction, which is exactly the
// superlinear journal-replay cost BENCH_recovery.json measured.
//
// This file patches the encoding in place instead. Because update
// granularity is a single subtree Δ (Theorem 4.1) and Δ occupies a
// contiguous pre-order interval, every mutation is a splice:
//
//   - inserting a subtree of k entries at pre-rank p shifts the ranks of
//     the entries at or after p up by k, grows the post of Δ's ancestors
//     by k, and splices Δ's entries (ranked by a local walk) into the
//     pre-order slice and their posting lists;
//   - deleting the subtree [lo, hi] does the reverse;
//   - class membership changes splice one entry into or out of one
//     posting list, ranks untouched;
//   - attribute-value changes do not touch the encoding at all.
//
// Cost is O(|Δ| + s) where s is the suffix of the pre-order at or after
// the splice point (entries whose ranks shift) — O(|Δ|) for the common
// append-at-the-end workloads, O(|D|) only for a splice near rank 0,
// never worse than the full recompute it replaces. EnsureEncoded remains
// as the from-scratch fallback: any path that cannot patch (a mutation
// while the encoding is already stale, a failed partial graft) bumps the
// epoch as before, and the next read rebuilds. The differential test in
// incremental_test.go holds the two byte-identical after every op.

// patchable reports whether mutations may patch the current encoding in
// place: the encoding must be current, and no bulk graft may be
// assembling a subtree (GraftSubtree patches once at the end instead).
func (d *Directory) patchable() bool {
	return d.encodedEpoch == d.epoch && !d.grafting
}

// patchInsert splices a freshly linked subtree into the current
// encoding. root must already hang off its parent (or the root list) as
// the LAST child/root, with none of its entries in the pre-order slice
// or the posting lists yet — the shape add and GraftSubtree produce.
func (d *Directory) patchInsert(root *Entry) {
	sub := make([]*Entry, 0, 8)
	var collect func(e *Entry)
	collect = func(e *Entry) {
		sub = append(sub, e)
		for _, c := range e.children {
			collect(c)
		}
	}
	collect(root)
	k := len(sub)

	// Insertion rank and depth: right after the parent's current subtree
	// (root is its last child), or after everything for a new forest root.
	p, depth := len(d.order), 0
	if par := root.parent; par != nil {
		p, depth = par.post+1, par.depth+1
	}

	// Entries at or after the splice point shift up; the new subtree's
	// ancestors grow to cover it. The two sets are disjoint (an ancestor's
	// pre-rank precedes p by definition).
	for _, e := range d.order[p:] {
		e.pre += k
		e.post += k
	}
	for a := root.parent; a != nil; a = a.parent {
		a.post += k
	}

	// Rank the new subtree with a local pre-order walk.
	pre := p
	var assign func(e *Entry, depth int)
	assign = func(e *Entry, depth int) {
		e.pre, e.depth = pre, depth
		pre++
		for _, c := range e.children {
			assign(c, depth+1)
		}
		e.post = pre - 1
	}
	assign(root, depth)

	// Splice into the pre-order slice (copy handles the overlap).
	d.order = append(d.order, sub...)
	copy(d.order[p+k:], d.order[p:len(d.order)-k])
	copy(d.order[p:], sub)

	// Posting lists: sub is in pre-order, so repeated insertion keeps
	// each list sorted.
	for _, e := range sub {
		for c := range e.classes {
			d.insertPosting(c, e)
		}
	}
	// Value indexes: ranks are assigned, so postings land in order. The
	// suffix rank shift above never reorders existing postings.
	d.patchValueInsert(sub)
}

// patchDelete splices the subtree rooted at root out of the current
// encoding. Must run BEFORE the subtree is detached, while its interval
// [root.pre, root.post] is still valid.
func (d *Directory) patchDelete(root *Entry) {
	lo, hi := root.pre, root.post
	k := hi - lo + 1

	// Posting lists and value indexes first, while the doomed entries'
	// ranks still locate them: one contiguous splice per class occurring
	// in the subtree, one tree removal per (value, entry) posting.
	d.patchValueDelete(d.order[lo : hi+1])
	classes := make(map[string]struct{})
	for _, e := range d.order[lo : hi+1] {
		for c := range e.classes {
			classes[c] = struct{}{}
		}
	}
	for c := range classes {
		list := d.classIndex[c]
		a, b := rangeWithin(list, lo, hi)
		list = append(list[:a], list[b:]...)
		if len(list) == 0 {
			delete(d.classIndex, c) // EnsureEncoded never materializes empty lists
		} else {
			d.classIndex[c] = list
		}
	}

	for a := root.parent; a != nil; a = a.parent {
		a.post -= k
	}
	for _, e := range d.order[hi+1:] {
		e.pre -= k
		e.post -= k
	}
	d.order = append(d.order[:lo], d.order[hi+1:]...)
}

// insertPosting adds e (whose pre rank is current) to class c's posting
// list, keeping it sorted by pre-order rank.
func (d *Directory) insertPosting(c string, e *Entry) {
	list := d.classIndex[c]
	i := searchPre(list, e.pre)
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = e
	d.classIndex[c] = list
}

// removePosting removes e from class c's posting list, dropping the list
// entirely when it empties (matching what a recompute would build).
func (d *Directory) removePosting(c string, e *Entry) {
	list := d.classIndex[c]
	i := searchPre(list, e.pre)
	if i < len(list) && list[i] == e {
		list = append(list[:i], list[i+1:]...)
	}
	if len(list) == 0 {
		delete(d.classIndex, c)
	} else {
		d.classIndex[c] = list
	}
}

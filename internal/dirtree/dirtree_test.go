package dirtree

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func mustAdd(t *testing.T, d *Directory, parent *Entry, rdn string, classes ...string) *Entry {
	t.Helper()
	var e *Entry
	var err error
	if parent == nil {
		e, err = d.AddRoot(rdn, classes...)
	} else {
		e, err = d.AddChild(parent, rdn, classes...)
	}
	if err != nil {
		t.Fatalf("add %s: %v", rdn, err)
	}
	return e
}

// buildWhitePages constructs the paper's Figure 1 instance.
func buildWhitePages(t *testing.T) (*Directory, map[string]*Entry) {
	t.Helper()
	reg := NewRegistry()
	reg.Declare("name", TypeString)
	reg.Declare("mail", TypeString)
	reg.Declare("uri", TypeString)
	reg.Declare("location", TypeString)
	d := New(reg)
	att := mustAdd(t, d, nil, "o=att", "organization", "orgGroup", "online", "top")
	att.AddValue("uri", String("http://www.att.com/"))
	labs := mustAdd(t, d, att, "ou=attLabs", "orgUnit", "orgGroup", "top")
	labs.AddValue("location", String("FP"))
	armstrong := mustAdd(t, d, labs, "uid=armstrong", "staffMember", "person", "top")
	armstrong.AddValue("name", String("m armstrong"))
	db := mustAdd(t, d, labs, "ou=databases", "orgUnit", "orgGroup", "top")
	laks := mustAdd(t, d, db, "uid=laks", "researcher", "facultyMember", "person", "online", "top")
	laks.AddValue("name", String("laks lakshmanan"))
	laks.AddValue("mail", String("laks@cs.concordia.ca"))
	laks.AddValue("mail", String("laks@cse.iitb.ernet.in"))
	suciu := mustAdd(t, d, db, "uid=suciu", "researcher", "person", "top")
	suciu.AddValue("name", String("dan suciu"))
	return d, map[string]*Entry{
		"att": att, "labs": labs, "armstrong": armstrong,
		"db": db, "laks": laks, "suciu": suciu,
	}
}

func TestDNConstruction(t *testing.T) {
	d, es := buildWhitePages(t)
	want := "uid=laks,ou=databases,ou=attLabs,o=att"
	if got := es["laks"].DN(); got != want {
		t.Errorf("DN = %q, want %q", got, want)
	}
	if d.ByDN(want) != es["laks"] {
		t.Errorf("ByDN lookup failed")
	}
	if d.Len() != 6 {
		t.Errorf("Len = %d, want 6", d.Len())
	}
}

func TestObjectClassAttributeSync(t *testing.T) {
	// Condition 3(b) of Definition 2.1: objectClass values are exactly
	// the class set, in both directions.
	d, es := buildWhitePages(t)
	_ = d
	laks := es["laks"]
	got := make([]string, 0)
	for _, v := range laks.Attr(AttrObjectClass) {
		got = append(got, v.String())
	}
	want := []string{"facultyMember", "online", "person", "researcher", "top"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("objectClass values = %v, want %v", got, want)
	}
	laks.AddValue(AttrObjectClass, String("staffMember"))
	if !laks.HasClass("staffMember") {
		t.Errorf("AddValue(objectClass) did not update class set")
	}
	laks.RemoveValue(AttrObjectClass, String("staffMember"))
	if laks.HasClass("staffMember") {
		t.Errorf("RemoveValue(objectClass) did not update class set")
	}
	laks.RemoveClass("online")
	for _, v := range laks.Attr(AttrObjectClass) {
		if v.String() == "online" {
			t.Errorf("RemoveClass did not update objectClass attribute")
		}
	}
}

func TestAttrValueSetSemantics(t *testing.T) {
	d := New(nil)
	e, _ := d.AddRoot("o=x", "top")
	e.AddValue("mail", String("a@b"))
	e.AddValue("mail", String("a@b")) // duplicate ignored
	e.AddValue("mail", String("c@d"))
	if n := len(e.Attr("mail")); n != 2 {
		t.Errorf("mail has %d values, want 2", n)
	}
	e.RemoveValue("mail", String("a@b"))
	if n := len(e.Attr("mail")); n != 1 {
		t.Errorf("after removal mail has %d values, want 1", n)
	}
	e.SetValues("mail")
	if e.HasAttr("mail") {
		t.Errorf("SetValues() should remove the attribute")
	}
}

func TestDuplicateDNRejected(t *testing.T) {
	d := New(nil)
	mustAdd(t, d, nil, "o=x", "top")
	if _, err := d.AddRoot("o=x", "top"); err == nil {
		t.Fatalf("duplicate root DN accepted")
	}
	p := d.ByDN("o=x")
	mustAdd(t, d, p, "ou=y", "top")
	if _, err := d.AddChild(p, "ou=y", "top"); err == nil {
		t.Fatalf("duplicate child DN accepted")
	}
}

func TestInvalidRDN(t *testing.T) {
	d := New(nil)
	if _, err := d.AddRoot("", "top"); err == nil {
		t.Error("empty RDN accepted")
	}
	if _, err := d.AddRoot("a=b,c=d", "top"); err == nil {
		t.Error("RDN with comma accepted")
	}
}

func TestDeleteLeafOnly(t *testing.T) {
	d, es := buildWhitePages(t)
	if err := d.DeleteLeaf(es["db"]); err == nil {
		t.Fatalf("deleted non-leaf entry")
	}
	if err := d.DeleteLeaf(es["suciu"]); err != nil {
		t.Fatalf("DeleteLeaf(suciu): %v", err)
	}
	if d.ByDN("uid=suciu,ou=databases,ou=attLabs,o=att") != nil {
		t.Errorf("deleted entry still resolvable by DN")
	}
	if d.Len() != 5 {
		t.Errorf("Len = %d, want 5", d.Len())
	}
}

func TestDeleteSubtree(t *testing.T) {
	d, es := buildWhitePages(t)
	n, err := d.DeleteSubtree(es["db"])
	if err != nil {
		t.Fatalf("DeleteSubtree: %v", err)
	}
	if n != 3 {
		t.Errorf("removed %d entries, want 3", n)
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
	if d.ByDN("uid=laks,ou=databases,ou=attLabs,o=att") != nil {
		t.Errorf("descendant of deleted subtree still resolvable")
	}
}

func TestIntervalEncoding(t *testing.T) {
	d, es := buildWhitePages(t)
	d.EnsureEncoded()
	att, labs, laks, armstrong := es["att"], es["labs"], es["laks"], es["armstrong"]
	if !att.IsAncestorOf(laks) {
		t.Errorf("att should be ancestor of laks")
	}
	if !labs.IsAncestorOf(laks) {
		t.Errorf("labs should be ancestor of laks")
	}
	if laks.IsAncestorOf(att) {
		t.Errorf("laks should not be ancestor of att")
	}
	if armstrong.IsAncestorOf(laks) || laks.IsAncestorOf(armstrong) {
		t.Errorf("siblings' subtrees must be disjoint")
	}
	if att.IsAncestorOf(att) {
		t.Errorf("IsAncestorOf must be irreflexive")
	}
	if att.Depth() != 0 || labs.Depth() != 1 || laks.Depth() != 3 {
		t.Errorf("depths = %d,%d,%d, want 0,1,3", att.Depth(), labs.Depth(), laks.Depth())
	}
}

func TestEncodingInvalidatedByMutation(t *testing.T) {
	d, es := buildWhitePages(t)
	d.EnsureEncoded()
	before := len(d.ClassEntries("person"))
	mustAdd(t, d, es["db"], "uid=new", "person", "top")
	after := len(d.ClassEntries("person"))
	if after != before+1 {
		t.Errorf("class index not refreshed: %d -> %d", before, after)
	}
}

func TestClassIndexSortedByPre(t *testing.T) {
	d, _ := buildWhitePages(t)
	for _, c := range d.ClassNames() {
		es := d.ClassEntries(c)
		for i := 1; i < len(es); i++ {
			if es[i-1].Pre() >= es[i].Pre() {
				t.Errorf("class %s posting list not strictly pre-sorted", c)
			}
		}
	}
}

func TestViews(t *testing.T) {
	d, es := buildWhitePages(t)
	d.EnsureEncoded()
	sub := d.SubtreeView(es["db"])
	rest := d.ExceptSubtreeView(es["db"])
	if sub.Len() != 3 || rest.Len() != 3 {
		t.Fatalf("view lens = %d,%d, want 3,3", sub.Len(), rest.Len())
	}
	if !sub.Contains(es["laks"]) || sub.Contains(es["labs"]) {
		t.Errorf("subtree view membership wrong")
	}
	if rest.Contains(es["laks"]) || !rest.Contains(es["labs"]) {
		t.Errorf("except-subtree view membership wrong")
	}
	if !sub.Contains(es["db"]) {
		t.Errorf("subtree view must contain its root")
	}
	if got := len(sub.ClassEntries("person")); got != 2 {
		t.Errorf("subtree persons = %d, want 2", got)
	}
	if got := len(rest.ClassEntries("person")); got != 1 {
		t.Errorf("rest persons = %d, want 1", got)
	}
	if d.EmptyView().Len() != 0 || len(d.EmptyView().ClassEntries("person")) != 0 {
		t.Errorf("empty view not empty")
	}
	if d.All().Len() != 6 {
		t.Errorf("all view len = %d, want 6", d.All().Len())
	}
}

func TestViewEntriesArePreSorted(t *testing.T) {
	d, es := buildWhitePages(t)
	for _, v := range []View{d.All(), d.SubtreeView(es["labs"]), d.ExceptSubtreeView(es["db"])} {
		ents := v.Entries()
		for i := 1; i < len(ents); i++ {
			if ents[i-1].Pre() >= ents[i].Pre() {
				t.Errorf("view %v entries not pre-sorted", v)
			}
		}
	}
}

func TestClone(t *testing.T) {
	d, _ := buildWhitePages(t)
	c := d.Clone()
	if c.Len() != d.Len() {
		t.Fatalf("clone len = %d, want %d", c.Len(), d.Len())
	}
	if c.String() != d.String() {
		t.Errorf("clone outline differs:\n%s\nvs\n%s", c.String(), d.String())
	}
	laks := c.ByDN("uid=laks,ou=databases,ou=attLabs,o=att")
	if laks == nil {
		t.Fatalf("clone lost laks")
	}
	if n := len(laks.Attr("mail")); n != 2 {
		t.Errorf("clone lost attribute values: mail has %d", n)
	}
	// Mutating the clone must not affect the original.
	laks.AddValue("mail", String("x@y"))
	orig := d.ByDN("uid=laks,ou=databases,ou=attLabs,o=att")
	if n := len(orig.Attr("mail")); n != 2 {
		t.Errorf("clone mutation leaked into original")
	}
}

func TestGraftSubtree(t *testing.T) {
	d, es := buildWhitePages(t)
	other := New(d.Registry())
	grp, _ := other.AddRoot("ou=networking", "orgUnit", "orgGroup", "top")
	p, _ := other.AddChild(grp, "uid=pat", "person", "top")
	p.AddValue("name", String("pat"))
	root, err := d.GraftSubtree(es["labs"], grp.dir.ByDN("ou=networking"))
	if err != nil {
		t.Fatalf("GraftSubtree: %v", err)
	}
	if root.Parent() != es["labs"] {
		t.Errorf("graft root parent wrong")
	}
	got := d.ByDN("uid=pat,ou=networking,ou=attLabs,o=att")
	if got == nil {
		t.Fatalf("grafted child not resolvable")
	}
	if got.Attr("name")[0].String() != "pat" {
		t.Errorf("grafted child lost attributes")
	}
	if d.Len() != 8 {
		t.Errorf("Len = %d, want 8", d.Len())
	}
}

func TestValueTypesAndParsing(t *testing.T) {
	cases := []struct {
		v    Value
		text string
	}{
		{String("hello"), "hello"},
		{Int(-42), "-42"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
		{DN("o=att"), "o=att"},
		{Tel("+1 973 360 8000"), "+1 973 360 8000"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.text {
			t.Errorf("%v.String() = %q, want %q", c.v, got, c.text)
		}
		back, err := ParseValue(c.v.Type(), c.text)
		if err != nil {
			t.Errorf("ParseValue(%v, %q): %v", c.v.Type(), c.text, err)
			continue
		}
		if !back.Equal(c.v) {
			t.Errorf("round trip %v -> %q -> %v", c.v, c.text, back)
		}
	}
	if _, err := ParseValue(TypeInt, "not-a-number"); err == nil {
		t.Errorf("ParseValue accepted bad integer")
	}
	if _, err := ParseValue(TypeBool, "maybe"); err == nil {
		t.Errorf("ParseValue accepted bad boolean")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	vals := []Value{String("a"), String("b"), Int(1), Int(2), Bool(false), Bool(true), DN("o=a")}
	sorted := append([]Value(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Compare(sorted[i]) > 0 {
			t.Fatalf("sort not consistent with Compare")
		}
	}
	if String("a").Compare(String("a")) != 0 {
		t.Errorf("equal strings compare nonzero")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Declare("age", TypeInt)
	r.DeclareSingle("ssn", TypeString)
	if r.Type("age") != TypeInt {
		t.Errorf("age type wrong")
	}
	if r.Type("undeclared") != TypeString {
		t.Errorf("undeclared attrs must default to string")
	}
	if !r.SingleValued("ssn") || r.SingleValued("age") {
		t.Errorf("single-valued flags wrong")
	}
	if err := r.CheckValue("age", Int(30)); err != nil {
		t.Errorf("CheckValue(age, 30): %v", err)
	}
	if err := r.CheckValue("age", String("thirty")); err == nil {
		t.Errorf("CheckValue accepted mistyped value")
	}
	if !r.Declared(AttrObjectClass) {
		t.Errorf("objectClass must be pre-declared")
	}
}

func TestCheckTyping(t *testing.T) {
	r := NewRegistry()
	r.Declare("age", TypeInt)
	r.DeclareSingle("ssn", TypeString)
	d := New(r)
	e, _ := d.AddRoot("uid=x", "person", "top")
	e.AddValue("age", Int(5))
	e.AddValue("ssn", String("123"))
	if errs := d.CheckTyping(); len(errs) != 0 {
		t.Fatalf("unexpected typing errors: %v", errs)
	}
	e.AddValue("age", String("five"))
	e.AddValue("ssn", String("456"))
	errs := d.CheckTyping()
	if len(errs) != 2 {
		t.Fatalf("got %d typing errors, want 2: %v", len(errs), errs)
	}
}

func TestTypeParse(t *testing.T) {
	for _, tt := range []Type{TypeString, TypeInt, TypeBool, TypeDN, TypeTel} {
		got, err := ParseType(tt.String())
		if err != nil || got != tt {
			t.Errorf("ParseType(%q) = %v, %v", tt.String(), got, err)
		}
	}
	if _, err := ParseType("float"); err == nil {
		t.Errorf("ParseType accepted unknown type")
	}
}

// buildRandom grows a random forest and returns it with its entries.
func buildRandom(rng *rand.Rand, n int) *Directory {
	d := New(nil)
	var all []*Entry
	classes := []string{"a", "b", "c", "d", "top"}
	for i := 0; i < n; i++ {
		cs := []string{"top", classes[rng.Intn(4)]}
		var e *Entry
		if len(all) == 0 || rng.Intn(8) == 0 {
			e, _ = d.AddRoot(rdnN("r", i), cs...)
		} else {
			e, _ = d.AddChild(all[rng.Intn(len(all))], rdnN("n", i), cs...)
		}
		all = append(all, e)
	}
	return d
}

func rdnN(prefix string, i int) string {
	return prefix + "=" + strings.Repeat("x", i%3) + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// Property: the interval encoding agrees with the parent-pointer
// definition of ancestry on random forests.
func TestQuickIntervalEncodingMatchesParentChain(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size%64) + 2
		d := buildRandom(rng, n)
		ents := d.Entries()
		for i := 0; i < 40; i++ {
			a := ents[rng.Intn(len(ents))]
			b := ents[rng.Intn(len(ents))]
			chain := false
			for p := b.Parent(); p != nil; p = p.Parent() {
				if p == a {
					chain = true
					break
				}
			}
			if a.IsAncestorOf(b) != chain {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: for any entry, Subtree + ExceptSubtree views partition the
// directory, and their class posting lists partition the directory's.
func TestQuickViewsPartition(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size%64) + 2
		d := buildRandom(rng, n)
		ents := d.Entries()
		root := ents[rng.Intn(len(ents))]
		sub := d.SubtreeView(root)
		rest := d.ExceptSubtreeView(root)
		if sub.Len()+rest.Len() != d.Len() {
			return false
		}
		for _, e := range ents {
			if sub.Contains(e) == rest.Contains(e) {
				return false
			}
		}
		for _, c := range d.ClassNames() {
			if len(sub.ClassEntries(c))+len(rest.ClassEntries(c)) != len(d.ClassEntries(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Clone preserves the outline and DN set.
func TestQuickClonePreservesShape(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := buildRandom(rng, int(size%48)+2)
		c := d.Clone()
		if c.Len() != d.Len() || c.String() != d.String() {
			return false
		}
		for _, e := range d.Entries() {
			if c.ByDN(e.DN()) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDeleteSubtreeRoot(t *testing.T) {
	d, es := buildWhitePages(t)
	n, err := d.DeleteSubtree(es["att"])
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 || d.Len() != 0 {
		t.Errorf("removed %d, remaining %d", n, d.Len())
	}
	if len(d.Roots()) != 0 {
		t.Errorf("roots remain after deleting the only tree")
	}
}

func TestForeignEntryRejected(t *testing.T) {
	d1, es1 := buildWhitePages(t)
	d2 := New(d1.Registry())
	if err := d2.DeleteLeaf(es1["suciu"]); err == nil {
		t.Errorf("deleting a foreign entry accepted")
	}
	if _, err := d2.DeleteSubtree(es1["db"]); err == nil {
		t.Errorf("deleting a foreign subtree accepted")
	}
	if _, err := d2.AddChild(es1["db"], "x=y", "top"); err == nil {
		t.Errorf("adding under a foreign parent accepted")
	}
	other, _ := d2.AddRoot("o=other", "top")
	if _, err := d1.GraftSubtree(es1["suciu"], other); err != nil {
		t.Errorf("grafting a subtree from another directory must work: %v", err)
	}
}

func TestEntryAccessorsAfterDeletion(t *testing.T) {
	d, es := buildWhitePages(t)
	suciu := es["suciu"]
	dn := suciu.DN()
	if err := d.DeleteLeaf(suciu); err != nil {
		t.Fatal(err)
	}
	if suciu.Directory() != nil {
		t.Errorf("deleted entry still claims a directory")
	}
	if d.ByDN(dn) != nil {
		t.Errorf("deleted entry still resolvable")
	}
}

func TestClassCountAndNames(t *testing.T) {
	d, _ := buildWhitePages(t)
	if d.ClassCount("person") != 3 || d.ClassCount("ghost") != 0 {
		t.Errorf("ClassCount wrong")
	}
	names := d.ClassNames()
	if len(names) == 0 || names[len(names)-1] != "top" {
		t.Errorf("ClassNames = %v", names)
	}
}

func TestNumPairsCountsObjectClass(t *testing.T) {
	d := New(nil)
	e, _ := d.AddRoot("o=x", "a", "b")
	e.AddValue("k", String("v1"))
	e.AddValue("k", String("v2"))
	if got := e.NumPairs(); got != 4 { // 2 classes + 2 values
		t.Errorf("NumPairs = %d, want 4", got)
	}
	if got := e.NumClasses(); got != 2 {
		t.Errorf("NumClasses = %d", got)
	}
}

func TestEntryString(t *testing.T) {
	d, es := buildWhitePages(t)
	_ = d
	s := es["laks"].String()
	if !strings.Contains(s, "uid=laks") || !strings.Contains(s, "researcher") {
		t.Errorf("String = %q", s)
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(42).Int() != 42 || String("x").Int() != 0 {
		t.Errorf("Int accessor wrong")
	}
	if !Bool(true).Bool() || Int(1).Bool() {
		t.Errorf("Bool accessor wrong")
	}
}

func TestViewStringAndDirectory(t *testing.T) {
	d, es := buildWhitePages(t)
	d.EnsureEncoded()
	if got := d.All().String(); got != "D" {
		t.Errorf("All view String = %q", got)
	}
	if got := d.EmptyView().String(); got != "∅" {
		t.Errorf("Empty view String = %q", got)
	}
	if got := d.SubtreeView(es["db"]).String(); !strings.Contains(got, "Δ(") {
		t.Errorf("Subtree view String = %q", got)
	}
	if got := d.ExceptSubtreeView(es["db"]).String(); !strings.Contains(got, "D−Δ") {
		t.Errorf("ExceptSubtree view String = %q", got)
	}
	if d.All().Directory() != d {
		t.Errorf("view Directory accessor wrong")
	}
	if d.EmptyView().IsEmptyView() != true || d.All().IsEmptyView() {
		t.Errorf("IsEmptyView wrong")
	}
	if d.ByID(es["laks"].ID()) != es["laks"] {
		t.Errorf("ByID lookup wrong")
	}
}

func TestRegistryAttrsListing(t *testing.T) {
	r := NewRegistry()
	r.Declare("a", TypeInt)
	r.Declare("b", TypeBool)
	got := r.Attrs()
	if len(got) != 3 { // objectClass + a + b
		t.Errorf("Attrs = %v", got)
	}
	var nilReg *Registry
	if nilReg.Attrs() != nil || nilReg.Type("x") != TypeString || nilReg.SingleValued("x") || nilReg.Declared("x") {
		t.Errorf("nil registry accessors wrong")
	}
}

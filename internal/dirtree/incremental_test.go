package dirtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// The incremental patching in patch.go must be indistinguishable from a
// from-scratch EnsureEncoded: same pre/post/depth on every entry, same
// pre-order slice, same posting lists (including which class keys exist).
// referenceEncode computes all of that independently, walking the forest
// links only, without reading or writing any cached encoding state.
func referenceEncode(d *Directory) (order []*Entry, pre, post, depth map[*Entry]int, classes map[string][]*Entry) {
	pre = make(map[*Entry]int)
	post = make(map[*Entry]int)
	depth = make(map[*Entry]int)
	classes = make(map[string][]*Entry)
	rank := 0
	var walk func(e *Entry, dep int)
	walk = func(e *Entry, dep int) {
		pre[e] = rank
		depth[e] = dep
		rank++
		order = append(order, e)
		for c := range e.classes {
			classes[c] = append(classes[c], e)
		}
		for _, c := range e.children {
			walk(c, dep+1)
		}
		post[e] = rank - 1
	}
	for _, r := range d.roots {
		walk(r, 0)
	}
	return order, pre, post, depth, classes
}

func checkEncoding(t *testing.T, d *Directory, step string) {
	t.Helper()
	d.EnsureEncoded() // no-op after a successful patch; rebuild after a fallback
	order, pre, post, depth, classes := referenceEncode(d)
	if len(order) != len(d.order) {
		t.Fatalf("%s: order length %d, reference %d", step, len(d.order), len(order))
	}
	for i, e := range order {
		if d.order[i] != e {
			t.Fatalf("%s: order[%d] = %v, reference %v", step, i, d.order[i], e)
		}
		if e.pre != pre[e] || e.post != post[e] || e.depth != depth[e] {
			t.Fatalf("%s: %s has (pre,post,depth)=(%d,%d,%d), reference (%d,%d,%d)",
				step, e.DN(), e.pre, e.post, e.depth, pre[e], post[e], depth[e])
		}
	}
	if len(classes) != len(d.classIndex) {
		t.Fatalf("%s: classIndex has %d classes %v, reference %d %v",
			step, len(d.classIndex), classKeys(d.classIndex), len(classes), classKeys(classes))
	}
	for c, want := range classes {
		got := d.classIndex[c]
		if len(got) != len(want) {
			t.Fatalf("%s: class %s posting list length %d, reference %d", step, c, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: class %s posting[%d] = %s, reference %s", step, c, i, got[i].DN(), want[i].DN())
			}
		}
	}
}

func classKeys(m map[string][]*Entry) []string {
	out := make([]string, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// sortedEntries returns the live entries ordered by ID, for deterministic
// random picks regardless of map iteration order.
func sortedEntries(d *Directory) []*Entry {
	out := make([]*Entry, 0, len(d.byID))
	for _, e := range d.byID {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// TestIncrementalEncodingDifferential drives a long randomized workload of
// every mutating operation — adds, leaf and subtree deletes, grafts
// (including failing ones), class membership changes, attribute writes,
// and forced invalidations that exercise the EnsureEncoded fallback — and
// asserts after every single op that the maintained encoding is identical
// to an independent from-scratch computation.
func TestIncrementalEncodingDifferential(t *testing.T) {
	classPool := []string{"person", "org", "device", "group", "printer"}
	rng := rand.New(rand.NewSource(7))
	d := New(nil)
	d.EnsureEncoded()
	nextName := 0
	patched := 0

	for step := 0; step < 4000; step++ {
		alive := sortedEntries(d)
		pick := func() *Entry {
			if len(alive) == 0 {
				return nil
			}
			return alive[rng.Intn(len(alive))]
		}
		wasCurrent := d.Encoded()
		op := rng.Intn(100)
		var what string
		switch {
		case op < 18 || len(alive) == 0: // add root
			nextName++
			what = fmt.Sprintf("AddRoot r%d", nextName)
			if _, err := d.AddRoot(fmt.Sprintf("o=r%d", nextName), classPool[rng.Intn(len(classPool))]); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case op < 45: // add child
			p := pick()
			nextName++
			what = fmt.Sprintf("AddChild n%d under %s", nextName, p.DN())
			if _, err := d.AddChild(p, fmt.Sprintf("cn=n%d", nextName), classPool[rng.Intn(len(classPool))]); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case op < 55: // delete a leaf
			var leaf *Entry
			for _, e := range alive {
				if e.IsLeaf() {
					leaf = e
					if rng.Intn(3) == 0 {
						break
					}
				}
			}
			if leaf == nil {
				continue
			}
			what = fmt.Sprintf("DeleteLeaf %s", leaf.DN())
			if err := d.DeleteLeaf(leaf); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case op < 63: // delete a whole subtree
			e := pick()
			what = fmt.Sprintf("DeleteSubtree %s", e.DN())
			if _, err := d.DeleteSubtree(e); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case op < 73: // graft a copy of one subtree elsewhere
			src := pick()
			var parent *Entry
			if rng.Intn(5) > 0 {
				parent = pick()
				// Grafting into the source subtree would copy a forest
				// that is growing under the walk; the API is not meant
				// for that, so route such picks to a root graft.
				for a := parent; a != nil; a = a.parent {
					if a == src {
						parent = nil
						break
					}
				}
			}
			dest := "forest root"
			if parent != nil {
				dest = parent.DN()
			}
			what = fmt.Sprintf("GraftSubtree %s -> %s", src.DN(), dest)
			// Duplicate DNs make grafts fail, sometimes after partial
			// progress; both outcomes must leave a consistent encoding.
			_, _ = d.GraftSubtree(parent, src)
		case op < 81: // class membership
			e := pick()
			c := classPool[rng.Intn(len(classPool))]
			if rng.Intn(2) == 0 {
				what = fmt.Sprintf("AddClass %s %s", e.DN(), c)
				e.AddClass(c)
			} else {
				what = fmt.Sprintf("RemoveClass %s %s", e.DN(), c)
				e.RemoveClass(c)
			}
		case op < 86: // replace the class set wholesale
			e := pick()
			n := 1 + rng.Intn(3)
			vs := make([]Value, n)
			for i := range vs {
				vs[i] = String(classPool[rng.Intn(len(classPool))])
			}
			what = fmt.Sprintf("SetValues objectClass %s", e.DN())
			e.SetValues(AttrObjectClass, vs...)
		case op < 94: // attribute values: must never touch the encoding
			e := pick()
			what = fmt.Sprintf("attr write %s", e.DN())
			switch rng.Intn(3) {
			case 0:
				e.AddValue("cn", String(fmt.Sprintf("v%d", rng.Intn(10))))
			case 1:
				e.SetValues("mail", String("a@b"), String("c@d"))
			default:
				e.RemoveValue("cn", String(fmt.Sprintf("v%d", rng.Intn(10))))
			}
			if wasCurrent && !d.Encoded() {
				t.Fatalf("step %d (%s): value-only write invalidated the encoding", step, what)
			}
		default: // force the fallback path: stale encoding, then mutate
			what = "forced invalidation"
			d.touchStructure()
		}
		if wasCurrent && d.Encoded() {
			patched++
		}
		checkEncoding(t, d, fmt.Sprintf("step %d (%s)", step, what))
	}
	// The point of the test is the patch paths; make sure the workload
	// actually went through them and not the recompute fallback.
	if patched < 2000 {
		t.Fatalf("only %d/4000 steps kept the encoding current via patching", patched)
	}
}

// TestGraftSubtreePatchFailure pins the failure contract: a graft that
// fails midway (duplicate DN below the root) leaves the partially copied
// entries attached with a stale encoding, and the next EnsureEncoded
// rebuild agrees with the reference walk.
func TestGraftSubtreePatchFailure(t *testing.T) {
	d := New(nil)
	root, _ := d.AddRoot("o=r", "org")
	a, _ := d.AddChild(root, "ou=a", "org")
	if _, err := d.AddChild(a, "cn=x", "person"); err != nil {
		t.Fatal(err)
	}
	b, _ := d.AddChild(root, "ou=b", "org")
	if _, err := d.AddChild(b, "ou=a", "org"); err != nil { // collides below the graft root
		t.Fatal(err)
	}
	d.EnsureEncoded()
	if !d.Encoded() {
		t.Fatal("encoding should be current before the graft")
	}
	// Copy b under a: b's child "ou=a" lands as "ou=a,ou=b,ou=a,o=r" — fine;
	// then graft b under root again: "ou=b,o=r" exists — fails at the root,
	// before any add.
	if _, err := d.GraftSubtree(nil, root); err == nil {
		t.Fatal("graft onto duplicate root DN should fail")
	}
	checkEncoding(t, d, "after clean-failure graft")
	// A graft can only fail midway if the source has colliding sibling
	// RDNs, which no well-formed Directory produces — fabricate one.
	src := &Entry{rdn: "ou=c", classes: map[string]struct{}{"org": {}}}
	src.children = []*Entry{
		{rdn: "ou=dup", parent: src, classes: map[string]struct{}{"org": {}}},
		{rdn: "ou=dup", parent: src, classes: map[string]struct{}{"org": {}}},
	}
	if _, err := d.GraftSubtree(root, src); err == nil {
		t.Fatal("graft should fail on the duplicate sibling RDN")
	}
	if d.Encoded() {
		t.Fatal("partial graft must leave the encoding stale for the rebuild")
	}
	checkEncoding(t, d, "after partial-failure graft")
}

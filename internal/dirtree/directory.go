package dirtree

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Directory is a directory instance D = (R, class, val, N): a finite forest
// of entries (Definition 2.1). It maintains, lazily, a pre/post-order
// interval encoding of the forest and per-class posting lists sorted by
// pre-order — the "sorted directory entries" that the hierarchical query
// evaluation of Section 3.2 relies on for its O(|Q|·|D|) bound.
//
// A Directory is not safe for concurrent mutation; concurrent read-only use
// is safe once EnsureEncoded has been called.
type Directory struct {
	reg    *Registry
	roots  []*Entry
	byID   map[int]*Entry
	byDN   map[string]*Entry
	nextID int

	epoch        uint64
	encodedEpoch uint64
	order        []*Entry            // all entries in pre-order
	classIndex   map[string][]*Entry // per-class posting lists, pre-order
	grafting     bool                // GraftSubtree is assembling a subtree (patch once at the end)

	// Attribute-value secondary indexes (attrindex.go), built lazily per
	// attribute and patched alongside the encoding. attrMu serializes the
	// lazy builds that happen on otherwise read-only probe paths.
	attrMu    sync.Mutex
	attrTrees map[string]*bptree
	attrStale bool // trees lag the instance; drop and rebuild on next probe
}

// New returns an empty directory using reg for attribute typing. A nil reg
// leaves all attributes string-typed and multi-valued.
func New(reg *Registry) *Directory {
	return &Directory{
		reg:          reg,
		byID:         make(map[int]*Entry),
		byDN:         make(map[string]*Entry),
		epoch:        1, // force initial encoding
		encodedEpoch: 0,
	}
}

// Registry returns the attribute registry the directory was created with;
// it may be nil.
func (d *Directory) Registry() *Registry { return d.reg }

// Len returns |D|, the number of entries.
func (d *Directory) Len() int { return len(d.byID) }

// Roots returns the forest roots. The slice is owned by the directory.
func (d *Directory) Roots() []*Entry { return d.roots }

// ByDN returns the entry with the given distinguished name, or nil.
func (d *Directory) ByDN(dn string) *Entry { return d.byDN[dn] }

// ByID returns the entry with the given identifier, or nil.
func (d *Directory) ByID(id int) *Entry { return d.byID[id] }

func (d *Directory) touchContent()   { d.epoch++ }
func (d *Directory) touchStructure() { d.epoch++ }

// AddRoot creates a new forest root. LDAP permits new entries only as roots
// or as children of existing entries (Section 4.1); AddRoot covers the
// first case.
func (d *Directory) AddRoot(rdn string, classes ...string) (*Entry, error) {
	return d.add(nil, rdn, classes)
}

// AddChild creates a new entry as a child of parent, which must belong to
// this directory.
func (d *Directory) AddChild(parent *Entry, rdn string, classes ...string) (*Entry, error) {
	if parent == nil {
		return nil, fmt.Errorf("dirtree: AddChild with nil parent")
	}
	if parent.dir != d {
		return nil, fmt.Errorf("dirtree: parent %s belongs to a different directory", parent.DN())
	}
	return d.add(parent, rdn, classes)
}

func (d *Directory) add(parent *Entry, rdn string, classes []string) (*Entry, error) {
	if rdn == "" || strings.Contains(rdn, ",") {
		return nil, fmt.Errorf("dirtree: invalid RDN %q", rdn)
	}
	e := &Entry{
		dir:     d,
		id:      d.nextID,
		rdn:     rdn,
		parent:  parent,
		classes: make(map[string]struct{}, len(classes)),
	}
	dn := e.DN()
	if d.byDN[dn] != nil {
		return nil, fmt.Errorf("dirtree: entry %s already exists", dn)
	}
	d.nextID++
	for _, c := range classes {
		e.classes[c] = struct{}{}
	}
	if parent == nil {
		d.roots = append(d.roots, e)
	} else {
		parent.children = append(parent.children, e)
	}
	d.byID[e.id] = e
	d.byDN[dn] = e
	if d.patchable() {
		// The new entry is the last child (or last root): splice it into
		// the current encoding instead of invalidating it (patch.go).
		d.patchInsert(e)
	} else {
		d.touchStructure()
	}
	return e, nil
}

// DeleteLeaf removes a leaf entry. LDAP allows only leaves to be deleted
// (Section 4.1); deleting an entry with children is an error.
func (d *Directory) DeleteLeaf(e *Entry) error {
	if e.dir != d {
		return fmt.Errorf("dirtree: entry %s belongs to a different directory", e.DN())
	}
	if !e.IsLeaf() {
		return fmt.Errorf("dirtree: entry %s has %d children; only leaves may be deleted", e.DN(), len(e.children))
	}
	if d.patchable() {
		d.patchDelete(e) // before detach: uses the entry's current interval
	} else {
		d.touchStructure()
	}
	d.detach(e)
	delete(d.byID, e.id)
	delete(d.byDN, e.DN())
	e.dir = nil
	return nil
}

// DeleteSubtree removes the entry and its whole subtree, the Δ-deletion
// granularity of Section 4.1. It returns the number of entries removed.
func (d *Directory) DeleteSubtree(root *Entry) (int, error) {
	if root.dir != d {
		return 0, fmt.Errorf("dirtree: entry %s belongs to a different directory", root.DN())
	}
	n := 0
	var drop func(e *Entry)
	drop = func(e *Entry) {
		for _, c := range e.children {
			drop(c)
		}
		delete(d.byID, e.id)
		delete(d.byDN, e.DN())
		e.dir = nil
		n++
	}
	if d.patchable() {
		d.patchDelete(root) // before detach: uses the subtree's current interval
	} else {
		d.touchStructure()
	}
	d.detach(root)
	drop(root)
	return n, nil
}

func (d *Directory) detach(e *Entry) {
	if e.parent == nil {
		for i, r := range d.roots {
			if r == e {
				d.roots = append(d.roots[:i:i], d.roots[i+1:]...)
				return
			}
		}
		return
	}
	sib := e.parent.children
	for i, c := range sib {
		if c == e {
			e.parent.children = append(sib[:i:i], sib[i+1:]...)
			return
		}
	}
}

// GraftSubtree copies the subtree rooted at src (from any directory) as a
// new child of parent in d (or as a new root if parent is nil), returning
// the root of the copy. It is the Δ-insertion primitive of Section 4.1.
func (d *Directory) GraftSubtree(parent *Entry, src *Entry) (*Entry, error) {
	if parent != nil && parent.dir != d {
		return nil, fmt.Errorf("dirtree: parent %s belongs to a different directory", parent.DN())
	}
	var copyRec func(p *Entry, s *Entry) (*Entry, error)
	copyRec = func(p *Entry, s *Entry) (*Entry, error) {
		e, err := d.add(p, s.rdn, s.Classes())
		if err != nil {
			return nil, err
		}
		for name, vs := range s.attrs {
			e.attrs = ensureAttrs(e.attrs)
			e.attrs[name] = append([]Value(nil), vs...)
		}
		for _, c := range s.children {
			if _, err := copyRec(e, c); err != nil {
				return nil, err
			}
		}
		return e, nil
	}
	// Patch the encoding once for the whole subtree, not per entry: the
	// grafting flag makes each add bump the epoch instead (O(1)), and a
	// successful graft splices the finished subtree in and restores
	// currency. A failed partial graft leaves the epoch bumped, so the
	// fallback recompute cleans up.
	patch := d.patchable()
	d.grafting = true
	root, err := copyRec(parent, src)
	d.grafting = false
	if err != nil {
		return nil, err
	}
	if patch {
		d.patchInsert(root)
		d.encodedEpoch = d.epoch
	} else {
		d.touchStructure()
	}
	return root, nil
}

func ensureAttrs(m map[string][]Value) map[string][]Value {
	if m == nil {
		return make(map[string][]Value)
	}
	return m
}

// EnsureEncoded (re)computes the interval encoding and the per-class
// posting lists if any mutation happened since the last encoding. It is an
// O(|D|) pre-order walk; all query evaluation goes through it.
func (d *Directory) EnsureEncoded() {
	if d.encodedEpoch == d.epoch {
		return
	}
	// Arbitrary unpatched mutations may have happened; drop the value
	// indexes and let the next probe rebuild them (attrindex.go).
	d.attrTrees = nil
	d.attrStale = false
	d.order = d.order[:0]
	if cap(d.order) < len(d.byID) {
		d.order = make([]*Entry, 0, len(d.byID))
	}
	d.classIndex = make(map[string][]*Entry)
	pre := 0
	var walk func(e *Entry, depth int)
	walk = func(e *Entry, depth int) {
		e.pre = pre
		e.depth = depth
		pre++
		d.order = append(d.order, e)
		for c := range e.classes {
			d.classIndex[c] = append(d.classIndex[c], e)
		}
		for _, c := range e.children {
			walk(c, depth+1)
		}
		e.post = pre - 1
	}
	for _, r := range d.roots {
		walk(r, 0)
	}
	// Posting lists were appended during a pre-order walk, so they are
	// already sorted by pre-order rank; no per-class sort is needed.
	d.encodedEpoch = d.epoch
}

// Encoded reports whether the interval encoding is current, i.e. no
// mutation happened since the last EnsureEncoded. While Encoded is true,
// every read path (Entries, ClassEntries, views, queries) is free of
// internal mutation and therefore safe for concurrent use from multiple
// goroutines; any mutation invalidates that guarantee until EnsureEncoded
// runs again, single-threaded.
func (d *Directory) Encoded() bool { return d.encodedEpoch == d.epoch }

// Entries returns all entries in pre-order. The returned slice is owned by
// the directory and is valid until the next mutation.
func (d *Directory) Entries() []*Entry {
	d.EnsureEncoded()
	return d.order
}

// ClassEntries returns the entries belonging to object class c, sorted by
// pre-order. The returned slice is owned by the directory.
func (d *Directory) ClassEntries(c string) []*Entry {
	d.EnsureEncoded()
	return d.classIndex[c]
}

// ClassCount returns the number of entries that belong to object class c.
func (d *Directory) ClassCount(c string) int {
	d.EnsureEncoded()
	return len(d.classIndex[c])
}

// ClassNames returns every object class that occurs in the instance,
// sorted.
func (d *Directory) ClassNames() []string {
	d.EnsureEncoded()
	out := make([]string, 0, len(d.classIndex))
	for c := range d.classIndex {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the directory sharing the (immutable)
// registry. Entry IDs are not preserved; DNs are.
func (d *Directory) Clone() *Directory {
	out := New(d.reg)
	var copyRec func(parent *Entry, src *Entry)
	copyRec = func(parent *Entry, src *Entry) {
		e, err := out.add(parent, src.rdn, src.Classes())
		if err != nil {
			// Cannot happen: the source directory has unique DNs.
			panic(err)
		}
		for name, vs := range src.attrs {
			e.attrs = ensureAttrs(e.attrs)
			e.attrs[name] = append([]Value(nil), vs...)
		}
		for _, c := range src.children {
			copyRec(e, c)
		}
	}
	for _, r := range d.roots {
		copyRec(nil, r)
	}
	return out
}

// CheckTyping verifies condition 3(a) of Definition 2.1 (every value lies
// in the domain of its attribute's type) and, when the registry declares
// single-valued attributes, that no such attribute carries more than one
// value. It returns one error per offending (entry, attribute).
func (d *Directory) CheckTyping() []error {
	var errs []error
	for _, e := range d.Entries() {
		for name, vs := range e.attrs {
			for _, v := range vs {
				if err := d.reg.CheckValue(name, v); err != nil {
					errs = append(errs, fmt.Errorf("%s: %v", e.DN(), err))
					break
				}
			}
			if d.reg.SingleValued(name) && len(vs) > 1 {
				errs = append(errs, fmt.Errorf("%s: attribute %s is single-valued but has %d values", e.DN(), name, len(vs)))
			}
		}
	}
	return errs
}

// String renders the forest as an indented outline, for diagnostics and
// golden tests.
func (d *Directory) String() string {
	var b strings.Builder
	var walk func(e *Entry, depth int)
	walk = func(e *Entry, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(e.rdn)
		b.WriteString(" (")
		b.WriteString(strings.Join(e.Classes(), ","))
		b.WriteString(")\n")
		for _, c := range e.children {
			walk(c, depth+1)
		}
	}
	for _, r := range d.roots {
		walk(r, 0)
	}
	return b.String()
}

package dirtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// referenceValues computes attr's value→postings map independently,
// walking the forest links only: for each distinct value, the entries
// holding it, in pre-order, each at most once.
func referenceValues(d *Directory, attr string) map[Value][]*Entry {
	model := make(map[Value][]*Entry)
	var walk func(e *Entry)
	walk = func(e *Entry) {
		seen := make(map[Value]bool)
		for _, v := range e.attrs[attr] {
			if !seen[v] {
				seen[v] = true
				model[v] = append(model[v], e)
			}
		}
		for _, c := range e.children {
			walk(c)
		}
	}
	for _, r := range d.roots {
		walk(r)
	}
	return model
}

// checkValueTree asserts that attr's maintained B+tree is
// indistinguishable from the reference model: same key set in strictly
// increasing order, identical pre-sorted postings, consistent pair and
// non-text counters, and rank queries agreeing with posting lengths.
func checkValueTree(t *testing.T, d *Directory, attr, step string) {
	t.Helper()
	tree := d.valueTree(attr)
	model := referenceValues(d, attr)

	gotKeys := 0
	pairs, nonText := 0, 0
	var prev Value
	tree.scanFrom(nil, func(k Value, posting []*Entry) bool {
		if gotKeys > 0 && prev.Compare(k) >= 0 {
			t.Fatalf("%s: %s keys out of order: %v then %v", step, attr, prev, k)
		}
		prev = k
		gotKeys++
		want := model[k]
		if len(posting) == 0 {
			t.Fatalf("%s: %s key %v has an empty posting", step, attr, k)
		}
		if len(posting) != len(want) {
			t.Fatalf("%s: %s key %v posting length %d, reference %d", step, attr, k, len(posting), len(want))
		}
		for i := range want {
			if posting[i] != want[i] {
				t.Fatalf("%s: %s key %v posting[%d] = %s, reference %s", step, attr, k, i, posting[i].DN(), want[i].DN())
			}
		}
		if got := tree.countRange(&k, &k); got != len(want) {
			t.Fatalf("%s: %s countRange(%v) = %d, posting has %d", step, attr, k, got, len(want))
		}
		pairs += len(posting)
		if !textSafe(k) {
			nonText += len(posting)
		}
		return true
	})
	if gotKeys != len(model) {
		t.Fatalf("%s: %s has %d keys, reference %d", step, attr, gotKeys, len(model))
	}
	if tree.pairs != pairs {
		t.Fatalf("%s: %s pairs counter %d, actual %d", step, attr, tree.pairs, pairs)
	}
	if tree.nonText != nonText {
		t.Fatalf("%s: %s nonText counter %d, actual %d", step, attr, tree.nonText, nonText)
	}
	if got := tree.countRange(nil, nil); got != pairs {
		t.Fatalf("%s: %s unbounded countRange %d, pairs %d", step, attr, got, pairs)
	}
}

// TestValueIndexDifferential drives the same randomized workload shape as
// TestIncrementalEncodingDifferential — adds, deletes, grafts (including
// failing ones), class churn, typed value writes, forced invalidations —
// and after every op asserts the maintained value trees are identical to
// an independent recomputation. Probing every step keeps the trees built,
// so the incremental hooks (not the rebuild fallback) are what is tested
// whenever the encoding stayed current.
func TestValueIndexDifferential(t *testing.T) {
	attrs := []string{"name", "port", "tel", "mixed"}
	valuePool := func(rng *rand.Rand, attr string) Value {
		switch attr {
		case "port":
			return Int(int64(rng.Intn(8)))
		case "tel":
			return Tel(fmt.Sprintf("+1-20%d", rng.Intn(8)))
		case "mixed":
			if rng.Intn(2) == 0 {
				return Int(int64(rng.Intn(4)))
			}
			return String(fmt.Sprintf("m%d", rng.Intn(4)))
		default:
			return String(fmt.Sprintf("v%d", rng.Intn(8)))
		}
	}
	classPool := []string{"person", "org", "device"}
	rng := rand.New(rand.NewSource(11))
	d := New(nil)
	d.EnsureEncoded()
	nextName := 0

	for step := 0; step < 2500; step++ {
		alive := sortedEntries(d)
		pick := func() *Entry {
			if len(alive) == 0 {
				return nil
			}
			return alive[rng.Intn(len(alive))]
		}
		op := rng.Intn(100)
		var what string
		switch {
		case op < 12 || len(alive) == 0: // add root
			nextName++
			what = "AddRoot"
			r, err := d.AddRoot(fmt.Sprintf("o=r%d", nextName), classPool[rng.Intn(len(classPool))])
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			a := attrs[rng.Intn(len(attrs))]
			r.AddValue(a, valuePool(rng, a))
		case op < 35: // add child with a couple of values
			p := pick()
			nextName++
			what = "AddChild"
			e, err := d.AddChild(p, fmt.Sprintf("cn=n%d", nextName), classPool[rng.Intn(len(classPool))])
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			for i := rng.Intn(3); i >= 0; i-- {
				a := attrs[rng.Intn(len(attrs))]
				e.AddValue(a, valuePool(rng, a))
			}
		case op < 45: // delete a leaf
			var leaf *Entry
			for _, e := range alive {
				if e.IsLeaf() {
					leaf = e
					if rng.Intn(3) == 0 {
						break
					}
				}
			}
			if leaf == nil {
				continue
			}
			what = "DeleteLeaf"
			if err := d.DeleteLeaf(leaf); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case op < 53: // delete a whole subtree
			what = "DeleteSubtree"
			if _, err := d.DeleteSubtree(pick()); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case op < 63: // graft a copy of one subtree elsewhere (may fail)
			src := pick()
			var parent *Entry
			if rng.Intn(5) > 0 {
				parent = pick()
				for a := parent; a != nil; a = a.parent {
					if a == src {
						parent = nil
						break
					}
				}
			}
			what = "GraftSubtree"
			_, _ = d.GraftSubtree(parent, src)
		case op < 70: // class churn: must not disturb value trees
			e := pick()
			c := classPool[rng.Intn(len(classPool))]
			what = "class churn"
			if rng.Intn(2) == 0 {
				e.AddClass(c)
			} else {
				e.RemoveClass(c)
			}
		case op < 92: // typed value writes, the hooks under test
			e := pick()
			a := attrs[rng.Intn(len(attrs))]
			switch rng.Intn(4) {
			case 0:
				what = "AddValue"
				e.AddValue(a, valuePool(rng, a))
			case 1:
				what = "RemoveValue"
				e.RemoveValue(a, valuePool(rng, a))
			case 2:
				what = "SetValues"
				n := rng.Intn(4)
				vs := make([]Value, n)
				for i := range vs {
					vs[i] = valuePool(rng, a) // duplicates possible, on purpose
				}
				e.SetValues(a, vs...)
			default:
				what = "SetValues clear"
				e.SetValues(a)
			}
		default: // force the rebuild fallback
			what = "forced invalidation"
			d.touchStructure()
		}
		for _, a := range attrs {
			checkValueTree(t, d, a, fmt.Sprintf("step %d (%s)", step, what))
		}
	}
}

// TestValueIndexQueries exercises the public probe API on a typed corpus:
// exact lookups, one- and two-sided ranges over integers, prefix probes
// over strings, and the exactness gate on mixed-type attributes.
func TestValueIndexQueries(t *testing.T) {
	reg := NewRegistry()
	reg.Declare("port", TypeInt)
	d := New(reg)
	root, err := d.AddRoot("o=net", "org")
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"alice", "alan", "bob", "carol", "albert"}
	for i, n := range names {
		e, err := d.AddChild(root, fmt.Sprintf("cn=h%d", i), "host")
		if err != nil {
			t.Fatal(err)
		}
		e.AddValue("name", String(n))
		e.AddValue("port", Int(int64(80+10*i)))
		e.AddValue("mixed", Int(int64(i)))
		e.AddValue("mixed", String(n))
	}

	if got := d.ValueCount("name", String("alice")); got != 1 {
		t.Fatalf("ValueCount(alice) = %d", got)
	}
	if got := d.ValueEntries("name", String("zeno")); got != nil {
		t.Fatalf("ValueEntries(zeno) = %v", got)
	}
	// Ints probe semantically: 80,90,100,110,120 — [90, 110] has three.
	lo, hi := Int(90), Int(110)
	if got := len(d.ValueRangeEntries("port", &lo, &hi)); got != 3 {
		t.Fatalf("port range [90,110] matched %d entries", got)
	}
	if got := d.ValueRangeCount("port", &lo, nil); got != 4 {
		t.Fatalf("port range [90,∞) count = %d", got)
	}
	if got := d.ValueRangeCount("port", nil, nil); got != 5 {
		t.Fatalf("port unbounded count = %d", got)
	}
	// A string-ordered probe of the same attr would miss: "110" < "80".
	ents, ok := d.ValuePrefixEntries("name", "al")
	if !ok || len(ents) != 3 {
		t.Fatalf("name prefix al = %v entries, ok=%v", len(ents), ok)
	}
	if n, ok := d.ValuePrefixCount("name", "al"); !ok || n != 3 {
		t.Fatalf("name prefix count al = %d, ok=%v", n, ok)
	}
	if _, ok := d.ValuePrefixEntries("mixed", "a"); ok {
		t.Fatal("prefix probe on a mixed-type attribute claimed exactness")
	}
	if _, ok := d.ValuePrefixCount("mixed", "a"); ok {
		t.Fatal("prefix count on a mixed-type attribute claimed exactness")
	}
	// Every posting of a multi-valued probe dedups to one entry each.
	if got := len(d.ValueRangeEntries("mixed", nil, nil)); got != 5 {
		t.Fatalf("mixed unbounded probe = %d entries, want 5", got)
	}
	if got := d.ValuePairs("mixed"); got != 10 {
		t.Fatalf("mixed ValuePairs = %d, want 10", got)
	}
}

// TestValueIndexLargeBulk bulk-builds a tree past several split levels
// and cross-checks rank queries against brute force.
func TestValueIndexLargeBulk(t *testing.T) {
	d := New(nil)
	root, err := d.AddRoot("o=big", "org")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, 0, 5000)
	for i := 0; i < 5000; i++ {
		e, err := d.AddChild(root, fmt.Sprintf("cn=e%d", i), "host")
		if err != nil {
			t.Fatal(err)
		}
		v := int64(rng.Intn(2000))
		e.AddValue("port", Int(v))
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, probe := range []int64{-5, 0, 17, 999, 1999, 2500} {
		lo := Int(probe)
		want := len(vals) - sort.Search(len(vals), func(i int) bool { return vals[i] >= probe })
		if got := d.ValueRangeCount("port", &lo, nil); got != want {
			t.Fatalf("countRange [%d,∞) = %d, brute force %d", probe, got, want)
		}
	}
	checkValueTree(t, d, "port", "bulk")
	// Incremental inserts after a bulk build must keep splitting cleanly.
	for i := 0; i < 2000; i++ {
		e, err := d.AddChild(root, fmt.Sprintf("cn=x%d", i), "host")
		if err != nil {
			t.Fatal(err)
		}
		e.AddValue("port", Int(int64(rng.Intn(2000))))
	}
	checkValueTree(t, d, "port", "bulk+incremental")
}

// FuzzValueIndex drives the index with an arbitrary op tape against the
// map-based reference model, the map-model fuzz target the CI fuzz-smoke
// job runs.
func FuzzValueIndex(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 1, 2})
	f.Add([]byte{0, 0, 0, 40, 41, 42, 80, 81, 120, 200, 201, 202, 203})
	f.Fuzz(func(t *testing.T, tape []byte) {
		d := New(nil)
		d.EnsureEncoded()
		attrs := []string{"a", "b"}
		mkValue := func(b byte) Value {
			switch b % 3 {
			case 0:
				return Int(int64(b / 3 % 5))
			case 1:
				return String(fmt.Sprintf("s%d", b/3%5))
			default:
				return Tel(fmt.Sprintf("t%d", b/3%5))
			}
		}
		nextName := 0
		for i := 0; i+1 < len(tape); i += 2 {
			op, arg := tape[i], tape[i+1]
			alive := sortedEntries(d)
			pick := func() *Entry {
				if len(alive) == 0 {
					return nil
				}
				return alive[int(arg)%len(alive)]
			}
			switch op % 8 {
			case 0: // add root
				nextName++
				if _, err := d.AddRoot(fmt.Sprintf("o=r%d", nextName), "c"); err != nil {
					t.Fatal(err)
				}
			case 1: // add child
				if p := pick(); p != nil {
					nextName++
					if _, err := d.AddChild(p, fmt.Sprintf("cn=n%d", nextName), "c"); err != nil {
						t.Fatal(err)
					}
				}
			case 2: // add value
				if e := pick(); e != nil {
					e.AddValue(attrs[int(op)%len(attrs)], mkValue(arg))
				}
			case 3: // remove value
				if e := pick(); e != nil {
					e.RemoveValue(attrs[int(op)%len(attrs)], mkValue(arg))
				}
			case 4: // replace values (duplicates allowed)
				if e := pick(); e != nil {
					e.SetValues(attrs[int(op)%len(attrs)], mkValue(arg), mkValue(arg+1), mkValue(arg))
				}
			case 5: // delete subtree
				if e := pick(); e != nil {
					if _, err := d.DeleteSubtree(e); err != nil {
						t.Fatal(err)
					}
				}
			case 6: // graft
				if src := pick(); src != nil {
					_, _ = d.GraftSubtree(nil, src)
				}
			default: // force rebuild fallback
				d.touchStructure()
			}
			// Probe so the trees exist and the next iteration exercises
			// the incremental hooks.
			for _, a := range attrs {
				d.ValuePairs(a)
			}
		}
		for _, a := range attrs {
			checkValueTree(t, d, a, "final")
		}
	})
}

package dirtree

import (
	"fmt"
	"sort"
	"strings"
)

// AttrObjectClass is the special attribute whose values are, by condition
// 3(b) of Definition 2.1, exactly the object classes the entry belongs to.
const AttrObjectClass = "objectClass"

// Entry is a directory entry: a node of the forest holding a finite,
// non-empty set of object classes and a finite set of (attribute, value)
// pairs (Definition 2.1). Entries are created and mutated only through
// their owning Directory.
type Entry struct {
	dir      *Directory
	id       int
	rdn      string // relative distinguished name, e.g. "uid=laks"
	parent   *Entry // nil for roots
	children []*Entry

	classes map[string]struct{}
	attrs   map[string][]Value

	// Interval encoding, valid while dir.encodedEpoch == dir.epoch.
	pre, post, depth int
}

// ID returns the entry's directory-unique identifier. IDs are stable across
// structural mutations and are never reused within one Directory.
func (e *Entry) ID() int { return e.id }

// RDN returns the entry's relative distinguished name.
func (e *Entry) RDN() string { return e.rdn }

// DN returns the entry's distinguished name: its RDN followed by the DNs of
// its ancestors, leaf-first, comma-separated, in the LDAP convention
// ("uid=laks,ou=databases,ou=attLabs,o=att").
func (e *Entry) DN() string {
	var parts []string
	for n := e; n != nil; n = n.parent {
		parts = append(parts, n.rdn)
	}
	return strings.Join(parts, ",")
}

// Parent returns the entry's parent, or nil if the entry is a forest root.
func (e *Entry) Parent() *Entry { return e.parent }

// Children returns the entry's children. The returned slice is owned by the
// directory and must not be modified.
func (e *Entry) Children() []*Entry { return e.children }

// IsLeaf reports whether the entry has no children.
func (e *Entry) IsLeaf() bool { return len(e.children) == 0 }

// Directory returns the directory that owns this entry.
func (e *Entry) Directory() *Directory { return e.dir }

// HasClass reports whether the entry belongs to object class c.
func (e *Entry) HasClass(c string) bool {
	_, ok := e.classes[c]
	return ok
}

// Classes returns the entry's object classes in sorted order.
func (e *Entry) Classes() []string {
	out := make([]string, 0, len(e.classes))
	for c := range e.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// NumClasses returns |class(e)|.
func (e *Entry) NumClasses() int { return len(e.classes) }

// AddClass adds object class c to the entry. Adding a class the entry
// already belongs to is a no-op.
func (e *Entry) AddClass(c string) {
	if _, ok := e.classes[c]; ok {
		return
	}
	e.classes[c] = struct{}{}
	if e.dir.patchable() {
		e.dir.insertPosting(c, e) // ranks untouched; one posting-list splice
	} else {
		e.dir.touchContent()
	}
}

// RemoveClass removes object class c from the entry if present.
func (e *Entry) RemoveClass(c string) {
	if _, ok := e.classes[c]; !ok {
		return
	}
	if e.dir.patchable() {
		e.dir.removePosting(c, e)
	} else {
		e.dir.touchContent()
	}
	delete(e.classes, c)
}

// Attr returns the values of the named attribute. For objectClass it
// returns the class set as string values, maintaining condition 3(b) of
// Definition 2.1. The returned slice must not be modified.
func (e *Entry) Attr(name string) []Value {
	if name == AttrObjectClass {
		cs := e.Classes()
		out := make([]Value, len(cs))
		for i, c := range cs {
			out[i] = String(c)
		}
		return out
	}
	return e.attrs[name]
}

// HasAttr reports whether the entry has at least one value for the named
// attribute.
func (e *Entry) HasAttr(name string) bool {
	if name == AttrObjectClass {
		return len(e.classes) > 0
	}
	return len(e.attrs[name]) > 0
}

// AttrNames returns the names of the entry's attributes (objectClass
// included when the entry has classes), sorted.
func (e *Entry) AttrNames() []string {
	out := make([]string, 0, len(e.attrs)+1)
	for a := range e.attrs {
		out = append(out, a)
	}
	if len(e.classes) > 0 {
		out = append(out, AttrObjectClass)
	}
	sort.Strings(out)
	return out
}

// NumPairs returns |val(e)|, the number of (attribute, value) pairs held by
// the entry, counting the implicit objectClass pairs.
func (e *Entry) NumPairs() int {
	n := len(e.classes)
	for _, vs := range e.attrs {
		n += len(vs)
	}
	return n
}

// AddValue appends a value to the named attribute. Adding to objectClass is
// equivalent to AddClass with the value's text. Duplicate values are
// ignored, keeping val(e) a set.
//
// The interval encoding depends only on structure and class membership, so
// value-only mutations leave it current.
func (e *Entry) AddValue(name string, v Value) {
	if name == AttrObjectClass {
		e.AddClass(v.String())
		return
	}
	for _, have := range e.attrs[name] {
		if have.Equal(v) {
			return
		}
	}
	if e.attrs == nil {
		e.attrs = make(map[string][]Value)
	}
	e.attrs[name] = append(e.attrs[name], v)
	e.dir.noteValueAdded(e, name, v)
}

// SetValues replaces all values of the named attribute. An empty values
// slice removes the attribute.
func (e *Entry) SetValues(name string, values ...Value) {
	if name == AttrObjectClass {
		old := e.classes
		e.classes = make(map[string]struct{}, len(values))
		for _, v := range values {
			e.classes[v.String()] = struct{}{}
		}
		if e.dir.patchable() {
			for c := range old {
				if _, keep := e.classes[c]; !keep {
					e.dir.removePosting(c, e)
				}
			}
			for c := range e.classes {
				if _, had := old[c]; !had {
					e.dir.insertPosting(c, e)
				}
			}
		} else {
			e.dir.touchContent()
		}
		return
	}
	old := e.attrs[name]
	if len(values) == 0 {
		delete(e.attrs, name)
	} else {
		if e.attrs == nil {
			e.attrs = make(map[string][]Value)
		}
		e.attrs[name] = append([]Value(nil), values...)
	}
	e.dir.noteValuesReplaced(e, name, old)
}

// RemoveValue removes one value from the named attribute if present.
func (e *Entry) RemoveValue(name string, v Value) {
	if name == AttrObjectClass {
		e.RemoveClass(v.String())
		return
	}
	vs := e.attrs[name]
	for i, have := range vs {
		if have.Equal(v) {
			e.attrs[name] = append(vs[:i:i], vs[i+1:]...)
			if len(e.attrs[name]) == 0 {
				delete(e.attrs, name)
			}
			e.dir.noteValueRemoved(e, name, v)
			return
		}
	}
}

// Pre returns the entry's pre-order rank in the current encoding. The
// owning directory's encoding must be current (Directory.EnsureEncoded).
func (e *Entry) Pre() int { return e.pre }

// Post returns the largest pre-order rank in the entry's subtree, so that
// d is a descendant-or-self of e iff e.pre <= d.pre <= e.post.
func (e *Entry) Post() int { return e.post }

// Depth returns the entry's depth (roots have depth 0) in the current
// encoding.
func (e *Entry) Depth() int { return e.depth }

// IsAncestorOf reports whether e is a proper ancestor of d. Both entries
// must belong to the same directory, whose encoding must be current.
func (e *Entry) IsAncestorOf(d *Entry) bool {
	return e != d && e.pre <= d.pre && d.pre <= e.post
}

// String renders the entry as "dn (class,class,...)" for diagnostics.
func (e *Entry) String() string {
	return fmt.Sprintf("%s (%s)", e.DN(), strings.Join(e.Classes(), ","))
}

// Package dirtree implements the directory data model of Section 2.1 of
// "On Bounding-Schemas for LDAP Directories" (EDBT 2000): a forest of
// directory entries, each holding a set of (attribute, value) pairs and a
// set of object classes, with the special attribute objectClass kept in
// sync with the class set (Definition 2.1).
//
// The package also provides the machinery the legality-testing algorithms
// of Sections 3 and 4 rely on: a pre/post-order interval encoding for
// constant-time ancestor/descendant tests, per-class posting lists sorted
// in document (pre-) order, and instance views (∅, Δ, D−Δ, D+Δ) over a
// single forest, used by the incremental Δ-queries of Figure 5.
package dirtree

import (
	"fmt"
	"strconv"
	"strings"
)

// Type identifies the domain of an attribute value. The paper assumes a set
// T of types with dom(t) and a typing function τ : A → T (Definition 2.1);
// Type enumerates the concrete domains this implementation supports.
type Type int

// Supported value types. TypeString is the default for attributes that have
// not been declared in a Registry, mirroring LDAP's directoryString syntax.
const (
	TypeString Type = iota // free-form UTF-8 string
	TypeInt                // signed 64-bit integer
	TypeBool               // boolean
	TypeDN                 // distinguished name reference
	TypeTel                // telephone number (string with relaxed matching)
)

var typeNames = [...]string{
	TypeString: "string",
	TypeInt:    "integer",
	TypeBool:   "boolean",
	TypeDN:     "dn",
	TypeTel:    "telephone",
}

// String returns the lowercase name of the type as used by the schema DSL.
func (t Type) String() string {
	if t < 0 || int(t) >= len(typeNames) {
		return fmt.Sprintf("type(%d)", int(t))
	}
	return typeNames[t]
}

// ParseType maps a type name from the schema DSL back to a Type.
func ParseType(s string) (Type, error) {
	for i, n := range typeNames {
		if n == s {
			return Type(i), nil
		}
	}
	return 0, fmt.Errorf("dirtree: unknown type %q", s)
}

// Value is an immutable attribute value tagged with its type. The zero
// Value is the empty string.
type Value struct {
	typ Type
	s   string
	i   int64
	b   bool
}

// String constructs a string-typed value.
func String(s string) Value { return Value{typ: TypeString, s: s} }

// Int constructs an integer-typed value.
func Int(i int64) Value { return Value{typ: TypeInt, i: i} }

// Bool constructs a boolean-typed value.
func Bool(b bool) Value { return Value{typ: TypeBool, b: b} }

// DN constructs a distinguished-name-typed value.
func DN(dn string) Value { return Value{typ: TypeDN, s: dn} }

// Tel constructs a telephone-number-typed value.
func Tel(num string) Value { return Value{typ: TypeTel, s: num} }

// Type reports the type tag of the value.
func (v Value) Type() Type { return v.typ }

// String renders the value in its LDIF text form.
func (v Value) String() string {
	switch v.typ {
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return v.s
	}
}

// Int returns the integer payload; it is zero for non-integer values.
func (v Value) Int() int64 { return v.i }

// Bool returns the boolean payload; it is false for non-boolean values.
func (v Value) Bool() bool { return v.b }

// Equal reports whether two values have the same type and payload.
func (v Value) Equal(w Value) bool { return v == w }

// Compare orders values of the same type: negative if v < w, zero if equal,
// positive if v > w. Values of different types are ordered by type tag, so
// Compare is a total order usable for sorting heterogeneous value lists.
func (v Value) Compare(w Value) int {
	if v.typ != w.typ {
		return int(v.typ) - int(w.typ)
	}
	switch v.typ {
	case TypeInt:
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		}
		return 0
	case TypeBool:
		switch {
		case !v.b && w.b:
			return -1
		case v.b && !w.b:
			return 1
		}
		return 0
	default:
		return strings.Compare(v.s, w.s)
	}
}

// ParseValue interprets a textual value according to the given type,
// inverting Value.String.
func ParseValue(t Type, text string) (Value, error) {
	switch t {
	case TypeString:
		return String(text), nil
	case TypeInt:
		i, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("dirtree: bad integer %q: %v", text, err)
		}
		return Int(i), nil
	case TypeBool:
		switch strings.ToUpper(strings.TrimSpace(text)) {
		case "TRUE", "1":
			return Bool(true), nil
		case "FALSE", "0":
			return Bool(false), nil
		}
		return Value{}, fmt.Errorf("dirtree: bad boolean %q", text)
	case TypeDN:
		return DN(text), nil
	case TypeTel:
		return Tel(text), nil
	}
	return Value{}, fmt.Errorf("dirtree: unknown type %v", t)
}

// Registry implements the typing function τ : A → T of Definition 2.1. All
// attributes live in a single namespace (Section 2.4): an attribute's type
// is independent of the object classes it appears in. Attributes that have
// not been declared default to TypeString, matching common LDAP deployments
// where undeclared attributes are treated as directory strings.
//
// A Registry may also mark attributes single-valued, implementing the
// "Numeric Restrictions" extension discussed in Section 6.1.
//
// The zero Registry is ready to use.
type Registry struct {
	types  map[string]Type
	single map[string]bool
}

// NewRegistry returns an empty attribute registry with objectClass
// pre-declared as a (multi-valued) string attribute, as the paper assumes
// (τ(objectClass) = string).
func NewRegistry() *Registry {
	r := &Registry{}
	r.Declare(AttrObjectClass, TypeString)
	return r
}

// Declare records the type of an attribute, overwriting any previous
// declaration.
func (r *Registry) Declare(attr string, t Type) {
	if r.types == nil {
		r.types = make(map[string]Type)
	}
	r.types[attr] = t
}

// DeclareSingle records the type of an attribute and marks it
// single-valued: a legal entry may carry at most one value for it.
func (r *Registry) DeclareSingle(attr string, t Type) {
	r.Declare(attr, t)
	if r.single == nil {
		r.single = make(map[string]bool)
	}
	r.single[attr] = true
}

// Type returns the declared type of attr, or TypeString if undeclared.
func (r *Registry) Type(attr string) Type {
	if r == nil || r.types == nil {
		return TypeString
	}
	if t, ok := r.types[attr]; ok {
		return t
	}
	return TypeString
}

// Declared reports whether attr has been explicitly declared.
func (r *Registry) Declared(attr string) bool {
	if r == nil || r.types == nil {
		return false
	}
	_, ok := r.types[attr]
	return ok
}

// SingleValued reports whether attr was declared single-valued.
func (r *Registry) SingleValued(attr string) bool {
	return r != nil && r.single != nil && r.single[attr]
}

// Attrs returns the declared attribute names in unspecified order.
func (r *Registry) Attrs() []string {
	if r == nil {
		return nil
	}
	out := make([]string, 0, len(r.types))
	for a := range r.types {
		out = append(out, a)
	}
	return out
}

// CheckValue verifies that v is in dom(τ(attr)), condition 3(a) of
// Definition 2.1.
func (r *Registry) CheckValue(attr string, v Value) error {
	want := r.Type(attr)
	if v.Type() != want {
		return fmt.Errorf("dirtree: attribute %s requires %v value, got %v", attr, want, v.Type())
	}
	return nil
}

package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"time"

	"boundschema/internal/ldif"
	"boundschema/internal/txn"
)

// This file is the durable-commit path. The contract the protocol
// documents is: OK after COMMIT means the transaction is applied AND
// recorded in the journal (write + fsync) when journaling is on. A failed
// journal write therefore fails the COMMIT: the in-memory directory is
// rolled back and ERR is returned, so the client's view of durability
// never diverges from the disk. If the journal itself cannot be restored
// to a consistent prefix (or the rollback fails), the server degrades to
// read-only rather than serve state it cannot re-create after a restart.
//
// Long-lived servers compact with snapshot rotation: once the journal
// exceeds the configured threshold, the instance is written to
// <journal>.snapshot and the journal truncated. OpenJournal loads the
// snapshot (when present) before replaying the journal, so replay cost is
// bounded by the rotation threshold instead of the server's lifetime.

// journalFile is the subset of *os.File the journal needs; tests inject
// failing implementations to exercise the non-durable-commit paths.
type journalFile interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// journal is the commit log of a running server. In per-transaction mode
// it is mutated only under the server's write lock; in group-commit mode
// (the default) all file I/O and size accounting belong to the committer
// goroutine (see groupcommit.go), which takes the write lock only for
// failure rollback and rotation.
type journal struct {
	path     string
	snapPath string
	f        journalFile
	size     int64 // bytes currently in the live journal file
	failed   bool  // the on-disk journal can no longer be trusted
}

// countingWriter counts bytes that actually reached the underlying
// writer, so a failed append can be truncated back to a record boundary.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// commitMarker terminates each transaction's change records in the
// journal. It is an LDIF comment, so generic LDIF tooling (and our own
// Reader) ignores it; replay uses it to re-group records into the
// transactions that were actually committed, because a multi-record
// transaction may only be legal atomically (ADD an orgGroup and its
// first person together). The marker is written in the same journal
// append as the records and fsynced before the COMMIT answers OK, so
// on restart an unterminated tail is exactly an unacknowledged torn
// write — safe to discard.
const commitMarker = "# commit\n"

// OpenJournal prepares the durable state at path: it loads the compacted
// snapshot <path>.snapshot when one exists (replacing the initial
// instance), replays any committed transactions recorded in path on top,
// then appends every future successful COMMIT to it as LDIF change
// records — so a restart with the same arguments reproduces the state.
func (s *Server) OpenJournal(path string) error {
	snapPath := path + ".snapshot"
	if f, err := os.Open(snapPath); err == nil {
		d, rerr := ldif.ReadDirectory(f, s.schema.Registry)
		f.Close()
		if rerr != nil {
			return fmt.Errorf("server: snapshot %s: %v", snapPath, rerr)
		}
		if r := s.checker.Check(d); !r.Legal() {
			return fmt.Errorf("server: snapshot %s is illegal:\n%s", snapPath, r)
		}
		s.mu.Lock()
		s.dir = d
		s.dir.EnsureEncoded()
		s.applier.Counts = txn.NewCountIndex(d)
		s.mu.Unlock()
	} else if !os.IsNotExist(err) {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	torn := 0
	if len(data) > 0 {
		var txns [][]*ldif.Record
		if !bytes.Contains(data, []byte(commitMarker)) {
			// Legacy journal (no markers): every record was committed
			// on its own, so replay one transaction per record.
			recs, rerr := ldif.NewReader(bytes.NewReader(data)).ReadAll()
			if rerr != nil {
				return fmt.Errorf("server: journal %s: %v", path, rerr)
			}
			for _, rec := range recs {
				txns = append(txns, []*ldif.Record{rec})
			}
		} else {
			// Marker-terminated journal: records between markers are one
			// atomic transaction. Bytes after the last marker were never
			// acknowledged (the marker lands before the fsync that
			// precedes OK), so a torn tail is discarded, not replayed.
			valid := data
			if idx := bytes.LastIndex(data, []byte(commitMarker)); idx >= 0 {
				valid = data[:idx+len(commitMarker)]
				torn = len(data) - len(valid)
			}
			for _, seg := range bytes.Split(valid, []byte(commitMarker)) {
				if len(bytes.TrimSpace(seg)) == 0 {
					continue
				}
				recs, rerr := ldif.NewReader(bytes.NewReader(seg)).ReadAll()
				if rerr != nil {
					return fmt.Errorf("server: journal %s: %v", path, rerr)
				}
				txns = append(txns, recs)
			}
		}
		for _, recs := range txns {
			tx, terr := txn.FromRecords(recs, s.schema.Registry)
			if terr != nil {
				return fmt.Errorf("server: journal %s: %v", path, terr)
			}
			s.mu.Lock()
			report, aerr := s.applier.Apply(s.dir, tx)
			s.dir.EnsureEncoded() // keep readers free of the lazy re-encode
			s.mu.Unlock()
			if aerr != nil {
				return fmt.Errorf("server: journal %s replay: %v", path, aerr)
			}
			if !report.Legal() {
				return fmt.Errorf("server: journal %s replay rejected:\n%s", path, report)
			}
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	size := int64(len(data))
	if torn > 0 {
		// Drop the unacknowledged tail so future appends extend a clean
		// prefix of committed transactions.
		size -= int64(torn)
		if terr := f.Truncate(size); terr != nil {
			f.Close()
			return fmt.Errorf("server: journal %s: truncating torn tail: %v", path, terr)
		}
		s.logf("journal %s: discarded %d bytes of unacknowledged torn tail", path, torn)
	}
	s.journal = &journal{path: path, snapPath: snapPath, f: f, size: size}
	s.metrics.JournalBytes.Store(size)
	if s.groupCommit {
		s.startCommitter()
	}
	return nil
}

// syncJournal fsyncs the journal file, first honouring the artificial
// SetSyncDelay slow-disk knob. Called under s.mu in per-transaction mode
// and from the committer goroutine in group-commit mode.
func (s *Server) syncJournal() error {
	if d := s.syncDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return s.journal.f.Sync()
}

// appendCommit durably records a committed transaction (write + fsync).
// The per-transaction path, used when group commit is off; called with
// s.mu held. On failure it truncates any torn record so the on-disk
// journal stays an exact prefix of acknowledged commits; if even that
// fails, the server degrades to read-only.
func (s *Server) appendCommit(tx *txn.Transaction) error {
	j := s.journal
	cw := &countingWriter{w: j.f}
	err := tx.WriteChanges(cw)
	if err == nil {
		_, err = cw.Write([]byte(commitMarker))
	}
	if err == nil {
		err = s.syncJournal()
	}
	if err != nil {
		s.metrics.JournalErrors.Add(1)
		if terr := j.f.Truncate(j.size); terr != nil {
			j.failed = true
			s.readOnly = fmt.Sprintf("journal %s unrecoverable after failed write (%v; truncate: %v)", j.path, err, terr)
			s.logf("journal: %s", s.readOnly)
		}
		return err
	}
	j.size += cw.n
	s.metrics.JournalBytes.Store(j.size)
	s.metrics.noteBatch(1) // per-transaction mode: every fsync carries one commit
	if s.rotateBytes > 0 && j.size >= s.rotateBytes {
		if rerr := s.rotateJournal(); rerr != nil {
			// The journal is still a complete log; rotation simply retries
			// after the next commit.
			s.metrics.JournalErrors.Add(1)
			s.logf("journal rotation: %v", rerr)
		}
	}
	return nil
}

// rotateJournal compacts the durable state: the current instance is
// written to the snapshot sidecar (write + fsync + atomic rename) and the
// journal truncated to empty. Called with s.mu held.
//
// Crash window: a crash exactly between the snapshot rename and the
// journal truncate leaves the journal holding transactions the snapshot
// already contains. Replay then fails loudly in OpenJournal (re-adding an
// existing entry is an error) instead of silently serving a corrupted
// instance; the operator recovers by clearing the journal.
func (s *Server) rotateJournal() error {
	j := s.journal
	tmp := j.snapPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	err = ldif.WriteDirectory(w, s.dir)
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, j.snapPath)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := j.f.Truncate(0); err != nil {
		// The snapshot and the journal now overlap; refuse further writes.
		j.failed = true
		s.readOnly = fmt.Sprintf("journal %s not truncated after snapshot (%v)", j.path, err)
		s.logf("journal: %s", s.readOnly)
		return err
	}
	_ = j.f.Sync()
	j.size = 0
	s.metrics.JournalBytes.Store(0)
	s.metrics.JournalRotations.Add(1)
	return nil
}

package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"time"

	"boundschema/internal/ldif"
	"boundschema/internal/repl"
	"boundschema/internal/txn"
	"boundschema/internal/vfs"
)

// This file is the durable-commit path. The contract the protocol
// documents is: OK after COMMIT means the transaction is applied AND
// recorded in the journal (write + fsync) when journaling is on. A failed
// journal write therefore fails the COMMIT: the in-memory directory is
// rolled back and ERR is returned, so the client's view of durability
// never diverges from the disk. If the journal itself cannot be restored
// to a consistent prefix (or the rollback fails), the server degrades to
// read-only rather than serve state it cannot re-create after a restart.
//
// Every record carries a checksummed, sequence-numbered marker (see
// recover.go for the format and the recovery pipeline that validates
// it). All file I/O goes through the server's vfs.FS so tests can crash
// the "disk" at any operation and replay recovery.
//
// Long-lived servers compact with snapshot rotation: once the journal
// exceeds the configured threshold, the instance is written to
// <journal>.snapshot and the journal truncated. Recovery loads the
// snapshot (when present) before replaying the journal, so replay cost is
// bounded by the rotation threshold instead of the server's lifetime.

// journalFile is the subset of vfs.File the journal needs; tests inject
// failing implementations to exercise the non-durable-commit paths.
type journalFile interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// journal is the commit log of a running server. In per-transaction mode
// it is mutated only under the server's write lock; in group-commit mode
// (the default) all file I/O and size accounting belong to the committer
// goroutine (see groupcommit.go), which takes the write lock only for
// failure rollback and rotation.
type journal struct {
	path     string
	snapPath string
	f        journalFile
	size     int64 // bytes currently in the live journal file
	failed   bool  // the on-disk journal can no longer be trusted
}

// countingWriter counts bytes that actually reached the underlying
// writer, so a failed append can be truncated back to a record boundary.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// OpenJournal prepares the durable state at path by running the full
// recovery pipeline (recover.go): load the compacted snapshot
// <path>.snapshot when one exists, scan the journal validating record
// checksums and sequence continuity, truncate a torn tail, quarantine
// corruption (refusing to serve), replay the committed transactions, and
// prove the recovered instance legal before accepting connections. Every
// future successful COMMIT is then appended as checksummed LDIF change
// records — so a restart with the same arguments reproduces the state.
func (s *Server) OpenJournal(path string) error {
	rep, err := s.recoverJournal(path)
	s.metrics.noteRecovery(rep)
	if err != nil {
		return err
	}
	if s.groupCommit {
		s.startCommitter()
	}
	return nil
}

// Rotate compacts the open journal into its snapshot immediately — the
// programmatic equivalent of the SNAPSHOT protocol command.
func (s *Server) Rotate() error {
	s.mu.Lock()
	if s.journal == nil {
		s.mu.Unlock()
		return fmt.Errorf("no journal configured")
	}
	if s.readOnly != "" {
		reason := s.readOnly
		s.mu.Unlock()
		return fmt.Errorf("server is read-only: %s", reason)
	}
	c := s.committer
	if c == nil {
		err := s.rotateJournal()
		s.mu.Unlock()
		return err
	}
	done := c.requestQuiesce(s.rotateJournal)
	s.mu.Unlock()
	return <-done
}

// syncJournal fsyncs the journal file, first honouring the artificial
// SetSyncDelay slow-disk knob. Called under s.mu in per-transaction mode
// and from the committer goroutine in group-commit mode.
func (s *Server) syncJournal() error {
	if d := s.syncDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return s.journal.f.Sync()
}

// appendCommit durably records a committed transaction (write + fsync)
// under the next sequence number, returning that number, and ships the
// record to any subscribed replicas. The per-transaction path, used
// when group commit is off; called with s.mu held (which is also what
// keeps the ship order equal to the journal order). On failure it
// truncates any torn record so the on-disk journal stays an exact
// prefix of acknowledged commits (and the sequence number is not
// consumed); if even that fails, the server degrades to read-only.
func (s *Server) appendCommit(tx *txn.Transaction) (uint64, error) {
	j := s.journal
	var buf bytes.Buffer
	if err := tx.WriteChanges(&buf); err != nil {
		return 0, err // nothing reached the disk
	}
	seq := s.commitSeq + 1
	buf.WriteString(repl.MarkerLine(seq, buf.Bytes(), s.epoch.Load()))
	cw := &countingWriter{w: j.f}
	_, err := cw.Write(buf.Bytes())
	if err == nil {
		err = s.syncJournal()
	}
	if err != nil {
		s.metrics.JournalErrors.Add(1)
		if terr := j.f.Truncate(j.size); terr != nil {
			j.failed = true
			s.readOnly = fmt.Sprintf("journal %s unrecoverable after failed write (%v; truncate: %v)", j.path, err, terr)
			s.logf("journal: %s", s.readOnly)
		}
		return 0, err
	}
	s.commitSeq = seq
	j.size += cw.n
	s.metrics.JournalBytes.Store(j.size)
	s.metrics.noteBatch(1) // per-transaction mode: every fsync carries one commit
	s.shipSegment(seq, buf.Bytes())
	if s.rotateBytes > 0 && j.size >= s.rotateBytes {
		if rerr := s.rotateJournal(); rerr != nil {
			// The journal is still a complete log; rotation simply retries
			// after the next commit.
			s.metrics.JournalErrors.Add(1)
			s.logf("journal rotation: %v", rerr)
		}
	}
	return seq, nil
}

// rotateJournal compacts the durable state: the current instance is
// written to the snapshot sidecar (write + fsync + atomic rename + parent
// directory fsync — rename alone is not durable) and the journal
// truncated to empty. Called with s.mu held.
//
// The snapshot records the sequence number it compacted through in a
// "# snapshot-seq" header, so a crash anywhere in this function —
// including between the rename and the truncate — recovers cleanly:
// journal records the snapshot already contains are recognized by their
// seq numbers and skipped on replay instead of failing it.
func (s *Server) rotateJournal() error {
	j := s.journal
	tmp := j.snapPath + ".tmp"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "%s%d\n", snapshotSeqPrefix, s.commitSeq)
	if e := s.epoch.Load(); e > 0 {
		fmt.Fprintf(w, "%s%d\n", snapshotEpochPrefix, e)
	}
	err = ldif.WriteDirectory(w, s.dir)
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = s.fs.Rename(tmp, j.snapPath)
	}
	if err != nil {
		s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.SyncDir(vfs.DirOf(j.snapPath)); err != nil {
		// The rename may not survive a crash, but the journal is intact:
		// rotation simply retries later.
		return fmt.Errorf("snapshot %s: parent directory sync after rename: %v", j.snapPath, err)
	}
	if err := j.f.Truncate(0); err != nil {
		// The journal still overlaps the snapshot; that is now benign
		// (replay skips seq ≤ snapshot-seq) but the truncate failure means
		// the file cannot be trusted for future appends.
		j.failed = true
		s.readOnly = fmt.Sprintf("journal %s not truncated after snapshot (%v)", j.path, err)
		s.logf("journal: %s", s.readOnly)
		return err
	}
	_ = j.f.Sync()
	j.size = 0
	s.metrics.JournalBytes.Store(0)
	s.metrics.JournalRotations.Add(1)
	return nil
}

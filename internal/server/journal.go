package server

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"boundschema/internal/ldif"
	"boundschema/internal/txn"
)

// This file is the durable-commit path. The contract the protocol
// documents is: OK after COMMIT means the transaction is applied AND
// recorded in the journal (write + fsync) when journaling is on. A failed
// journal write therefore fails the COMMIT: the in-memory directory is
// rolled back and ERR is returned, so the client's view of durability
// never diverges from the disk. If the journal itself cannot be restored
// to a consistent prefix (or the rollback fails), the server degrades to
// read-only rather than serve state it cannot re-create after a restart.
//
// Long-lived servers compact with snapshot rotation: once the journal
// exceeds the configured threshold, the instance is written to
// <journal>.snapshot and the journal truncated. OpenJournal loads the
// snapshot (when present) before replaying the journal, so replay cost is
// bounded by the rotation threshold instead of the server's lifetime.

// journalFile is the subset of *os.File the journal needs; tests inject
// failing implementations to exercise the non-durable-commit paths.
type journalFile interface {
	io.Writer
	Sync() error
	Truncate(size int64) error
	Close() error
}

// journal is the commit log of a running server. Mutated only under the
// server's write lock.
type journal struct {
	path     string
	snapPath string
	f        journalFile
	size     int64 // bytes currently in the live journal file
	failed   bool  // the on-disk journal can no longer be trusted
}

// countingWriter counts bytes that actually reached the underlying
// writer, so a failed append can be truncated back to a record boundary.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// OpenJournal prepares the durable state at path: it loads the compacted
// snapshot <path>.snapshot when one exists (replacing the initial
// instance), replays any committed transactions recorded in path on top,
// then appends every future successful COMMIT to it as LDIF change
// records — so a restart with the same arguments reproduces the state.
func (s *Server) OpenJournal(path string) error {
	snapPath := path + ".snapshot"
	if f, err := os.Open(snapPath); err == nil {
		d, rerr := ldif.ReadDirectory(f, s.schema.Registry)
		f.Close()
		if rerr != nil {
			return fmt.Errorf("server: snapshot %s: %v", snapPath, rerr)
		}
		if r := s.checker.Check(d); !r.Legal() {
			return fmt.Errorf("server: snapshot %s is illegal:\n%s", snapPath, r)
		}
		s.mu.Lock()
		s.dir = d
		s.dir.EnsureEncoded()
		s.applier.Counts = txn.NewCountIndex(d)
		s.mu.Unlock()
	} else if !os.IsNotExist(err) {
		return err
	}
	if f, err := os.Open(path); err == nil {
		recs, rerr := ldif.NewReader(f).ReadAll()
		f.Close()
		if rerr != nil {
			return fmt.Errorf("server: journal %s: %v", path, rerr)
		}
		// Each record was committed individually; replay one at a time
		// so a partial trailing transaction cannot poison the rest.
		for _, rec := range recs {
			tx, terr := txn.FromRecords([]*ldif.Record{rec}, s.schema.Registry)
			if terr != nil {
				return fmt.Errorf("server: journal %s: %v", path, terr)
			}
			s.mu.Lock()
			report, aerr := s.applier.Apply(s.dir, tx)
			s.dir.EnsureEncoded() // keep readers free of the lazy re-encode
			s.mu.Unlock()
			if aerr != nil {
				return fmt.Errorf("server: journal %s replay: %v", path, aerr)
			}
			if !report.Legal() {
				return fmt.Errorf("server: journal %s replay rejected:\n%s", path, report)
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	size := int64(0)
	if st, serr := f.Stat(); serr == nil {
		size = st.Size()
	}
	s.journal = &journal{path: path, snapPath: snapPath, f: f, size: size}
	s.metrics.JournalBytes.Store(size)
	return nil
}

// appendCommit durably records a committed transaction (write + fsync).
// Called with s.mu held. On failure it truncates any torn record so the
// on-disk journal stays an exact prefix of acknowledged commits; if even
// that fails, the server degrades to read-only.
func (s *Server) appendCommit(tx *txn.Transaction) error {
	j := s.journal
	cw := &countingWriter{w: j.f}
	err := tx.WriteChanges(cw)
	if err == nil {
		err = j.f.Sync()
	}
	if err != nil {
		s.metrics.JournalErrors.Add(1)
		if terr := j.f.Truncate(j.size); terr != nil {
			j.failed = true
			s.readOnly = fmt.Sprintf("journal %s unrecoverable after failed write (%v; truncate: %v)", j.path, err, terr)
			s.logf("journal: %s", s.readOnly)
		}
		return err
	}
	j.size += cw.n
	s.metrics.JournalBytes.Store(j.size)
	if s.rotateBytes > 0 && j.size >= s.rotateBytes {
		if rerr := s.rotateJournal(); rerr != nil {
			// The journal is still a complete log; rotation simply retries
			// after the next commit.
			s.metrics.JournalErrors.Add(1)
			s.logf("journal rotation: %v", rerr)
		}
	}
	return nil
}

// rotateJournal compacts the durable state: the current instance is
// written to the snapshot sidecar (write + fsync + atomic rename) and the
// journal truncated to empty. Called with s.mu held.
//
// Crash window: a crash exactly between the snapshot rename and the
// journal truncate leaves the journal holding transactions the snapshot
// already contains. Replay then fails loudly in OpenJournal (re-adding an
// existing entry is an error) instead of silently serving a corrupted
// instance; the operator recovers by clearing the journal.
func (s *Server) rotateJournal() error {
	j := s.journal
	tmp := j.snapPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	err = ldif.WriteDirectory(w, s.dir)
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, j.snapPath)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := j.f.Truncate(0); err != nil {
		// The snapshot and the journal now overlap; refuse further writes.
		j.failed = true
		s.readOnly = fmt.Sprintf("journal %s not truncated after snapshot (%v)", j.path, err)
		s.logf("journal: %s", s.readOnly)
		return err
	}
	_ = j.f.Sync()
	j.size = 0
	s.metrics.JournalBytes.Store(0)
	s.metrics.JournalRotations.Add(1)
	return nil
}

// Package server implements a small directory server that enforces a
// bounding-schema on every update — the deployment the paper targets: an
// LDAP-style store whose instances stay legal by construction.
//
// The protocol is line-oriented text over TCP (LDAP's ASN.1 framing is
// out of scope; the operations mirror LDAP's):
//
//	SEARCH <filter> [base=<dn>] [limit=N]
//	                                matching DNs, one per line, at most N
//	                                with limit=N (default unlimited). The
//	                                base DN is everything after "base="
//	                                up to the optional trailing limit
//	                                token — DNs may contain spaces. The
//	                                filter runs through the cost-based
//	                                hquery planner: typed atoms are
//	                                answered from the attribute-value
//	                                indexes when cheaper than a scan.
//	QUERY <hierarchical query>      DNs matched by an hquery expression
//	GET <dn>                        the entry as LDIF attribute lines
//	BEGIN ... ADD/DELETE/MOVE ... COMMIT an update transaction (LDIF-ish;
//	                                MOVE <dn> -> <dest> relocates a
//	                                subtree, "MOVE <dn> ->" to the root)
//	CHECK                           full legality report
//	CONSISTENT                      schema consistency verdict
//	SCHEMA                          the schema in the definition language
//	STAT                            entry and class counts
//	METRICS                         counters, latency histograms, gauges
//	SNAPSHOT                        force journal compaction
//	VERIFY                          re-scan the journal checksums and run
//	                                the full legality check, online
//	QUIT
//
// Every response is terminated by a line reading "OK", "ILLEGAL" or
// "ERR <message>". Transactions are applied atomically with the Figure 5
// incremental checks; a violating COMMIT leaves the directory unchanged
// and reports the violations.
//
// Durability: when a journal is configured, OK after COMMIT means the
// transaction was applied AND recorded in the journal (write + fsync). A
// failed journal write rolls the directory back and replies ERR; see
// journal.go for the read-only degradation and rotation rules, and
// groupcommit.go for the batched fsync pipeline (default on) that keeps
// the contract while coalescing concurrent commits into one sync.
package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/filter"
	"boundschema/internal/hquery"
	"boundschema/internal/ldif"
	"boundschema/internal/repl"
	"boundschema/internal/schemadsl"
	"boundschema/internal/txn"
	"boundschema/internal/vfs"
)

// maxLineBytes caps one protocol line; longer lines fail the session with
// "ERR line too long" instead of silently dropping it.
const maxLineBytes = 1024 * 1024

// maxAcceptBackoff caps the exponential backoff acceptLoop applies after
// transient Accept errors (e.g. EMFILE), mirroring net/http.Server.Serve.
const maxAcceptBackoff = time.Second

// Limits configures the connection lifecycle. The zero value means "no
// limits" (and a 1 s default drain on Close). Set before Listen.
type Limits struct {
	// ReadTimeout bounds a single read syscall, guarding against peers
	// that trickle bytes forever without completing a line. 0 = none.
	ReadTimeout time.Duration
	// IdleTimeout bounds the wait for the next protocol line; an idle
	// session is cut with "ERR idle timeout". 0 = none.
	IdleTimeout time.Duration
	// MaxConns caps concurrently served sessions. When at capacity the
	// accept loop blocks (backpressure: further clients queue in the
	// listen backlog) instead of spawning unbounded sessions. 0 = no cap.
	MaxConns int
	// DrainTimeout is the grace Close gives in-flight sessions before
	// force-closing their connections. 0 = 1 s default.
	DrainTimeout time.Duration
}

// Server serves one directory instance guarded by one bounding-schema.
type Server struct {
	schema  *core.Schema
	name    string
	applier *txn.Applier
	// replApplier applies replicated segments without re-proving
	// legality (txn.NewTrustedApplier): the primary proved them before
	// acknowledging. Promote reindexes s.applier before the first write.
	replApplier *txn.Applier
	checker     *core.Checker

	// mu guards dir, journal state and readOnly. Writers (COMMIT, journal
	// replay) mutate under the write lock and must leave the interval
	// encoding current before unlocking, so reader sessions under the read
	// lock never trigger the lazy re-encode — the read paths are only
	// concurrency-safe while dirtree's Directory.Encoded() holds.
	mu  sync.RWMutex
	dir *dirtree.Directory

	ln        net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once

	limits  Limits
	sem     chan struct{} // MaxConns slots; nil when uncapped
	connsMu sync.Mutex
	conns   map[net.Conn]struct{}

	metrics  *Metrics
	errorLog *log.Logger

	// fs is the file system behind every durability path (journal,
	// snapshot, quarantine). vfs.OS{} in production; tests swap in a
	// vfs.Fault to script crashes and I/O faults.
	fs vfs.FS

	journal     *journal // nil when journaling is off
	rotateBytes int64    // journal rotation threshold; 0 = never
	readOnly    string   // non-empty reason = refuse COMMIT/SNAPSHOT

	// Group commit (see groupcommit.go). groupCommit/commitDelay are
	// configuration read before OpenJournal; committer is non-nil while
	// the pipeline runs; commitSeq orders records (assigned under mu).
	groupCommit bool
	commitDelay time.Duration
	committer   *committer
	commitSeq   uint64
	// syncDelay artificially slows every journal fsync — a test and
	// benchmark knob emulating a slow disk (see bsbench e16).
	syncDelay atomic.Int64 // nanoseconds

	// Replication (see repl.go). role flips from primary (the zero
	// value) to replica in StartReplica and back in Promote. replHub is
	// non-nil once ListenRepl started the primary's fan-out; replMode
	// and replAckTO configure it. primaryAddr, promoteCh, replicaDone
	// and replConn belong to a replica's streaming loop; primarySeq and
	// replApplied feed the lag gauge.
	role        atomic.Int32
	replHub     atomic.Pointer[repl.Hub]
	replLn      net.Listener
	replMode    repl.Mode
	replAckTO   time.Duration
	primaryAddr string
	// primaryClientAddr is the primary's CLIENT protocol address, when
	// known. primaryAddr is the replication listener a replica streams
	// from — advertising it to redirected writers would point them at a
	// port that does not speak the client protocol (found by the load
	// harness following redirects during failover).
	primaryClientAddr atomic.Pointer[string]
	promoteMu         sync.Mutex
	promoteCh         chan struct{}
	replicaDone       chan struct{}
	replConnMu        sync.Mutex
	replConn          net.Conn
	primarySeq        atomic.Uint64
	replApplied       atomic.Int64

	// epoch is the replication epoch this node last adopted: 1 from New,
	// recovered from the journal/snapshot headers by OpenJournal, bumped
	// (and persisted via rotation) by Promote, adopted from the wire by a
	// bootstrap. A primary that observes a higher epoch fences itself
	// read-only (see fence in repl.go).
	epoch atomic.Uint64

	// shardName/shardRoots label this node as one shard of a routed
	// deployment (cmd/bsrouter): STAT and METRICS report them so an
	// operator inspecting a node can tell which subtrees it owns. Purely
	// informational — the server enforces nothing about the roots.
	shardName  string
	shardRoots []string

	// dialer replaces net.DialTimeout for the replica's connection to
	// the primary; replListenWrap wraps the replication listener. Both
	// exist so tests can thread internal/netfault through the transport.
	// Set before StartReplica / ListenRepl; nil means the real network.
	dialer         func(addr string, timeout time.Duration) (net.Conn, error)
	replListenWrap func(net.Listener) net.Listener
}

// New creates a server over the given schema and initial instance. The
// instance must be legal; New refuses otherwise so the invariant "the
// served directory is always legal" holds from the start.
func New(schema *core.Schema, name string, dir *dirtree.Directory) (*Server, error) {
	checker := core.NewChecker(schema)
	if r := checker.Check(dir); !r.Legal() {
		return nil, fmt.Errorf("server: initial instance is illegal:\n%s", r)
	}
	applier := txn.NewApplier(schema)
	applier.Counts = txn.NewCountIndex(dir)
	applier.NarrowDeletes = true
	// Without the key index the Section 6.1 uniqueness checks only run
	// under a full Check: concurrent commits could then slip duplicate
	// key values past the incremental path and corrupt the served
	// instance until VERIFY noticed (found by the load harness driving
	// the netpolicy schema's ipAddress key at scale).
	if len(schema.Keys()) > 0 {
		applier.Keys = core.NewKeyIndex(schema, dir)
	}
	s := &Server{
		schema:      schema,
		name:        name,
		applier:     applier,
		replApplier: txn.NewTrustedApplier(schema),
		checker:     checker,
		dir:         dir,
		closed:      make(chan struct{}),
		conns:       make(map[net.Conn]struct{}),
		metrics:     newMetrics(),
		fs:          vfs.OS{},
		groupCommit: true,
	}
	checker.OnTiming = s.metrics.noteCheckTiming
	s.epoch.Store(1)
	return s, nil
}

// Epoch returns the replication epoch this node is currently at.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// SetDialer replaces the dialer the replica loop uses to reach the
// primary — the hook tests use to thread a netfault.Fault through the
// replication transport. Call before StartReplica; nil restores the
// real network.
func (s *Server) SetDialer(d func(addr string, timeout time.Duration) (net.Conn, error)) {
	s.dialer = d
}

// SetReplListenerWrap wraps the replication listener (and so every
// accepted replica connection). Call before ListenRepl.
func (s *Server) SetReplListenerWrap(w func(net.Listener) net.Listener) {
	s.replListenWrap = w
}

// reindex rebuilds the applier's incremental indexes over a freshly
// installed directory — journal recovery and replica bootstrap swap
// s.dir wholesale, and a stale count or key index would validate
// commits against an instance that no longer exists. Callers hold s.mu.
func (s *Server) reindex(d *dirtree.Directory) {
	s.applier.Counts = txn.NewCountIndex(d)
	if len(s.schema.Keys()) > 0 {
		s.applier.Keys = core.NewKeyIndex(s.schema, d)
	}
}

// SetShardInfo labels this node as the named shard of a routed
// deployment owning the given subtree roots. STAT gains "shard:" and
// "shard root:" lines and METRICS a shard line. Call before Listen.
func (s *Server) SetShardInfo(name string, roots []string) {
	s.shardName = name
	s.shardRoots = append([]string(nil), roots...)
}

// SetConcurrency selects the legality checker's worker count for CHECK
// (see core.Checker.Concurrency: 0 = GOMAXPROCS auto, 1 = sequential).
// Call it before Listen; the checker is shared by all sessions.
func (s *Server) SetConcurrency(n int) { s.checker.Concurrency = n }

// SetLimits installs the connection lifecycle limits. Call before Listen.
func (s *Server) SetLimits(l Limits) {
	s.limits = l
	if l.MaxConns > 0 {
		s.sem = make(chan struct{}, l.MaxConns)
	} else {
		s.sem = nil
	}
}

// SetErrorLog installs a logger for operational events (accept retries,
// session read errors, journal degradation). nil (the default) discards.
func (s *Server) SetErrorLog(l *log.Logger) { s.errorLog = l }

// SetJournalRotation sets the journal size threshold in bytes beyond
// which a successful COMMIT triggers compaction (snapshot + truncate; see
// journal.go). 0 disables rotation. Call before OpenJournal.
func (s *Server) SetJournalRotation(bytes int64) { s.rotateBytes = bytes }

// SetFS replaces the file system behind the durability paths (default
// vfs.OS{}). Tests install a vfs.Fault to inject crashes, torn writes
// and corruption. Call before OpenJournal.
func (s *Server) SetFS(fs vfs.FS) { s.fs = fs }

// SetGroupCommit selects the durable-commit strategy (default on):
// batched group commit — one fsync per batch of concurrent COMMITs,
// performed off the write lock by a committer goroutine — versus the
// per-transaction write+fsync under the lock. Call before OpenJournal.
func (s *Server) SetGroupCommit(on bool) { s.groupCommit = on }

// SetCommitDelay widens the group-commit batching window: after waking
// for a batch, the committer waits this long for more commits to join
// before syncing. 0 (the default) batches only what accumulates while
// the previous fsync is in flight. Call before OpenJournal.
func (s *Server) SetCommitDelay(d time.Duration) { s.commitDelay = d }

// SetSyncDelay makes every journal fsync sleep this long first — an
// artificial slow disk for tests and the bsbench e16 experiment. Safe to
// change while serving.
func (s *Server) SetSyncDelay(d time.Duration) { s.syncDelay.Store(int64(d)) }

// MetricsSnapshot returns a JSON-marshalable snapshot of the server's
// metrics, shaped for expvar.Publish(expvar.Func(srv.MetricsSnapshot)).
func (s *Server) MetricsSnapshot() any {
	rs := s.replMetrics()
	s.mu.RLock()
	journalOn := s.journal != nil
	readOnly := s.readOnly
	s.mu.RUnlock()
	return s.metrics.snapshot(journalOn, readOnly, rs)
}

// JournalStats reports the durability amortization counters: fsyncs the
// journal performed, commits those fsyncs made durable, and the largest
// single batch. commits/fsyncs is the group-commit win; per-transaction
// mode pins it at 1. Used by the bsbench e16 experiment.
func (s *Server) JournalStats() (fsyncs, commits, maxBatch int64) {
	return s.metrics.Fsyncs(), s.metrics.BatchedCommits(), s.metrics.batchSizes.maxUS.Load()
}

func (s *Server) logf(format string, args ...any) {
	if s.errorLog != nil {
		s.errorLog.Printf(format, args...)
	}
}

func (s *Server) drainTimeout() time.Duration {
	if s.limits.DrainTimeout > 0 {
		return s.limits.DrainTimeout
	}
	return time.Second
}

// Listen starts accepting connections on addr ("127.0.0.1:0" picks a
// free port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener and drains in-flight sessions: each gets up to
// DrainTimeout to finish its current line, then remaining connections are
// force-closed. Always returns within roughly DrainTimeout.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { close(s.closed) })
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	// Tear replication down before the drain: the hub releases any
	// semi-sync gates and closes replica connections (whose handler
	// goroutines are in s.wg), and a replica's streaming loop stops.
	s.stopReplication()
	drain := s.drainTimeout()
	deadline := time.Now().Add(drain)
	s.connsMu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(deadline)
	}
	s.connsMu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(drain + 100*time.Millisecond):
		// Backstop for sessions that re-armed their own deadline in the
		// race with the loop above: closing the conn unblocks any read.
		s.connsMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connsMu.Unlock()
		<-done
	}
	s.mu.Lock()
	j := s.journal
	c := s.committer
	s.mu.Unlock()
	if c != nil {
		// Sessions have drained, so nothing new can stage; the committer
		// flushes any leftover batch before dying, keeping the "OK means
		// on disk" ledger complete through shutdown.
		c.stop()
	}
	if j != nil {
		if jerr := j.f.Close(); err == nil {
			err = jerr
		}
	}
	return err
}

// nextAcceptDelay implements capped exponential backoff for transient
// Accept errors, as in net/http.Server.Serve: 5ms doubling up to 1s.
func nextAcceptDelay(d time.Duration) time.Duration {
	if d == 0 {
		return 5 * time.Millisecond
	}
	d *= 2
	if d > maxAcceptBackoff {
		d = maxAcceptBackoff
	}
	return d
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	var delay time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			// Transient failure (e.g. EMFILE): back off instead of
			// busy-looping on a hot error.
			delay = nextAcceptDelay(delay)
			s.metrics.AcceptRetries.Add(1)
			s.logf("server: accept: %v; retrying in %v", err, delay)
			select {
			case <-time.After(delay):
			case <-s.closed:
				return
			}
			continue
		}
		delay = 0
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
			default:
				// At MaxConns: hold this accepted conn until a session
				// ends. Further clients queue in the kernel backlog — the
				// limit backpressures instead of shedding.
				s.metrics.ConnsThrottled.Add(1)
				select {
				case s.sem <- struct{}{}:
				case <-s.closed:
					conn.Close()
					return
				}
			}
		}
		s.metrics.ConnsTotal.Add(1)
		s.metrics.ConnsActive.Add(1)
		s.connsMu.Lock()
		s.conns[conn] = struct{}{}
		s.connsMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.connsMu.Lock()
				delete(s.conns, conn)
				s.connsMu.Unlock()
				conn.Close()
				s.metrics.ConnsActive.Add(-1)
				if s.sem != nil {
					<-s.sem
				}
			}()
			s.serve(conn)
		}()
	}
}

// deadlineConn arms the configured read deadlines around every Read:
// ReadTimeout bounds the single syscall, lineBy (set per line by the
// serve loop) is the idle deadline, and a closing server imposes the
// drain deadline. Only the session goroutine touches lineBy/armed.
type deadlineConn struct {
	net.Conn
	srv    *Server
	lineBy time.Time
	armed  bool
}

func (c *deadlineConn) Read(p []byte) (int, error) {
	var dl time.Time
	if rt := c.srv.limits.ReadTimeout; rt > 0 {
		dl = time.Now().Add(rt)
	}
	if !c.lineBy.IsZero() && (dl.IsZero() || c.lineBy.Before(dl)) {
		dl = c.lineBy
	}
	select {
	case <-c.srv.closed:
		if d := time.Now().Add(c.srv.drainTimeout()); dl.IsZero() || d.Before(dl) {
			dl = d
		}
	default:
	}
	if !dl.IsZero() || c.armed {
		c.Conn.SetReadDeadline(dl)
		c.armed = !dl.IsZero()
	}
	return c.Conn.Read(p)
}

type session struct {
	srv *Server
	w   *bufio.Writer
	tx  *txn.Transaction // non-nil inside BEGIN..COMMIT
	// cmd and term record the command label and terminator of the line
	// being handled, for the metrics layer.
	cmd  string
	term string
	// pending is the entry currently being assembled by ADD lines.
	pendingDN      string
	pendingClasses []string
	pendingAttrs   map[string][]dirtree.Value
}

func (s *Server) serve(conn net.Conn) {
	dc := &deadlineConn{Conn: conn, srv: s}
	sc := bufio.NewScanner(dc)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	sess := &session{srv: s, w: bufio.NewWriter(conn)}
	defer sess.abort() // releases the tx gauge if the session dies mid-transaction
	for {
		select {
		case <-s.closed:
			sess.err("server shutting down")
			sess.w.Flush()
			return
		default:
		}
		if it := s.limits.IdleTimeout; it > 0 {
			dc.lineBy = time.Now().Add(it)
		}
		if !sc.Scan() {
			break
		}
		line := strings.TrimRight(sc.Text(), "\r")
		start := time.Now()
		sess.cmd, sess.term = "", ""
		quit := sess.handle(line)
		if sess.cmd != "" {
			s.metrics.observeCommand(sess.cmd, time.Since(start), sess.term == "ERR")
		}
		sess.w.Flush()
		if quit {
			return
		}
	}
	// The scan stopped without a QUIT: report why instead of vanishing.
	switch err := sc.Err(); {
	case err == nil:
		// clean EOF — the client went away
	case errors.Is(err, bufio.ErrTooLong):
		s.metrics.LinesTooLong.Add(1)
		sess.err(fmt.Sprintf("line too long (max %d bytes)", maxLineBytes))
		sess.w.Flush()
		// Linger briefly to drain the rest of the oversized line, so the
		// error reply is not destroyed by a TCP reset carrying unread data
		// (the same trick net/http uses for unread request bodies).
		conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		io.Copy(io.Discard, conn)
	case isTimeout(err):
		select {
		case <-s.closed:
			// drain deadline during shutdown, not a client fault
			sess.err("server shutting down")
		default:
			s.metrics.IdleTimeouts.Add(1)
			sess.err("idle timeout")
		}
	default:
		s.metrics.ScanErrors.Add(1)
		s.logf("server: session %s: read: %v", conn.RemoteAddr(), err)
	}
	sess.w.Flush()
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (se *session) reply(lines ...string) {
	for _, l := range lines {
		se.w.WriteString(l)
		se.w.WriteByte('\n')
	}
}

func (se *session) ok() {
	se.term = "OK"
	se.reply("OK")
}

func (se *session) err(msg string) {
	se.term = "ERR"
	se.reply("ERR " + strings.ReplaceAll(msg, "\n", " | "))
}

func (se *session) illegal(r *core.Report) {
	se.term = "ILLEGAL"
	for _, v := range r.Violations {
		se.reply("# " + v.String())
	}
	se.reply("ILLEGAL")
}

// handle processes one protocol line; it returns true on QUIT.
func (se *session) handle(line string) bool {
	trimmed := strings.TrimSpace(line)
	if se.tx != nil {
		return se.handleTx(trimmed)
	}
	cmd, rest := splitCommand(trimmed)
	se.cmd = cmd
	switch cmd {
	case "":
		// ignore blank lines between commands
	case "QUIT":
		se.ok()
		return true
	case "SEARCH":
		se.search(rest)
	case "QUERY":
		se.query(rest)
	case "GET":
		se.get(rest)
	case "BEGIN":
		if hint := se.srv.writeRedirect(); hint != "" {
			se.err(hint)
			break
		}
		se.tx = &txn.Transaction{}
		se.srv.metrics.TxActive.Add(1)
		se.ok()
	case "CHECK":
		se.check()
	case "CONSISTENT":
		se.consistent()
	case "SCHEMA":
		se.reply(strings.Split(strings.TrimRight(schemadsl.Format(se.srv.schema, se.srv.name), "\n"), "\n")...)
		se.ok()
	case "STAT":
		se.stat()
	case "COUNT":
		se.count(rest)
	case "METRICS":
		se.metricsCmd()
	case "SNAPSHOT":
		se.snapshotCmd()
	case "VERIFY":
		se.verifyCmd()
	case "PROMOTE":
		se.promoteCmd()
	default:
		se.cmd = "UNKNOWN"
		se.err(fmt.Sprintf("unknown command %q", cmd))
	}
	return false
}

// handleTx processes lines inside BEGIN..COMMIT.
func (se *session) handleTx(line string) bool {
	cmd, rest := splitCommand(line)
	switch cmd {
	case "ADD":
		se.cmd = cmd
		se.flushPending()
		dn := strings.TrimSpace(rest)
		if dn == "" {
			se.err("ADD needs a DN")
			se.abort()
			return false
		}
		se.pendingDN = dn
		se.pendingClasses = nil
		se.pendingAttrs = make(map[string][]dirtree.Value)
	case "DELETE":
		se.cmd = cmd
		se.flushPending()
		se.tx.Delete(strings.TrimSpace(rest))
	case "MOVE":
		se.cmd = cmd
		se.flushPending()
		// "MOVE <dn> -> <dest>": splitting on a space would mangle any DN
		// containing one, so the protocol uses an explicit arrow separator.
		// "MOVE <dn> ->" (empty destination) moves to the forest root.
		dn, dest, ok := strings.Cut(strings.TrimSpace(rest), " -> ")
		if !ok {
			if d, rootOK := strings.CutSuffix(strings.TrimSpace(rest), " ->"); rootOK {
				dn, dest, ok = d, "", true
			}
		}
		if !ok {
			se.err(`MOVE needs "<dn> -> <dest>" ("<dn> ->" moves to the forest root)`)
			se.abort()
			return false
		}
		se.tx.Move(strings.TrimSpace(dn), strings.TrimSpace(dest))
	case "COMMIT":
		se.cmd = cmd
		se.flushPending()
		se.commit()
	case "ABORT":
		se.cmd = cmd
		se.abort()
		se.ok()
	case "":
		// blank line inside a transaction is a no-op
	default:
		// attribute line "name: value" for the pending ADD
		if se.pendingDN == "" {
			se.err(fmt.Sprintf("unexpected %q inside transaction", line))
			se.abort()
			return false
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			se.err(fmt.Sprintf("malformed attribute line %q", line))
			se.abort()
			return false
		}
		name = strings.TrimSpace(name)
		value = strings.TrimSpace(value)
		if name == dirtree.AttrObjectClass {
			se.pendingClasses = append(se.pendingClasses, value)
			return false
		}
		v, err := dirtree.ParseValue(se.srv.schema.Registry.Type(name), value)
		if err != nil {
			se.err(err.Error())
			se.abort()
			return false
		}
		se.pendingAttrs[name] = append(se.pendingAttrs[name], v)
	}
	return false
}

func (se *session) flushPending() {
	if se.pendingDN == "" {
		return
	}
	se.tx.Add(se.pendingDN, se.pendingClasses, se.pendingAttrs)
	se.pendingDN, se.pendingClasses, se.pendingAttrs = "", nil, nil
}

// abort ends the in-progress transaction and releases the TxActive
// gauge. Every way out of BEGIN..COMMIT must route here: the ABORT
// command, protocol errors inside handleTx, COMMIT (which takes the tx
// then aborts the session state), and serve's deferred call — which
// covers abrupt disconnects, read errors and idle timeouts, so the
// gauge cannot drift when a client vanishes mid-transaction. abort is
// idempotent (tx already nil) and never double-decrements.
func (se *session) abort() {
	if se.tx != nil {
		se.srv.metrics.TxActive.Add(-1)
	}
	se.tx = nil
	se.pendingDN, se.pendingClasses, se.pendingAttrs = "", nil, nil
}

func (se *session) commit() {
	tx := se.tx
	se.abort()
	report, err := se.srv.CommitTx(tx)
	if err != nil {
		se.err(err.Error())
		return
	}
	if !report.Legal() {
		se.illegal(report)
		return
	}
	se.ok()
}

// CommitTx applies tx and makes it durable — the exact path a session's
// COMMIT takes, exposed for callers that commit without a protocol
// session (the crash-matrix harness, bsbench drivers). On success the
// returned report is legal; a report with violations means the
// transaction was rejected and nothing changed; an error covers apply
// failures and "commit not durable". Metrics are updated here, so
// session and non-session commits are counted identically.
func (s *Server) CommitTx(tx *txn.Transaction) (*core.Report, error) {
	if hint := s.writeRedirect(); hint != "" {
		s.metrics.TxErrors.Add(1)
		return nil, errors.New(hint)
	}
	s.mu.Lock()
	if s.readOnly != "" {
		reason := s.readOnly
		s.mu.Unlock()
		s.metrics.TxErrors.Add(1)
		return nil, errors.New("server is read-only: " + reason)
	}
	report, undo, err := s.applier.ApplyWithUndo(s.dir, tx)
	// Re-encode before releasing the write lock: reader sessions (CHECK,
	// SEARCH, QUERY) run under the read lock and rely on the encoding
	// being current, so the lazy re-encode must never fire concurrently
	// under RLock (dirtree.Directory is read-only while Encoded).
	s.dir.EnsureEncoded()
	if err != nil || !report.Legal() {
		s.mu.Unlock()
		if err != nil {
			s.metrics.TxErrors.Add(1)
			return nil, err
		}
		s.metrics.TxIllegal.Add(1)
		s.metrics.noteViolations(report)
		return report, nil
	}
	if s.journal == nil {
		s.mu.Unlock()
		s.metrics.TxCommitted.Add(1)
		return report, nil
	}
	if s.committer == nil {
		// Per-transaction durability (group commit off): write + fsync
		// under the write lock, as the pre-batching server did.
		seq, jerr := s.appendCommit(tx)
		if jerr != nil {
			// Not durable: roll the in-memory state back so the ERR reply
			// and the journal agree that this transaction never happened.
			if uerr := undo(); uerr != nil {
				s.readOnly = fmt.Sprintf("in-memory state diverged after failed journal write: %v (rollback: %v)", jerr, uerr)
				s.logf("server: %s", s.readOnly)
			}
			s.dir.EnsureEncoded()
			s.mu.Unlock()
			s.metrics.TxErrors.Add(1)
			return nil, fmt.Errorf("commit not durable: %v", jerr)
		}
		s.mu.Unlock()
		// Semi-sync: wait for the replication contract off the lock. The
		// wait never fails a locally durable commit (repl.Hub degrades
		// to async instead), so OK is unconditional from here.
		s.replWaitDurable(seq)
		s.metrics.TxCommitted.Add(1)
		return report, nil
	}
	// Group commit: encode the journal record and assign its sequence
	// number while the apply's write lock is still held (journal order =
	// apply order), then release the lock and let the committer batch the
	// fsync. Readers and other writers proceed while the disk works.
	var buf bytes.Buffer
	if werr := tx.WriteChanges(&buf); werr != nil {
		if uerr := undo(); uerr != nil {
			s.readOnly = fmt.Sprintf("in-memory state diverged after failed journal encode: %v (rollback: %v)", werr, uerr)
			s.logf("server: %s", s.readOnly)
		}
		s.dir.EnsureEncoded()
		s.mu.Unlock()
		s.metrics.TxErrors.Add(1)
		return nil, fmt.Errorf("commit not durable: %v", werr)
	}
	seq := s.commitSeq + 1
	// The checksummed marker terminates the transaction for atomic replay;
	// it covers exactly the payload bytes written so far.
	buf.WriteString(repl.MarkerLine(seq, buf.Bytes(), s.epoch.Load()))
	s.commitSeq = seq
	req := &commitReq{seq: seq, data: buf.Bytes(), undo: undo, done: make(chan error, 1)}
	s.committer.stage(req)
	s.mu.Unlock()
	// OK only after the batch fsync: the durability contract is unchanged.
	if jerr := <-req.done; jerr != nil {
		s.metrics.TxErrors.Add(1)
		return nil, fmt.Errorf("commit not durable: %v", jerr)
	}
	s.metrics.TxCommitted.Add(1)
	return report, nil
}

const searchUsage = "(usage: SEARCH <filter> [base=<dn>] [limit=N])"

// SearchArgs is the parsed tail of a SEARCH command line. Exported so
// the shard router (internal/shard) parses routing targets — the base
// DN decides the owning shard — with exactly the server's grammar.
type SearchArgs struct {
	Filter  string // balanced-parenthesis filter text, unparsed
	Base    string // base DN; meaningful only when HasBase
	HasBase bool
	Limit   int // -1 = unlimited
}

// ParseSearchArgs splits "(filter) [base=<dn>] [limit=N]". The base DN
// is everything after "base=" — DNs contain spaces (ou=Human
// Resources,o=acme), so the tail must not be re-tokenized. The optional
// limit is the final space-separated token, peeled off before the base
// is read. Anything else trailing the filter is an error, not silently
// ignored.
func ParseSearchArgs(rest string) (SearchArgs, error) {
	a := SearchArgs{Limit: -1}
	ftext, tail, err := cutBalanced(strings.TrimSpace(rest))
	if err != nil {
		return a, err
	}
	a.Filter = ftext
	tail = strings.TrimSpace(tail)
	last := tail
	if i := strings.LastIndexByte(tail, ' '); i >= 0 {
		last = tail[i+1:]
	}
	if digits, isLimit := strings.CutPrefix(last, "limit="); isLimit {
		n, lerr := strconv.Atoi(digits)
		if lerr != nil || n < 0 || strings.TrimLeft(digits, "0123456789") != "" {
			return a, fmt.Errorf("malformed %q %s", last, searchUsage)
		}
		a.Limit = n
		tail = strings.TrimSpace(tail[:len(tail)-len(last)])
	}
	a.Base, a.HasBase = strings.CutPrefix(tail, "base=")
	if tail != "" && !a.HasBase {
		return a, fmt.Errorf("unexpected %q after filter %s", tail, searchUsage)
	}
	return a, nil
}

func (se *session) search(rest string) {
	args, err := ParseSearchArgs(rest)
	if err != nil {
		se.err(err.Error())
		return
	}
	f, err := filter.Parse(args.Filter)
	if err != nil {
		se.err(err.Error())
		return
	}
	limit := args.Limit
	se.srv.mu.RLock()
	defer se.srv.mu.RUnlock()
	view := se.srv.dir.All()
	if args.HasBase {
		e := se.srv.dir.ByDN(args.Base)
		if e == nil {
			se.err(fmt.Sprintf("base %q not found", args.Base))
			return
		}
		view = se.srv.dir.SubtreeView(e)
	}
	matches, plan := hquery.EvalSelect(f, view)
	if plan.Strategy == "scan" {
		se.srv.metrics.SearchScanned.Add(1)
	} else {
		se.srv.metrics.SearchIndexed.Add(1)
	}
	for i, e := range matches {
		if limit >= 0 && i >= limit {
			break
		}
		se.reply(e.DN())
	}
	se.ok()
}

func (se *session) query(rest string) {
	q, err := hquery.Parse(strings.TrimSpace(rest))
	if err != nil {
		se.err(err.Error())
		return
	}
	se.srv.mu.RLock()
	defer se.srv.mu.RUnlock()
	for _, e := range hquery.Eval(q, hquery.NewBinding(se.srv.dir)) {
		se.reply(e.DN())
	}
	se.ok()
}

func (se *session) get(rest string) {
	dn := strings.TrimSpace(rest)
	se.srv.mu.RLock()
	defer se.srv.mu.RUnlock()
	e := se.srv.dir.ByDN(dn)
	if e == nil {
		se.err(fmt.Sprintf("no entry %q", dn))
		return
	}
	se.reply("dn: " + e.DN())
	for _, name := range e.AttrNames() {
		for _, v := range e.Attr(name) {
			se.reply(name + ": " + v.String())
		}
	}
	se.ok()
}

func (se *session) check() {
	se.srv.mu.RLock()
	report := se.srv.checker.Check(se.srv.dir)
	se.srv.mu.RUnlock()
	if !report.Legal() {
		se.srv.metrics.noteViolations(report)
		se.illegal(report)
		return
	}
	se.ok()
}

func (se *session) consistent() {
	res := core.CheckConsistency(se.srv.schema)
	se.reply(fmt.Sprintf("consistent: %v facts: %d", res.Consistent, res.Facts))
	if res.Consistent {
		se.ok()
	} else {
		se.term = "ILLEGAL"
		se.reply("ILLEGAL")
	}
}

func (se *session) stat() {
	role := se.srv.roleString()
	se.srv.mu.RLock()
	defer se.srv.mu.RUnlock()
	se.reply("role: " + role)
	se.reply(fmt.Sprintf("epoch: %d", se.srv.epoch.Load()))
	if se.srv.shardName != "" {
		se.reply("shard: " + se.srv.shardName)
		for _, r := range se.srv.shardRoots {
			se.reply("shard root: " + r)
		}
	}
	se.reply(fmt.Sprintf("entries: %d", se.srv.dir.Len()))
	names := se.srv.dir.ClassNames()
	sort.Strings(names)
	for _, c := range names {
		se.reply(fmt.Sprintf("class %s: %d", c, se.srv.dir.ClassCount(c)))
	}
	se.ok()
}

func (se *session) metricsCmd() {
	s := se.srv
	rs := s.replMetrics()
	s.mu.RLock()
	journalOn := s.journal != nil
	readOnly := s.readOnly
	s.mu.RUnlock()
	if s.shardName != "" {
		se.reply(fmt.Sprintf("shard: name=%s roots=%d", s.shardName, len(s.shardRoots)))
	}
	se.reply(s.metrics.lines(journalOn, readOnly, rs)...)
	se.ok()
}

func (se *session) promoteCmd() {
	lines, err := se.srv.Promote()
	for _, l := range lines {
		se.reply("# " + l)
	}
	if err != nil {
		se.err(err.Error())
		return
	}
	se.reply("# promoted: now primary")
	se.ok()
}

func (se *session) snapshotCmd() {
	s := se.srv
	s.mu.Lock()
	if s.journal == nil {
		s.mu.Unlock()
		se.err("no journal configured")
		return
	}
	if s.readOnly != "" {
		reason := s.readOnly
		s.mu.Unlock()
		se.err("server is read-only: " + reason)
		return
	}
	snapPath := s.journal.snapPath
	c := s.committer
	if c == nil {
		// Per-transaction mode: the journal is only touched under the
		// write lock, so rotation can run right here.
		err := s.rotateJournal()
		s.mu.Unlock()
		if err != nil {
			se.err(err.Error())
			return
		}
		se.reply("# journal compacted to " + snapPath)
		se.ok()
		return
	}
	// Group-commit mode: all journal file I/O belongs to the committer
	// goroutine, so compaction is a request it serves at a quiescent
	// point (no staged-but-unsynced transactions). Waiting must happen
	// off the lock — the committer's failure path needs it.
	done := c.requestQuiesce(func() error {
		if s.readOnly != "" {
			return errors.New("server is read-only: " + s.readOnly)
		}
		return s.rotateJournal()
	})
	s.mu.Unlock()
	if err := <-done; err != nil {
		se.err(err.Error())
		return
	}
	se.reply("# journal compacted to " + snapPath)
	se.ok()
}

// verifyCmd is the online fsck: it re-scans the on-disk journal against
// its checksums and sequence numbers and runs the full legality checker
// over the served instance, reporting both. It needs a point where no
// journal append is in flight — the write lock excludes the
// per-transaction path, and the committer's quiesce excludes the
// group-commit pipeline.
func (se *session) verifyCmd() {
	s := se.srv
	s.mu.RLock()
	c := s.committer
	s.mu.RUnlock()
	var lines []string
	var err error
	if c == nil {
		s.mu.RLock()
		lines, err = s.verifyNow()
		s.mu.RUnlock()
	} else {
		done := c.requestQuiesce(func() error {
			var verr error
			lines, verr = s.verifyNow()
			return verr
		})
		err = <-done
	}
	for _, l := range lines {
		se.reply("# " + l)
	}
	if err != nil {
		se.err(err.Error())
		return
	}
	se.ok()
}

// cutBalanced splits off a leading balanced-parenthesis span (a filter,
// which may contain spaces) from the rest of the line.
func cutBalanced(s string) (string, string, error) {
	if s == "" || s[0] != '(' {
		return "", "", fmt.Errorf("expected a parenthesized filter")
	}
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip the escape marker
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return s[:i+1], s[i+1:], nil
			}
		}
	}
	return "", "", fmt.Errorf("unbalanced filter")
}

func splitCommand(line string) (string, string) {
	cmd, rest, _ := strings.Cut(line, " ")
	return strings.ToUpper(cmd), rest
}

// Snapshot writes the current instance as LDIF, for persistence.
func (s *Server) Snapshot(w *bufio.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return ldif.WriteDirectory(w, s.dir)
}

// Package server implements a small directory server that enforces a
// bounding-schema on every update — the deployment the paper targets: an
// LDAP-style store whose instances stay legal by construction.
//
// The protocol is line-oriented text over TCP (LDAP's ASN.1 framing is
// out of scope; the operations mirror LDAP's):
//
//	SEARCH <filter> [base=<dn>]     matching DNs, one per line
//	QUERY <hierarchical query>      DNs matched by an hquery expression
//	GET <dn>                        the entry as LDIF attribute lines
//	BEGIN ... ADD/DELETE/MOVE ... COMMIT an update transaction (LDIF-ish)
//	CHECK                           full legality report
//	CONSISTENT                      schema consistency verdict
//	SCHEMA                          the schema in the definition language
//	STAT                            entry and class counts
//	QUIT
//
// Every response is terminated by a line reading "OK", "ILLEGAL" or
// "ERR <message>". Transactions are applied atomically with the Figure 5
// incremental checks; a violating COMMIT leaves the directory unchanged
// and reports the violations.
package server

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/filter"
	"boundschema/internal/hquery"
	"boundschema/internal/ldif"
	"boundschema/internal/schemadsl"
	"boundschema/internal/txn"
)

// Server serves one directory instance guarded by one bounding-schema.
type Server struct {
	schema  *core.Schema
	name    string
	applier *txn.Applier
	checker *core.Checker

	// mu guards dir. Writers (COMMIT, journal replay) mutate under the
	// write lock and must leave the interval encoding current before
	// unlocking, so reader sessions under the read lock never trigger the
	// lazy re-encode — the read paths are only concurrency-safe while
	// dirtree's Directory.Encoded() holds.
	mu  sync.RWMutex
	dir *dirtree.Directory

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	journal *os.File // nil when journaling is off
}

// New creates a server over the given schema and initial instance. The
// instance must be legal; New refuses otherwise so the invariant "the
// served directory is always legal" holds from the start.
func New(schema *core.Schema, name string, dir *dirtree.Directory) (*Server, error) {
	checker := core.NewChecker(schema)
	if r := checker.Check(dir); !r.Legal() {
		return nil, fmt.Errorf("server: initial instance is illegal:\n%s", r)
	}
	applier := txn.NewApplier(schema)
	applier.Counts = txn.NewCountIndex(dir)
	applier.NarrowDeletes = true
	return &Server{
		schema:  schema,
		name:    name,
		applier: applier,
		checker: checker,
		dir:     dir,
		closed:  make(chan struct{}),
	}, nil
}

// SetConcurrency selects the legality checker's worker count for CHECK
// (see core.Checker.Concurrency: 0 = GOMAXPROCS auto, 1 = sequential).
// Call it before Listen; the checker is shared by all sessions.
func (s *Server) SetConcurrency(n int) { s.checker.Concurrency = n }

// OpenJournal replays any committed transactions recorded in path, then
// appends every future successful COMMIT to it as LDIF change records,
// so a restart with the same snapshot and journal reproduces the state.
func (s *Server) OpenJournal(path string) error {
	if f, err := os.Open(path); err == nil {
		recs, rerr := ldif.NewReader(f).ReadAll()
		f.Close()
		if rerr != nil {
			return fmt.Errorf("server: journal %s: %v", path, rerr)
		}
		// Each record was committed individually; replay one at a time
		// so a partial trailing transaction cannot poison the rest.
		for _, rec := range recs {
			tx, terr := txn.FromRecords([]*ldif.Record{rec}, s.schema.Registry)
			if terr != nil {
				return fmt.Errorf("server: journal %s: %v", path, terr)
			}
			s.mu.Lock()
			report, aerr := s.applier.Apply(s.dir, tx)
			s.dir.EnsureEncoded() // keep readers free of the lazy re-encode
			s.mu.Unlock()
			if aerr != nil {
				return fmt.Errorf("server: journal %s replay: %v", path, aerr)
			}
			if !report.Legal() {
				return fmt.Errorf("server: journal %s replay rejected:\n%s", path, report)
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.journal = f
	return nil
}

// Listen starts accepting connections on addr ("127.0.0.1:0" picks a
// free port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	close(s.closed)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	if s.journal != nil {
		if jerr := s.journal.Close(); err == nil {
			err = jerr
		}
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(conn)
		}()
	}
}

type session struct {
	srv *Server
	w   *bufio.Writer
	tx  *txn.Transaction // non-nil inside BEGIN..COMMIT
	// pending is the entry currently being assembled by ADD lines.
	pendingDN      string
	pendingClasses []string
	pendingAttrs   map[string][]dirtree.Value
}

func (s *Server) serve(conn net.Conn) {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	sess := &session{srv: s, w: bufio.NewWriter(conn)}
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		if quit := sess.handle(line); quit {
			break
		}
		sess.w.Flush()
	}
	sess.w.Flush()
}

func (se *session) reply(lines ...string) {
	for _, l := range lines {
		se.w.WriteString(l)
		se.w.WriteByte('\n')
	}
}

func (se *session) ok()            { se.reply("OK") }
func (se *session) err(msg string) { se.reply("ERR " + strings.ReplaceAll(msg, "\n", " | ")) }
func (se *session) illegal(r *core.Report) {
	for _, v := range r.Violations {
		se.reply("# " + v.String())
	}
	se.reply("ILLEGAL")
}

// handle processes one protocol line; it returns true on QUIT.
func (se *session) handle(line string) bool {
	trimmed := strings.TrimSpace(line)
	if se.tx != nil {
		return se.handleTx(trimmed)
	}
	cmd, rest := splitCommand(trimmed)
	switch cmd {
	case "":
		// ignore blank lines between commands
	case "QUIT":
		se.ok()
		return true
	case "SEARCH":
		se.search(rest)
	case "QUERY":
		se.query(rest)
	case "GET":
		se.get(rest)
	case "BEGIN":
		se.tx = &txn.Transaction{}
		se.ok()
	case "CHECK":
		se.check()
	case "CONSISTENT":
		se.consistent()
	case "SCHEMA":
		se.reply(strings.Split(strings.TrimRight(schemadsl.Format(se.srv.schema, se.srv.name), "\n"), "\n")...)
		se.ok()
	case "STAT":
		se.stat()
	default:
		se.err(fmt.Sprintf("unknown command %q", cmd))
	}
	return false
}

// handleTx processes lines inside BEGIN..COMMIT.
func (se *session) handleTx(line string) bool {
	cmd, rest := splitCommand(line)
	switch cmd {
	case "ADD":
		if err := se.flushPending(); err != nil {
			se.err(err.Error())
			se.abort()
			return false
		}
		dn := strings.TrimSpace(rest)
		if dn == "" {
			se.err("ADD needs a DN")
			se.abort()
			return false
		}
		se.pendingDN = dn
		se.pendingClasses = nil
		se.pendingAttrs = make(map[string][]dirtree.Value)
	case "DELETE":
		if err := se.flushPending(); err != nil {
			se.err(err.Error())
			se.abort()
			return false
		}
		se.tx.Delete(strings.TrimSpace(rest))
	case "MOVE":
		if err := se.flushPending(); err != nil {
			se.err(err.Error())
			se.abort()
			return false
		}
		dn, dest, _ := strings.Cut(strings.TrimSpace(rest), " ")
		se.tx.Move(strings.TrimSpace(dn), strings.TrimSpace(dest))
	case "COMMIT":
		if err := se.flushPending(); err != nil {
			se.err(err.Error())
			se.abort()
			return false
		}
		se.commit()
	case "ABORT":
		se.abort()
		se.ok()
	case "":
		// blank line inside a transaction is a no-op
	default:
		// attribute line "name: value" for the pending ADD
		if se.pendingDN == "" {
			se.err(fmt.Sprintf("unexpected %q inside transaction", line))
			se.abort()
			return false
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			se.err(fmt.Sprintf("malformed attribute line %q", line))
			se.abort()
			return false
		}
		name = strings.TrimSpace(name)
		value = strings.TrimSpace(value)
		if name == dirtree.AttrObjectClass {
			se.pendingClasses = append(se.pendingClasses, value)
			return false
		}
		v, err := dirtree.ParseValue(se.srv.schema.Registry.Type(name), value)
		if err != nil {
			se.err(err.Error())
			se.abort()
			return false
		}
		se.pendingAttrs[name] = append(se.pendingAttrs[name], v)
	}
	return false
}

func (se *session) flushPending() error {
	if se.pendingDN == "" {
		return nil
	}
	se.tx.Add(se.pendingDN, se.pendingClasses, se.pendingAttrs)
	se.pendingDN, se.pendingClasses, se.pendingAttrs = "", nil, nil
	return nil
}

func (se *session) abort() {
	se.tx = nil
	se.pendingDN, se.pendingClasses, se.pendingAttrs = "", nil, nil
}

func (se *session) commit() {
	tx := se.tx
	se.abort()
	se.srv.mu.Lock()
	report, err := se.srv.applier.Apply(se.srv.dir, tx)
	// Re-encode before releasing the write lock: reader sessions (CHECK,
	// SEARCH, QUERY) run under the read lock and rely on the encoding
	// being current, so the lazy re-encode must never fire concurrently
	// under RLock (dirtree.Directory is read-only while Encoded).
	se.srv.dir.EnsureEncoded()
	if err == nil && report.Legal() && se.srv.journal != nil {
		if jerr := tx.WriteChanges(se.srv.journal); jerr == nil {
			jerr = se.srv.journal.Sync()
			_ = jerr
		}
	}
	se.srv.mu.Unlock()
	if err != nil {
		se.err(err.Error())
		return
	}
	if !report.Legal() {
		se.illegal(report)
		return
	}
	se.ok()
}

func (se *session) search(rest string) {
	ftext, tail, err := cutBalanced(strings.TrimSpace(rest))
	if err != nil {
		se.err(err.Error())
		return
	}
	f, err := filter.Parse(ftext)
	if err != nil {
		se.err(err.Error())
		return
	}
	se.srv.mu.RLock()
	defer se.srv.mu.RUnlock()
	view := se.srv.dir.All()
	for _, a := range strings.Fields(tail) {
		if base, ok := strings.CutPrefix(a, "base="); ok {
			e := se.srv.dir.ByDN(base)
			if e == nil {
				se.err(fmt.Sprintf("base %q not found", base))
				return
			}
			view = se.srv.dir.SubtreeView(e)
		}
	}
	for _, e := range view.Entries() {
		if f.Matches(e) {
			se.reply(e.DN())
		}
	}
	se.ok()
}

func (se *session) query(rest string) {
	q, err := hquery.Parse(strings.TrimSpace(rest))
	if err != nil {
		se.err(err.Error())
		return
	}
	se.srv.mu.RLock()
	defer se.srv.mu.RUnlock()
	for _, e := range hquery.Eval(q, hquery.NewBinding(se.srv.dir)) {
		se.reply(e.DN())
	}
	se.ok()
}

func (se *session) get(rest string) {
	dn := strings.TrimSpace(rest)
	se.srv.mu.RLock()
	defer se.srv.mu.RUnlock()
	e := se.srv.dir.ByDN(dn)
	if e == nil {
		se.err(fmt.Sprintf("no entry %q", dn))
		return
	}
	se.reply("dn: " + e.DN())
	for _, name := range e.AttrNames() {
		for _, v := range e.Attr(name) {
			se.reply(name + ": " + v.String())
		}
	}
	se.ok()
}

func (se *session) check() {
	se.srv.mu.RLock()
	report := se.srv.checker.Check(se.srv.dir)
	se.srv.mu.RUnlock()
	if !report.Legal() {
		se.illegal(report)
		return
	}
	se.ok()
}

func (se *session) consistent() {
	res := core.CheckConsistency(se.srv.schema)
	se.reply(fmt.Sprintf("consistent: %v facts: %d", res.Consistent, res.Facts))
	if res.Consistent {
		se.ok()
	} else {
		se.reply("ILLEGAL")
	}
}

func (se *session) stat() {
	se.srv.mu.RLock()
	defer se.srv.mu.RUnlock()
	se.reply(fmt.Sprintf("entries: %d", se.srv.dir.Len()))
	names := se.srv.dir.ClassNames()
	sort.Strings(names)
	for _, c := range names {
		se.reply(fmt.Sprintf("class %s: %d", c, se.srv.dir.ClassCount(c)))
	}
	se.ok()
}

// cutBalanced splits off a leading balanced-parenthesis span (a filter,
// which may contain spaces) from the rest of the line.
func cutBalanced(s string) (string, string, error) {
	if s == "" || s[0] != '(' {
		return "", "", fmt.Errorf("expected a parenthesized filter")
	}
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip the escape marker
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return s[:i+1], s[i+1:], nil
			}
		}
	}
	return "", "", fmt.Errorf("unbalanced filter")
}

func splitCommand(line string) (string, string) {
	cmd, rest, _ := strings.Cut(line, " ")
	return strings.ToUpper(cmd), rest
}

// Snapshot writes the current instance as LDIF, for persistence.
func (s *Server) Snapshot(w *bufio.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return ldif.WriteDirectory(w, s.dir)
}

package server

import (
	"strings"
	"testing"

	"boundschema/internal/repl"
	"boundschema/internal/vfs"
)

// The ERR grammar: every error path replies with exactly one line of the
// form "ERR <message>" — no payload lines before it, no embedded
// newlines (the reply funnel folds them to " | "), and a non-empty
// message — and, unless the error is session-fatal, the reply stream
// stays parseable: the next command gets a normal reply. The load
// harness's response framing (internal/loadgen.readResp) depends on
// exactly this contract.

// expectErr reads one reply and asserts the ERR grammar, returning the
// message after "ERR ".
func expectErr(t *testing.T, c *client, wantSub string) string {
	t.Helper()
	body, term := c.until()
	if len(body) != 0 {
		t.Errorf("ERR reply carried %d payload lines before the terminator: %v", len(body), body)
	}
	msg, ok := strings.CutPrefix(term, "ERR ")
	if !ok {
		t.Fatalf("reply %q is not an ERR terminator", term)
	}
	if msg == "" {
		t.Error("ERR with an empty message")
	}
	if strings.ContainsAny(msg, "\n\r") {
		t.Errorf("ERR message holds a raw newline: %q", msg)
	}
	if wantSub != "" && !strings.Contains(msg, wantSub) {
		t.Errorf("ERR message %q does not mention %q", msg, wantSub)
	}
	return msg
}

// TestErrGrammarCommandPaths drives every protocol-level error path on a
// plain server and checks the grammar plus stream recovery.
func TestErrGrammarCommandPaths(t *testing.T) {
	cases := []struct {
		name string
		pre  []string // lines sent first, each group answered with OK
		send []string // lines whose (single) reply must be a grammatical ERR
		want string
	}{
		{"unknown command", nil, []string{"FROB o=att"}, "unknown command"},
		{"commit outside txn", nil, []string{"COMMIT"}, "unknown command"},
		{"abort outside txn", nil, []string{"ABORT"}, "unknown command"},
		{"bad search filter", nil, []string{"SEARCH (bad"}, ""},
		{"search trailing junk", nil, []string{"SEARCH (objectClass=person) bogus"}, "unexpected"},
		{"search limit not a number", nil, []string{"SEARCH (objectClass=person) limit=ten"}, "malformed"},
		{"search limit empty", nil, []string{"SEARCH (objectClass=person) limit="}, "malformed"},
		{"search limit negative", nil, []string{"SEARCH (objectClass=person) limit=-1"}, "malformed"},
		{"search limit with junk base", nil, []string{"SEARCH (objectClass=person) bogus limit=2"}, "unexpected"},
		{"bad query", nil, []string{"QUERY (frob x)"}, ""},
		{"get missing entry", nil, []string{"GET uid=ghost,o=att"}, "no entry"},
		{"add without dn", []string{"BEGIN"}, []string{"ADD"}, "ADD needs a DN"},
		{"move without arrow", []string{"BEGIN"}, []string{"MOVE uid=x,o=att somewhere"}, "MOVE needs"},
		{"attr line with no pending add", []string{"BEGIN"}, []string{"name: stray"}, "inside transaction"},
		{"malformed attr line", []string{"BEGIN", "ADD uid=x,o=att"}, []string{"not-an-attribute"}, "malformed attribute"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, c := startServer(t)
			if len(tc.pre) > 0 {
				// BEGIN replies OK; ADD inside a transaction replies nothing.
				c.send(tc.pre...)
				if _, term := c.until(); term != "OK" {
					t.Fatalf("setup %v replied %q", tc.pre, term)
				}
			}
			c.send(tc.send...)
			expectErr(t, c, tc.want)
			// Every command-level error leaves the session alive and the
			// transaction aborted: the next command parses normally.
			c.expectOK("STAT")
		})
	}
}

// TestErrGrammarRedirect: a write on a replica is refused with a single
// parseable redirect line that names the primary.
func TestErrGrammarRedirect(t *testing.T) {
	primary, replAddr := startPrimary(t, repl.Async)
	_ = primary
	r := startReplica(t, vfs.NewFault(), replAddr)
	addr, err := r.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dialClient(t, addr)
	c.send("BEGIN")
	msg := expectErr(t, c, "redirect primary=")
	if !strings.Contains(msg, replAddr) {
		t.Errorf("redirect %q does not name the primary %q", msg, replAddr)
	}
	c.expectOK("STAT") // replica still serves reads after refusing the write
	c.expectOK("SEARCH (objectClass=person)")
}

// TestErrGrammarNotDurableAndReadOnly: the two journal-failure refusals
// keep the single-line grammar and leave reads working.
func TestErrGrammarNotDurableAndReadOnly(t *testing.T) {
	t.Run("not durable", func(t *testing.T) {
		srv, c, _ := startJournaledServer(t, 0)
		injectJournal(srv, &flakyJournal{failWrites: true})
		c.expectOK("BEGIN")
		c.send(addPersonLines("doomed")...)
		expectErr(t, c, "not durable")
		c.expectOK("CHECK") // rolled back to a legal instance, session alive
	})
	t.Run("read-only", func(t *testing.T) {
		srv, c, _ := startJournaledServer(t, 0)
		injectJournal(srv, &flakyJournal{failWrites: true, failTruncate: true})
		c.expectOK("BEGIN")
		c.send(addPersonLines("doomed")...)
		expectErr(t, c, "") // the failed commit itself
		c.expectOK("BEGIN") // degradation refuses the write at BEGIN or COMMIT
		c.send(addPersonLines("after")...)
		expectErr(t, c, "read-only")
		c.expectOK("SEARCH (objectClass=person)") // reads survive degradation
	})
}

// TestErrGrammarLineTooLong: the one session-fatal refusal still emits a
// single grammatical ERR line before the close.
func TestErrGrammarLineTooLong(t *testing.T) {
	_, addr := startServerWithLimits(t, Limits{DrainTimeout: 200 * 1e6})
	c := dialClient(t, addr)
	if _, err := c.conn.Write([]byte(strings.Repeat("A", maxLineBytes+4096) + "\n")); err != nil {
		t.Fatal(err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("no reply: %v", err)
	}
	line = strings.TrimRight(line, "\n")
	if !strings.HasPrefix(line, "ERR ") || !strings.Contains(line, "line too long") {
		t.Fatalf("oversized line reply = %q", line)
	}
}

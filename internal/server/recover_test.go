package server

import (
	"bytes"
	"fmt"
	iofs "io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"errors"

	"boundschema/internal/dirtree"
	"boundschema/internal/repl"
	"boundschema/internal/txn"
	"boundschema/internal/vfs"
	"boundschema/internal/workload"
)

// newFaultServer builds a whitepages server over the fault FS, without
// a listener — the recovery tests drive it through CommitTx.
func newFaultServer(t *testing.T, fault *vfs.Fault, groupCommit bool) *Server {
	t.Helper()
	s := workload.WhitePagesSchema()
	srv, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetFS(fault)
	srv.SetGroupCommit(groupCommit)
	return srv
}

// commitPerson commits one person entry through CommitTx.
func commitPerson(t *testing.T, srv *Server, uid string) error {
	t.Helper()
	tx := &txn.Transaction{}
	tx.Add("uid="+uid+",ou=attLabs,o=att", []string{"person", "top"},
		map[string][]dirtree.Value{"name": {dirtree.String(uid)}})
	rep, err := srv.CommitTx(tx)
	if err != nil {
		return err
	}
	if !rep.Legal() {
		t.Fatalf("commit of %s rejected:\n%s", uid, rep)
	}
	return nil
}

// TestRecoveryBitFlipQuarantined is the acceptance case for mid-log
// corruption: a silently flipped bit in an acknowledged record must be
// caught by its checksum at the next startup, the journal quarantined,
// and the server must refuse to start — on every attempt, not just the
// first.
func TestRecoveryBitFlipQuarantined(t *testing.T) {
	fault := vfs.NewFault()
	srv := newFaultServer(t, fault, false)
	if err := srv.OpenJournal(crashJournalPath); err != nil {
		t.Fatal(err)
	}
	// Per-transaction ops: OpenAppend=1, then commit i is Write=2i,
	// Sync=2i+1. Flip a bit inside commit 2's record — mid-log once two
	// more commits land after it.
	fault.SetScript(vfs.FaultPoint{Op: 4, Kind: vfs.FaultBitFlip})
	for _, uid := range []string{"p1", "p2", "p3", "p4"} {
		if err := commitPerson(t, srv, uid); err != nil {
			t.Fatalf("commit %s: %v (bit flips are silent)", uid, err)
		}
	}
	srv.Close()

	for attempt := 1; attempt <= 2; attempt++ {
		srv2 := newFaultServer(t, fault, false)
		err := srv2.OpenJournal(crashJournalPath)
		if err == nil {
			t.Fatalf("attempt %d: server started over a corrupt journal", attempt)
		}
		if !strings.Contains(err.Error(), "quarantined") || !strings.Contains(err.Error(), "refusing to serve") {
			t.Fatalf("attempt %d: refusal does not explain itself: %v", attempt, err)
		}
	}
	if _, err := fault.ReadFile(crashJournalPath + ".quarantine"); err != nil {
		t.Fatalf("quarantine copy missing: %v", err)
	}
	// The original journal is preserved too — quarantine copies, the
	// operator decides what to delete.
	if _, err := fault.ReadFile(crashJournalPath); err != nil {
		t.Fatalf("journal destroyed by quarantine: %v", err)
	}
}

// TestRecoveryTornWriteTruncated: a torn final append (prefix reached
// the platter, crash before the marker) is recognized as the
// unacknowledged tail, truncated, and counted — and the journal keeps
// accepting appends afterwards.
func TestRecoveryTornWriteTruncated(t *testing.T) {
	fault := vfs.NewFault()
	srv := newFaultServer(t, fault, false)
	if err := srv.OpenJournal(crashJournalPath); err != nil {
		t.Fatal(err)
	}
	fault.SetScript(vfs.FaultPoint{Op: 6, Kind: vfs.FaultTornWrite}) // commit 3's write
	var acked []string
	for _, uid := range []string{"p1", "p2", "p3"} {
		if err := commitPerson(t, srv, uid); err != nil {
			break
		}
		acked = append(acked, uid)
	}
	if len(acked) != 2 {
		t.Fatalf("acked %v, want exactly p1 p2 (p3's write tore)", acked)
	}
	fault.Recover()

	srv2 := newFaultServer(t, fault, false)
	if err := srv2.OpenJournal(crashJournalPath); err != nil {
		t.Fatalf("recovery from a torn tail: %v", err)
	}
	defer srv2.Close()
	for _, uid := range acked {
		if srv2.dir.ByDN("uid="+uid+",ou=attLabs,o=att") == nil {
			t.Errorf("acked entry %s lost", uid)
		}
	}
	if srv2.dir.ByDN("uid=p3,ou=attLabs,o=att") != nil {
		t.Errorf("torn, unacknowledged entry replayed")
	}
	if n := srv2.metrics.recTruncated.Load(); n != 1 {
		t.Errorf("journal_records_truncated = %d, want 1", n)
	}
	if srv2.metrics.recClean.Load() != 0 {
		t.Errorf("recovery_clean = 1 after a truncation")
	}
	// The log is clean again: append, restart, everything survives.
	if err := commitPerson(t, srv2, "p5"); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
	srv2.Close()
	srv3 := newFaultServer(t, fault, false)
	if err := srv3.OpenJournal(crashJournalPath); err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer srv3.Close()
	if srv3.metrics.recClean.Load() != 1 {
		t.Errorf("recovery_clean = 0 after a clean restart")
	}
	for _, uid := range []string{"p1", "p2", "p5"} {
		if srv3.dir.ByDN("uid="+uid+",ou=attLabs,o=att") == nil {
			t.Errorf("entry %s lost across torn-tail recovery + append", uid)
		}
	}
}

// TestRecoveryHeaderlessUpgrade: a pre-marker (headerless) journal that
// a current server appends checksummed records to must still replay in
// full on the next restart — the scanner recognizes the pre-marker
// prefix instead of calling it corruption.
func TestRecoveryHeaderlessUpgrade(t *testing.T) {
	fault := vfs.NewFault()
	legacy := fmt.Sprintf(journaledAdd, "old1", "old1") + fmt.Sprintf(journaledAdd, "old2", "old2")
	fault.WriteFile(crashJournalPath, []byte(legacy))

	srv := newFaultServer(t, fault, false)
	if err := srv.OpenJournal(crashJournalPath); err != nil {
		t.Fatalf("headerless replay: %v", err)
	}
	if err := commitPerson(t, srv, "new1"); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	srv2 := newFaultServer(t, fault, false)
	if err := srv2.OpenJournal(crashJournalPath); err != nil {
		t.Fatalf("replay of upgraded journal: %v", err)
	}
	defer srv2.Close()
	for _, uid := range []string{"old1", "old2", "new1"} {
		if srv2.dir.ByDN("uid="+uid+",ou=attLabs,o=att") == nil {
			t.Errorf("entry %s lost across the headerless upgrade", uid)
		}
	}
}

// TestRecoverySnapshotRotationSurvivesPowerLoss is the satellite-1
// regression: rotation renames the snapshot into place and truncates
// the journal, so if the rename is not made durable (the parent
// directory fsync) a power loss right after rotation loses every
// compacted commit. The fault FS models exactly that trap.
func TestRecoverySnapshotRotationSurvivesPowerLoss(t *testing.T) {
	fault := vfs.NewFault()
	srv := newFaultServer(t, fault, false)
	if err := srv.OpenJournal(crashJournalPath); err != nil {
		t.Fatal(err)
	}
	for _, uid := range []string{"p1", "p2"} {
		if err := commitPerson(t, srv, uid); err != nil {
			t.Fatal(err)
		}
	}
	srv.mu.Lock()
	err := srv.rotateJournal()
	srv.mu.Unlock()
	if err != nil {
		t.Fatalf("rotation: %v", err)
	}
	srv.Close()
	fault.Recover() // power loss immediately after rotation

	srv2 := newFaultServer(t, fault, false)
	if err := srv2.OpenJournal(crashJournalPath); err != nil {
		t.Fatalf("recovery after rotation + power loss: %v", err)
	}
	defer srv2.Close()
	for _, uid := range []string{"p1", "p2"} {
		if srv2.dir.ByDN("uid="+uid+",ou=attLabs,o=att") == nil {
			t.Errorf("compacted entry %s lost to the rename-durability trap", uid)
		}
	}
}

// TestVerifyCommand: the online fsck replies clean on a healthy server
// and ERR once the on-disk journal no longer matches its checksums.
func TestVerifyCommand(t *testing.T) {
	srv, c, journal := startJournaledServer(t, 0)
	c.expectOK("BEGIN")
	c.expectOK(addPersonLines("v1")...)
	body := c.expectOK("VERIFY")
	joined := strings.Join(body, "\n")
	if !strings.Contains(joined, "verify: clean") || !strings.Contains(joined, "legality") {
		t.Fatalf("VERIFY body = %v", body)
	}

	// Flip one payload byte on disk, behind the running server's back.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte("changetype"))
	if i < 0 {
		t.Fatalf("no payload to corrupt in %q", data)
	}
	data[i] ^= 0x01
	if err := os.WriteFile(journal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	c.send("VERIFY")
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") || !strings.Contains(term, "corrupt") {
		t.Fatalf("VERIFY over a corrupted journal replied %q", term)
	}
	_ = srv
}

// TestVerifyCommandWithoutJournal: VERIFY still checks legality when
// journaling is off.
func TestVerifyCommandWithoutJournal(t *testing.T) {
	_, c := startServer(t)
	body := c.expectOK("VERIFY")
	if joined := strings.Join(body, "\n"); !strings.Contains(joined, "journal: off") || !strings.Contains(joined, "verify: clean") {
		t.Fatalf("VERIFY body = %v", body)
	}
}

// TestReadOnlyDegradationUnderFaults is the satellite-3 path: a disk
// whose syncs and truncates all fail forces the server read-only after
// the first COMMIT, but reads keep serving and METRICS says why.
func TestReadOnlyDegradationUnderFaults(t *testing.T) {
	fault := vfs.NewFault()
	s := workload.WhitePagesSchema()
	srv, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetFS(fault)
	if err := srv.OpenJournal(crashJournalPath); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dialClient(t, addr)

	// Every sync and every truncate fails from here on: the failed
	// append cannot be cleaned up, so the journal is untrustworthy.
	fault.SetScript(
		vfs.FaultPoint{Kind: vfs.FaultSyncErr},
		vfs.FaultPoint{Kind: vfs.FaultTruncErr},
	)
	c.expectOK("BEGIN")
	c.send(addPersonLines("doomed")...)
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") || !strings.Contains(term, "not durable") {
		t.Fatalf("COMMIT on a failing disk replied %q", term)
	}
	c.expectOK("BEGIN")
	c.send(addPersonLines("after")...)
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") || !strings.Contains(term, "read-only") {
		t.Fatalf("COMMIT after degradation replied %q", term)
	}
	// Reads keep serving the (still legal) in-memory instance.
	c.expectOK("SEARCH (objectClass=person)")
	c.expectOK("CHECK")
	body := c.expectOK("METRICS")
	if joined := strings.Join(body, "\n"); !strings.Contains(joined, "read_only:") {
		t.Fatalf("METRICS does not report the degraded state:\n%s", joined)
	}
}

// TestFsck exercises the offline pipeline over the real file system:
// clean verdict with counters on a healthy journal, refusal + on-disk
// quarantine on a corrupted one.
func TestFsck(t *testing.T) {
	srv, c, journal := startJournaledServer(t, 0)
	for _, uid := range []string{"f1", "f2", "f3"} {
		c.expectOK("BEGIN")
		c.expectOK(addPersonLines(uid)...)
	}
	c.expectOK("QUIT")
	srv.Close()

	s := workload.WhitePagesSchema()
	fsrv, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fsrv.Fsck(journal)
	if err != nil {
		t.Fatalf("fsck of a clean journal: %v", err)
	}
	if !rep.Clean || !rep.Legal || rep.RecordsScanned != 3 || rep.RecordsReplayed != 3 {
		t.Fatalf("fsck report = %+v, want clean, legal, 3 scanned, 3 replayed", rep)
	}
	if joined := strings.Join(rep.Lines(), "\n"); !strings.Contains(joined, "verdict: clean") {
		t.Fatalf("fsck lines = %v", rep.Lines())
	}

	// Corrupt a mid-log byte; fsck must refuse and quarantine.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte("changetype"))
	data[i] ^= 0x01
	if err := os.WriteFile(journal, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fsrv2, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := fsrv2.Fsck(journal)
	if err == nil {
		t.Fatal("fsck accepted a corrupted journal")
	}
	if !rep2.Quarantined || rep2.QuarantinePath == "" {
		t.Fatalf("fsck report = %+v, want quarantined", rep2)
	}
	if _, serr := os.Stat(rep2.QuarantinePath); serr != nil {
		t.Fatalf("quarantine file missing: %v", serr)
	}
}

// TestScanJournal covers the scanner's verdicts in isolation.
func TestScanJournal(t *testing.T) {
	payload := "dn: uid=x,o=att\nchangetype: add\nobjectClass: person\n\n"
	rec := func(seq uint64) string { return payload + repl.MarkerLine(seq, []byte(payload), 0) }

	t.Run("verified-run", func(t *testing.T) {
		sr := scanJournal([]byte(rec(1) + rec(2) + rec(3)))
		if sr.corrupt || sr.verified != 3 || sr.lastSeq != 3 || sr.tornBytes != 0 {
			t.Fatalf("scan = %+v", sr)
		}
	})
	t.Run("torn-tail", func(t *testing.T) {
		sr := scanJournal([]byte(rec(1) + payload[:17]))
		if sr.corrupt || sr.verified != 1 || sr.tornBytes != 17 {
			t.Fatalf("scan = %+v", sr)
		}
	})
	t.Run("sequence-break", func(t *testing.T) {
		sr := scanJournal([]byte(rec(1) + rec(3)))
		if !sr.corrupt || !strings.Contains(sr.corruptReason, "sequence break") {
			t.Fatalf("scan = %+v", sr)
		}
	})
	t.Run("checksum-mismatch", func(t *testing.T) {
		data := []byte(rec(1) + rec(2))
		data[3] ^= 0x01
		sr := scanJournal(data)
		if !sr.corrupt || !strings.Contains(sr.corruptReason, "checksum mismatch") {
			t.Fatalf("scan = %+v", sr)
		}
		if sr.afterCorrupt != 2 {
			t.Fatalf("afterCorrupt = %d, want 2 (the bad record and everything after)", sr.afterCorrupt)
		}
	})
	t.Run("damaged-marker", func(t *testing.T) {
		sr := scanJournal([]byte(payload + "# commit seq=zap\n"))
		if !sr.corrupt || !strings.Contains(sr.corruptReason, "damaged marker") {
			t.Fatalf("scan = %+v", sr)
		}
	})
	t.Run("legacy-bare-markers", func(t *testing.T) {
		sr := scanJournal([]byte(payload + "# commit\n" + payload + "# commit\n"))
		if sr.corrupt || sr.legacy != 2 || sr.verified != 0 {
			t.Fatalf("scan = %+v", sr)
		}
	})
	t.Run("headerless", func(t *testing.T) {
		sr := scanJournal([]byte(payload + payload))
		if !sr.headerless || sr.corrupt {
			t.Fatalf("scan = %+v", sr)
		}
	})
	t.Run("upgrade-prefix", func(t *testing.T) {
		sr := scanJournal([]byte(payload + rec(1)))
		if sr.corrupt || sr.verified != 1 || string(sr.prefix) != payload {
			t.Fatalf("scan = %+v (prefix %q)", sr, sr.prefix)
		}
	})
}

// TestRecoverySnapshotSeqSkipsReplayedRecords: a journal that still
// contains records the snapshot already compacted (the crash window
// between the snapshot rename and the journal truncate) replays without
// error, skipping exactly those records.
func TestRecoverySnapshotSeqSkipsReplayedRecords(t *testing.T) {
	// Probe pass: the same commits-plus-rotation sequence without
	// faults, to learn how many mutating ops rotation takes.
	setup := func(fault *vfs.Fault) *Server {
		srv := newFaultServer(t, fault, false)
		if err := srv.OpenJournal(crashJournalPath); err != nil {
			t.Fatal(err)
		}
		for _, uid := range []string{"p1", "p2"} {
			if err := commitPerson(t, srv, uid); err != nil {
				t.Fatal(err)
			}
		}
		return srv
	}
	probe := vfs.NewFault()
	psrv := setup(probe)
	psrv.mu.Lock()
	if err := psrv.rotateJournal(); err != nil {
		psrv.mu.Unlock()
		t.Fatalf("probe rotation: %v", err)
	}
	psrv.mu.Unlock()
	psrv.Close()
	total := probe.OpCount()

	// Real pass: crash on rotation's second-to-last op — the journal
	// truncate, whose following sync never runs, so after power loss the
	// durable journal still holds both already-snapshotted records.
	fault := vfs.NewFault()
	srv := setup(fault)
	fault.SetScript(vfs.FaultPoint{Op: total - 1, Kind: vfs.FaultCrash})
	srv.mu.Lock()
	// The truncate lands in the volatile namespace and the sync after it
	// dies with the crash (rotation tolerates that), so the durable
	// journal still holds both records.
	_ = srv.rotateJournal()
	srv.mu.Unlock()
	srv.Close()
	fault.Recover()

	srv2 := newFaultServer(t, fault, false)
	if err := srv2.OpenJournal(crashJournalPath); err != nil {
		t.Fatalf("recovery in the rename/truncate crash window: %v", err)
	}
	defer srv2.Close()
	if n := srv2.metrics.recScanned.Load(); n == 0 {
		t.Fatalf("journal was empty — the crash point missed the window (scanned=%d)", n)
	}
	for _, uid := range []string{"p1", "p2"} {
		if srv2.dir.ByDN("uid="+uid+",ou=attLabs,o=att") == nil {
			t.Errorf("entry %s lost in the rotation crash window", uid)
		}
	}
	if r := srv2.checker.Check(srv2.dir); !r.Legal() {
		t.Fatalf("recovered instance illegal:\n%s", r)
	}
}

// TestOpenJournalMissingParent: opening a journal in a directory that
// does not exist reports the real error, not a false quarantine.
func TestOpenJournalMissingParent(t *testing.T) {
	s := workload.WhitePagesSchema()
	srv, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "missing", "journal.ldif")
	err = srv.OpenJournal(path)
	if err == nil {
		t.Fatal("OpenJournal succeeded with a missing parent directory")
	}
	if !errors.Is(err, iofs.ErrNotExist) {
		t.Fatalf("error does not unwrap to fs.ErrNotExist: %v", err)
	}
}

package server

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"boundschema/internal/dirtree"
	"boundschema/internal/netfault"
	"boundschema/internal/repl"
	"boundschema/internal/txn"
	"boundschema/internal/vfs"
)

// The partition matrix is the network twin of the crash matrix: a
// semi-sync cluster (one primary, two replicas) runs a scripted
// workload with every replication byte flowing through a
// netfault.Fault, and the sweep injects each fault kind at every Nth
// network operation — mid-HELLO, mid-segment, mid-ACK, mid-catch-up.
// After the workload the most-advanced replica is promoted WHILE the
// fault may still be active (a failover decided during the partition,
// the realistic worst case), the network heals, and three invariants
// are asserted at every point:
//
//   - fencing: once the deposed primary observes any higher-epoch
//     artifact, it is read-only — at most one writable node survives
//     contact, and it is the one with the highest epoch;
//   - durability: no semi-sync-acknowledged write is lost by the
//     failover (the promote-the-most-advanced-replica rule makes the
//     ACK a real guarantee);
//   - convergence: after every node rejoins the new primary, all three
//     serve byte-identical instances at the new epoch.
//
// During a full partition both sides may transiently accept writes —
// fencing is reactive, not a lease — so the matrix asserts the
// post-contact state, and the unacknowledged writes the deposed
// primary took during the partition are discarded by its snapshot
// bootstrap when it rejoins. TestSplitBrainFencingRegression pins that
// window explicitly.

// partitionMatrixCap bounds how many injection points each fault kind
// sweeps: PARTITION_MATRIX_MAX overrides (0 means the full sweep — the
// workflow_dispatch CI job), -short trims further, and the default
// keeps plain `go test` wall-clock sane.
func partitionMatrixCap() int {
	if v := os.Getenv("PARTITION_MATRIX_MAX"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			return n
		}
	}
	if testing.Short() {
		return 2
	}
	return 4
}

// postFailoverTxns scripts commits that only the NEW primary issues, on
// DNs disjoint from crashWorkload's so they cannot collide with
// whatever prefix of the original workload the promoted replica holds.
func postFailoverTxns(n int) []crashTxn {
	out := make([]crashTxn, 0, n)
	for i := 0; i < n; i++ {
		dn := fmt.Sprintf("uid=post%02d,ou=attLabs,o=att", i)
		i := i
		out = append(out, crashTxn{
			build: func() *txn.Transaction {
				tx := &txn.Transaction{}
				tx.Add(dn, []string{"person", "top"}, map[string][]dirtree.Value{
					"name": {dirtree.String(fmt.Sprintf("post failover %d", i))}})
				return tx
			},
			dns: []string{dn},
		})
	}
	return out
}

// probeEpoch delivers a fencing contact to a replication listener: a
// raw HELLO announcing epoch — exactly what a re-pointed replica's
// handshake looks like to a deposed primary after the network heals —
// and returns the first response line.
func probeEpoch(t *testing.T, addr string, lastSeq, epoch uint64) string {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("probe dial %s: %v", addr, err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write([]byte(repl.HelloLine(lastSeq, epoch))); err != nil {
		t.Fatalf("probe write: %v", err)
	}
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		t.Fatalf("probe read: %v", err)
	}
	return strings.TrimRight(line, "\r\n")
}

// runPartitionScenario runs one full failover story under a single
// scripted fault (op == 0 runs fault-free — the counting pass) and
// returns the network op count at the end of the faultable window.
func runPartitionScenario(t *testing.T, kind netfault.Kind, op int) int {
	t.Helper()
	const nCommits = 24
	txns := crashWorkload(nCommits)

	f := netfault.New()
	if op > 0 {
		f.SetScript(netfault.Point{Op: op, Kind: kind, Dur: 30 * time.Millisecond})
	}

	pfs, f1, f2 := vfs.NewFault(), vfs.NewFault(), vfs.NewFault()
	p := newReplServer(t, pfs, true, 0)
	p.SetReplicationMode(repl.SemiSync)
	p.SetSemiSyncTimeout(50 * time.Millisecond)
	p.SetReplListenerWrap(f.Listener)
	addr, err := p.ListenRepl("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenRepl: %v", err)
	}
	mkReplica := func(fs vfs.FS) *Server {
		r := newReplServer(t, fs, true, 0)
		r.SetDialer(f.Dialer())
		if err := r.StartReplica(addr); err != nil {
			t.Fatalf("StartReplica: %v", err)
		}
		return r
	}
	r1, r2 := mkReplica(f1), mkReplica(f2)

	// Best-effort wait for both subscriptions so the counting pass (and
	// every late-op scenario) covers steady-state streaming; an early
	// fault may legitimately keep a replica out, so no Fatal here.
	subDeadline := time.Now().Add(2 * time.Second)
	for p.ReplStatus().Replicas < 2 && time.Now().Before(subDeadline) {
		time.Sleep(time.Millisecond)
	}

	// The workload. A network fault must never fail a primary commit:
	// semi-sync degrades to async on ACK timeout, it does not refuse
	// writes. semiAcked records the sound per-commit witness — sampled
	// immediately after the OK, AckedSeq >= seq proves some replica
	// held the record durably at that moment.
	semiAcked := make(map[string]bool)
	for i, ct := range txns {
		if _, cerr := p.CommitTx(ct.build()); cerr != nil {
			t.Fatalf("commit %d failed under %v at op %d: %v", i, kind, op, cerr)
		}
		if p.ReplStatus().AckedSeq >= commitSeqOf(p) {
			for _, dn := range ct.dns {
				semiAcked[dn] = true
			}
		}
	}
	opCount := f.OpCount()

	// Failover, decided while the fault may still be live: promote the
	// most-advanced replica — the rule that turns semi-sync ACKs into a
	// no-loss guarantee.
	l1, _ := r1.ReplicaSeqs()
	l2, _ := r2.ReplicaSeqs()
	promoted, other, otherFS := r1, r2, f2
	if l2 > l1 {
		promoted, other, otherFS = r2, r1, f1
	}
	if _, perr := promoted.Promote(); perr != nil {
		t.Fatalf("promote during %v at op %d: %v", kind, op, perr)
	}
	newEpoch := promoted.Epoch()
	if newEpoch != 2 {
		t.Errorf("promoted epoch = %d, want 2 (seed epoch 1 bumped once)", newEpoch)
	}

	// Durability: every semi-sync-acknowledged write survived the
	// failover onto the promoted node.
	promoted.mu.RLock()
	for dn := range semiAcked {
		if promoted.dir.ByDN(dn) == nil {
			t.Errorf("acked write %s lost by failover under %v at op %d", dn, kind, op)
		}
	}
	promoted.mu.RUnlock()

	// Heal, and disarm any scripted point that has not fired yet so the
	// recovery phase below runs on a clean network.
	f.SetScript()
	f.Heal()

	// Fencing contact: the deposed primary observes the new epoch and
	// must fence itself — after this, at most one node is writable, and
	// it is the highest-epoch one.
	if resp := probeEpoch(t, addr, commitSeqOf(promoted), newEpoch); !strings.Contains(resp, "stale epoch") {
		t.Errorf("probe response = %q, want a stale-epoch refusal", resp)
	}
	extra := postFailoverTxns(4)
	if _, cerr := p.CommitTx(extra[3].build()); cerr == nil {
		t.Errorf("deposed primary still writable after fencing contact under %v at op %d", kind, op)
	} else if !strings.Contains(cerr.Error(), "fenced") {
		t.Errorf("deposed primary refused with %q, want a fenced: reason", cerr)
	}
	if got := p.roleString(); got != "fenced" {
		t.Errorf("deposed primary role = %q, want fenced", got)
	}

	// The new primary serves writes and ships at the new epoch.
	newAddr, err := promoted.ListenRepl("127.0.0.1:0")
	if err != nil {
		t.Fatalf("promoted ListenRepl: %v", err)
	}
	for i, ct := range extra[:3] {
		if _, cerr := promoted.CommitTx(ct.build()); cerr != nil {
			t.Fatalf("post-failover commit %d: %v", i, cerr)
		}
	}

	// Rejoin: the surviving replica and the deposed primary both
	// restart against the new primary. Both announce epoch 1 < 2, so
	// both bootstrap from a snapshot — the deposed primary's partition-
	// era unacked writes are discarded, not merged.
	other.Close()
	r3 := newReplServer(t, otherFS, true, 0)
	if err := r3.StartReplica(newAddr); err != nil {
		t.Fatalf("rejoin replica: %v", err)
	}
	p.Close()
	p2 := newReplServer(t, pfs, true, 0)
	if err := p2.StartReplica(newAddr); err != nil {
		t.Fatalf("rejoin deposed primary: %v", err)
	}
	// waitSeq is not enough for the deposed primary: its local seq may
	// START above the new primary's (partition-era unacked writes), so
	// convergence is epoch adoption plus exact sequence agreement.
	want := commitSeqOf(promoted)
	waitConverged := func(s *Server, who string) {
		deadline := time.Now().Add(15 * time.Second)
		for {
			local, _ := s.ReplicaSeqs()
			if s.Epoch() == newEpoch && local == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s stuck at seq %d epoch %d, want seq %d epoch %d",
					who, local, s.Epoch(), want, newEpoch)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitConverged(r3, "rejoined replica")
	waitConverged(p2, "rejoined deposed primary")
	pb := serverLDIF(t, promoted)
	if got := serverLDIF(t, r3); got != pb {
		t.Errorf("rejoined replica not byte-identical under %v at op %d", kind, op)
	}
	if got := serverLDIF(t, p2); got != pb {
		t.Errorf("rejoined deposed primary not byte-identical under %v at op %d", kind, op)
	}
	if r3.Epoch() != newEpoch || p2.Epoch() != newEpoch {
		t.Errorf("rejoined epochs = %d/%d, want %d", r3.Epoch(), p2.Epoch(), newEpoch)
	}
	r3.Close()
	p2.Close()
	promoted.Close()
	return opCount
}

func TestPartitionMatrix(t *testing.T) {
	// Fault-free counting pass: validates the whole story with no fault
	// and bounds the sweep by the observed network op count.
	total := runPartitionScenario(t, netfault.Drop, 0)
	if total < 10 {
		t.Fatalf("counting pass saw only %d network ops", total)
	}
	step := 1
	if cap := partitionMatrixCap(); cap > 0 && total > cap {
		step = (total + cap - 1) / cap
	}
	kinds := []netfault.Kind{
		netfault.Drop, netfault.Delay, netfault.Dup,
		netfault.CutInbound, netfault.CutOutbound,
		netfault.Partition, netfault.SlowReader,
	}
	t.Logf("partition matrix: %d network ops, injecting every %d, %d fault kinds", total, step, len(kinds))
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			for op := 1; op <= total; op += step {
				op := op
				t.Run(fmt.Sprintf("op%03d", op), func(t *testing.T) {
					runPartitionScenario(t, k, op)
				})
			}
		})
	}
}

// TestSplitBrainFencingRegression pins the exact hazard epochs close.
// Before fencing contact, a promoted replica and its deposed primary
// BOTH accept writes — the split-brain window this PR is about. The
// test demonstrates the window is real (both commits succeed), then
// delivers one higher-epoch artifact to the old primary and asserts it
// fences permanently; and separately that a replica which adopted the
// new epoch refuses to follow the stale primary (poison ACK path)
// without degrading itself.
func TestSplitBrainFencingRegression(t *testing.T) {
	pfs := vfs.NewFault()
	p := newReplServer(t, pfs, true, 0)
	t.Cleanup(func() { p.Close() })
	p.SetReplicationMode(repl.SemiSync)
	p.SetSemiSyncTimeout(50 * time.Millisecond)
	addr, err := p.ListenRepl("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenRepl: %v", err)
	}
	rfs := vfs.NewFault()
	r := startReplica(t, rfs, addr)
	waitReplicas(t, p, 1)
	txns := crashWorkload(6)
	for _, ct := range txns[:4] {
		if _, err := p.CommitTx(ct.build()); err != nil {
			t.Fatal(err)
		}
	}
	waitSeq(t, r, commitSeqOf(p))

	if _, err := r.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if got := r.Epoch(); got != 2 {
		t.Fatalf("promoted epoch = %d, want 2", got)
	}

	// The split-brain window: no contact has happened, so BOTH nodes
	// accept writes. This is the pre-fencing behavior the rest of the
	// test proves is now bounded by first contact.
	if _, err := p.CommitTx(txns[4].build()); err != nil {
		t.Fatalf("old primary refused a write before any fencing contact: %v", err)
	}
	if _, err := r.CommitTx(txns[5].build()); err != nil {
		t.Fatalf("new primary refused a write: %v", err)
	}

	// One higher-epoch artifact fences the old primary for good.
	if resp := probeEpoch(t, addr, commitSeqOf(r), r.Epoch()); !strings.Contains(resp, "stale epoch") {
		t.Fatalf("probe response = %q, want stale-epoch refusal", resp)
	}
	if _, err := p.CommitTx(postFailoverTxns(1)[0].build()); err == nil ||
		!strings.Contains(err.Error(), "fenced") {
		t.Fatalf("old primary write after fencing contact = %v, want fenced refusal", err)
	}
	if got := p.roleString(); got != "fenced" {
		t.Errorf("fenced primary role = %q", got)
	}
	if n := p.metrics.FencingEvents.Load(); n != 1 {
		t.Errorf("fencing_events = %d, want 1", n)
	}

	// Replica-side rejection: a node that adopted epoch 2 (bootstrapped
	// from the new primary, epoch persisted in its snapshot header and
	// recovered across a restart) refuses to follow the epoch-1 primary
	// — it counts epoch_rejects and keeps retrying, it does NOT degrade.
	newAddr, err := r.ListenRepl("127.0.0.1:0")
	if err != nil {
		t.Fatalf("promoted ListenRepl: %v", err)
	}
	wfs := vfs.NewFault()
	w := startReplica(t, wfs, newAddr)
	waitSeq(t, w, commitSeqOf(r))
	w.Close()
	w2 := newReplServer(t, wfs, true, 0)
	t.Cleanup(func() { w2.Close() })
	if got := w2.Epoch(); got != 2 {
		t.Fatalf("restarted replica recovered epoch %d, want 2 from its snapshot header", got)
	}
	seqBefore := commitSeqOf(w2)
	if err := w2.StartReplica(addr); err != nil { // the STALE primary
		t.Fatalf("StartReplica: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for w2.metrics.EpochRejects.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replica never rejected the stale primary's stream")
		}
		time.Sleep(time.Millisecond)
	}
	w2.mu.RLock()
	ro := w2.readOnly
	w2.mu.RUnlock()
	if ro != "" {
		t.Errorf("replica degraded on a stale primary (%q); it should only refuse and retry", ro)
	}
	if got := commitSeqOf(w2); got != seqBefore {
		t.Errorf("replica applied %d→%d from a stale primary", seqBefore, got)
	}
}

package server

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"

	"boundschema/internal/core"
)

// This file is the server's observability surface: per-command counters
// and latency histograms, checker timings (which execution path the
// legality engine took), violation-kind counters, and live gauges for
// connections and transactions. Everything is lock-free atomics so the
// hot protocol paths pay one or two atomic adds per command; the METRICS
// protocol command and the cmd/bsd expvar endpoint render snapshots.

// histBuckets is the number of power-of-two latency buckets. Bucket 0
// counts sub-microsecond observations and bucket i counts durations in
// [2^(i-1), 2^i) microseconds, so the last bucket opens at ~2^20 µs ≈ 1 s.
const histBuckets = 22

// histogram is a fixed-bucket latency histogram safe for concurrent use.
type histogram struct {
	count   atomic.Int64
	sumUS   atomic.Int64
	maxUS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	h.observeValue(d.Microseconds())
}

// observeValue records a raw value into the power-of-two buckets; the
// batch-size histogram uses it directly (the field names read in µs but
// the machinery is unit-agnostic).
func (h *histogram) observeValue(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sumUS.Add(v)
	for {
		old := h.maxUS.Load()
		if v <= old || h.maxUS.CompareAndSwap(old, v) {
			break
		}
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
}

// quantile returns an upper bound on the q-quantile in microseconds,
// resolved to the histogram's bucket boundaries.
func (h *histogram) quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0
			}
			ub := int64(1) << uint(i)
			if mx := h.maxUS.Load(); mx < ub {
				return mx // tighter bound when the max falls in this bucket
			}
			return ub
		}
	}
	return h.maxUS.Load()
}

func (h *histogram) avgUS() int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sumUS.Load() / n
}

// cmdStats aggregates one protocol command.
type cmdStats struct {
	hist histogram
	errs atomic.Int64
}

// protocolCommands is the closed set of metered commands; anything else
// lands in the UNKNOWN bucket.
var protocolCommands = []string{
	"SEARCH", "QUERY", "GET", "BEGIN", "ADD", "DELETE", "MOVE", "COMMIT",
	"ABORT", "CHECK", "CONSISTENT", "SCHEMA", "STAT", "METRICS", "SNAPSHOT",
	"VERIFY", "PROMOTE", "QUIT", "UNKNOWN",
}

// nViolationKinds sizes the per-kind violation counters; the kinds are a
// closed enum ending at ViolationForbiddenRel.
const nViolationKinds = int(core.ViolationForbiddenRel) + 1

// Metrics holds the server's counters and gauges. All fields are safe for
// concurrent use; construct with newMetrics.
type Metrics struct {
	start time.Time

	// Connection lifecycle.
	ConnsActive    atomic.Int64 // gauge: sessions currently being served
	ConnsTotal     atomic.Int64 // accepted connections, ever
	ConnsThrottled atomic.Int64 // accepts that waited for a MaxConns slot
	IdleTimeouts   atomic.Int64 // sessions cut by the idle timeout
	LinesTooLong   atomic.Int64 // sessions cut by the line-length cap
	ScanErrors     atomic.Int64 // sessions cut by other read errors
	AcceptRetries  atomic.Int64 // transient Accept errors backed off from

	// Transactions.
	TxActive    atomic.Int64 // gauge: sessions inside BEGIN..COMMIT
	TxCommitted atomic.Int64
	TxIllegal   atomic.Int64
	TxErrors    atomic.Int64

	// Search access paths: which side of the planner's choice each SEARCH
	// landed on. Indexed covers posting-list and attribute-index probes
	// (and statically-empty filters); Scanned counts full view scans.
	SearchIndexed atomic.Int64
	SearchScanned atomic.Int64

	// Journal.
	JournalBytes     atomic.Int64 // gauge: live journal size
	JournalRotations atomic.Int64
	JournalErrors    atomic.Int64

	// Replication fencing: FencingEvents counts times this node fenced
	// itself after observing a higher epoch; EpochRejects counts streams
	// this node refused to follow because the primary's epoch was stale.
	FencingEvents atomic.Int64
	EpochRejects  atomic.Int64

	// Recovery: what OpenJournal's startup pass found. Set once per
	// process (recRan flips to 1); recClean is a gauge — 1 means the last
	// recovery neither truncated nor quarantined anything.
	recRan         atomic.Int64
	recScanned     atomic.Int64 // journal_records_scanned
	recReplayed    atomic.Int64 // journal_records_replayed
	recTrusted     atomic.Int64 // journal_records_trusted
	recTruncated   atomic.Int64 // journal_records_truncated
	recQuarantined atomic.Int64 // journal_records_quarantined
	recLegalityMs  atomic.Int64 // recovery_legality_ms (legacy, floors to 0 under 1ms)
	recLegalityUs  atomic.Int64 // recovery_legality_us
	recClean       atomic.Int64 // recovery_clean gauge

	// Group commit: one observation per fsync, valued at how many
	// commits that sync made durable. count = fsyncs, sum = commits, so
	// sum/count is the commits-per-fsync amortization and count/sum the
	// fsyncs-per-commit cost gauge. Per-transaction mode records 1s.
	batchSizes histogram

	// Checker timings, split by the execution path taken.
	checkSeqCount atomic.Int64
	checkSeqNS    atomic.Int64
	checkParCount atomic.Int64
	checkParNS    atomic.Int64
	checkWorkers  atomic.Int64 // workers of the most recent parallel check

	violations [nViolationKinds]atomic.Int64
	cmds       map[string]*cmdStats
}

func newMetrics() *Metrics {
	m := &Metrics{start: time.Now(), cmds: make(map[string]*cmdStats, len(protocolCommands))}
	for _, c := range protocolCommands {
		m.cmds[c] = &cmdStats{}
	}
	return m
}

// observeCommand records one handled protocol command. The cmds map is
// fixed at construction, so concurrent lookups are safe.
func (m *Metrics) observeCommand(cmd string, d time.Duration, failed bool) {
	st, ok := m.cmds[cmd]
	if !ok {
		st = m.cmds["UNKNOWN"]
	}
	st.hist.observe(d)
	if failed {
		st.errs.Add(1)
	}
}

// noteRecovery publishes the startup recovery pass's outcome. Called by
// OpenJournal with whatever report recovery produced, even on refusal.
func (m *Metrics) noteRecovery(r *RecoveryReport) {
	if r == nil {
		return
	}
	m.recRan.Store(1)
	m.recScanned.Store(int64(r.RecordsScanned + r.LegacyRecords))
	m.recReplayed.Store(int64(r.RecordsReplayed))
	m.recTrusted.Store(int64(r.RecordsTrusted))
	m.recTruncated.Store(int64(r.RecordsTruncated))
	m.recQuarantined.Store(int64(r.RecordsQuarantined))
	m.recLegalityMs.Store(r.LegalityMs)
	m.recLegalityUs.Store(r.LegalityUs)
	if r.Clean {
		m.recClean.Store(1)
	} else {
		m.recClean.Store(0)
	}
}

// noteBatch records one journal fsync that made n commits durable.
func (m *Metrics) noteBatch(n int) {
	m.batchSizes.observeValue(int64(n))
}

// Fsyncs returns how many journal syncs have run (one per batch).
func (m *Metrics) Fsyncs() int64 { return m.batchSizes.count.Load() }

// BatchedCommits returns how many commits those syncs made durable.
func (m *Metrics) BatchedCommits() int64 { return m.batchSizes.sumUS.Load() }

// noteCheckTiming is installed as the shared Checker's OnTiming hook.
func (m *Metrics) noteCheckTiming(t core.CheckTiming) {
	if t.Parallel {
		m.checkParCount.Add(1)
		m.checkParNS.Add(int64(t.Duration))
		m.checkWorkers.Store(int64(t.Workers))
	} else {
		m.checkSeqCount.Add(1)
		m.checkSeqNS.Add(int64(t.Duration))
	}
}

// noteViolations bumps the per-kind counters for every violation in a
// report surfaced to a client (an ILLEGAL commit or CHECK).
func (m *Metrics) noteViolations(r *core.Report) {
	if r == nil {
		return
	}
	for _, v := range r.Violations {
		if k := int(v.Kind); k >= 0 && k < nViolationKinds {
			m.violations[k].Add(1)
		}
	}
}

// lines renders the METRICS protocol response body in a fixed order:
// aggregate gauges first, then the node's replication role and state,
// then checker timings, then the non-zero commands alphabetically, then
// the non-zero violation kinds in enum order. The ordering is part of
// the surface — TestMetricsLineOrder pins it — so scraping scripts can
// rely on it.
func (m *Metrics) lines(journalOn bool, readOnly string, rs replStatus) []string {
	var out []string
	out = append(out,
		fmt.Sprintf("uptime_ms: %d", time.Since(m.start).Milliseconds()),
		fmt.Sprintf("connections: active=%d total=%d throttled=%d",
			m.ConnsActive.Load(), m.ConnsTotal.Load(), m.ConnsThrottled.Load()),
		fmt.Sprintf("sessions: idle_timeouts=%d lines_too_long=%d scan_errors=%d accept_retries=%d",
			m.IdleTimeouts.Load(), m.LinesTooLong.Load(), m.ScanErrors.Load(), m.AcceptRetries.Load()),
		fmt.Sprintf("transactions: active=%d committed=%d illegal=%d errors=%d",
			m.TxActive.Load(), m.TxCommitted.Load(), m.TxIllegal.Load(), m.TxErrors.Load()),
	)
	if idx, sc := m.SearchIndexed.Load(), m.SearchScanned.Load(); idx+sc > 0 {
		out = append(out, fmt.Sprintf("search: indexed=%d scanned=%d", idx, sc))
	}
	if journalOn {
		out = append(out, fmt.Sprintf("journal: bytes=%d rotations=%d errors=%d",
			m.JournalBytes.Load(), m.JournalRotations.Load(), m.JournalErrors.Load()))
		if fsyncs := m.batchSizes.count.Load(); fsyncs > 0 {
			commits := m.batchSizes.sumUS.Load()
			out = append(out, fmt.Sprintf(
				"group-commit: fsyncs=%d commits=%d commits_per_fsync=%.2f fsyncs_per_commit=%.2f max_batch=%d p99_batch=%d",
				fsyncs, commits, float64(commits)/float64(fsyncs), float64(fsyncs)/float64(commits),
				m.batchSizes.maxUS.Load(), m.batchSizes.quantile(0.99)))
		}
	} else {
		out = append(out, "journal: off")
	}
	if m.recRan.Load() == 1 {
		out = append(out, fmt.Sprintf(
			"recovery: journal_records_scanned=%d journal_records_replayed=%d journal_records_trusted=%d journal_records_truncated=%d journal_records_quarantined=%d recovery_legality_ms=%d recovery_legality_us=%d recovery_clean=%d",
			m.recScanned.Load(), m.recReplayed.Load(), m.recTrusted.Load(),
			m.recTruncated.Load(), m.recQuarantined.Load(),
			m.recLegalityMs.Load(), m.recLegalityUs.Load(), m.recClean.Load()))
	}
	if readOnly != "" {
		out = append(out, "read_only: "+readOnly)
	}
	out = append(out, "role: "+rs.role)
	out = append(out, fmt.Sprintf("epoch: %d", rs.epoch))
	if fe, er := m.FencingEvents.Load(), m.EpochRejects.Load(); fe+er > 0 {
		out = append(out, fmt.Sprintf("fencing: events=%d epoch_rejects=%d", fe, er))
	}
	if rs.hub != nil {
		degraded := 0
		if rs.hub.Degraded {
			degraded = 1
		}
		out = append(out, fmt.Sprintf(
			"replication: mode=%s replicas=%d last_shipped=%d acked_seq=%d semisync_degraded=%d epoch=%d",
			rs.hub.Mode, rs.hub.Replicas, rs.hub.LastShipped, rs.hub.AckedSeq, degraded, rs.hub.Epoch))
	}
	if rs.replica {
		var lag uint64
		if rs.primarySeq > rs.localSeq {
			lag = rs.primarySeq - rs.localSeq
		}
		out = append(out, fmt.Sprintf(
			"replica: primary_seq=%d applied_seq=%d lag=%d applied=%d",
			rs.primarySeq, rs.localSeq, lag, rs.applied))
	}
	seqN, seqNS := m.checkSeqCount.Load(), m.checkSeqNS.Load()
	parN, parNS := m.checkParCount.Load(), m.checkParNS.Load()
	out = append(out,
		fmt.Sprintf("checker sequential: count=%d total_us=%d avg_us=%d",
			seqN, seqNS/1000, avgUS(seqNS, seqN)),
		fmt.Sprintf("checker parallel: count=%d workers=%d total_us=%d avg_us=%d",
			parN, m.checkWorkers.Load(), parNS/1000, avgUS(parNS, parN)),
	)
	names := make([]string, 0, len(m.cmds))
	for name, st := range m.cmds {
		if st.hist.count.Load() > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		st := m.cmds[name]
		out = append(out, fmt.Sprintf(
			"command %s: count=%d errors=%d avg_us=%d p50_us=%d p99_us=%d max_us=%d",
			name, st.hist.count.Load(), st.errs.Load(), st.hist.avgUS(),
			st.hist.quantile(0.50), st.hist.quantile(0.99), st.hist.maxUS.Load()))
	}
	for k := 0; k < nViolationKinds; k++ {
		if n := m.violations[k].Load(); n > 0 {
			out = append(out, fmt.Sprintf("violations %s: %d", core.ViolationKind(k), n))
		}
	}
	return out
}

func avgUS(ns, n int64) int64 {
	if n == 0 {
		return 0
	}
	return ns / n / 1000
}

// snapshot returns the metrics as nested JSON-marshalable maps, the shape
// served by cmd/bsd's expvar endpoint.
func (m *Metrics) snapshot(journalOn bool, readOnly string, rs replStatus) map[string]any {
	out := map[string]any{
		"uptime_ms": time.Since(m.start).Milliseconds(),
		"connections": map[string]int64{
			"active":         m.ConnsActive.Load(),
			"total":          m.ConnsTotal.Load(),
			"throttled":      m.ConnsThrottled.Load(),
			"idle_timeouts":  m.IdleTimeouts.Load(),
			"lines_too_long": m.LinesTooLong.Load(),
			"scan_errors":    m.ScanErrors.Load(),
			"accept_retries": m.AcceptRetries.Load(),
		},
		"transactions": map[string]int64{
			"active":    m.TxActive.Load(),
			"committed": m.TxCommitted.Load(),
			"illegal":   m.TxIllegal.Load(),
			"errors":    m.TxErrors.Load(),
		},
		"search": map[string]int64{
			"indexed": m.SearchIndexed.Load(),
			"scanned": m.SearchScanned.Load(),
		},
		"checker": map[string]int64{
			"sequential_count":    m.checkSeqCount.Load(),
			"sequential_total_us": m.checkSeqNS.Load() / 1000,
			"parallel_count":      m.checkParCount.Load(),
			"parallel_total_us":   m.checkParNS.Load() / 1000,
			"parallel_workers":    m.checkWorkers.Load(),
		},
	}
	if journalOn {
		jm := map[string]any{
			"bytes":     m.JournalBytes.Load(),
			"rotations": m.JournalRotations.Load(),
			"errors":    m.JournalErrors.Load(),
		}
		if fsyncs := m.batchSizes.count.Load(); fsyncs > 0 {
			commits := m.batchSizes.sumUS.Load()
			jm["fsyncs"] = fsyncs
			jm["batched_commits"] = commits
			jm["commits_per_fsync"] = float64(commits) / float64(fsyncs)
			jm["fsyncs_per_commit"] = float64(fsyncs) / float64(commits)
			jm["max_batch"] = m.batchSizes.maxUS.Load()
			jm["p99_batch"] = m.batchSizes.quantile(0.99)
		}
		out["journal"] = jm
	}
	if m.recRan.Load() == 1 {
		out["recovery"] = map[string]int64{
			"journal_records_scanned":     m.recScanned.Load(),
			"journal_records_replayed":    m.recReplayed.Load(),
			"journal_records_trusted":     m.recTrusted.Load(),
			"journal_records_truncated":   m.recTruncated.Load(),
			"journal_records_quarantined": m.recQuarantined.Load(),
			"recovery_legality_ms":        m.recLegalityMs.Load(),
			"recovery_legality_us":        m.recLegalityUs.Load(),
			"recovery_clean":              m.recClean.Load(),
		}
	}
	if readOnly != "" {
		out["read_only"] = readOnly
	}
	out["role"] = rs.role
	out["epoch"] = rs.epoch
	if fe, er := m.FencingEvents.Load(), m.EpochRejects.Load(); fe+er > 0 {
		out["fencing"] = map[string]int64{
			"events":        fe,
			"epoch_rejects": er,
		}
	}
	if rs.hub != nil {
		out["replication"] = map[string]any{
			"mode":              rs.hub.Mode.String(),
			"replicas":          rs.hub.Replicas,
			"last_shipped":      rs.hub.LastShipped,
			"acked_seq":         rs.hub.AckedSeq,
			"semisync_degraded": rs.hub.Degraded,
			"epoch":             rs.hub.Epoch,
		}
	}
	if rs.replica {
		var lag uint64
		if rs.primarySeq > rs.localSeq {
			lag = rs.primarySeq - rs.localSeq
		}
		out["replica"] = map[string]uint64{
			"primary_seq": rs.primarySeq,
			"applied_seq": rs.localSeq,
			"lag":         lag,
			"applied":     uint64(rs.applied),
		}
	}
	cmds := make(map[string]any)
	for name, st := range m.cmds {
		if n := st.hist.count.Load(); n > 0 {
			cmds[name] = map[string]int64{
				"count":  n,
				"errors": st.errs.Load(),
				"avg_us": st.hist.avgUS(),
				"p50_us": st.hist.quantile(0.50),
				"p99_us": st.hist.quantile(0.99),
				"max_us": st.hist.maxUS.Load(),
			}
		}
	}
	out["commands"] = cmds
	viol := make(map[string]int64)
	for k := 0; k < nViolationKinds; k++ {
		if n := m.violations[k].Load(); n > 0 {
			viol[core.ViolationKind(k).String()] = n
		}
	}
	out["violations"] = viol
	return out
}

package server

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"boundschema/internal/workload"
)

// startServerWithLimits is startServer with connection-lifecycle limits.
func startServerWithLimits(t *testing.T, l Limits) (*Server, string) {
	t.Helper()
	s := workload.WhitePagesSchema()
	srv, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLimits(l)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func dialClient(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{t: t, conn: conn, r: bufio.NewReader(conn)}
}

// TestServerLineTooLong: a line over the 1 MiB scanner cap must produce
// "ERR line too long", not a silently vanished session.
func TestServerLineTooLong(t *testing.T) {
	srv, addr := startServerWithLimits(t, Limits{DrainTimeout: 200 * time.Millisecond})
	c := dialClient(t, addr)

	big := strings.Repeat("A", maxLineBytes+64*1024)
	if _, err := c.conn.Write([]byte(big + "\n")); err != nil {
		t.Fatalf("write oversized line: %v", err)
	}
	// Half-close so the server's lingering drain sees EOF promptly.
	c.conn.(*net.TCPConn).CloseWrite()
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("no reply to oversized line: %v", err)
	}
	if !strings.HasPrefix(line, "ERR ") || !strings.Contains(line, "line too long") {
		t.Fatalf("oversized line reply = %q", line)
	}
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Errorf("session not closed after oversized line")
	}
	if n := srv.metrics.LinesTooLong.Load(); n != 1 {
		t.Errorf("lines_too_long = %d, want 1", n)
	}
}

// TestServerIdleTimeout: a session that sends nothing is cut with an
// explicit error once the idle deadline passes.
func TestServerIdleTimeout(t *testing.T) {
	srv, addr := startServerWithLimits(t, Limits{
		IdleTimeout:  80 * time.Millisecond,
		DrainTimeout: 200 * time.Millisecond,
	})
	c := dialClient(t, addr)

	// A command inside the window works and re-arms the deadline.
	c.expectOK("STAT")

	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("no idle-timeout reply: %v", err)
	}
	if !strings.HasPrefix(line, "ERR ") || !strings.Contains(line, "idle timeout") {
		t.Fatalf("idle-timeout reply = %q", line)
	}
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Errorf("session not closed after idle timeout")
	}
	if n := srv.metrics.IdleTimeouts.Load(); n != 1 {
		t.Errorf("idle_timeouts = %d, want 1", n)
	}
}

// TestServerReadTimeout: a peer trickling a partial line forever is cut
// by the per-read deadline even without an idle timeout.
func TestServerReadTimeout(t *testing.T) {
	_, addr := startServerWithLimits(t, Limits{
		ReadTimeout:  80 * time.Millisecond,
		DrainTimeout: 200 * time.Millisecond,
	})
	c := dialClient(t, addr)
	if _, err := c.conn.Write([]byte("SEA")); err != nil { // no newline
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("no read-timeout reply: %v", err)
	}
	if !strings.HasPrefix(line, "ERR ") {
		t.Fatalf("read-timeout reply = %q", line)
	}
}

// TestServerMaxConnsBackpressure: with MaxConns=1 a second session is not
// served until the first ends — its commands queue rather than error.
func TestServerMaxConnsBackpressure(t *testing.T) {
	srv, addr := startServerWithLimits(t, Limits{
		MaxConns:     1,
		DrainTimeout: 200 * time.Millisecond,
	})
	c1 := dialClient(t, addr)
	c1.expectOK("STAT") // c1's session now owns the only slot

	c2 := dialClient(t, addr)
	c2.send("STAT")
	// The command must NOT be answered while c1 holds the slot.
	c2.conn.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := c2.r.ReadString('\n'); err == nil {
		t.Fatalf("second session served beyond MaxConns=1")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("unexpected read error while throttled: %v", err)
	}

	// Releasing c1 lets c2's queued command through.
	c1.expectOK("QUIT")
	c2.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		line, err := c2.r.ReadString('\n')
		if err != nil {
			t.Fatalf("throttled session never served after slot freed: %v", err)
		}
		if strings.TrimRight(line, "\n") == "OK" {
			break
		}
	}
	if n := srv.metrics.ConnsThrottled.Load(); n != 1 {
		t.Errorf("throttled = %d, want 1", n)
	}
}

// TestNextAcceptDelay: the accept backoff doubles from 5ms and caps at 1s,
// as in net/http.Server.Serve.
func TestNextAcceptDelay(t *testing.T) {
	want := []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		40 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond,
		320 * time.Millisecond, 640 * time.Millisecond, time.Second, time.Second,
	}
	d := time.Duration(0)
	for i, w := range want {
		d = nextAcceptDelay(d)
		if d != w {
			t.Fatalf("step %d: delay = %v, want %v", i, d, w)
		}
	}
}

// TestServerCloseDrainsBlockedSessions: Close must return within roughly
// the drain timeout even when clients sit idle, and tell them why.
func TestServerCloseDrainsBlockedSessions(t *testing.T) {
	srv, addr := startServerWithLimits(t, Limits{DrainTimeout: 100 * time.Millisecond})
	c := dialClient(t, addr)
	c.expectOK("STAT") // session is up and now blocked reading

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("Close took %v with an idle client", took)
	}
	c.conn.SetReadDeadline(time.Now().Add(time.Second))
	line, err := c.r.ReadString('\n')
	if err == nil && !strings.Contains(line, "shutting down") {
		t.Errorf("drain reply = %q", line)
	}
}

package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"boundschema/internal/ldif"
	"boundschema/internal/repl"
	"boundschema/internal/txn"
	"boundschema/internal/vfs"
)

// This file wires streaming journal replication (internal/repl) into the
// server. A primary runs a dedicated replication listener: each replica
// connection is handed its catch-up — the journal tail when the on-disk
// log covers the replica's HELLO sequence, a full snapshot otherwise —
// at a quiescent point of the commit pipeline, then subscribes to the
// live stream of verbatim journal segments. Commits ship their records
// right after the local fsync; in semi-sync mode the OK is additionally
// gated on an ACK from at least one replica (repl.Hub owns that
// contract, including the degrade-to-async escape hatch).
//
// A replica dials the primary and applies the stream through the same
// machinery recovery uses: every segment is CRC- and continuity-checked
// on receipt, decoded, applied transaction-atomically under the
// incremental legality tests, and appended verbatim to the local journal
// (write + fsync) before it is acknowledged — so a replica restart
// recovers through the ordinary journal pipeline, and the primary's and
// replica's logs are byte-identical. A replicated transaction that fails
// locally is divergence: the replica degrades to read-only and stops
// retrying rather than serve state that disagrees with its primary.
//
// PROMOTE turns a caught-up replica writable: the streaming loop is
// stopped, the journal is re-verified end to end (checksums, sequence
// continuity, full legality), the replication epoch is bumped and made
// durable, and only then does the role flip.
//
// Epochs fence the old primary out after a failover. Every handshake,
// ACK, ping and shipped segment carries the shipper's epoch; a primary
// that observes a higher epoch anywhere fences itself read-only, and a
// replica refuses to apply a stream from a lower-epoch primary
// (repl.ErrStalePrimary), answering with a poison ACK that carries its
// own epoch so the stale primary learns why. During a full partition
// both sides may briefly accept writes (fencing is reactive, not a
// lease); the guarantee is that the partitioned minority fences on
// first contact with any higher-epoch artifact once connectivity
// returns, and semi-sync callers can bound the acked-write loss window
// to zero by promoting the most-advanced replica.

// Role is the server's replication role.
type Role int32

const (
	// RolePrimary (the zero value) accepts writes; with a replication
	// listener it also ships journal segments to replicas.
	RolePrimary Role = iota
	// RoleReplica applies the primary's stream and serves reads only.
	RoleReplica
)

func (r Role) String() string {
	if r == RoleReplica {
		return "replica"
	}
	return "primary"
}

// Role returns the server's current replication role.
func (s *Server) Role() Role { return Role(s.role.Load()) }

// roleString is the role as STAT and METRICS report it: a server that
// degraded to read-only (journal failure, divergence) says so instead
// of claiming a healthy role, and a primary that fenced itself after
// observing a newer epoch says "fenced" so failover tooling can tell
// the two apart.
func (s *Server) roleString() string {
	s.mu.RLock()
	ro := s.readOnly
	s.mu.RUnlock()
	if strings.HasPrefix(ro, fencedPrefix) {
		return "fenced"
	}
	if ro != "" {
		return "read-only degraded"
	}
	return s.Role().String()
}

// fencedPrefix starts the read-only reason of a fenced ex-primary; the
// rest of the reason is parseable evidence (observed epoch, source).
const fencedPrefix = "fenced:"

// fence flips this primary read-only after it observed evidence of a
// higher replication epoch — a replica HELLO, an ACK, or a rejected
// ship all mean a PROMOTE happened elsewhere and this node lost any
// claim to the write role. Fencing is sticky: only an operator restart
// (which recovers the durable epoch) or explicit intervention clears
// it. No-op if the server is already read-only for any reason.
func (s *Server) fence(observed uint64, source string) {
	s.mu.Lock()
	if s.readOnly == "" {
		s.readOnly = fmt.Sprintf("%s observed epoch %d > local epoch %d via %s; a newer primary exists",
			fencedPrefix, observed, s.epoch.Load(), source)
		s.metrics.FencingEvents.Add(1)
		s.logf("repl: %s", s.readOnly)
	}
	s.mu.Unlock()
}

// writeRedirect returns the rejection message for write traffic on a
// replica ("" on a primary): replicas serve reads and point writers at
// the primary. The advertised address is the primary's client protocol
// address when the operator provided one (SetPrimaryClientAddr / bsd
// -primary-addr); otherwise the replication address is the only thing
// the replica knows and redirecting clients must map it themselves.
func (s *Server) writeRedirect() string {
	if s.Role() != RoleReplica {
		return ""
	}
	addr := s.primaryAddr
	if p := s.primaryClientAddr.Load(); p != nil && *p != "" {
		addr = *p
	}
	return fmt.Sprintf("read-only replica: writes go to the primary (redirect primary=%s)", addr)
}

// SetPrimaryClientAddr records the primary's client protocol address so
// write redirects advertise a port that actually speaks the client
// protocol (the replication address a replica streams from does not).
// Safe to change while serving — failover managers update it after a
// PROMOTE.
func (s *Server) SetPrimaryClientAddr(addr string) {
	s.primaryClientAddr.Store(&addr)
}

// DisconnectReplication force-closes a replica's streaming connection.
// The streaming loop reconnects with backoff and re-runs the HELLO
// handshake, so this is safe at any point; it exists for chaos harnesses
// that drop replication links under load. No-op on a primary.
func (s *Server) DisconnectReplication() {
	s.closeReplConn()
}

// SetReplicationMode selects the primary's durability contract for
// COMMIT (async or semi-sync; see repl.Mode). Call before ListenRepl.
func (s *Server) SetReplicationMode(m repl.Mode) { s.replMode = m }

// SetSemiSyncTimeout bounds how long a semi-sync commit waits for a
// replica ACK before the primary degrades to async (0 = the
// repl.DefaultAckTimeout). Call before ListenRepl.
func (s *Server) SetSemiSyncTimeout(d time.Duration) { s.replAckTO = d }

// ReplStatus exposes the hub's view of replication (primaries only;
// zero value otherwise) for tests and the bsbench drivers.
func (s *Server) ReplStatus() repl.HubStatus {
	if hub := s.replHub.Load(); hub != nil {
		return hub.Status()
	}
	return repl.HubStatus{}
}

// ReplicaSeqs reports a replica's replication watermarks: the highest
// sequence applied locally and the primary's durable sequence as last
// observed from the stream. Lag is primary-local (0 when caught up).
func (s *Server) ReplicaSeqs() (local, primary uint64) {
	s.mu.RLock()
	local = s.commitSeq
	s.mu.RUnlock()
	return local, s.primarySeq.Load()
}

// replStatus feeds the role and replication lines of METRICS and the
// expvar snapshot. Collected off s.mu by replMetrics.
type replStatus struct {
	role       string
	epoch      uint64
	hub        *repl.HubStatus // primary with a replication listener
	replica    bool
	primarySeq uint64
	localSeq   uint64
	applied    int64
}

func (s *Server) replMetrics() replStatus {
	rs := replStatus{role: s.roleString(), epoch: s.epoch.Load()}
	if hub := s.replHub.Load(); hub != nil {
		st := hub.Status()
		rs.hub = &st
	}
	if s.Role() == RoleReplica {
		rs.replica = true
		rs.localSeq, rs.primarySeq = s.ReplicaSeqs()
		rs.applied = s.replApplied.Load()
	}
	return rs
}

// ListenRepl starts the primary's replication listener on addr and
// returns the bound address. Requires an open journal — the stream IS
// the journal. Safe to call once, before or while serving clients.
func (s *Server) ListenRepl(addr string) (string, error) {
	s.mu.RLock()
	j := s.journal
	s.mu.RUnlock()
	if j == nil {
		return "", errors.New("server: replication requires a journal (OpenJournal first)")
	}
	hub := repl.NewHub(s.replMode, s.replAckTO, 0, s.logf)
	hub.SetEpoch(s.epoch.Load())
	s.replHub.Store(hub)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		hub.Close()
		s.replHub.Store(nil)
		return "", err
	}
	if s.replListenWrap != nil {
		ln = s.replListenWrap(ln)
	}
	s.replLn = ln
	s.wg.Add(1)
	go s.replAcceptLoop(ln, hub)
	return ln.Addr().String(), nil
}

func (s *Server) replAcceptLoop(ln net.Listener, hub *repl.Hub) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			s.logf("repl: accept: %v", err)
			return
		}
		s.connsMu.Lock()
		s.conns[conn] = struct{}{}
		s.connsMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.connsMu.Lock()
				delete(s.conns, conn)
				s.connsMu.Unlock()
				conn.Close()
			}()
			s.handleReplConn(conn, hub)
		}()
	}
}

// handleReplConn serves one replica: HELLO, catch-up decision at a
// quiescent point, then a read loop turning the replica's ACK lines
// into hub acknowledgements. Segment writes happen on the hub's
// per-subscriber goroutine, so a slow replica never blocks commits.
func (s *Server) handleReplConn(conn net.Conn, hub *repl.Hub) {
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	br := bufio.NewReaderSize(conn, 16*1024)
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	last, repEpoch, err := repl.ParseHello(strings.TrimRight(line, "\r\n"))
	if err != nil {
		io.WriteString(conn, repl.ErrLine(err.Error()))
		return
	}
	if local := s.epoch.Load(); repEpoch > local {
		// The replica lived through a PROMOTE this node missed: it must
		// not follow us, and we must stop taking writes.
		s.fence(repEpoch, fmt.Sprintf("HELLO from replica %s", conn.RemoteAddr()))
		io.WriteString(conn, repl.ErrLine(fmt.Sprintf(
			"stale epoch: this primary is at epoch %d, replica announced epoch %d", local, repEpoch)))
		return
	}
	conn.SetReadDeadline(time.Time{})
	var sub *repl.Sub
	err = s.atQuiescent(func() error {
		first, ferr := s.replCatchup(last, repEpoch)
		if ferr != nil {
			return ferr
		}
		// Subscribe inside the quiescent point: the catch-up bytes were
		// captured at exactly s.commitSeq, and the subscriber queue
		// preserves order, so no segment can fall between catch-up and
		// the live stream.
		sub = hub.Subscribe(conn.RemoteAddr().String(), conn, func() { conn.Close() }, first...)
		return nil
	})
	if err != nil {
		s.logf("repl: refusing replica %s: %v", conn.RemoteAddr(), err)
		io.WriteString(conn, repl.ErrLine(err.Error()))
		return
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			break
		}
		seq, ackEpoch, aerr := repl.ParseAck(strings.TrimRight(line, "\r\n"))
		if aerr != nil {
			s.logf("repl: replica %s: %v", conn.RemoteAddr(), aerr)
			break
		}
		if ackEpoch > s.epoch.Load() {
			// A poison ACK: the replica refused our stream because it has
			// seen a newer primary. Fence and drop the session.
			s.fence(ackEpoch, fmt.Sprintf("ACK from replica %s", conn.RemoteAddr()))
			break
		}
		hub.Ack(sub, seq)
	}
	hub.Unsubscribe(sub)
}

// atQuiescent runs fn under s.mu at a point where the in-memory
// instance equals the durable journal: directly under the lock in
// per-transaction mode, at the committer's quiescent point in
// group-commit mode.
func (s *Server) atQuiescent(fn func() error) error {
	s.mu.Lock()
	c := s.committer
	if c == nil {
		defer s.mu.Unlock()
		return fn()
	}
	done := c.requestQuiesce(fn)
	s.mu.Unlock()
	return <-done
}

// maxTailBytes bounds a journal-tail catch-up; a replica further behind
// than this bootstraps from a snapshot instead.
const maxTailBytes = 256 << 20

// replCatchup builds the catch-up bytes for a replica that holds
// everything through last at epoch repEpoch: a TAIL header plus the
// verbatim journal segments above last when the replica is on this
// primary's epoch and the on-disk journal covers the range cleanly, or
// a SNAPSHOT header plus the encoded instance. A replica announcing a
// LOWER epoch rejoined after missing at least one failover — its
// journal may hold a history this primary's epoch rewrote, so it never
// tails: it bootstraps from a snapshot, which resets its journal and
// adopts the current epoch. (repEpoch 0 is a pre-epoch client and is
// trusted like an equal epoch.) Called under s.mu at a quiescent point.
func (s *Server) replCatchup(last, repEpoch uint64) ([][]byte, error) {
	cur := s.commitSeq
	epoch := s.epoch.Load()
	if repEpoch == epoch || repEpoch == 0 {
		if last > cur {
			return nil, fmt.Errorf("replica is ahead of this primary (replica seq=%d, primary seq=%d): refusing to serve a diverged history", last, cur)
		}
		if last == cur {
			return [][]byte{[]byte(repl.TailHeader(cur+1, 0, epoch))}, nil
		}
		if tail, ok := s.journalTail(last, cur); ok {
			return [][]byte{[]byte(repl.TailHeader(last+1, int(cur-last), epoch)), tail}, nil
		}
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s%d\n", snapshotSeqPrefix, cur)
	if epoch > 0 {
		// The header rides inside the blob, so a replica restart recovers
		// the adopted epoch from its local snapshot sidecar.
		fmt.Fprintf(&buf, "%s%d\n", snapshotEpochPrefix, epoch)
	}
	if err := ldif.WriteDirectory(&buf, s.dir); err != nil {
		return nil, fmt.Errorf("encoding snapshot: %v", err)
	}
	return [][]byte{[]byte(repl.SnapshotHeader(cur, buf.Len(), epoch)), buf.Bytes()}, nil
}

// journalTail reconstructs the verbatim segment bytes for sequences
// (last, cur] from the on-disk journal, reporting ok=false when the
// journal does not cleanly cover that range (rotated past it, legacy
// records, torn tail, corruption) — the caller falls back to a
// snapshot. Called under s.mu at a quiescent point.
func (s *Server) journalTail(last, cur uint64) ([]byte, bool) {
	data, err := s.fs.ReadFile(s.journal.path)
	if err != nil {
		return nil, false
	}
	sr := scanJournal(data)
	if sr.corrupt || sr.headerless || sr.legacy > 0 || len(sr.prefix) > 0 || sr.tornBytes > 0 {
		return nil, false
	}
	if sr.firstSeq == 0 || sr.firstSeq > last+1 || sr.lastSeq != cur {
		return nil, false
	}
	var buf bytes.Buffer
	for _, jt := range sr.txns {
		if jt.seq <= last {
			continue
		}
		buf.Write(repl.RawSegment(jt.seq, jt.payload, jt.epoch))
		if buf.Len() > maxTailBytes {
			return nil, false
		}
	}
	return buf.Bytes(), true
}

// shipSegment hands one durable journal record to the replication hub.
// Callers must hold the ordering point that assigned seq (s.mu on the
// per-transaction path, the committer goroutine in group-commit mode)
// so segments ship in journal order. Non-blocking.
func (s *Server) shipSegment(seq uint64, raw []byte) {
	if hub := s.replHub.Load(); hub != nil {
		hub.Ship(seq, raw)
	}
}

// replWaitDurable blocks until the replication durability contract for
// seq is met — an immediate no-op unless the hub runs semi-sync. Called
// off s.mu by the per-transaction commit path.
func (s *Server) replWaitDurable(seq uint64) {
	hub := s.replHub.Load()
	if hub == nil {
		return
	}
	done := make(chan error, 1)
	hub.Gate(seq, done)
	<-done
}

// errDiverged marks a replicated transaction this replica cannot hold:
// an apply failure or a legality violation means the replica's state
// disagrees with its primary's, so it degrades to read-only and the
// streaming loop stops retrying.
var errDiverged = errors.New("replica diverged from primary")

// StartReplica puts the server in replica mode and starts the streaming
// loop against the primary's replication address. Requires an open
// journal. The committer (if the journal started one) is stopped:
// replicas apply inline under the lock, so journal I/O has exactly one
// owner. Call before Listen.
func (s *Server) StartReplica(primaryAddr string) error {
	s.mu.Lock()
	if s.journal == nil {
		s.mu.Unlock()
		return errors.New("server: replica mode requires a journal (OpenJournal first)")
	}
	c := s.committer
	s.committer = nil
	s.mu.Unlock()
	if c != nil {
		c.stop()
	}
	s.primaryAddr = primaryAddr
	s.promoteCh = make(chan struct{})
	s.replicaDone = make(chan struct{})
	s.role.Store(int32(RoleReplica))
	go s.replicaLoop(primaryAddr)
	return nil
}

// replicaStopped reports whether the streaming loop should exit:
// server shutdown or promotion.
func (s *Server) replicaStopped() bool {
	select {
	case <-s.closed:
		return true
	case <-s.promoteCh:
		return true
	default:
		return false
	}
}

func (s *Server) setReplConn(c net.Conn) {
	s.replConnMu.Lock()
	s.replConn = c
	s.replConnMu.Unlock()
}

func (s *Server) closeReplConn() {
	s.replConnMu.Lock()
	if s.replConn != nil {
		s.replConn.Close()
	}
	s.replConnMu.Unlock()
}

// replicaLoop dials the primary and streams until shutdown, promotion,
// or divergence, reconnecting with jittered backoff on transient
// failures. A reconnect re-runs the HELLO handshake, which heals
// sequence gaps: the replica re-announces what it durably holds and the
// primary re-derives the catch-up. A session refused for a stale epoch
// (the dialed primary is older than this replica) is NOT divergence:
// the loop keeps retrying so a failover manager can repoint the address
// or restart the fenced node.
func (s *Server) replicaLoop(addr string) {
	defer close(s.replicaDone)
	dial := s.dialer
	if dial == nil {
		dial = func(a string, to time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", a, to)
		}
	}
	backoff := 100 * time.Millisecond
	for {
		if s.replicaStopped() {
			return
		}
		conn, err := dial(addr, 2*time.Second)
		if err != nil {
			d := repl.JitterBackoff(backoff)
			s.logf("repl: dial %s: %v; retrying in %v", addr, err, d)
			if !s.replicaSleep(d) {
				return
			}
			backoff = repl.NextBackoff(backoff, 3*time.Second)
			continue
		}
		s.setReplConn(conn)
		// Re-check after registering the conn: closeReplConn only closes
		// the connection it can see, and shutdown/promotion may have run
		// between the dial and setReplConn. The stop signal is always
		// closed before closeReplConn, so one of the two orders holds: the
		// closer saw this conn, or this check sees the stop.
		if s.replicaStopped() {
			s.setReplConn(nil)
			conn.Close()
			return
		}
		err = repl.Run(conn, replicaTarget{s})
		s.setReplConn(nil)
		conn.Close()
		if errors.Is(err, errDiverged) {
			s.logf("repl: %v; replica is read-only degraded and will not reconnect", err)
			return
		}
		if s.replicaStopped() {
			return
		}
		if errors.Is(err, repl.ErrStalePrimary) {
			s.metrics.EpochRejects.Add(1)
		}
		d := repl.JitterBackoff(backoff)
		s.logf("repl: stream from %s ended: %v; reconnecting in %v", addr, err, d)
		if !s.replicaSleep(d) {
			return
		}
		backoff = repl.NextBackoff(backoff, 3*time.Second)
	}
}

// replicaSleep waits d, returning false if the loop should exit instead.
func (s *Server) replicaSleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.closed:
		return false
	case <-s.promoteCh:
		return false
	}
}

// replicaTarget adapts the Server to the repl.Target the streaming
// client drives.
type replicaTarget struct{ s *Server }

func (t replicaTarget) LastSeq() uint64 {
	t.s.mu.RLock()
	defer t.s.mu.RUnlock()
	return t.s.commitSeq
}

func (t replicaTarget) Epoch() uint64 { return t.s.epoch.Load() }

func (t replicaTarget) Bootstrap(seq, epoch uint64, snapshot []byte) error {
	return t.s.bootstrapFromPrimary(seq, epoch, snapshot)
}

func (t replicaTarget) Apply(seg repl.Segment) error {
	return t.s.applyReplicated(seg)
}

func (t replicaTarget) ObservePrimarySeq(seq uint64) {
	for {
		old := t.s.primarySeq.Load()
		if seq <= old || t.s.primarySeq.CompareAndSwap(old, seq) {
			return
		}
	}
}

// bootstrapFromPrimary installs a full snapshot from the primary: parse
// and legality-check the blob, write it durably as the local snapshot
// sidecar (tmp + fsync + rename + parent sync — the rotation recipe),
// truncate the journal, and swap the served instance. The snapshot-seq
// header inside the blob makes every crash window benign: recovery
// either finds the old state or the new snapshot, and journal records
// the snapshot already covers are skipped by seq on replay. A snapshot
// from a higher epoch also advances this replica's epoch — that is how
// a rejoining node adopts the regime of a promoted primary.
func (s *Server) bootstrapFromPrimary(seq, epoch uint64, snapshot []byte) error {
	d, err := ldif.ReadDirectory(bytes.NewReader(snapshot), s.schema.Registry)
	if err != nil {
		return fmt.Errorf("%w: primary snapshot undecodable: %v", errDiverged, err)
	}
	if r := s.checker.Check(d); !r.Legal() {
		return fmt.Errorf("%w: primary snapshot is illegal under this replica's schema: %d violation(s)", errDiverged, len(r.Violations))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly != "" {
		return fmt.Errorf("%w: server is read-only: %s", errDiverged, s.readOnly)
	}
	j := s.journal
	tmp := j.snapPath + ".tmp"
	f, err := s.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("repl: bootstrap snapshot: %v", err)
	}
	_, err = f.Write(snapshot)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = s.fs.Rename(tmp, j.snapPath)
	}
	if err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("repl: bootstrap snapshot: %v", err)
	}
	if err := s.fs.SyncDir(vfs.DirOf(j.snapPath)); err != nil {
		return fmt.Errorf("repl: bootstrap snapshot: parent directory sync: %v", err)
	}
	if err := j.f.Truncate(0); err != nil {
		j.failed = true
		s.readOnly = fmt.Sprintf("journal %s not truncated after bootstrap snapshot (%v)", j.path, err)
		s.logf("repl: %s", s.readOnly)
		return fmt.Errorf("repl: bootstrap: %v", err)
	}
	_ = j.f.Sync()
	j.size = 0
	s.dir = d
	s.dir.EnsureEncoded()
	s.reindex(d)
	s.commitSeq = seq
	if epoch > s.epoch.Load() {
		s.epoch.Store(epoch)
	}
	s.metrics.JournalBytes.Store(0)
	s.logf("repl: bootstrapped from primary snapshot through seq %d epoch %d (%d bytes)", seq, s.epoch.Load(), len(snapshot))
	return nil
}

// applyReplicated admits one verified segment from the primary: decode,
// check sequence continuity, apply under the incremental legality
// tests, append verbatim to the local journal (write + fsync). nil
// means the segment is locally durable — the caller acknowledges it.
// Local faults (journal I/O) roll the apply back and return a retryable
// error; a transaction this replica cannot legally hold is divergence.
func (s *Server) applyReplicated(seg repl.Segment) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly != "" {
		return fmt.Errorf("%w: server is read-only: %s", errDiverged, s.readOnly)
	}
	if seg.Seq <= s.commitSeq {
		return nil // duplicate after a reconnect: already durable here
	}
	if seg.Seq != s.commitSeq+1 {
		return fmt.Errorf("repl: sequence gap: local seq=%d, stream sent seq=%d", s.commitSeq, seg.Seq)
	}
	recs, err := ldif.NewReader(bytes.NewReader(seg.Payload)).ReadAll()
	if err != nil {
		s.degradeReplica(fmt.Sprintf("replicated segment seq=%d undecodable: %v", seg.Seq, err))
		return fmt.Errorf("%w: segment seq=%d undecodable: %v", errDiverged, seg.Seq, err)
	}
	tx, err := txn.FromRecords(recs, s.schema.Registry)
	if err != nil {
		s.degradeReplica(fmt.Sprintf("replicated segment seq=%d rejected: %v", seg.Seq, err))
		return fmt.Errorf("%w: segment seq=%d: %v", errDiverged, seg.Seq, err)
	}
	// The primary proved this transaction legal before acknowledging it,
	// and the stream layer verified its checksum and sequence, so it
	// applies trusted: CheckNone, no per-transaction Figure 5 re-checks —
	// O(|Δ|) per segment, which keeps catch-up linear in the stream
	// length. The divergence safety net stays: undecodable segments,
	// sequence gaps and apply failures (duplicate DN, missing parent)
	// degrade the replica to read-only, and PROMOTE re-proves the whole
	// instance legal before the role flips.
	_, undo, err := s.replApplier.ApplyWithUndo(s.dir, tx)
	s.dir.EnsureEncoded()
	if err != nil {
		s.degradeReplica(fmt.Sprintf("replicated transaction seq=%d failed to apply: %v", seg.Seq, err))
		return fmt.Errorf("%w: transaction seq=%d: %v", errDiverged, seg.Seq, err)
	}
	j := s.journal
	cw := &countingWriter{w: j.f}
	_, werr := cw.Write(seg.Raw)
	if werr == nil {
		werr = s.syncJournal()
	}
	if werr != nil {
		// Local fault, not divergence: roll back and let the reconnect
		// re-deliver the segment.
		s.metrics.JournalErrors.Add(1)
		if uerr := undo(); uerr != nil {
			s.degradeReplica(fmt.Sprintf("in-memory state diverged after failed journal write: %v (rollback: %v)", werr, uerr))
		}
		s.dir.EnsureEncoded()
		if terr := j.f.Truncate(j.size); terr != nil {
			j.failed = true
			s.degradeReplica(fmt.Sprintf("journal %s unrecoverable after failed write (%v; truncate: %v)", j.path, werr, terr))
		}
		return fmt.Errorf("repl: journal append seq=%d: %v", seg.Seq, werr)
	}
	s.commitSeq = seg.Seq
	j.size += cw.n
	s.metrics.JournalBytes.Store(j.size)
	s.metrics.noteBatch(1)
	s.replApplied.Add(1)
	if s.rotateBytes > 0 && j.size >= s.rotateBytes {
		if rerr := s.rotateJournal(); rerr != nil {
			s.metrics.JournalErrors.Add(1)
			s.logf("repl: journal rotation: %v", rerr)
		}
	}
	return nil
}

// degradeReplica records a replica fault and flips the server
// read-only. Called under s.mu.
func (s *Server) degradeReplica(reason string) {
	if s.readOnly == "" {
		s.readOnly = reason
	}
	s.logf("repl: %s", reason)
}

// Promote turns a caught-up replica into a writable primary: stop the
// streaming loop, re-verify the local journal end to end (checksums,
// sequence continuity, full legality), bump the replication epoch and
// make it durable, and only then flip the role. The epoch bump is the
// fencing token of the failover: every segment this node ships and
// every HELLO its replicas relay carries the new epoch, so the old
// primary fences itself on first contact with any of it — and because
// the epoch is persisted (in the rotated snapshot's header) before the
// role flips, a crash+restart of this node can never resurrect the old
// epoch. Promotion is refused if the epoch cannot be made durable.
// The verify lines are returned for the PROMOTE protocol reply. The
// promoted server does not start its own replication listener — that
// remains an operator decision (restart with -repl-addr, or point the
// other replicas at it after the failover).
func (s *Server) Promote() ([]string, error) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.Role() != RoleReplica {
		return nil, errors.New("not a replica")
	}
	s.mu.RLock()
	reason := s.readOnly
	s.mu.RUnlock()
	if reason != "" {
		return nil, fmt.Errorf("replica is read-only degraded: %s", reason)
	}
	select {
	case <-s.promoteCh:
	default:
		close(s.promoteCh)
	}
	s.closeReplConn()
	<-s.replicaDone
	// The loop may have degraded the replica on its way out.
	s.mu.RLock()
	reason = s.readOnly
	s.mu.RUnlock()
	if reason != "" {
		return nil, fmt.Errorf("replica is read-only degraded: %s", reason)
	}
	// Final verify: with the streaming loop stopped nothing appends, so
	// the read lock is a stable point.
	s.mu.RLock()
	lines, err := s.verifyNow()
	s.mu.RUnlock()
	if err != nil {
		return lines, fmt.Errorf("refusing promotion, journal verify failed: %v", err)
	}
	// Bump the epoch and persist it by rotating the journal (the
	// snapshot header carries it) BEFORE the role flips: a node that
	// accepts a write and then forgets its epoch across a restart would
	// re-split the brain. On failure the node stays a (non-streaming)
	// replica; PROMOTE can be retried and bumps again — epochs need
	// monotonicity, not density.
	newEpoch := s.epoch.Load() + 1
	s.mu.Lock()
	s.epoch.Store(newEpoch)
	s.dir.EnsureEncoded()
	rerr := s.rotateJournal()
	s.mu.Unlock()
	if rerr != nil {
		return lines, fmt.Errorf("refusing promotion, could not persist epoch %d: %v", newEpoch, rerr)
	}
	s.role.Store(int32(RolePrimary))
	s.mu.Lock()
	// Trusted replica apply bypasses count/key index maintenance (the
	// primary already proved every segment legal); rebuild them before
	// this node accepts its first write.
	s.dir.EnsureEncoded()
	s.reindex(s.dir)
	if s.groupCommit && s.journal != nil && s.committer == nil {
		s.startCommitter()
	}
	local := s.commitSeq
	s.mu.Unlock()
	s.logf("repl: promoted to primary at seq %d epoch %d", local, newEpoch)
	return lines, nil
}

// stopReplication tears the replication machinery down at Close: the
// hub (releasing any gated commits and dropping subscribers, whose
// onDrop closes their connections) and the replica streaming loop.
// Runs before the session drain so replication connections cannot hold
// Close open.
func (s *Server) stopReplication() {
	if s.replLn != nil {
		s.replLn.Close()
	}
	if hub := s.replHub.Load(); hub != nil {
		hub.Close()
	}
	if s.replicaDone != nil {
		s.closeReplConn()
		<-s.replicaDone
	}
}

package server

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/repl"
	"boundschema/internal/workload"
)

// These are the adversarial cases for trusted-record replay: journal
// records whose checksummed markers verify — so recovery applies them
// without per-transaction Figure 5 checks — but whose transactions no
// legitimate primary would have acknowledged. The trusted path's safety
// argument is the terminal full legality proof; these tests pin that a
// doctored journal cannot buy its way past it with valid CRCs.

// netInstance is a minimal legal netpolicy instance whose DNs the
// doctored records below can target deterministically.
func netInstance(t *testing.T, s *core.Schema) *dirtree.Directory {
	t.Helper()
	d := dirtree.New(s.Registry)
	dom, err := d.AddRoot("o=net", "adminDomain", "top")
	if err != nil {
		t.Fatal(err)
	}
	dom.AddValue("name", dirtree.String("net"))
	return d
}

// doctoredJournal renders hand-crafted add records with genuine
// checksummed markers — exactly what a tampered-but-CRC-consistent
// journal looks like.
func doctoredJournal(payloads ...string) []byte {
	var buf bytes.Buffer
	for i, p := range payloads {
		buf.WriteString(p)
		buf.WriteString(repl.MarkerLine(uint64(i+1), []byte(p), 0))
	}
	return buf.Bytes()
}

func hostRecord(dn, ip string) string {
	return "dn: " + dn + "\nchangetype: add\nobjectClass: host\nobjectClass: netElement\nobjectClass: top\nipAddress: " + ip + "\n\n"
}

// TestTrustedReplayRefusesDoctoredJournal: individually-illegal
// transactions with valid CRCs must not recover into a served instance.
func TestTrustedReplayRefusesDoctoredJournal(t *testing.T) {
	cases := []struct {
		name    string
		records []string
		wantErr string // substring of the refusal
	}{
		{
			// Two hosts sharing the Section 6.1 ipAddress key: each
			// record applies cleanly in isolation, only the key check —
			// skipped on the trusted path — would reject the second.
			name:    "duplicate-key",
			records: []string{hostRecord("cn=h1,o=net", "10.9.0.1"), hostRecord("cn=h2,o=net", "10.9.0.1")},
			wantErr: "fails the full legality check",
		},
		{
			// A child under a host breaks the host-is-a-leaf forbidden
			// relationship; only the Figure 5 insert check would see it.
			name:    "host-child",
			records: []string{hostRecord("cn=h1,o=net", "10.9.0.1"), hostRecord("cn=h2,cn=h1,o=net", "10.9.0.2")},
			wantErr: "fails the full legality check",
		},
		{
			// The same DN inserted twice fails structurally inside
			// Apply itself, before the terminal proof.
			name:    "duplicate-dn",
			records: []string{hostRecord("cn=h1,o=net", "10.9.0.1"), hostRecord("cn=h1,o=net", "10.9.0.2")},
			wantErr: "replay",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := workload.NetPolicySchema()
			srv, err := New(s, "netpolicy", netInstance(t, s))
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "journal.ldif")
			if err := os.WriteFile(path, doctoredJournal(tc.records...), 0o644); err != nil {
				t.Fatal(err)
			}
			rep, err := srv.Fsck(path)
			if err == nil {
				t.Fatalf("recovery accepted a doctored journal (%s)", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("refusal = %v, want mention of %q", err, tc.wantErr)
			}
			if rep.Quarantined {
				t.Fatalf("doctored-but-checksum-valid journal was quarantined as corruption: %+v", rep)
			}
			if rep.RecordsTrusted == 0 {
				t.Fatalf("no record went through the trusted path; the test lost its target: %+v", rep)
			}
			if rep.Legal {
				t.Fatalf("report claims the recovered instance is legal: %+v", rep)
			}
		})
	}
}

// TestTrustedAndCheckedReplayByteIdentical: the same journal replayed
// through the trusted fast path (checksummed markers) and through the
// legacy checked path (markers rewritten bare) must recover
// byte-identical instances.
func TestTrustedAndCheckedReplayByteIdentical(t *testing.T) {
	records := []string{
		hostRecord("cn=h1,o=net", "10.9.0.1"),
		hostRecord("cn=h2,o=net", "10.9.0.2"),
		"dn: cn=ops,o=net\nchangetype: add\nobjectClass: person\nobjectClass: top\nname: ops\n\n",
		"dn: cn=h2,o=net\nchangetype: delete\n\n",
	}
	recover := func(data []byte) (*RecoveryReport, string) {
		s := workload.NetPolicySchema()
		srv, err := New(s, "netpolicy", netInstance(t, s))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "journal.ldif")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := srv.Fsck(path)
		if err != nil {
			t.Fatalf("recovery of a legitimate journal failed: %v", err)
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := srv.Snapshot(w); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		return rep, buf.String()
	}

	trustedRep, trustedLDIF := recover(doctoredJournal(records...))
	if trustedRep.RecordsTrusted != len(records) {
		t.Fatalf("trusted replay applied %d/%d records trusted", trustedRep.RecordsTrusted, len(records))
	}

	var legacy bytes.Buffer
	for _, p := range records {
		legacy.WriteString(p)
		legacy.WriteString(repl.MarkerPrefix + "\n") // bare marker: no proof carried
	}
	legacyRep, legacyLDIF := recover(legacy.Bytes())
	if legacyRep.RecordsTrusted != 0 || legacyRep.LegacyRecords != len(records) {
		t.Fatalf("legacy replay report = %+v, want 0 trusted / %d legacy", legacyRep, len(records))
	}

	if trustedLDIF != legacyLDIF {
		t.Fatalf("trusted and checked replay diverged:\n--- trusted ---\n%s\n--- checked ---\n%s", trustedLDIF, legacyLDIF)
	}
	if trustedRep.RecordsReplayed != legacyRep.RecordsReplayed {
		t.Fatalf("replay counts differ: trusted %d, checked %d", trustedRep.RecordsReplayed, legacyRep.RecordsReplayed)
	}
}

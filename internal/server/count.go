package server

import (
	"fmt"
	"sort"
	"strings"
)

// COUNT is the boundary-count query behind cross-shard legality
// (internal/shard): it answers "how many entries of class c lie
// (strictly) below this DN" straight from the interval encoding the
// directory already maintains — the same pre/post ranks the legality
// engine's Δ-queries use — without materializing the entries.
//
//	COUNT <class>                 instance-wide count of the class
//	COUNT <class> base=<dn>       proper descendants of <dn> in the class
//	COUNT <class> child base=<dn> children of <dn> in the class
//
// The reply is a single "count: N" line. A base DN this node does not
// hold counts zero rather than erroring: the router fans the query out
// and a shard that owns no part of the boundary subtree contributes
// nothing — absence is an answer, not a fault.
const countUsage = "(usage: COUNT <class> [child] [base=<dn>])"

func (se *session) count(rest string) {
	rest = strings.TrimSpace(rest)
	class, tail, _ := strings.Cut(rest, " ")
	if class == "" {
		se.err("COUNT needs a class " + countUsage)
		return
	}
	tail = strings.TrimSpace(tail)
	childOnly := false
	if t, ok := strings.CutPrefix(tail, "child"); ok && (t == "" || strings.HasPrefix(t, " ")) {
		childOnly = true
		tail = strings.TrimSpace(t)
	}
	baseDN, hasBase := strings.CutPrefix(tail, "base=")
	if tail != "" && !hasBase {
		se.err(fmt.Sprintf("unexpected %q after class %s", tail, countUsage))
		return
	}
	if childOnly && !hasBase {
		se.err("COUNT child needs a base " + countUsage)
		return
	}
	se.srv.mu.RLock()
	defer se.srv.mu.RUnlock()
	dir := se.srv.dir
	n := 0
	switch {
	case !hasBase:
		n = dir.ClassCount(class)
	default:
		e := dir.ByDN(baseDN)
		if e == nil {
			break // absent base: this node holds none of the subtree
		}
		if childOnly {
			for _, ch := range e.Children() {
				if ch.HasClass(class) {
					n++
				}
			}
			break
		}
		// The posting list is sorted by pre-order rank, so the proper
		// descendants of e are one contiguous run: (e.pre, e.post].
		posting := dir.ClassEntries(class)
		lo := sort.Search(len(posting), func(i int) bool { return posting[i].Pre() > e.Pre() })
		hi := sort.Search(len(posting), func(i int) bool { return posting[i].Pre() > e.Post() })
		n = hi - lo
	}
	se.reply(fmt.Sprintf("count: %d", n))
	se.ok()
}

package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"boundschema/internal/txn"
)

// This file is the group-commit pipeline: the batched-durability half of
// the commit path. Without it every COMMIT holds the server's write lock
// across the journal write AND fsync, so one slow disk sync stalls every
// reader and serializes all writers at one-fsync-per-transaction. With
// it, the write-lock critical section shrinks to apply + validate +
// re-encode + journal-record encoding, and durability moves to a single
// committer goroutine that coalesces every record staged while the
// previous fsync was in flight into one write + Sync() (ARIES-style
// group commit).
//
// Invariants:
//
//   - Journal order equals apply order. Sequence numbers are assigned
//     and records staged while the apply's write lock is still held, so
//     the staging queue is always in apply order and the committer
//     writes it front-to-back.
//   - OK still means applied AND on disk. A session replies only after
//     its record's batch has fsynced.
//   - A failed batch write/sync fails every member: the committer
//     re-acquires the write lock, rolls back the batch's transactions
//     plus anything staged on top of them (all equally non-durable) in
//     reverse apply order via their ApplyWithUndo closures, truncates
//     torn bytes, and replies "ERR commit not durable" to each. If the
//     rollback or the truncate fails, the server degrades to read-only
//     — the same contract as the per-transaction path, extended to a
//     batch.
//   - Snapshot rotation only runs at a quiescent point (staging queue
//     empty under the write lock), so the snapshot can never contain a
//     transaction the journal will replay again.

// commitReq is one staged, already-applied transaction awaiting
// durability. data is the encoded LDIF change record, produced under the
// write lock so it reflects exactly what was applied.
type commitReq struct {
	seq  uint64
	data []byte
	undo func() error // rolls the apply back; call under s.mu only
	done chan error   // buffered(1); nil means durable
}

// committer owns all journal file I/O while group commit is on. It is
// started by OpenJournal and stopped by Close after sessions drain.
type committer struct {
	srv   *Server
	delay time.Duration // extra window to accumulate a batch (0 = none)

	mu      sync.Mutex
	staged  []*commitReq // apply-ordered; appended under srv.mu
	rotates []chan error // pending SNAPSHOT requests
	lastSeq uint64

	wake     chan struct{} // buffered(1) doorbell
	quit     chan struct{}
	dead     chan struct{}
	stopOnce sync.Once
}

func (s *Server) startCommitter() {
	c := &committer{
		srv:   s,
		delay: s.commitDelay,
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		dead:  make(chan struct{}),
	}
	s.committer = c
	go c.loop()
}

// stop shuts the committer down after draining staged work. Safe to call
// more than once; callers must ensure no new sessions can stage.
func (c *committer) stop() {
	c.stopOnce.Do(func() { close(c.quit) })
	<-c.dead
}

// stage enqueues a record for the next batch. Called with srv.mu held,
// which is what makes the queue order equal the apply order.
func (c *committer) stage(r *commitReq) {
	c.mu.Lock()
	if r.seq < c.lastSeq {
		// Defensive: sequence numbers are assigned under the same lock
		// that orders staging, so this cannot happen short of a bug.
		c.srv.logf("server: group commit staged out of order (seq %d after %d)", r.seq, c.lastSeq)
	}
	c.lastSeq = r.seq
	c.staged = append(c.staged, r)
	c.mu.Unlock()
	c.ring()
}

// requestRotate enqueues a SNAPSHOT compaction and returns its reply
// channel. Called without srv.mu.
func (c *committer) requestRotate() chan error {
	done := make(chan error, 1)
	c.mu.Lock()
	c.rotates = append(c.rotates, done)
	c.mu.Unlock()
	c.ring()
	return done
}

func (c *committer) ring() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

func (c *committer) takeStaged() []*commitReq {
	c.mu.Lock()
	batch := c.staged
	c.staged = nil
	c.mu.Unlock()
	return batch
}

func (c *committer) stagedEmpty() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.staged) == 0
}

func (c *committer) takeRotates() []chan error {
	c.mu.Lock()
	rot := c.rotates
	c.rotates = nil
	c.mu.Unlock()
	return rot
}

func (c *committer) loop() {
	defer close(c.dead)
	for {
		select {
		case <-c.wake:
		case <-c.quit:
			c.drain()
			return
		}
		if c.delay > 0 {
			// Deliberately widen the window so more concurrent commits
			// join this batch. Trades commit latency for fsync amortization.
			time.Sleep(c.delay)
		}
		if batch := c.takeStaged(); len(batch) > 0 {
			c.commitBatch(batch)
		}
		if rot := c.takeRotates(); len(rot) > 0 {
			c.rotate(rot)
		}
		c.maybeAutoRotate()
	}
}

// drain flushes everything staged at shutdown so no session is left
// waiting on a reply. Pending rotations are refused.
func (c *committer) drain() {
	for {
		batch := c.takeStaged()
		rot := c.takeRotates()
		if len(batch) == 0 && len(rot) == 0 {
			return
		}
		if len(batch) > 0 {
			c.commitBatch(batch)
		}
		for _, w := range rot {
			w <- errors.New("server shutting down")
		}
	}
}

// commitBatch writes every staged record and performs one Sync for the
// whole batch. Runs without srv.mu — this is the point of the pipeline:
// readers and the next wave of appliers proceed while the disk works.
func (c *committer) commitBatch(batch []*commitReq) {
	s := c.srv
	j := s.journal
	cw := &countingWriter{w: j.f}
	var err error
	for _, r := range batch {
		if _, werr := cw.Write(r.data); werr != nil {
			err = werr
			break
		}
	}
	if err == nil {
		err = s.syncJournal()
	}
	if err != nil {
		c.failBatch(batch, err)
		return
	}
	j.size += cw.n
	s.metrics.JournalBytes.Store(j.size)
	s.metrics.noteBatch(len(batch))
	for _, r := range batch {
		r.done <- nil
	}
}

// failBatch handles a failed batch write or sync: every member — plus
// any transaction staged on top of the batch while the sync was in
// flight, which is equally non-durable and was applied later — is rolled
// back in reverse apply order under the write lock, torn bytes are
// truncated away, and each session gets the error for its "ERR commit
// not durable" reply.
func (c *committer) failBatch(batch []*commitReq, err error) {
	s := c.srv
	j := s.journal
	s.metrics.JournalErrors.Add(1)
	s.mu.Lock()
	all := append(batch, c.takeStaged()...)
	undos := make([]func() error, len(all))
	for i, r := range all {
		undos[i] = r.undo
	}
	if uerr := txn.ComposeUndo(undos...)(); uerr != nil {
		s.readOnly = fmt.Sprintf("in-memory state diverged after failed journal write: %v (rollback: %v)", err, uerr)
		s.logf("server: %s", s.readOnly)
	}
	s.dir.EnsureEncoded()
	if terr := j.f.Truncate(j.size); terr != nil {
		j.failed = true
		s.readOnly = fmt.Sprintf("journal %s unrecoverable after failed write (%v; truncate: %v)", j.path, err, terr)
		s.logf("journal: %s", s.readOnly)
	}
	s.mu.Unlock()
	for _, r := range all {
		r.done <- err
	}
}

// rotate serves SNAPSHOT requests. Compaction must only run when the
// in-memory instance equals the durable state, otherwise the snapshot
// would contain staged-but-unsynced transactions that the journal later
// replays again. Holding the write lock freezes staging, so "staged
// queue empty under srv.mu" is exactly that quiescent point; any backlog
// is flushed first.
func (c *committer) rotate(waiters []chan error) {
	s := c.srv
	for {
		s.mu.Lock()
		if c.stagedEmpty() {
			break
		}
		s.mu.Unlock()
		if batch := c.takeStaged(); len(batch) > 0 {
			c.commitBatch(batch)
		}
	}
	var err error
	if s.readOnly != "" {
		err = errors.New("server is read-only: " + s.readOnly)
	} else {
		err = s.rotateJournal()
	}
	s.mu.Unlock()
	for _, w := range waiters {
		w <- err
	}
}

// maybeAutoRotate applies the size-threshold rotation rule after a
// batch. Skipped when new commits are already staged — the journal is
// still a complete log, and the check reruns after the next batch.
func (c *committer) maybeAutoRotate() {
	s := c.srv
	if s.rotateBytes <= 0 || s.journal.size < s.rotateBytes {
		return
	}
	s.mu.Lock()
	if c.stagedEmpty() && s.readOnly == "" {
		if err := s.rotateJournal(); err != nil {
			s.metrics.JournalErrors.Add(1)
			s.logf("journal rotation: %v", err)
		}
	}
	s.mu.Unlock()
}

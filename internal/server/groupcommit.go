package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"boundschema/internal/txn"
)

// This file is the group-commit pipeline: the batched-durability half of
// the commit path. Without it every COMMIT holds the server's write lock
// across the journal write AND fsync, so one slow disk sync stalls every
// reader and serializes all writers at one-fsync-per-transaction. With
// it, the write-lock critical section shrinks to apply + validate +
// re-encode + journal-record encoding, and durability moves to a single
// committer goroutine that coalesces every record staged while the
// previous fsync was in flight into one write + Sync() (ARIES-style
// group commit).
//
// Invariants:
//
//   - Journal order equals apply order. Sequence numbers are assigned
//     and records staged while the apply's write lock is still held, so
//     the staging queue is always in apply order and the committer
//     writes it front-to-back.
//   - OK still means applied AND on disk. A session replies only after
//     its record's batch has fsynced.
//   - A failed batch write/sync fails every member: the committer
//     re-acquires the write lock, rolls back the batch's transactions
//     plus anything staged on top of them (all equally non-durable) in
//     reverse apply order via their ApplyWithUndo closures, truncates
//     torn bytes, and replies "ERR commit not durable" to each. If the
//     rollback or the truncate fails, the server degrades to read-only
//     — the same contract as the per-transaction path, extended to a
//     batch.
//   - Snapshot rotation only runs at a quiescent point (staging queue
//     empty under the write lock), so the snapshot can never contain a
//     transaction the journal will replay again.

// commitReq is one staged, already-applied transaction awaiting
// durability. data is the encoded LDIF change record, produced under the
// write lock so it reflects exactly what was applied.
type commitReq struct {
	seq  uint64
	data []byte
	undo func() error // rolls the apply back; call under s.mu only
	done chan error   // buffered(1); nil means durable
}

// committer owns all journal file I/O while group commit is on. It is
// started by OpenJournal and stopped by Close after sessions drain.
type committer struct {
	srv   *Server
	delay time.Duration // extra window to accumulate a batch (0 = none)

	mu       sync.Mutex
	staged   []*commitReq  // apply-ordered; appended under srv.mu
	quiesces []*quiesceReq // pending SNAPSHOT/VERIFY requests
	lastSeq  uint64

	wake     chan struct{} // buffered(1) doorbell
	quit     chan struct{}
	dead     chan struct{}
	stopOnce sync.Once
}

func (s *Server) startCommitter() {
	c := &committer{
		srv:   s,
		delay: s.commitDelay,
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		dead:  make(chan struct{}),
	}
	s.committer = c
	go c.loop()
}

// stop shuts the committer down after draining staged work. Safe to call
// more than once; callers must ensure no new sessions can stage.
func (c *committer) stop() {
	c.stopOnce.Do(func() { close(c.quit) })
	<-c.dead
}

// stage enqueues a record for the next batch. Called with srv.mu held,
// which is what makes the queue order equal the apply order.
func (c *committer) stage(r *commitReq) {
	c.mu.Lock()
	if r.seq < c.lastSeq {
		// Defensive: sequence numbers are assigned under the same lock
		// that orders staging, so this cannot happen short of a bug.
		c.srv.logf("server: group commit staged out of order (seq %d after %d)", r.seq, c.lastSeq)
	}
	c.lastSeq = r.seq
	c.staged = append(c.staged, r)
	c.mu.Unlock()
	c.ring()
}

// quiesceReq is work that must run at a quiescent point — staged queue
// empty under srv.mu, so the in-memory instance equals the durable
// state and no journal append is in flight. SNAPSHOT rotation and
// VERIFY both ride this queue.
type quiesceReq struct {
	fn   func() error // runs under srv.mu at the quiescent point
	done chan error
}

// requestQuiesce enqueues fn for the committer's next quiescent point
// and returns the channel its result lands on. Called without srv.mu
// held by the waiter (the committer's failure path needs the lock).
func (c *committer) requestQuiesce(fn func() error) chan error {
	q := &quiesceReq{fn: fn, done: make(chan error, 1)}
	c.mu.Lock()
	c.quiesces = append(c.quiesces, q)
	c.mu.Unlock()
	c.ring()
	return q.done
}

func (c *committer) ring() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

func (c *committer) takeStaged() []*commitReq {
	c.mu.Lock()
	batch := c.staged
	c.staged = nil
	c.mu.Unlock()
	return batch
}

func (c *committer) stagedEmpty() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.staged) == 0
}

func (c *committer) takeQuiesces() []*quiesceReq {
	c.mu.Lock()
	qs := c.quiesces
	c.quiesces = nil
	c.mu.Unlock()
	return qs
}

func (c *committer) loop() {
	defer close(c.dead)
	for {
		select {
		case <-c.wake:
		case <-c.quit:
			c.drain()
			return
		}
		if c.delay > 0 {
			// Deliberately widen the window so more concurrent commits
			// join this batch. Trades commit latency for fsync amortization.
			time.Sleep(c.delay)
		}
		if batch := c.takeStaged(); len(batch) > 0 {
			c.commitBatch(batch)
		}
		if qs := c.takeQuiesces(); len(qs) > 0 {
			c.quiesce(qs)
		}
		c.maybeAutoRotate()
	}
}

// drain flushes everything staged at shutdown so no session is left
// waiting on a reply. Pending quiesce work (SNAPSHOT, VERIFY) is refused.
func (c *committer) drain() {
	for {
		batch := c.takeStaged()
		qs := c.takeQuiesces()
		if len(batch) == 0 && len(qs) == 0 {
			return
		}
		if len(batch) > 0 {
			c.commitBatch(batch)
		}
		for _, q := range qs {
			q.done <- errors.New("server shutting down")
		}
	}
}

// commitBatch writes every staged record and performs one Sync for the
// whole batch. Runs without srv.mu — this is the point of the pipeline:
// readers and the next wave of appliers proceed while the disk works.
func (c *committer) commitBatch(batch []*commitReq) {
	s := c.srv
	j := s.journal
	cw := &countingWriter{w: j.f}
	var err error
	for _, r := range batch {
		if _, werr := cw.Write(r.data); werr != nil {
			err = werr
			break
		}
	}
	if err == nil {
		err = s.syncJournal()
	}
	if err != nil {
		c.failBatch(batch, err)
		return
	}
	j.size += cw.n
	s.metrics.JournalBytes.Store(j.size)
	s.metrics.noteBatch(len(batch))
	// Replication: ship the whole batch in journal order (only this
	// goroutine ships in group-commit mode), then release each waiter.
	// Under semi-sync the hub holds a waiter's done channel until a
	// replica ack covers its seq — the batch OK is gated on replica
	// durability without blocking the committer itself.
	hub := s.replHub.Load()
	if hub != nil {
		for _, r := range batch {
			hub.Ship(r.seq, r.data)
		}
	}
	for _, r := range batch {
		if hub != nil {
			hub.Gate(r.seq, r.done)
		} else {
			r.done <- nil
		}
	}
}

// failBatch handles a failed batch write or sync: every member — plus
// any transaction staged on top of the batch while the sync was in
// flight, which is equally non-durable and was applied later — is rolled
// back in reverse apply order under the write lock, torn bytes are
// truncated away, and each session gets the error for its "ERR commit
// not durable" reply.
func (c *committer) failBatch(batch []*commitReq, err error) {
	s := c.srv
	j := s.journal
	s.metrics.JournalErrors.Add(1)
	s.mu.Lock()
	all := append(batch, c.takeStaged()...)
	undos := make([]func() error, len(all))
	for i, r := range all {
		undos[i] = r.undo
	}
	if uerr := txn.ComposeUndo(undos...)(); uerr != nil {
		s.readOnly = fmt.Sprintf("in-memory state diverged after failed journal write: %v (rollback: %v)", err, uerr)
		s.logf("server: %s", s.readOnly)
	}
	s.dir.EnsureEncoded()
	// Reclaim the failed transactions' sequence numbers: none of them
	// reached the disk, and leaving a gap would make a later restart read
	// the journal's seq run as broken. Safe under s.mu — staging requires
	// the same lock, so nothing can interleave a new assignment.
	if len(all) > 0 {
		s.commitSeq = all[0].seq - 1
		c.mu.Lock()
		c.lastSeq = s.commitSeq
		c.mu.Unlock()
	}
	if terr := j.f.Truncate(j.size); terr != nil {
		j.failed = true
		s.readOnly = fmt.Sprintf("journal %s unrecoverable after failed write (%v; truncate: %v)", j.path, err, terr)
		s.logf("journal: %s", s.readOnly)
	}
	s.mu.Unlock()
	for _, r := range all {
		r.done <- err
	}
}

// quiesce serves SNAPSHOT and VERIFY requests. Both must only run when
// the in-memory instance equals the durable state — a snapshot taken
// earlier would contain staged-but-unsynced transactions the journal
// later replays again, and a verify would find the unsynced tail.
// Holding the write lock freezes staging, so "staged queue empty under
// srv.mu" is exactly that quiescent point; any backlog is flushed first.
func (c *committer) quiesce(reqs []*quiesceReq) {
	s := c.srv
	for {
		s.mu.Lock()
		if c.stagedEmpty() {
			break
		}
		s.mu.Unlock()
		if batch := c.takeStaged(); len(batch) > 0 {
			c.commitBatch(batch)
		}
	}
	for _, q := range reqs {
		q.done <- q.fn()
	}
	s.mu.Unlock()
}

// maybeAutoRotate applies the size-threshold rotation rule after a
// batch. Skipped when new commits are already staged — the journal is
// still a complete log, and the check reruns after the next batch.
func (c *committer) maybeAutoRotate() {
	s := c.srv
	if s.rotateBytes <= 0 || s.journal.size < s.rotateBytes {
		return
	}
	s.mu.Lock()
	if c.stagedEmpty() && s.readOnly == "" {
		if err := s.rotateJournal(); err != nil {
			s.metrics.JournalErrors.Add(1)
			s.logf("journal rotation: %v", err)
		}
	}
	s.mu.Unlock()
}

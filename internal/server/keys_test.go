package server

import (
	"net"
	"path/filepath"
	"strings"
	"testing"

	"bufio"

	"boundschema/internal/workload"
)

// These are the regression tests for the missing-key-index bug the load
// harness found: server.New installed the count index but never the
// Section 6.1 key index, so the incremental commit path accepted
// duplicate key values and the corruption only surfaced when VERIFY ran
// the full checker. Every path that installs a directory into the
// applier (New, journal recovery, replica bootstrap) must leave key
// uniqueness enforced at COMMIT time.

func keyedServer(t *testing.T) (*Server, *client) {
	t.Helper()
	s := workload.WhitePagesSchema()
	s.DeclareKey("mail")
	srv, err := New(s, "whitepages+mailkey", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return srv, &client{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func addMailLines(uid, mail string) []string {
	return []string{
		"ADD uid=" + uid + ",ou=attLabs,o=att",
		"objectClass: person",
		"objectClass: online",
		"objectClass: top",
		"name: " + uid,
		"mail: " + mail,
		"COMMIT",
	}
}

func (c *client) expectKeyIllegal(lines ...string) {
	c.t.Helper()
	c.send("BEGIN")
	c.until()
	c.send(lines...)
	body, term := c.until()
	if term != "ILLEGAL" {
		c.t.Fatalf("duplicate-key COMMIT replied %q (body %q), want ILLEGAL", term, body)
	}
	found := false
	for _, l := range body {
		if strings.Contains(l, "key mail=") {
			found = true
		}
	}
	if !found {
		c.t.Fatalf("ILLEGAL body %q does not name the key violation", body)
	}
}

// TestKeyUniquenessEnforcedAtCommit proves the incremental path rejects
// duplicate key values at COMMIT time (not just under VERIFY), keeps
// the index current across commits, and releases values on delete.
func TestKeyUniquenessEnforcedAtCommit(t *testing.T) {
	_, c := keyedServer(t)

	// The Figure 1 instance already owns laks's mail values.
	c.expectKeyIllegal(addMailLines("dup", "laks@cs.concordia.ca")...)

	// The rejection rolled back cleanly and the instance stays verifiable.
	c.expectOK("VERIFY")

	// A fresh value commits; reusing it in the next transaction must be
	// caught by the updated index.
	c.expectOK("BEGIN")
	c.expectOK(addMailLines("fresh", "fresh@example.org")...)
	c.expectKeyIllegal(addMailLines("dup2", "fresh@example.org")...)

	// Deleting the owner releases the value for reuse.
	c.expectOK("BEGIN")
	c.expectOK("DELETE uid=fresh,ou=attLabs,o=att", "COMMIT")
	c.expectOK("BEGIN")
	c.expectOK(addMailLines("reuse", "fresh@example.org")...)
	c.expectOK("VERIFY")
}

// TestKeyIndexSurvivesJournalRecovery restarts a keyed server from its
// journal and requires that duplicates of both seed and replayed values
// are still rejected incrementally — the recovery path must rebuild the
// key index alongside the count index when it installs the recovered
// directory.
func TestKeyIndexSurvivesJournalRecovery(t *testing.T) {
	s := workload.WhitePagesSchema()
	s.DeclareKey("mail")
	journal := filepath.Join(t.TempDir(), "journal.ldif")

	srv, err := New(s, "whitepages+mailkey", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.OpenJournal(journal); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := &client{t: t, conn: conn, r: bufio.NewReader(conn)}
	c.expectOK("BEGIN")
	c.expectOK(addMailLines("alpha", "alpha@example.org")...)
	conn.Close()
	srv.Close()

	// Restart: replay the journal into a fresh Figure 1 instance.
	s2 := workload.WhitePagesSchema()
	s2.DeclareKey("mail")
	srv2, err := New(s2, "whitepages+mailkey", workload.WhitePagesInstance(s2))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.OpenJournal(journal); err != nil {
		t.Fatal(err)
	}
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })
	conn2, err := net.Dial("tcp", addr2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn2.Close() })
	c2 := &client{t: t, conn: conn2, r: bufio.NewReader(conn2)}

	c2.expectKeyIllegal(addMailLines("dupseed", "laks@cs.concordia.ca")...)
	c2.expectKeyIllegal(addMailLines("dupreplay", "alpha@example.org")...)
	c2.expectOK("BEGIN")
	c2.expectOK(addMailLines("beta", "beta@example.org")...)
	c2.expectOK("VERIFY")
}

package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"boundschema/internal/core"
	"boundschema/internal/workload"
)

// flakyJournal wraps a real journal file with injectable failures, to
// exercise the non-durable-commit paths.
type flakyJournal struct {
	f            *os.File
	failWrites   bool
	failTruncate bool
}

func (j *flakyJournal) Write(p []byte) (int, error) {
	if j.failWrites {
		return 0, errors.New("disk full (injected)")
	}
	return j.f.Write(p)
}
func (j *flakyJournal) Sync() error { return j.f.Sync() }
func (j *flakyJournal) Truncate(n int64) error {
	if j.failTruncate {
		return errors.New("truncate failed (injected)")
	}
	return j.f.Truncate(n)
}
func (j *flakyJournal) Close() error { return j.f.Close() }

// startJournaledServer builds a whitepages server journaling to a fresh
// temp path and returns it with a connected client and the journal path.
func startJournaledServer(t *testing.T, rotateBytes int64) (*Server, *client, string) {
	t.Helper()
	s := workload.WhitePagesSchema()
	journal := filepath.Join(t.TempDir(), "journal.ldif")
	srv, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetJournalRotation(rotateBytes)
	if err := srv.OpenJournal(journal); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return srv, &client{t: t, conn: conn, r: bufio.NewReader(conn)}, journal
}

// injectJournal swaps the server's journal file for a flaky wrapper.
func injectJournal(srv *Server, fj *flakyJournal) {
	srv.mu.Lock()
	fj.f = srv.journal.f.(*os.File)
	srv.journal.f = fj
	srv.mu.Unlock()
}

func addPersonLines(uid string) []string {
	return []string{
		"ADD uid=" + uid + ",ou=attLabs,o=att",
		"objectClass: person",
		"objectClass: top",
		"name: " + uid,
		"COMMIT",
	}
}

// TestServerCommitJournalWriteFailure is the regression test for the
// acknowledged-but-not-durable bug: a COMMIT whose journal write fails
// must reply ERR, roll the directory back, and leave the journal holding
// exactly the acknowledged commits.
func TestServerCommitJournalWriteFailure(t *testing.T) {
	srv, c, journal := startJournaledServer(t, 0)

	// One durable commit first.
	c.expectOK("BEGIN")
	c.expectOK(addPersonLines("durable")...)

	// Break the journal, then try to commit.
	fj := &flakyJournal{failWrites: true}
	injectJournal(srv, fj)
	c.expectOK("BEGIN")
	c.send(addPersonLines("lost")...)
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") || !strings.Contains(term, "not durable") {
		t.Fatalf("failed-journal COMMIT replied %q, want ERR ... not durable", term)
	}

	// The directory rolled back: the ERR'd entry is gone, the instance is
	// still legal, and the server is not read-only (the journal was
	// restored to a consistent prefix).
	c.expectOK("CHECK")
	srv.mu.RLock()
	if srv.dir.ByDN("uid=lost,ou=attLabs,o=att") != nil {
		t.Errorf("non-durable commit left the entry in the directory")
	}
	if srv.readOnly != "" {
		t.Errorf("server read-only after a recoverable journal failure: %s", srv.readOnly)
	}
	srv.mu.RUnlock()

	// Heal the journal; commits work again.
	fj.failWrites = false
	c.expectOK("BEGIN")
	c.expectOK(addPersonLines("healed")...)
	c.expectOK("QUIT")
	srv.Close()

	// A restart from the same snapshot + journal reproduces exactly the
	// acknowledged commits: durable and healed, never lost.
	s := workload.WhitePagesSchema()
	srv2, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.OpenJournal(journal); err != nil {
		t.Fatalf("replay after failed write: %v", err)
	}
	defer srv2.Close()
	if srv2.dir.ByDN("uid=durable,ou=attLabs,o=att") == nil {
		t.Errorf("durable commit lost on replay")
	}
	if srv2.dir.ByDN("uid=healed,ou=attLabs,o=att") == nil {
		t.Errorf("post-failure commit lost on replay")
	}
	if srv2.dir.ByDN("uid=lost,ou=attLabs,o=att") != nil {
		t.Errorf("ERR'd commit reappeared on replay")
	}
}

// TestServerJournalFailureMarksReadOnly: when the failed append cannot
// even be truncated away, the server must stop accepting writes.
func TestServerJournalFailureMarksReadOnly(t *testing.T) {
	srv, c, _ := startJournaledServer(t, 0)
	injectJournal(srv, &flakyJournal{failWrites: true, failTruncate: true})

	c.expectOK("BEGIN")
	c.send(addPersonLines("doomed")...)
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") {
		t.Fatalf("failed COMMIT replied %q", term)
	}

	c.expectOK("BEGIN")
	c.send(addPersonLines("after")...)
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") || !strings.Contains(term, "read-only") {
		t.Fatalf("COMMIT on a read-only server replied %q", term)
	}
	c.send("SNAPSHOT")
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") || !strings.Contains(term, "read-only") {
		t.Fatalf("SNAPSHOT on a read-only server replied %q", term)
	}
	// Reads still work.
	c.expectOK("SEARCH (objectClass=person)")
	c.expectOK("CHECK")
}

// TestServerJournalRotation: once the journal crosses the threshold, a
// commit triggers compaction — the instance lands in the snapshot
// sidecar, the journal is truncated, and a restart reproduces the state
// from snapshot + (short) journal.
func TestServerJournalRotation(t *testing.T) {
	srv, c, journal := startJournaledServer(t, 64) // tiny threshold: every commit rotates
	for _, uid := range []string{"rot1", "rot2", "rot3"} {
		c.expectOK("BEGIN")
		c.expectOK(addPersonLines(uid)...)
	}
	// In group-commit mode the committer rotates right after acknowledging
	// the batch, so give the asynchronous compaction a moment to land.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, err := os.Stat(journal)
		if err == nil && st.Size() == 0 && srv.metrics.JournalRotations.Load() > 0 {
			break
		}
		if time.Now().After(deadline) {
			n := srv.metrics.JournalRotations.Load()
			t.Fatalf("journal not compacted after 3 commits over a 64-byte threshold: rotations=%d stat=%v", n, err)
		}
		time.Sleep(time.Millisecond)
	}
	snap := journal + ".snapshot"
	if st, err := os.Stat(snap); err != nil || st.Size() == 0 {
		t.Fatalf("snapshot sidecar missing or empty: %v", err)
	}
	c.expectOK("QUIT")
	srv.Close()

	// Restart: the snapshot replaces the initial instance.
	s := workload.WhitePagesSchema()
	srv2, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.OpenJournal(journal); err != nil {
		t.Fatalf("restart from snapshot: %v", err)
	}
	defer srv2.Close()
	for _, uid := range []string{"rot1", "rot2", "rot3"} {
		if srv2.dir.ByDN("uid="+uid+",ou=attLabs,o=att") == nil {
			t.Errorf("entry %s lost across rotation + restart", uid)
		}
	}
	if r := core.NewChecker(s).Check(srv2.dir); !r.Legal() {
		t.Fatalf("restored instance illegal:\n%s", r)
	}
}

// TestServerJournalReplayMultiRecordTransaction: a transaction that is
// only legal atomically (an orgGroup ADDed together with its first
// person) must survive restart. The regression was replaying the
// journal record-by-record, which rejected the intermediate state.
func TestServerJournalReplayMultiRecordTransaction(t *testing.T) {
	srv, c, journal := startJournaledServer(t, 0)
	c.expectOK("BEGIN")
	c.expectOK(
		"ADD ou=atomic,ou=attLabs,o=att",
		"objectClass: orgUnit",
		"objectClass: orgGroup",
		"objectClass: top",
		"ADD uid=first,ou=atomic,ou=attLabs,o=att",
		"objectClass: person",
		"objectClass: top",
		"name: first person",
		"COMMIT",
	)
	c.expectOK("QUIT")
	srv.Close()

	s := workload.WhitePagesSchema()
	srv2, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.OpenJournal(journal); err != nil {
		t.Fatalf("replay of a multi-record transaction: %v", err)
	}
	defer srv2.Close()
	if srv2.dir.ByDN("uid=first,ou=atomic,ou=attLabs,o=att") == nil {
		t.Errorf("atomically-committed entry lost on replay")
	}
	if r := core.NewChecker(s).Check(srv2.dir); !r.Legal() {
		t.Fatalf("restored instance illegal:\n%s", r)
	}
}

const journaledAdd = "dn: uid=%s,ou=attLabs,o=att\n" +
	"changetype: add\n" +
	"objectClass: person\n" +
	"objectClass: top\n" +
	"name: %s\n\n"

// TestServerJournalLegacyReplay: a journal written before the commit
// markers existed (one transaction per record, no "# commit" lines)
// still replays record-by-record.
func TestServerJournalLegacyReplay(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.ldif")
	legacy := fmt.Sprintf(journaledAdd, "old1", "old1") + fmt.Sprintf(journaledAdd, "old2", "old2")
	if err := os.WriteFile(journal, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	s := workload.WhitePagesSchema()
	srv, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.OpenJournal(journal); err != nil {
		t.Fatalf("legacy journal replay: %v", err)
	}
	defer srv.Close()
	for _, uid := range []string{"old1", "old2"} {
		if srv.dir.ByDN("uid="+uid+",ou=attLabs,o=att") == nil {
			t.Errorf("legacy entry %s lost on replay", uid)
		}
	}
}

// TestServerJournalTornTailDiscarded: bytes after the last commit
// marker belong to a write that was never acknowledged (the marker is
// fsynced before OK); a restart discards them and keeps appending to
// the clean prefix.
func TestServerJournalTornTailDiscarded(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.ldif")
	content := fmt.Sprintf(journaledAdd, "acked", "acked") + "# commit\n" +
		"dn: uid=torn,ou=attLabs,o=att\nchangetype: add\nobjectCla" // torn mid-write
	if err := os.WriteFile(journal, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s := workload.WhitePagesSchema()
	srv, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.OpenJournal(journal); err != nil {
		t.Fatalf("replay with torn tail: %v", err)
	}
	if srv.dir.ByDN("uid=acked,ou=attLabs,o=att") == nil {
		t.Errorf("acknowledged entry lost on replay")
	}
	if srv.dir.ByDN("uid=torn,ou=attLabs,o=att") != nil {
		t.Errorf("unacknowledged torn write replayed")
	}

	// The torn bytes are gone from disk; new commits extend a clean log.
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dialClient(t, addr)
	c.expectOK("BEGIN")
	c.expectOK(addPersonLines("posttorn")...)
	c.expectOK("QUIT")
	srv.Close()

	srv2, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.OpenJournal(journal); err != nil {
		t.Fatalf("replay after torn-tail recovery: %v", err)
	}
	defer srv2.Close()
	for _, uid := range []string{"acked", "posttorn"} {
		if srv2.dir.ByDN("uid="+uid+",ou=attLabs,o=att") == nil {
			t.Errorf("entry %s lost after torn-tail recovery", uid)
		}
	}
}

// TestServerSnapshotCommand: SNAPSHOT forces compaction on demand.
func TestServerSnapshotCommand(t *testing.T) {
	srv, c, journal := startJournaledServer(t, 0) // rotation off: only SNAPSHOT compacts
	c.expectOK("BEGIN")
	c.expectOK(addPersonLines("snapme")...)
	if st, err := os.Stat(journal); err != nil || st.Size() == 0 {
		t.Fatalf("journal empty before SNAPSHOT: %v", err)
	}
	body := c.expectOK("SNAPSHOT")
	if len(body) == 0 || !strings.Contains(body[0], "compacted") {
		t.Errorf("SNAPSHOT body = %v", body)
	}
	if st, err := os.Stat(journal); err != nil || st.Size() != 0 {
		t.Fatalf("journal not truncated by SNAPSHOT: err=%v", err)
	}
	if _, err := os.Stat(journal + ".snapshot"); err != nil {
		t.Fatalf("snapshot sidecar missing: %v", err)
	}
	c.expectOK("QUIT")
	srv.Close()

	s := workload.WhitePagesSchema()
	srv2, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.OpenJournal(journal); err != nil {
		t.Fatalf("restart after SNAPSHOT: %v", err)
	}
	defer srv2.Close()
	if srv2.dir.ByDN("uid=snapme,ou=attLabs,o=att") == nil {
		t.Errorf("entry lost across SNAPSHOT + restart")
	}
}

// TestServerSnapshotCommandWithoutJournal: SNAPSHOT needs a journal.
func TestServerSnapshotCommandWithoutJournal(t *testing.T) {
	_, c := startServer(t)
	c.send("SNAPSHOT")
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") {
		t.Errorf("SNAPSHOT without journal: %q", term)
	}
}

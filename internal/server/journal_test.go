package server

import (
	"bufio"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"boundschema/internal/core"
	"boundschema/internal/workload"
)

// flakyJournal wraps a real journal file with injectable failures, to
// exercise the non-durable-commit paths.
type flakyJournal struct {
	f            *os.File
	failWrites   bool
	failTruncate bool
}

func (j *flakyJournal) Write(p []byte) (int, error) {
	if j.failWrites {
		return 0, errors.New("disk full (injected)")
	}
	return j.f.Write(p)
}
func (j *flakyJournal) Sync() error { return j.f.Sync() }
func (j *flakyJournal) Truncate(n int64) error {
	if j.failTruncate {
		return errors.New("truncate failed (injected)")
	}
	return j.f.Truncate(n)
}
func (j *flakyJournal) Close() error { return j.f.Close() }

// startJournaledServer builds a whitepages server journaling to a fresh
// temp path and returns it with a connected client and the journal path.
func startJournaledServer(t *testing.T, rotateBytes int64) (*Server, *client, string) {
	t.Helper()
	s := workload.WhitePagesSchema()
	journal := filepath.Join(t.TempDir(), "journal.ldif")
	srv, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetJournalRotation(rotateBytes)
	if err := srv.OpenJournal(journal); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return srv, &client{t: t, conn: conn, r: bufio.NewReader(conn)}, journal
}

// injectJournal swaps the server's journal file for a flaky wrapper.
func injectJournal(srv *Server, fj *flakyJournal) {
	srv.mu.Lock()
	fj.f = srv.journal.f.(*os.File)
	srv.journal.f = fj
	srv.mu.Unlock()
}

func addPersonLines(uid string) []string {
	return []string{
		"ADD uid=" + uid + ",ou=attLabs,o=att",
		"objectClass: person",
		"objectClass: top",
		"name: " + uid,
		"COMMIT",
	}
}

// TestServerCommitJournalWriteFailure is the regression test for the
// acknowledged-but-not-durable bug: a COMMIT whose journal write fails
// must reply ERR, roll the directory back, and leave the journal holding
// exactly the acknowledged commits.
func TestServerCommitJournalWriteFailure(t *testing.T) {
	srv, c, journal := startJournaledServer(t, 0)

	// One durable commit first.
	c.expectOK("BEGIN")
	c.expectOK(addPersonLines("durable")...)

	// Break the journal, then try to commit.
	fj := &flakyJournal{failWrites: true}
	injectJournal(srv, fj)
	c.expectOK("BEGIN")
	c.send(addPersonLines("lost")...)
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") || !strings.Contains(term, "not durable") {
		t.Fatalf("failed-journal COMMIT replied %q, want ERR ... not durable", term)
	}

	// The directory rolled back: the ERR'd entry is gone, the instance is
	// still legal, and the server is not read-only (the journal was
	// restored to a consistent prefix).
	c.expectOK("CHECK")
	srv.mu.RLock()
	if srv.dir.ByDN("uid=lost,ou=attLabs,o=att") != nil {
		t.Errorf("non-durable commit left the entry in the directory")
	}
	if srv.readOnly != "" {
		t.Errorf("server read-only after a recoverable journal failure: %s", srv.readOnly)
	}
	srv.mu.RUnlock()

	// Heal the journal; commits work again.
	fj.failWrites = false
	c.expectOK("BEGIN")
	c.expectOK(addPersonLines("healed")...)
	c.expectOK("QUIT")
	srv.Close()

	// A restart from the same snapshot + journal reproduces exactly the
	// acknowledged commits: durable and healed, never lost.
	s := workload.WhitePagesSchema()
	srv2, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.OpenJournal(journal); err != nil {
		t.Fatalf("replay after failed write: %v", err)
	}
	defer srv2.Close()
	if srv2.dir.ByDN("uid=durable,ou=attLabs,o=att") == nil {
		t.Errorf("durable commit lost on replay")
	}
	if srv2.dir.ByDN("uid=healed,ou=attLabs,o=att") == nil {
		t.Errorf("post-failure commit lost on replay")
	}
	if srv2.dir.ByDN("uid=lost,ou=attLabs,o=att") != nil {
		t.Errorf("ERR'd commit reappeared on replay")
	}
}

// TestServerJournalFailureMarksReadOnly: when the failed append cannot
// even be truncated away, the server must stop accepting writes.
func TestServerJournalFailureMarksReadOnly(t *testing.T) {
	srv, c, _ := startJournaledServer(t, 0)
	injectJournal(srv, &flakyJournal{failWrites: true, failTruncate: true})

	c.expectOK("BEGIN")
	c.send(addPersonLines("doomed")...)
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") {
		t.Fatalf("failed COMMIT replied %q", term)
	}

	c.expectOK("BEGIN")
	c.send(addPersonLines("after")...)
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") || !strings.Contains(term, "read-only") {
		t.Fatalf("COMMIT on a read-only server replied %q", term)
	}
	c.send("SNAPSHOT")
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") || !strings.Contains(term, "read-only") {
		t.Fatalf("SNAPSHOT on a read-only server replied %q", term)
	}
	// Reads still work.
	c.expectOK("SEARCH (objectClass=person)")
	c.expectOK("CHECK")
}

// TestServerJournalRotation: once the journal crosses the threshold, a
// commit triggers compaction — the instance lands in the snapshot
// sidecar, the journal is truncated, and a restart reproduces the state
// from snapshot + (short) journal.
func TestServerJournalRotation(t *testing.T) {
	srv, c, journal := startJournaledServer(t, 64) // tiny threshold: every commit rotates
	for _, uid := range []string{"rot1", "rot2", "rot3"} {
		c.expectOK("BEGIN")
		c.expectOK(addPersonLines(uid)...)
	}
	if n := srv.metrics.JournalRotations.Load(); n == 0 {
		t.Fatalf("no rotations after 3 commits over a 64-byte threshold")
	}
	snap := journal + ".snapshot"
	if st, err := os.Stat(snap); err != nil || st.Size() == 0 {
		t.Fatalf("snapshot sidecar missing or empty: %v", err)
	}
	if st, err := os.Stat(journal); err != nil || st.Size() != 0 {
		t.Fatalf("journal not truncated after rotation: err=%v size=%d", err, st.Size())
	}
	c.expectOK("QUIT")
	srv.Close()

	// Restart: the snapshot replaces the initial instance.
	s := workload.WhitePagesSchema()
	srv2, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.OpenJournal(journal); err != nil {
		t.Fatalf("restart from snapshot: %v", err)
	}
	defer srv2.Close()
	for _, uid := range []string{"rot1", "rot2", "rot3"} {
		if srv2.dir.ByDN("uid="+uid+",ou=attLabs,o=att") == nil {
			t.Errorf("entry %s lost across rotation + restart", uid)
		}
	}
	if r := core.NewChecker(s).Check(srv2.dir); !r.Legal() {
		t.Fatalf("restored instance illegal:\n%s", r)
	}
}

// TestServerSnapshotCommand: SNAPSHOT forces compaction on demand.
func TestServerSnapshotCommand(t *testing.T) {
	srv, c, journal := startJournaledServer(t, 0) // rotation off: only SNAPSHOT compacts
	c.expectOK("BEGIN")
	c.expectOK(addPersonLines("snapme")...)
	if st, err := os.Stat(journal); err != nil || st.Size() == 0 {
		t.Fatalf("journal empty before SNAPSHOT: %v", err)
	}
	body := c.expectOK("SNAPSHOT")
	if len(body) == 0 || !strings.Contains(body[0], "compacted") {
		t.Errorf("SNAPSHOT body = %v", body)
	}
	if st, err := os.Stat(journal); err != nil || st.Size() != 0 {
		t.Fatalf("journal not truncated by SNAPSHOT: err=%v", err)
	}
	if _, err := os.Stat(journal + ".snapshot"); err != nil {
		t.Fatalf("snapshot sidecar missing: %v", err)
	}
	c.expectOK("QUIT")
	srv.Close()

	s := workload.WhitePagesSchema()
	srv2, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.OpenJournal(journal); err != nil {
		t.Fatalf("restart after SNAPSHOT: %v", err)
	}
	defer srv2.Close()
	if srv2.dir.ByDN("uid=snapme,ou=attLabs,o=att") == nil {
		t.Errorf("entry lost across SNAPSHOT + restart")
	}
}

// TestServerSnapshotCommandWithoutJournal: SNAPSHOT needs a journal.
func TestServerSnapshotCommandWithoutJournal(t *testing.T) {
	_, c := startServer(t)
	c.send("SNAPSHOT")
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") {
		t.Errorf("SNAPSHOT without journal: %q", term)
	}
}

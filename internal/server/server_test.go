package server

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/workload"
)

// client is a tiny test client for the line protocol.
type client struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func startServer(t *testing.T) (*Server, *client) {
	t.Helper()
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	srv, err := New(s, "whitepages", d)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return srv, &client{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) send(lines ...string) {
	c.t.Helper()
	for _, l := range lines {
		if _, err := c.conn.Write([]byte(l + "\n")); err != nil {
			c.t.Fatal(err)
		}
	}
}

// until reads lines until a terminator (OK/ILLEGAL/ERR...) and returns
// body plus the terminator.
func (c *client) until() ([]string, string) {
	c.t.Helper()
	var body []string
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			c.t.Fatalf("read: %v (body so far %v)", err, body)
		}
		line = strings.TrimRight(line, "\n")
		if line == "OK" || line == "ILLEGAL" || strings.HasPrefix(line, "ERR ") {
			return body, line
		}
		body = append(body, line)
	}
}

func (c *client) expectOK(lines ...string) []string {
	c.t.Helper()
	c.send(lines...)
	body, term := c.until()
	if term != "OK" {
		c.t.Fatalf("expected OK, got %q (body %v)", term, body)
	}
	return body
}

func TestServerSearch(t *testing.T) {
	_, c := startServer(t)
	body := c.expectOK("SEARCH (objectClass=person)")
	if len(body) != 3 {
		t.Errorf("persons = %v", body)
	}
	body = c.expectOK("SEARCH (&(objectClass=person)(mail=*)) base=ou=attLabs,o=att")
	if len(body) != 1 || !strings.Contains(body[0], "uid=laks") {
		t.Errorf("scoped search = %v", body)
	}
	c.send("SEARCH (bad")
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") {
		t.Errorf("bad filter: %q", term)
	}
}

// TestServerSearchLimit: limit=N truncates the reply to the first N
// matches in pre-order; 0 is a valid limit and the default is unlimited.
func TestServerSearchLimit(t *testing.T) {
	_, c := startServer(t)
	all := c.expectOK("SEARCH (objectClass=person)")
	if len(all) != 3 {
		t.Fatalf("persons = %v", all)
	}
	body := c.expectOK("SEARCH (objectClass=person) limit=2")
	if len(body) != 2 || body[0] != all[0] || body[1] != all[1] {
		t.Errorf("limit=2 = %v, want the first two of %v", body, all)
	}
	if body = c.expectOK("SEARCH (objectClass=person) limit=0"); len(body) != 0 {
		t.Errorf("limit=0 returned %v", body)
	}
	if body = c.expectOK("SEARCH (objectClass=person) limit=100"); len(body) != 3 {
		t.Errorf("limit beyond the result size = %v", body)
	}
	body = c.expectOK("SEARCH (objectClass=person) base=ou=attLabs,o=att limit=1")
	if len(body) != 1 || body[0] != all[0] {
		t.Errorf("base + limit = %v", body)
	}
}

func TestServerQuery(t *testing.T) {
	_, c := startServer(t)
	body := c.expectOK("QUERY (minus (select (objectClass=orgGroup)) (desc (select (objectClass=orgGroup)) (select (objectClass=person))))")
	if len(body) != 0 {
		t.Errorf("Q1 should be empty on a legal instance: %v", body)
	}
}

func TestServerGet(t *testing.T) {
	_, c := startServer(t)
	body := c.expectOK("GET uid=laks,ou=databases,ou=attLabs,o=att")
	joined := strings.Join(body, "\n")
	for _, want := range []string{"dn: uid=laks", "objectClass: researcher", "mail: laks@cs.concordia.ca"} {
		if !strings.Contains(joined, want) {
			t.Errorf("GET output missing %q:\n%s", want, joined)
		}
	}
	c.send("GET uid=ghost,o=att")
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") {
		t.Errorf("missing entry: %q", term)
	}
}

func TestServerLegalTransaction(t *testing.T) {
	srv, c := startServer(t)
	c.expectOK("BEGIN")
	c.expectOK(
		"ADD ou=networking,ou=attLabs,o=att",
		"objectClass: orgUnit",
		"objectClass: orgGroup",
		"objectClass: top",
		"ADD uid=pat,ou=networking,ou=attLabs,o=att",
		"objectClass: person",
		"objectClass: top",
		"name: pat doe",
		"DELETE uid=armstrong,ou=attLabs,o=att",
		"COMMIT",
	)
	c.expectOK("CHECK")
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	if srv.dir.ByDN("uid=pat,ou=networking,ou=attLabs,o=att") == nil {
		t.Errorf("commit not applied")
	}
	if srv.dir.ByDN("uid=armstrong,ou=attLabs,o=att") != nil {
		t.Errorf("delete not applied")
	}
}

func TestServerIllegalTransactionRollsBack(t *testing.T) {
	srv, c := startServer(t)
	c.expectOK("BEGIN")
	c.send(
		"ADD ou=empty,ou=attLabs,o=att",
		"objectClass: orgUnit",
		"objectClass: orgGroup",
		"objectClass: top",
		"COMMIT",
	)
	body, term := c.until()
	if term != "ILLEGAL" {
		t.Fatalf("expected ILLEGAL, got %q (%v)", term, body)
	}
	found := false
	for _, l := range body {
		if strings.Contains(l, "orgGroup →de person") {
			found = true
		}
	}
	if !found {
		t.Errorf("violation detail missing: %v", body)
	}
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	if srv.dir.Len() != 6 {
		t.Errorf("rollback incomplete: %d entries", srv.dir.Len())
	}
}

func TestServerAbort(t *testing.T) {
	srv, c := startServer(t)
	c.expectOK("BEGIN")
	c.send("ADD uid=x,ou=attLabs,o=att", "objectClass: person", "objectClass: top", "name: x")
	c.expectOK("ABORT")
	c.expectOK("CHECK")
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	if srv.dir.Len() != 6 {
		t.Errorf("abort leaked entries")
	}
}

func TestServerSchemaAndStat(t *testing.T) {
	_, c := startServer(t)
	body := c.expectOK("SCHEMA")
	if !strings.Contains(strings.Join(body, "\n"), "require orgGroup descendant person") {
		t.Errorf("SCHEMA output missing structure element")
	}
	body = c.expectOK("STAT")
	joined := strings.Join(body, "\n")
	if !strings.Contains(joined, "entries: 6") || !strings.Contains(joined, "class person: 3") {
		t.Errorf("STAT output wrong:\n%s", joined)
	}
	body = c.expectOK("CONSISTENT")
	if !strings.Contains(strings.Join(body, "\n"), "consistent: true") {
		t.Errorf("CONSISTENT output wrong: %v", body)
	}
}

func TestServerUnknownCommand(t *testing.T) {
	_, c := startServer(t)
	c.send("FROBNICATE now")
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") {
		t.Errorf("unknown command: %q", term)
	}
	c.expectOK("QUIT")
}

func TestServerRejectsIllegalInitialInstance(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := dirtree.New(s.Registry)
	if _, err := d.AddRoot("ou=empty", "orgUnit", "orgGroup", "top"); err != nil {
		t.Fatal(err)
	}
	if _, err := New(s, "x", d); err == nil {
		t.Fatalf("illegal initial instance accepted")
	}
}

func TestServerConcurrentReaders(t *testing.T) {
	srv, _ := startServer(t)
	addr := srv.ln.Addr().String()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for k := 0; k < 20; k++ {
				if _, err := conn.Write([]byte("SEARCH (objectClass=person)\n")); err != nil {
					done <- err
					return
				}
				lines := 0
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						done <- err
						return
					}
					if strings.HasPrefix(line, "OK") {
						break
					}
					lines++
				}
				if lines != 3 {
					done <- errLines(lines)
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type errLines int

func (e errLines) Error() string { return "unexpected line count" }

var _ = core.ClassTop // anchor the import used in helpers

func TestServerMoveCommand(t *testing.T) {
	srv, c := startServer(t)
	c.expectOK("BEGIN")
	c.expectOK(
		"MOVE ou=databases,ou=attLabs,o=att -> o=att",
		"COMMIT",
	)
	c.expectOK("CHECK")
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	if srv.dir.ByDN("uid=laks,ou=databases,o=att") == nil {
		t.Errorf("move not applied")
	}
}

func TestServerJournalReplay(t *testing.T) {
	s := workload.WhitePagesSchema()
	journal := t.TempDir() + "/journal.ldif"

	// First server: journal a committed transaction, then close.
	srv1, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.OpenJournal(journal); err != nil {
		t.Fatal(err)
	}
	addr, err := srv1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := &client{t: t, conn: conn, r: bufio.NewReader(conn)}
	c.expectOK("BEGIN")
	c.expectOK(
		"ADD uid=journaled,ou=attLabs,o=att",
		"objectClass: person",
		"objectClass: top",
		"name: journaled person",
		"MOVE ou=databases,ou=attLabs,o=att -> o=att",
		"COMMIT",
	)
	// A rejected transaction must NOT reach the journal.
	c.send("BEGIN")
	if _, term := c.until(); term != "OK" {
		t.Fatalf("BEGIN failed: %s", term)
	}
	c.send("DELETE uid=journaled,ou=attLabs,o=att",
		"DELETE uid=armstrong,ou=attLabs,o=att",
		"DELETE uid=laks,ou=databases,o=att",
		"DELETE uid=suciu,ou=databases,o=att",
		"COMMIT")
	if _, term := c.until(); term != "ILLEGAL" {
		t.Fatalf("deleting every person should be ILLEGAL, got %s", term)
	}
	conn.Close()
	srv1.Close()

	// Second server: same snapshot + journal reproduces the state.
	srv2, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.OpenJournal(journal); err != nil {
		t.Fatalf("replay: %v", err)
	}
	defer srv2.Close()
	if srv2.dir.ByDN("uid=journaled,ou=attLabs,o=att") == nil {
		t.Errorf("journaled add lost on replay")
	}
	if srv2.dir.ByDN("uid=laks,ou=databases,o=att") == nil {
		t.Errorf("journaled move lost on replay")
	}
	if got := srv2.dir.Len(); got != 7 {
		t.Errorf("replayed size = %d, want 7", got)
	}
	if r := core.NewChecker(s).Check(srv2.dir); !r.Legal() {
		t.Fatalf("replayed instance illegal:\n%s", r)
	}
}

func TestServerSnapshot(t *testing.T) {
	srv, c := startServer(t)
	c.expectOK("BEGIN")
	c.expectOK(
		"ADD uid=snap,ou=attLabs,o=att",
		"objectClass: person",
		"objectClass: top",
		"name: snapshot person",
		"COMMIT",
	)
	var buf strings.Builder
	w := bufio.NewWriter(&buf)
	if err := srv.Snapshot(w); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if !strings.Contains(buf.String(), "uid=snap,ou=attLabs,o=att") {
		t.Errorf("snapshot missing committed entry")
	}
}

func TestServerSearchWithSpacesInFilter(t *testing.T) {
	_, c := startServer(t)
	body := c.expectOK("SEARCH (name=laks lakshmanan)")
	if len(body) != 1 || !strings.Contains(body[0], "uid=laks") {
		t.Errorf("spaced filter result = %v", body)
	}
	body = c.expectOK("SEARCH (name=laks lakshmanan) base=ou=databases,ou=attLabs,o=att")
	if len(body) != 1 {
		t.Errorf("spaced filter with base = %v", body)
	}
	c.send("SEARCH name=noparens")
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") {
		t.Errorf("unparenthesized filter accepted: %q", term)
	}
}

// TestServerConcurrentCheckCommit is the mutation-under-check regression
// test: CHECK sessions (read-locked, running the parallel checker) race
// COMMIT sessions (write-locked mutation plus re-encode). Under -race it
// enforces the contract that the directory is read-only during checking —
// in particular that COMMIT leaves the interval encoding current, so no
// reader ever triggers the lazy re-encode under the read lock.
func TestServerConcurrentCheckCommit(t *testing.T) {
	s := workload.WhitePagesSchema()
	d := workload.Corpus(s, rand.New(rand.NewSource(3)), 2000)
	srv, err := New(s, "whitepages", d)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetConcurrency(4)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	// roundTrip sends the lines and reads one response, returning its
	// terminator (OK / ILLEGAL / ERR ...).
	roundTrip := func(conn net.Conn, r *bufio.Reader, lines ...string) (string, error) {
		for _, l := range lines {
			if _, err := conn.Write([]byte(l + "\n")); err != nil {
				return "", err
			}
		}
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return "", err
			}
			line = strings.TrimRight(line, "\n")
			if line == "OK" || line == "ILLEGAL" || strings.HasPrefix(line, "ERR ") {
				return line, nil
			}
		}
	}

	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, 8)

	// Three reader sessions hammering CHECK (and a SEARCH for variety).
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for k := 0; k < rounds; k++ {
				term, err := roundTrip(conn, r, "CHECK")
				if err != nil {
					errs <- err
					return
				}
				if term != "OK" {
					errs <- fmt.Errorf("CHECK on a server-maintained instance returned %q", term)
					return
				}
				if _, err := roundTrip(conn, r, "SEARCH (objectClass=orgUnit)"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	// Two writer sessions committing legal insert+delete pairs.
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for k := 0; k < rounds; k++ {
				unit := fmt.Sprintf("ou=race%d-%d,o=org0", i, k)
				if term, err := roundTrip(conn, r, "BEGIN"); err != nil || term != "OK" {
					errs <- fmt.Errorf("BEGIN: %q %v", term, err)
					return
				}
				term, err := roundTrip(conn, r,
					"ADD "+unit,
					"objectClass: orgUnit",
					"objectClass: orgGroup",
					"objectClass: top",
					"ADD uid=racep,"+unit,
					"objectClass: person",
					"objectClass: top",
					"name: race person",
					"COMMIT",
				)
				if err != nil || term != "OK" {
					errs <- fmt.Errorf("COMMIT add: %q %v", term, err)
					return
				}
				if term, err := roundTrip(conn, r, "BEGIN"); err != nil || term != "OK" {
					errs <- fmt.Errorf("BEGIN delete: %q %v", term, err)
					return
				}
				if term, err := roundTrip(conn, r, "DELETE uid=racep,"+unit, "DELETE "+unit, "COMMIT"); err != nil || term != "OK" {
					errs <- fmt.Errorf("COMMIT delete: %q %v", term, err)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The writers cleaned up after themselves; the instance must be back
	// to its initial size and legal.
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	if srv.dir.Len() != 2000 {
		t.Errorf("entries after racing commits: %d, want 2000", srv.dir.Len())
	}
	if r := core.NewChecker(s).Check(srv.dir); !r.Legal() {
		t.Errorf("instance illegal after racing commits:\n%s", r)
	}
}

// TestServerSpacedDNRoundTrip: DNs legitimately contain spaces
// (ou=Human Resources). SEARCH base= must take the whole remainder of
// the line as the DN, and MOVE's "->" separator must keep a spaced
// source and destination unambiguous — the regression here was
// tokenizing both commands on spaces.
func TestServerSpacedDNRoundTrip(t *testing.T) {
	srv, c := startServer(t)
	c.expectOK("BEGIN")
	c.expectOK(
		"ADD ou=human resources,ou=attLabs,o=att",
		"objectClass: orgUnit",
		"objectClass: orgGroup",
		"objectClass: top",
		"ADD uid=hr lead,ou=human resources,ou=attLabs,o=att",
		"objectClass: person",
		"objectClass: top",
		"name: pat hr",
		"COMMIT",
	)
	body := c.expectOK("SEARCH (objectClass=person) base=ou=human resources,ou=attLabs,o=att")
	if len(body) != 1 || body[0] != "uid=hr lead,ou=human resources,ou=attLabs,o=att" {
		t.Errorf("search under spaced base = %v", body)
	}
	c.expectOK("BEGIN")
	c.expectOK("MOVE ou=human resources,ou=attLabs,o=att -> o=att", "COMMIT")
	c.expectOK("CHECK")
	if body := c.expectOK("GET uid=hr lead,ou=human resources,o=att"); len(body) == 0 {
		t.Errorf("moved spaced-DN entry not readable at its new DN")
	}
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	if srv.dir.ByDN("uid=hr lead,ou=human resources,o=att") == nil {
		t.Errorf("spaced-DN subtree not moved")
	}
}

// TestServerSearchRejectsTrailingGarbage: anything after the filter
// that is not base=<dn> is an error, never silently dropped.
func TestServerSearchRejectsTrailingGarbage(t *testing.T) {
	_, c := startServer(t)
	c.send("SEARCH (objectClass=person) scope=sub")
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") {
		t.Errorf("unknown trailing token accepted: %q", term)
	}
	// MOVE without the "->" separator is likewise an error, not a guess
	// at which space splits the two DNs.
	c.expectOK("BEGIN")
	c.send("MOVE ou=databases,ou=attLabs,o=att o=att")
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") {
		t.Errorf("MOVE without '->' accepted: %q", term)
	}
}

// TestServerTxActiveGaugeOnAbruptDisconnect: a session that vanishes
// mid-transaction must not leak the TxActive gauge — the deferred abort
// in serve() is what keeps it honest.
func TestServerTxActiveGaugeOnAbruptDisconnect(t *testing.T) {
	srv, c := startServer(t)
	c.expectOK("BEGIN")
	if g := srv.metrics.TxActive.Load(); g != 1 {
		t.Fatalf("TxActive after BEGIN = %d, want 1", g)
	}
	c.conn.Close() // no ABORT, no QUIT: the connection just dies
	deadline := time.Now().Add(2 * time.Second)
	for srv.metrics.TxActive.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("TxActive stuck at %d after abrupt disconnect", srv.metrics.TxActive.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

package server

import (
	"bytes"
	"testing"

	"boundschema/internal/repl"
)

// FuzzScanJournal throws arbitrary bytes at the recovery scanner — the
// same code path that validates a replica's incoming stream once it is
// on disk. The scanner must never panic, its verdict must be internally
// consistent, and rescanning the clean prefix it identifies must be
// idempotent (recovery truncates to that prefix and trusts a second
// scan to agree).
func FuzzScanJournal(f *testing.F) {
	p1 := []byte("dn: uid=a,o=att\nchangetype: add\nobjectClass: person\n\n")
	p2 := []byte("dn: uid=b,o=att\nchangetype: add\nobjectClass: person\n\n")
	valid := append(append([]byte{}, repl.RawSegment(1, p1, 0)...), repl.RawSegment(2, p2, 0)...)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(append(append([]byte{}, valid...), []byte("dn: uid=torn,o=att\nchangetype:")...))
	f.Add(append(append([]byte{}, p1...), []byte("# commit\n")...)) // legacy bare marker
	f.Add([]byte("dn: uid=h,o=att\nchangetype: add\n\n"))           // headerless journal
	f.Add([]byte("# commit seq=1 len=999 crc=deadbeef\n"))          // marker vouching for missing bytes
	corrupt := append([]byte{}, valid...)
	corrupt[10] ^= 0x01
	f.Add(corrupt)
	f.Add([]byte("x# commit seq="))

	f.Fuzz(func(t *testing.T, data []byte) {
		sr := scanJournal(data)
		if sr.tornBytes < 0 || sr.tornBytes > int64(len(data)) {
			t.Fatalf("torn bytes %d outside [0, %d]", sr.tornBytes, len(data))
		}
		if sr.verified+sr.legacy != len(sr.txns) {
			t.Fatalf("verified=%d legacy=%d but %d scanned transactions", sr.verified, sr.legacy, len(sr.txns))
		}
		if sr.verified > 0 && sr.firstSeq > sr.lastSeq {
			t.Fatalf("sequence range inverted: first=%d last=%d", sr.firstSeq, sr.lastSeq)
		}
		if sr.corrupt {
			if sr.corruptReason == "" {
				t.Fatal("corrupt verdict without a reason")
			}
			return // no clean prefix to trust
		}
		// Every verified payload must sit inside the input and carry a
		// nonzero sequence number (zero is the legacy sentinel).
		for _, jt := range sr.txns {
			if jt.legacy {
				continue
			}
			if jt.seq == 0 {
				t.Fatal("verified transaction with the legacy sequence sentinel 0")
			}
			if !bytes.Contains(data, jt.payload) {
				t.Fatalf("verified payload of seq=%d is not a substring of the input", jt.seq)
			}
		}
		clean := data[:int64(len(data))-sr.tornBytes]
		sr2 := scanJournal(clean)
		if sr2.corrupt {
			t.Fatalf("clean prefix scanned corrupt: %s", sr2.corruptReason)
		}
		if sr2.tornBytes != 0 {
			t.Fatalf("clean prefix still has %d torn bytes", sr2.tornBytes)
		}
		if sr2.verified != sr.verified || sr2.legacy != sr.legacy || sr2.lastSeq != sr.lastSeq {
			t.Fatalf("rescan disagrees: verified %d->%d legacy %d->%d lastSeq %d->%d",
				sr.verified, sr2.verified, sr.legacy, sr2.legacy, sr.lastSeq, sr2.lastSeq)
		}
	})
}

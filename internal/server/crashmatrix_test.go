package server

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"boundschema/internal/dirtree"
	"boundschema/internal/txn"
	"boundschema/internal/vfs"
	"boundschema/internal/workload"
)

// The crash matrix: run a scripted ≥50-commit workload against a
// fault-injecting file system, crash at every mutating FS operation N,
// restart through the recovery pipeline, and assert the three
// crash-consistency properties at every point:
//
//   - durability: every transaction acknowledged before the crash is
//     present after recovery;
//   - atomicity: every transaction — acknowledged or not — is all-or-
//     nothing, never partially applied;
//   - legality: the recovered instance passes the full bounding-schema
//     check (recovery itself refuses to serve otherwise).
//
// Two matrices cover both durability pipelines deterministically: the
// group-commit committer with rotation off (a sequential driver makes
// its op stream deterministic; auto-rotation would not be), and the
// per-transaction path with a small rotation threshold, so the sweep
// also crashes inside snapshot rotation — including between the rename
// and the journal truncate, the window the snapshot-seq header closes.

const crashJournalPath = "journal.ldif"

// crashTxn is one scripted workload transaction: a builder (fresh
// Transaction per run) and the DNs it adds atomically.
type crashTxn struct {
	build func() *txn.Transaction
	dns   []string
}

// crashWorkload scripts n commits: mostly single-person adds, with
// every tenth transaction a multi-entry atomic pair — an orgUnit plus
// its first person, each illegal without the other — so partial
// application is detectable structurally, not just by legality.
func crashWorkload(n int) []crashTxn {
	name := func(s string) map[string][]dirtree.Value {
		return map[string][]dirtree.Value{"name": {dirtree.String(s)}}
	}
	out := make([]crashTxn, 0, n)
	for i := 0; i < n; i++ {
		if i%10 == 5 {
			ou := fmt.Sprintf("ou=grp%d,ou=attLabs,o=att", i)
			uid := fmt.Sprintf("uid=member%d,%s", i, ou)
			i := i
			out = append(out, crashTxn{
				build: func() *txn.Transaction {
					tx := &txn.Transaction{}
					tx.Add(ou, []string{"orgUnit", "orgGroup", "top"}, nil)
					tx.Add(uid, []string{"person", "top"}, name(fmt.Sprintf("member %d", i)))
					return tx
				},
				dns: []string{ou, uid},
			})
			continue
		}
		dn := fmt.Sprintf("uid=w%03d,ou=attLabs,o=att", i)
		i := i
		out = append(out, crashTxn{
			build: func() *txn.Transaction {
				tx := &txn.Transaction{}
				tx.Add(dn, []string{"person", "top"}, name(fmt.Sprintf("worker %d", i)))
				return tx
			},
			dns: []string{dn},
		})
	}
	return out
}

// runCrashWorkload drives the scripted workload through CommitTx on a
// server journaling to the fault FS, sequentially (the determinism the
// op-counting sweep depends on). It returns the DNs of every
// acknowledged transaction; the run stops at the first commit error
// (the scripted crash, or the read-only degradation that follows it).
func runCrashWorkload(t *testing.T, fault *vfs.Fault, groupCommit bool, rotateBytes int64, txns []crashTxn) map[string]bool {
	t.Helper()
	s := workload.WhitePagesSchema()
	srv, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetFS(fault)
	srv.SetGroupCommit(groupCommit)
	srv.SetJournalRotation(rotateBytes)
	acked := make(map[string]bool)
	if err := srv.OpenJournal(crashJournalPath); err != nil {
		return acked // the crash point landed inside startup
	}
	defer srv.Close()
	for _, ct := range txns {
		rep, err := srv.CommitTx(ct.build())
		if err != nil {
			break
		}
		if !rep.Legal() {
			t.Fatalf("scripted workload transaction rejected:\n%s", rep)
		}
		for _, dn := range ct.dns {
			acked[dn] = true
		}
	}
	return acked
}

// assertRecovery restarts from the crashed file system and checks
// durability, atomicity and legality.
func assertRecovery(t *testing.T, fault *vfs.Fault, txns []crashTxn, acked map[string]bool) {
	t.Helper()
	s := workload.WhitePagesSchema()
	srv, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetFS(fault)
	if err := srv.OpenJournal(crashJournalPath); err != nil {
		t.Fatalf("recovery refused after a pure crash: %v", err)
	}
	defer srv.Close()
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	for dn := range acked {
		if srv.dir.ByDN(dn) == nil {
			t.Errorf("durability: acknowledged entry %s lost by the crash", dn)
		}
	}
	for _, ct := range txns {
		present := 0
		for _, dn := range ct.dns {
			if srv.dir.ByDN(dn) != nil {
				present++
			}
		}
		if present != 0 && present != len(ct.dns) {
			t.Errorf("atomicity: %d of %d entries of a transaction present after recovery: %v", present, len(ct.dns), ct.dns)
		}
	}
	if r := srv.checker.Check(srv.dir); !r.Legal() {
		t.Errorf("legality: recovered instance illegal:\n%s", r)
	}
}

// crashMatrixCap bounds how many crash points each matrix sweeps:
// CRASH_MATRIX_MAX overrides (CI's race job sets it), -short trims, and
// the default sweeps every operation.
func crashMatrixCap() int {
	if v := os.Getenv("CRASH_MATRIX_MAX"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	if testing.Short() {
		return 24
	}
	return 0
}

func TestCrashMatrix(t *testing.T) {
	const nCommits = 60
	txns := crashWorkload(nCommits)
	matrices := []struct {
		name        string
		groupCommit bool
		rotateBytes int64
	}{
		// Group commit with rotation off: the committer's auto-rotation
		// fires from its own goroutine, which would make op counts racy.
		{"group-commit", true, 0},
		// Per-transaction commits with a small threshold: rotation runs
		// inline, so the sweep deterministically crashes inside the
		// snapshot write, the rename, the SyncDir and the truncate.
		{"per-txn-rotating", false, 2048},
	}
	for _, m := range matrices {
		m := m
		t.Run(m.name, func(t *testing.T) {
			// Fault-free counting pass: the same workload under a script
			// that injects nothing yields the sweep bound.
			probe := vfs.NewFault()
			acked := runCrashWorkload(t, probe, m.groupCommit, m.rotateBytes, txns)
			total := probe.OpCount()
			if len(acked) < nCommits {
				t.Fatalf("fault-free run acknowledged %d entries, want at least %d commits' worth", len(acked), nCommits)
			}
			assertRecovery(t, probe, txns, acked)

			step := 1
			if cap := crashMatrixCap(); cap > 0 && total > cap {
				step = (total + cap - 1) / cap
			}
			t.Logf("matrix %s: %d mutating ops, crashing at every %d", m.name, total, step)
			for op := 1; op <= total; op += step {
				op := op
				t.Run(fmt.Sprintf("op%03d", op), func(t *testing.T) {
					fault := vfs.NewFault()
					fault.SetScript(vfs.FaultPoint{Op: op, Kind: vfs.FaultCrash})
					acked := runCrashWorkload(t, fault, m.groupCommit, m.rotateBytes, txns)
					fault.Recover()
					assertRecovery(t, fault, txns, acked)
				})
			}
		})
	}
}

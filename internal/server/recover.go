package server

import (
	"bytes"
	"errors"
	"fmt"
	iofs "io/fs"
	"time"

	"boundschema/internal/ldif"
	"boundschema/internal/repl"
	"boundschema/internal/txn"
	"boundschema/internal/vfs"
)

// This file is the crash-recovery pipeline: the journal scanner that
// validates checksums and sequence continuity, the verdict logic that
// separates a torn tail (the unacknowledged end of a crashed append —
// safe to truncate) from mid-log corruption (acknowledged data that no
// longer matches its checksum — never safe to guess about, so the
// journal is quarantined and the server refuses to start), and the
// recovery driver OpenJournal, `bsd -fsck` and the VERIFY protocol
// command share.
//
// Journal record format. Every committed transaction is one append of
//
//	<LDIF change records…>
//	# commit seq=<n> len=<payload bytes> crc=<crc32c, 8 hex digits>
//
// The marker line is an LDIF comment, so generic LDIF tooling ignores
// it. seq increases by exactly one per commit (continuing across
// snapshot rotations), len is the byte length of the records above the
// marker, and crc is their CRC32C. Because each append lands data
// before its marker, a complete marker whose payload fails verification
// cannot be a torn write — it is corruption. Two legacy formats still
// replay: bare "# commit" markers (no verification, continuity tracking
// re-bases at the next checksummed marker) and fully headerless
// journals (one transaction per record).
//
// Snapshots carry their own continuity header: rotation writes
// "# snapshot-seq <n>" as the first line, so a crash between the
// snapshot rename and the journal truncate no longer poisons restart —
// replay simply skips journal records with seq ≤ n instead of failing
// on re-applied transactions.

// The segment framing — marker rendering, parsing and the CRC32C — is
// owned by internal/repl, because the on-disk journal and the
// replication wire stream are the same byte format. This file keeps the
// scanner, verdict logic and replay driver.
const snapshotSeqPrefix = "# snapshot-seq "

// snapshotEpochPrefix heads the second snapshot line, recording the
// replication epoch the snapshot was taken under. Absent on snapshots
// from before epochs existed (epoch 0, "unknown").
const snapshotEpochPrefix = "# snapshot-epoch "

// journalTxn is one scanned transaction: the payload bytes of its LDIF
// change records plus the marker header that vouched for them. seq is 0
// for legacy records (bare marker or headerless journal); epoch is 0
// for records written before replication epochs existed.
type journalTxn struct {
	seq     uint64
	epoch   uint64
	payload []byte
	legacy  bool
}

// scanResult is the outcome of walking a journal byte-for-byte without
// applying anything.
type scanResult struct {
	txns       []journalTxn
	verified   int    // records whose checksummed marker validated
	legacy     int    // records accepted without verification
	headerless bool   // no markers at all: one transaction per record
	prefix     []byte // headerless records preceding the first marker
	// (a journal upgraded in place: the first checksummed marker covers
	// only its own payload, so the bytes before it are pre-marker
	// history, replayed one transaction per record)
	tornBytes int64  // unacknowledged tail after the last complete marker
	lastSeq   uint64 // highest verified sequence number
	firstSeq  uint64 // first verified sequence number (0 if none)
	lastEpoch uint64 // highest epoch any verified marker carries

	corrupt       bool
	corruptReason string
	corruptRecord int // 1-based record index of the first corruption
	afterCorrupt  int // complete records from the corruption onward
}

// scanJournal walks the journal and classifies every byte: verified
// records, legacy records, a torn tail, or corruption. It never applies
// or decodes LDIF — that is replay's job, after the verdict.
func scanJournal(data []byte) *scanResult {
	sr := &scanResult{}
	if len(data) == 0 {
		return sr
	}
	if !bytes.Contains(data, []byte(repl.MarkerPrefix)) {
		sr.headerless = true
		return sr
	}
	var (
		pos, segStart int
		lastComplete  int    // offset just past the last complete marker
		expect        uint64 // next expected seq; 0 = unknown (start or after legacy)
		record        int    // 1-based index of the record being scanned
	)
	fail := func(reason string) {
		sr.corrupt = true
		sr.corruptReason = reason
		sr.corruptRecord = record
	}
	for pos < len(data) {
		nl := bytes.IndexByte(data[pos:], '\n')
		if nl < 0 {
			break // incomplete final line: part of the torn tail
		}
		line := data[pos : pos+nl]
		lineEnd := pos + nl + 1
		if !repl.IsMarkerLine(line) {
			pos = lineEnd
			continue
		}
		record++
		if sr.corrupt {
			// Verdict already reached; keep counting implicated records.
			sr.afterCorrupt++
			pos, segStart, lastComplete = lineEnd, lineEnd, lineEnd
			continue
		}
		payload := data[segStart:pos]
		seq, length, crc, epoch, legacy, err := repl.ParseMarker(line)
		switch {
		case err != nil:
			fail(err.Error())
		case legacy:
			sr.txns = append(sr.txns, journalTxn{payload: payload, legacy: true})
			sr.legacy++
			expect = 0 // continuity unknown until the next checksummed marker
		default:
			if record == 1 && int64(len(payload)) > length {
				// More bytes than the first marker vouches for: if the
				// trailing `length` bytes check out, the rest is a
				// headerless journal this server was upgraded over.
				cut := len(payload) - int(length)
				if repl.Checksum(payload[cut:]) == crc {
					sr.prefix = payload[:cut]
					payload = payload[cut:]
				}
			}
			switch {
			case int64(len(payload)) != length:
				fail(fmt.Sprintf("record seq=%d: payload is %d bytes, marker says %d", seq, len(payload), length))
			case repl.Checksum(payload) != crc:
				fail(fmt.Sprintf("record seq=%d: checksum mismatch (stored %08x, computed %08x)",
					seq, crc, repl.Checksum(payload)))
			case expect != 0 && seq != expect:
				fail(fmt.Sprintf("sequence break: expected seq=%d, found seq=%d", expect, seq))
			default:
				sr.txns = append(sr.txns, journalTxn{seq: seq, epoch: epoch, payload: payload})
				sr.verified++
				if sr.firstSeq == 0 {
					sr.firstSeq = seq
				}
				sr.lastSeq = seq
				if epoch > sr.lastEpoch {
					sr.lastEpoch = epoch
				}
				expect = seq + 1
			}
		}
		if sr.corrupt {
			sr.afterCorrupt++
		}
		pos, segStart, lastComplete = lineEnd, lineEnd, lineEnd
	}
	sr.tornBytes = int64(len(data) - lastComplete)
	return sr
}

// RecoveryReport summarizes one pass of the recovery pipeline — what
// OpenJournal did at startup, what `bsd -fsck` reports, and what the
// recovery block of METRICS exposes.
type RecoveryReport struct {
	JournalPath        string `json:"journal"`
	SnapshotLoaded     bool   `json:"snapshot_loaded"`
	SnapshotSeq        uint64 `json:"snapshot_seq"`
	RecordsScanned     int    `json:"records_scanned"`  // checksum-verified records
	LegacyRecords      int    `json:"legacy_records"`   // replayed without verification
	RecordsReplayed    int    `json:"records_replayed"` // transactions applied
	RecordsTrusted     int    `json:"records_trusted"`  // applied with per-txn checks skipped
	RecordsSkipped     int    `json:"records_skipped"`  // seq ≤ snapshot seq: already compacted
	TornBytes          int64  `json:"torn_bytes"`
	RecordsTruncated   int    `json:"records_truncated"` // partial records dropped with the tail
	RecordsQuarantined int    `json:"records_quarantined"`
	Quarantined        bool   `json:"quarantined"`
	QuarantinePath     string `json:"quarantine_path,omitempty"`
	CorruptReason      string `json:"corrupt_reason,omitempty"`
	// LegalityUs is the terminal full legality proof's duration in
	// microseconds; LegalityMs keeps the pre-existing key readable for
	// older tooling but floors sub-millisecond proofs to 0.
	LegalityUs int64 `json:"legality_us"`
	LegalityMs int64 `json:"legality_ms"`
	Legal      bool  `json:"legal"`
	Clean      bool  `json:"clean"` // nothing truncated, nothing quarantined
}

// Lines renders the report for humans (fsck output, VERIFY bodies).
func (r *RecoveryReport) Lines() []string {
	out := []string{
		fmt.Sprintf("journal %s: scanned=%d legacy=%d replayed=%d trusted=%d skipped=%d",
			r.JournalPath, r.RecordsScanned, r.LegacyRecords, r.RecordsReplayed, r.RecordsTrusted, r.RecordsSkipped),
	}
	if r.SnapshotLoaded {
		out = append(out, fmt.Sprintf("snapshot: loaded seq=%d", r.SnapshotSeq))
	} else {
		out = append(out, "snapshot: none")
	}
	if r.TornBytes > 0 {
		out = append(out, fmt.Sprintf("torn tail: %d bytes (%d partial record) truncated", r.TornBytes, r.RecordsTruncated))
	}
	if r.Quarantined {
		out = append(out, fmt.Sprintf("CORRUPT: %s", r.CorruptReason))
		out = append(out, fmt.Sprintf("quarantined %d record(s) to %s; refusing to serve", r.RecordsQuarantined, r.QuarantinePath))
	}
	if r.Legal {
		out = append(out, fmt.Sprintf("legality: instance legal (full check in %d µs)", r.LegalityUs))
	} else if !r.Quarantined {
		out = append(out, "legality: INSTANCE ILLEGAL")
	}
	if r.Clean {
		out = append(out, "verdict: clean")
	} else {
		out = append(out, "verdict: not clean")
	}
	return out
}

// quarantine copies the untrusted journal bytes to <path>.quarantine
// (durably: write + fsync + parent SyncDir) so the evidence survives
// operator intervention, and returns the quarantine path.
func (s *Server) quarantine(path string, data []byte) (string, error) {
	qpath := path + ".quarantine"
	f, err := s.fs.Create(qpath)
	if err != nil {
		return qpath, err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = s.fs.SyncDir(vfs.DirOf(qpath))
	}
	return qpath, err
}

// loadSnapshot reads and validates the snapshot sidecar, returning the
// directory it holds, the sequence number it compacted through and the
// replication epoch it was taken under (both 0 for snapshots written
// before the headers existed, or none).
func (s *Server) loadSnapshot(snapPath string) (loaded bool, snapSeq, snapEpoch uint64, err error) {
	data, rerr := s.fs.ReadFile(snapPath)
	if rerr != nil {
		if errors.Is(rerr, iofs.ErrNotExist) {
			return false, 0, 0, nil
		}
		return false, 0, 0, rerr
	}
	snapSeq, snapEpoch = parseSnapshotHeaders(data)
	d, rerr := ldif.ReadDirectory(bytes.NewReader(data), s.schema.Registry)
	if rerr != nil {
		return false, 0, 0, fmt.Errorf("server: snapshot %s: %v", snapPath, rerr)
	}
	if r := s.checker.Check(d); !r.Legal() {
		return false, 0, 0, fmt.Errorf("server: snapshot %s is illegal:\n%s", snapPath, r)
	}
	s.mu.Lock()
	s.dir = d
	s.dir.EnsureEncoded()
	s.reindex(d)
	s.mu.Unlock()
	return true, snapSeq, snapEpoch, nil
}

// parseSnapshotHeaders reads the "# snapshot-seq" and "# snapshot-epoch"
// comment lines off the top of a snapshot blob. Either may be absent
// (older snapshots); the LDIF reader ignores both as comments.
func parseSnapshotHeaders(data []byte) (seq, epoch uint64) {
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			nl = len(data) - 1
		}
		line := data[:nl]
		data = data[nl+1:]
		if rest, ok := bytes.CutPrefix(line, []byte(snapshotSeqPrefix)); ok {
			fmt.Sscanf(string(rest), "%d", &seq)
			continue
		}
		if rest, ok := bytes.CutPrefix(line, []byte(snapshotEpochPrefix)); ok {
			fmt.Sscanf(string(rest), "%d", &epoch)
			continue
		}
		return seq, epoch // headers only ever lead the file
	}
	return seq, epoch
}

// recoverJournal runs the full recovery pipeline for path: load the
// snapshot, scan the journal, quarantine corruption or truncate a torn
// tail, replay, and prove the recovered instance legal with the full
// checker. It leaves s.journal open for appending and s.commitSeq
// continuing the on-disk sequence. The report is returned even when err
// is non-nil, with as much detail as recovery established.
func (s *Server) recoverJournal(path string) (*RecoveryReport, error) {
	rep := &RecoveryReport{JournalPath: path}
	snapPath := path + ".snapshot"

	loaded, snapSeq, snapEpoch, err := s.loadSnapshot(snapPath)
	if err != nil {
		return rep, err
	}
	rep.SnapshotLoaded, rep.SnapshotSeq = loaded, snapSeq

	data, err := s.fs.ReadFile(path)
	if err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return rep, err
	}
	sr := scanJournal(data)
	rep.RecordsScanned = sr.verified
	rep.LegacyRecords = sr.legacy
	rep.TornBytes = sr.tornBytes
	if sr.tornBytes > 0 {
		rep.RecordsTruncated = 1
	}

	// Continuity across the snapshot boundary: the journal may begin at
	// or before snapSeq+1 (rotation truncates, a crash mid-rotation does
	// not), but a first record beyond snapSeq+1 means commits are missing.
	if !sr.corrupt && snapSeq > 0 && sr.firstSeq > snapSeq+1 {
		sr.corrupt = true
		sr.corruptRecord = 1
		sr.corruptReason = fmt.Sprintf("journal begins at seq=%d but snapshot compacted through seq=%d: records missing", sr.firstSeq, snapSeq)
		sr.afterCorrupt = len(sr.txns)
	}

	quarantineNow := func(reason string, nRecords int) (*RecoveryReport, error) {
		rep.Quarantined = true
		rep.CorruptReason = reason
		rep.RecordsQuarantined = nRecords
		qpath, qerr := s.quarantine(path, data)
		rep.QuarantinePath = qpath
		if qerr != nil {
			return rep, fmt.Errorf("server: journal %s: %s; quarantine to %s also failed: %v", path, reason, qpath, qerr)
		}
		s.logf("journal %s: %s; %d record(s) quarantined to %s", path, reason, nRecords, qpath)
		return rep, fmt.Errorf("server: journal %s: %s; quarantined to %s — refusing to serve (inspect with bsd -fsck; move or delete the journal to start from the snapshot)", path, reason, qpath)
	}
	if sr.corrupt {
		return quarantineNow(sr.corruptReason, sr.afterCorrupt)
	}

	// Decode into transactions. Headerless journals predate markers:
	// every record was committed on its own. A record is trusted when its
	// checksummed marker verified — it was proven legal before it was
	// acknowledged, so replay may skip the per-transaction Figure 5
	// checks; legacy records (bare marker, headerless, pre-marker prefix)
	// carry no such proof and keep the checked path.
	type replayTxn struct {
		recs    []*ldif.Record
		seq     uint64
		trusted bool
	}
	var txns []replayTxn
	if sr.headerless {
		recs, rerr := ldif.NewReader(bytes.NewReader(data)).ReadAll()
		if rerr != nil {
			return quarantineNow(fmt.Sprintf("headerless journal undecodable: %v", rerr), 0)
		}
		rep.LegacyRecords = len(recs)
		for _, rec := range recs {
			txns = append(txns, replayTxn{recs: []*ldif.Record{rec}})
		}
	} else {
		if len(sr.prefix) > 0 {
			recs, rerr := ldif.NewReader(bytes.NewReader(sr.prefix)).ReadAll()
			if rerr != nil {
				return quarantineNow(fmt.Sprintf("pre-marker journal history undecodable: %v", rerr), 0)
			}
			rep.LegacyRecords += len(recs)
			for _, rec := range recs {
				txns = append(txns, replayTxn{recs: []*ldif.Record{rec}})
			}
		}
		for i, jt := range sr.txns {
			if len(bytes.TrimSpace(jt.payload)) == 0 {
				continue
			}
			recs, rerr := ldif.NewReader(bytes.NewReader(jt.payload)).ReadAll()
			if rerr != nil {
				return quarantineNow(fmt.Sprintf("record %d (seq=%d) undecodable despite intact marker: %v", i+1, jt.seq, rerr), len(sr.txns)-i)
			}
			txns = append(txns, replayTxn{recs: recs, seq: jt.seq, trusted: !jt.legacy})
		}
	}

	// Replay, skipping transactions the snapshot already contains (a
	// crash between the snapshot rename and the journal truncate leaves
	// them in the journal; their seq numbers say so).
	//
	// The whole replay runs under ONE hold of s.mu: recovery finishes
	// before the listener accepts its first session, so there is no
	// reader to yield to, and per-transaction lock churn was measurable
	// noise in the replay benchmark (E17). Trusted records go through a
	// CheckNone applier with no per-transaction re-encode — the dirtree
	// layer patches the encoding in O(|Δ|) — and the terminal full proof
	// below is what makes that safe: a doctored-but-checksum-valid
	// journal either fails Apply outright (duplicate DN, missing parent)
	// or is caught as an illegal recovered instance and refused. Legacy
	// records keep the checked path, with the incremental indexes
	// refreshed first if trusted records ran in between.
	lastSeq := snapSeq
	trusted := txn.NewTrustedApplier(s.schema)
	indexesFresh := true
	s.mu.Lock()
	for _, rt := range txns {
		if rt.seq != 0 && rt.seq <= snapSeq {
			rep.RecordsSkipped++
			continue
		}
		tx, terr := txn.FromRecords(rt.recs, s.schema.Registry)
		if terr != nil {
			s.mu.Unlock()
			return rep, fmt.Errorf("server: journal %s: %v", path, terr)
		}
		if rt.trusted {
			if _, aerr := trusted.Apply(s.dir, tx); aerr != nil {
				s.mu.Unlock()
				return rep, fmt.Errorf("server: journal %s replay: %v", path, aerr)
			}
			rep.RecordsTrusted++
			indexesFresh = false
		} else {
			if !indexesFresh {
				s.reindex(s.dir)
				indexesFresh = true
			}
			report, aerr := s.applier.Apply(s.dir, tx)
			if aerr != nil {
				s.mu.Unlock()
				return rep, fmt.Errorf("server: journal %s replay: %v", path, aerr)
			}
			if !report.Legal() {
				s.mu.Unlock()
				return rep, fmt.Errorf("server: journal %s replay rejected:\n%s", path, report)
			}
		}
		rep.RecordsReplayed++
		if rt.seq != 0 {
			lastSeq = rt.seq
		} else {
			lastSeq++ // legacy records advance the sequence implicitly
		}
	}
	s.dir.EnsureEncoded() // keep readers free of the lazy re-encode
	if !indexesFresh {
		s.reindex(s.dir) // trusted replay bypassed count/key maintenance
	}
	s.mu.Unlock()

	// The paper's invariant, end to end: recovery finishes by proving
	// the whole replayed instance legal before the server serves it.
	t0 := time.Now()
	s.mu.RLock()
	fullReport := s.checker.Check(s.dir)
	s.mu.RUnlock()
	rep.LegalityUs = time.Since(t0).Microseconds()
	rep.LegalityMs = rep.LegalityUs / 1000
	rep.Legal = fullReport.Legal()
	if !rep.Legal {
		return rep, fmt.Errorf("server: journal %s: recovered instance fails the full legality check:\n%s", path, fullReport)
	}

	// Open for appending and drop the torn tail so future appends extend
	// a clean prefix of committed transactions.
	f, err := s.fs.OpenAppend(path)
	if err != nil {
		return rep, err
	}
	size := int64(len(data))
	if sr.tornBytes > 0 {
		size -= sr.tornBytes
		err := f.Truncate(size)
		if err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return rep, fmt.Errorf("server: journal %s: truncating torn tail: %v", path, err)
		}
		s.logf("journal %s: discarded %d bytes of unacknowledged torn tail (%d partial record)", path, sr.tornBytes, rep.RecordsTruncated)
	}
	rep.Clean = sr.tornBytes == 0 && !rep.Quarantined

	// The recovered replication epoch is the highest the disk remembers
	// — snapshot header or commit marker — floored at 1: every live
	// server runs at epoch ≥ 1, so epoch 0 stays reserved for
	// "pre-epoch/unknown" on the wire and on disk.
	epoch := snapEpoch
	if sr.lastEpoch > epoch {
		epoch = sr.lastEpoch
	}
	if epoch == 0 {
		epoch = 1
	}

	s.mu.Lock()
	s.journal = &journal{path: path, snapPath: snapPath, f: f, size: size}
	s.commitSeq = lastSeq
	s.epoch.Store(epoch)
	s.mu.Unlock()
	s.metrics.JournalBytes.Store(size)
	return rep, nil
}

// Fsck runs the recovery pipeline for path without serving: the same
// verdicts and repairs as startup — snapshot load, checksum and
// sequence validation, torn-tail truncation, corruption quarantine,
// full legality check — then closes the journal again. The report is
// always returned; err non-nil means the journal was refused (and the
// server would refuse to start on it too, until the quarantined file is
// moved aside).
func (s *Server) Fsck(path string) (*RecoveryReport, error) {
	rep, err := s.recoverJournal(path)
	s.metrics.noteRecovery(rep)
	if err == nil {
		s.mu.Lock()
		j := s.journal
		s.journal = nil
		s.mu.Unlock()
		if j != nil {
			j.f.Close()
		}
	}
	return rep, err
}

// verifyNow is the VERIFY protocol command's engine: re-scan the
// on-disk journal against its checksums and sequence numbers, then run
// the full legality checker over the served instance. It must run at a
// point where no journal append is in flight — under s.mu in
// per-transaction mode, or at the committer's quiescent point in
// group-commit mode (both of which the caller arranges).
func (s *Server) verifyNow() ([]string, error) {
	var lines []string
	if s.journal != nil {
		data, err := s.fs.ReadFile(s.journal.path)
		if err != nil && !errors.Is(err, iofs.ErrNotExist) {
			return lines, fmt.Errorf("journal unreadable: %v", err)
		}
		sr := scanJournal(data)
		lines = append(lines, fmt.Sprintf("journal %s: bytes=%d records=%d legacy=%d last_seq=%d",
			s.journal.path, len(data), sr.verified, sr.legacy, sr.lastSeq))
		if sr.headerless {
			lines = append(lines, "journal format: headerless (pre-checksum)")
		}
		if sr.corrupt {
			return lines, fmt.Errorf("journal corrupt: %s", sr.corruptReason)
		}
		if sr.tornBytes > 0 {
			return lines, fmt.Errorf("journal has %d torn bytes past the last marker", sr.tornBytes)
		}
		if _, snapSeq, err := s.peekSnapshotSeq(); err == nil {
			lines = append(lines, fmt.Sprintf("snapshot: present seq=%d", snapSeq))
		} else {
			lines = append(lines, "snapshot: none")
		}
	} else {
		lines = append(lines, "journal: off")
	}
	t0 := time.Now()
	report := s.checker.Check(s.dir)
	lines = append(lines, fmt.Sprintf("legality: checked in %d ms", time.Since(t0).Milliseconds()))
	if !report.Legal() {
		return lines, fmt.Errorf("served instance is illegal: %d violation(s)", len(report.Violations))
	}
	lines = append(lines, "verify: clean")
	return lines, nil
}

// peekSnapshotSeq reports whether the snapshot sidecar exists and the
// sequence number its header records, without loading the instance.
func (s *Server) peekSnapshotSeq() (bool, uint64, error) {
	if s.journal == nil {
		return false, 0, errors.New("no journal")
	}
	data, err := s.fs.ReadFile(s.journal.snapPath)
	if err != nil {
		return false, 0, err
	}
	var seq uint64
	if rest, ok := bytes.CutPrefix(data, []byte(snapshotSeqPrefix)); ok {
		if nl := bytes.IndexByte(rest, '\n'); nl >= 0 {
			fmt.Sscanf(string(rest[:nl]), "%d", &seq)
		}
	}
	return true, seq, nil
}

package server

import (
	"fmt"
	"math/rand"
	"testing"

	"boundschema/internal/dirtree"
	"boundschema/internal/filter"
	"boundschema/internal/hquery"
	"boundschema/internal/repl"
	"boundschema/internal/vfs"
	"boundschema/internal/workload"
)

// The index ≡ scan differential oracle: the planner may choose any
// access path it likes, but for every filter shape the result must be
// exactly what a brute-force scan of the view produces — over all three
// scenario corpora, through live mutation, across a crash/recovery
// restart, and on a replica before and after promotion.

// diffFilters builds a filter corpus covering every shape the planner
// distinguishes, instantiated with attribute values sampled from the
// directory (so equality and prefix probes actually hit) plus misses and
// unparsable values for the fallback paths.
func diffFilters(d *dirtree.Directory, rng *rand.Rand) []filter.Filter {
	var fs []filter.Filter
	ents := d.Entries()
	seen := map[string]bool{}
	for tries := 0; tries < 200 && len(seen) < 8; tries++ {
		e := ents[rng.Intn(len(ents))]
		for _, a := range e.AttrNames() {
			if a == dirtree.AttrObjectClass || seen[a] {
				continue
			}
			seen[a] = true
			vals := e.Attr(a)
			text := vals[rng.Intn(len(vals))].String()
			fs = append(fs,
				filter.Compare{Attr: a, Op: filter.OpEqual, Value: text},
				filter.Compare{Attr: a, Op: filter.OpEqual, Value: text + "-nope"},
				filter.Compare{Attr: a, Op: filter.OpGE, Value: text},
				filter.Compare{Attr: a, Op: filter.OpLE, Value: text},
				filter.Compare{Attr: a, Op: filter.OpGE, Value: "not a number"},
				filter.Compare{Attr: a, Op: filter.OpApprox, Value: text},
				filter.Compare{Attr: a, Op: filter.OpPresent},
				filter.Not{Sub: filter.Compare{Attr: a, Op: filter.OpEqual, Value: text}},
			)
			if len(text) >= 2 {
				h := len(text) / 2
				fs = append(fs,
					filter.Substring{Attr: a, Initial: text[:h]},
					filter.Substring{Attr: a, Initial: text[:1], Final: text[h:]},
					filter.Substring{Attr: a, Any: []string{text[h:]}},
					filter.Substring{Attr: a, Initial: text[:1], Any: []string{text[h : h+1]}},
				)
			}
		}
	}
	classes := d.ClassNames()
	for i, c := range classes {
		fs = append(fs, filter.ClassIs(c), filter.Not{Sub: filter.ClassIs(c)})
		other := classes[(i+1)%len(classes)]
		fs = append(fs, filter.And{filter.ClassIs(c), filter.ClassIs(other)})
	}
	// Conjunctions and disjunctions mixing class atoms with typed atoms.
	if len(fs) > 4 && len(classes) > 0 {
		c := filter.ClassIs(classes[rng.Intn(len(classes))])
		fs = append(fs,
			filter.And{c, fs[0]},
			filter.And{fs[0], fs[2], c},
			filter.Or{fs[0], c},
			filter.And{}, // matches everything
			filter.Or{},  // matches nothing
		)
	}
	return fs
}

// diffViews picks the view shapes SEARCH can evaluate against.
func diffViews(d *dirtree.Directory) []dirtree.View {
	views := []dirtree.View{d.All(), d.EmptyView()}
	ents := d.Entries()
	if len(ents) > 3 {
		views = append(views,
			d.SubtreeView(ents[len(ents)/3]),
			d.ExceptSubtreeView(ents[len(ents)/2]))
	}
	return views
}

// assertIndexScanAgree runs every filter over every view twice — through
// the planner and by brute-force scan — and requires identical results.
func assertIndexScanAgree(t *testing.T, d *dirtree.Directory, fs []filter.Filter, label string) {
	t.Helper()
	for _, v := range diffViews(d) {
		for _, f := range fs {
			got, plan := hquery.EvalSelect(f, v)
			var want []*dirtree.Entry
			for _, e := range v.Entries() {
				if f.Matches(e) {
					want = append(want, e)
				}
			}
			if len(got) != len(want) {
				t.Errorf("%s: %s over %s via %s: %d entries, scan found %d",
					label, f, v, plan.Strategy, len(got), len(want))
				continue
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("%s: %s over %s via %s: entry %d = %s, scan found %s",
						label, f, v, plan.Strategy, i, got[i].DN(), want[i].DN())
					break
				}
			}
		}
	}
}

// TestSearchIndexScanDifferential runs the oracle over the three
// scenario corpora, then keeps it running through a burst of random
// value and structural mutations so the incremental index maintenance is
// what answers the re-planned probes.
func TestSearchIndexScanDifferential(t *testing.T) {
	cases := []struct {
		name  string
		build func(rng *rand.Rand) *dirtree.Directory
	}{
		{"whitepages", func(rng *rand.Rand) *dirtree.Directory {
			return workload.Corpus(workload.WhitePagesSchema(), rng, 400)
		}},
		{"netpolicy", func(rng *rand.Rand) *dirtree.Directory {
			return workload.NetPolicyCorpus(workload.NetPolicySchema(), rng, 400)
		}},
		{"semistruct", func(rng *rand.Rand) *dirtree.Directory {
			return workload.SemiStructCorpus(workload.SemiStructSchema(), rng, 400)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			d := tc.build(rng)
			fs := diffFilters(d, rng)
			assertIndexScanAgree(t, d, fs, "initial")

			// Mutate in place: value edits drive the eager index hooks,
			// structural edits drive the patch-path hooks. Legality is
			// irrelevant here — only index ≡ scan is under test.
			var added []*dirtree.Entry
			for i := 0; i < 60; i++ {
				ents := d.Entries()
				e := ents[rng.Intn(len(ents))]
				switch rng.Intn(5) {
				case 0:
					e.AddValue("name", dirtree.String(fmt.Sprintf("mut-%d", i)))
				case 1:
					if names := e.AttrNames(); len(names) > 0 {
						a := names[rng.Intn(len(names))]
						if a != dirtree.AttrObjectClass {
							vals := e.Attr(a)
							e.RemoveValue(a, vals[rng.Intn(len(vals))])
						}
					}
				case 2:
					e.SetValues("name", dirtree.String(fmt.Sprintf("set-%d", i)))
				case 3:
					parent := ents[rng.Intn(len(ents))]
					c, err := d.AddChild(parent, fmt.Sprintf("cn=diff-%d", i), "top")
					if err == nil {
						c.AddValue("name", dirtree.String(fmt.Sprintf("child-%d", i)))
						added = append(added, c)
					}
				case 4:
					if len(added) > 0 {
						j := rng.Intn(len(added))
						if _, err := d.DeleteSubtree(added[j]); err == nil {
							added[j] = added[len(added)-1]
							added = added[:len(added)-1]
						}
					}
				}
			}
			assertIndexScanAgree(t, d, fs, "mutated")
		})
	}
}

// TestSearchDifferentialRestart: the oracle must hold on a directory
// rebuilt by journal recovery, and the recovered answers must equal the
// pre-crash ones.
func TestSearchDifferentialRestart(t *testing.T) {
	fault := vfs.NewFault()
	srv := newFaultServer(t, fault, true)
	if err := srv.OpenJournal(crashJournalPath); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := commitPerson(t, srv, fmt.Sprintf("sd%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(11))
	srv.mu.RLock()
	d := srv.dir
	srv.mu.RUnlock()
	fs := diffFilters(d, rng)
	assertIndexScanAgree(t, d, fs, "pre-restart")
	before := resultDNs(d, fs)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2 := newFaultServer(t, fault, true)
	if err := srv2.OpenJournal(crashJournalPath); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	t.Cleanup(func() { srv2.Close() })
	srv2.mu.RLock()
	d2 := srv2.dir
	srv2.mu.RUnlock()
	assertIndexScanAgree(t, d2, fs, "post-restart")
	after := resultDNs(d2, fs)
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("filter %s: pre-restart %q, post-restart %q", fs[i], before[i], after[i])
		}
	}
}

// resultDNs evaluates each filter through the planner and joins the
// matching DNs, for cross-instance comparison.
func resultDNs(d *dirtree.Directory, fs []filter.Filter) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		ents, _ := hquery.EvalSelect(f, d.All())
		for _, e := range ents {
			out[i] += e.DN() + "\n"
		}
	}
	return out
}

// TestSearchDifferentialReplica: the oracle must hold on a replica's
// directory after streaming catch-up (the trusted apply path), keep
// agreeing with the primary, and survive promotion plus the first
// post-failover commit.
func TestSearchDifferentialReplica(t *testing.T) {
	primary, addr := startPrimary(t, repl.Async)
	r := startReplica(t, vfs.NewFault(), addr)
	for i := 0; i < 25; i++ {
		if err := commitPerson(t, primary, fmt.Sprintf("rd%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitSeq(t, r, commitSeqOf(primary))

	rng := rand.New(rand.NewSource(13))
	primary.mu.RLock()
	pd := primary.dir
	primary.mu.RUnlock()
	fs := diffFilters(pd, rng)
	assertIndexScanAgree(t, pd, fs, "primary")
	r.mu.RLock()
	rd := r.dir
	r.mu.RUnlock()
	assertIndexScanAgree(t, rd, fs, "replica")
	pres, rres := resultDNs(pd, fs), resultDNs(rd, fs)
	for i := range pres {
		if pres[i] != rres[i] {
			t.Errorf("filter %s: primary %q, replica %q", fs[i], pres[i], rres[i])
		}
	}

	primary.Close()
	if _, err := r.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if err := commitPerson(t, r, "postpromote"); err != nil {
		t.Fatal(err)
	}
	r.mu.RLock()
	rd = r.dir
	r.mu.RUnlock()
	assertIndexScanAgree(t, rd, fs, "promoted")
	if ents, _ := hquery.EvalSelect(filter.Compare{Attr: "name", Op: filter.OpEqual, Value: "postpromote"}, rd.All()); len(ents) != 1 {
		t.Errorf("post-promotion commit not indexed: %d matches", len(ents))
	}
}

package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"boundschema/internal/core"
	"boundschema/internal/ldif"
	"boundschema/internal/workload"
)

// blockingJournal wraps the real journal file with a gated, optionally
// failing Sync, so tests can hold an fsync in flight while more commits
// stage behind it — the window the group-commit pipeline exists for.
type blockingJournal struct {
	f        *os.File
	gate     chan struct{} // Sync parks here until the test closes it
	syncing  chan struct{} // buffered(1); signaled when a Sync starts
	failSync atomic.Bool
	syncs    atomic.Int64
}

func (j *blockingJournal) Write(p []byte) (int, error) { return j.f.Write(p) }

func (j *blockingJournal) Sync() error {
	j.syncs.Add(1)
	select {
	case j.syncing <- struct{}{}:
	default:
	}
	if j.gate != nil {
		<-j.gate
	}
	if j.failSync.Load() {
		return errors.New("fsync failed (injected)")
	}
	return j.f.Sync()
}

func (j *blockingJournal) Truncate(n int64) error { return j.f.Truncate(n) }
func (j *blockingJournal) Close() error           { return j.f.Close() }

// injectBlocking swaps in the gated journal. Taking srv.mu orders the
// swap before any commit staged afterwards, and the committer only
// touches the file while processing staged work, so the committer's next
// read of journal.f observes the swap.
func injectBlocking(srv *Server, bj *blockingJournal) {
	srv.mu.Lock()
	bj.f = srv.journal.f.(*os.File)
	srv.journal.f = bj
	srv.mu.Unlock()
}

// startGroupServer is startJournaledServer minus the pre-dialed client:
// group-commit tests open several connections themselves.
func startGroupServer(t *testing.T, rotateBytes int64) (*Server, string, string) {
	t.Helper()
	s := workload.WhitePagesSchema()
	journal := filepath.Join(t.TempDir(), "journal.ldif")
	srv, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetJournalRotation(rotateBytes)
	if err := srv.OpenJournal(journal); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, journal
}

// waitStaged polls until at least n records sit in the committer's
// staging queue (i.e. applied but waiting behind an in-flight fsync).
func waitStaged(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.committer.mu.Lock()
		got := len(srv.committer.staged)
		srv.committer.mu.Unlock()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d commits staged behind the in-flight sync", got, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// encodeDir serializes the live directory, for byte-identity checks.
func encodeDir(t *testing.T, srv *Server) string {
	t.Helper()
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	var buf bytes.Buffer
	if err := ldif.WriteDirectory(&buf, srv.dir); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func waitSyncStart(t *testing.T, bj *blockingJournal) {
	t.Helper()
	select {
	case <-bj.syncing:
	case <-time.After(5 * time.Second):
		t.Fatal("no Sync started within 5s")
	}
}

// TestGroupCommitBatchesConcurrentCommits is the tentpole's happy path:
// commits staged while an fsync is in flight coalesce into one batch
// (one write + one Sync), readers are never blocked by the disk, and a
// restart replays every acknowledged commit.
func TestGroupCommitBatchesConcurrentCommits(t *testing.T) {
	srv, addr, journal := startGroupServer(t, 0)
	const writers = 8
	clients := make([]*client, writers)
	for i := range clients {
		clients[i] = dialClient(t, addr)
		clients[i].expectOK("BEGIN")
		// Everything but the COMMIT line: the transaction is built but
		// not yet submitted.
		lines := addPersonLines(fmt.Sprintf("gc%d", i))
		clients[i].send(lines[:len(lines)-1]...)
	}

	bj := &blockingJournal{gate: make(chan struct{}), syncing: make(chan struct{}, 1)}
	injectBlocking(srv, bj)

	// First COMMIT opens a batch whose fsync parks on the gate...
	clients[0].send("COMMIT")
	waitSyncStart(t, bj)
	// ...and the other seven apply and stage behind it.
	for _, c := range clients[1:] {
		c.send("COMMIT")
	}
	waitStaged(t, srv, writers-1)

	// Reader liveness: a SEARCH completes while the fsync is still in
	// flight, because the disk works outside the server's write lock.
	reader := dialClient(t, addr)
	type searchResult struct {
		term string
		err  error
	}
	res := make(chan searchResult, 1)
	go func() {
		if _, err := reader.conn.Write([]byte("SEARCH (objectClass=person)\n")); err != nil {
			res <- searchResult{err: err}
			return
		}
		for {
			line, err := reader.r.ReadString('\n')
			if err != nil {
				res <- searchResult{err: err}
				return
			}
			line = strings.TrimRight(line, "\n")
			if line == "OK" || line == "ILLEGAL" || strings.HasPrefix(line, "ERR ") {
				res <- searchResult{term: line}
				return
			}
		}
	}()
	select {
	case r := <-res:
		if r.err != nil || r.term != "OK" {
			t.Fatalf("SEARCH during in-flight sync: term=%q err=%v", r.term, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SEARCH blocked behind an in-flight fsync")
	}

	// Release the disk: the gated batch lands, then the seven staged
	// commits land as ONE batch — two Syncs for eight commits.
	close(bj.gate)
	for i, c := range clients {
		if _, term := c.until(); term != "OK" {
			t.Fatalf("commit %d replied %q", i, term)
		}
	}
	if got := bj.syncs.Load(); got != 2 {
		t.Errorf("syncs for 1+7 batched commits = %d, want 2", got)
	}
	if f, n := srv.metrics.Fsyncs(), srv.metrics.BatchedCommits(); f != 2 || n != writers {
		t.Errorf("metrics fsyncs=%d commits=%d, want 2 and %d", f, n, writers)
	}
	if mx := srv.metrics.batchSizes.maxUS.Load(); mx != writers-1 {
		t.Errorf("max batch = %d, want %d", mx, writers-1)
	}

	// OK meant durable: a restart from the journal has all eight.
	srv.Close()
	s := workload.WhitePagesSchema()
	srv2, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.OpenJournal(journal); err != nil {
		t.Fatalf("replay after batched commits: %v", err)
	}
	defer srv2.Close()
	for i := 0; i < writers; i++ {
		dn := fmt.Sprintf("uid=gc%d,ou=attLabs,o=att", i)
		if srv2.dir.ByDN(dn) == nil {
			t.Errorf("acknowledged commit %s lost on replay", dn)
		}
	}
}

// TestGroupCommitFailedBatchRollsBack: when the batch's fsync fails,
// every member — and every commit staged on top of it — is rolled back
// in reverse apply order, the journal keeps only acknowledged commits,
// and the directory is byte-identical to the pre-batch state.
func TestGroupCommitFailedBatchRollsBack(t *testing.T) {
	srv, addr, journal := startGroupServer(t, 0)
	c0 := dialClient(t, addr)
	c0.expectOK("BEGIN")
	c0.expectOK(addPersonLines("durable")...)

	pre := encodeDir(t, srv)

	bj := &blockingJournal{gate: make(chan struct{}), syncing: make(chan struct{}, 1)}
	bj.failSync.Store(true)
	injectBlocking(srv, bj)

	cs := []*client{dialClient(t, addr), dialClient(t, addr), dialClient(t, addr)}
	cs[0].expectOK("BEGIN")
	cs[0].send(addPersonLines("lost0")...)
	waitSyncStart(t, bj)
	// Two more commits apply and stage on top of the doomed batch.
	for i, c := range cs[1:] {
		c.expectOK("BEGIN")
		c.send(addPersonLines(fmt.Sprintf("lost%d", i+1))...)
	}
	waitStaged(t, srv, 2)

	close(bj.gate) // the fsync now fails
	for i, c := range cs {
		if _, term := c.until(); !strings.HasPrefix(term, "ERR ") || !strings.Contains(term, "not durable") {
			t.Fatalf("commit %d on a failed batch replied %q, want ERR ... not durable", i, term)
		}
	}

	if post := encodeDir(t, srv); post != pre {
		t.Errorf("directory not byte-identical to pre-batch state after rollback:\n--- pre ---\n%s\n--- post ---\n%s", pre, post)
	}
	srv.mu.RLock()
	readOnly := srv.readOnly
	srv.mu.RUnlock()
	if readOnly != "" {
		t.Fatalf("server read-only after a recoverable batch failure: %s", readOnly)
	}

	// Heal the disk; commits are durable again.
	bj.failSync.Store(false)
	cs[0].expectOK("BEGIN")
	cs[0].expectOK(addPersonLines("healed")...)
	srv.Close()

	// The journal replays to exactly the acknowledged commits.
	s := workload.WhitePagesSchema()
	srv2, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.OpenJournal(journal); err != nil {
		t.Fatalf("replay after failed batch: %v", err)
	}
	defer srv2.Close()
	for _, uid := range []string{"durable", "healed"} {
		if srv2.dir.ByDN("uid="+uid+",ou=attLabs,o=att") == nil {
			t.Errorf("acknowledged commit %s lost on replay", uid)
		}
	}
	for _, uid := range []string{"lost0", "lost1", "lost2"} {
		if srv2.dir.ByDN("uid="+uid+",ou=attLabs,o=att") != nil {
			t.Errorf("ERR'd commit %s reappeared on replay", uid)
		}
	}
	if r := core.NewChecker(s).Check(srv2.dir); !r.Legal() {
		t.Fatalf("restored instance illegal:\n%s", r)
	}
}

// TestGroupCommitConcurrentStress hammers the pipeline under -race:
// eight writer sessions commit concurrently against an artificially slow
// disk while readers run, and the fsync count stays below the commit
// count (i.e. batching actually happened).
func TestGroupCommitConcurrentStress(t *testing.T) {
	srv, addr, journal := startGroupServer(t, 0)
	srv.SetSyncDelay(2 * time.Millisecond)
	const writers, commitsPer = 8, 5

	var wg sync.WaitGroup
	errs := make(chan error, writers+2)
	stop := make(chan struct{})
	send := func(conn net.Conn, r *bufio.Reader, lines ...string) (string, error) {
		for _, l := range lines {
			if _, err := conn.Write([]byte(l + "\n")); err != nil {
				return "", err
			}
		}
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return "", err
			}
			line = strings.TrimRight(line, "\n")
			if line == "OK" || line == "ILLEGAL" || strings.HasPrefix(line, "ERR ") {
				return line, nil
			}
		}
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; i < commitsPer; i++ {
				if term, err := send(conn, r, "BEGIN"); err != nil || term != "OK" {
					errs <- fmt.Errorf("writer %d BEGIN: %q %v", w, term, err)
					return
				}
				lines := addPersonLines(fmt.Sprintf("sw%dc%d", w, i))
				if term, err := send(conn, r, lines...); err != nil || term != "OK" {
					errs <- fmt.Errorf("writer %d COMMIT %d: %q %v", w, i, term, err)
					return
				}
			}
		}(w)
	}
	for rdr := 0; rdr < 2; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if term, err := send(conn, r, "SEARCH (objectClass=person)"); err != nil || term != "OK" {
					errs <- fmt.Errorf("reader: %q %v", term, err)
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers finish first; then release the readers.
	go func() {
		for {
			if srv.metrics.TxCommitted.Load() >= writers*commitsPer {
				close(stop)
				return
			}
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	<-done
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := int64(writers * commitsPer)
	if got := srv.metrics.BatchedCommits(); got != total {
		t.Errorf("batched commits = %d, want %d", got, total)
	}
	if f := srv.metrics.Fsyncs(); f >= total {
		t.Errorf("fsyncs = %d for %d concurrent commits on a slow disk: no batching happened", f, total)
	}

	srv.Close()
	s := workload.WhitePagesSchema()
	srv2, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.OpenJournal(journal); err != nil {
		t.Fatalf("replay after stress: %v", err)
	}
	defer srv2.Close()
	for w := 0; w < writers; w++ {
		for i := 0; i < commitsPer; i++ {
			dn := fmt.Sprintf("uid=sw%dc%d,ou=attLabs,o=att", w, i)
			if srv2.dir.ByDN(dn) == nil {
				t.Errorf("entry %s lost on replay", dn)
			}
		}
	}
	if r := core.NewChecker(s).Check(srv2.dir); !r.Legal() {
		t.Fatalf("restored instance illegal:\n%s", r)
	}
}

// TestGroupCommitSnapshotDrainsBacklog: SNAPSHOT while commits are
// staged behind a blocked fsync must flush the backlog first and then
// compact — never snapshot state the journal would replay again.
func TestGroupCommitSnapshotDrainsBacklog(t *testing.T) {
	srv, addr, journal := startGroupServer(t, 0)
	bj := &blockingJournal{gate: make(chan struct{}), syncing: make(chan struct{}, 1)}
	injectBlocking(srv, bj)

	c1 := dialClient(t, addr)
	c1.expectOK("BEGIN")
	c1.send(addPersonLines("snapbase")...)
	waitSyncStart(t, bj)
	c2 := dialClient(t, addr)
	c2.expectOK("BEGIN")
	c2.send(addPersonLines("snapstaged")...)
	waitStaged(t, srv, 1)

	snapper := dialClient(t, addr)
	if _, err := snapper.conn.Write([]byte("SNAPSHOT\n")); err != nil {
		t.Fatal(err)
	}
	close(bj.gate)
	if _, term := c1.until(); term != "OK" {
		t.Fatalf("gated commit replied %q", term)
	}
	if _, term := c2.until(); term != "OK" {
		t.Fatalf("staged commit replied %q", term)
	}
	if _, term := snapper.until(); term != "OK" {
		t.Fatalf("SNAPSHOT behind a blocked sync replied %q", term)
	}
	srv.Close()

	// The snapshot + (empty) journal reproduce both commits exactly once.
	s := workload.WhitePagesSchema()
	srv2, err := New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.OpenJournal(journal); err != nil {
		t.Fatalf("replay after SNAPSHOT during batch: %v", err)
	}
	defer srv2.Close()
	for _, uid := range []string{"snapbase", "snapstaged"} {
		if srv2.dir.ByDN("uid="+uid+",ou=attLabs,o=att") == nil {
			t.Errorf("entry %s lost across SNAPSHOT + restart", uid)
		}
	}
}
